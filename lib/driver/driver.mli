(** The one place that loads MJ programs and runs analyses on them.

    The CLI, the bench harness, and the examples all need the same
    plumbing: read sources, link the bundled mini-JDK, resolve an
    analysis name through the strategy registry, run the solver under a
    {!Pta_solver.Solver.Config.t}, and report errors with normalised
    exit codes.  This module is that plumbing, once.

    Exit-code contract (shared by every [pointsto] subcommand):
    parse/lexical/semantic error = 1, unknown analysis = 2,
    timeout = 3. *)

type source =
  | File of string  (** path to an MJ source file *)
  | Literal of { name : string; contents : string }

type error =
  | Frontend_error of exn
      (** a lexical / syntax / semantic error; format with {!pp_error} *)
  | Unknown_analysis of { name : string; suggestions : string list }
      (** no preset of that name; [suggestions] are the closest-matching
          preset names, for the error message *)
  | Bad_strategy_expr of { expr : string; msg : string }
      (** the argument looked like a strategy-algebra expression but
          failed to parse or validate *)
  | Timed_out of { analysis : string; abort : Pta_obs.Budget.abort }

val exit_code : error -> int
(** 1 / 2 / 3 as per the contract above. *)

val pp_error : Format.formatter -> error -> unit

val report_and_exit : error -> 'a
(** Print to stderr, [exit (exit_code e)]. *)

(** {1 Loading} *)

val load_program :
  ?stdlib:bool ->
  ?metrics:Pta_metrics.Registry.t ->
  source list ->
  (Pta_ir.Ir.Program.t, error) result
(** Parse, link (with the mini-JDK unless [~stdlib:false]) and lower.
    Never raises on bad input: lexical, syntax and semantic failures
    come back as [Error (Frontend_error _)].

    A live [metrics] registry receives per-phase GC gauges
    ([pta_gc_*{phase="parse"|"lower"}]: allocated/promoted words,
    collection counts, alarm-sampled peak heap). *)

val load_files :
  ?stdlib:bool ->
  ?metrics:Pta_metrics.Registry.t ->
  string list ->
  (Pta_ir.Ir.Program.t, error) result

val load_string :
  ?stdlib:bool ->
  ?metrics:Pta_metrics.Registry.t ->
  ?name:string ->
  string ->
  (Pta_ir.Ir.Program.t, error) result

(** {1 Running} *)

val strategy_of_name :
  Pta_ir.Ir.Program.t -> string -> (Pta_context.Strategy.t, error) result
(** Resolve through {!Pta_context.Strategies.resolve}: a preset name
    (["S-2obj+H"]) or a strategy-algebra expression
    (["selective(obj 2 1)"]). *)

type run = {
  solver : Pta_solver.Solver.t;
  strategy : Pta_context.Strategy.t;
  wall_time_s : float;
  stats : Pta_obs.Run_stats.t option;  (** [Some] iff [collect_stats] *)
}

val run :
  ?config:Pta_solver.Solver.Config.t ->
  ?collect_stats:bool ->
  Pta_ir.Ir.Program.t ->
  analysis:string ->
  (run, error) result
(** Resolve [analysis] and solve under [config].  With
    [~collect_stats:true] a {!Pta_obs.Recorder.t} is tee'd onto the
    configured observer and the full {!Pta_obs.Run_stats.t} bundle
    (counters, final sizes, wall time, phase timings) is assembled.

    If [config] carries a live {!Pta_obs.Trace.t}, the four Table-1
    precision gauges are sampled into it at fixpoint as
    ["gauge"]-category counters: ["contexts"], ["avg objs per var"],
    ["reachable methods"] and ["call-graph edges"].

    If [config] carries a live {!Pta_metrics.Registry.t}, the solve
    phase runs under a GC tracker whose delta lands in the registry
    ([pta_gc_*{phase="solve"}]) and in [stats.memory]; the registry's
    JSON export is embedded as [stats.metrics]. *)

val load_and_run :
  ?stdlib:bool ->
  ?config:Pta_solver.Solver.Config.t ->
  ?collect_stats:bool ->
  analysis:string ->
  source list ->
  (Pta_ir.Ir.Program.t * run, error) result
(** {!load_program} then {!run}. *)
