module Solver = Pta_solver.Solver
module Strategies = Pta_context.Strategies
module Observer = Pta_obs.Observer
module Recorder = Pta_obs.Recorder
module Run_stats = Pta_obs.Run_stats
module Memstats = Pta_obs.Memstats
module Clock = Pta_obs.Clock
module Registry = Pta_metrics.Registry

type source =
  | File of string
  | Literal of { name : string; contents : string }

type error =
  | Frontend_error of exn
  | Unknown_analysis of { name : string; suggestions : string list }
  | Bad_strategy_expr of { expr : string; msg : string }
  | Timed_out of { analysis : string; abort : Pta_obs.Budget.abort }

let exit_code = function
  | Frontend_error _ -> 1
  | Unknown_analysis _ | Bad_strategy_expr _ -> 2
  | Timed_out _ -> 3

let pp_error ppf = function
  | Frontend_error exn ->
    if not (Pta_frontend.Frontend.report ppf exn) then raise exn
  | Unknown_analysis { name; suggestions } ->
    Format.fprintf ppf "unknown analysis %S" name;
    (match suggestions with
    | [] -> ()
    | [ s ] -> Format.fprintf ppf " (did you mean %s?)" s
    | ss -> Format.fprintf ppf " (did you mean %s?)" (String.concat " or " ss));
    Format.fprintf ppf "@\navailable: %s"
      (String.concat ", " Strategies.names);
    Format.fprintf ppf
      "@\nsee `pointsto strategies', or pass an algebra expression such as \
       'selective(obj 2 1)'"
  | Bad_strategy_expr { expr; msg } ->
    Format.fprintf ppf "bad strategy expression %S: %s" expr msg
  | Timed_out { analysis; abort } ->
    Format.fprintf ppf
      "analysis %s timed out after %.1fs (%d iterations, %d nodes)" analysis
      abort.Pta_obs.Budget.elapsed_s abort.Pta_obs.Budget.iterations
      abort.Pta_obs.Budget.nodes

let report_and_exit err =
  Format.eprintf "%a@." pp_error err;
  exit (exit_code err)

(* ------------------------------------------------------------------ *)
(* Loading                                                             *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let is_frontend_error exn =
  let sink = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ()) in
  Pta_frontend.Frontend.report sink exn

(* Per-phase GC deltas land in the registry as gauges: one value per
   run, labelled by phase, all deterministic for a deterministic
   program (word counts, not wall time). *)
let record_memory metrics ~phase (d : Memstats.delta) =
  if not (Registry.is_null metrics) then begin
    let g name help v =
      Registry.set
        (Registry.gauge metrics ~help ~labels:[ ("phase", phase) ] name)
        v
    in
    let gi name help v = g name help (float_of_int v) in
    g "pta_gc_minor_allocated_words" "Words allocated in the minor heap"
      d.Memstats.minor_allocated_words;
    g "pta_gc_major_allocated_words" "Words allocated in the major heap"
      d.Memstats.major_allocated_words;
    g "pta_gc_promoted_words" "Words promoted minor-to-major"
      d.Memstats.promoted_delta_words;
    gi "pta_gc_minor_collections" "Minor collections"
      d.Memstats.minor_collections_delta;
    gi "pta_gc_major_collections" "Major collection cycles"
      d.Memstats.major_collections_delta;
    gi "pta_gc_compactions" "Heap compactions" d.Memstats.compactions_delta;
    gi "pta_gc_peak_heap_words" "Peak major-heap size (Gc.alarm-sampled)"
      d.Memstats.peak_heap_words
  end

(* The census exposes bytes (not words) so dashboards need no word-size
   context, one gauge per component plus the Intset sharing factor over
   the points-to sets.  Everything here is structural — reachable words
   of deterministic data structures — so a metered run's exposition
   stays byte-stable. *)
let record_census metrics (census : Pta_obs.Census.t) =
  if not (Registry.is_null metrics) then begin
    let module Census = Pta_obs.Census in
    List.iter
      (fun (c : Census.component) ->
        Registry.set
          (Registry.gauge metrics
             ~help:"Retained bytes attributed to a solver component"
             ~labels:[ ("component", c.Census.comp_name) ]
             "pta_heap_component_bytes")
          (float_of_int (Census.bytes_of_words census c.Census.retained_words)))
      census.Census.components;
    match Census.find census "points-to-sets" with
    | None -> ()
    | Some c ->
      Registry.set
        (Registry.gauge metrics
           ~help:
             "Intset structural sharing over points-to sets: unshared / \
              retained words"
           "pta_intset_sharing_factor")
        (Census.sharing_factor c)
  end

let load_program ?(stdlib = true) ?(metrics = Registry.null) sources =
  match
    let named =
      (if stdlib then [ (Pta_mjdk.Mjdk.file_name, Pta_mjdk.Mjdk.source) ]
       else [])
      @ List.map
          (function
            | File path -> (path, read_file path)
            | Literal { name; contents } -> (name, contents))
          sources
    in
    if Registry.is_null metrics then
      Pta_frontend.Frontend.program_of_sources named
    else begin
      (* Same pipeline as [Frontend.program_of_sources], with a GC
         tracker around each phase. *)
      let decls, parse_mem =
        Memstats.tracked (fun () ->
            List.concat_map
              (fun (file, contents) ->
                Pta_frontend.Frontend.parse ~file contents)
              named)
      in
      record_memory metrics ~phase:"parse" parse_mem;
      let program, lower_mem =
        Memstats.tracked (fun () -> Pta_frontend.Lower.program decls)
      in
      record_memory metrics ~phase:"lower" lower_mem;
      program
    end
  with
  | program -> Ok program
  | exception exn when is_frontend_error exn -> Error (Frontend_error exn)

let load_files ?stdlib ?metrics paths =
  load_program ?stdlib ?metrics (List.map (fun p -> File p) paths)

let load_string ?stdlib ?metrics ?(name = "<string>") contents =
  load_program ?stdlib ?metrics [ Literal { name; contents } ]

(* ------------------------------------------------------------------ *)
(* Running                                                             *)
(* ------------------------------------------------------------------ *)

let strategy_of_name program name =
  match Strategies.resolve name with
  | Ok factory -> Ok (factory program)
  | Error (Strategies.Unknown_name { name; suggestions }) ->
    Error (Unknown_analysis { name; suggestions })
  | Error (Strategies.Bad_expression { expr; msg }) ->
    Error (Bad_strategy_expr { expr; msg })

type run = {
  solver : Solver.t;
  strategy : Pta_context.Strategy.t;
  wall_time_s : float;
  stats : Run_stats.t option;
}

(* The four Table-1 precision gauges, sampled once at fixpoint into the
   trace so a Chrome-trace export is self-describing. *)
let emit_gauges trace program solver =
  let module Trace = Pta_obs.Trace in
  if not (Trace.is_null trace) then begin
    let module Intset = Pta_solver.Intset in
    let vars = ref 0 and objs = ref 0 in
    Pta_ir.Ir.Program.iter_vars program (fun v _info ->
        let s = Solver.ci_var_points_to solver v in
        if not (Intset.is_empty s) then begin
          incr vars;
          objs := !objs + Intset.cardinal s
        end);
    let avg = if !vars = 0 then 0. else float_of_int !objs /. float_of_int !vars in
    Trace.counter trace ~cat:"gauge" "contexts"
      (float_of_int (Solver.n_ctxs solver));
    Trace.counter trace ~cat:"gauge" "avg objs per var" avg;
    Trace.counter trace ~cat:"gauge" "reachable methods"
      (float_of_int
         (Pta_ir.Ir.Meth_id.Set.cardinal (Solver.reachable_meths solver)));
    Trace.counter trace ~cat:"gauge" "call-graph edges"
      (float_of_int (Solver.n_call_edges_ci solver))
  end

let run ?(config = Solver.Config.default) ?(collect_stats = false) program
    ~analysis =
  match strategy_of_name program analysis with
  | Error e -> Error e
  | Ok strategy -> (
    let recorder = if collect_stats then Some (Recorder.create ()) else None in
    let config =
      match recorder with
      | None -> config
      | Some r ->
        {
          config with
          Solver.Config.observer =
            Observer.tee config.Solver.Config.observer (Recorder.observer r);
        }
    in
    let metrics = config.Solver.Config.metrics in
    (* GC tracking is on whenever someone will read the result: a stats
       bundle or a live registry. *)
    let tracker =
      if collect_stats || not (Registry.is_null metrics) then
        Some (Memstats.start_tracking ())
      else None
    in
    (* Hand the tracker to the solver so the fixpoint loop samples the
       peak between major collections (the alarm alone misses
       alarm-free stretches). *)
    let config =
      match tracker with
      | None -> config
      | Some t -> { config with Solver.Config.mem_tracker = Some t }
    in
    let clock = Clock.create () in
    match Solver.solve ~config program strategy with
    | solver ->
      let wall_time_s = Clock.elapsed_s clock in
      let memory = Option.map Memstats.finish tracker in
      Option.iter (record_memory metrics ~phase:"solve") memory;
      if not (Registry.is_null metrics) then
        record_census metrics (Solver.census solver);
      emit_gauges config.Solver.Config.trace program solver;
      let stats =
        Option.map
          (fun r ->
            Run_stats.make ~analysis ~wall_time_s
              ~sensitive_vpt_size:(Solver.sensitive_vpt_size solver)
              ~n_ctxs:(Solver.n_ctxs solver) ~n_hctxs:(Solver.n_hctxs solver)
              ~n_hobjs:(Solver.n_hobjs solver) ?memory
              ?metrics:
                (if Registry.is_null metrics then None
                 else Some (Registry.to_json metrics))
              r)
          recorder
      in
      Ok { solver; strategy; wall_time_s; stats }
    | exception Solver.Timeout abort ->
      Option.iter (fun t -> ignore (Memstats.finish t)) tracker;
      Error (Timed_out { analysis; abort }))

let load_and_run ?stdlib ?config ?collect_stats ~analysis sources =
  let metrics = Option.map (fun c -> c.Solver.Config.metrics) config in
  Result.bind (load_program ?stdlib ?metrics sources) (fun program ->
      Result.map
        (fun r -> (program, r))
        (run ?config ?collect_stats program ~analysis))
