module Solver = Pta_solver.Solver
module Strategies = Pta_context.Strategies
module Observer = Pta_obs.Observer
module Recorder = Pta_obs.Recorder
module Run_stats = Pta_obs.Run_stats

type source =
  | File of string
  | Literal of { name : string; contents : string }

type error =
  | Frontend_error of exn
  | Unknown_analysis of string
  | Timed_out of { analysis : string; abort : Pta_obs.Budget.abort }

let exit_code = function
  | Frontend_error _ -> 1
  | Unknown_analysis _ -> 2
  | Timed_out _ -> 3

let pp_error ppf = function
  | Frontend_error exn ->
    if not (Pta_frontend.Frontend.report ppf exn) then raise exn
  | Unknown_analysis name ->
    Format.fprintf ppf "unknown analysis %S; see `pointsto strategies'" name
  | Timed_out { analysis; abort } ->
    Format.fprintf ppf
      "analysis %s timed out after %.1fs (%d iterations, %d nodes)" analysis
      abort.Pta_obs.Budget.elapsed_s abort.Pta_obs.Budget.iterations
      abort.Pta_obs.Budget.nodes

let report_and_exit err =
  Format.eprintf "%a@." pp_error err;
  exit (exit_code err)

(* ------------------------------------------------------------------ *)
(* Loading                                                             *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let is_frontend_error exn =
  let sink = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ()) in
  Pta_frontend.Frontend.report sink exn

let load_program ?(stdlib = true) sources =
  match
    let named =
      (if stdlib then [ (Pta_mjdk.Mjdk.file_name, Pta_mjdk.Mjdk.source) ]
       else [])
      @ List.map
          (function
            | File path -> (path, read_file path)
            | Literal { name; contents } -> (name, contents))
          sources
    in
    Pta_frontend.Frontend.program_of_sources named
  with
  | program -> Ok program
  | exception exn when is_frontend_error exn -> Error (Frontend_error exn)

let load_files ?stdlib paths =
  load_program ?stdlib (List.map (fun p -> File p) paths)

let load_string ?stdlib ?(name = "<string>") contents =
  load_program ?stdlib [ Literal { name; contents } ]

(* ------------------------------------------------------------------ *)
(* Running                                                             *)
(* ------------------------------------------------------------------ *)

let strategy_of_name program name =
  match Strategies.by_name name with
  | Some factory -> Ok (factory program)
  | None -> Error (Unknown_analysis name)

type run = {
  solver : Solver.t;
  strategy : Pta_context.Strategy.t;
  wall_time_s : float;
  stats : Run_stats.t option;
}

(* The four Table-1 precision gauges, sampled once at fixpoint into the
   trace so a Chrome-trace export is self-describing. *)
let emit_gauges trace program solver =
  let module Trace = Pta_obs.Trace in
  if not (Trace.is_null trace) then begin
    let module Intset = Pta_solver.Intset in
    let vars = ref 0 and objs = ref 0 in
    Pta_ir.Ir.Program.iter_vars program (fun v _info ->
        let s = Solver.ci_var_points_to solver v in
        if not (Intset.is_empty s) then begin
          incr vars;
          objs := !objs + Intset.cardinal s
        end);
    let avg = if !vars = 0 then 0. else float_of_int !objs /. float_of_int !vars in
    Trace.counter trace ~cat:"gauge" "contexts"
      (float_of_int (Solver.n_ctxs solver));
    Trace.counter trace ~cat:"gauge" "avg objs per var" avg;
    Trace.counter trace ~cat:"gauge" "reachable methods"
      (float_of_int
         (Pta_ir.Ir.Meth_id.Set.cardinal (Solver.reachable_meths solver)));
    Trace.counter trace ~cat:"gauge" "call-graph edges"
      (float_of_int (Solver.n_call_edges_ci solver))
  end

let run ?(config = Solver.Config.default) ?(collect_stats = false) program
    ~analysis =
  match strategy_of_name program analysis with
  | Error e -> Error e
  | Ok strategy -> (
    let recorder = if collect_stats then Some (Recorder.create ()) else None in
    let config =
      match recorder with
      | None -> config
      | Some r ->
        {
          config with
          Solver.Config.observer =
            Observer.tee config.Solver.Config.observer (Recorder.observer r);
        }
    in
    let t0 = Unix.gettimeofday () in
    match Solver.solve ~config program strategy with
    | solver ->
      let wall_time_s = Unix.gettimeofday () -. t0 in
      emit_gauges config.Solver.Config.trace program solver;
      let stats =
        Option.map
          (fun r ->
            Run_stats.make ~analysis ~wall_time_s
              ~sensitive_vpt_size:(Solver.sensitive_vpt_size solver)
              ~n_ctxs:(Solver.n_ctxs solver) ~n_hctxs:(Solver.n_hctxs solver)
              ~n_hobjs:(Solver.n_hobjs solver) r)
          recorder
      in
      Ok { solver; strategy; wall_time_s; stats }
    | exception Solver.Timeout abort -> Error (Timed_out { analysis; abort }))

let load_and_run ?stdlib ?config ?collect_stats ~analysis sources =
  Result.bind (load_program ?stdlib sources) (fun program ->
      Result.map
        (fun r -> (program, r))
        (run ?config ?collect_stats program ~analysis))
