(** The append-only bench-history ledger: one {!Record.t} per line of a
    committed JSONL file ([bench/history.jsonl]).

    JSONL because append is then a write, not a rewrite — a crashed run
    can truncate at most its own line, `git diff` shows one added line
    per run, and merges never conflict on reformatting.

    {!load} is strict: every non-blank line must parse as a supported
    record, and [seq] must strictly increase along the file.  A corrupt
    ledger refuses to load (naming the offending line) rather than
    silently skipping records — trend statistics over a silently
    truncated history would happily report "no regression". *)

val load : string -> (Record.t list, string) result
(** Load and validate a ledger file.  A missing file is an error (use
    {!load_or_empty} where an empty history is meaningful). *)

val load_or_empty : string -> (Record.t list, string) result
(** Like {!load}, but a missing file is an empty history. *)

val append : path:string -> Record.t -> (Record.t, string) result
(** Validate the existing ledger (a corrupt ledger must not be appended
    to), re-stamp the record with the next [seq], and append it as one
    line, creating the file if needed.  Returns the record as written. *)

val to_line : Record.t -> string
(** The record as a single compact JSON line (no trailing newline). *)

val next_seq : Record.t list -> int
(** 0 on an empty history, last [seq] + 1 otherwise. *)

val describe : Record.t -> string
(** One human line: seq, commit (with dirty suffix), profile, host,
    cell count, note. *)
