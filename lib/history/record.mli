(** One bench-history ledger record: the per-cell measurements of one
    benchmark run, keyed by the build stamp of the binary that produced
    them.

    Records are schema-versioned independently of the snapshot codec
    ({!Pta_report.Bench_snapshot}): snapshots are the working files a
    bench run overwrites in place, the ledger is the append-only
    archive those runs accumulate into ([bench/history.jsonl]), and the
    two evolve at different speeds.  {!of_json} is strict — a record
    from a future schema, or with a missing/mistyped field, is rejected
    rather than half-read, because a silently misparsed ledger line
    poisons every trend computed over it. *)

module Json := Pta_obs.Json
module Snapshot := Pta_report.Bench_snapshot

val current_schema_version : int
(** 3.  v2 adds the optional per-cell [heap_components] census block;
    v3 adds per-cell [jobs]/[domains] and the host's [cores].  Older
    records load with the newer fields at their sequential defaults
    (jobs = domains = 1, cores = None). *)

type build = {
  semver : string;
  commit : string;  (** bare short hash, or ["unknown"] *)
  dirty : bool;  (** built from a worktree with uncommitted changes *)
  ocaml : string;
  profile : string;  (** dune profile *)
}

val commit_label : build -> string
(** [commit] with the ["-dirty"] suffix restored when [dirty]. *)

type host = {
  os_type : string;  (** [Sys.os_type] *)
  word_size : int;  (** [Sys.word_size] *)
  hostname : string;
  cores : int option;  (** v3: core count; [None] in older records *)
}
(** A coarse host fingerprint: timings from different machines must
    never be silently compared, and this is how the trend tooling tells
    them apart.  [hostname] honours [$PTA_BENCH_HOST] so CI and tests
    can pin a stable name.  [cores] extends the rule to parallel cells:
    the trend and bisect tooling skip records whose core count differs
    from the one under test. *)

val current_host : ?cores:int -> unit -> host
(** [cores] is the caller's estimate of the machine's core count
    (e.g. {!Pta_solver.Par.recommended_domains}); [$PTA_BENCH_CORES]
    overrides it, like [$PTA_BENCH_HOST] does the hostname. *)

type cell = {
  benchmark : string;
  analysis : string;
  timed_out : bool;
  time_s : float;  (** best wall time, or elapsed-at-abort for timeouts *)
  iterations : int;
  nodes : int option;
  peak_heap_words : int option;
  time_hist : Snapshot.hist option;
      (** distribution of the individual timed solves (exponential
          buckets, {!Pta_metrics.Registry.time_buckets} ladder) *)
  heap_components : Pta_obs.Census.component list;
      (** v2: reachable-heap census of the solved state; [[]] when the
          run (or a v1 record) carried none *)
  jobs : int;  (** v3: requested worklist domains; 1 in older records *)
  domains : int;  (** v3: effective domain count; 1 in older records *)
}

type t = {
  schema_version : int;
  seq : int;  (** position in the ledger; assigned by {!Ledger.append} *)
  timestamp : float option;  (** unix seconds; [None] on synthetic records *)
  note : string option;  (** free-form provenance, e.g. ["ci"] *)
  timeout_s : float;
  build : build;
  host : host;
  cells : cell list;
}

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result
(** Strict: rejects unsupported schema versions and missing or mistyped
    fields (including malformed [time_hist] blocks). *)

val of_snapshot :
  seq:int ->
  ?timestamp:float ->
  ?note:string ->
  host:host ->
  Snapshot.t ->
  (t, string) result
(** Build a record from a bench snapshot ([BENCH_table1.json] /
    [BENCH_prop.json]).  The build stamp is taken from the snapshot's
    own [pointsto] field — the binary that {e measured}, not the one
    appending — and is required: a stamp-less (v1) snapshot is refused,
    because an untraceable ledger record is worse than none.  A
    ["-dirty"]-suffixed commit or an explicit [dirty] flag in the stamp
    both mark the record dirty. *)

val cell_find :
  ?jobs:int -> t -> benchmark:string -> analysis:string -> cell option
(** The cell measured at [jobs] worklist domains (default 1, the
    sequential drain) — (benchmark, analysis, jobs) is the cell key
    from v3 on. *)
