module Json = Pta_obs.Json
module Snapshot = Pta_report.Bench_snapshot
module Census = Pta_obs.Census

(* v2 adds the optional per-cell [heap_components] census block; v1
   records load with it empty.  v3 adds per-cell [jobs]/[domains] (the
   parallel drain's requested and effective domain counts) and the
   host's [cores]; older records load with jobs = domains = 1 and
   cores = None. *)
let current_schema_version = 3

type build = {
  semver : string;
  commit : string;
  dirty : bool;
  ocaml : string;
  profile : string;
}

let commit_label b = if b.dirty then b.commit ^ "-dirty" else b.commit

type host = {
  os_type : string;
  word_size : int;
  hostname : string;
  cores : int option;  (* v3; None in older records *)
}

let current_host ?cores () =
  let hostname =
    match Sys.getenv_opt "PTA_BENCH_HOST" with
    | Some h when h <> "" -> h
    | _ -> ( try Unix.gethostname () with Unix.Unix_error _ -> "unknown")
  in
  (* Like PTA_BENCH_HOST: lets CI and the golden tests pin a stable
     core count regardless of the machine the test happens to run on. *)
  let cores =
    match Option.bind (Sys.getenv_opt "PTA_BENCH_CORES") int_of_string_opt with
    | Some n when n >= 1 -> Some n
    | _ -> cores
  in
  { os_type = Sys.os_type; word_size = Sys.word_size; hostname; cores }

type cell = {
  benchmark : string;
  analysis : string;
  timed_out : bool;
  time_s : float;
  iterations : int;
  nodes : int option;
  peak_heap_words : int option;
  time_hist : Snapshot.hist option;
  heap_components : Census.component list;  (* v2; [] when absent *)
  jobs : int;  (* v3; 1 in older records *)
  domains : int;  (* v3; 1 in older records *)
}

type t = {
  schema_version : int;
  seq : int;
  timestamp : float option;
  note : string option;
  timeout_s : float;
  build : build;
  host : host;
  cells : cell list;
}

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)
(* ------------------------------------------------------------------ *)

let build_to_json b =
  Json.Obj
    [
      ("semver", Json.String b.semver);
      ("commit", Json.String b.commit);
      ("dirty", Json.Bool b.dirty);
      ("ocaml", Json.String b.ocaml);
      ("profile", Json.String b.profile);
    ]

let host_to_json h =
  Json.Obj
    ([
       ("os_type", Json.String h.os_type);
       ("word_size", Json.Int h.word_size);
       ("hostname", Json.String h.hostname);
     ]
    @ match h.cores with None -> [] | Some n -> [ ("cores", Json.Int n) ])

let cell_to_json c =
  Json.Obj
    ([
       ("benchmark", Json.String c.benchmark);
       ("analysis", Json.String c.analysis);
       ("timed_out", Json.Bool c.timed_out);
       ("time_s", Json.Float c.time_s);
       ("iterations", Json.Int c.iterations);
     ]
    @ (match c.nodes with None -> [] | Some n -> [ ("nodes", Json.Int n) ])
    @ (match c.peak_heap_words with
      | None -> []
      | Some w -> [ ("peak_heap_words", Json.Int w) ])
    @ (match c.time_hist with
      | None -> []
      | Some h -> [ ("time_hist", Snapshot.hist_to_json h) ])
    @ (match c.heap_components with
      | [] -> []
      | cs -> [ ("heap_components", Census.components_to_json cs) ])
    @
    if c.jobs = 1 && c.domains = 1 then []
    else [ ("jobs", Json.Int c.jobs); ("domains", Json.Int c.domains) ])

let to_json t =
  Json.Obj
    ([
       ("schema_version", Json.Int t.schema_version);
       ("seq", Json.Int t.seq);
     ]
    @ (match t.timestamp with
      | None -> []
      | Some ts -> [ ("timestamp", Json.Float ts) ])
    @ (match t.note with None -> [] | Some n -> [ ("note", Json.String n) ])
    @ [
        ("timeout_s", Json.Float t.timeout_s);
        ("build", build_to_json t.build);
        ("host", host_to_json t.host);
        ("cells", Json.List (List.map cell_to_json t.cells));
      ])

let ( let* ) r f = Result.bind r f

let field json name conv =
  match Option.bind (Json.member name json) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or mistyped %S" name)

let to_bool = function Json.Bool b -> Some b | _ -> None

let build_of_json json =
  let* semver = field json "semver" Json.to_str in
  let* commit = field json "commit" Json.to_str in
  let* dirty = field json "dirty" to_bool in
  let* ocaml = field json "ocaml" Json.to_str in
  let* profile = field json "profile" Json.to_str in
  Ok { semver; commit; dirty; ocaml; profile }

let host_of_json json =
  let* os_type = field json "os_type" Json.to_str in
  let* word_size = field json "word_size" Json.to_int in
  let* hostname = field json "hostname" Json.to_str in
  let cores = Option.bind (Json.member "cores" json) Json.to_int in
  Ok { os_type; word_size; hostname; cores }

let cell_of_json json =
  let* benchmark = field json "benchmark" Json.to_str in
  let* analysis = field json "analysis" Json.to_str in
  let* timed_out = field json "timed_out" to_bool in
  let* time_s = field json "time_s" Json.to_float in
  let* iterations = field json "iterations" Json.to_int in
  let nodes = Option.bind (Json.member "nodes" json) Json.to_int in
  let peak_heap_words =
    Option.bind (Json.member "peak_heap_words" json) Json.to_int
  in
  let* time_hist =
    match Json.member "time_hist" json with
    | None -> Ok None
    | Some j -> Result.map Option.some (Snapshot.hist_of_json j)
  in
  let* heap_components =
    match Json.member "heap_components" json with
    | None -> Ok []
    | Some j -> Census.components_of_json_list j
  in
  let jobs =
    Option.value ~default:1 (Option.bind (Json.member "jobs" json) Json.to_int)
  in
  let domains =
    Option.value ~default:1
      (Option.bind (Json.member "domains" json) Json.to_int)
  in
  if jobs < 1 || domains < 1 then Error "jobs and domains must be >= 1"
  else
    Ok
      {
        benchmark;
        analysis;
        timed_out;
        time_s;
        iterations;
        nodes;
        peak_heap_words;
        time_hist;
        heap_components;
        jobs;
        domains;
      }

let of_json json =
  let* schema_version = field json "schema_version" Json.to_int in
  if schema_version < 1 || schema_version > current_schema_version then
    Error
      (Printf.sprintf "unsupported schema_version %d (max %d)" schema_version
         current_schema_version)
  else
    let* seq = field json "seq" Json.to_int in
    if seq < 0 then Error "negative seq"
    else
      let timestamp = Option.bind (Json.member "timestamp" json) Json.to_float in
      let note = Option.bind (Json.member "note" json) Json.to_str in
      let* timeout_s = field json "timeout_s" Json.to_float in
      let* build =
        match Json.member "build" json with
        | None -> Error "missing \"build\""
        | Some j -> build_of_json j
      in
      let* host =
        match Json.member "host" json with
        | None -> Error "missing \"host\""
        | Some j -> host_of_json j
      in
      let* cell_list = field json "cells" Json.to_list in
      let* cells =
        List.fold_left
          (fun acc j ->
            let* acc = acc in
            let* c = cell_of_json j in
            Ok (c :: acc))
          (Ok []) cell_list
      in
      Ok
        {
          schema_version;
          seq;
          timestamp;
          note;
          timeout_s;
          build;
          host;
          cells = List.rev cells;
        }

(* ------------------------------------------------------------------ *)
(* From a bench snapshot                                               *)
(* ------------------------------------------------------------------ *)

let strip_dirty commit =
  let suffix = "-dirty" in
  let n = String.length commit and k = String.length suffix in
  if n > k && String.equal (String.sub commit (n - k) k) suffix then
    (String.sub commit 0 (n - k), true)
  else (commit, false)

let build_of_stamp stamp =
  let str name = Option.bind (Json.member name stamp) Json.to_str in
  match str "commit" with
  | None -> Error "snapshot build stamp has no \"commit\""
  | Some commit ->
    let commit, suffix_dirty = strip_dirty commit in
    let dirty =
      match Option.bind (Json.member "dirty" stamp) to_bool with
      | Some d -> d || suffix_dirty
      | None -> suffix_dirty
    in
    Ok
      {
        semver = Option.value ~default:"unknown" (str "version");
        commit;
        dirty;
        ocaml = Option.value ~default:"unknown" (str "ocaml");
        profile = Option.value ~default:"unknown" (str "profile");
      }

let of_snapshot ~seq ?timestamp ?note ~host (snap : Snapshot.t) =
  let* build =
    match snap.Snapshot.pointsto with
    | None ->
      Error
        "snapshot carries no build stamp (schema v1?); a ledger record must \
         be traceable to the build that measured it"
    | Some stamp -> build_of_stamp stamp
  in
  (* The snapshot's own core stamp wins: it names the host that
     measured, which is what parallel timings must be keyed on. *)
  let host =
    match snap.Snapshot.host_cores with
    | Some _ as cores -> { host with cores }
    | None -> host
  in
  let cells =
    List.map
      (fun (c : Snapshot.cell) ->
        {
          benchmark = c.Snapshot.benchmark;
          analysis = c.Snapshot.analysis;
          timed_out = c.Snapshot.timed_out;
          time_s = c.Snapshot.time_s;
          iterations = c.Snapshot.iterations;
          nodes = c.Snapshot.nodes;
          peak_heap_words =
            Option.map
              (fun m -> m.Pta_obs.Memstats.peak_heap_words)
              c.Snapshot.memory;
          time_hist = c.Snapshot.time_hist;
          heap_components = c.Snapshot.heap_components;
          jobs = c.Snapshot.jobs;
          domains = c.Snapshot.domains;
        })
      snap.Snapshot.cells
  in
  Ok
    {
      schema_version = current_schema_version;
      seq;
      timestamp;
      note;
      timeout_s = snap.Snapshot.timeout_s;
      build;
      host;
      cells;
    }

let cell_find ?(jobs = 1) t ~benchmark ~analysis =
  List.find_opt
    (fun c ->
      String.equal c.benchmark benchmark
      && String.equal c.analysis analysis
      && c.jobs = jobs)
    t.cells
