(** Auto-bisect over the ledger: locate the {e first} record at which
    one cell's metric crossed its regression threshold.

    The anchor is the robust baseline of the cell's early history — the
    {!Trend.window_stats} of its first [window] finished observations —
    and a record is {e bad} when its value exceeds the anchor threshold
    (or it times out while the anchor finished).  Against a step
    regression this predicate is monotone along the ledger, so a plain
    binary search finds the boundary in O(log n) evaluations; each
    probe is reported so a noisy (non-monotone) history is visible in
    the probe log rather than silently misattributed.

    When the regression is newer than the ledger is dense — the
    boundary spans many commits — {!git_script} emits a [git bisect
    run] recipe that re-measures just the one cell per candidate
    commit, using the last-good record as the comparison baseline. *)

module Snapshot := Pta_report.Bench_snapshot

type outcome = {
  benchmark : string;
  analysis : string;
  jobs : int;  (** the bisected cell's worklist domain count *)
  metric : Trend.metric;
  anchor : Trend.stats;  (** baseline over the first finished window *)
  first_bad : Record.t;
  last_good : Record.t option;
      (** [None] when the very first record is already bad *)
  probes : (int * bool) list;  (** (seq, bad) in evaluation order *)
}

val run :
  ?params:Trend.params ->
  ?jobs:int ->
  metric:Trend.metric ->
  benchmark:string ->
  analysis:string ->
  Record.t list ->
  (outcome option, string) result
(** [Ok None] when the latest record is within threshold (nothing to
    bisect).  [Error] when the cell is absent, never finished often
    enough to anchor, or the noise floor suppresses the metric.
    [jobs] (default 1) selects the (benchmark, analysis, jobs) cell;
    records measured on a host whose core count differs from the
    latest record's are excluded from both the anchor and the bad
    predicate — timings never compare across core counts. *)

val pp_outcome : Format.formatter -> outcome -> unit

val baseline_snapshot :
  ?jobs:int ->
  Record.t ->
  benchmark:string ->
  analysis:string ->
  (Snapshot.t, string) result
(** A single-cell snapshot reconstructed from the last-good record, fit
    to serve as the [--compare] baseline inside a [git bisect run]
    step. *)

val git_script :
  outcome -> ledger:string -> baseline_file:string -> (string, string) result
(** A commented, ready-to-run shell script driving [git bisect run]
    between the last-good and first-bad commits, re-measuring only the
    affected cell per step.  Emitted for the user to inspect and run —
    checking out arbitrary commits is not something a trend tool does
    behind anyone's back.  [Error] when there is no good commit to
    start from, a span endpoint has no usable commit hash (unknown or
    dirty), or a name would need shell quoting. *)
