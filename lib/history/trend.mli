(** Statistical regression detection over the ledger, and the bridge
    from ledger records to the static trend page.

    The changepoint check is a sliding-window robust test: for a cell's
    latest value, take the up-to-[window] most recent {e finished}
    observations before it, and flag when the value exceeds

    {v median + max(mad_k * 1.4826 * MAD, median * tol_pct / 100) v}

    Median + MAD rather than mean + stddev because a perf history is
    exactly the signal that contains the outliers one is looking for —
    a single historical spike must not inflate the dispersion estimate
    enough to mask a genuine step.  The [tol_pct] floor (the {e same}
    tolerance configuration the one-shot [--compare] gate uses,
    {!Pta_report.Bench_snapshot.thresholds}) keeps a near-constant
    series (MAD ≈ 0) from flagging on measurement jitter, and the
    comparator's [min_time_s] noise floor suppresses the time check on
    sub-noise cells. *)

module Snapshot := Pta_report.Bench_snapshot

type metric =
  | Time
  | Heap
  | Heap_component of string
      (** one census component's retained words (v2 ledger records);
          tested with [heap_component_tol_pct] and a 1024-word noise
          floor *)

val metric_name : metric -> string
(** ["time"], ["heap"], or ["heap:<component>"]. *)

val metric_of_string : string -> (metric, string) result

type params = {
  window : int;  (** sliding-window length (finished observations) *)
  min_points : int;  (** observations required before the test fires *)
  mad_k : float;  (** MAD multiplier *)
  tolerances : Snapshot.thresholds;
      (** shared with the [--compare] gate: [time_tol_pct] /
          [heap_tol_pct] are the relative floors, [min_time_s] the time
          noise floor *)
}

val default_params : params
(** window 5, min_points 3, mad_k 4.0, {!Snapshot.default_thresholds}. *)

type stats = {
  median : float;
  mad : float;  (** raw (unscaled) median absolute deviation *)
  threshold : float;  (** flag values strictly above this *)
}

val window_stats : params -> metric -> float list -> stats option
(** [None] when there are fewer than [min_points] observations, or the
    time median sits below the noise floor. *)

type flag =
  | Breach of {
      benchmark : string;
      analysis : string;
      jobs : int;  (** the cell's worklist domain count *)
      metric : metric;
      seq : int;  (** the flagged record *)
      value : float;
      stats : stats;
    }
  | Became_timeout of {
      benchmark : string;
      analysis : string;
      jobs : int;
      seq : int;
    }
      (** finished throughout the window, timed out in the flagged
          record *)

val cell_label : analysis:string -> jobs:int -> string
(** [analysis] for the sequential cell, ["analysis@jN"] for a parallel
    one — the rendering convention shared by flags, trend-page rows and
    the bisect CLI. *)

val pp_flag : Format.formatter -> flag -> unit

val check_latest : ?params:params -> Record.t list -> (flag list, string) result
(** Gate the ledger's {e latest} record: every cell it contains is
    tested against its own history.  Cells with no (or too little)
    history pass — a newly added analysis needs [min_points] runs
    before the trend can say anything about it.  Cells are keyed by
    (benchmark, analysis, jobs), and the sliding window {e only}
    admits records measured on a host with the same core count as the
    record under test — timings never compare across core counts.
    [Error] on an empty ledger. *)

val flag_mask :
  params -> metric -> benchmark:string -> analysis:string -> jobs:int ->
  Record.t list -> bool array
(** Per-record breach marks for one cell's whole history (each record
    tested against the window preceding it) — drives the red markers on
    the trend page. *)

val cell_value : metric -> Record.cell -> float option
(** [None] for timeouts and for heap on histogram-less records. *)

val page : ?params:params -> ledger:string -> Record.t list -> Pta_report.Trend_page.page
(** The full trend-page model: one row per (benchmark, analysis, jobs)
    in first-appearance order (parallel cells labelled
    ["analysis@jN"]), columns time / supergraph nodes / peak
    heap plus one column per census component seen in the cell's
    history, breach marks from {!flag_mask}, dirty builds marked from
    the records' build stamps. *)
