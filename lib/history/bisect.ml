module Snapshot = Pta_report.Bench_snapshot
module Memstats = Pta_obs.Memstats

type outcome = {
  benchmark : string;
  analysis : string;
  jobs : int;
  metric : Trend.metric;
  anchor : Trend.stats;
  first_bad : Record.t;
  last_good : Record.t option;
  probes : (int * bool) list;
}

(* The anchor window: the first [window] finished observations of the
   cell, scanning from the start of the ledger.  Records measured on a
   host whose core count differs from [cores] (the latest record's) are
   skipped: timings do not transfer across core counts, so an anchor
   mixing them would bisect hardware changes, not code. *)
let anchor_values (p : Trend.params) metric ~benchmark ~analysis ~jobs ~cores
    records =
  let rec go acc count = function
    | [] -> List.rev acc
    | _ when count >= p.Trend.window -> List.rev acc
    | (r : Record.t) :: rest ->
      if r.Record.host.Record.cores <> cores then go acc count rest
      else (
        match
          Option.bind
            (Record.cell_find ~jobs r ~benchmark ~analysis)
            (Trend.cell_value metric)
        with
        | Some v -> go (v :: acc) (count + 1) rest
        | None -> go acc count rest)
  in
  go [] 0 records

let run ?(params = Trend.default_params) ?(jobs = 1) ~metric ~benchmark
    ~analysis records =
  match records with
  | [] -> Error "empty ledger: nothing to bisect"
  | _ -> (
    let label = Trend.cell_label ~analysis ~jobs in
    let cores =
      (List.hd (List.rev records)).Record.host.Record.cores
    in
    let anchor_vals =
      anchor_values params metric ~benchmark ~analysis ~jobs ~cores records
    in
    match Trend.window_stats params metric anchor_vals with
    | None ->
      if List.length anchor_vals < params.Trend.min_points then
        Error
          (Printf.sprintf
             "%s/%s: only %d finished %s observation(s) to anchor on (need %d)"
             benchmark label (List.length anchor_vals)
             (Trend.metric_name metric) params.Trend.min_points)
      else
        Error
          (Printf.sprintf
             "%s/%s: anchor median sits below the %s noise floor; nothing \
              meaningful to bisect"
             benchmark label (Trend.metric_name metric))
    | Some anchor ->
      let arr = Array.of_list records in
      let probes = ref [] in
      (* Bad = crossed the anchor threshold, or timed out where the
         anchor finished.  An absent cell is treated as good: the cell
         did not exist yet, so the regression cannot predate it.  A
         record from a host with a different core count is likewise
         good — its timings are incommensurable with the anchor, so it
         cannot witness the regression. *)
      let bad i =
        let r = arr.(i) in
        let verdict =
          if r.Record.host.Record.cores <> cores then false
          else
            match Record.cell_find ~jobs r ~benchmark ~analysis with
            | None -> false
            | Some c when c.Record.timed_out -> true
            | Some c -> (
              match Trend.cell_value metric c with
              | None -> false
              | Some v -> v > anchor.Trend.threshold)
        in
        probes := (r.Record.seq, verdict) :: !probes;
        verdict
      in
      let last = Array.length arr - 1 in
      if not (bad last) then Ok None
      else begin
        (* Invariant: pred at [lo] is false (or lo = -1, the before-
           history sentinel), pred at [hi] is true. *)
        let lo = ref (-1) and hi = ref last in
        while !hi - !lo > 1 do
          let mid = !lo + ((!hi - !lo) / 2) in
          if bad mid then hi := mid else lo := mid
        done;
        Ok
          (Some
             {
               benchmark;
               analysis;
               jobs;
               metric;
               anchor;
               first_bad = arr.(!hi);
               last_good = (if !lo >= 0 then Some arr.(!lo) else None);
               probes = List.rev !probes;
             })
      end)

let pp_outcome ppf o =
  let commit (r : Record.t) = Record.commit_label r.Record.build in
  Format.fprintf ppf "@[<v>%s/%s, metric %s:@," o.benchmark
    (Trend.cell_label ~analysis:o.analysis ~jobs:o.jobs)
    (Trend.metric_name o.metric);
  Format.fprintf ppf "  anchor: median %.4g, threshold %.4g@,"
    o.anchor.Trend.median o.anchor.Trend.threshold;
  (match o.last_good with
  | Some g ->
    Format.fprintf ppf "  last good: seq %d (%s)@," g.Record.seq (commit g)
  | None ->
    Format.fprintf ppf "  last good: none — the ledger starts bad@,");
  Format.fprintf ppf "  first bad: seq %d (%s)@," o.first_bad.Record.seq
    (commit o.first_bad);
  Format.fprintf ppf "  probes: %s@]"
    (String.concat ", "
       (List.map
          (fun (seq, b) ->
            Printf.sprintf "#%d=%s" seq (if b then "bad" else "good"))
          o.probes))

(* ------------------------------------------------------------------ *)
(* git bisect handoff                                                  *)
(* ------------------------------------------------------------------ *)

let baseline_snapshot ?(jobs = 1) (r : Record.t) ~benchmark ~analysis =
  match Record.cell_find ~jobs r ~benchmark ~analysis with
  | None ->
    Error
      (Printf.sprintf "record #%d has no cell %s/%s" r.Record.seq benchmark
         analysis)
  | Some c when c.Record.timed_out ->
    Error
      (Printf.sprintf "record #%d: %s/%s timed out; cannot baseline on it"
         r.Record.seq benchmark analysis)
  | Some c ->
    let memory =
      Option.map
        (fun peak ->
          (* Only the peak survives into a ledger record; the rest of
             the GC profile is zeroed, which the comparator ignores. *)
          {
            Memstats.minor_allocated_words = 0.;
            promoted_delta_words = 0.;
            major_allocated_words = 0.;
            minor_collections_delta = 0;
            major_collections_delta = 0;
            compactions_delta = 0;
            heap_words_after = peak;
            peak_heap_words = peak;
          })
        c.Record.peak_heap_words
    in
    Ok
      {
        Snapshot.schema_version = Snapshot.current_schema_version;
        timeout_s = r.Record.timeout_s;
        host_cores = r.Record.host.Record.cores;
        pointsto = None;
        cells =
          [
            {
              Snapshot.benchmark = c.Record.benchmark;
              analysis = c.Record.analysis;
              timed_out = false;
              time_s = c.Record.time_s;
              iterations = c.Record.iterations;
              nodes = c.Record.nodes;
              memory;
              time_hist = c.Record.time_hist;
              heap_components = c.Record.heap_components;
              jobs = c.Record.jobs;
              domains = c.Record.domains;
            };
          ];
      }

(* The run command is nested two shells deep (`git bisect run sh -c`),
   so rather than double-quote we only accept names that need none. *)
let shell_safe s =
  s <> ""
  && String.for_all
       (function
         | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '.' | '_' | '/' | '+' | '-' ->
           true
         | _ -> false)
       s

let git_script o ~ledger ~baseline_file =
  match o.last_good with
  | None ->
    Error
      "the whole ledger span is bad — there is no good commit to start `git \
       bisect` from"
  | Some good ->
    let gb = good.Record.build and bb = o.first_bad.Record.build in
    if gb.Record.commit = "unknown" || bb.Record.commit = "unknown" then
      Error "good or bad record carries no commit hash; cannot drive git bisect"
    else if gb.Record.dirty || bb.Record.dirty then
      Error
        "good or bad record was measured on a dirty worktree; its commit hash \
         does not name the measured tree, refusing to drive git bisect"
    else if
      not
        (shell_safe o.benchmark && shell_safe o.analysis
        && shell_safe baseline_file)
    then
      Error
        "benchmark, analysis or baseline path contains characters that would \
         need shell quoting; refusing to generate a script"
    else
      (* Gate only the bisected metric: the others get a tolerance
         wide enough to never fire. *)
      let rel_pct =
        ((o.anchor.Trend.threshold /. o.anchor.Trend.median) -. 1.) *. 100.
      in
      let wide = "1000000" in
      let time_tol, heap_tol, comp_tol =
        let pct = Printf.sprintf "%.1f" rel_pct in
        match o.metric with
        | Trend.Time -> (pct, wide, wide)
        | Trend.Heap -> (wide, pct, wide)
        | Trend.Heap_component _ -> (wide, wide, pct)
      in
      Ok
        (String.concat "\n"
           [
             "#!/bin/sh";
             Printf.sprintf
               "# Generated by `pointsto bench bisect` from %s." ledger;
             Printf.sprintf "# Cell %s/%s, metric %s." o.benchmark
               (Trend.cell_label ~analysis:o.analysis ~jobs:o.jobs)
               (Trend.metric_name o.metric);
             Printf.sprintf "# Ledger span: last good #%d (%s), first bad #%d \
                             (%s)."
               good.Record.seq gb.Record.commit o.first_bad.Record.seq
               bb.Record.commit;
             Printf.sprintf
               "# Baseline snapshot (from the last-good record): %s"
               baseline_file;
             "# Each step rebuilds and re-measures just this cell; a build";
             "# failure skips the commit (exit 125) rather than misjudging it.";
             "set -e";
             Printf.sprintf "git bisect start %s %s" bb.Record.commit
               gb.Record.commit;
             Printf.sprintf
               "git bisect run sh -c 'dune build bench/main.exe || exit 125; \
                dune exec bench/main.exe -- --benchmarks %s --analyses %s%s \
                --compare --baseline %s --time-tol %s --heap-tol %s \
                --heap-component-tol %s'"
               o.benchmark o.analysis
               (if o.jobs = 1 then ""
                else Printf.sprintf " --jobs %d" o.jobs)
               baseline_file time_tol heap_tol comp_tol;
             "git bisect reset";
             "";
           ])
