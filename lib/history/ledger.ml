module Json = Pta_obs.Json

let to_line r = Json.to_string ~indent:false (Record.to_json r)

let next_seq = function
  | [] -> 0
  | records -> (List.nth records (List.length records - 1)).Record.seq + 1

let is_blank s = String.for_all (function ' ' | '\t' | '\r' -> true | _ -> false) s

let load path =
  match open_in_bin path with
  | exception Sys_error e -> Error (Printf.sprintf "cannot open ledger: %s" e)
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let err line msg =
          Error (Printf.sprintf "%s:%d: %s" path line msg)
        in
        let rec go line_no last_seq acc =
          match input_line ic with
          | exception End_of_file -> Ok (List.rev acc)
          | line when is_blank line -> go (line_no + 1) last_seq acc
          | line -> (
            match Json.of_string line with
            | Error e -> err line_no (Printf.sprintf "bad JSON: %s" e)
            | Ok json -> (
              match Record.of_json json with
              | Error e -> err line_no e
              | Ok r ->
                if r.Record.seq <= last_seq then
                  err line_no
                    (Printf.sprintf
                       "seq %d does not increase (previous record had %d)"
                       r.Record.seq last_seq)
                else go (line_no + 1) r.Record.seq (r :: acc)))
        in
        go 1 (-1) [])

let load_or_empty path =
  if Sys.file_exists path then load path else Ok []

let append ~path r =
  match load_or_empty path with
  | Error e -> Error (Printf.sprintf "refusing to append: %s" e)
  | Ok existing -> (
    let r = { r with Record.seq = next_seq existing } in
    match open_out_gen [ Open_append; Open_creat ] 0o644 path with
    | exception Sys_error e -> Error (Printf.sprintf "cannot append: %s" e)
    | oc ->
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc (to_line r);
          output_char oc '\n');
      Ok r)

let describe (r : Record.t) =
  Printf.sprintf "#%-3d %-18s %-8s %-12s %3d cells%s" r.Record.seq
    (Record.commit_label r.Record.build)
    r.Record.build.Record.profile r.Record.host.Record.hostname
    (List.length r.Record.cells)
    (match r.Record.note with None -> "" | Some n -> "  (" ^ n ^ ")")
