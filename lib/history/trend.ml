module Snapshot = Pta_report.Bench_snapshot
module Trend_page = Pta_report.Trend_page

type metric = Time | Heap | Heap_component of string

let metric_name = function
  | Time -> "time"
  | Heap -> "heap"
  | Heap_component name -> "heap:" ^ name

let metric_of_string = function
  | "time" -> Ok Time
  | "heap" -> Ok Heap
  | s when String.length s > 5 && String.sub s 0 5 = "heap:" ->
    Ok (Heap_component (String.sub s 5 (String.length s - 5)))
  | s ->
    Error
      (Printf.sprintf
         "unknown metric %S (expected time, heap or heap:<component>)" s)

type params = {
  window : int;
  min_points : int;
  mad_k : float;
  tolerances : Snapshot.thresholds;
}

let default_params =
  {
    window = 5;
    min_points = 3;
    mad_k = 4.0;
    tolerances = Snapshot.default_thresholds;
  }

type stats = { median : float; mad : float; threshold : float }

(* Components smaller than this (words) are skipped by the trend test:
   a bookkeeping table growing from 50 to 80 words is not a memory
   regression worth a red mark. *)
let heap_component_noise_words = 1024.

(* Consistency constant for the normal distribution: 1.4826 * MAD
   estimates the standard deviation. *)
let mad_scale = 1.4826

let median_of = function
  | [] -> invalid_arg "Trend.median_of: empty"
  | xs ->
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.

let window_stats p metric values =
  if List.length values < p.min_points then None
  else
    let median = median_of values in
    let tol_pct, noise_floor =
      match metric with
      | Time -> (p.tolerances.Snapshot.time_tol_pct, p.tolerances.Snapshot.min_time_s)
      | Heap -> (p.tolerances.Snapshot.heap_tol_pct, 0.)
      | Heap_component _ ->
        ( p.tolerances.Snapshot.heap_component_tol_pct,
          heap_component_noise_words )
    in
    if median < noise_floor then None
    else
      let mad = median_of (List.map (fun v -> Float.abs (v -. median)) values) in
      let spread = p.mad_k *. mad_scale *. mad in
      let rel_floor = median *. tol_pct /. 100. in
      Some { median; mad; threshold = median +. Float.max spread rel_floor }

let cell_value metric (c : Record.cell) =
  if c.Record.timed_out then None
  else
    match metric with
    | Time -> Some c.Record.time_s
    | Heap -> Option.map float_of_int c.Record.peak_heap_words
    | Heap_component name ->
      Option.map
        (fun (comp : Pta_obs.Census.component) ->
          float_of_int comp.Pta_obs.Census.retained_words)
        (List.find_opt
           (fun (comp : Pta_obs.Census.component) ->
             String.equal comp.Pta_obs.Census.comp_name name)
           c.Record.heap_components)

(* The up-to-[window] most recent finished observations among the
   records strictly before index [i].  Records measured on a host with
   a different core count than record [i]'s are skipped outright:
   parallel (and even sequential) timings do not transfer across core
   counts, and a window mixing them would flag (or mask) on hardware,
   not code.  Unknown (pre-v3) core counts only match unknown. *)
let window_before p metric records ~benchmark ~analysis ~jobs i =
  let cores = records.(i).Record.host.Record.cores in
  let rec go j acc count =
    if j < 0 || count >= p.window then acc
    else if records.(j).Record.host.Record.cores <> cores then
      go (j - 1) acc count
    else
      match
        Option.bind
          (Record.cell_find ~jobs records.(j) ~benchmark ~analysis)
          (cell_value metric)
      with
      | Some v -> go (j - 1) (v :: acc) (count + 1)
      | None -> go (j - 1) acc count
  in
  go (i - 1) [] 0

type flag =
  | Breach of {
      benchmark : string;
      analysis : string;
      jobs : int;
      metric : metric;
      seq : int;
      value : float;
      stats : stats;
    }
  | Became_timeout of {
      benchmark : string;
      analysis : string;
      jobs : int;
      seq : int;
    }

let cell_label ~analysis ~jobs =
  if jobs = 1 then analysis else Printf.sprintf "%s@j%d" analysis jobs

let pp_flag ppf = function
  | Breach f ->
    Format.fprintf ppf "%s/%s: %s %.4g exceeds threshold %.4g (median %.4g, MAD %.4g) at seq %d"
      f.benchmark (cell_label ~analysis:f.analysis ~jobs:f.jobs)
      (metric_name f.metric) f.value f.stats.threshold
      f.stats.median f.stats.mad f.seq
  | Became_timeout f ->
    Format.fprintf ppf "%s/%s: timed out at seq %d after finishing throughout its window"
      f.benchmark (cell_label ~analysis:f.analysis ~jobs:f.jobs) f.seq

let check_cell p records i ~benchmark ~analysis ~jobs =
  let r = records.(i) in
  match Record.cell_find ~jobs r ~benchmark ~analysis with
  | None -> []
  | Some c ->
    if c.Record.timed_out then
      (* A fresh timeout is a regression whenever the cell has enough
         finished history for the trend to have an opinion at all. *)
      let w = window_before p Time records ~benchmark ~analysis ~jobs i in
      if List.length w >= p.min_points then
        [ Became_timeout { benchmark; analysis; jobs; seq = r.Record.seq } ]
      else []
    else
      List.filter_map
        (fun metric ->
          match cell_value metric c with
          | None -> None
          | Some value -> (
            let w = window_before p metric records ~benchmark ~analysis ~jobs i in
            match window_stats p metric w with
            | Some stats when value > stats.threshold ->
              Some
                (Breach
                   {
                     benchmark;
                     analysis;
                     jobs;
                     metric;
                     seq = r.Record.seq;
                     value;
                     stats;
                   })
            | _ -> None))
        (Time :: Heap
        :: List.map
             (fun (comp : Pta_obs.Census.component) ->
               Heap_component comp.Pta_obs.Census.comp_name)
             c.Record.heap_components)

let check_latest ?(params = default_params) records =
  match records with
  | [] -> Error "empty ledger: nothing to check"
  | _ ->
    let arr = Array.of_list records in
    let last = Array.length arr - 1 in
    Ok
      (List.concat_map
         (fun (c : Record.cell) ->
           check_cell params arr last ~benchmark:c.Record.benchmark
             ~analysis:c.Record.analysis ~jobs:c.Record.jobs)
         arr.(last).Record.cells)

let flag_mask p metric ~benchmark ~analysis ~jobs records =
  let arr = Array.of_list records in
  Array.mapi
    (fun i _ ->
      List.exists
        (function
          | Breach f -> f.metric = metric
          | Became_timeout _ -> metric = Time)
        (check_cell p arr i ~benchmark ~analysis ~jobs))
    arr

(* ------------------------------------------------------------------ *)
(* Trend-page model                                                    *)
(* ------------------------------------------------------------------ *)

let cell_universe records =
  let seen = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun (r : Record.t) ->
      List.iter
        (fun (c : Record.cell) ->
          let key = (c.Record.benchmark, c.Record.analysis, c.Record.jobs) in
          if not (Hashtbl.mem seen key) then (
            Hashtbl.add seen key ();
            order := key :: !order))
        r.Record.cells)
    records;
  List.rev !order

let point_label (r : Record.t) value_txt =
  Printf.sprintf "#%d %s: %s" r.Record.seq
    (Record.commit_label r.Record.build)
    value_txt

let series_of p metric ~fmt ~benchmark ~analysis ~jobs records =
  let flags = flag_mask p metric ~benchmark ~analysis ~jobs records in
  List.mapi
    (fun i (r : Record.t) ->
      let value, timed_out, txt =
        match Record.cell_find ~jobs r ~benchmark ~analysis with
        | None -> (None, false, "absent")
        | Some c when c.Record.timed_out ->
          (None, true, Printf.sprintf "timeout after %.0fs" c.Record.time_s)
        | Some c -> (
          match cell_value metric c with
          | Some v -> (Some v, false, fmt v)
          | None -> (None, false, "absent"))
      in
      {
        Trend_page.value;
        timed_out;
        label = point_label r txt;
        dirty = r.Record.build.Record.dirty;
        (* a timeout flag belongs on the timeout cross itself *)
        flagged = flags.(i) && (value <> None || timed_out);
      })
    records

(* Unflagged informational column from an arbitrary extractor. *)
let plain_series ~fmt ~value_of ~benchmark ~analysis ~jobs records =
  List.map
    (fun (r : Record.t) ->
      let value, timed_out, txt =
        match Record.cell_find ~jobs r ~benchmark ~analysis with
        | None -> (None, false, "absent")
        | Some c when c.Record.timed_out -> (None, true, "timeout")
        | Some c -> (
          match value_of c with
          | Some v -> (Some v, false, fmt v)
          | None -> (None, false, "absent"))
      in
      {
        Trend_page.value;
        timed_out;
        label = point_label r txt;
        dirty = r.Record.build.Record.dirty;
        flagged = false;
      })
    records

let fmt_time v = Printf.sprintf "%.2f" v
let fmt_nodes v = string_of_int (int_of_float v)
let fmt_heap_mw v = Printf.sprintf "%.1fM" (v /. 1_000_000.)

let fmt_heap_words v =
  if v >= 1e6 then Printf.sprintf "%.1fM" (v /. 1e6)
  else if v >= 1e3 then Printf.sprintf "%.1fk" (v /. 1e3)
  else string_of_int (int_of_float v)

(* Census component names present anywhere in one cell's history, in
   first-appearance order — the page grows one column per component. *)
let component_universe ~benchmark ~analysis ~jobs records =
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (r : Record.t) ->
      match Record.cell_find ~jobs r ~benchmark ~analysis with
      | None -> ()
      | Some c ->
        List.iter
          (fun (comp : Pta_obs.Census.component) ->
            let name = comp.Pta_obs.Census.comp_name in
            if not (Hashtbl.mem seen name) then (
              Hashtbl.add seen name ();
              order := name :: !order))
          c.Record.heap_components)
    records;
  List.rev !order

let subtitle ~ledger records =
  match (records, List.rev records) with
  | first :: _, last :: _ ->
    Printf.sprintf "%s — %d records, seq %d..%d, %s .. %s (host %s, profile %s)"
      ledger (List.length records) first.Record.seq last.Record.seq
      (Record.commit_label first.Record.build)
      (Record.commit_label last.Record.build)
      last.Record.host.Record.hostname last.Record.build.Record.profile
  | _ -> Printf.sprintf "%s — empty ledger" ledger

let page ?(params = default_params) ~ledger records =
  let cells =
    List.map
      (fun (benchmark, analysis, jobs) ->
        {
          Trend_page.c_benchmark = benchmark;
          c_analysis = cell_label ~analysis ~jobs;
          c_metrics =
            [
              {
                Trend_page.m_name = "time (s)";
                m_fmt = fmt_time;
                m_series =
                  series_of params Time ~fmt:fmt_time ~benchmark ~analysis
                    ~jobs records;
              };
              {
                Trend_page.m_name = "nodes";
                m_fmt = fmt_nodes;
                m_series =
                  plain_series ~fmt:fmt_nodes
                    ~value_of:(fun c ->
                      Option.map float_of_int c.Record.nodes)
                    ~benchmark ~analysis ~jobs records;
              };
              {
                Trend_page.m_name = "peak heap (words)";
                m_fmt = fmt_heap_mw;
                m_series =
                  series_of params Heap ~fmt:fmt_heap_mw ~benchmark ~analysis
                    ~jobs records;
              };
            ]
            @ List.map
                (fun name ->
                  {
                    Trend_page.m_name =
                      Printf.sprintf "heap:%s (words)" name;
                    m_fmt = fmt_heap_words;
                    m_series =
                      series_of params (Heap_component name)
                        ~fmt:fmt_heap_words ~benchmark ~analysis ~jobs
                        records;
                  })
                (component_universe ~benchmark ~analysis ~jobs records);
        })
      (cell_universe records)
  in
  {
    Trend_page.p_title = "pointsto bench trend";
    p_subtitle = subtitle ~ledger records;
    p_cells = cells;
  }
