(** Engine-independent view of a solved analysis.

    Checkers consume this abstraction instead of {!Pta_solver.Solver.t}
    directly so the same checker logic runs over the native solver and
    over the Datalog reference implementation — which is what lets the
    differential tests compare checker verdicts across engines.  All
    views are context-insensitive projections: contexts are collapsed,
    matching what the clients report. *)

module Ir = Pta_ir.Ir
module Intset = Pta_solver.Intset

type t = {
  program : Ir.Program.t;
  hierarchy : Pta_ir.Hierarchy.t;
  reachable : Ir.Meth_id.Set.t;
  points_to : Ir.Var_id.t -> Intset.t;
      (** context-insensitive points-to set, as heap ids *)
  invo_targets : Ir.Invo_id.t -> Ir.Meth_id.Set.t;
  solver : Pta_solver.Solver.t option;
      (** present only for native-solver results; enables provenance
          enrichment of witnesses *)
  taint : Pta_taint.Taint.summary option;
      (** taint-flow results, when a spec was supplied; the taint
          checkers are silent without one.  Either engine's summary fits
          ({!Pta_taint.Taint.summary} / {!Pta_taint.Taint_ref.summary});
          only the native one carries provenance ([s_explain]). *)
}

val of_solver : ?taint:Pta_taint.Taint.summary -> Pta_solver.Solver.t -> t
(** @raise Invalid_argument on an aborted (budget-exhausted) run; a
    partial fixpoint under-approximates and would make checkers lie. *)

val of_refimpl :
  ?taint:Pta_taint.Taint.summary -> Ir.Program.t -> Pta_refimpl.Refimpl.t -> t
