module Srcloc = Pta_ir.Srcloc

type severity =
  | Error
  | Warning
  | Note

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Note -> "note"

type witness = {
  w_message : string;
  w_span : Srcloc.span option;
  w_detail : string list;
}

type t = {
  code : string;
  severity : severity;
  span : Srcloc.span option;
  message : string;
  witnesses : witness list;
}

let compare_span a b =
  match (a, b) with
  | None, None -> 0
  | Some _, None -> -1
  | None, Some _ -> 1
  | Some a, Some b ->
    let open Srcloc in
    let c = String.compare a.left.file b.left.file in
    if c <> 0 then c
    else
      let c = Int.compare a.left.line b.left.line in
      if c <> 0 then c else Int.compare a.left.col b.left.col

let compare a b =
  let c = compare_span a.span b.span in
  if c <> 0 then c
  else
    let c = String.compare a.code b.code in
    if c <> 0 then c else String.compare a.message b.message

let has_errors diags = List.exists (fun d -> d.severity = Error) diags

let pp_loc ppf = function
  | Some span -> Format.fprintf ppf "%a" Srcloc.pp_pos span.Srcloc.left
  | None -> Format.pp_print_string ppf "<no location>"

let pp ppf d =
  Format.fprintf ppf "@[<v>%a: %s: %s [%s]" pp_loc d.span
    (severity_to_string d.severity)
    d.message d.code;
  List.iter
    (fun w ->
      Format.fprintf ppf "@,  %a: note: %s" pp_loc w.w_span w.w_message;
      List.iter (fun line -> Format.fprintf ppf "@,    %s" line) w.w_detail)
    d.witnesses;
  Format.fprintf ppf "@]"

let pp_report ppf diags =
  let diags = List.sort compare diags in
  List.iter (fun d -> Format.fprintf ppf "%a@." pp d) diags;
  let count sev = List.length (List.filter (fun d -> d.severity = sev) diags) in
  Format.fprintf ppf "%d error(s), %d warning(s), %d note(s)@." (count Error)
    (count Warning) (count Note)
