(** The checkers: each turns solved points-to state into diagnostics.

    All checkers run over {!Results.t}, so their verdicts are identical
    whichever engine produced the fixpoint.  Witness {e detail} (the
    provenance chains) is the one solver-only enrichment, kept in
    {!Diagnostic.witness.w_detail} so differential comparisons can
    ignore it. *)

type info = {
  code : string;  (** stable id; also the SARIF rule id *)
  summary : string;  (** one-line description (SARIF shortDescription) *)
  help : string;  (** what the finding means and what to do about it *)
  severity : Diagnostic.severity;
}

val all : info list
(** Every registered checker, in canonical order:
    may-fail-cast, null-dereference, dead-method, monomorphic-call-site,
    tainted-sink-argument, sanitizer-bypassed. *)

val find : string -> info option

val suggest : string -> string list
(** Up to three checker codes close to the (unknown) input, best first
    — same edit-distance scoring as
    {!Pta_context.Strategies.suggest}. *)

exception
  Unknown_checker of {
    code : string;  (** the unrecognized input *)
    suggestions : string list;  (** close matches, best first *)
    available : string list;  (** every registered code, canonical order *)
  }

val may_fail_cast : Results.t -> Diagnostic.t list
(** A cast whose operand may point to an object of an incompatible type
    — the points-to-powered upgrade of {!Pta_clients.Casts}: same
    verdicts, but located at the cast's source span with each offending
    allocation site as a witness (plus its provenance chain when the
    native solver produced the result). *)

val null_dereference : Results.t -> Diagnostic.t list
(** A field load, field store, or virtual call whose base variable has
    an empty points-to set: every execution reaching it dereferences
    null (or the instruction is dead). *)

val dead_method : Results.t -> Diagnostic.t list
(** Methods never reached from any entry point, context-insensitively. *)

val monomorphic_call_site : Results.t -> Diagnostic.t list
(** Virtual calls with exactly one resolved target — devirtualization
    opportunities, reported as notes. *)

val tainted_sink_argument : Results.t -> Diagnostic.t list
(** Source-to-sink taint flows, one diagnostic per (sink call,
    argument position), each source label a witness; native results
    enrich witnesses with the propagation chain ([w_detail], excluded
    from differential comparison like provenance).  Empty when
    {!Results.t.taint} is [None]. *)

val sanitizer_bypassed : Results.t -> Diagnostic.t list
(** Calls to a sanitizer that discard its result while passing a
    (context-insensitively) tainted argument — the cleansed value is
    dropped, so sanitization has no effect.  Empty when
    {!Results.t.taint} is [None]. *)

val run : ?only:string list -> Results.t -> Diagnostic.t list
(** Run the selected checkers (default: all) and return the merged
    diagnostics in {!Diagnostic.compare} order.
    @raise Unknown_checker on an unrecognized code in [only], carrying
    close-match suggestions and the full list of available codes. *)
