(** The checkers: each turns solved points-to state into diagnostics.

    All checkers run over {!Results.t}, so their verdicts are identical
    whichever engine produced the fixpoint.  Witness {e detail} (the
    provenance chains) is the one solver-only enrichment, kept in
    {!Diagnostic.witness.w_detail} so differential comparisons can
    ignore it. *)

type info = {
  code : string;  (** stable id; also the SARIF rule id *)
  summary : string;  (** one-line description (SARIF shortDescription) *)
  help : string;  (** what the finding means and what to do about it *)
  severity : Diagnostic.severity;
}

val all : info list
(** Every registered checker, in canonical order:
    may-fail-cast, null-dereference, dead-method, monomorphic-call-site. *)

val find : string -> info option

val may_fail_cast : Results.t -> Diagnostic.t list
(** A cast whose operand may point to an object of an incompatible type
    — the points-to-powered upgrade of {!Pta_clients.Casts}: same
    verdicts, but located at the cast's source span with each offending
    allocation site as a witness (plus its provenance chain when the
    native solver produced the result). *)

val null_dereference : Results.t -> Diagnostic.t list
(** A field load, field store, or virtual call whose base variable has
    an empty points-to set: every execution reaching it dereferences
    null (or the instruction is dead). *)

val dead_method : Results.t -> Diagnostic.t list
(** Methods never reached from any entry point, context-insensitively. *)

val monomorphic_call_site : Results.t -> Diagnostic.t list
(** Virtual calls with exactly one resolved target — devirtualization
    opportunities, reported as notes. *)

val run : ?only:string list -> Results.t -> Diagnostic.t list
(** Run the selected checkers (default: all) and return the merged
    diagnostics in {!Diagnostic.compare} order.
    @raise Invalid_argument on an unknown checker code in [only]. *)
