(** SARIF 2.1.0 export of checker diagnostics.

    One run, one tool driver ("pointsto"), one rule descriptor per
    registered checker (whether or not it fired), and one result per
    diagnostic.  The output is deterministic: diagnostics are emitted in
    {!Diagnostic.compare} order and the JSON printer is stable, so two
    identical analyses produce byte-identical documents. *)

val to_json : tool_version:string -> Diagnostic.t list -> Pta_obs.Json.t

val to_string : tool_version:string -> Diagnostic.t list -> string
(** [to_json] pretty-printed, with a trailing newline. *)
