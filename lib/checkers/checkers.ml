module Ir = Pta_ir.Ir
module Hierarchy = Pta_ir.Hierarchy
module Intset = Pta_solver.Intset
module Provenance = Pta_clients.Provenance
open Ir

type info = {
  code : string;
  summary : string;
  help : string;
  severity : Diagnostic.severity;
}

let all =
  [
    {
      code = "may-fail-cast";
      summary = "cast may fail at runtime";
      help =
        "The points-to set of the cast operand contains an allocation \
         site whose type is not a subtype of the cast type, so the cast \
         can raise a class-cast error at runtime.  Each incompatible \
         allocation site is reported as a witness.";
      severity = Diagnostic.Error;
    };
    {
      code = "null-dereference";
      summary = "dereference of a possibly-null variable";
      help =
        "The base variable of a field access or virtual call has an \
         empty points-to set: no allocation ever flows into it, so any \
         execution reaching the instruction dereferences null.";
      severity = Diagnostic.Warning;
    };
    {
      code = "dead-method";
      summary = "method unreachable from every entry point";
      help =
        "The method is declared but the context-insensitive call graph \
         never reaches it from any entry point; it is dead code under \
         the analyzed entry points.";
      severity = Diagnostic.Warning;
    };
    {
      code = "monomorphic-call-site";
      summary = "virtual call resolves to a single target";
      help =
        "The call graph finds exactly one callee for this virtual call; \
         it could be devirtualized (informational).";
      severity = Diagnostic.Note;
    };
    {
      code = "tainted-sink-argument";
      summary = "tainted value may reach a sink argument";
      help =
        "The taint analysis finds a context-sensitive flow from a \
         source to this argument of a sink call, uncut by any \
         sanitizer.  Each source label is reported as a witness; when \
         the native engine produced the result, the witness carries the \
         full propagation chain.  Silent unless a taint spec was \
         supplied.";
      severity = Diagnostic.Error;
    };
    {
      code = "sanitizer-bypassed";
      summary = "sanitizer called but its result is discarded";
      help =
        "A tainted value is passed to a sanitizer whose return value is \
         ignored, so the cleansed copy is dropped and the tainted \
         original flows on.  Usually a refactoring slip: the call was \
         meant to replace the value.  Silent unless a taint spec was \
         supplied.";
      severity = Diagnostic.Warning;
    };
  ]

let find code = List.find_opt (fun i -> i.code = code) all
let info code =
  match find code with
  | Some i -> i
  | None -> invalid_arg ("Checkers.info: unknown checker " ^ code)

(* Walk a method's instructions together with their recorded spans;
   [Program.instr_spans] is aligned with [iter_instrs] order. *)
let iter_instrs_with_spans program meth f =
  let mi = Program.meth_info program meth in
  let spans = Program.instr_spans program meth in
  let idx = ref 0 in
  iter_instrs
    (fun instr ->
      let i = !idx in
      incr idx;
      let span = if i < Array.length spans then Some spans.(i) else None in
      f instr span)
    mi.body

let mk code ?span message witnesses =
  {
    Diagnostic.code;
    severity = (info code).severity;
    span;
    message;
    witnesses;
  }

(* ------------------------------------------------------------------ *)
(* may-fail-cast                                                       *)
(* ------------------------------------------------------------------ *)

let provenance_detail (r : Results.t) ~var ~heap =
  match r.solver with
  | None -> []
  | Some solver ->
    (match Provenance.explain solver ~var ~heap with
    | None -> []
    | Some steps ->
      List.map
        (fun (s : Provenance.step) ->
          (if s.is_origin then "origin: " else "via: ") ^ s.description)
        steps)

let may_fail_cast (r : Results.t) =
  let p = r.program in
  Meth_id.Set.fold
    (fun meth acc ->
      let acc_ref = ref acc in
      iter_instrs_with_spans p meth (fun instr span ->
          match instr with
          | Cast { source; cast_type; _ } ->
            let bad =
              Intset.fold
                (fun heap bad ->
                  let heap = Heap_id.of_int heap in
                  let heap_type = (Program.heap_info p heap).heap_type in
                  if Hierarchy.subtype r.hierarchy ~sub:heap_type ~sup:cast_type
                  then bad
                  else heap :: bad)
                (r.points_to source) []
            in
            (match List.rev bad with
            | [] -> ()
            | heaps ->
              let witnesses =
                List.map
                  (fun heap ->
                    {
                      Diagnostic.w_message =
                        Printf.sprintf "may point to %s of type %s, allocated here"
                          (Program.heap_name p heap)
                          (Program.type_name p
                             (Program.heap_info p heap).heap_type);
                      w_span = Program.heap_span p heap;
                      w_detail = provenance_detail r ~var:source ~heap;
                    })
                  heaps
              in
              let d =
                mk "may-fail-cast" ?span
                  (Printf.sprintf "cast of %s to %s may fail"
                     (Program.var_info p source).var_name
                     (Program.type_name p cast_type))
                  witnesses
              in
              acc_ref := d :: !acc_ref)
          | Alloc _ | Move _ | Load _ | Store _ | Virtual_call _
          | Static_call _ | Static_load _ | Static_store _ | Throw _ -> ());
      !acc_ref)
    r.reachable []

(* ------------------------------------------------------------------ *)
(* null-dereference                                                    *)
(* ------------------------------------------------------------------ *)

let null_dereference (r : Results.t) =
  let p = r.program in
  let describe instr =
    match instr with
    | Load { base; field; _ } ->
      Some
        ( base,
          Printf.sprintf "load of field %s from %s which never points to any object"
            (Program.field_info p field).field_name
            (Program.var_info p base).var_name )
    | Store { base; field; _ } ->
      Some
        ( base,
          Printf.sprintf "store to field %s of %s which never points to any object"
            (Program.field_info p field).field_name
            (Program.var_info p base).var_name )
    | Virtual_call { base; signature; _ } ->
      Some
        ( base,
          Printf.sprintf "virtual call %s.%s on a receiver that never points to any object"
            (Program.var_info p base).var_name
            (Program.sig_info p signature).sig_name )
    | Alloc _ | Move _ | Cast _ | Static_call _ | Static_load _
    | Static_store _ | Throw _ -> None
  in
  Meth_id.Set.fold
    (fun meth acc ->
      let acc_ref = ref acc in
      iter_instrs_with_spans p meth (fun instr span ->
          match describe instr with
          | Some (base, message) when Intset.is_empty (r.points_to base) ->
            acc_ref := mk "null-dereference" ?span message [] :: !acc_ref
          | _ -> ());
      !acc_ref)
    r.reachable []

(* ------------------------------------------------------------------ *)
(* dead-method                                                         *)
(* ------------------------------------------------------------------ *)

let dead_method (r : Results.t) =
  let p = r.program in
  let acc = ref [] in
  Program.iter_meths p (fun meth _mi ->
      if not (Meth_id.Set.mem meth r.reachable) then
        acc :=
          mk "dead-method"
            ?span:(Program.meth_span p meth)
            (Printf.sprintf "method %s is unreachable from every entry point"
               (Program.meth_qualified_name p meth))
            []
          :: !acc);
  !acc

(* ------------------------------------------------------------------ *)
(* monomorphic-call-site                                               *)
(* ------------------------------------------------------------------ *)

let monomorphic_call_site (r : Results.t) =
  let p = r.program in
  Meth_id.Set.fold
    (fun meth acc ->
      let acc_ref = ref acc in
      iter_instrs_with_spans p meth (fun instr span ->
          match instr with
          | Virtual_call { invo; _ } ->
            let targets = r.invo_targets invo in
            if Meth_id.Set.cardinal targets = 1 then begin
              let target = Meth_id.Set.choose targets in
              let witnesses =
                [
                  {
                    Diagnostic.w_message = "the single target, declared here";
                    w_span = Program.meth_span p target;
                    w_detail = [];
                  };
                ]
              in
              acc_ref :=
                mk "monomorphic-call-site" ?span
                  (Printf.sprintf "virtual call resolves to the single target %s"
                     (Program.meth_qualified_name p target))
                  witnesses
                :: !acc_ref
            end
          | Alloc _ | Move _ | Load _ | Store _ | Cast _ | Static_call _
          | Static_load _ | Static_store _ | Throw _ -> ());
      !acc_ref)
    r.reachable []

(* ------------------------------------------------------------------ *)
(* tainted-sink-argument                                               *)
(* ------------------------------------------------------------------ *)

let tainted_sink_argument (r : Results.t) =
  match r.taint with
  | None -> []
  | Some s ->
    let p = r.program in
    let spec = s.Pta_taint.Taint.s_spec in
    let sources = Array.of_list (Pta_taint.Spec.sources spec) in
    (* flows grouped by invocation, then by argument position *)
    let by_invo : (int, (int * int) list ref) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun (f : Pta_taint.Taint.flow) ->
        let key = Invo_id.to_int f.f_invo in
        match Hashtbl.find_opt by_invo key with
        | Some l -> l := (f.f_pos, f.f_label) :: !l
        | None -> Hashtbl.add by_invo key (ref [ (f.f_pos, f.f_label) ]))
      s.s_flows;
    Meth_id.Set.fold
      (fun meth acc ->
        let acc_ref = ref acc in
        iter_instrs_with_spans p meth (fun instr span ->
            let invo =
              match instr with
              | Virtual_call { invo; _ } | Static_call { invo; _ } -> Some invo
              | Alloc _ | Move _ | Load _ | Store _ | Cast _ | Static_load _
              | Static_store _ | Throw _ -> None
            in
            match invo with
            | None -> ()
            | Some invo -> (
              match Hashtbl.find_opt by_invo (Invo_id.to_int invo) with
              | None -> ()
              | Some flows ->
                let positions =
                  List.sort_uniq compare (List.map fst !flows)
                in
                List.iter
                  (fun pos ->
                    let labels =
                      List.sort_uniq compare
                        (List.filter_map
                           (fun (pp, l) -> if pp = pos then Some l else None)
                           !flows)
                    in
                    let witnesses =
                      List.map
                        (fun label ->
                          let src = sources.(label) in
                          let flow =
                            {
                              Pta_taint.Taint.f_label = label;
                              f_invo = invo;
                              f_pos = pos;
                            }
                          in
                          {
                            Diagnostic.w_message =
                              Printf.sprintf "source %s, declared here"
                                (Pta_taint.Spec.label_name spec label);
                            w_span =
                              Program.meth_span p src.Pta_taint.Spec.src_meth;
                            w_detail = s.s_explain flow;
                          })
                        labels
                    in
                    let d =
                      mk "tainted-sink-argument" ?span
                        (Printf.sprintf
                           "argument %d of sink call %s may carry taint from %s"
                           pos
                           (Program.invo_name p invo)
                           (String.concat ", "
                              (List.map
                                 (Pta_taint.Spec.label_name spec)
                                 labels)))
                        witnesses
                    in
                    acc_ref := d :: !acc_ref)
                  positions));
        !acc_ref)
      r.reachable []

(* ------------------------------------------------------------------ *)
(* sanitizer-bypassed                                                  *)
(* ------------------------------------------------------------------ *)

let sanitizer_bypassed (r : Results.t) =
  match r.taint with
  | None -> []
  | Some s ->
    let p = r.program in
    let spec = s.Pta_taint.Taint.s_spec in
    let tainted v =
      match Var_id.Tbl.find_opt s.s_tainted v with
      | Some labels -> not (Intset.is_empty labels)
      | None -> false
    in
    Meth_id.Set.fold
      (fun meth acc ->
        let acc_ref = ref acc in
        iter_instrs_with_spans p meth (fun instr span ->
            let call =
              match instr with
              | Static_call { callee; args; ret_target = None; _ } ->
                Some (Meth_id.Set.singleton callee, args)
              | Virtual_call { invo; args; ret_target = None; _ } ->
                Some (r.invo_targets invo, args)
              | Virtual_call _ | Static_call _ | Alloc _ | Move _ | Load _
              | Store _ | Cast _ | Static_load _ | Static_store _ | Throw _ ->
                None
            in
            match call with
            | None -> ()
            | Some (targets, args) ->
              let sanitizers =
                Meth_id.Set.filter
                  (Pta_taint.Spec.is_sanitizer spec)
                  targets
              in
              let dirty = List.filter tainted args in
              if (not (Meth_id.Set.is_empty sanitizers)) && dirty <> [] then begin
                let witnesses =
                  List.map
                    (fun san ->
                      {
                        Diagnostic.w_message = "the sanitizer, declared here";
                        w_span = Program.meth_span p san;
                        w_detail = [];
                      })
                    (Meth_id.Set.elements sanitizers)
                in
                let d =
                  mk "sanitizer-bypassed" ?span
                    (Printf.sprintf
                       "result of sanitizer %s is discarded; %s stays tainted"
                       (Program.meth_qualified_name p
                          (Meth_id.Set.min_elt sanitizers))
                       (String.concat ", "
                          (List.map
                             (fun v -> (Program.var_info p v).var_name)
                             dirty)))
                    witnesses
                in
                acc_ref := d :: !acc_ref
              end);
        !acc_ref)
      r.reachable []

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let checker_fn code =
  match code with
  | "may-fail-cast" -> may_fail_cast
  | "null-dereference" -> null_dereference
  | "dead-method" -> dead_method
  | "monomorphic-call-site" -> monomorphic_call_site
  | "tainted-sink-argument" -> tainted_sink_argument
  | "sanitizer-bypassed" -> sanitizer_bypassed
  | _ -> assert false

exception
  Unknown_checker of {
    code : string;
    suggestions : string list;
    available : string list;
  }

(* Same scoring as [Pta_context.Strategies.suggest], over checker codes. *)
let levenshtein a b =
  let la = String.length a and lb = String.length b in
  let prev = Array.init (lb + 1) (fun j -> j) in
  let cur = Array.make (lb + 1) 0 in
  for i = 1 to la do
    cur.(0) <- i;
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      cur.(j) <- min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
    done;
    Array.blit cur 0 prev 0 (lb + 1)
  done;
  prev.(lb)

let suggest code =
  let target = String.lowercase_ascii code in
  let scored =
    List.filter_map
      (fun i ->
        let d = levenshtein target (String.lowercase_ascii i.code) in
        if d <= 5 then Some (d, i.code) else None)
      all
  in
  let sorted = List.sort compare scored in
  List.filteri (fun i _ -> i < 3) (List.map snd sorted)

let run ?only results =
  let selected =
    match only with
    | None -> all
    | Some codes ->
      List.map
        (fun code ->
          match find code with
          | Some i -> i
          | None ->
            raise
              (Unknown_checker
                 {
                   code;
                   suggestions = suggest code;
                   available = List.map (fun i -> i.code) all;
                 }))
        codes
  in
  List.sort Diagnostic.compare
    (List.concat_map (fun i -> checker_fn i.code results) selected)
