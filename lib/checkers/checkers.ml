module Ir = Pta_ir.Ir
module Hierarchy = Pta_ir.Hierarchy
module Intset = Pta_solver.Intset
module Provenance = Pta_clients.Provenance
open Ir

type info = {
  code : string;
  summary : string;
  help : string;
  severity : Diagnostic.severity;
}

let all =
  [
    {
      code = "may-fail-cast";
      summary = "cast may fail at runtime";
      help =
        "The points-to set of the cast operand contains an allocation \
         site whose type is not a subtype of the cast type, so the cast \
         can raise a class-cast error at runtime.  Each incompatible \
         allocation site is reported as a witness.";
      severity = Diagnostic.Error;
    };
    {
      code = "null-dereference";
      summary = "dereference of a possibly-null variable";
      help =
        "The base variable of a field access or virtual call has an \
         empty points-to set: no allocation ever flows into it, so any \
         execution reaching the instruction dereferences null.";
      severity = Diagnostic.Warning;
    };
    {
      code = "dead-method";
      summary = "method unreachable from every entry point";
      help =
        "The method is declared but the context-insensitive call graph \
         never reaches it from any entry point; it is dead code under \
         the analyzed entry points.";
      severity = Diagnostic.Warning;
    };
    {
      code = "monomorphic-call-site";
      summary = "virtual call resolves to a single target";
      help =
        "The call graph finds exactly one callee for this virtual call; \
         it could be devirtualized (informational).";
      severity = Diagnostic.Note;
    };
  ]

let find code = List.find_opt (fun i -> i.code = code) all
let info code =
  match find code with
  | Some i -> i
  | None -> invalid_arg ("Checkers.info: unknown checker " ^ code)

(* Walk a method's instructions together with their recorded spans;
   [Program.instr_spans] is aligned with [iter_instrs] order. *)
let iter_instrs_with_spans program meth f =
  let mi = Program.meth_info program meth in
  let spans = Program.instr_spans program meth in
  let idx = ref 0 in
  iter_instrs
    (fun instr ->
      let i = !idx in
      incr idx;
      let span = if i < Array.length spans then Some spans.(i) else None in
      f instr span)
    mi.body

let mk code ?span message witnesses =
  {
    Diagnostic.code;
    severity = (info code).severity;
    span;
    message;
    witnesses;
  }

(* ------------------------------------------------------------------ *)
(* may-fail-cast                                                       *)
(* ------------------------------------------------------------------ *)

let provenance_detail (r : Results.t) ~var ~heap =
  match r.solver with
  | None -> []
  | Some solver ->
    (match Provenance.explain solver ~var ~heap with
    | None -> []
    | Some steps ->
      List.map
        (fun (s : Provenance.step) ->
          (if s.is_origin then "origin: " else "via: ") ^ s.description)
        steps)

let may_fail_cast (r : Results.t) =
  let p = r.program in
  Meth_id.Set.fold
    (fun meth acc ->
      let acc_ref = ref acc in
      iter_instrs_with_spans p meth (fun instr span ->
          match instr with
          | Cast { source; cast_type; _ } ->
            let bad =
              Intset.fold
                (fun heap bad ->
                  let heap = Heap_id.of_int heap in
                  let heap_type = (Program.heap_info p heap).heap_type in
                  if Hierarchy.subtype r.hierarchy ~sub:heap_type ~sup:cast_type
                  then bad
                  else heap :: bad)
                (r.points_to source) []
            in
            (match List.rev bad with
            | [] -> ()
            | heaps ->
              let witnesses =
                List.map
                  (fun heap ->
                    {
                      Diagnostic.w_message =
                        Printf.sprintf "may point to %s of type %s, allocated here"
                          (Program.heap_name p heap)
                          (Program.type_name p
                             (Program.heap_info p heap).heap_type);
                      w_span = Program.heap_span p heap;
                      w_detail = provenance_detail r ~var:source ~heap;
                    })
                  heaps
              in
              let d =
                mk "may-fail-cast" ?span
                  (Printf.sprintf "cast of %s to %s may fail"
                     (Program.var_info p source).var_name
                     (Program.type_name p cast_type))
                  witnesses
              in
              acc_ref := d :: !acc_ref)
          | Alloc _ | Move _ | Load _ | Store _ | Virtual_call _
          | Static_call _ | Static_load _ | Static_store _ | Throw _ -> ());
      !acc_ref)
    r.reachable []

(* ------------------------------------------------------------------ *)
(* null-dereference                                                    *)
(* ------------------------------------------------------------------ *)

let null_dereference (r : Results.t) =
  let p = r.program in
  let describe instr =
    match instr with
    | Load { base; field; _ } ->
      Some
        ( base,
          Printf.sprintf "load of field %s from %s which never points to any object"
            (Program.field_info p field).field_name
            (Program.var_info p base).var_name )
    | Store { base; field; _ } ->
      Some
        ( base,
          Printf.sprintf "store to field %s of %s which never points to any object"
            (Program.field_info p field).field_name
            (Program.var_info p base).var_name )
    | Virtual_call { base; signature; _ } ->
      Some
        ( base,
          Printf.sprintf "virtual call %s.%s on a receiver that never points to any object"
            (Program.var_info p base).var_name
            (Program.sig_info p signature).sig_name )
    | Alloc _ | Move _ | Cast _ | Static_call _ | Static_load _
    | Static_store _ | Throw _ -> None
  in
  Meth_id.Set.fold
    (fun meth acc ->
      let acc_ref = ref acc in
      iter_instrs_with_spans p meth (fun instr span ->
          match describe instr with
          | Some (base, message) when Intset.is_empty (r.points_to base) ->
            acc_ref := mk "null-dereference" ?span message [] :: !acc_ref
          | _ -> ());
      !acc_ref)
    r.reachable []

(* ------------------------------------------------------------------ *)
(* dead-method                                                         *)
(* ------------------------------------------------------------------ *)

let dead_method (r : Results.t) =
  let p = r.program in
  let acc = ref [] in
  Program.iter_meths p (fun meth _mi ->
      if not (Meth_id.Set.mem meth r.reachable) then
        acc :=
          mk "dead-method"
            ?span:(Program.meth_span p meth)
            (Printf.sprintf "method %s is unreachable from every entry point"
               (Program.meth_qualified_name p meth))
            []
          :: !acc);
  !acc

(* ------------------------------------------------------------------ *)
(* monomorphic-call-site                                               *)
(* ------------------------------------------------------------------ *)

let monomorphic_call_site (r : Results.t) =
  let p = r.program in
  Meth_id.Set.fold
    (fun meth acc ->
      let acc_ref = ref acc in
      iter_instrs_with_spans p meth (fun instr span ->
          match instr with
          | Virtual_call { invo; _ } ->
            let targets = r.invo_targets invo in
            if Meth_id.Set.cardinal targets = 1 then begin
              let target = Meth_id.Set.choose targets in
              let witnesses =
                [
                  {
                    Diagnostic.w_message = "the single target, declared here";
                    w_span = Program.meth_span p target;
                    w_detail = [];
                  };
                ]
              in
              acc_ref :=
                mk "monomorphic-call-site" ?span
                  (Printf.sprintf "virtual call resolves to the single target %s"
                     (Program.meth_qualified_name p target))
                  witnesses
                :: !acc_ref
            end
          | Alloc _ | Move _ | Load _ | Store _ | Cast _ | Static_call _
          | Static_load _ | Static_store _ | Throw _ -> ());
      !acc_ref)
    r.reachable []

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let checker_fn code =
  match code with
  | "may-fail-cast" -> may_fail_cast
  | "null-dereference" -> null_dereference
  | "dead-method" -> dead_method
  | "monomorphic-call-site" -> monomorphic_call_site
  | _ -> assert false

let run ?only results =
  let selected =
    match only with
    | None -> all
    | Some codes ->
      List.map
        (fun code ->
          match find code with
          | Some i -> i
          | None ->
            invalid_arg
              (Printf.sprintf "unknown checker %s (known: %s)" code
                 (String.concat ", " (List.map (fun i -> i.code) all))))
        codes
  in
  List.sort Diagnostic.compare
    (List.concat_map (fun i -> checker_fn i.code results) selected)
