module Ir = Pta_ir.Ir
module Hierarchy = Pta_ir.Hierarchy
module Solver = Pta_solver.Solver
module Intset = Pta_solver.Intset
module Refimpl = Pta_refimpl.Refimpl
open Ir

type t = {
  program : Ir.Program.t;
  hierarchy : Hierarchy.t;
  reachable : Meth_id.Set.t;
  points_to : Var_id.t -> Intset.t;
  invo_targets : Invo_id.t -> Meth_id.Set.t;
  solver : Solver.t option;
  taint : Pta_taint.Taint.summary option;
}

let of_solver ?taint solver =
  if not (Solver.is_complete solver) then
    invalid_arg "Results.of_solver: aborted run; checkers need a fixpoint";
  {
    program = Solver.program solver;
    hierarchy = Solver.hierarchy solver;
    reachable = Solver.reachable_meths solver;
    points_to = Solver.ci_var_points_to solver;
    invo_targets = Solver.invo_targets solver;
    solver = Some solver;
    taint;
  }

let of_refimpl ?taint program refimpl =
  let pts : (int, Intset.t) Hashtbl.t = Hashtbl.create 256 in
  Refimpl.fold_var_points_to refimpl
    (fun var _ctx heap _hctx () ->
      let key = Var_id.to_int var in
      let prev =
        Option.value ~default:Intset.empty (Hashtbl.find_opt pts key)
      in
      Hashtbl.replace pts key (Intset.add (Heap_id.to_int heap) prev))
    ();
  let targets : (int, Meth_id.Set.t) Hashtbl.t = Hashtbl.create 64 in
  Refimpl.fold_call_edges refimpl
    (fun invo _ctx callee _callee_ctx () ->
      let key = Invo_id.to_int invo in
      let prev =
        Option.value ~default:Meth_id.Set.empty (Hashtbl.find_opt targets key)
      in
      Hashtbl.replace targets key (Meth_id.Set.add callee prev))
    ();
  let reachable =
    Refimpl.fold_reachable refimpl
      (fun meth _ctx acc -> Meth_id.Set.add meth acc)
      Meth_id.Set.empty
  in
  {
    program;
    hierarchy = Hierarchy.create program;
    reachable;
    points_to =
      (fun v ->
        Option.value ~default:Intset.empty
          (Hashtbl.find_opt pts (Var_id.to_int v)));
    invo_targets =
      (fun i ->
        Option.value ~default:Meth_id.Set.empty
          (Hashtbl.find_opt targets (Invo_id.to_int i)));
    solver = None;
    taint;
  }
