(** Unified diagnostics produced by the points-to-powered checkers.

    Every checker reports findings in this one shape so the reporters
    (gcc-style text, SARIF) and the exit-code contract are shared.  A
    diagnostic optionally carries a source span — programs built by the
    frontend have them, synthetic workloads do not — plus witness
    locations that justify the finding (e.g. the allocation sites that
    make a cast fail). *)

module Srcloc = Pta_ir.Srcloc

type severity =
  | Error  (** likely runtime failure; drives the non-zero exit code *)
  | Warning
  | Note  (** informational, e.g. devirtualization opportunities *)

val severity_to_string : severity -> string
(** ["error"], ["warning"], ["note"] — also the SARIF level values. *)

type witness = {
  w_message : string;
  w_span : Srcloc.span option;
  w_detail : string list;
      (** Extra explanation lines (e.g. a provenance chain).  Only
          available when the diagnostic came from the native solver;
          excluded from cross-engine comparisons. *)
}

type t = {
  code : string;  (** stable checker identifier, e.g. ["may-fail-cast"] *)
  severity : severity;
  span : Srcloc.span option;
  message : string;
  witnesses : witness list;
}

val compare : t -> t -> int
(** Stable report order: by location (file, line, column), then code,
    then message.  Spanless diagnostics sort after spanned ones. *)

val has_errors : t list -> bool

val pp : Format.formatter -> t -> unit
(** gcc-style rendering:
    [file:line:col: severity: message \[code\]] followed by indented
    witness and detail lines. *)

val pp_report : Format.formatter -> t list -> unit
(** All diagnostics in {!compare} order plus a one-line summary. *)
