module Json = Pta_obs.Json
module Srcloc = Pta_ir.Srcloc

let text s = Json.Obj [ ("text", Json.String s) ]

let region (span : Srcloc.span) =
  Json.Obj
    [
      ("startLine", Json.Int span.left.line);
      ("startColumn", Json.Int span.left.col);
      ("endLine", Json.Int span.right.line);
      ("endColumn", Json.Int span.right.col);
    ]

let location_fields (span : Srcloc.span) =
  [
    ( "physicalLocation",
      Json.Obj
        [
          ("artifactLocation", Json.Obj [ ("uri", Json.String span.left.file) ]);
          ("region", region span);
        ] );
  ]

let physical_location span = Json.Obj (location_fields span)

let location_with_message span message =
  match span with
  | None -> None
  | Some span ->
    Some (Json.Obj (location_fields span @ [ ("message", text message) ]))

let result (d : Diagnostic.t) =
  let locations =
    match d.span with None -> [] | Some span -> [ physical_location span ]
  in
  let related =
    List.filter_map
      (fun (w : Diagnostic.witness) ->
        let message =
          String.concat "\n" (w.w_message :: List.map (fun l -> "  " ^ l) w.w_detail)
        in
        location_with_message w.w_span message)
      d.witnesses
  in
  Json.Obj
    (("ruleId", Json.String d.code)
     :: ("level", Json.String (Diagnostic.severity_to_string d.severity))
     :: ("message", text d.message)
     :: ("locations", Json.List locations)
     ::
     (if related = [] then []
      else [ ("relatedLocations", Json.List related) ]))

let rule (i : Checkers.info) =
  Json.Obj
    [
      ("id", Json.String i.code);
      ("shortDescription", text i.summary);
      ("fullDescription", text i.help);
      ( "defaultConfiguration",
        Json.Obj
          [ ("level", Json.String (Diagnostic.severity_to_string i.severity)) ]
      );
    ]

let to_json ~tool_version diagnostics =
  let diagnostics = List.sort Diagnostic.compare diagnostics in
  Json.Obj
    [
      ("$schema", Json.String "https://json.schemastore.org/sarif-2.1.0.json");
      ("version", Json.String "2.1.0");
      ( "runs",
        Json.List
          [
            Json.Obj
              [
                ( "tool",
                  Json.Obj
                    [
                      ( "driver",
                        Json.Obj
                          [
                            ("name", Json.String "pointsto");
                            ("version", Json.String tool_version);
                            ( "rules",
                              Json.List (List.map rule Checkers.all) );
                          ] );
                    ] );
                ("results", Json.List (List.map result diagnostics));
              ];
          ] );
    ]

let to_string ~tool_version diagnostics =
  Json.to_string ~indent:true (to_json ~tool_version diagnostics) ^ "\n"
