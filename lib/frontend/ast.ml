(** Abstract syntax of MJ, the mini-Java input language.

    MJ is deliberately at the level of the paper's input language: object
    allocation, copies, field loads/stores, virtual and static calls,
    casts, and nondeterministic control flow ([if(@)], [while(@)] with @ meaning a nondeterministic condition written as a star).
    Scalar data, arithmetic and real branch conditions are out of scope —
    a points-to analysis never inspects them. *)

type ident = string

type expr = {
  e : expr_kind;
  e_pos : Srcloc.pos;
  e_span : Srcloc.span;  (** full extent of the expression *)
}

and expr_kind =
  | E_var of ident
  | E_this
  | E_null
  | E_new of ident * expr list option
      (** [new C] or [new C(args)]; the latter also calls [C.init]. *)
  | E_load of expr * ident  (** [e.f] *)
  | E_vcall of expr * ident * expr list  (** [e.m(args)] *)
  | E_scall of ident * ident * expr list  (** [C::m(args)] *)
  | E_sfield of ident * ident  (** [C::f], a static field read *)
  | E_cast of ident * expr  (** [(C) e] *)

type stmt = {
  s : stmt_kind;
  s_pos : Srcloc.pos;
  s_span : Srcloc.span;  (** full extent of the statement *)
}

and stmt_kind =
  | S_decl of ident * expr option  (** [var x;] or [var x = e;] *)
  | S_assign of ident * expr
  | S_store of expr * ident * expr  (** [e.f = e'] *)
  | S_sstore of ident * ident * expr  (** [C::f = e] *)
  | S_expr of expr  (** call evaluated for effect *)
  | S_return of expr option
  | S_if of stmt list * stmt list
  | S_while of stmt list
  | S_throw of expr
  | S_try of stmt list * catch_clause list

and catch_clause = {
  cc_type : ident;
  cc_var : ident;
  cc_body : stmt list;
}

type meth_decl = {
  m_name : ident;
  m_static : bool;
  m_abstract : bool;  (** interface methods: signature only *)
  m_params : ident list;
  m_ret_ty : ident option;  (** declared return type; documentation only *)
  m_body : stmt list;
  m_pos : Srcloc.pos;
  m_span : Srcloc.span;  (** declaration header, [static method name(...)] *)
}

type field_decl = {
  f_name : ident;
  f_static : bool;
  f_ty : ident option;  (** declared type; documentation only *)
  f_pos : Srcloc.pos;
}

type kind =
  | K_class
  | K_interface

type class_decl = {
  c_name : ident;
  c_kind : kind;
  c_super : ident option;
  c_ifaces : ident list;
  c_fields : field_decl list;
  c_meths : meth_decl list;
  c_pos : Srcloc.pos;
}

type program = class_decl list
