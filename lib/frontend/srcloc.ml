(** Source positions and frontend errors.

    The definitions live in {!Pta_ir.Srcloc} so the IR's span side
    tables can reference them; this module re-exports everything (the
    [Error] exception included) under the historical
    [Pta_frontend.Srcloc] name. *)

include Pta_ir.Srcloc
