(** Hand-written lexer for MJ source text. *)

type t

val create : file:string -> string -> t

val next : t -> Token.t * Srcloc.pos * Srcloc.pos
(** Returns the next token, its starting position, and the position just
    past its last character (so the pair forms a {!Srcloc.span}).  After
    [Eof] it keeps returning [Eof].  @raise Srcloc.Error on invalid
    input characters or unterminated comments. *)

val tokenize : file:string -> string -> (Token.t * Srcloc.pos * Srcloc.pos) list
(** Entire input, ending with [Eof]. *)
