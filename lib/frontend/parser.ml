type state = {
  toks : (Token.t * Srcloc.pos * Srcloc.pos) array;
  mutable cursor : int;
  mutable last_end : Srcloc.pos;
      (* position just past the last consumed token: the right edge of
         any span closed now *)
}

let tok_of (t, _, _) = t
let peek st = tok_of st.toks.(st.cursor)
let peek2 st = if st.cursor + 1 < Array.length st.toks then tok_of st.toks.(st.cursor + 1) else Token.Eof
let pos st = let _, p, _ = st.toks.(st.cursor) in p

let advance st =
  (let _, _, stop = st.toks.(st.cursor) in
   st.last_end <- stop);
  if st.cursor + 1 < Array.length st.toks then st.cursor <- st.cursor + 1

(* Span from [left] to the end of the last consumed token. *)
let close st left = Srcloc.span left st.last_end

let expect st tok =
  if peek st = tok then advance st
  else
    Srcloc.error (pos st) "expected %s but found %s" (Token.to_string tok)
      (Token.to_string (peek st))

let accept st tok =
  if peek st = tok then begin
    advance st;
    true
  end
  else false

let expect_ident st =
  match peek st with
  | Token.Ident name ->
    advance st;
    name
  | t -> Srcloc.error (pos st) "expected identifier but found %s" (Token.to_string t)

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec parse_expr st =
  let at = pos st in
  match peek st with
  | Token.Lparen ->
    (* Casts are the only parenthesized form at expression head. *)
    advance st;
    let ty = expect_ident st in
    expect st Token.Rparen;
    let operand = parse_expr st in
    { Ast.e = Ast.E_cast (ty, operand); e_pos = at; e_span = close st at }
  | _ ->
    let head = parse_primary st in
    parse_postfix st head

and parse_primary st =
  let at = pos st in
  match peek st with
  | Token.Kw_this ->
    advance st;
    { Ast.e = Ast.E_this; e_pos = at; e_span = close st at }
  | Token.Kw_null ->
    advance st;
    { Ast.e = Ast.E_null; e_pos = at; e_span = close st at }
  | Token.Kw_new ->
    advance st;
    let cls = expect_ident st in
    let args =
      if peek st = Token.Lparen then Some (parse_args st) else None
    in
    { Ast.e = Ast.E_new (cls, args); e_pos = at; e_span = close st at }
  | Token.Ident name ->
    advance st;
    if peek st = Token.Coloncolon then begin
      advance st;
      let member = expect_ident st in
      if peek st = Token.Lparen then
        let args = parse_args st in
        { Ast.e = Ast.E_scall (name, member, args); e_pos = at;
          e_span = close st at }
      else
        { Ast.e = Ast.E_sfield (name, member); e_pos = at;
          e_span = close st at }
    end
    else { Ast.e = Ast.E_var name; e_pos = at; e_span = close st at }
  | t -> Srcloc.error at "expected expression but found %s" (Token.to_string t)

and parse_postfix st head =
  if peek st = Token.Dot then begin
    let at = pos st in
    let left = head.Ast.e_span.Srcloc.left in
    advance st;
    let member = expect_ident st in
    let node =
      if peek st = Token.Lparen then
        let args = parse_args st in
        { Ast.e = Ast.E_vcall (head, member, args); Ast.e_pos = at;
          Ast.e_span = close st left }
      else
        { Ast.e = Ast.E_load (head, member); Ast.e_pos = at;
          Ast.e_span = close st left }
    in
    parse_postfix st node
  end
  else head

and parse_args st =
  expect st Token.Lparen;
  if accept st Token.Rparen then []
  else begin
    let rec more acc =
      let acc = parse_expr st :: acc in
      if accept st Token.Comma then more acc
      else begin
        expect st Token.Rparen;
        List.rev acc
      end
    in
    more []
  end

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec parse_block st =
  expect st Token.Lbrace;
  let rec loop acc =
    if accept st Token.Rbrace then List.rev acc else loop (parse_stmt st :: acc)
  in
  loop []

and parse_stmt st =
  let at = pos st in
  match peek st with
  | Token.Kw_var ->
    advance st;
    let name = expect_ident st in
    let init = if accept st Token.Eq then Some (parse_expr st) else None in
    expect st Token.Semi;
    { Ast.s = Ast.S_decl (name, init); s_pos = at; s_span = close st at }
  | Token.Kw_return ->
    advance st;
    let value = if peek st = Token.Semi then None else Some (parse_expr st) in
    expect st Token.Semi;
    { Ast.s = Ast.S_return value; s_pos = at; s_span = close st at }
  | Token.Kw_if ->
    advance st;
    expect st Token.Lparen;
    expect st Token.Star;
    expect st Token.Rparen;
    let then_branch = parse_block st in
    let else_branch = if accept st Token.Kw_else then parse_block st else [] in
    { Ast.s = Ast.S_if (then_branch, else_branch); s_pos = at;
      s_span = close st at }
  | Token.Kw_while ->
    advance st;
    expect st Token.Lparen;
    expect st Token.Star;
    expect st Token.Rparen;
    let body = parse_block st in
    { Ast.s = Ast.S_while body; s_pos = at; s_span = close st at }
  | Token.Kw_throw ->
    advance st;
    let value = parse_expr st in
    expect st Token.Semi;
    { Ast.s = Ast.S_throw value; s_pos = at; s_span = close st at }
  | Token.Kw_try ->
    advance st;
    let body = parse_block st in
    let rec catches acc =
      if peek st = Token.Kw_catch then begin
        advance st;
        expect st Token.Lparen;
        let cc_type = expect_ident st in
        let cc_var = expect_ident st in
        expect st Token.Rparen;
        let cc_body = parse_block st in
        catches ({ Ast.cc_type; cc_var; cc_body } :: acc)
      end
      else List.rev acc
    in
    let handlers = catches [] in
    if handlers = [] then
      Srcloc.error at "try block needs at least one catch clause";
    { Ast.s = Ast.S_try (body, handlers); s_pos = at; s_span = close st at }
  | _ ->
    let lhs = parse_expr st in
    if accept st Token.Eq then begin
      let rhs = parse_expr st in
      expect st Token.Semi;
      let s_span = close st at in
      match lhs.Ast.e with
      | Ast.E_var name -> { Ast.s = Ast.S_assign (name, rhs); s_pos = at; s_span }
      | Ast.E_load (base, field) ->
        { Ast.s = Ast.S_store (base, field, rhs); s_pos = at; s_span }
      | Ast.E_sfield (cls, field) ->
        { Ast.s = Ast.S_sstore (cls, field, rhs); s_pos = at; s_span }
      | _ -> Srcloc.error at "invalid assignment target"
    end
    else begin
      expect st Token.Semi;
      match lhs.Ast.e with
      | Ast.E_vcall _ | Ast.E_scall _ | Ast.E_new (_, Some _) ->
        { Ast.s = Ast.S_expr lhs; s_pos = at; s_span = close st at }
      | _ -> Srcloc.error at "expression statement must be a call"
    end

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

let parse_opt_type_annot st =
  if accept st Token.Colon then Some (expect_ident st) else None

let parse_params st =
  expect st Token.Lparen;
  if accept st Token.Rparen then []
  else begin
    let rec more acc =
      let name = expect_ident st in
      ignore (parse_opt_type_annot st);
      let acc = name :: acc in
      if accept st Token.Comma then more acc
      else begin
        expect st Token.Rparen;
        List.rev acc
      end
    in
    more []
  end

let parse_meth st ~in_interface =
  let at = pos st in
  let static = accept st Token.Kw_static in
  expect st Token.Kw_method;
  let name = expect_ident st in
  let params = parse_params st in
  let ret_ty = parse_opt_type_annot st in
  (* The declaration header only — bodies would drown diagnostics that
     point at "this method". *)
  let m_span = close st at in
  if in_interface then begin
    if static then Srcloc.error at "interfaces cannot declare static methods";
    expect st Token.Semi;
    {
      Ast.m_name = name;
      m_static = false;
      m_abstract = true;
      m_params = params;
      m_ret_ty = ret_ty;
      m_body = [];
      m_pos = at;
      m_span;
    }
  end
  else
    let body = parse_block st in
    {
      Ast.m_name = name;
      m_static = static;
      m_abstract = false;
      m_params = params;
      m_ret_ty = ret_ty;
      m_body = body;
      m_pos = at;
      m_span;
    }

let parse_field st ~static =
  let at = pos st in
  if static then expect st Token.Kw_static;
  expect st Token.Kw_field;
  let name = expect_ident st in
  let ty = parse_opt_type_annot st in
  expect st Token.Semi;
  { Ast.f_name = name; f_static = static; f_ty = ty; f_pos = at }

let parse_name_list st =
  let rec more acc =
    let acc = expect_ident st :: acc in
    if accept st Token.Comma then more acc else List.rev acc
  in
  more []

let parse_class st =
  let at = pos st in
  let kind =
    match peek st with
    | Token.Kw_class ->
      advance st;
      Ast.K_class
    | Token.Kw_interface ->
      advance st;
      Ast.K_interface
    | t ->
      Srcloc.error at "expected 'class' or 'interface' but found %s"
        (Token.to_string t)
  in
  let name = expect_ident st in
  let super =
    if kind = Ast.K_class && accept st Token.Kw_extends then
      Some (expect_ident st)
    else None
  in
  let ifaces =
    match kind with
    | Ast.K_class ->
      if accept st Token.Kw_implements then parse_name_list st else []
    | Ast.K_interface ->
      if accept st Token.Kw_extends then parse_name_list st else []
  in
  expect st Token.Lbrace;
  let fields = ref [] in
  let meths = ref [] in
  let rec members () =
    if accept st Token.Rbrace then ()
    else begin
      (match peek st with
      | Token.Kw_field -> fields := parse_field st ~static:false :: !fields
      | Token.Kw_static when peek2 st = Token.Kw_field ->
        fields := parse_field st ~static:true :: !fields
      | Token.Kw_method | Token.Kw_static ->
        meths := parse_meth st ~in_interface:(kind = Ast.K_interface) :: !meths
      | t ->
        Srcloc.error (pos st) "expected member declaration but found %s"
          (Token.to_string t));
      members ()
    end
  in
  members ();
  {
    Ast.c_name = name;
    c_kind = kind;
    c_super = super;
    c_ifaces = ifaces;
    c_fields = List.rev !fields;
    c_meths = List.rev !meths;
    c_pos = at;
  }

let parse_string ~file src =
  let st =
    {
      toks = Array.of_list (Lexer.tokenize ~file src);
      cursor = 0;
      last_end = Srcloc.dummy;
    }
  in
  let rec loop acc =
    if peek st = Token.Eof then List.rev acc else loop (parse_class st :: acc)
  in
  let program = loop [] in
  ignore (peek2 st);
  program
