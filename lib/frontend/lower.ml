open Pta_ir.Ir

(* ------------------------------------------------------------------ *)
(* Pass 1: class table and topological ordering                        *)
(* ------------------------------------------------------------------ *)

let object_name = "Object"

let class_table (decls : Ast.program) =
  let table : (string, Ast.class_decl) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (c : Ast.class_decl) ->
      if Hashtbl.mem table c.c_name then
        Srcloc.error c.c_pos "duplicate type %s" c.c_name;
      Hashtbl.add table c.c_name c)
    decls;
  if not (Hashtbl.mem table object_name) then
    Hashtbl.add table object_name
      {
        Ast.c_name = object_name;
        c_kind = Ast.K_class;
        c_super = None;
        c_ifaces = [];
        c_fields = [];
        c_meths = [];
        c_pos = Srcloc.dummy;
      };
  table

let find_class table pos name =
  match Hashtbl.find_opt table name with
  | Some c -> c
  | None -> Srcloc.error pos "unknown type %s" name

(* Parents of a type in declaration order: the superclass (implicit
   [Object] for root-less classes) followed by the interfaces. *)
let parents table (c : Ast.class_decl) =
  let super =
    match c.c_kind with
    | Ast.K_interface -> []
    | Ast.K_class ->
      if String.equal c.c_name object_name then []
      else begin
        let name = Option.value ~default:object_name c.c_super in
        if (find_class table c.c_pos name).Ast.c_kind <> Ast.K_class then
          Srcloc.error c.c_pos "class %s cannot extend interface %s" c.c_name name;
        [ name ]
      end
  in
  List.iter
    (fun name ->
      if (find_class table c.c_pos name).Ast.c_kind <> Ast.K_interface then
        Srcloc.error c.c_pos "%s is not an interface (in %s's %s clause)" name
          c.c_name
          (match c.c_kind with Ast.K_class -> "implements" | _ -> "extends"))
    c.c_ifaces;
  super @ c.c_ifaces

(* Depth-first topological sort over the supertype edges, detecting
   inheritance cycles. *)
let topo_order table =
  let visiting = Hashtbl.create 16 in
  let done_ = Hashtbl.create 16 in
  let order = ref [] in
  let rec visit name =
    if not (Hashtbl.mem done_ name) then begin
      if Hashtbl.mem visiting name then
        Srcloc.error (Hashtbl.find table name).Ast.c_pos
          "inheritance cycle through %s" name;
      Hashtbl.add visiting name ();
      let c = Hashtbl.find table name in
      List.iter visit (parents table c);
      Hashtbl.remove visiting name;
      Hashtbl.add done_ name ();
      order := name :: !order
    end
  in
  Hashtbl.iter (fun name _ -> visit name) table;
  List.rev !order

(* ------------------------------------------------------------------ *)
(* Pass 2+3: declare types, fields and method shells                   *)
(* ------------------------------------------------------------------ *)

type env = {
  b : Builder.t;
  classes : (string, Ast.class_decl) Hashtbl.t;
  type_ids : (string, Type_id.t) Hashtbl.t;
  field_ids : (string, Field_id.t) Hashtbl.t;
  sfield_ids : (string * string, Field_id.t) Hashtbl.t;
      (* (declaring class, name) -> static field *)
  meth_ids : (string * string * int, Meth_id.t) Hashtbl.t;
      (* (class, method, arity) -> concrete method *)
}

let type_id env pos name =
  match Hashtbl.find_opt env.type_ids name with
  | Some t -> t
  | None -> Srcloc.error pos "unknown type %s" name

let declare_types env order =
  List.iter
    (fun name ->
      let c = Hashtbl.find env.classes name in
      let kind =
        match c.Ast.c_kind with Ast.K_class -> Class | Ast.K_interface -> Interface
      in
      let superclass =
        match c.Ast.c_kind with
        | Ast.K_interface -> None
        | Ast.K_class ->
          if String.equal name object_name then None
          else
            Some
              (type_id env c.Ast.c_pos
                 (Option.value ~default:object_name c.Ast.c_super))
      in
      let interfaces =
        List.map (type_id env c.Ast.c_pos) c.Ast.c_ifaces
      in
      let id = Builder.add_type env.b ~name ~kind ~superclass ~interfaces in
      Hashtbl.add env.type_ids name id)
    order

let declare_fields env order =
  List.iter
    (fun name ->
      let c = Hashtbl.find env.classes name in
      let owner = Hashtbl.find env.type_ids name in
      List.iter
        (fun (f : Ast.field_decl) ->
          if f.f_static then begin
            (* Static fields are per-class global cells, accessed as
               [C::f] and resolved along the superclass chain. *)
            if Hashtbl.mem env.sfield_ids (name, f.f_name) then
              Srcloc.error f.f_pos "duplicate static field %s in %s" f.f_name name;
            Hashtbl.add env.sfield_ids (name, f.f_name)
              (Builder.add_field env.b ~owner ~name:f.f_name ~static:true)
          end
          else if not (Hashtbl.mem env.field_ids f.f_name) then
            (* Instance fields are a global namespace (MJ is untyped at
               use sites); the first declaration owns the id. *)
            Hashtbl.add env.field_ids f.f_name
              (Builder.add_field env.b ~owner ~name:f.f_name ~static:false))
        c.c_fields)
    order

(* Resolve [C::f] along the superclass chain, like inherited statics. *)
let resolve_sfield env pos cls_name field_name =
  if not (Hashtbl.mem env.type_ids cls_name) then
    Srcloc.error pos "unknown type %s in static field access" cls_name;
  let rec walk name =
    match Hashtbl.find_opt env.sfield_ids (name, field_name) with
    | Some f -> Some f
    | None ->
      let c = Hashtbl.find env.classes name in
      (match c.Ast.c_kind with
      | Ast.K_interface -> None
      | Ast.K_class ->
        if String.equal name object_name then None
        else walk (Option.value ~default:object_name c.Ast.c_super))
  in
  match walk cls_name with
  | Some f -> f
  | None -> Srcloc.error pos "no static field %s::%s" cls_name field_name

let declare_meths env order =
  List.iter
    (fun cls_name ->
      let c = Hashtbl.find env.classes cls_name in
      let owner = Hashtbl.find env.type_ids cls_name in
      let seen = Hashtbl.create 8 in
      List.iter
        (fun (m : Ast.meth_decl) ->
          let arity = List.length m.m_params in
          if Hashtbl.mem seen (m.m_name, arity) then
            Srcloc.error m.m_pos "duplicate method %s/%d in %s" m.m_name arity
              cls_name;
          Hashtbl.add seen (m.m_name, arity) ();
          if not m.m_abstract then begin
            let id =
              Builder.add_meth ~span:m.m_span env.b ~owner ~name:m.m_name ~arity
                ~static:m.m_static
            in
            Hashtbl.add env.meth_ids (cls_name, m.m_name, arity) id
          end)
        c.c_meths)
    order

(* Resolve [C::m/arity] by walking the superclass chain, Java-style
   inherited statics included. *)
let resolve_static env pos cls_name meth_name arity =
  let rec walk name =
    match Hashtbl.find_opt env.meth_ids (name, meth_name, arity) with
    | Some m -> Some m
    | None ->
      let c = Hashtbl.find env.classes name in
      (match c.Ast.c_kind with
      | Ast.K_interface -> None
      | Ast.K_class ->
        if String.equal name object_name then None
        else walk (Option.value ~default:object_name c.Ast.c_super))
  in
  if not (Hashtbl.mem env.type_ids cls_name) then
    Srcloc.error pos "unknown type %s in static call" cls_name;
  match walk cls_name with
  | Some m -> m
  | None ->
    Srcloc.error pos "no static method %s::%s/%d" cls_name meth_name arity

(* [new C(...)] requires a concrete class and, when constructor arguments
   are given, a reachable [init] definition. *)
let check_instantiable env pos cls_name ~ctor_arity =
  let c = find_class env.classes pos cls_name in
  if c.Ast.c_kind = Ast.K_interface then
    Srcloc.error pos "cannot instantiate interface %s" cls_name;
  match ctor_arity with
  | None -> ()
  | Some arity ->
    let rec has_init name =
      let c = Hashtbl.find env.classes name in
      List.exists
        (fun (m : Ast.meth_decl) ->
          String.equal m.m_name "init"
          && List.length m.m_params = arity
          && not m.m_static)
        c.Ast.c_meths
      ||
      match c.Ast.c_super with
      | Some s -> has_init s
      | None ->
        (not (String.equal name object_name)) && has_init object_name
    in
    if not (has_init cls_name) then
      Srcloc.error pos "class %s has no constructor init/%d" cls_name arity

(* ------------------------------------------------------------------ *)
(* Pass 4: method bodies                                               *)
(* ------------------------------------------------------------------ *)

type menv = {
  e : env;
  meth : Meth_id.t;
  locals : (string, Var_id.t) Hashtbl.t;
  mutable n_temp : int;
  mutable n_heap : int;
  mutable n_invo : int;
  mutable null_var : Var_id.t option;
}

let fresh_temp me =
  let name = Printf.sprintf "$t%d" me.n_temp in
  me.n_temp <- me.n_temp + 1;
  Builder.add_var me.e.b ~owner:me.meth ~name

let fresh_heap me pos ~span ~ty =
  let label = Printf.sprintf "h%d@%d:%d" me.n_heap pos.Srcloc.line pos.Srcloc.col in
  me.n_heap <- me.n_heap + 1;
  Builder.add_heap ~span me.e.b ~owner:me.meth ~label ~ty

let fresh_invo me pos ~span =
  let label = Printf.sprintf "i%d@%d:%d" me.n_invo pos.Srcloc.line pos.Srcloc.col in
  me.n_invo <- me.n_invo + 1;
  Builder.add_invo ~span me.e.b ~owner:me.meth ~label

let null_var me =
  match me.null_var with
  | Some v -> v
  | None ->
    let v = Builder.add_var me.e.b ~owner:me.meth ~name:"$null" in
    me.null_var <- Some v;
    v

let this_var me pos =
  match Builder.this_var me.e.b me.meth with
  | Some v -> v
  | None -> Srcloc.error pos "'this' used in a static method"

let lookup_var me pos name =
  match Hashtbl.find_opt me.locals name with
  | Some v -> v
  | None -> Srcloc.error pos "unbound variable %s" name

let declare_var me pos name =
  if Hashtbl.mem me.locals name then
    Srcloc.error pos "duplicate variable %s" name;
  let v = Builder.add_var me.e.b ~owner:me.meth ~name in
  Hashtbl.add me.locals name v;
  v

(* Lowered code annotated with the source span of each instruction.  The
   spans are stripped into a positional side table (in [fold_instrs]
   order) once the whole body is assembled, so they survive interning
   without the IR needing per-instruction identities. *)
type acode =
  | A_instr of instr * Srcloc.span
  | A_seq of acode list
  | A_branch of acode * acode
  | A_loop of acode
  | A_try of acode * ahandler list

and ahandler = {
  a_catch_type : Type_id.t;
  a_catch_var : Var_id.t;
  a_handler_body : acode;
}

(* Explicit recursion (not [List.map]) so the traversal order provably
   matches [fold_instrs] over the stripped tree. *)
let strip_spans (root : acode) : code * Srcloc.span array =
  let spans = ref [] in
  let rec go = function
    | A_instr (i, sp) ->
      spans := sp :: !spans;
      Instr i
    | A_seq cs -> Seq (go_list cs)
    | A_branch (a, b) ->
      let a = go a in
      let b = go b in
      Branch (a, b)
    | A_loop c -> Loop (go c)
    | A_try (body, handlers) ->
      let body = go body in
      Try (body, go_handlers handlers)
  and go_list = function
    | [] -> []
    | c :: rest ->
      let c = go c in
      c :: go_list rest
  and go_handlers = function
    | [] -> []
    | h :: rest ->
      let handler_body = go h.a_handler_body in
      { catch_type = h.a_catch_type; catch_var = h.a_catch_var; handler_body }
      :: go_handlers rest
  in
  let code = go root in
  (code, Array.of_list (List.rev !spans))

(* [lower_value] produces the variable holding the expression's value;
   [lower_into] materializes the expression directly into [target].
   Both return the emitted instructions in order, each carrying the span
   of the expression it implements. *)
let rec lower_value me (expr : Ast.expr) :
    (instr * Srcloc.span) list * Var_id.t =
  match expr.e with
  | Ast.E_var name -> ([], lookup_var me expr.e_pos name)
  | Ast.E_this -> ([], this_var me expr.e_pos)
  | Ast.E_null -> ([], null_var me)
  | Ast.E_new _ | Ast.E_load _ | Ast.E_vcall _ | Ast.E_scall _ | Ast.E_cast _
  | Ast.E_sfield _ ->
    let t = fresh_temp me in
    (lower_into me ~target:t expr, t)

and lower_into me ~target (expr : Ast.expr) : (instr * Srcloc.span) list =
  let pos = expr.e_pos in
  let sp = expr.e_span in
  match expr.e with
  | Ast.E_var name -> [ (Move { target; source = lookup_var me pos name }, sp) ]
  | Ast.E_this -> [ (Move { target; source = this_var me pos }, sp) ]
  | Ast.E_null -> []
  | Ast.E_new (cls_name, args) ->
    let ctor_arity = Option.map List.length args in
    check_instantiable me.e pos cls_name ~ctor_arity;
    let ty = type_id me.e pos cls_name in
    let heap = fresh_heap me pos ~span:sp ~ty in
    let alloc = (Alloc { target; heap }, sp) in
    (match args with
    | None -> [ alloc ]
    | Some args ->
      let arg_instrs, arg_vars = lower_args me args in
      let invo = fresh_invo me pos ~span:sp in
      let signature =
        Builder.intern_sig me.e.b ~name:"init" ~arity:(List.length args)
      in
      (alloc :: arg_instrs)
      @ [
          ( Virtual_call
              { base = target; signature; invo; args = arg_vars;
                ret_target = None },
            sp );
        ])
  | Ast.E_load (base, field_name) ->
    let base_instrs, base_var = lower_value me base in
    let field = field_id me pos field_name in
    base_instrs @ [ (Load { target; base = base_var; field }, sp) ]
  | Ast.E_vcall (base, meth_name, args) ->
    lower_call me pos ~span:sp ~ret_target:(Some target) base meth_name args
  | Ast.E_scall (cls_name, meth_name, args) ->
    lower_static_call me pos ~span:sp ~ret_target:(Some target) cls_name
      meth_name args
  | Ast.E_sfield (cls_name, field_name) ->
    let field = resolve_sfield me.e pos cls_name field_name in
    [ (Static_load { target; field }, sp) ]
  | Ast.E_cast (cls_name, operand) ->
    let cast_type = type_id me.e pos cls_name in
    let instrs, source = lower_value me operand in
    instrs @ [ (Cast { target; source; cast_type }, sp) ]

and field_id me pos name =
  match Hashtbl.find_opt me.e.field_ids name with
  | Some f -> f
  | None -> Srcloc.error pos "unknown field %s" name

and lower_args me args =
  let instrs, vars =
    List.fold_left
      (fun (instrs, vars) arg ->
        let arg_instrs, v = lower_value me arg in
        (instrs @ arg_instrs, v :: vars))
      ([], []) args
  in
  (instrs, List.rev vars)

and lower_call me pos ~span ~ret_target base meth_name args =
  let base_instrs, base_var = lower_value me base in
  let arg_instrs, arg_vars = lower_args me args in
  let invo = fresh_invo me pos ~span in
  let signature =
    Builder.intern_sig me.e.b ~name:meth_name ~arity:(List.length args)
  in
  base_instrs @ arg_instrs
  @ [
      ( Virtual_call
          { base = base_var; signature; invo; args = arg_vars; ret_target },
        span );
    ]

and lower_static_call me pos ~span ~ret_target cls_name meth_name args =
  let callee =
    resolve_static me.e pos cls_name meth_name (List.length args)
  in
  let arg_instrs, arg_vars = lower_args me args in
  let invo = fresh_invo me pos ~span in
  arg_instrs
  @ [ (Static_call { callee; invo; args = arg_vars; ret_target }, span) ]

let instrs_to_acode annotated =
  List.map (fun (i, sp) -> A_instr (i, sp)) annotated

let rec lower_stmt me (stmt : Ast.stmt) : acode list =
  let pos = stmt.s_pos in
  match stmt.s with
  | Ast.S_decl (name, init) ->
    let v = declare_var me pos name in
    (match init with
    | None -> []
    | Some expr -> instrs_to_acode (lower_into me ~target:v expr))
  | Ast.S_assign (name, expr) ->
    let target =
      match Hashtbl.find_opt me.locals name with
      | Some v -> v
      | None -> declare_var me pos name  (* implicit declaration *)
    in
    instrs_to_acode (lower_into me ~target expr)
  | Ast.S_sstore (cls_name, field_name, rhs) ->
    let field = resolve_sfield me.e pos cls_name field_name in
    let rhs_instrs, source = lower_value me rhs in
    instrs_to_acode
      (rhs_instrs @ [ (Static_store { field; source }, stmt.s_span) ])
  | Ast.S_store (base, field_name, rhs) ->
    let base_instrs, base_var = lower_value me base in
    let rhs_instrs, source = lower_value me rhs in
    let field = field_id me pos field_name in
    instrs_to_acode
      (base_instrs @ rhs_instrs
      @ [ (Store { base = base_var; field; source }, stmt.s_span) ])
  | Ast.S_expr expr ->
    let instrs =
      match expr.e with
      | Ast.E_vcall (base, meth_name, args) ->
        lower_call me pos ~span:expr.e_span ~ret_target:None base meth_name
          args
      | Ast.E_scall (cls_name, meth_name, args) ->
        lower_static_call me pos ~span:expr.e_span ~ret_target:None cls_name
          meth_name args
      | Ast.E_new (_, Some _) ->
        let t = fresh_temp me in
        lower_into me ~target:t expr
      | _ -> Srcloc.error pos "expression statement must be a call"
    in
    instrs_to_acode instrs
  | Ast.S_return None -> []
  | Ast.S_return (Some expr) ->
    let target = Builder.ensure_ret_var me.e.b me.meth in
    instrs_to_acode (lower_into me ~target expr)
  | Ast.S_if (then_branch, else_branch) ->
    [ A_branch (lower_block me then_branch, lower_block me else_branch) ]
  | Ast.S_while body -> [ A_loop (lower_block me body) ]
  | Ast.S_throw expr ->
    let instrs, source = lower_value me expr in
    instrs_to_acode instrs @ [ A_instr (Throw { source }, stmt.s_span) ]
  | Ast.S_try (body, catches) ->
    let lowered_body = lower_block me body in
    let handlers =
      List.map
        (fun (c : Ast.catch_clause) ->
          let a_catch_type = type_id me.e pos c.cc_type in
          let a_catch_var = declare_var me pos c.cc_var in
          { a_catch_type; a_catch_var; a_handler_body = lower_block me c.cc_body })
        catches
    in
    [ A_try (lowered_body, handlers) ]

and lower_block me stmts = A_seq (List.concat_map (lower_stmt me) stmts)

let lower_body env cls_name (m : Ast.meth_decl) =
  let arity = List.length m.m_params in
  let meth = Hashtbl.find env.meth_ids (cls_name, m.m_name, arity) in
  let me =
    {
      e = env;
      meth;
      locals = Hashtbl.create 16;
      n_temp = 0;
      n_heap = 0;
      n_invo = 0;
      null_var = None;
    }
  in
  let formals =
    List.map
      (fun param ->
        if Hashtbl.mem me.locals param then
          Srcloc.error m.m_pos "duplicate parameter %s" param;
        let v = Builder.add_var env.b ~owner:meth ~name:param in
        Hashtbl.add me.locals param v;
        v)
      m.m_params
  in
  Builder.set_formals env.b meth formals;
  let code, spans = strip_spans (lower_block me m.m_body) in
  Builder.set_body env.b meth code;
  Builder.set_instr_spans env.b meth spans

let program (decls : Ast.program) : Program.t =
  let classes = class_table decls in
  let order = topo_order classes in
  let env =
    {
      b = Builder.create ();
      classes;
      type_ids = Hashtbl.create 64;
      field_ids = Hashtbl.create 64;
      sfield_ids = Hashtbl.create 64;
      meth_ids = Hashtbl.create 256;
    }
  in
  declare_types env order;
  declare_fields env order;
  declare_meths env order;
  List.iter
    (fun cls_name ->
      let c = Hashtbl.find classes cls_name in
      List.iter
        (fun (m : Ast.meth_decl) ->
          if not m.Ast.m_abstract then lower_body env cls_name m)
        c.Ast.c_meths)
    order;
  (* Entry points: every [static method main()], in class-name order for
     determinism. *)
  let mains =
    Hashtbl.fold
      (fun (cls, name, arity) meth acc ->
        if
          String.equal name "main" && arity = 0
          && Builder.this_var env.b meth = None
        then (cls, meth) :: acc
        else acc)
      env.meth_ids []
  in
  List.iter
    (fun (_, meth) -> Builder.add_entry env.b meth)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) mains);
  Builder.freeze env.b
