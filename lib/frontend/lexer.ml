type t = {
  src : string;
  file : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (* offset of beginning of current line *)
}

let create ~file src = { src; file; pos = 0; line = 1; bol = 0 }

let here lx =
  { Srcloc.file = lx.file; line = lx.line; col = lx.pos - lx.bol + 1 }

let peek lx = if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let advance lx =
  (match peek lx with
  | Some '\n' ->
    lx.line <- lx.line + 1;
    lx.bol <- lx.pos + 1
  | _ -> ());
  lx.pos <- lx.pos + 1

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let rec skip_space lx =
  match peek lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance lx;
    skip_space lx
  | Some '/' when lx.pos + 1 < String.length lx.src -> (
    match lx.src.[lx.pos + 1] with
    | '/' ->
      while peek lx <> None && peek lx <> Some '\n' do
        advance lx
      done;
      skip_space lx
    | '*' ->
      let start = here lx in
      advance lx;
      advance lx;
      let rec close () =
        match peek lx with
        | None -> Srcloc.error start "unterminated block comment"
        | Some '*' when lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '/' ->
          advance lx;
          advance lx
        | Some _ ->
          advance lx;
          close ()
      in
      close ();
      skip_space lx
    | _ -> ())
  | _ -> ()

let read_ident lx =
  let start = lx.pos in
  while
    match peek lx with
    | Some c -> is_ident_char c
    | None -> false
  do
    advance lx
  done;
  String.sub lx.src start (lx.pos - start)

(* [finish] stamps the token with its start position and the position
   one past its last character, giving the parser real spans. *)
let next lx =
  skip_space lx;
  let pos = here lx in
  let finish tok = (tok, pos, here lx) in
  match peek lx with
  | None -> finish Token.Eof
  | Some c when is_ident_start c ->
    let word = read_ident lx in
    let tok =
      match Token.keyword_of_string word with
      | Some kw -> kw
      | None -> Token.Ident word
    in
    finish tok
  | Some '{' ->
    advance lx;
    finish Token.Lbrace
  | Some '}' ->
    advance lx;
    finish Token.Rbrace
  | Some '(' ->
    advance lx;
    finish Token.Lparen
  | Some ')' ->
    advance lx;
    finish Token.Rparen
  | Some ',' ->
    advance lx;
    finish Token.Comma
  | Some ';' ->
    advance lx;
    finish Token.Semi
  | Some '=' ->
    advance lx;
    finish Token.Eq
  | Some '.' ->
    advance lx;
    finish Token.Dot
  | Some '*' ->
    advance lx;
    finish Token.Star
  | Some ':' ->
    advance lx;
    if peek lx = Some ':' then begin
      advance lx;
      finish Token.Coloncolon
    end
    else finish Token.Colon
  | Some c -> Srcloc.error pos "invalid character %C" c

let tokenize ~file src =
  let lx = create ~file src in
  let rec loop acc =
    let ((tok, _, _) as t) = next lx in
    let acc = t :: acc in
    match tok with
    | Token.Eof -> List.rev acc
    | _ -> loop acc
  in
  loop []
