(** Provenance: explain {e why} the analysis thinks a variable may point
    to an allocation site, as a witness chain through the solver's
    supergraph — from a node where the abstract object first appears
    (its allocation, a receiver binding, or a caught exception) to the
    queried variable.

    This is debug tooling in the spirit of Doop's provenance queries: the
    chain is one shortest derivation, not all of them. *)

type step = {
  description : string;  (** human-readable node description *)
  is_origin : bool;  (** true on the first step *)
}

val explain :
  Pta_solver.Solver.t ->
  var:Pta_ir.Ir.Var_id.t ->
  heap:Pta_ir.Ir.Heap_id.t ->
  step list option
(** [explain solver ~var ~heap] returns a forward witness chain ending at
    one of [var]'s contexts, or [None] if the analysis does not compute
    [var] pointing to [heap].

    @raise Invalid_argument if the solver state is the partial result of
    an aborted (budget-exhausted) run — see
    {!Pta_solver.Solver.is_complete}; a partially-populated supergraph
    cannot support trustworthy witness chains. *)

val pp_chain : Format.formatter -> step list -> unit
