(** The paper's Table-1 metric bundle for one analysis run.

    Four precision metrics — average points-to set size, call-graph
    edges, poly virtual calls, may-fail casts — and the
    platform-independent performance metric (total context-sensitive
    var-points-to size), plus sizing counters. *)

type t = {
  (* precision *)
  avg_objs_per_var : float;
      (** mean context-insensitive points-to set size over variables with
          non-empty sets *)
  vars_with_objs : int;
  call_graph_edges : int;  (** distinct (invocation, target) pairs *)
  reachable_methods : int;
  poly_vcalls : int;
  total_vcalls : int;  (** virtual call sites in reachable methods *)
  may_fail_casts : int;
  total_casts : int;  (** casts in reachable methods *)
  throwing_methods : int;
      (** reachable methods some exception object may escape *)
  uncaught_exceptions : int;
      (** exception allocation sites that may escape an entry point *)
  taint_flows : int;
      (** distinct source-to-sink taint flows under the built-in spec
          ({!Pta_taint.Spec.default}); 0 when nothing matches its
          globs.  Spurious flows = this minus the workload's ground
          truth ({!Pta_workloads.Gen.taint_ground_truth}) *)
  (* performance / size *)
  sensitive_vpt : int;  (** total context-sensitive var-points-to facts *)
  n_ctxs : int;
  n_hctxs : int;
  n_hobjs : int;
  n_var_nodes : int;
  n_call_edges_cs : int;
  n_reachable_cs : int;
}

val compute : Pta_solver.Solver.t -> t
val pp : Format.formatter -> t -> unit
