module Ir = Pta_ir.Ir
module Solver = Pta_solver.Solver
module Intset = Pta_solver.Intset
open Ir

type escape = {
  meth : Meth_id.t;
  exceptions : Heap_id.t list;
}

let per_meth_heapsets solver =
  let acc : Intset.t Meth_id.Tbl.t = Meth_id.Tbl.create 64 in
  Solver.iter_throw_points_to solver (fun meth _ hobjs ->
      if not (Intset.is_empty hobjs) then begin
        let heaps =
          Intset.fold
            (fun hobj set -> Intset.add (Heap_id.to_int (Solver.hobj_heap solver hobj)) set)
            hobjs Intset.empty
        in
        let existing =
          Option.value ~default:Intset.empty (Meth_id.Tbl.find_opt acc meth)
        in
        (* Contexts of one method mostly rethrow the same objects; the
           fused growth test skips the table write when nothing is new. *)
        let merged, grew = Intset.union_stats existing heaps in
        if grew then Meth_id.Tbl.replace acc meth merged
      end);
  acc

let escapes solver =
  per_meth_heapsets solver |> fun tbl ->
  Meth_id.Tbl.fold
    (fun meth heaps out ->
      { meth; exceptions = List.map Heap_id.of_int (Intset.elements heaps) } :: out)
    tbl []
  |> List.sort (fun a b -> Meth_id.compare a.meth b.meth)

let uncaught_at_entries solver =
  let program = Solver.program solver in
  let entries = Program.entries program in
  let tbl = per_meth_heapsets solver in
  let escaped =
    List.fold_left
      (fun acc entry ->
        match Meth_id.Tbl.find_opt tbl entry with
        | Some heaps -> Intset.union acc heaps
        | None -> acc)
      Intset.empty entries
  in
  List.map Heap_id.of_int (Intset.elements escaped)
