module Ir = Pta_ir.Ir
module Solver = Pta_solver.Solver
module Intset = Pta_solver.Intset

type t = {
  avg_objs_per_var : float;
  vars_with_objs : int;
  call_graph_edges : int;
  reachable_methods : int;
  poly_vcalls : int;
  total_vcalls : int;
  may_fail_casts : int;
  total_casts : int;
  throwing_methods : int;
  uncaught_exceptions : int;
  taint_flows : int;
  sensitive_vpt : int;
  n_ctxs : int;
  n_hctxs : int;
  n_hobjs : int;
  n_var_nodes : int;
  n_call_edges_cs : int;
  n_reachable_cs : int;
}

let compute solver =
  let program = Solver.program solver in
  let total_objs = ref 0 in
  let vars_with_objs = ref 0 in
  Ir.Program.iter_vars program (fun var _ ->
      let size = Intset.cardinal (Solver.ci_var_points_to solver var) in
      if size > 0 then begin
        incr vars_with_objs;
        total_objs := !total_objs + size
      end);
  let vcall_sites = Devirt.analyze solver in
  let cast_sites = Casts.analyze solver in
  let escapes = Exceptions.escapes solver in
  let taint_flows =
    let spec = Pta_taint.Spec.compile program Pta_taint.Spec.default in
    if Pta_taint.Spec.n_sources spec = 0 then 0
    else Pta_taint.Taint.n_flows (Pta_taint.Taint.analyze solver spec)
  in
  {
    avg_objs_per_var =
      (if !vars_with_objs = 0 then 0.
       else float_of_int !total_objs /. float_of_int !vars_with_objs);
    vars_with_objs = !vars_with_objs;
    call_graph_edges = Solver.n_call_edges_ci solver;
    reachable_methods = Ir.Meth_id.Set.cardinal (Solver.reachable_meths solver);
    poly_vcalls = Devirt.poly_count vcall_sites;
    total_vcalls = List.length vcall_sites;
    may_fail_casts = Casts.may_fail_count cast_sites;
    total_casts = List.length cast_sites;
    throwing_methods = List.length escapes;
    uncaught_exceptions = List.length (Exceptions.uncaught_at_entries solver);
    taint_flows;
    sensitive_vpt = Solver.sensitive_vpt_size solver;
    n_ctxs = Solver.n_ctxs solver;
    n_hctxs = Solver.n_hctxs solver;
    n_hobjs = Solver.n_hobjs solver;
    n_var_nodes = Solver.n_var_nodes solver;
    n_call_edges_cs = Solver.n_call_edges_cs solver;
    n_reachable_cs = Solver.n_reachable_cs solver;
  }

let pp ppf m =
  Format.fprintf ppf
    "@[<v>avg objs/var: %.2f (over %d vars)@,\
     call-graph edges: %d (methods: %d)@,\
     poly v-calls: %d (of %d)@,\
     may-fail casts: %d (of %d)@,\
     throwing methods: %d, uncaught exception sites: %d@,\
     taint flows: %d@,\
     sensitive var-points-to: %d@,\
     contexts: %d, heap contexts: %d, abstract objects: %d@,\
     var nodes: %d, cs call edges: %d, cs reachable: %d@]"
    m.avg_objs_per_var m.vars_with_objs m.call_graph_edges m.reachable_methods
    m.poly_vcalls m.total_vcalls m.may_fail_casts m.total_casts m.throwing_methods
    m.uncaught_exceptions m.taint_flows m.sensitive_vpt
    m.n_ctxs m.n_hctxs m.n_hobjs m.n_var_nodes m.n_call_edges_cs m.n_reachable_cs
