module Ir = Pta_ir.Ir
module Ctx = Pta_context.Ctx
module Solver = Pta_solver.Solver
module Intset = Pta_solver.Intset
open Ir

type step = {
  description : string;
  is_origin : bool;
}

let describe_node solver nid =
  let program = Solver.program solver in
  let ctx_str ctx =
    Format.asprintf "%a" (Ctx.pp_value program) (Solver.ctx_value solver ctx)
  in
  match Solver.node_kind solver nid with
  | Solver.Var_node (var, ctx) ->
    Printf.sprintf "%s under %s" (Program.var_qualified_name program var)
      (ctx_str ctx)
  | Solver.Fld_node (hobj, field) ->
    Printf.sprintf "field %s of %s"
      (Program.field_info program field).field_name
      (Program.heap_name program (Solver.hobj_heap solver hobj))
  | Solver.Static_fld_node field ->
    let fi = Program.field_info program field in
    Printf.sprintf "static field %s::%s"
      (Program.type_name program fi.field_owner)
      fi.field_name
  | Solver.Throw_node (meth, ctx) ->
    Printf.sprintf "exceptions escaping %s under %s"
      (Program.meth_qualified_name program meth)
      (ctx_str ctx)
  | Solver.Scope_node -> "a try-block scope"

(* Breadth-first search backwards from the target among nodes containing
   the abstract object; the chain root is a node with no predecessor
   passing the object (the allocation target, a receiver binding, ...). *)
let explain solver ~var ~heap =
  (* An aborted run leaves a partially-populated supergraph: nodes may
     exist whose in-edges were never wired, so a "witness chain" found
     in it can be truncated or outright wrong.  Refuse rather than
     mislead. *)
  if not (Solver.is_complete solver) then
    invalid_arg "Provenance.explain: analysis aborted before fixpoint";
  if not (Intset.mem (Heap_id.to_int heap) (Solver.ci_var_points_to solver var))
  then None
  else begin
    (* Collect the hobjs of this allocation site. *)
    let hobjs = ref [] in
    for h = 0 to Solver.n_hobjs solver - 1 do
      if Heap_id.equal (Solver.hobj_heap solver h) heap then hobjs := h :: !hobjs
    done;
    (* Reverse adjacency restricted to nodes containing some such hobj,
       tracking which hobj travels each edge (any one works).  The walk
       runs over canonical node ids — unified copy-cycle members share
       state, so one class is one BFS vertex — except that the target
       keeps its original id so the reported step names the variable the
       caller asked about, not an arbitrary cycle member. *)
    let n = Solver.n_nodes solver in
    let canon nid = Solver.canonical_node solver nid in
    let holds nid =
      List.exists
        (fun h -> Intset.mem h (Solver.node_points_to solver nid))
        !hobjs
    in
    let preds = Array.make n [] in
    for src = 0 to n - 1 do
      if canon src = src && holds src then
        List.iter
          (fun h ->
            if Intset.mem h (Solver.node_points_to solver src) then
              List.iter
                (fun dst ->
                  let dst = canon dst in
                  if dst <> src && holds dst then
                    preds.(dst) <- src :: preds.(dst))
                (Solver.node_succs_passing solver src h))
          !hobjs
    done;
    let targets =
      List.filter holds (Solver.var_node_ids solver var)
    in
    match targets with
    | [] -> None
    | target0 :: _ ->
      let target = canon target0 in
      (* BFS backwards to the furthest reachable origin (a node with no
         unvisited predecessor). *)
      let visited = Array.make n false in
      let parent = Array.make n (-1) in
      let queue = Queue.create () in
      Queue.add target queue;
      visited.(target) <- true;
      let origin = ref target in
      while not (Queue.is_empty queue) do
        let nid = Queue.pop queue in
        let fresh = List.filter (fun p -> not visited.(p)) preds.(nid) in
        if fresh = [] && preds.(nid) = [] then origin := nid;
        List.iter
          (fun p ->
            visited.(p) <- true;
            parent.(p) <- nid;
            Queue.add p queue)
          fresh
      done;
      (* Forward chain from origin following parent pointers. *)
      let rec chain nid acc =
        if nid = target then List.rev (target :: acc)
        else chain parent.(nid) (nid :: acc)
      in
      let nodes = chain !origin [] in
      Some
        (List.mapi
           (fun i nid ->
             let nid = if nid = target then target0 else nid in
             { description = describe_node solver nid; is_origin = i = 0 })
           nodes)
  end

let pp_chain ppf steps =
  List.iteri
    (fun i s ->
      if s.is_origin then Format.fprintf ppf "  origin: %s@," s.description
      else Format.fprintf ppf "  %2d: flows to %s@," i s.description)
    steps
