type term =
  | V of int
  | C of int

type atom = { rel : Relation.t; args : term array }

type head_term =
  | Hv of int
  | Hc of int
  | Hf of (int array -> int)

type head = { hrel : Relation.t; hargs : head_term array }

type rule = {
  rname : string;
  n_vars : int;
  heads : head list;
  body : atom list;
}

let rule rname ~n_vars heads body = { rname; n_vars; heads; body }

(* ------------------------------------------------------------------ *)
(* Matching                                                            *)
(* ------------------------------------------------------------------ *)

(* Try to extend [env] so that [atom]'s args match [fact]; returns the
   variables newly bound (for backtracking) or None. *)
let match_fact env (atom : atom) fact =
  let bound = ref [] in
  let ok = ref true in
  let n = Array.length atom.args in
  let i = ref 0 in
  while !ok && !i < n do
    (match atom.args.(!i) with
    | C c -> if fact.(!i) <> c then ok := false
    | V v ->
      if env.(v) = -1 then begin
        env.(v) <- fact.(!i);
        bound := v :: !bound
      end
      else if env.(v) <> fact.(!i) then ok := false);
    incr i
  done;
  if !ok then Some !bound
  else begin
    List.iter (fun v -> env.(v) <- -1) !bound;
    None
  end

let undo env bound = List.iter (fun v -> env.(v) <- -1) bound

let selection_pattern env (atom : atom) =
  Array.map
    (fun t ->
      match t with
      | C c -> c
      | V v -> env.(v) (* -1 when unbound = wildcard *))
    atom.args

(* Solve the remaining body atoms left to right, calling [emit] on every
   complete binding. *)
let rec solve env atoms emit =
  match atoms with
  | [] -> emit ()
  | atom :: rest ->
    Relation.select atom.rel
      ~pattern:(selection_pattern env atom)
      (fun fact ->
        match match_fact env atom fact with
        | None -> ()
        | Some bound ->
          solve env rest emit;
          undo env bound)

let head_fact env head =
  Array.map
    (fun t ->
      match t with
      | Hc c -> c
      | Hv v ->
        if env.(v) = -1 then invalid_arg "Engine: unbound head variable";
        env.(v)
      | Hf f -> f env)
    head.hargs

(* ------------------------------------------------------------------ *)
(* Linter                                                              *)
(* ------------------------------------------------------------------ *)

type lint_kind =
  | Unbound_head_var
  | Bad_arity
  | Var_out_of_range
  | Never_fires
  | Unused_relation
  | Duplicate_rule

type lint_error = {
  lint_rule : string;
  lint_kind : lint_kind;
  lint_message : string;
}

let lint_is_hard = function
  | Unbound_head_var | Bad_arity | Var_out_of_range -> true
  | Never_fires | Unused_relation | Duplicate_rule -> false

let lint rules =
  let errors = ref [] in
  let err rule lint_kind fmt =
    Printf.ksprintf
      (fun lint_message ->
        errors := { lint_rule = rule.rname; lint_kind; lint_message } :: !errors)
      fmt
  in
  let derived = Hashtbl.create 16 in
  List.iter
    (fun rule ->
      List.iter
        (fun h -> Hashtbl.replace derived (Relation.name h.hrel) ())
        rule.heads)
    rules;
  List.iter
    (fun rule ->
      (* Arity consistency and variable ranges, body side. *)
      List.iteri
        (fun i atom ->
          let arity = Relation.arity atom.rel in
          if Array.length atom.args <> arity then
            err rule Bad_arity
              "body atom %d of rule %s has %d arguments but relation %s has \
               arity %d"
              i rule.rname (Array.length atom.args) (Relation.name atom.rel)
              arity;
          Array.iter
            (function
              | V v ->
                if v < 0 || v >= rule.n_vars then
                  err rule Var_out_of_range
                    "body atom %d of rule %s uses variable %d outside [0, \
                     n_vars=%d)"
                    i rule.rname v rule.n_vars
              | C _ -> ())
            atom.args)
        rule.body;
      (* Head side. *)
      let bound = Array.make (max rule.n_vars 0) false in
      List.iter
        (fun atom ->
          Array.iter
            (function
              | V v -> if v >= 0 && v < rule.n_vars then bound.(v) <- true
              | C _ -> ())
            atom.args)
        rule.body;
      List.iteri
        (fun i head ->
          let arity = Relation.arity head.hrel in
          if Array.length head.hargs <> arity then
            err rule Bad_arity
              "head %d of rule %s has %d arguments but relation %s has arity \
               %d"
              i rule.rname (Array.length head.hargs) (Relation.name head.hrel)
              arity;
          Array.iter
            (function
              | Hv v ->
                if v < 0 || v >= rule.n_vars then
                  err rule Var_out_of_range
                    "head %d of rule %s uses variable %d outside [0, \
                     n_vars=%d)"
                    i rule.rname v rule.n_vars
                else if not bound.(v) then
                  (* The runtime counterpart is the [invalid_arg] in
                     [head_fact]; the linter rejects the rule before it
                     can ever fire. *)
                  err rule Unbound_head_var
                    "head %d of rule %s (relation %s) uses variable %d which \
                     no body atom binds: the rule violates range restriction"
                    i rule.rname (Relation.name head.hrel) v
              | Hc _ | Hf _ -> ())
            head.hargs)
        rule.heads;
      (* Never-fires: a body atom over a relation that is empty now and
         that no rule derives can never match, so the rule is dead. *)
      List.iteri
        (fun i atom ->
          let name = Relation.name atom.rel in
          if (not (Hashtbl.mem derived name)) && Relation.cardinal atom.rel = 0
          then
            err rule Never_fires
              "body atom %d of rule %s reads relation %s, which is empty and \
               derived by no rule: the rule can never fire"
              i rule.rname name)
        rule.body)
    rules;
  (* Program-level informational checks, after the per-rule ones. *)
  (* Unused relation: derived by some rule but read by no body — the
     facts are write-only.  Fine for an output relation, suspicious for
     anything else; reported once, on the first deriving rule. *)
  let read_rels = Hashtbl.create 16 in
  List.iter
    (fun rule ->
      List.iter
        (fun atom -> Hashtbl.replace read_rels (Relation.name atom.rel) ())
        rule.body)
    rules;
  let unused_reported = Hashtbl.create 16 in
  List.iter
    (fun rule ->
      List.iter
        (fun head ->
          let name = Relation.name head.hrel in
          if
            (not (Hashtbl.mem read_rels name))
            && not (Hashtbl.mem unused_reported name)
          then begin
            Hashtbl.replace unused_reported name ();
            err rule Unused_relation
              "relation %s is derived by rule %s but read by no rule body: \
               its facts are write-only (expected for an output relation, \
               suspicious otherwise)"
              name rule.rname
          end)
        rule.heads)
    rules;
  (* Duplicate rule: structurally identical heads and body (same
     n_vars, relations, and argument terms).  Rules with computed
     ([Hf]) head terms are skipped — closures cannot be compared. *)
  let has_hf rule =
    List.exists
      (fun h ->
        Array.exists
          (function
            | Hf _ -> true
            | Hv _ | Hc _ -> false)
          h.hargs)
      rule.heads
  in
  let shape rule =
    ( rule.n_vars,
      List.map
        (fun h ->
          ( Relation.name h.hrel,
            Array.to_list
              (Array.map
                 (function
                   | Hv v -> `Var v
                   | Hc c -> `Const c
                   | Hf _ -> assert false)
                 h.hargs) ))
        rule.heads,
      List.map
        (fun atom ->
          ( Relation.name atom.rel,
            Array.to_list
              (Array.map
                 (function
                   | V v -> `Var v
                   | C c -> `Const c)
                 atom.args) ))
        rule.body )
  in
  let seen_shapes = Hashtbl.create 16 in
  List.iter
    (fun rule ->
      if not (has_hf rule) then
        let s = shape rule in
        match Hashtbl.find_opt seen_shapes s with
        | Some earlier ->
          err rule Duplicate_rule
            "rule %s duplicates rule %s: identical heads and body"
            rule.rname earlier
        | None -> Hashtbl.add seen_shapes s rule.rname)
    rules;
  List.rev !errors

(* ------------------------------------------------------------------ *)
(* Semi-naive driver                                                   *)
(* ------------------------------------------------------------------ *)

let relations_of rules =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let note r =
    if not (Hashtbl.mem seen (Relation.name r)) then begin
      Hashtbl.add seen (Relation.name r) ();
      out := r :: !out
    end
  in
  List.iter
    (fun rule ->
      List.iter (fun h -> note h.hrel) rule.heads;
      List.iter (fun a -> note a.rel) rule.body)
    rules;
  !out

let run ?(observer = Pta_obs.Observer.null) ?(budget = Pta_obs.Budget.unlimited ())
    ?(trace = Pta_obs.Trace.null) ?(metrics = Pta_metrics.Registry.null) rules =
  let module Observer = Pta_obs.Observer in
  let module Budget = Pta_obs.Budget in
  let module Trace = Pta_obs.Trace in
  let module Registry = Pta_metrics.Registry in
  let rels = relations_of rules in
  let total_facts () =
    List.fold_left (fun acc r -> acc + Relation.cardinal r) 0 rels
  in
  let metered = not (Registry.is_null metrics) in
  let rounds_counter =
    Registry.counter metrics ~help:"Semi-naive evaluation rounds"
      "pta_datalog_rounds_total"
  in
  (* Per-rule counters resolved once, outside the fixpoint loop. *)
  let rule_counters = Hashtbl.create 16 in
  if metered then
    List.iter
      (fun rule ->
        if not (Hashtbl.mem rule_counters rule.rname) then
          Hashtbl.add rule_counters rule.rname
            (Registry.counter metrics ~help:"Facts derived, by rule"
               ~labels:[ ("rule", rule.rname) ]
               "pta_datalog_facts_total"))
      rules;
  Budget.start budget ~probe:total_facts;
  Observer.phase observer "fixpoint" @@ fun () ->
  Trace.span trace ~cat:"phase" "fixpoint" @@ fun () ->
  (* delta = facts with index in [low, high) *)
  let low = Hashtbl.create 16 and high = Hashtbl.create 16 in
  List.iter
    (fun r ->
      Hashtbl.replace low (Relation.name r) 0;
      Hashtbl.replace high (Relation.name r) (Relation.cardinal r))
    rels;
  let changed = ref true in
  while !changed do
    changed := false;
    (* One semi-naive round is one budget/observer iteration.  Rounds
       are few and heavy, so poll the clock on every one. *)
    Budget.check budget;
    Observer.iteration observer;
    if metered then Registry.incr rounds_counter;
    Trace.begin_span trace ~cat:"phase" "round";
    let measured =
      not (Observer.is_null observer && Trace.is_null trace)
    in
    let facts_before = if measured then total_facts () else 0 in
    (* Evaluate every rule once per body position, with that position
       restricted to the previous round's delta. *)
    List.iter
      (fun rule ->
        let eval () =
          let env = Array.make rule.n_vars (-1) in
          List.iteri
            (fun p atom ->
              let lo = Hashtbl.find low (Relation.name atom.rel) in
              let hi = Hashtbl.find high (Relation.name atom.rel) in
              if hi > lo then
                for i = lo to hi - 1 do
                  let fact = Relation.nth atom.rel i in
                  match match_fact env atom fact with
                  | None -> ()
                  | Some bound ->
                    let rest = List.filteri (fun q _ -> q <> p) rule.body in
                    solve env rest (fun () ->
                        List.iter
                          (fun h ->
                            if Relation.add h.hrel (head_fact env h) then
                              changed := true)
                          rule.heads);
                    undo env bound
                done)
            rule.body
        in
        if Trace.is_null trace && not metered then eval ()
        else begin
          (* One complete span / counter bump per rule per round: its
             wall time and the facts it alone derived (rules fire in
             sequence, so the fact-count difference is attributable). *)
          let before = total_facts () in
          let t0 = if Trace.is_null trace then 0. else Trace.now_us trace in
          let a0 = Trace.alloc_mark trace in
          eval ();
          let derived = total_facts () - before in
          if metered then
            Registry.add (Hashtbl.find rule_counters rule.rname) derived;
          if not (Trace.is_null trace) then
            Trace.complete trace ~alloc:a0 ~delta:derived ~cat:"rule"
              ~name:rule.rname ~t0_us:t0
              ~dur_us:(Trace.now_us trace -. t0)
        end)
      rules;
    (* Advance the delta windows. *)
    List.iter
      (fun r ->
        let name = Relation.name r in
        Hashtbl.replace low name (Hashtbl.find high name);
        Hashtbl.replace high name (Relation.cardinal r))
      rels;
    let fresh = if measured then total_facts () - facts_before else 0 in
    if not (Observer.is_null observer) then begin
      (* New facts this round double as both the node count and the
         round's delta size. *)
      Observer.delta observer fresh;
      for _ = 1 to fresh do
        Observer.node observer
      done
    end;
    Trace.end_span ~delta:fresh trace
    (* A final catch-up round: facts derived this round become the next
       delta; loop continues while any rule fired. *)
  done;
  if metered then
    List.iter
      (fun r ->
        Registry.set
          (Registry.gauge metrics ~help:"Final relation cardinality"
             ~labels:[ ("relation", Relation.name r) ]
             "pta_datalog_relation_facts")
          (float_of_int (Relation.cardinal r)))
      rels
