(** A small semi-naive Datalog engine over {!Relation}s.

    Rules are positive Horn clauses over integer tuples.  Head argument
    positions may also be {e computed} by an OCaml hook over the rule's
    variable bindings — the analogue of LogicBlox constructor functions,
    which is exactly how Doop creates contexts ([Record]/[Merge]/
    [MergeStatic]).  Hooks must be deterministic and total; because
    contexts are interned tuples of bounded depth, the generated domain
    stays finite and evaluation terminates.

    Evaluation is semi-naive: each round joins every rule once per body
    atom, restricting that atom to the facts derived in the previous
    round.  No negation or stratification is needed by the points-to
    rules (they are monotone, as the paper notes). *)

type term =
  | V of int  (** rule variable, numbered from 0 *)
  | C of int  (** constant *)

type atom = { rel : Relation.t; args : term array }

type head_term =
  | Hv of int  (** copy a bound rule variable *)
  | Hc of int  (** constant *)
  | Hf of (int array -> int)
      (** computed from the full variable-binding environment *)

type head = { hrel : Relation.t; hargs : head_term array }

type rule = {
  rname : string;
  n_vars : int;
  heads : head list;
  body : atom list;  (** evaluated left to right; order affects speed only *)
}

val rule : string -> n_vars:int -> head list -> atom list -> rule

(** {1 Linting}

    Static well-formedness checks over a rule program, run before
    evaluation.  The first three kinds are {e hard} errors — the rule
    would crash or silently misbehave at runtime (the engine's own
    guard is the [invalid_arg] raised on an unbound head variable
    mid-fixpoint; the linter surfaces it at construction time instead).
    The remaining kinds are informational: [Never_fires] depends on the
    current (EDB) contents of the relations, and [Unused_relation] /
    [Duplicate_rule] flag likely-but-not-certainly-unintended program
    shapes, so callers decide whether they matter. *)

type lint_kind =
  | Unbound_head_var
      (** a head copies a variable no positive body atom binds
          (range-restriction violation) *)
  | Bad_arity  (** an atom's argument count differs from its relation's *)
  | Var_out_of_range  (** a variable index is outside [\[0, n_vars)] *)
  | Never_fires
      (** a body atom reads a relation that is empty and derived by no
          rule, so the rule cannot ever fire *)
  | Unused_relation
      (** a relation derived by some rule is read by no rule body: its
          facts are write-only — expected for an output relation,
          suspicious otherwise (reported once, on the first deriving
          rule) *)
  | Duplicate_rule
      (** a rule is structurally identical to an earlier one (same
          variable count, heads and body); rules with computed [Hf]
          head terms are never compared *)

type lint_error = {
  lint_rule : string;  (** name of the offending rule *)
  lint_kind : lint_kind;
  lint_message : string;  (** precise, human-readable explanation *)
}

val lint_is_hard : lint_kind -> bool

val lint : rule list -> lint_error list
(** Errors in program order (per rule: body arity/range, head checks,
    never-fires), followed by the program-level informational checks
    (unused relations, duplicate rules).  An empty list means the
    program is well-formed. *)

val run :
  ?observer:Pta_obs.Observer.t ->
  ?budget:Pta_obs.Budget.t ->
  ?trace:Pta_obs.Trace.t ->
  ?metrics:Pta_metrics.Registry.t ->
  rule list ->
  unit
(** Evaluate to fixpoint, mutating the relations appearing in the rules.
    Facts already present count as the initial delta.

    The same instruments the native solver takes: [budget] is ticked
    once per semi-naive round (its work probe reads the total fact
    count, so an abort payload's [nodes] field is facts derived);
    [observer] receives an iteration tick and the round's new-fact count
    (as [on_delta] plus one [on_node] per fact) each round, and a
    ["fixpoint"] phase timing.  All default to the free null/unlimited
    instruments.

    With a live [trace], the engine emits a ["phase"] span for the
    fixpoint and one per round, and — per rule, per round — a
    ["rule"]-category complete span named after the rule, carrying its
    wall time and the facts it derived ([delta]).  The per-rule
    aggregates behind {!Pta_obs.Trace.profile} are exact; the engine is
    deterministic, so firing and delta counts are identical across
    identical runs.

    With a live [metrics] registry, the engine maintains a
    [pta_datalog_rounds_total] counter, per-rule
    [pta_datalog_facts_total{rule=...}] derived-fact counters, and — at
    fixpoint — [pta_datalog_relation_facts{relation=...}] cardinality
    gauges.  All deterministic, same as the trace aggregates.

    @raise Pta_obs.Budget.Exhausted when the budget runs out. *)
