(** Typed, labelled metric registry with deterministic exposition.

    A registry holds counter, gauge, and histogram families keyed by
    metric name; each family holds one series per label set.  Base
    labels supplied at [create] time (benchmark, analysis, ...) are
    merged into every series.

    Follows the same zero-cost discipline as {!Pta_obs.Observer}: the
    distinguished {!null} registry hands out shared dummy handles, so
    instrumented code pays one physical-equality check and a dead store
    when metrics are off.  Hot-path updates ([incr], [add], [set],
    [observe]) never allocate and never search a table — resolve the
    handle once, outside the loop.

    Exposition is deterministic: families and label sets are emitted in
    sorted order, floats render via a fixed repr, and no wall-clock
    values are ever stored, so two identical runs produce byte-identical
    OpenMetrics text and JSON. *)

type t
type labels = (string * string) list

type counter
type gauge
type histogram

(** The no-op registry: registration returns dummy handles, exposition
    is empty. *)
val null : t

val is_null : t -> bool

(** [create ~labels ()] makes a live registry whose [labels] are merged
    into every series.  Raises [Invalid_argument] on malformed or
    duplicate label names. *)
val create : ?labels:labels -> unit -> t

(** {1 Registration}

    Registering the same name + label set twice returns the same
    handle.  Raises [Invalid_argument] on kind mismatch for an existing
    name, malformed names, or duplicate labels. *)

val counter : t -> ?help:string -> ?labels:labels -> string -> counter
val gauge : t -> ?help:string -> ?labels:labels -> string -> gauge

(** [histogram t ~buckets name] registers a fixed-bucket histogram.
    [buckets] are strictly increasing upper bounds; an implicit [+Inf]
    bucket is appended.  Raises [Invalid_argument] on an empty or
    non-increasing ladder, or if re-registered with different bounds. *)
val histogram :
  t -> ?help:string -> ?labels:labels -> buckets:float list -> string -> histogram

(** [pow2_buckets n] is the ladder [1; 2; 4; ...; 2^(n-1)]. *)
val pow2_buckets : int -> float list

(** [exp_buckets ~start ~factor count] is the geometric ladder
    [start; start*factor; ...; start*factor^(count-1)] — the natural
    shape for latency distributions, whose mass spans orders of
    magnitude (a linear ladder wastes every bucket past the mode).
    Bounds are produced by repeated multiplication, so the ladder is
    bit-identical across platforms and safe to commit into ledger
    records.  Raises [Invalid_argument] unless [start > 0],
    [factor > 1] and [count >= 1]. *)
val exp_buckets : start:float -> factor:float -> int -> float list

(** The registry-wide ladder for wall-clock seconds:
    [exp_buckets ~start:0.001 ~factor:2. 24] — 1ms to ~2.3h.  Used for
    the per-cell solve-time distributions recorded into the bench
    ledger; sharing one ladder keeps histograms mergeable across
    records. *)
val time_buckets : float list

(** {1 Updates} *)

val incr : counter -> unit

(** [add c n] bumps a counter by [n >= 0]; raises [Invalid_argument] on
    a negative delta (counters are monotone). *)
val add : counter -> int -> unit

val counter_value : counter -> int
val set : gauge -> float -> unit
val gauge_value : gauge -> float

(** [observe h v] records [v] into the first bucket whose upper bound is
    [>= v] ([le] semantics, matching Prometheus). *)
val observe : histogram -> float -> unit

val observe_int : histogram -> int -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

(** [(upper_bound, count)] per bucket, {e non}-cumulative, ending with
    the implicit [(infinity, overflow)] bucket.  This is the raw shape
    recorded into bench-ledger records (the OpenMetrics exposition
    stays cumulative). *)
val histogram_buckets : histogram -> (float * int) list

(** {1 Exposition} *)

(** OpenMetrics / Prometheus text format, terminated by [# EOF].
    Deterministic: sorted families, sorted series, cumulative
    [_bucket{le=...}] lines plus [_sum] and [_count]. *)
val to_openmetrics : t -> string

(** Stable JSON: an object keyed by family name, each with [kind],
    [help], and a [series] list carrying labels and values (cumulative
    bucket counts for histograms). *)
val to_json : t -> Pta_obs.Json.t
