module Json = Pta_obs.Json

type labels = (string * string) list

type counter = { mutable c_value : int }
type gauge = { mutable g_value : float }

type histogram = {
  h_bounds : float array;  (* strictly increasing upper bounds *)
  h_counts : int array;  (* per-bucket (non-cumulative); last = +Inf *)
  mutable h_sum : float;
}

type series =
  | S_counter of counter
  | S_gauge of gauge
  | S_histogram of histogram

type kind = Counter | Gauge | Histogram

let kind_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

type family = {
  f_help : string;
  f_kind : kind;
  f_series : (labels, series) Hashtbl.t;
}

type t = {
  base : labels;
  families : (string, family) Hashtbl.t;
}

let null = { base = []; families = Hashtbl.create 1 }
let is_null t = t == null

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let valid_name s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
       s

let check_name what s =
  if not (valid_name s) then
    invalid_arg (Printf.sprintf "Registry: invalid %s %S" what s)

let normalize_labels base labels =
  let all = base @ labels in
  List.iter (fun (k, _) -> check_name "label name" k) all;
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) all in
  let rec dup = function
    | (a, _) :: ((b, _) :: _ as rest) ->
      if String.equal a b then
        invalid_arg (Printf.sprintf "Registry: duplicate label %S" a)
      else dup rest
    | _ -> ()
  in
  dup sorted;
  sorted

let create ?(labels = []) () =
  { base = normalize_labels [] labels; families = Hashtbl.create 32 }

(* ------------------------------------------------------------------ *)
(* Registration                                                        *)
(* ------------------------------------------------------------------ *)

let family t ~kind ~help name =
  check_name "metric name" name;
  match Hashtbl.find_opt t.families name with
  | Some f ->
    if f.f_kind <> kind then
      invalid_arg
        (Printf.sprintf "Registry: %s registered as %s, requested as %s" name
           (kind_name f.f_kind) (kind_name kind));
    f
  | None ->
    let f = { f_help = help; f_kind = kind; f_series = Hashtbl.create 4 } in
    Hashtbl.add t.families name f;
    f

let dummy_counter = { c_value = 0 }
let dummy_gauge = { g_value = 0. }
let dummy_histogram = { h_bounds = [||]; h_counts = [| 0 |]; h_sum = 0. }

let counter t ?(help = "") ?(labels = []) name =
  if t == null then dummy_counter
  else begin
    let f = family t ~kind:Counter ~help name in
    let labels = normalize_labels t.base labels in
    match Hashtbl.find_opt f.f_series labels with
    | Some (S_counter c) -> c
    | Some _ -> assert false
    | None ->
      let c = { c_value = 0 } in
      Hashtbl.add f.f_series labels (S_counter c);
      c
  end

let gauge t ?(help = "") ?(labels = []) name =
  if t == null then dummy_gauge
  else begin
    let f = family t ~kind:Gauge ~help name in
    let labels = normalize_labels t.base labels in
    match Hashtbl.find_opt f.f_series labels with
    | Some (S_gauge g) -> g
    | Some _ -> assert false
    | None ->
      let g = { g_value = 0. } in
      Hashtbl.add f.f_series labels (S_gauge g);
      g
  end

let histogram t ?(help = "") ?(labels = []) ~buckets name =
  if t == null then dummy_histogram
  else begin
    let bounds = Array.of_list buckets in
    if Array.length bounds = 0 then
      invalid_arg "Registry: histogram needs at least one bucket";
    Array.iteri
      (fun i b ->
        if i > 0 && bounds.(i - 1) >= b then
          invalid_arg "Registry: histogram buckets must be strictly increasing")
      bounds;
    let f = family t ~kind:Histogram ~help name in
    let labels = normalize_labels t.base labels in
    match Hashtbl.find_opt f.f_series labels with
    | Some (S_histogram h) ->
      if h.h_bounds <> bounds then
        invalid_arg
          (Printf.sprintf "Registry: %s re-registered with different buckets"
             name);
      h
    | Some _ -> assert false
    | None ->
      let h =
        {
          h_bounds = bounds;
          h_counts = Array.make (Array.length bounds + 1) 0;
          h_sum = 0.;
        }
      in
      Hashtbl.add f.f_series labels (S_histogram h);
      h
  end

(* ------------------------------------------------------------------ *)
(* Updates (hot paths: no allocation, no search)                       *)
(* ------------------------------------------------------------------ *)

let incr c = c.c_value <- c.c_value + 1

let add c n =
  if n < 0 then invalid_arg "Registry.add: counters are monotone";
  c.c_value <- c.c_value + n

let counter_value c = c.c_value
let set g v = g.g_value <- v
let gauge_value g = g.g_value

let observe h v =
  let n = Array.length h.h_bounds in
  let i = ref 0 in
  while !i < n && v > h.h_bounds.(!i) do
    i := !i + 1
  done;
  h.h_counts.(!i) <- h.h_counts.(!i) + 1;
  h.h_sum <- h.h_sum +. v

let observe_int h v = observe h (float_of_int v)
let histogram_count h = Array.fold_left ( + ) 0 h.h_counts
let histogram_sum h = h.h_sum

(* Power-of-two bucket ladder: 1, 2, 4, ..., 2^(n-1). *)
let pow2_buckets n = List.init (max 1 n) (fun i -> float_of_int (1 lsl i))

(* Geometric ladder: start, start*factor, ..., start*factor^(count-1).
   Bounds are computed by repeated multiplication (not pow), so the
   ladder is bit-identical on every platform — it lands in committed
   ledger records, where byte determinism matters. *)
let exp_buckets ~start ~factor count =
  if not (start > 0. && Float.is_finite start) then
    invalid_arg "Registry.exp_buckets: start must be positive and finite";
  if not (factor > 1. && Float.is_finite factor) then
    invalid_arg "Registry.exp_buckets: factor must be > 1 and finite";
  if count < 1 then invalid_arg "Registry.exp_buckets: count must be >= 1";
  let rec go acc b k = if k = 0 then List.rev acc else go (b :: acc) (b *. factor) (k - 1) in
  go [] start count

let time_buckets = exp_buckets ~start:0.001 ~factor:2. 24

let histogram_buckets h =
  Array.to_list
    (Array.mapi
       (fun i n ->
         ( (if i < Array.length h.h_bounds then h.h_bounds.(i) else infinity),
           n ))
       h.h_counts)

(* ------------------------------------------------------------------ *)
(* Exposition                                                          *)
(* ------------------------------------------------------------------ *)

(* Decimal-point-preserving float rendering, same discipline as the JSON
   printer: byte-stable and round-trippable. *)
let float_repr x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.1f" x
  else Printf.sprintf "%.17g" x

let escape_label_value s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_labels = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
           labels)
    ^ "}"

(* Labels with an extra pair spliced in (still sorted). *)
let with_label labels k v =
  List.sort (fun (a, _) (b, _) -> compare a b) ((k, v) :: labels)

let sorted_families t =
  Hashtbl.fold (fun name f acc -> (name, f) :: acc) t.families []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let sorted_series f =
  Hashtbl.fold (fun labels s acc -> (labels, s) :: acc) f.f_series []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let to_openmetrics t =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  List.iter
    (fun (name, f) ->
      if f.f_help <> "" then line "# HELP %s %s" name f.f_help;
      line "# TYPE %s %s" name (kind_name f.f_kind);
      List.iter
        (fun (labels, s) ->
          match s with
          | S_counter c ->
            line "%s%s %d" name (render_labels labels) c.c_value
          | S_gauge g ->
            line "%s%s %s" name (render_labels labels) (float_repr g.g_value)
          | S_histogram h ->
            let cum = ref 0 in
            Array.iteri
              (fun i n ->
                cum := !cum + n;
                let le =
                  if i < Array.length h.h_bounds then float_repr h.h_bounds.(i)
                  else "+Inf"
                in
                line "%s_bucket%s %d" name
                  (render_labels (with_label labels "le" le))
                  !cum)
              h.h_counts;
            line "%s_sum%s %s" name (render_labels labels) (float_repr h.h_sum);
            line "%s_count%s %d" name (render_labels labels) !cum)
        (sorted_series f))
    (sorted_families t);
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

let to_json t =
  let series_json labels s =
    let labels_json =
      ("labels", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) labels))
    in
    match s with
    | S_counter c -> Json.Obj [ labels_json; ("value", Json.Int c.c_value) ]
    | S_gauge g -> Json.Obj [ labels_json; ("value", Json.Float g.g_value) ]
    | S_histogram h ->
      let cum = ref 0 in
      let buckets =
        List.mapi
          (fun i n ->
            cum := !cum + n;
            let le =
              if i < Array.length h.h_bounds then Json.Float h.h_bounds.(i)
              else Json.String "+Inf"
            in
            Json.Obj [ ("le", le); ("count", Json.Int !cum) ])
          (Array.to_list h.h_counts)
      in
      Json.Obj
        [
          labels_json;
          ("buckets", Json.List buckets);
          ("sum", Json.Float h.h_sum);
          ("count", Json.Int !cum);
        ]
  in
  Json.Obj
    (List.map
       (fun (name, f) ->
         ( name,
           Json.Obj
             [
               ("kind", Json.String (kind_name f.f_kind));
               ("help", Json.String f.f_help);
               ( "series",
                 Json.List
                   (List.map
                      (fun (labels, s) -> series_json labels s)
                      (sorted_series f)) );
             ] ))
       (sorted_families t))
