module Json = Pta_obs.Json

let semver = "1.0.0"
let commit = Build_info.commit
let profile = Build_info.profile
let ocaml = Sys.ocaml_version

let to_json () =
  Json.Obj
    [
      ("version", Json.String semver);
      ("commit", Json.String commit);
      ("ocaml", Json.String ocaml);
      ("profile", Json.String profile);
    ]

let to_string () =
  Printf.sprintf "pointsto %s (commit %s, ocaml %s, %s profile)" semver commit
    ocaml profile
