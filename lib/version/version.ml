module Json = Pta_obs.Json

let semver = "1.0.0"
let commit_hash = Build_info.commit
let dirty = Build_info.dirty

(* The human-facing commit id: "-dirty" marks a build whose tracked
   files differed from HEAD, so its numbers are not reproducible from
   the hash alone. *)
let commit = if dirty then commit_hash ^ "-dirty" else commit_hash
let profile = Build_info.profile
let ocaml = Sys.ocaml_version

let to_json () =
  Json.Obj
    [
      ("version", Json.String semver);
      ("commit", Json.String commit);
      ("dirty", Json.Bool dirty);
      ("ocaml", Json.String ocaml);
      ("profile", Json.String profile);
    ]

let to_string () =
  Printf.sprintf "pointsto %s (commit %s, ocaml %s, %s profile)" semver commit
    ocaml profile
