(** Build identity: semantic version plus the git commit, OCaml compiler
    version, and dune profile the binary was built with.  Stamped into
    [--stats-json] documents and benchmark snapshots so a recorded number
    can always be traced back to the build that produced it. *)

val semver : string

(** Short git commit hash, or ["unknown"] outside a checkout. *)
val commit : string

(** Dune build profile (["release"], ["dev"], ...). *)
val profile : string

val ocaml : string

(** [{"version"; "commit"; "ocaml"; "profile"}] — the stamp embedded in
    snapshots and stats documents. *)
val to_json : unit -> Pta_obs.Json.t

val to_string : unit -> string
