(** Build identity: semantic version plus the git commit, a dirty-worktree
    flag, the OCaml compiler version, and the dune profile the binary was
    built with.  Stamped into [--stats-json] documents, benchmark
    snapshots and bench-history ledger records so a recorded number can
    always be traced back to the build that produced it. *)

val semver : string

(** Short git commit hash, or ["unknown"] outside a checkout.  Carries a
    ["-dirty"] suffix when the worktree had uncommitted changes to
    tracked files at build time — such numbers are not reproducible from
    the hash alone, and the ledger/trend tooling surfaces the flag. *)
val commit : string

(** The bare hash, without the dirty suffix. *)
val commit_hash : string

(** True when tracked files differed from HEAD at build time. *)
val dirty : bool

(** Dune build profile (["release"], ["dev"], ...). *)
val profile : string

val ocaml : string

(** [{"version"; "commit"; "dirty"; "ocaml"; "profile"}] — the stamp
    embedded in snapshots and stats documents.  [commit] carries the
    dirty suffix; [dirty] repeats it as a boolean for machine readers. *)
val to_json : unit -> Pta_obs.Json.t

val to_string : unit -> string
