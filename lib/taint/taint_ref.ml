module Ir = Pta_ir.Ir
module Ctx = Pta_context.Ctx
module Strategy = Pta_context.Strategy
module Refimpl = Pta_refimpl.Refimpl
module Relation = Pta_datalog.Relation
module Engine = Pta_datalog.Engine
module Intset = Pta_solver.Intset
open Ir

module Ctx_tbl = Hashtbl.Make (struct
  type t = Ctx.value

  let equal = Ctx.value_equal
  let hash = Ctx.value_hash
end)

(* A local interner for decoded context values (the reference engine
   hands out decoded tuples, not ids). *)
type interner = { tbl : int Ctx_tbl.t; mutable values : Ctx.value array; mutable n : int }

let interner_create () =
  { tbl = Ctx_tbl.create 64; values = Array.make 64 [||]; n = 0 }

let intern it v =
  match Ctx_tbl.find_opt it.tbl v with
  | Some id -> id
  | None ->
    let id = it.n in
    if id = Array.length it.values then begin
      let b = Array.make (2 * id) [||] in
      Array.blit it.values 0 b 0 id;
      it.values <- b
    end;
    it.values.(id) <- v;
    it.n <- id + 1;
    Ctx_tbl.replace it.tbl v id;
    id

type t = {
  spec : Spec.compiled;
  ctxs : interner;
  tainted : Relation.t;
  sinkhit : Relation.t;
  flow_list : Taint.flow list;
}

let analyze program strategy refimpl spec =
  let plan = strategy.Strategy.shortcut in
  let fl = Flows.extract program ~plan in
  let rel name arity = Relation.create ~name ~arity in
  let seed = rel "TaintSeed" 2
  and varmeth = rel "VarMeth" 2
  and reach = rel "TaintReach" 2
  and vpt = rel "TaintVpt" 3
  and cg = rel "TaintCg" 4
  and ok = rel "NotSanitizer" 1
  and copy = rel "TaintCopy" 2
  and load = rel "TaintLoad" 3
  and store = rel "TaintStore" 3
  and sload = rel "TaintSLoad" 3
  and sstore = rel "TaintSStore" 2
  and arg = rel "TaintArg" 3
  and thisarg = rel "TaintThisArg" 2
  and ret = rel "TaintRet" 2
  and formal = rel "TaintFormal" 3
  and formalret = rel "TaintFormalRet" 2
  and thisv = rel "TaintThisVar" 2
  and sinkarg = rel "SinkArg" 3
  and sinkpos = rel "SinkPos" 2
  and tainted = rel "Tainted" 3
  and fldtaint = rel "FldTaint" 3
  and statictaint = rel "StaticTaint" 2
  and sinkhit = rel "SinkHit" 4 in
  let add r fact = ignore (Relation.add r fact) in
  (* ----- EDB: the flow skeleton --------------------------------- *)
  List.iter (fun (d, s) -> add copy [| d; s |]) fl.Flows.copies;
  List.iter (fun (d, b, f) -> add load [| d; b; f |]) fl.Flows.loads;
  List.iter (fun (b, f, s) -> add store [| b; f; s |]) fl.Flows.stores;
  List.iter (fun (d, f, m) -> add sload [| d; f; m |]) fl.Flows.sloads;
  List.iter (fun (f, s) -> add sstore [| f; s |]) fl.Flows.sstores;
  List.iter (fun (i, p, v) -> add arg [| i; p; v |]) fl.Flows.args;
  List.iter (fun (i, v) -> add thisarg [| i; v |]) fl.Flows.this_args;
  List.iter (fun (i, v) -> add ret [| i; v |]) fl.Flows.rets;
  List.iter (fun (i, p, v) -> add sinkarg [| i; p; v |]) fl.Flows.sink_args;
  Program.iter_vars program (fun v vi ->
      add varmeth [| Var_id.to_int v; Meth_id.to_int vi.var_owner |]);
  Program.iter_meths program (fun m mi ->
      let mi' = Meth_id.to_int m in
      if not (Spec.is_sanitizer spec m) then add ok [| mi' |];
      Array.iteri
        (fun p v -> add formal [| mi'; p; Var_id.to_int v |])
        mi.formals;
      Option.iter (fun v -> add formalret [| mi'; Var_id.to_int v |]) mi.ret_var;
      Option.iter (fun v -> add thisv [| mi'; Var_id.to_int v |]) mi.this_var);
  List.iter
    (fun m ->
      List.iter
        (fun p -> add sinkpos [| Meth_id.to_int m; p |])
        (Spec.sink_positions spec m))
    (Spec.sink_meths spec);
  List.iter
    (fun s ->
      match Spec.source_var program s with
      | Some v -> add seed [| Var_id.to_int v; s.Spec.src_label |]
      | None -> ())
    (Spec.sources spec);
  (* ----- EDB: the solved points-to state ------------------------ *)
  let ctxs = interner_create () in
  let hctxs = interner_create () in
  let hobjs = Hashtbl.create 256 in
  let hobj heap hctx =
    let key = (Heap_id.to_int heap, intern hctxs hctx) in
    match Hashtbl.find_opt hobjs key with
    | Some id -> id
    | None ->
      let id = Hashtbl.length hobjs in
      Hashtbl.replace hobjs key id;
      id
  in
  Refimpl.fold_var_points_to refimpl
    (fun v ctx heap hctx () ->
      add vpt [| Var_id.to_int v; intern ctxs ctx; hobj heap hctx |])
    ();
  Refimpl.fold_call_edges refimpl
    (fun invo cctx m ectx () ->
      add cg
        [| Invo_id.to_int invo; intern ctxs cctx; Meth_id.to_int m;
           intern ctxs ectx |])
    ();
  Refimpl.fold_reachable refimpl
    (fun m ctx () -> add reach [| Meth_id.to_int m; intern ctxs ctx |])
    ();
  (* ----- the ten taint rules ------------------------------------ *)
  let v i = Engine.V i and hv i = Engine.Hv i in
  let atom rel args = { Engine.rel; args } in
  let head hrel hargs = { Engine.hrel; hargs } in
  let rules =
    [
      Engine.rule "taint-seed" ~n_vars:4
        [ head tainted [| hv 0; hv 3; hv 1 |] ]
        [
          atom seed [| v 0; v 1 |];
          atom varmeth [| v 0; v 2 |];
          atom reach [| v 2; v 3 |];
        ];
      Engine.rule "taint-copy" ~n_vars:4
        [ head tainted [| hv 0; hv 2; hv 3 |] ]
        [ atom copy [| v 0; v 1 |]; atom tainted [| v 1; v 2; v 3 |] ];
      Engine.rule "taint-store" ~n_vars:6
        [ head fldtaint [| hv 5; hv 1; hv 4 |] ]
        [
          atom store [| v 0; v 1; v 2 |];
          atom tainted [| v 2; v 3; v 4 |];
          atom vpt [| v 0; v 3; v 5 |];
        ];
      Engine.rule "taint-load" ~n_vars:6
        [ head tainted [| hv 0; hv 3; hv 5 |] ]
        [
          atom load [| v 0; v 1; v 2 |];
          atom vpt [| v 1; v 3; v 4 |];
          atom fldtaint [| v 4; v 2; v 5 |];
        ];
      Engine.rule "taint-static-store" ~n_vars:4
        [ head statictaint [| hv 0; hv 3 |] ]
        [ atom sstore [| v 0; v 1 |]; atom tainted [| v 1; v 2; v 3 |] ];
      Engine.rule "taint-static-load" ~n_vars:5
        [ head tainted [| hv 0; hv 4; hv 3 |] ]
        [
          atom sload [| v 0; v 1; v 2 |];
          atom statictaint [| v 1; v 3 |];
          atom reach [| v 2; v 4 |];
        ];
      Engine.rule "taint-call-arg" ~n_vars:8
        [ head tainted [| hv 7; hv 6; hv 4 |] ]
        [
          atom arg [| v 0; v 1; v 2 |];
          atom tainted [| v 2; v 3; v 4 |];
          atom cg [| v 0; v 3; v 5; v 6 |];
          atom ok [| v 5 |];
          atom formal [| v 5; v 1; v 7 |];
        ];
      Engine.rule "taint-call-this" ~n_vars:7
        [ head tainted [| hv 6; hv 5; hv 3 |] ]
        [
          atom thisarg [| v 0; v 1 |];
          atom tainted [| v 1; v 2; v 3 |];
          atom cg [| v 0; v 2; v 4; v 5 |];
          atom ok [| v 4 |];
          atom thisv [| v 4; v 6 |];
        ];
      Engine.rule "taint-return" ~n_vars:7
        [ head tainted [| hv 1; hv 2; hv 6 |] ]
        [
          atom ret [| v 0; v 1 |];
          atom cg [| v 0; v 2; v 3; v 4 |];
          atom ok [| v 3 |];
          atom formalret [| v 3; v 5 |];
          atom tainted [| v 5; v 4; v 6 |];
        ];
      Engine.rule "taint-sink" ~n_vars:7
        [ head sinkhit [| hv 0; hv 1; hv 3; hv 4 |] ]
        [
          atom sinkarg [| v 0; v 1; v 2 |];
          atom tainted [| v 2; v 3; v 4 |];
          atom cg [| v 0; v 3; v 5; v 6 |];
          atom sinkpos [| v 5; v 1 |];
        ];
    ]
  in
  let hard =
    List.filter
      (fun e -> Engine.lint_is_hard e.Engine.lint_kind)
      (Engine.lint rules)
  in
  (match hard with
  | [] -> ()
  | e :: _ ->
    invalid_arg
      (Printf.sprintf "Taint_ref.analyze: lint error in %s: %s" e.Engine.lint_rule
         e.Engine.lint_message));
  Engine.run rules;
  let flow_set = Hashtbl.create 64 in
  Relation.iter
    (fun fact -> Hashtbl.replace flow_set (fact.(3), fact.(0), fact.(1)) ())
    sinkhit;
  let flow_list =
    Hashtbl.fold (fun k () acc -> k :: acc) flow_set []
    |> List.sort compare
    |> List.map (fun (l, i, p) ->
           { Taint.f_label = l; f_invo = Invo_id.of_int i; f_pos = p })
  in
  { spec; ctxs; tainted; sinkhit; flow_list }

let fold_tainted t f acc =
  Relation.fold
    (fun fact acc ->
      f (Var_id.of_int fact.(0)) t.ctxs.values.(fact.(1)) fact.(2) acc)
    t.tainted acc

let fold_sink_hits t f acc =
  Relation.fold
    (fun fact acc ->
      f (Invo_id.of_int fact.(0)) fact.(1) t.ctxs.values.(fact.(2)) fact.(3) acc)
    t.sinkhit acc

let flows t = t.flow_list
let n_flows t = List.length t.flow_list

let summary t =
  let tainted = Var_id.Tbl.create 64 in
  fold_tainted t
    (fun v _ctx label () ->
      let prev =
        Option.value ~default:Intset.empty (Var_id.Tbl.find_opt tainted v)
      in
      Var_id.Tbl.replace tainted v (Intset.add label prev))
    ();
  {
    Taint.s_spec = t.spec;
    s_tainted = tainted;
    s_flows = t.flow_list;
    s_explain = (fun _ -> []);
  }
