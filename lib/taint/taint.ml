module Ir = Pta_ir.Ir
module Ctx = Pta_context.Ctx
module Strategy = Pta_context.Strategy
module Solver = Pta_solver.Solver
module Intset = Pta_solver.Intset
module Pqueue = Pta_solver.Pqueue
open Ir

(* ------------------------------------------------------------------ *)
(* Nodes of the taint supergraph                                      *)
(*                                                                    *)
(* Three families, interned on first taint arrival (nodes that never  *)
(* become tainted are never materialized):                            *)
(*   Kvar    (variable, method-context id)                            *)
(*   Kfld    (hobj, field)      — heap cells, points-to-keyed          *)
(*   Kstatic (field)            — global cells, context-insensitive    *)
(* ------------------------------------------------------------------ *)

type node_key = int * int * int (* kind, a, b *)

let kvar v c = (0, v, c)
let kfld o f = (1, o, f)
let kstatic f = (2, f, 0)

(* First-arrival provenance: how a label first reached a node. *)
type origin =
  | Seed
  | From of int * string (* predecessor node, edge description *)

type hit = {
  h_invo : Invo_id.t;
  h_pos : int;
  h_ctx : Ctx.id;
  h_labels : Intset.t;
}

type flow = { f_label : int; f_invo : Invo_id.t; f_pos : int }

type t = {
  solver : Solver.t;
  spec : Spec.compiled;
  node_tbl : (node_key, int) Hashtbl.t;
  keys : node_key array;  (** node id -> key *)
  all : Intset.t array;  (** node id -> settled labels *)
  origins : (int * int, origin) Hashtbl.t;  (** (node, label) -> origin *)
  sink_arg_vars : (int * int, int list) Hashtbl.t;
      (** (invo, pos) -> argument variables *)
  hits : hit list;
  flows : flow list;
}

type summary = {
  s_spec : Spec.compiled;
  s_tainted : Intset.t Var_id.Tbl.t;
  s_flows : flow list;
  s_explain : flow -> string list;
}

(* Growable parallel arrays for per-node state. *)
type nodes = {
  tbl : (node_key, int) Hashtbl.t;
  mutable keys : node_key array;
  mutable all : Intset.t array;
  mutable pending : Intset.t array;
  mutable queued : bool array;
  mutable n : int;
}

let nodes_create () =
  {
    tbl = Hashtbl.create 1024;
    keys = Array.make 1024 (0, 0, 0);
    all = Array.make 1024 Intset.empty;
    pending = Array.make 1024 Intset.empty;
    queued = Array.make 1024 false;
    n = 0;
  }

let node_id ns key =
  match Hashtbl.find_opt ns.tbl key with
  | Some id -> id
  | None ->
    let id = ns.n in
    if id = Array.length ns.keys then begin
      let grow a fill =
        let b = Array.make (2 * Array.length a) fill in
        Array.blit a 0 b 0 (Array.length a);
        b
      in
      ns.keys <- grow ns.keys (0, 0, 0);
      ns.all <- grow ns.all Intset.empty;
      ns.pending <- grow ns.pending Intset.empty;
      ns.queued <- grow ns.queued false
    end;
    ns.keys.(id) <- key;
    ns.n <- id + 1;
    Hashtbl.replace ns.tbl key id;
    id

(* Hashtbl-of-lists index helpers (values kept in insertion order). *)
let index_add tbl k v =
  Hashtbl.replace tbl k (v :: Option.value ~default:[] (Hashtbl.find_opt tbl k))

let index_find tbl k = Option.value ~default:[] (Hashtbl.find_opt tbl k)

let analyze solver spec =
  if not (Solver.is_complete solver) then
    invalid_arg "Taint.analyze: aborted solver state (incomplete points-to)";
  let program = Solver.program solver in
  let plan = (Solver.strategy solver).Strategy.shortcut in
  let fl = Flows.extract program ~plan in
  (* ---------------- static flow indexes ------------------------- *)
  let copy_out = Hashtbl.create 256 (* src var -> dst var list *)
  and store_out = Hashtbl.create 64 (* src var -> (base, field) list *)
  and load_by_base = Hashtbl.create 64 (* base var -> (dst, field) list *)
  and sstore_out = Hashtbl.create 16 (* src var -> field list *)
  and sload_by_field = Hashtbl.create 16 (* field -> (dst, meth) list *)
  and arg_out = Hashtbl.create 64 (* actual var -> (invo, pos) list *)
  and this_out = Hashtbl.create 64 (* receiver var -> invo list *)
  and ret_of_invo = Hashtbl.create 64 (* invo -> ret target var *)
  and ret_meth = Hashtbl.create 64 (* ret var -> meth int *) in
  List.iter (fun (d, s) -> index_add copy_out s d) fl.Flows.copies;
  List.iter (fun (b, f, s) -> index_add store_out s (b, f)) fl.Flows.stores;
  List.iter (fun (d, b, f) -> index_add load_by_base b (d, f)) fl.Flows.loads;
  List.iter (fun (f, s) -> index_add sstore_out s f) fl.Flows.sstores;
  List.iter (fun (d, f, m) -> index_add sload_by_field f (d, m)) fl.Flows.sloads;
  List.iter (fun (i, p, a) -> index_add arg_out a (i, p)) fl.Flows.args;
  List.iter (fun (i, b) -> index_add this_out b i) fl.Flows.this_args;
  List.iter (fun (i, r) -> Hashtbl.replace ret_of_invo i r) fl.Flows.rets;
  Program.iter_meths program (fun m mi ->
      Option.iter
        (fun rv -> Hashtbl.replace ret_meth (Var_id.to_int rv) (Meth_id.to_int m))
        mi.ret_var);
  (* ---------------- solved-state indexes ------------------------ *)
  (* Var-points-to, restricted to the variables taint actually joins
     against: bases of stores (forward lookup) and bases of loads
     (inverse lookup). *)
  let store_bases = Hashtbl.create 64 in
  List.iter (fun (b, _, _) -> Hashtbl.replace store_bases b ()) fl.Flows.stores;
  let vpt = Hashtbl.create 1024 (* (base var, ctx) -> hobj Intset *)
  and vpt_inv = Hashtbl.create 1024 (* hobj -> (load-base var, ctx) list *) in
  Solver.iter_var_points_to solver (fun v c objs ->
      let vi = Var_id.to_int v in
      if Hashtbl.mem store_bases vi then Hashtbl.replace vpt (vi, c) objs;
      if Hashtbl.mem load_by_base vi then
        Intset.iter (fun o -> index_add vpt_inv o (vi, c)) objs);
  let ce_by_invo = Hashtbl.create 256 (* invo -> (cctx, meth, ectx) list *)
  and ce_by_invo_ctx = Hashtbl.create 256 (* (invo, cctx) -> (meth, ectx) list *)
  and ce_by_callee = Hashtbl.create 256 (* (meth, ectx) -> (invo, cctx) list *) in
  Solver.iter_call_edges solver (fun invo cc m ec ->
      let i = Invo_id.to_int invo and mi = Meth_id.to_int m in
      index_add ce_by_invo i (cc, mi, ec);
      index_add ce_by_invo_ctx (i, cc) (mi, ec);
      index_add ce_by_callee (mi, ec) (i, cc));
  let reach_ctxs = Hashtbl.create 256 (* meth -> ctx list *) in
  Solver.iter_reachable solver (fun m c ->
      index_add reach_ctxs (Meth_id.to_int m) c);
  let meth_info m = Program.meth_info program (Meth_id.of_int m) in
  let sanitizer m = Spec.is_sanitizer spec (Meth_id.of_int m) in
  (* ---------------- difference propagation ---------------------- *)
  let ns = nodes_create () in
  let wl = Pqueue.create () in
  let origins = Hashtbl.create 256 in
  let push key labels origin_of =
    let id = node_id ns key in
    let fresh = Intset.diff2 labels ns.all.(id) ns.pending.(id) in
    if not (Intset.is_empty fresh) then begin
      Intset.iter
        (fun l ->
          if not (Hashtbl.mem origins (id, l)) then
            Hashtbl.replace origins (id, l) (origin_of l))
        fresh;
      ns.pending.(id) <- Intset.union ns.pending.(id) fresh;
      if not ns.queued.(id) then begin
        ns.queued.(id) <- true;
        Pqueue.push wl ~prio:id id
      end
    end
  in
  let push_from pred key labels desc =
    push key labels (fun _ -> From (pred, desc))
  in
  (* Seeds: each source position taints its variable under every
     context its method is analyzed in. *)
  List.iter
    (fun s ->
      match Spec.source_var program s with
      | None -> ()
      | Some v ->
        let labels = Intset.singleton s.Spec.src_label in
        List.iter
          (fun c -> push (kvar (Var_id.to_int v) c) labels (fun _ -> Seed))
          (index_find reach_ctxs (Meth_id.to_int s.Spec.src_meth)))
    (Spec.sources spec);
  let propagate_var id v c d =
    List.iter
      (fun dst -> push_from id (kvar dst c) d "move")
      (index_find copy_out v);
    List.iter
      (fun (b, f) ->
        match Hashtbl.find_opt vpt (b, c) with
        | None -> ()
        | Some objs ->
          let fname = (Program.field_info program (Field_id.of_int f)).field_name in
          Intset.iter
            (fun o -> push_from id (kfld o f) d ("store ." ^ fname))
            objs)
      (index_find store_out v);
    List.iter
      (fun f ->
        let fname = (Program.field_info program (Field_id.of_int f)).field_name in
        push_from id (kstatic f) d ("static store " ^ fname))
      (index_find sstore_out v);
    List.iter
      (fun (invo, pos) ->
        List.iter
          (fun (m, ec) ->
            if not (sanitizer m) then begin
              let formals = (meth_info m).formals in
              if pos < Array.length formals then
                push_from id
                  (kvar (Var_id.to_int formals.(pos)) ec)
                  d
                  (Printf.sprintf "arg %d at %s" pos
                     (Program.invo_name program (Invo_id.of_int invo)))
            end)
          (index_find ce_by_invo_ctx (invo, c)))
      (index_find arg_out v);
    List.iter
      (fun invo ->
        List.iter
          (fun (m, ec) ->
            if not (sanitizer m) then
              match (meth_info m).this_var with
              | Some tv ->
                push_from id
                  (kvar (Var_id.to_int tv) ec)
                  d
                  ("receiver at " ^ Program.invo_name program (Invo_id.of_int invo))
              | None -> ())
          (index_find ce_by_invo_ctx (invo, c)))
      (index_find this_out v);
    match Hashtbl.find_opt ret_meth v with
    | Some m when not (sanitizer m) ->
      List.iter
        (fun (invo, cc) ->
          match Hashtbl.find_opt ret_of_invo invo with
          | Some rt ->
            push_from id (kvar rt cc) d
              ("return from " ^ Program.meth_qualified_name program (Meth_id.of_int m))
          | None -> ())
        (index_find ce_by_callee (m, c))
    | _ -> ()
  in
  let propagate_fld id o f d =
    List.iter
      (fun (bv, c) ->
        List.iter
          (fun (dst, f') ->
            if f' = f then
              let fname =
                (Program.field_info program (Field_id.of_int f)).field_name
              in
              push_from id (kvar dst c) d ("load ." ^ fname))
          (index_find load_by_base bv))
      (index_find vpt_inv o)
  in
  let propagate_static id f d =
    let fname = (Program.field_info program (Field_id.of_int f)).field_name in
    List.iter
      (fun (dst, m) ->
        List.iter
          (fun c -> push_from id (kvar dst c) d ("static load " ^ fname))
          (index_find reach_ctxs m))
      (index_find sload_by_field f)
  in
  while not (Pqueue.is_empty wl) do
    let id = Pqueue.pop wl in
    ns.queued.(id) <- false;
    let d = ns.pending.(id) in
    ns.pending.(id) <- Intset.empty;
    ns.all.(id) <- Intset.union ns.all.(id) d;
    if not (Intset.is_empty d) then
      match ns.keys.(id) with
      | 0, v, c -> propagate_var id v c d
      | 1, o, f -> propagate_fld id o f d
      | _, f, _ -> propagate_static id f d
  done;
  (* ---------------- sink verdicts ------------------------------- *)
  let sink_pos = Hashtbl.create 16 in
  List.iter
    (fun m ->
      Hashtbl.replace sink_pos (Meth_id.to_int m)
        (Spec.sink_positions spec m))
    (Spec.sink_meths spec);
  let hit_tbl = Hashtbl.create 64 in
  List.iter
    (fun (invo, pos, av) ->
      List.iter
        (fun (cc, m, _ec) ->
          match Hashtbl.find_opt sink_pos m with
          | Some positions when List.mem pos positions -> (
            match Hashtbl.find_opt ns.tbl (kvar av cc) with
            | Some id when not (Intset.is_empty ns.all.(id)) ->
              let key = (invo, pos, cc) in
              let prev =
                Option.value ~default:Intset.empty
                  (Hashtbl.find_opt hit_tbl key)
              in
              Hashtbl.replace hit_tbl key (Intset.union prev ns.all.(id))
            | _ -> ())
          | _ -> ())
        (index_find ce_by_invo invo))
    fl.Flows.sink_args;
  let hits =
    Hashtbl.fold (fun (i, p, c) labels acc -> (i, p, c, labels) :: acc) hit_tbl []
    |> List.sort compare
    |> List.map (fun (i, p, c, labels) ->
           {
             h_invo = Invo_id.of_int i;
             h_pos = p;
             h_ctx = c;
             h_labels = labels;
           })
  in
  let flow_set = Hashtbl.create 64 in
  List.iter
    (fun h ->
      Intset.iter
        (fun l ->
          Hashtbl.replace flow_set (l, Invo_id.to_int h.h_invo, h.h_pos) ())
        h.h_labels)
    hits;
  let flows =
    Hashtbl.fold (fun k () acc -> k :: acc) flow_set []
    |> List.sort compare
    |> List.map (fun (l, i, p) ->
           { f_label = l; f_invo = Invo_id.of_int i; f_pos = p })
  in
  let sink_arg_vars = Hashtbl.create 64 in
  List.iter
    (fun (invo, pos, av) -> index_add sink_arg_vars (invo, pos) av)
    fl.Flows.sink_args;
  {
    solver;
    spec;
    node_tbl = ns.tbl;
    keys = Array.sub ns.keys 0 ns.n;
    all = Array.sub ns.all 0 ns.n;
    origins;
    sink_arg_vars;
    hits;
    flows;
  }

(* ------------------------------------------------------------------ *)
(* Accessors                                                          *)
(* ------------------------------------------------------------------ *)

let iter_tainted (t : t) f =
  Array.iteri
    (fun id key ->
      match key with
      | 0, v, c ->
        if not (Intset.is_empty t.all.(id)) then
          f (Var_id.of_int v) c t.all.(id)
      | _ -> ())
    t.keys

let ctx_value (t : t) c = Solver.ctx_value t.solver c
let sink_hits (t : t) = t.hits
let flows (t : t) = t.flows
let n_flows (t : t) = List.length t.flows

let node_str (t : t) id =
  let program = Solver.program t.solver in
  match t.keys.(id) with
  | 0, v, c ->
    Format.asprintf "%s in %a"
      (Program.var_qualified_name program (Var_id.of_int v))
      (Ctx.pp_value program)
      (Solver.ctx_value t.solver c)
  | 1, o, f ->
    Printf.sprintf "%s.%s"
      (Program.heap_name program (Solver.hobj_heap t.solver o))
      (Program.field_info program (Field_id.of_int f)).field_name
  | _, f, _ ->
    "static " ^ (Program.field_info program (Field_id.of_int f)).field_name

let explain_chain (t : t) id label =
  (* Walk first-arrival origins back to the seed; the origin graph is
     acyclic by construction, but cap the walk defensively. *)
  let rec walk id acc budget =
    if budget = 0 then acc
    else
      match Hashtbl.find_opt t.origins (id, label) with
      | None | Some Seed ->
        Printf.sprintf "source %s seeds %s"
          (Spec.label_name t.spec label)
          (node_str t id)
        :: acc
      | Some (From (pred, desc)) ->
        walk pred (Printf.sprintf "%s -> %s" desc (node_str t id) :: acc) (budget - 1)
  in
  walk id [] 1000

let explain_flow (t : t) { f_label; f_invo; f_pos } =
  (* Find the tainted (arg var, ctx) node witnessing the flow; hits are
     sorted, so the first match is deterministic. *)
  let program = Solver.program t.solver in
  let node_of_hit h =
    if not (Invo_id.equal h.h_invo f_invo) || h.h_pos <> f_pos then None
    else if not (Intset.mem f_label h.h_labels) then None
    else
      List.find_map
        (fun av ->
          match Hashtbl.find_opt t.node_tbl (kvar av h.h_ctx) with
          | Some id when Intset.mem f_label t.all.(id) -> Some id
          | _ -> None)
        (index_find t.sink_arg_vars (Invo_id.to_int f_invo, f_pos))
  in
  match List.find_map node_of_hit t.hits with
  | None -> []
  | Some id ->
    explain_chain t id f_label
    @ [
        Printf.sprintf "reaches sink argument %d at %s" f_pos
          (Program.invo_name program f_invo);
      ]

let summary (t : t) =
  let tainted = Var_id.Tbl.create 64 in
  iter_tainted t (fun v _c labels ->
      let prev =
        Option.value ~default:Intset.empty (Var_id.Tbl.find_opt tainted v)
      in
      Var_id.Tbl.replace tainted v (Intset.union prev labels));
  {
    s_spec = t.spec;
    s_tainted = tainted;
    s_flows = t.flows;
    s_explain = explain_flow t;
  }
