(** Reference taint engine: the same analysis as {!Taint}, written as
    ten Datalog rules over the reference implementation's solved facts.

    The taint rules need no context-constructor hooks — points-to runs
    first, so contexts arrive pre-built inside the [VarPointsTo] /
    [CallGraphEdge] / [Reachable] facts; taint is a plain monotone
    second fixpoint over them.  Both engines consume the same
    {!Flows.extract} skeleton (same cut-shortcut treatment) and the same
    compiled spec, which is what the differential suite leans on. *)

module Ir = Pta_ir.Ir
module Ctx = Pta_context.Ctx

type t

val analyze :
  Ir.Program.t -> Pta_context.Strategy.t -> Pta_refimpl.Refimpl.t ->
  Spec.compiled -> t
(** The strategy supplies the cut-shortcut plan; it must be the one the
    reference run was made with. *)

val fold_tainted : t -> (Ir.Var_id.t -> Ctx.value -> int -> 'a -> 'a) -> 'a -> 'a
(** Every [Tainted(var, ctx, label)] fact, contexts decoded. *)

val fold_sink_hits :
  t -> (Ir.Invo_id.t -> int -> Ctx.value -> int -> 'a -> 'a) -> 'a -> 'a
(** Every [SinkHit(invo, pos, caller ctx, label)] fact. *)

val flows : t -> Taint.flow list
(** Distinct context-insensitive verdicts, sorted — same encoding as
    {!Taint.flows}. *)

val n_flows : t -> int

val summary : t -> Taint.summary
(** Engine-neutral view for the checkers (no provenance chains). *)
