module Ir = Pta_ir.Ir
module Algebra = Pta_context.Algebra

type position =
  | Ret
  | Param of int

type sink_pos =
  | Arg of int
  | Any_arg

type entry =
  | Source of { glob : string; pos : position }
  | Sink of { glob : string; pos : sink_pos }
  | Sanitizer of { glob : string }

type t = entry list

(* ------------------------------------------------------------------ *)
(* Parsing                                                            *)
(* ------------------------------------------------------------------ *)

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let words line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let parse_line lineno line =
  let fail fmt =
    Printf.ksprintf (fun msg -> Error (Printf.sprintf "line %d: %s" lineno msg)) fmt
  in
  let int_of w =
    match int_of_string_opt w with
    | Some i when i >= 0 -> Some i
    | _ -> None
  in
  match words (strip_comment line) with
  | [] -> Ok None
  | [ "source"; glob; "ret" ] -> Ok (Some (Source { glob; pos = Ret }))
  | [ "source"; glob; "param"; i ] -> (
    match int_of i with
    | Some i -> Ok (Some (Source { glob; pos = Param i }))
    | None -> fail "source: expected a non-negative parameter index, got %S" i)
  | "source" :: _ ->
    fail "source: expected 'source <glob> ret' or 'source <glob> param <i>'"
  | [ "sink"; glob; "arg"; "*" ] -> Ok (Some (Sink { glob; pos = Any_arg }))
  | [ "sink"; glob; "arg"; i ] -> (
    match int_of i with
    | Some i -> Ok (Some (Sink { glob; pos = Arg i }))
    | None -> fail "sink: expected a non-negative argument index or '*', got %S" i)
  | "sink" :: _ -> fail "sink: expected 'sink <glob> arg <i|*>'"
  | [ "sanitizer"; glob ] -> Ok (Some (Sanitizer { glob }))
  | "sanitizer" :: _ -> fail "sanitizer: expected 'sanitizer <glob>'"
  | w :: _ ->
    fail "unknown directive %S (expected source, sink or sanitizer)" w

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      match parse_line lineno line with
      | Error _ as e -> e
      | Ok None -> go (lineno + 1) acc rest
      | Ok (Some entry) -> go (lineno + 1) (entry :: acc) rest)
  in
  go 1 [] lines

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | text -> parse text
  | exception Sys_error msg -> Error msg

let entry_to_string = function
  | Source { glob; pos = Ret } -> Printf.sprintf "source %s ret" glob
  | Source { glob; pos = Param i } -> Printf.sprintf "source %s param %d" glob i
  | Sink { glob; pos = Any_arg } -> Printf.sprintf "sink %s arg *" glob
  | Sink { glob; pos = Arg i } -> Printf.sprintf "sink %s arg %d" glob i
  | Sanitizer { glob } -> Printf.sprintf "sanitizer %s" glob

let to_string entries =
  String.concat "" (List.map (fun e -> entry_to_string e ^ "\n") entries)

let default =
  [
    Source { glob = "*.fetch/*"; pos = Ret };
    Sink { glob = "*.leak/*"; pos = Any_arg };
    Sanitizer { glob = "*.scrub/*" };
  ]

(* ------------------------------------------------------------------ *)
(* Compilation                                                        *)
(* ------------------------------------------------------------------ *)

type source = {
  src_label : int;
  src_meth : Ir.Meth_id.t;
  src_pos : position;
}

type compiled = {
  c_entries : t;
  c_sources : source list;
  c_names : string array;  (** label -> human name *)
  c_sinks : int list Ir.Meth_id.Tbl.t;  (** sorted distinct positions *)
  c_sanitizers : unit Ir.Meth_id.Tbl.t;
}

let position_order = function
  | Ret -> -1
  | Param i -> i

let compile program spec =
  let matching glob =
    (* All methods whose qualified name matches, in id order. *)
    let out = ref [] in
    Ir.Program.iter_meths program (fun m _ ->
        if Algebra.glob_match glob (Ir.Program.meth_qualified_name program m)
        then out := m :: !out);
    List.rev !out
  in
  (* Source positions: collect (meth, pos) pairs, dedup, order by
     (meth id, position) so labels are deterministic. *)
  let module P = Set.Make (struct
    type t = int * int

    let compare = compare
  end) in
  let src_set = ref P.empty in
  List.iter
    (function
      | Source { glob; pos } ->
        List.iter
          (fun m ->
            src_set :=
              P.add (Ir.Meth_id.to_int m, position_order pos) !src_set)
          (matching glob)
      | Sink _ | Sanitizer _ -> ())
    spec;
  let sources =
    List.mapi
      (fun i (m, p) ->
        {
          src_label = i;
          src_meth = Ir.Meth_id.of_int m;
          src_pos = (if p < 0 then Ret else Param p);
        })
      (P.elements !src_set)
  in
  let names =
    Array.of_list
      (List.map
         (fun s ->
           let qname = Ir.Program.meth_qualified_name program s.src_meth in
           match s.src_pos with
           | Ret -> qname ^ " ret"
           | Param i -> Printf.sprintf "%s param %d" qname i)
         sources)
  in
  let sinks = Ir.Meth_id.Tbl.create 16 in
  List.iter
    (function
      | Sink { glob; pos } ->
        List.iter
          (fun m ->
            let arity =
              (Ir.Program.sig_info program
                 (Ir.Program.meth_info program m).Ir.meth_sig)
                .Ir.sig_arity
            in
            let add =
              match pos with
              | Any_arg -> List.init arity (fun i -> i)
              | Arg i when i < arity -> [ i ]
              | Arg _ -> []
            in
            if add <> [] then
              let prev =
                Option.value ~default:[] (Ir.Meth_id.Tbl.find_opt sinks m)
              in
              Ir.Meth_id.Tbl.replace sinks m
                (List.sort_uniq compare (add @ prev)))
          (matching glob)
      | Source _ | Sanitizer _ -> ())
    spec;
  let sanitizers = Ir.Meth_id.Tbl.create 16 in
  List.iter
    (function
      | Sanitizer { glob } ->
        List.iter (fun m -> Ir.Meth_id.Tbl.replace sanitizers m ()) (matching glob)
      | Source _ | Sink _ -> ())
    spec;
  {
    c_entries = spec;
    c_sources = sources;
    c_names = names;
    c_sinks = sinks;
    c_sanitizers = sanitizers;
  }

let entries c = c.c_entries
let sources c = c.c_sources
let n_sources c = List.length c.c_sources

let source_var program s =
  let info = Ir.Program.meth_info program s.src_meth in
  match s.src_pos with
  | Ret -> info.Ir.ret_var
  | Param i ->
    if i < Array.length info.Ir.formals then Some info.Ir.formals.(i) else None

let label_name c label =
  if label >= 0 && label < Array.length c.c_names then c.c_names.(label)
  else Printf.sprintf "<label %d>" label

let sink_positions c m =
  Option.value ~default:[] (Ir.Meth_id.Tbl.find_opt c.c_sinks m)

let is_sink c m = Ir.Meth_id.Tbl.mem c.c_sinks m
let is_sanitizer c m = Ir.Meth_id.Tbl.mem c.c_sanitizers m

let sink_meths c =
  Ir.Meth_id.Tbl.fold (fun m _ acc -> m :: acc) c.c_sinks []
  |> List.sort Ir.Meth_id.compare
