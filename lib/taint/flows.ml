module Ir = Pta_ir.Ir
module Shortcut = Pta_context.Shortcut
open Ir

type t = {
  copies : (int * int) list;
  loads : (int * int * int) list;
  stores : (int * int * int) list;
  sloads : (int * int * int) list;
  sstores : (int * int) list;
  args : (int * int * int) list;
  this_args : (int * int) list;
  rets : (int * int) list;
  sink_args : (int * int * int) list;
}

let extract program ~plan =
  let copies = ref []
  and loads = ref []
  and stores = ref []
  and sloads = ref []
  and sstores = ref []
  and args_r = ref []
  and this_args = ref []
  and rets = ref []
  and sink_args = ref [] in
  let cut_action invo =
    match plan with
    | None -> None
    | Some plan -> Shortcut.action plan invo
  in
  (* Mirror of the refimpl EDB builder's [add_cut_item]: items whose
     return target or receiver is missing are dropped at application. *)
  let add_cut_item ~base ~args ~ret_target item =
    let arg_var = function
      | Shortcut.This -> base
      | Shortcut.Param i -> List.nth_opt args i
    in
    match item with
    | Shortcut.Copy_ret arg -> (
      match (ret_target, arg_var arg) with
      | Some ret, Some src ->
        copies := (Var_id.to_int ret, Var_id.to_int src) :: !copies
      | _ -> ())
    | Shortcut.Load_ret field -> (
      match (ret_target, base) with
      | Some ret, Some b ->
        loads :=
          (Var_id.to_int ret, Var_id.to_int b, Field_id.to_int field) :: !loads
      | _ -> ())
    | Shortcut.Store_field (field, arg) -> (
      match (base, arg_var arg) with
      | Some b, Some src ->
        stores :=
          (Var_id.to_int b, Field_id.to_int field, Var_id.to_int src) :: !stores
      | _ -> ())
  in
  let call ~base ~invo ~args ~ret_target =
    List.iteri
      (fun i a -> sink_args := (Invo_id.to_int invo, i, Var_id.to_int a) :: !sink_args)
      args;
    match cut_action invo with
    | Some items -> List.iter (add_cut_item ~base ~args ~ret_target) items
    | None ->
      List.iteri
        (fun i a ->
          args_r := (Invo_id.to_int invo, i, Var_id.to_int a) :: !args_r)
        args;
      Option.iter
        (fun b ->
          this_args := (Invo_id.to_int invo, Var_id.to_int b) :: !this_args)
        base;
      Option.iter
        (fun v -> rets := (Invo_id.to_int invo, Var_id.to_int v) :: !rets)
        ret_target
  in
  Program.iter_meths program (fun meth mi ->
      let m = Meth_id.to_int meth in
      iter_instrs
        (fun instr ->
          match instr with
          | Alloc _ | Throw _ -> ()
          | Move { target; source } | Cast { target; source; _ } ->
            (* Casts propagate taint unconditionally in both engines:
               taint tracks the reference, not the pointed-to type. *)
            copies := (Var_id.to_int target, Var_id.to_int source) :: !copies
          | Load { target; base; field } ->
            loads :=
              (Var_id.to_int target, Var_id.to_int base, Field_id.to_int field)
              :: !loads
          | Store { base; field; source } ->
            stores :=
              (Var_id.to_int base, Field_id.to_int field, Var_id.to_int source)
              :: !stores
          | Virtual_call { base; invo; args; ret_target; _ } ->
            call ~base:(Some base) ~invo ~args ~ret_target
          | Static_call { invo; args; ret_target; _ } ->
            call ~base:None ~invo ~args ~ret_target
          | Static_load { target; field } ->
            sloads := (Var_id.to_int target, Field_id.to_int field, m) :: !sloads
          | Static_store { field; source } ->
            sstores := (Field_id.to_int field, Var_id.to_int source) :: !sstores)
        mi.body);
  {
    copies = List.rev !copies;
    loads = List.rev !loads;
    stores = List.rev !stores;
    sloads = List.rev !sloads;
    sstores = List.rev !sstores;
    args = List.rev !args_r;
    this_args = List.rev !this_args;
    rets = List.rev !rets;
    sink_args = List.rev !sink_args;
  }
