(** The native taint-flow pass: a second fixpoint over the exploded
    (variable, context) supergraph of a {e solved} points-to state.

    Taint is a set of source labels per node.  It propagates through
    moves and casts (unconditionally — taint tracks the reference, not
    its type), through the heap via per-(heap object, field) label sets
    keyed by the points-to abstraction, into and out of calls
    context-sensitively along the solved call-graph edges (so precision
    is exactly the active strategy's), and is cut at calls whose callee
    is a sanitizer.  Static fields are context-insensitive cells, as in
    the points-to analysis itself.

    The pass reuses the solver's difference-propagation machinery: label
    sets are {!Pta_solver.Intset.t}s, deltas are [diff2]-fused, and the
    worklist is a {!Pta_solver.Pqueue.t}.  {!Taint_ref} implements the
    same analysis as Datalog rules over the reference implementation's
    facts; the differential suite keeps the two agreeing on every
    source→sink verdict.

    Exception flow is not tracked (taint does not propagate through
    [throw]/[catch]); the limitation is shared by both engines, so
    parity holds. *)

module Ir = Pta_ir.Ir
module Ctx = Pta_context.Ctx
module Intset = Pta_solver.Intset

type t

val analyze : Pta_solver.Solver.t -> Spec.compiled -> t
(** Run the taint fixpoint on a completed solve.  The cut-shortcut plan
    is taken from the solver's strategy, so flows match what the
    points-to engines actually wired.
    @raise Invalid_argument on an aborted (incomplete) solver state. *)

val iter_tainted : t -> (Ir.Var_id.t -> Ctx.id -> Intset.t -> unit) -> unit
(** Every tainted (variable, context) node with its label set.  Context
    ids are the solver's interning; decode with {!ctx_value}. *)

val ctx_value : t -> Ctx.id -> Ctx.value

(** One sink hit: tainted data reaching a sensitive argument position
    of a call resolving to a sink method, per caller context. *)
type hit = {
  h_invo : Ir.Invo_id.t;
  h_pos : int;  (** argument position *)
  h_ctx : Ctx.id;  (** caller context *)
  h_labels : Intset.t;  (** source labels that reach it *)
}

val sink_hits : t -> hit list
(** Sorted by (invocation, position, context). *)

(** A context-insensitive source→sink verdict — the unit the
    differential suite compares and Table 1 counts. *)
type flow = { f_label : int; f_invo : Ir.Invo_id.t; f_pos : int }

val flows : t -> flow list
(** Distinct verdicts, sorted. *)

val n_flows : t -> int

val explain_flow : t -> flow -> string list
(** A witness chain from the flow's source to the sink argument, one
    human-readable step per line (first line is the source).  Chains
    come from the pass's first-arrival provenance and are deterministic,
    but are {e not} part of the cross-engine contract (the reference
    engine reports none). *)

(** {1 Engine-neutral summary}

    What the checkers consume — producible from either engine (see
    {!Taint_ref.summary}), so [pointsto check] verdicts stay
    engine-independent. *)

type summary = {
  s_spec : Spec.compiled;
  s_tainted : Intset.t Ir.Var_id.Tbl.t;
      (** per-variable label sets, contexts collapsed *)
  s_flows : flow list;  (** as {!flows} *)
  s_explain : flow -> string list;
      (** provenance chain; [[]] when the engine records none *)
}

val summary : t -> summary
