(** The taint-relevant data-flow skeleton of a program, extracted once
    and shared by both taint engines.

    This is the instruction walk of the Datalog reference's EDB builder,
    restricted to the relations taint cares about and respecting the
    same cut-shortcut plan: at a cut invocation site the parameter and
    return wiring disappears and the plan's items are injected as plain
    caller-side copy/load/store flows — exactly what
    {!Pta_refimpl.Refimpl.run} does, which is what keeps the two taint
    engines fact-identical under shortcut strategies.

    All ids are raw [int]s ({!Pta_ir.Ir.Id.S.to_int}) so the lists can
    feed Datalog relations directly. *)

type t = {
  copies : (int * int) list;  (** (dst, src): moves, casts, cut [Copy_ret] *)
  loads : (int * int * int) list;  (** (dst, base, field), incl. cut [Load_ret] *)
  stores : (int * int * int) list;
      (** (base, field, src), incl. cut [Store_field] *)
  sloads : (int * int * int) list;  (** (dst, field, owner meth) *)
  sstores : (int * int) list;  (** (field, src) *)
  args : (int * int * int) list;
      (** (invo, pos, actual) at non-cut call sites *)
  this_args : (int * int) list;
      (** (invo, receiver) at non-cut virtual call sites *)
  rets : (int * int) list;  (** (invo, ret target) at non-cut call sites *)
  sink_args : (int * int * int) list;
      (** (invo, pos, actual) at {e every} call site, cut or not — sink
          verdicts are judged against the syntactic arguments, so cutting
          a call cannot hide a flow into it *)
}

val extract : Pta_ir.Ir.Program.t -> plan:Pta_context.Shortcut.t option -> t
(** Lists are in program iteration order (deterministic). *)
