(** The taint specification language: which methods introduce, consume
    and neutralize tainted values.

    A spec is a small line-based text format — one directive per line,
    [#] comments, blank lines ignored:

    {v
    source    <glob> ret          # the method's return value is tainted
    source    <glob> param <i>    # its i-th formal (0-based) is tainted
    sink      <glob> arg <i|*>    # flowing into argument i (or any) is a hit
    sanitizer <glob>              # calls to it neutralize taint
    v}

    Globs use the same matching as {!Pta_context.Algebra.per_method}
    dispatch (['*'] = any substring) over qualified method names
    (["A.foo/2"]).

    Compiling a spec against a program resolves the globs to concrete
    methods and assigns each matched source position a dense integer
    {e label} in a deterministic order (method id, then position), so
    flow sets are comparable across engines and runs. *)

module Ir = Pta_ir.Ir

(** Where a source introduces taint. *)
type position =
  | Ret  (** the method's return value *)
  | Param of int  (** the method's [i]-th formal, 0-based *)

(** Which argument positions of a sink method are sensitive. *)
type sink_pos =
  | Arg of int  (** the [i]-th argument, 0-based *)
  | Any_arg  (** every argument *)

type entry =
  | Source of { glob : string; pos : position }
  | Sink of { glob : string; pos : sink_pos }
  | Sanitizer of { glob : string }

type t = entry list

val parse : string -> (t, string) result
(** Parse the text of a spec file.  The error carries a line number. *)

val load : string -> (t, string) result
(** [parse] over a file's contents; [Error] on IO failure too. *)

val to_string : t -> string
(** Render back to the file format (one directive per line). *)

val default : t
(** The built-in convention used by the workload generator and the
    examples: [source *.fetch/* ret], [sink *.leak/* arg *],
    [sanitizer *.scrub/*]. *)

(** {1 Compilation against a program} *)

(** One concrete source position with its assigned label. *)
type source = {
  src_label : int;  (** dense, deterministic *)
  src_meth : Ir.Meth_id.t;
  src_pos : position;
}

type compiled

val compile : Ir.Program.t -> t -> compiled

val entries : compiled -> t
val sources : compiled -> source list
(** In label order (labels are [0 .. n_sources - 1]). *)

val n_sources : compiled -> int

val source_var : Ir.Program.t -> source -> Ir.Var_id.t option
(** The variable a source seeds: the method's return variable ([Ret],
    [None] for void methods) or its [i]-th formal ([None] when out of
    range). *)

val label_name : compiled -> int -> string
(** Human name of a label, e.g. ["Taint.fetch/0 ret"]. *)

val sink_positions : compiled -> Ir.Meth_id.t -> int list
(** Sensitive argument positions of a method (empty = not a sink);
    [Any_arg] expanded to [0 .. arity - 1], sorted, deduplicated. *)

val is_sink : compiled -> Ir.Meth_id.t -> bool
val is_sanitizer : compiled -> Ir.Meth_id.t -> bool

val sink_meths : compiled -> Ir.Meth_id.t list
(** Methods with at least one sensitive position, in id order. *)
