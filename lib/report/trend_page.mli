(** Static perf-trend report: per-cell SVG sparklines plus an HTML
    index, generated with no external dependencies.

    The input model is deliberately neutral — series of optionally
    missing points with display labels — so this module knows nothing
    about ledgers or snapshots; [Pta_bench_history.Trend] builds the
    model from ledger records and this module turns it into bytes.

    Output is {e byte-deterministic}: floats render through fixed
    formats, nothing reads the clock or the environment, and point
    order is the caller's, so two renders of the same model are
    [cmp]-identical (a property the CI artifact check relies on). *)

type point = {
  value : float option;  (** [None] = cell missing from that record *)
  timed_out : bool;  (** render as a gap with a timeout marker *)
  label : string;  (** x label, e.g. the record's commit stamp *)
  dirty : bool;  (** built from a dirty worktree: hollow marker *)
  flagged : bool;  (** changepoint detection flagged this point *)
}

type series = point list

type metric = {
  m_name : string;  (** column title, e.g. ["time (s)"] *)
  m_fmt : float -> string;  (** value formatter, must be deterministic *)
  m_series : series;
}

type cell = {
  c_benchmark : string;
  c_analysis : string;
  c_metrics : metric list;  (** same metric order for every cell *)
}

type page = {
  p_title : string;
  p_subtitle : string;  (** ledger provenance: path, span, build stamps *)
  p_cells : cell list;
}

val sparkline : ?width:int -> ?height:int -> series -> string
(** A standalone SVG document: a polyline over the present points
    (gaps break the line), a hollow marker for dirty-build points, a
    crossed marker for timeouts, a filled marker on the last point, and
    a red marker on flagged points. *)

val svg_file_name : benchmark:string -> analysis:string -> metric:string -> string
(** A filesystem-safe, collision-free name for one cell × metric
    sparkline ([+], [/] etc. are escaped). *)

val render : page -> (string * string) list
(** [(relative file name, contents)] pairs: [index.html] first, then one
    [.svg] per cell × metric (the same markup is also inlined into the
    index, which therefore stands alone). *)
