(** Codec and comparator for the committed benchmark snapshot
    ([BENCH_table1.json]).

    Schema v2 extends v1 with per-cell [nodes] (the solver's supergraph
    size — also recorded for timeout cells, from the abort payload), a
    [memory] block (the {!Pta_obs.Memstats.delta} of the instrumented
    run), and a top-level [pointsto] build stamp.  Schema v3 (written by
    {!to_json}) adds an optional per-cell [time_hist] — the distribution
    of the individual timed solves behind the reported min, recorded on
    an exponential-bucket {!Pta_metrics.Registry} histogram and carried
    into bench-history ledger records.  Schema v4 adds an optional
    per-cell [heap_components] block — the retained/unshared word
    attribution of a {!Pta_obs.Census} walk over the solved state — and
    a per-component regression gate.  Schema v5 adds per-cell [jobs]
    and [domains] (the parallel drain's requested and effective domain
    counts — written only when parallel, defaulting to 1 on load) and a
    top-level [host_cores] stamp; cells are matched on
    (benchmark, analysis, jobs), and jobs>1 time checks are skipped
    whenever the baseline and current host core counts differ or are
    unknown.  {!of_json} reads all five versions; older cells simply
    come back with the newer fields absent, so a regression gate
    against an old baseline still checks time and iterations. *)

module Json := Pta_obs.Json

val current_schema_version : int
(** The version {!to_json} writes: 5. *)

type hist = {
  bounds : float list;  (** strictly increasing upper bounds, no +Inf *)
  counts : int list;  (** per-bucket, non-cumulative; last = overflow *)
  sum : float;
}
(** A serialised latency histogram, [le] bucket semantics. *)

type cell = {
  benchmark : string;
  analysis : string;
  timed_out : bool;
  time_s : float;  (** best wall time, or elapsed-at-abort for timeouts *)
  iterations : int;
  nodes : int option;  (** v2: supergraph nodes (also at abort) *)
  memory : Pta_obs.Memstats.delta option;  (** v2: instrumented-run GC profile *)
  time_hist : hist option;  (** v3: per-run solve-time distribution *)
  heap_components : Pta_obs.Census.component list;
      (** v4: reachable-heap census components; [[]] when absent *)
  jobs : int;  (** v5: requested worklist domains; 1 in older snapshots *)
  domains : int;
      (** v5: domains the drain actually used ([Config.effective_jobs]);
          1 in older snapshots *)
}

type t = {
  schema_version : int;  (** of the document as read; {!to_json} rewrites *)
  timeout_s : float;
  host_cores : int option;
      (** v5: core count of the measuring host; [None] in older
          snapshots.  Parallel timings only compare across equal,
          known core counts. *)
  pointsto : Json.t option;  (** v2: build stamp, held opaquely *)
  cells : cell list;
}

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result
val of_string : string -> (t, string) result

(** {1 Histogram helpers} *)

val hist_to_json : hist -> Json.t

val hist_of_json : Json.t -> (hist, string) result
(** Validates shape: [length counts = length bounds + 1], non-negative
    counts, strictly increasing bounds. *)

val hist_of_buckets : sum:float -> (float * int) list -> hist
(** From {!Pta_metrics.Registry.histogram_buckets} output: the trailing
    [+Inf] bucket becomes the overflow count. *)

val hist_count : hist -> int
(** Total observations. *)

(** {1 Regression comparison} *)

type thresholds = {
  time_tol_pct : float;  (** flag cells slower by more than this *)
  heap_tol_pct : float;  (** flag cells with a fatter peak heap *)
  heap_component_tol_pct : float;
      (** flag census components whose retained words grew by more than
          this (skipped when either side lacks census data) *)
  min_time_s : float;
      (** baseline cells faster than this skip the relative-time check
          (sub-noise-floor timings) *)
}

val default_thresholds : thresholds
(** +15% time, +10% peak heap, +25% per heap component, 0.5s floor. *)

type verdict =
  | Time_regression of { base_s : float; cur_s : float; pct : float }
  | Heap_regression of { base_w : int; cur_w : int; pct : float }
  | Component_regression of Pta_obs.Census.breach
      (** one census component's retained words grew past tolerance *)
  | New_timeout  (** finished in the baseline, times out now *)
  | Fixed_timeout  (** the reverse: an improvement, never a failure *)
  | Missing_cell  (** in the baseline but absent from the current run *)
  | New_cell  (** in the current run but absent from the baseline *)

val verdict_is_regression : verdict -> bool
(** [Time_regression], [Heap_regression], [Component_regression],
    [New_timeout] and [Missing_cell] fail the gate; the rest are
    informational. *)

type delta = {
  d_benchmark : string;
  d_analysis : string;
  d_jobs : int;  (** the matched cells' jobs count (1 for older schemas) *)
  d_base : cell option;
  d_cur : cell option;
  verdicts : verdict list;  (** empty = within thresholds *)
}

type report = {
  thresholds : thresholds;
  deltas : delta list;  (** baseline order, then new cells *)
}

val compare : ?thresholds:thresholds -> baseline:t -> current:t -> unit -> report
val regressions : report -> delta list
val has_regression : report -> bool

val to_markdown : report -> string
(** Full per-cell delta table (time, iterations, peak heap, status). *)

val pp_report : Format.formatter -> report -> unit
(** Terminal-friendly summary: one line per cell, regressions recapped
    last. *)

(** {1 Parallel scaling} *)

type scaling_point = {
  s_benchmark : string;
  s_analysis : string;
  s_jobs : int;
  s_domains : int;
  s_seq_time_s : float;  (** the cell's jobs=1 sibling's time *)
  s_time_s : float;
  s_speedup : float;  (** [s_seq_time_s /. s_time_s]; > 1 = parallel wins *)
}

val scaling_points : t -> scaling_point list
(** Every finished jobs>1 cell paired with its finished jobs=1 sibling
    from the {e same} snapshot — scaling is only meaningful within one
    measurement, never across hosts. *)

type scaling_verdict =
  | Scaling_ok of scaling_point list  (** all gated points met the target *)
  | Scaling_regression of scaling_point list  (** the points that missed *)
  | Scaling_skipped of string
      (** no parallel cells, no core stamp, or too few cores to hold
          the solver to the target — the reason is the payload *)

val check_scaling : ?min_jobs_cores:int -> min_speedup:float -> t -> scaling_verdict
(** Gate the snapshot's own scaling section: every point with
    [s_domains >= min_jobs_cores] (default 4) must reach [min_speedup].
    Skips (rather than fails) on hosts with fewer than [min_jobs_cores]
    cores — a 1-core CI runner cannot exhibit parallel speedup, and
    pretending otherwise would gate on noise. *)

val pp_scaling_point : Format.formatter -> scaling_point -> unit
