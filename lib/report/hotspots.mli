(** Hot-spot tables over trace profiles.

    Renders the per-name aggregates of a {!Pta_obs.Trace.t} profile
    (rule firings for the Datalog engine, edge-kind batches for the
    native solver) as a top-K table sorted by cumulative time or
    allocation, with a share column and a crude bar — the per-rule
    hot-spot view of the paper's Table 1 cells. *)

type row = {
  name : string;  (** rule or edge-kind name *)
  events : int;  (** completed spans (firings / batches) *)
  delta : int;  (** cumulative delta (facts derived / objects moved) *)
  seconds : float;  (** cumulative wall time *)
  alloc_words : float;
      (** cumulative allocation (fresh words), when the sink captured
          it; [0.] renders as ["-"] *)
}

type sort = By_time | By_alloc

val sort_of_string : string -> (sort, string) result
(** ["time"] or ["alloc"]. *)

val render :
  ?top:int -> ?total_s:float -> ?sort:sort -> title:string -> row list ->
  string
(** [render ~title rows] sorts [rows] by [seconds] (or [alloc_words]
    under [~sort:By_alloc]) descending, keeps the first [top] (default
    10), and renders a column-aligned table headed by [title].  The
    share column is always time share, relative to [total_s] when
    given, otherwise to the sum over {e all} rows (so truncation never
    hides time: the footer reports how much the dropped rows account
    for). *)
