(** The one regression-gate pipeline shared by every comparator entry
    point ([make bench-compare], [make bench-prop-compare], the CI gate
    cells, and the bench-history trend check): load a baseline snapshot,
    restrict both sides to a benchmark × analysis subset, diff them
    under a single tolerance configuration, render the per-cell report,
    and optionally write the Markdown delta table.

    Before this module each gate re-implemented the load / filter /
    threshold / render sequence with its own copies of the tolerances;
    they now differ only in the [subset] and [thresholds] they pass. *)

module Snapshot := Bench_snapshot

type subset = {
  benchmarks : string list option;  (** [None] = all *)
  analyses : string list option;  (** [None] = all *)
}

val full : subset
(** No restriction. *)

val subset_of : benchmarks:string list option -> analyses:string list option -> subset

val restrict : subset -> Snapshot.t -> Snapshot.t
(** Drop cells outside the subset (cell order otherwise preserved). *)

val load_file : string -> (Snapshot.t, string) result
(** Read and parse a snapshot file; the error string names the path. *)

type outcome = {
  report : Snapshot.report;
  failed : bool;  (** [Snapshot.has_regression report] *)
}

val gate :
  ?thresholds:Snapshot.thresholds ->
  ?subset:subset ->
  ?delta_md:string ->
  ?ppf:Format.formatter ->
  baseline:Snapshot.t ->
  current:Snapshot.t ->
  unit ->
  outcome
(** Restrict, compare, print the per-cell report to [ppf] (default
    [Format.std_formatter]), warn on [stderr] when the two snapshots
    were taken under different per-analysis timeouts, and write the
    Markdown delta table to [delta_md] when given. *)
