module Snapshot = Bench_snapshot

type subset = {
  benchmarks : string list option;
  analyses : string list option;
}

let full = { benchmarks = None; analyses = None }
let subset_of ~benchmarks ~analyses = { benchmarks; analyses }

let in_subset subset (c : Snapshot.cell) =
  (match subset.benchmarks with
  | None -> true
  | Some bs -> List.mem c.Snapshot.benchmark bs)
  &&
  match subset.analyses with
  | None -> true
  | Some xs -> List.mem c.Snapshot.analysis xs

let restrict subset (t : Snapshot.t) =
  { t with Snapshot.cells = List.filter (in_subset subset) t.Snapshot.cells }

let load_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | contents -> (
    match Snapshot.of_string contents with
    | Ok t -> Ok t
    | Error e -> Error (Printf.sprintf "cannot load baseline %s: %s" path e))
  | exception Sys_error e ->
    Error (Printf.sprintf "cannot load baseline %s: %s" path e)

type outcome = {
  report : Snapshot.report;
  failed : bool;
}

let gate ?thresholds ?(subset = full) ?delta_md
    ?(ppf = Format.std_formatter) ~baseline ~current () =
  if baseline.Snapshot.timeout_s <> current.Snapshot.timeout_s then
    Printf.eprintf
      "[bench] warning: baseline timeout %.0fs != current %.0fs; timeout \
       cells may not be comparable\n\
       %!"
      baseline.Snapshot.timeout_s current.Snapshot.timeout_s;
  let baseline = restrict subset baseline in
  let current = restrict subset current in
  let report = Snapshot.compare ?thresholds ~baseline ~current () in
  Format.fprintf ppf "%a%!" Snapshot.pp_report report;
  (match delta_md with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (Snapshot.to_markdown report));
    Format.fprintf ppf "[%s written]@." path);
  { report; failed = Snapshot.has_regression report }
