type row = {
  name : string;
  events : int;
  delta : int;
  seconds : float;
}

let bar_width = 20

let bar share =
  let n = int_of_float ((share *. float_of_int bar_width) +. 0.5) in
  String.make (max 0 (min bar_width n)) '#'

let render ?(top = 10) ?total_s ~title rows =
  let rows =
    List.sort
      (fun a b ->
        match compare b.seconds a.seconds with
        | 0 -> compare a.name b.name
        | c -> c)
      rows
  in
  let sum = List.fold_left (fun acc r -> acc +. r.seconds) 0. rows in
  let total = match total_s with Some t when t > 0. -> t | _ -> sum in
  let shown, hidden =
    if List.length rows <= top then (rows, [])
    else (List.filteri (fun i _ -> i < top) rows, List.filteri (fun i _ -> i >= top) rows)
  in
  let share r = if total > 0. then r.seconds /. total else 0. in
  let table =
    Table.create ~headers:[ title; "events"; "delta"; "time (s)"; "share"; "" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.name;
          string_of_int r.events;
          string_of_int r.delta;
          Printf.sprintf "%.4f" r.seconds;
          Printf.sprintf "%5.1f%%" (100. *. share r);
          bar (share r);
        ])
    shown;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Table.render table);
  (match hidden with
  | [] -> ()
  | _ ->
    let rest = List.fold_left (fun acc r -> acc +. r.seconds) 0. hidden in
    Buffer.add_string buf
      (Printf.sprintf "... %d more (%.4f s, %.1f%%)\n" (List.length hidden)
         rest
         (if total > 0. then 100. *. rest /. total else 0.)));
  Buffer.contents buf
