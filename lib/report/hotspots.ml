type row = {
  name : string;
  events : int;
  delta : int;
  seconds : float;
  alloc_words : float;
}

type sort = By_time | By_alloc

let sort_of_string = function
  | "time" -> Ok By_time
  | "alloc" -> Ok By_alloc
  | s -> Error (Printf.sprintf "unknown sort %S (expected time or alloc)" s)

let bar_width = 20

let bar share =
  let n = int_of_float ((share *. float_of_int bar_width) +. 0.5) in
  String.make (max 0 (min bar_width n)) '#'

(* Allocation is words (not bytes): the number [Gc.quick_stat] deals
   in, and the unit the census tables use. *)
let fmt_alloc w =
  if w <= 0. then "-"
  else if w >= 1e6 then Printf.sprintf "%.1fMw" (w /. 1e6)
  else if w >= 1e3 then Printf.sprintf "%.1fkw" (w /. 1e3)
  else Printf.sprintf "%.0fw" w

let render ?(top = 10) ?total_s ?(sort = By_time) ~title rows =
  let key r = match sort with By_time -> r.seconds | By_alloc -> r.alloc_words in
  let rows =
    List.sort
      (fun a b ->
        match compare (key b) (key a) with
        | 0 -> compare a.name b.name
        | c -> c)
      rows
  in
  let sum = List.fold_left (fun acc r -> acc +. r.seconds) 0. rows in
  let total = match total_s with Some t when t > 0. -> t | _ -> sum in
  let shown, hidden =
    if List.length rows <= top then (rows, [])
    else (List.filteri (fun i _ -> i < top) rows, List.filteri (fun i _ -> i >= top) rows)
  in
  let share r = if total > 0. then r.seconds /. total else 0. in
  let table =
    Table.create
      ~headers:[ title; "events"; "delta"; "time (s)"; "alloc"; "share"; "" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.name;
          string_of_int r.events;
          string_of_int r.delta;
          Printf.sprintf "%.4f" r.seconds;
          fmt_alloc r.alloc_words;
          Printf.sprintf "%5.1f%%" (100. *. share r);
          bar (share r);
        ])
    shown;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Table.render table);
  (match hidden with
  | [] -> ()
  | _ ->
    let rest = List.fold_left (fun acc r -> acc +. r.seconds) 0. hidden in
    Buffer.add_string buf
      (Printf.sprintf "... %d more (%.4f s, %.1f%%)\n" (List.length hidden)
         rest
         (if total > 0. then 100. *. rest /. total else 0.)));
  Buffer.contents buf
