module Json = Pta_obs.Json
module Memstats = Pta_obs.Memstats
module Census = Pta_obs.Census

let current_schema_version = 5

type hist = {
  bounds : float list;  (* strictly increasing upper bounds, no +Inf *)
  counts : int list;  (* per-bucket, non-cumulative; last = overflow *)
  sum : float;
}

type cell = {
  benchmark : string;
  analysis : string;
  timed_out : bool;
  time_s : float;
  iterations : int;
  nodes : int option;
  memory : Memstats.delta option;
  time_hist : hist option;
  heap_components : Census.component list;
      (* v4: per-component retained/unshared words; [] when absent *)
  jobs : int;  (* v5: requested worklist domains; 1 in older snapshots *)
  domains : int;  (* v5: domains the drain actually used *)
}

type t = {
  schema_version : int;
  timeout_s : float;
  host_cores : int option;
      (* v5: cores of the measuring host; None in older snapshots *)
  pointsto : Json.t option;
  cells : cell list;
}

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)
(* ------------------------------------------------------------------ *)

let hist_to_json h =
  Json.Obj
    [
      ("bounds", Json.List (List.map (fun b -> Json.Float b) h.bounds));
      ("counts", Json.List (List.map (fun n -> Json.Int n) h.counts));
      ("sum", Json.Float h.sum);
    ]

(* A histogram straight off a {!Pta_metrics.Registry} handle:
   [histogram_buckets]' trailing +Inf bucket becomes the overflow
   count. *)
let hist_of_buckets ~sum buckets =
  let rec split bounds counts = function
    | [] -> { bounds = List.rev bounds; counts = List.rev counts; sum }
    | [ (_inf, n) ] -> split bounds (n :: counts) []
    | (b, n) :: rest -> split (b :: bounds) (n :: counts) rest
  in
  split [] [] buckets

let hist_of_json json =
  let err what = Error (Printf.sprintf "bench snapshot: time_hist %s" what) in
  match
    ( Option.map (List.filter_map Json.to_float)
        (Option.bind (Json.member "bounds" json) Json.to_list),
      Option.map (List.filter_map Json.to_int)
        (Option.bind (Json.member "counts" json) Json.to_list),
      Option.bind (Json.member "sum" json) Json.to_float )
  with
  | Some bounds, Some counts, Some sum ->
    if List.length counts <> List.length bounds + 1 then
      err "counts must have one more entry than bounds"
    else if List.exists (fun n -> n < 0) counts then
      err "counts must be non-negative"
    else if
      (let rec incr = function
         | a :: (b :: _ as rest) -> a < b && incr rest
         | _ -> true
       in
       not (incr bounds))
    then err "bounds must be strictly increasing"
    else Ok { bounds; counts; sum }
  | _ -> err "needs bounds, counts and sum"

let hist_count h = List.fold_left ( + ) 0 h.counts

let cell_to_json c =
  Json.Obj
    ([
       ("benchmark", Json.String c.benchmark);
       ("analysis", Json.String c.analysis);
       ("timed_out", Json.Bool c.timed_out);
       ("time_s", Json.Float c.time_s);
       ("iterations", Json.Int c.iterations);
     ]
    @ (match c.nodes with None -> [] | Some n -> [ ("nodes", Json.Int n) ])
    @ (match c.memory with
      | None -> []
      | Some m -> [ ("memory", Memstats.to_json m) ])
    @ (match c.time_hist with
      | None -> []
      | Some h -> [ ("time_hist", hist_to_json h) ])
    @ (match c.heap_components with
      | [] -> []
      | cs -> [ ("heap_components", Census.components_to_json cs) ])
    @
    (* Sequential cells stay byte-identical to a v4 writer modulo the
       version bump: jobs/domains are only written when parallel. *)
    if c.jobs = 1 && c.domains = 1 then []
    else [ ("jobs", Json.Int c.jobs); ("domains", Json.Int c.domains) ])

let to_json t =
  Json.Obj
    ([
       ("schema_version", Json.Int current_schema_version);
       ("timeout_s", Json.Float t.timeout_s);
     ]
    @ (match t.host_cores with
      | None -> []
      | Some n -> [ ("host_cores", Json.Int n) ])
    @ (match t.pointsto with None -> [] | Some v -> [ ("pointsto", v) ])
    @ [ ("cells", Json.List (List.map cell_to_json t.cells)) ])

let ( let* ) r f = Result.bind r f

let field json name conv =
  match Option.bind (Json.member name json) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "bench snapshot: missing or mistyped %S" name)

let cell_of_json json =
  let* benchmark = field json "benchmark" Json.to_str in
  let* analysis = field json "analysis" Json.to_str in
  let* timed_out =
    field json "timed_out" (function Json.Bool b -> Some b | _ -> None)
  in
  let* time_s = field json "time_s" Json.to_float in
  let* iterations = field json "iterations" Json.to_int in
  (* v2 fields; absent in v1 snapshots. *)
  let nodes = Option.bind (Json.member "nodes" json) Json.to_int in
  let* memory =
    match Json.member "memory" json with
    | None -> Ok None
    | Some j -> Result.map Option.some (Memstats.of_json j)
  in
  (* v3 field; absent in v1/v2 snapshots. *)
  let* time_hist =
    match Json.member "time_hist" json with
    | None -> Ok None
    | Some j -> Result.map Option.some (hist_of_json j)
  in
  (* v4 field; absent in v1-v3 snapshots. *)
  let* heap_components =
    match Json.member "heap_components" json with
    | None -> Ok []
    | Some j ->
      Result.map_error
        (fun e -> "bench snapshot: " ^ e)
        (Census.components_of_json_list j)
  in
  (* v5 fields; absent (= sequential) in v1-v4 snapshots. *)
  let jobs =
    Option.value ~default:1 (Option.bind (Json.member "jobs" json) Json.to_int)
  in
  let domains =
    Option.value ~default:1
      (Option.bind (Json.member "domains" json) Json.to_int)
  in
  if jobs < 1 || domains < 1 then
    Error "bench snapshot: jobs and domains must be >= 1"
  else
    Ok
      { benchmark; analysis; timed_out; time_s; iterations; nodes; memory;
        time_hist; heap_components; jobs; domains }

let of_json json =
  let* schema_version = field json "schema_version" Json.to_int in
  if schema_version < 1 || schema_version > current_schema_version then
    Error
      (Printf.sprintf "bench snapshot: unsupported schema_version %d (max %d)"
         schema_version current_schema_version)
  else
    let* timeout_s = field json "timeout_s" Json.to_float in
    let host_cores = Option.bind (Json.member "host_cores" json) Json.to_int in
    let pointsto = Json.member "pointsto" json in
    let* cell_list = field json "cells" Json.to_list in
    let* cells =
      List.fold_left
        (fun acc j ->
          let* acc = acc in
          let* c = cell_of_json j in
          Ok (c :: acc))
        (Ok []) cell_list
    in
    Ok { schema_version; timeout_s; host_cores; pointsto; cells = List.rev cells }

let of_string s =
  match Json.of_string s with
  | Ok json -> of_json json
  | Error e -> Error (Printf.sprintf "bench snapshot: %s" e)

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)
(* ------------------------------------------------------------------ *)

type thresholds = {
  time_tol_pct : float;
  heap_tol_pct : float;
  heap_component_tol_pct : float;
  min_time_s : float;
}

let default_thresholds =
  {
    time_tol_pct = 15.;
    heap_tol_pct = 10.;
    heap_component_tol_pct = 25.;
    min_time_s = 0.5;
  }

type verdict =
  | Time_regression of { base_s : float; cur_s : float; pct : float }
  | Heap_regression of { base_w : int; cur_w : int; pct : float }
  | Component_regression of Census.breach
  | New_timeout
  | Fixed_timeout
  | Missing_cell
  | New_cell

let verdict_is_regression = function
  | Time_regression _ | Heap_regression _ | Component_regression _
  | New_timeout | Missing_cell ->
    true
  | Fixed_timeout | New_cell -> false

type delta = {
  d_benchmark : string;
  d_analysis : string;
  d_jobs : int;
  d_base : cell option;
  d_cur : cell option;
  verdicts : verdict list;
}

type report = {
  thresholds : thresholds;
  deltas : delta list;  (** one per (benchmark, analysis), baseline order *)
}

let regressions r =
  List.filter (fun d -> List.exists verdict_is_regression d.verdicts) r.deltas

let has_regression r = regressions r <> []

let pct_change base cur =
  if base = 0. then if cur = 0. then 0. else infinity
  else (cur -. base) /. base *. 100.

let peak_heap c = Option.map (fun m -> m.Memstats.peak_heap_words) c.memory

let compare_cells ?(times_comparable = true) th (base : cell) (cur : cell) =
  match (base.timed_out, cur.timed_out) with
  | false, true -> [ New_timeout ]
  | true, false -> [ Fixed_timeout ]
  | true, true -> []
  | false, false ->
    let time_v =
      (* Cells faster than [min_time_s] in the baseline are pure noise:
         skip the relative-time check on them.  Parallel cells measured
         on hosts with different core counts are not comparable at all
         (jobs=4 on one core IS slower than on four): the caller clears
         [times_comparable] and the time check stays silent. *)
      if base.time_s < th.min_time_s then []
      else if cur.jobs > 1 && not times_comparable then []
      else
        let pct = pct_change base.time_s cur.time_s in
        if pct > th.time_tol_pct then
          [ Time_regression { base_s = base.time_s; cur_s = cur.time_s; pct } ]
        else []
    in
    let heap_v =
      match (peak_heap base, peak_heap cur) with
      | Some b, Some c when b > 0 ->
        let pct = pct_change (float_of_int b) (float_of_int c) in
        if pct > th.heap_tol_pct then
          [ Heap_regression { base_w = b; cur_w = c; pct } ]
        else []
      | _ -> []  (* v1 baseline has no memory figures: nothing to gate on *)
    in
    let comp_v =
      (* v1-v3 cells carry no components, so the list is empty and the
         gate is silent — same lenient posture as the heap gate. *)
      List.map
        (fun b -> Component_regression b)
        (Census.compare_components ~tol_pct:th.heap_component_tol_pct
           ~baseline:base.heap_components ~current:cur.heap_components)
    in
    time_v @ heap_v @ comp_v

let compare ?(thresholds = default_thresholds) ~baseline ~current () =
  let key c = (c.benchmark, c.analysis, c.jobs) in
  (* jobs>1 timings only transfer between hosts with the same core
     count; unknown (pre-v5) counts never match a known one. *)
  let times_comparable =
    match (baseline.host_cores, current.host_cores) with
    | Some b, Some c -> b = c
    | _ -> false
  in
  let cur_tbl = Hashtbl.create 64 in
  List.iter (fun c -> Hashtbl.replace cur_tbl (key c) c) current.cells;
  let seen = Hashtbl.create 64 in
  let from_base =
    List.map
      (fun b ->
        Hashtbl.replace seen (key b) ();
        let cur = Hashtbl.find_opt cur_tbl (key b) in
        let verdicts =
          match cur with
          | None -> [ Missing_cell ]
          | Some c -> compare_cells ~times_comparable thresholds b c
        in
        {
          d_benchmark = b.benchmark;
          d_analysis = b.analysis;
          d_jobs = b.jobs;
          d_base = Some b;
          d_cur = cur;
          verdicts;
        })
      baseline.cells
  in
  let fresh =
    List.filter_map
      (fun c ->
        if Hashtbl.mem seen (key c) then None
        else
          Some
            {
              d_benchmark = c.benchmark;
              d_analysis = c.analysis;
              d_jobs = c.jobs;
              d_base = None;
              d_cur = Some c;
              verdicts = [ New_cell ];
            })
      current.cells
  in
  { thresholds; deltas = from_base @ fresh }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let verdict_label = function
  | Time_regression { pct; _ } -> Printf.sprintf "TIME +%.1f%%" pct
  | Heap_regression { pct; _ } -> Printf.sprintf "HEAP +%.1f%%" pct
  | Component_regression b ->
    Printf.sprintf "HEAP[%s] +%.1f%%" b.Census.b_name b.Census.b_pct
  | New_timeout -> "NEW TIMEOUT"
  | Fixed_timeout -> "fixed timeout"
  | Missing_cell -> "MISSING"
  | New_cell -> "new cell"

let cell_time = function
  | None -> "-"
  | Some c ->
    if c.timed_out then Printf.sprintf "T/O@%.1fs" c.time_s
    else Printf.sprintf "%.2f" c.time_s

let cell_iters = function None -> "-" | Some c -> string_of_int c.iterations

let cell_heap c =
  match Option.bind c peak_heap with
  | None -> "-"
  | Some w -> Printf.sprintf "%.1fM" (float_of_int w /. 1e6)

let delta_status d =
  if d.verdicts = [] then "ok"
  else String.concat ", " (List.map verdict_label d.verdicts)

(* Parallel cells render as "analysis@j4" so one table can hold the
   whole jobs grid without a new column. *)
let delta_analysis_label d =
  if d.d_jobs = 1 then d.d_analysis
  else Printf.sprintf "%s@j%d" d.d_analysis d.d_jobs

let to_markdown r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "# Benchmark regression report\n\n";
  Buffer.add_string buf
    (Printf.sprintf
       "Thresholds: time +%.0f%%, peak heap +%.0f%%, heap component +%.0f%% \
        (cells under %.2fs skipped for time).\n\n"
       r.thresholds.time_tol_pct r.thresholds.heap_tol_pct
       r.thresholds.heap_component_tol_pct r.thresholds.min_time_s);
  let n_reg = List.length (regressions r) in
  Buffer.add_string buf
    (if n_reg = 0 then "**No regressions.**\n\n"
     else Printf.sprintf "**%d regression(s).**\n\n" n_reg);
  Buffer.add_string buf
    "| benchmark | analysis | base time | cur time | base iters | cur iters \
     | base heap | cur heap | status |\n";
  Buffer.add_string buf
    "|---|---|---:|---:|---:|---:|---:|---:|---|\n";
  List.iter
    (fun d ->
      Buffer.add_string buf
        (Printf.sprintf "| %s | %s | %s | %s | %s | %s | %s | %s | %s |\n"
           d.d_benchmark (delta_analysis_label d) (cell_time d.d_base)
           (cell_time d.d_cur) (cell_iters d.d_base) (cell_iters d.d_cur)
           (cell_heap d.d_base) (cell_heap d.d_cur) (delta_status d)))
    r.deltas;
  Buffer.contents buf

let pp_report ppf r =
  let reg = regressions r in
  List.iter
    (fun d ->
      Format.fprintf ppf "  %-10s %-10s %s -> %s  %s@." d.d_benchmark
        (delta_analysis_label d) (cell_time d.d_base) (cell_time d.d_cur)
        (delta_status d))
    r.deltas;
  if reg = [] then Format.fprintf ppf "no regressions@."
  else
    Format.fprintf ppf "%d regression(s): %s@." (List.length reg)
      (String.concat ", "
         (List.map
            (fun d -> d.d_benchmark ^ "/" ^ delta_analysis_label d)
            reg))

(* ------------------------------------------------------------------ *)
(* Scaling: jobs>1 cells against their sequential siblings             *)
(* ------------------------------------------------------------------ *)

type scaling_point = {
  s_benchmark : string;
  s_analysis : string;
  s_jobs : int;
  s_domains : int;
  s_seq_time_s : float;  (* the jobs=1 sibling's time *)
  s_time_s : float;
  s_speedup : float;  (* seq_time / time; > 1 = faster in parallel *)
}

let scaling_points t =
  let seq = Hashtbl.create 16 in
  List.iter
    (fun c ->
      if c.jobs = 1 && not c.timed_out then
        Hashtbl.replace seq (c.benchmark, c.analysis) c.time_s)
    t.cells;
  List.filter_map
    (fun c ->
      if c.jobs <= 1 || c.timed_out then None
      else
        Option.map
          (fun seq_t ->
            {
              s_benchmark = c.benchmark;
              s_analysis = c.analysis;
              s_jobs = c.jobs;
              s_domains = c.domains;
              s_seq_time_s = seq_t;
              s_time_s = c.time_s;
              s_speedup = (if c.time_s > 0. then seq_t /. c.time_s else 0.);
            })
          (Hashtbl.find_opt seq (c.benchmark, c.analysis)))
    t.cells

type scaling_verdict =
  | Scaling_ok of scaling_point list
  | Scaling_regression of scaling_point list  (* the points that missed *)
  | Scaling_skipped of string

let check_scaling ?(min_jobs_cores = 4) ~min_speedup t =
  match scaling_points t with
  | [] -> Scaling_skipped "no parallel cells with a finished jobs=1 sibling"
  | points -> (
    match t.host_cores with
    | None -> Scaling_skipped "snapshot carries no host core count"
    | Some cores when cores < min_jobs_cores ->
      Scaling_skipped
        (Printf.sprintf
           "host has %d core(s); the speedup target needs at least %d" cores
           min_jobs_cores)
    | Some _ -> (
      (* The target applies to points that actually had enough cores to
         meet it: jobs beyond the host's core count cannot speed up
         linearly and are reported, not gated. *)
      let gated = List.filter (fun p -> p.s_domains >= min_jobs_cores) points in
      match List.filter (fun p -> p.s_speedup < min_speedup) gated with
      | [] -> Scaling_ok points
      | missed -> Scaling_regression missed))

let pp_scaling_point ppf p =
  Format.fprintf ppf "%s/%s jobs=%d (domains=%d): %.2fs -> %.2fs, %.2fx"
    p.s_benchmark p.s_analysis p.s_jobs p.s_domains p.s_seq_time_s p.s_time_s
    p.s_speedup
