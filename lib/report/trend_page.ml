type point = {
  value : float option;
  timed_out : bool;
  label : string;
  dirty : bool;
  flagged : bool;
}

type series = point list

type metric = {
  m_name : string;
  m_fmt : float -> string;
  m_series : series;
}

type cell = {
  c_benchmark : string;
  c_analysis : string;
  c_metrics : metric list;
}

type page = {
  p_title : string;
  p_subtitle : string;
  p_cells : cell list;
}

(* One decimal place is plenty for pixel coordinates and keeps the
   output byte-stable across platforms (no %g shortest-repr variance). *)
let px = Printf.sprintf "%.1f"

let html_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Sparklines                                                          *)
(* ------------------------------------------------------------------ *)

let sparkline ?(width = 160) ?(height = 40) (points : series) =
  let pad = 4. in
  let w = float_of_int width and h = float_of_int height in
  let n = List.length points in
  let xs i =
    if n <= 1 then w /. 2.
    else pad +. (float_of_int i *. (w -. (2. *. pad)) /. float_of_int (n - 1))
  in
  let present =
    List.filter_map (fun p -> p.value) points
  in
  let vmin = List.fold_left min infinity present in
  let vmax = List.fold_left max neg_infinity present in
  let ys v =
    if vmax <= vmin then h /. 2.
    else pad +. ((h -. (2. *. pad)) *. (1. -. ((v -. vmin) /. (vmax -. vmin))))
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
        viewBox=\"0 0 %d %d\" role=\"img\">\n"
       width height width height);
  (* Polyline segments: consecutive present points; a gap (missing cell
     or timeout) breaks the line. *)
  let flush_segment seg =
    match List.rev seg with
    | [] | [ _ ] -> ()  (* an isolated point is drawn by its marker *)
    | seg ->
      Buffer.add_string buf
        (Printf.sprintf
           "<polyline fill=\"none\" stroke=\"#0a66b0\" stroke-width=\"1.2\" \
            points=\"%s\"/>\n"
           (String.concat " "
              (List.map (fun (x, y) -> px x ^ "," ^ px y) seg)))
  in
  let seg =
    List.fold_left
      (fun (i, seg) p ->
        match p.value with
        | Some v -> (i + 1, (xs i, ys v) :: seg)
        | None ->
          flush_segment seg;
          (i + 1, []))
      (0, []) points
    |> snd
  in
  flush_segment seg;
  (* Markers, drawn over the line. *)
  let last_present =
    List.fold_left
      (fun (i, acc) p ->
        (i + 1, match p.value with Some _ -> Some i | None -> acc))
      (0, None) points
    |> snd
  in
  List.iteri
    (fun i p ->
      let x = xs i in
      let title =
        Printf.sprintf "<title>%s</title>" (html_escape p.label)
      in
      match p.value with
      | None when p.timed_out ->
        (* Timeout: a cross at mid-height. *)
        Buffer.add_string buf
          (Printf.sprintf
             "<g stroke=\"#c0392b\" stroke-width=\"1.2\">%s<line x1=\"%s\" \
              y1=\"%s\" x2=\"%s\" y2=\"%s\"/><line x1=\"%s\" y1=\"%s\" \
              x2=\"%s\" y2=\"%s\"/></g>\n"
             title
             (px (x -. 2.5)) (px ((h /. 2.) -. 2.5))
             (px (x +. 2.5)) (px ((h /. 2.) +. 2.5))
             (px (x -. 2.5)) (px ((h /. 2.) +. 2.5))
             (px (x +. 2.5)) (px ((h /. 2.) -. 2.5)))
      | None -> ()
      | Some v ->
        let y = ys v in
        let marker =
          if p.flagged then
            Some "r=\"2.5\" fill=\"#c0392b\" stroke=\"none\""
          else if p.dirty then
            Some "r=\"2.0\" fill=\"#ffffff\" stroke=\"#888888\" stroke-width=\"1.0\""
          else if last_present = Some i then
            Some "r=\"2.0\" fill=\"#0a66b0\" stroke=\"none\""
          else None
        in
        Option.iter
          (fun attrs ->
            Buffer.add_string buf
              (Printf.sprintf "<circle cx=\"%s\" cy=\"%s\" %s>%s</circle>\n"
                 (px x) (px y) attrs title))
          marker)
    points;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* File names                                                          *)
(* ------------------------------------------------------------------ *)

(* Benchmark/analysis/metric names may hold '+', '/', spaces, '(' ...;
   map anything outside [A-Za-z0-9._-] to '_' and keep the pieces
   separated by "__" so distinct cells cannot collide. *)
let sanitize s =
  String.map
    (function
      | ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '-') as c -> c
      | _ -> '_')
    s

let svg_file_name ~benchmark ~analysis ~metric =
  Printf.sprintf "%s__%s__%s.svg" (sanitize benchmark) (sanitize analysis)
    (sanitize metric)

(* ------------------------------------------------------------------ *)
(* HTML index                                                          *)
(* ------------------------------------------------------------------ *)

let style =
  {|body { font-family: -apple-system, "Segoe UI", sans-serif; margin: 2em; color: #222; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
p.sub { color: #666; white-space: pre-line; }
table { border-collapse: collapse; }
th, td { border: 1px solid #ddd; padding: 4px 8px; text-align: left; vertical-align: top; }
th { background: #f5f5f5; }
td.flagged { outline: 2px solid #c0392b; }
div.vals { font-size: 0.75em; color: #555; margin-top: 2px; }
span.flag { color: #c0392b; font-weight: bold; }
span.dirty { color: #b8860b; }|}

let series_summary fmt (points : series) =
  let present = List.filter_map (fun p -> p.value) points in
  match present with
  | [] -> "no data"
  | _ ->
    let vmin = List.fold_left min infinity present in
    let vmax = List.fold_left max neg_infinity present in
    let last = List.nth present (List.length present - 1) in
    Printf.sprintf "last %s &middot; min %s &middot; max %s" (fmt last)
      (fmt vmin) (fmt vmax)

let metric_td (m : metric) =
  let flagged = List.exists (fun p -> p.flagged) m.m_series in
  let dirty = List.exists (fun p -> p.dirty && p.value <> None) m.m_series in
  let badges =
    (if flagged then " <span class=\"flag\">&#9888; regression</span>" else "")
    ^ if dirty then " <span class=\"dirty\">&#9679; dirty builds</span>" else ""
  in
  Printf.sprintf "<td%s>%s<div class=\"vals\">%s%s</div></td>"
    (if flagged then " class=\"flagged\"" else "")
    (sparkline m.m_series)
    (series_summary m.m_fmt m.m_series)
    badges

let render (page : page) =
  let buf = Buffer.create 8192 in
  let add = Buffer.add_string buf in
  add "<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"utf-8\"/>\n";
  add (Printf.sprintf "<title>%s</title>\n" (html_escape page.p_title));
  add (Printf.sprintf "<style>%s</style>\n" style);
  add "</head>\n<body>\n";
  add (Printf.sprintf "<h1>%s</h1>\n" (html_escape page.p_title));
  add (Printf.sprintf "<p class=\"sub\">%s</p>\n" (html_escape page.p_subtitle));
  (* Group cells by benchmark, first-appearance order. *)
  let benchmarks =
    List.fold_left
      (fun acc c ->
        if List.mem c.c_benchmark acc then acc else acc @ [ c.c_benchmark ])
      [] page.p_cells
  in
  let columns =
    match page.p_cells with
    | [] -> []
    | c :: _ -> List.map (fun m -> m.m_name) c.c_metrics
  in
  List.iter
    (fun bench ->
      add (Printf.sprintf "<h2>%s</h2>\n<table>\n" (html_escape bench));
      add "<tr><th>analysis</th>";
      List.iter
        (fun col -> add (Printf.sprintf "<th>%s</th>" (html_escape col)))
        columns;
      add "</tr>\n";
      List.iter
        (fun c ->
          if String.equal c.c_benchmark bench then begin
            add
              (Printf.sprintf "<tr><td>%s</td>" (html_escape c.c_analysis));
            List.iter (fun m -> add (metric_td m)) c.c_metrics;
            add "</tr>\n"
          end)
        page.p_cells;
      add "</table>\n")
    benchmarks;
  add "</body>\n</html>\n";
  let svgs =
    List.concat_map
      (fun c ->
        List.map
          (fun m ->
            ( svg_file_name ~benchmark:c.c_benchmark ~analysis:c.c_analysis
                ~metric:m.m_name,
              sparkline m.m_series ))
          c.c_metrics)
      page.p_cells
  in
  ("index.html", Buffer.contents buf) :: svgs
