module Ir = Pta_ir.Ir
module Hierarchy = Pta_ir.Hierarchy
module Rng = Pta_workloads.Rng
module Intset = Pta_solver.Intset
module Spec = Pta_taint.Spec
open Ir

type value =
  | Null
  | Obj of obj

and obj = {
  tag : Heap_id.t;
  obj_type : Type_id.t;
  fields : (int, tval) Hashtbl.t;
}

(* A runtime value with its dynamic taint labels.  Taint rides on the
   {e reference} (the binding), not the object: copying a variable
   copies its labels, storing into a field taints that field cell. *)
and tval = value * Intset.t

type trace = {
  var_points : (int * int, unit) Hashtbl.t;
  call_edges : (int * int, unit) Hashtbl.t;
  reached : (int, unit) Hashtbl.t;
  taint_hits : (int * int * int, unit) Hashtbl.t;
  mutable steps : int;
}

(* Outcome of executing a piece of code: fall-through, or an in-flight
   exception unwinding towards a matching handler. *)
type outcome =
  | Normal
  | Raised of obj

exception Out_of_budget

type state = {
  program : Program.t;
  hierarchy : Hierarchy.t;
  rng : Rng.t;
  trace : trace;
  statics : (int, tval) Hashtbl.t;  (* static field cells *)
  max_steps : int;
  max_depth : int;
  (* Dynamic taint instrumentation, compiled per method from the spec;
     all empty/false when no spec is given. *)
  param_sources : (int, (int * int) list) Hashtbl.t;  (* meth -> (formal idx, label) *)
  ret_sources : (int, int list) Hashtbl.t;  (* meth -> labels *)
  sink_pos : Meth_id.t -> int list;
  sanitizer : Meth_id.t -> bool;
}

let record_var st var (value : tval) =
  match fst value with
  | Null -> ()
  | Obj o ->
    Hashtbl.replace st.trace.var_points
      (Var_id.to_int var, Heap_id.to_int o.tag)
      ()

let untainted v : tval = (v, Intset.empty)

(* A frame maps the method's locals to values; all locals start null. *)
let assign st frame var (value : tval) =
  Hashtbl.replace frame (Var_id.to_int var) value;
  record_var st var value

let lookup_var frame var : tval =
  Option.value ~default:(untainted Null)
    (Hashtbl.find_opt frame (Var_id.to_int var))

let tick st =
  st.trace.steps <- st.trace.steps + 1;
  if st.trace.steps > st.max_steps then raise Out_of_budget

(* Sink/sanitizer/source hooks around a resolved call.  Hits are
   recorded against the {e invocation site}, matching the static
   analysis' flow verdicts. *)
let record_sink_hits st invo callee (args : tval list) =
  match st.sink_pos callee with
  | [] -> ()
  | positions ->
    List.iter
      (fun pos ->
        match List.nth_opt args pos with
        | None -> ()
        | Some (_, labels) ->
          Intset.iter
            (fun label ->
              Hashtbl.replace st.trace.taint_hits
                (label, Invo_id.to_int invo, pos)
                ())
            labels)
      positions

(* [call] returns the callee's return value, or the exception escaping
   it.  Depth exhaustion silently returns null (the run is truncated). *)
let rec call st ~depth meth ~this ~args : (tval, obj) result =
  if depth > st.max_depth then Ok (untainted Null)
  else begin
    let mi = Program.meth_info st.program meth in
    Hashtbl.replace st.trace.reached (Meth_id.to_int meth) ();
    let frame = Hashtbl.create 16 in
    (match (mi.this_var, this) with
    | Some v, Some value -> assign st frame v value
    | Some _, None | None, _ -> ());
    Array.iteri
      (fun i formal ->
        match List.nth_opt args i with
        | Some value -> assign st frame formal value
        | None -> ())
      mi.formals;
    (* Param sources: the method's i-th formal is born tainted. *)
    (match Hashtbl.find_opt st.param_sources (Meth_id.to_int meth) with
    | None -> ()
    | Some seeds ->
      List.iter
        (fun (i, label) ->
          if i < Array.length mi.formals then begin
            let v, labels = lookup_var frame mi.formals.(i) in
            assign st frame mi.formals.(i) (v, Intset.add label labels)
          end)
        seeds);
    match exec_code st ~depth frame mi.body with
    | Raised exc -> Error exc
    | Normal ->
      let result =
        match mi.ret_var with
        | Some v -> lookup_var frame v
        | None -> untainted Null
      in
      (* Ret sources taint the returned value at the boundary. *)
      let result =
        match Hashtbl.find_opt st.ret_sources (Meth_id.to_int meth) with
        | None -> result
        | Some labels ->
          let v, l = result in
          (v, List.fold_left (fun acc lb -> Intset.add lb acc) l labels)
      in
      Ok result
  end

and exec_code st ~depth frame code : outcome =
  match code with
  | Instr i -> exec_instr st ~depth frame i
  | Seq cs ->
    let rec go = function
      | [] -> Normal
      | c :: rest -> (
        match exec_code st ~depth frame c with
        | Normal -> go rest
        | Raised _ as r -> r)
    in
    go cs
  | Branch (a, b) ->
    if Rng.bool st.rng 0.5 then exec_code st ~depth frame a
    else exec_code st ~depth frame b
  | Loop body ->
    (* Geometric number of iterations, capped. *)
    let rec go n =
      if n < 4 && Rng.bool st.rng 0.6 then
        match exec_code st ~depth frame body with
        | Normal -> go (n + 1)
        | Raised _ as r -> r
      else Normal
    in
    go 0
  | Try (body, handlers) -> (
    match exec_code st ~depth frame body with
    | Normal -> Normal
    | Raised exc ->
      let rec dispatch = function
        | [] -> Raised exc
        | h :: rest ->
          if Hierarchy.subtype st.hierarchy ~sub:exc.obj_type ~sup:h.catch_type
          then begin
            (* The caught reference carries no labels: taint does not
               follow exception flow (matching the static pass). *)
            assign st frame h.catch_var (untainted (Obj exc));
            exec_code st ~depth frame h.handler_body
          end
          else dispatch rest
      in
      dispatch handlers)

and invoke st ~depth frame callee invo ~this args ret_target : outcome =
  Hashtbl.replace st.trace.call_edges
    (Invo_id.to_int invo, Meth_id.to_int callee)
    ();
  record_sink_hits st invo callee args;
  (* A sanitizer neutralizes: no labels enter its frame, none leave. *)
  let sanitizing = st.sanitizer callee in
  let this = if sanitizing then Option.map (fun (v, _) -> untainted v) this
             else this in
  let args = if sanitizing then List.map (fun (v, _) -> untainted v) args
             else args in
  match call st ~depth:(depth + 1) callee ~this ~args with
  | Error exc -> Raised exc
  | Ok result ->
    (match ret_target with
    | Some v ->
      assign st frame v
        (if sanitizing then untainted (fst result) else result)
    | None -> ());
    Normal

and exec_instr st ~depth frame instr : outcome =
  tick st;
  match instr with
  | Alloc { target; heap } ->
    let hi = Program.heap_info st.program heap in
    assign st frame target
      (untainted
         (Obj { tag = heap; obj_type = hi.heap_type; fields = Hashtbl.create 4 }));
    Normal
  | Move { target; source } ->
    assign st frame target (lookup_var frame source);
    Normal
  | Cast { target; source; cast_type } ->
    (match lookup_var frame source with
    | Null, _ -> ()
    | Obj o, labels ->
      (* A failing cast would throw ClassCastException; as with other
         runtime faults, the faulting instruction is skipped. *)
      if Hierarchy.subtype st.hierarchy ~sub:o.obj_type ~sup:cast_type then
        assign st frame target (Obj o, labels));
    Normal
  | Load { target; base; field } ->
    (match fst (lookup_var frame base) with
    | Null -> ()
    | Obj o -> (
      match Hashtbl.find_opt o.fields (Field_id.to_int field) with
      | Some v -> assign st frame target v
      | None -> ()));
    Normal
  | Store { base; field; source } ->
    (match fst (lookup_var frame base) with
    | Null -> ()
    | Obj o ->
      Hashtbl.replace o.fields (Field_id.to_int field) (lookup_var frame source));
    Normal
  | Throw { source } -> (
    match fst (lookup_var frame source) with
    | Null -> Normal  (* throwing null faults; skipped like other faults *)
    | Obj o -> Raised o)
  | Virtual_call { base; signature; invo; args; ret_target } -> (
    match lookup_var frame base with
    | Null, _ -> Normal
    | (Obj o, _) as this -> (
      match Hierarchy.lookup st.hierarchy o.obj_type signature with
      | None -> Normal
      | Some callee ->
        if (Program.meth_info st.program callee).meth_static then Normal
        else
          invoke st ~depth frame callee invo ~this:(Some this)
            (List.map (lookup_var frame) args)
            ret_target))
  | Static_call { callee; invo; args; ret_target } ->
    invoke st ~depth frame callee invo ~this:None
      (List.map (lookup_var frame) args)
      ret_target
  | Static_load { target; field } ->
    (match Hashtbl.find_opt st.statics (Field_id.to_int field) with
    | Some v -> assign st frame target v
    | None -> ());
    Normal
  | Static_store { field; source } ->
    Hashtbl.replace st.statics (Field_id.to_int field) (lookup_var frame source);
    Normal

let run ?(max_steps = 200_000) ?(max_depth = 300) ?taint ~seed program =
  let param_sources = Hashtbl.create 8 and ret_sources = Hashtbl.create 8 in
  (match taint with
  | None -> ()
  | Some spec ->
    List.iter
      (fun (s : Spec.source) ->
        let m = Meth_id.to_int s.src_meth in
        match s.src_pos with
        | Spec.Ret ->
          Hashtbl.replace ret_sources m
            (s.src_label
            :: Option.value ~default:[] (Hashtbl.find_opt ret_sources m))
        | Spec.Param i ->
          Hashtbl.replace param_sources m
            ((i, s.src_label)
            :: Option.value ~default:[] (Hashtbl.find_opt param_sources m)))
      (Spec.sources spec));
  let st =
    {
      program;
      hierarchy = Hierarchy.create program;
      rng = Rng.create seed;
      trace =
        {
          var_points = Hashtbl.create 1024;
          call_edges = Hashtbl.create 1024;
          reached = Hashtbl.create 256;
          taint_hits = Hashtbl.create 64;
          steps = 0;
        };
      statics = Hashtbl.create 64;
      max_steps;
      max_depth;
      param_sources;
      ret_sources;
      sink_pos =
        (match taint with
        | None -> fun _ -> []
        | Some spec -> Spec.sink_positions spec);
      sanitizer =
        (match taint with
        | None -> fun _ -> false
        | Some spec -> Spec.is_sanitizer spec);
    }
  in
  List.iter
    (fun entry ->
      (* An exception escaping main terminates the program normally. *)
      try ignore (call st ~depth:0 entry ~this:None ~args:[]) with
      | Out_of_budget -> ())
    (Program.entries program);
  st.trace

let observed_var_points trace =
  Hashtbl.fold
    (fun (v, h) () acc -> (Var_id.of_int v, Heap_id.of_int h) :: acc)
    trace.var_points []

let observed_call_edges trace =
  Hashtbl.fold
    (fun (i, m) () acc -> (Invo_id.of_int i, Meth_id.of_int m) :: acc)
    trace.call_edges []

let observed_reached trace =
  Hashtbl.fold (fun m () acc -> Meth_id.of_int m :: acc) trace.reached []

let observed_taint_hits trace =
  List.sort compare
    (Hashtbl.fold
       (fun (l, i, p) () acc -> (l, Invo_id.of_int i, p) :: acc)
       trace.taint_hits [])
