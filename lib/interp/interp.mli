(** Concrete interpreter for MJ programs — the stand-in for running on a
    JVM.

    Executes the lowered IR with real heap allocation and dynamic
    dispatch, resolving the nondeterministic [Branch]/[Loop] constructs
    with a seeded PRNG and bounding execution by a step budget and call
    depth.  Every points-to, call-graph and reachability fact observed
    during execution is recorded in a {!trace}; a sound analysis must
    include every trace fact (see the soundness test suite).

    Runtime faults (null dereference, failed cast, unresolvable
    dispatch) silently skip the faulting instruction: the static analysis
    has no notion of null or exceptions, so skipping keeps the observed
    behaviour within the analyzed semantics. *)

type trace = {
  var_points : (int * int, unit) Hashtbl.t;  (** (var, alloc site) *)
  call_edges : (int * int, unit) Hashtbl.t;  (** (invocation, target) *)
  reached : (int, unit) Hashtbl.t;  (** methods entered *)
  taint_hits : (int * int * int, unit) Hashtbl.t;
      (** (label, invocation, argument position): a dynamically tainted
          value observed flowing into a sink argument.  Empty unless
          [run] was given a taint spec. *)
  mutable steps : int;  (** instructions executed *)
}

val run :
  ?max_steps:int ->
  ?max_depth:int ->
  ?taint:Pta_taint.Spec.compiled ->
  seed:int64 ->
  Pta_ir.Ir.Program.t ->
  trace
(** Execute every entry point once with the given PRNG seed.
    Defaults: [max_steps = 200_000], [max_depth = 300].

    With [taint], the interpreter carries dynamic taint labels on every
    reference: ret/param sources label values at call boundaries, copies
    and heap traffic propagate labels, sanitizer calls strip them, and a
    labelled value reaching a sensitive sink argument records a
    {!trace.taint_hits} entry.  Exception flow drops labels, matching
    the static pass — so every observed hit must appear in the static
    flow set (the taint soundness tests assert exactly that). *)

val observed_var_points : trace -> (Pta_ir.Ir.Var_id.t * Pta_ir.Ir.Heap_id.t) list
val observed_call_edges : trace -> (Pta_ir.Ir.Invo_id.t * Pta_ir.Ir.Meth_id.t) list
val observed_reached : trace -> Pta_ir.Ir.Meth_id.t list

val observed_taint_hits : trace -> (int * Pta_ir.Ir.Invo_id.t * int) list
(** Sorted (label, invocation, argument position) triples — the same
    shape as {!Pta_taint.Taint.flow}, for the superset check. *)
