(** Bucketed integer priority queue for the solver's node worklist.

    Priorities are small non-negative ints — pseudo-topological positions
    of the copy subgraph, sources lowest — and [pop] returns an entry of
    the {e lowest} priority present, so deltas flow source→sink and each
    node tends to be visited once per change rather than once per
    wavefront.  Within a bucket entries pop LIFO (newest first), which
    keeps the hot set hot.

    Not a stable total order — it doesn't need to be: the solver's
    fixpoint is confluent, and determinism only requires that the pop
    sequence be a pure function of the push sequence, which it is. *)

type t

val create : unit -> t

val push : t -> prio:int -> int -> unit
(** Insert an entry.  Negative priorities are clamped to 0.  Duplicates
    are the caller's concern (the solver dedups with a per-node flag). *)

val pop : t -> int
(** Remove and return an entry of the lowest present priority.
    @raise Invalid_argument if the queue is empty. *)

val front_prio : t -> int
(** The priority [pop] would return next — i.e. the lowest priority
    present.  The parallel drain uses a change in [front_prio] as its
    bucket boundary, the point where a domain services its delta
    mailboxes.  @raise Invalid_argument if the queue is empty. *)

val steal : t -> max:int -> (int * int) list
(** [steal t ~max] removes up to [max] entries from the {e highest}
    nonempty bucket and returns them as [(prio, entry)] pairs (order
    within the batch unspecified).  Taking from the top of the priority
    range — the entries the owner would drain last — keeps a thief out
    of the owner's way.  [[]] when the queue is empty or [max <= 0].
    Callers own any cross-thread locking; the structure itself is
    single-threaded. *)

val is_empty : t -> bool

val length : t -> int
(** O(1) — feeds the worklist-depth histogram. *)

val clear : t -> unit
(** Drop all entries (buckets are retained for reuse). *)
