(** Bucketed integer priority queue for the solver's node worklist.

    Priorities are small non-negative ints — pseudo-topological positions
    of the copy subgraph, sources lowest — and [pop] returns an entry of
    the {e lowest} priority present, so deltas flow source→sink and each
    node tends to be visited once per change rather than once per
    wavefront.  Within a bucket entries pop LIFO (newest first), which
    keeps the hot set hot.

    Not a stable total order — it doesn't need to be: the solver's
    fixpoint is confluent, and determinism only requires that the pop
    sequence be a pure function of the push sequence, which it is. *)

type t

val create : unit -> t

val push : t -> prio:int -> int -> unit
(** Insert an entry.  Negative priorities are clamped to 0.  Duplicates
    are the caller's concern (the solver dedups with a per-node flag). *)

val pop : t -> int
(** Remove and return an entry of the lowest present priority.
    @raise Invalid_argument if the queue is empty. *)

val is_empty : t -> bool

val length : t -> int
(** O(1) — feeds the worklist-depth histogram. *)

val clear : t -> unit
(** Drop all entries (buckets are retained for reuse). *)
