(* An array of LIFO buckets indexed by priority, with a cursor tracking
   a lower bound on the lowest nonempty bucket.  [push] below the cursor
   pulls it back; [pop] advances it over empty buckets.  Since the
   solver's priorities only shift at (rare) reprioritization points —
   which rebuild the queue from scratch — the cursor scans each bucket
   index O(1) times between rebuilds.

   [hi] is the mirror-image upper bound (no nonempty bucket strictly
   above it), maintained for [steal]: thieves take from the top of the
   priority range, the entries the owner would reach last, so a steal
   disturbs the owner's source→sink draining order as little as
   possible. *)

type t = {
  mutable buckets : int list array;
  mutable cursor : int;  (* no nonempty bucket strictly below this *)
  mutable hi : int;  (* no nonempty bucket strictly above this *)
  mutable len : int;
}

let create () = { buckets = Array.make 16 []; cursor = 0; hi = 0; len = 0 }

let grow t want =
  let cap = Array.length t.buckets in
  let cap' = ref (2 * cap) in
  while want >= !cap' do
    cap' := 2 * !cap'
  done;
  let b = Array.make !cap' [] in
  Array.blit t.buckets 0 b 0 cap;
  t.buckets <- b

let push t ~prio nid =
  let prio = if prio < 0 then 0 else prio in
  if prio >= Array.length t.buckets then grow t prio;
  t.buckets.(prio) <- nid :: t.buckets.(prio);
  if prio < t.cursor then t.cursor <- prio;
  if prio > t.hi then t.hi <- prio;
  t.len <- t.len + 1

let is_empty t = t.len = 0
let length t = t.len

let front_prio t =
  if t.len = 0 then invalid_arg "Pqueue.front_prio: empty";
  while t.buckets.(t.cursor) == [] do
    t.cursor <- t.cursor + 1
  done;
  t.cursor

let pop t =
  if t.len = 0 then invalid_arg "Pqueue.pop: empty";
  while t.buckets.(t.cursor) == [] do
    t.cursor <- t.cursor + 1
  done;
  match t.buckets.(t.cursor) with
  | nid :: rest ->
    t.buckets.(t.cursor) <- rest;
    t.len <- t.len - 1;
    nid
  | [] -> assert false

let steal t ~max:k =
  if t.len = 0 || k <= 0 then []
  else begin
    while t.buckets.(t.hi) == [] do
      t.hi <- t.hi - 1
    done;
    let prio = t.hi in
    let rec take n l acc =
      match l with
      | nid :: rest when n > 0 -> take (n - 1) rest ((prio, nid) :: acc)
      | _ ->
        t.buckets.(prio) <- l;
        acc
    in
    let got = take k t.buckets.(prio) [] in
    t.len <- t.len - List.length got;
    got
  end

let clear t =
  Array.fill t.buckets 0 (Array.length t.buckets) [];
  t.cursor <- 0;
  t.hi <- 0;
  t.len <- 0
