(** Immutable sets of non-negative integers as big-endian Patricia trees
    (Okasaki & Gill).  The solver's points-to sets: persistent, with
    cheap unions of mostly-shared sets and canonical structure (two equal
    sets are structurally equal).

    All elements must be non-negative; operations raise
    [Invalid_argument] otherwise. *)

type t

val empty : t
val is_empty : t -> bool
val singleton : int -> t
val mem : int -> t -> bool
val add : int -> t -> t
val remove : int -> t -> t
val union : t -> t -> t

val union_stats : t -> t -> t * bool
(** [union_stats s t] is [(union s t, grew)] where [grew] reports
    whether the union is a strict superset of [s] (i.e. [t] is not a
    subset of [s]).  When [grew] is [false], the returned set is [s]
    itself (physical equality), so callers need no follow-up
    [cardinal]/[equal] comparison to detect growth. *)

val inter : t -> t -> t
val diff : t -> t -> t

val diff2 : t -> t -> t -> t
(** [diff2 s a b] is [diff (diff s a) b] computed in one fused pass over
    [s], never materializing the intermediate set — the solver's
    difference-propagation path ([incoming \ all \ pending]). *)

val cardinal : t -> int

(** Physical-equality short-circuits apply at every recursion step, not
    just the root: shared subtrees are never descended. *)
val subset : t -> t -> bool

(** Same short-circuit discipline as {!subset}; canonical structure
    makes this a pure structural comparison with sharing cut-offs. *)
val equal : t -> t -> bool
val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val exists : (int -> bool) -> t -> bool
val for_all : (int -> bool) -> t -> bool
val filter : (int -> bool) -> t -> t
val elements : t -> int list
(** In increasing order. *)

val of_list : int list -> t
val choose_opt : t -> int option
