(** The native points-to solver.

    A difference-propagation (semi-naive) worklist fixpoint of the
    paper's nine Datalog rules (Figure 2) over an exploded supergraph:

    - a {e var node} per (variable, context) pair holds the objects the
      variable may point to under that context
      ([VarPointsTo(var, ctx, heap, hctx)]);
    - a {e field node} per (abstract object, field) pair holds
      [FldPointsTo(baseH, baseHCtx, fld, heap, hctx)];
    - [Move]/[Cast]/parameter/return flows are edges between nodes
      ([InterProcAssign] and the move rule), casts filtering by type;
    - [Load]/[Store]/[Virtual_call] instructions attach triggers to their
      base variable's node and fire as its points-to set grows, adding
      edges and (for calls) call-graph edges, reachable-method contexts
      and receiver bindings ([Reachable], [CallGraph], this-binding);
    - context construction is delegated entirely to the
      {!Pta_context.Strategy.t} constructor functions [Record], [Merge]
      and [MergeStatic], as in the paper.

    Objects are interned (allocation site, heap context) pairs called
    {!hobj}s; points-to sets are {!Intset.t}s of hobjs. *)

type t

exception Timeout of Pta_obs.Budget.abort
(** Raised by {!solve} when the run's {!Pta_obs.Budget.t} is exhausted
    before the fixpoint — the analogue of the paper's 90-minute cutoff
    (the "-" entries of Table 1).  The payload records the elapsed
    wall-clock seconds, worklist iterations completed, and supergraph
    nodes created at abort.

    This is the same exception as {!Pta_obs.Budget.Exhausted} (an
    exception rebinding), so either name matches. *)

(** How to run the solver: the budget (deadline / cancellation token),
    the heap-field abstraction, the observer receiving instrumentation
    events, and the trace sink receiving timed spans.  Replaces the
    former pile of optional arguments on [run]. *)
module Config : sig
  type t = {
    budget : Pta_obs.Budget.t;
        (** deadline/cancellation; {!Pta_obs.Budget.unlimited} by default *)
    field_based : bool;
        (** [false] (default): field-sensitive points-to, one cell per
            (abstract object, field) — the Doop/paper treatment.
            [true]: the classic field-based approximation, one global
            cell per field name — kept as an ablation baseline. *)
    observer : Pta_obs.Observer.t;
        (** event hooks; {!Pta_obs.Observer.null} costs nothing *)
    trace : Pta_obs.Trace.t;
        (** span sink; {!Pta_obs.Trace.null} costs nothing.  A live sink
            receives ["phase"] spans for setup/fixpoint and, per
            propagation batch, a ["solver"]-category complete span named
            by edge kind ([move]/[load]/[store]/[vcall]/[scall]) whose
            [delta] is the number of objects pushed through that kind. *)
    metrics : Pta_metrics.Registry.t;
        (** metric registry; {!Pta_metrics.Registry.null} costs one
            boolean test per fixpoint iteration and registers nothing
            (the null path shares one set of dummy handles built at
            module initialization).  A live registry receives
            [pta_solver_propagated_total{kind=...}] counters, the
            [pta_solver_worklist_depth] histogram sampled each
            iteration, the cycle-elimination counters
            ([pta_solver_sccs_collapsed_total],
            [pta_solver_nodes_unified_total],
            [pta_solver_redundant_visits_avoided_total]), and — at
            fixpoint or abort — the [pta_solver_pts_size] histogram
            plus size gauges ([pta_solver_contexts],
            [pta_solver_heap_contexts], [pta_solver_hobjs],
            [pta_solver_nodes], [pta_solver_sensitive_vpt_size]). *)
    mem_tracker : Pta_obs.Memstats.tracker option;
        (** When set, the fixpoint loop folds the current major-heap
            size into the tracker's peak every [mem_sample_every]
            iterations — catching peaks between major collections that
            the tracker's GC alarm alone would miss.  [None] (default)
            costs one match per iteration. *)
    mem_sample_every : int;
        (** sampling period in fixpoint iterations; clamped to [>= 1]
            by {!make} (default {!default_mem_sample_every}).  At
            [jobs > 1] each domain ticks its own countdown and the max
            across domains folds into the tracker at phase barriers, so
            transient parallel peaks are not under-reported. *)
    jobs : int;
        (** worklist domains to drain with (default [1], the classic
            sequential fixpoint — that path is untouched by the parallel
            engine).  [jobs > 1] runs the bulk-synchronous multi-domain
            drain: SCC-condensation-partitioned per-domain worklists
            with batch-pop work stealing and single-producer delta
            mailboxes, while every structure-creating step (interning,
            node/edge creation, dispatch, SCC collapse) stays on the
            coordinating domain.  Results are {e fact-identical} to the
            sequential solver at every domain count (points-to sets,
            call-graph edges, reachability, throws — anything compared
            by rendered values), and deterministic run-to-run for a
            fixed [jobs]; raw interning {e ids} may differ between
            [jobs = 1] and [jobs > 1] (the jobs=1 serialization order is
            preserved bit-for-bit, the parallel one is its own
            deterministic order).  Schedule-dependent {e telemetry}
            (steal counts, per-domain iteration splits, worklist-depth
            samples) naturally varies across runs at [jobs > 1].

            On builds without domain support (OCaml 4.x), any [jobs]
            value degrades gracefully to the sequential drain —
            {!effective_jobs} reports what a solve will actually use. *)
  }

  val default_mem_sample_every : int
  (** [1024] — frequent enough to catch allocation spikes, cheap enough
      ([Gc.quick_stat] reads no heap) to leave timings unchanged. *)

  val default : t
  (** Unlimited budget, field-sensitive, no observer, no trace, no
      metrics, no memory tracker, [jobs = 1]. *)

  val make :
    ?timeout_s:float ->
    ?field_based:bool ->
    ?observer:Pta_obs.Observer.t ->
    ?trace:Pta_obs.Trace.t ->
    ?metrics:Pta_metrics.Registry.t ->
    ?mem_tracker:Pta_obs.Memstats.tracker ->
    ?mem_sample_every:int ->
    ?jobs:int ->
    unit ->
    t

  val effective_jobs : t -> int
  (** The domain count a solve with this config will actually use:
      [jobs] clamped to [1] on builds without domain support (and to a
      sanity cap of 256 otherwise).  Record {e this}, not the request,
      when stamping benchmark snapshots. *)
end

type outcome =
  | Complete of t  (** fixpoint reached; all results valid *)
  | Aborted of t * Pta_obs.Budget.abort
      (** budget exhausted mid-run.  The state is the {e partial}
          supergraph at abort: sound queries are not guaranteed and
          provenance refuses to walk it ({!is_complete} is [false]). *)

val solve_outcome :
  ?config:Config.t -> Pta_ir.Ir.Program.t -> Pta_context.Strategy.t -> outcome
(** Like {!solve}, but a budget abort returns the partial state instead
    of raising — for callers (bench harnesses, the driver) that want to
    report how far an aborted run got. *)

val solve :
  ?config:Config.t -> Pta_ir.Ir.Program.t -> Pta_context.Strategy.t -> t
(** Run the analysis to fixpoint.  Deterministic: same program and
    strategy yield identical interning and results, with or without an
    observer or trace installed.

    Reports two phases to the observer and trace: ["setup"] (hierarchy
    and entry seeding) and ["fixpoint"] (the worklist).

    @raise Timeout if the configured budget is exhausted. *)

val is_complete : t -> bool
(** [true] iff the worklists drained — i.e. the state came from a
    {!Complete} outcome (or a {!solve} that returned).  [false] on the
    partial state of an {!Aborted} outcome. *)

val domains_used : t -> int
(** Domains the drain actually ran with ({!Config.effective_jobs} of
    the solve's config): [1] for the sequential fixpoint.  Also exposed
    as the [pta_solver_domains] gauge on metered runs. *)

val program : t -> Pta_ir.Ir.Program.t
val strategy : t -> Pta_context.Strategy.t
val hierarchy : t -> Pta_ir.Hierarchy.t

(** {1 Abstract objects} *)

type hobj = int
(** Interned (allocation site, heap context) pair; dense ids. *)

val hobj_heap : t -> hobj -> Pta_ir.Ir.Heap_id.t
val hobj_hctx : t -> hobj -> Pta_context.Ctx.id
val hobj_type : t -> hobj -> Pta_ir.Ir.Type_id.t
val n_hobjs : t -> int

(** {1 Contexts} *)

val ctx_value : t -> Pta_context.Ctx.id -> Pta_context.Ctx.value
(** Decode a method-context id. *)

val hctx_value : t -> Pta_context.Ctx.id -> Pta_context.Ctx.value
(** Decode a heap-context id (separate interning space). *)

val n_ctxs : t -> int
val n_hctxs : t -> int

(** {1 Context-sensitive results} *)

val iter_var_points_to :
  t -> (Pta_ir.Ir.Var_id.t -> Pta_context.Ctx.id -> Intset.t -> unit) -> unit
(** Every (variable, context) node with its set of hobjs. *)

val iter_fld_points_to :
  t -> (hobj -> Pta_ir.Ir.Field_id.t -> Intset.t -> unit) -> unit

val static_fld_points_to : t -> Pta_ir.Ir.Field_id.t -> Intset.t
(** Objects a static field may hold (context-insensitive by nature). *)

val iter_throw_points_to :
  t -> (Pta_ir.Ir.Meth_id.t -> Pta_context.Ctx.id -> Intset.t -> unit) -> unit
(** [ThrowPointsTo(meth, ctx)]: the exception objects that may escape
    each analyzed method context (uncaught by any handler inside it). *)

val iter_call_edges :
  t ->
  (Pta_ir.Ir.Invo_id.t ->
  Pta_context.Ctx.id ->
  Pta_ir.Ir.Meth_id.t ->
  Pta_context.Ctx.id ->
  unit) ->
  unit
(** Context-sensitive call-graph edges, static and virtual. *)

val iter_reachable :
  t -> (Pta_ir.Ir.Meth_id.t -> Pta_context.Ctx.id -> unit) -> unit

val sensitive_vpt_size : t -> int
(** Total size of context-sensitive var-points-to — the paper's
    platform-independent complexity metric (Table 1, last column). *)

val n_var_nodes : t -> int
val n_reachable_cs : t -> int
val n_call_edges_cs : t -> int

(** {1 Context-insensitive projections} *)

val ci_var_points_to : t -> Pta_ir.Ir.Var_id.t -> Intset.t
(** Allocation sites (as raw [Heap_id] ints) the variable may point to in
    any context.  Memoized on first use. *)

val reachable_meths : t -> Pta_ir.Ir.Meth_id.Set.t
val invo_targets : t -> Pta_ir.Ir.Invo_id.t -> Pta_ir.Ir.Meth_id.Set.t
(** Resolved callee set of an invocation site (empty if unreachable). *)

val n_call_edges_ci : t -> int

(** {1 Supergraph introspection}

    Low-level access to the solver's node graph, for provenance/debug
    tooling ({!Pta_clients.Provenance}). *)

type node_id = int

type node_kind =
  | Var_node of Pta_ir.Ir.Var_id.t * Pta_context.Ctx.id
  | Fld_node of hobj * Pta_ir.Ir.Field_id.t
  | Static_fld_node of Pta_ir.Ir.Field_id.t
  | Throw_node of Pta_ir.Ir.Meth_id.t * Pta_context.Ctx.id
      (** exceptions escaping a (method, context) *)
  | Scope_node  (** anonymous try-block scope *)

val n_nodes : t -> int
val node_kind : t -> node_id -> node_kind
val node_points_to : t -> node_id -> Intset.t

val canonical_node : t -> node_id -> node_id
(** The representative of [nid]'s copy-cycle equivalence class (itself
    when never unified).  Unified nodes share points-to state and
    successor lists; graph walkers should compare and index nodes by
    canonical id, while {!node_kind} stays meaningful on original ids. *)

val node_succs_passing : t -> node_id -> hobj -> node_id list
(** Successor nodes whose connecting edge lets [hobj] through.  Returned
    ids may be stale aliases of a unified class — canonicalize with
    {!canonical_node} before using them as indices. *)

val var_node_ids : t -> Pta_ir.Ir.Var_id.t -> node_id list
(** All (var, context) nodes of a variable. *)

(** {1 Memory census} *)

val census : t -> Pta_obs.Census.t
(** A reachable-heap census of the solver state, attributing live words
    to named components — in ownership order: ["points-to-sets"] (the
    [Intset]s of every canonical node, [all] and [pending]),
    ["edge-lists"] (successor/trigger lists), ["node-tables"],
    ["context-tables"], ["hobj-tables"], ["unification-forest"],
    ["call-graph-facts"], ["worklists"], ["par-worklists"] (the
    parallel engine's per-domain queues, claim array and frozen
    canonicalization — empty at jobs=1), ["mailboxes"] (the
    single-producer delta mailboxes — empty at jobs=1), ["memos"].
    The census's set
    histogram is the points-to population distribution over canonical
    nodes (power-of-two buckets).

    The ["points-to-sets"] sharing factor (unshared / retained words)
    measures how much structural sharing the Patricia-tree sets achieve:
    a factor of 3 means materializing every set privately would cost 3x
    the memory actually retained.

    Runs [Gc.full_major] and walks the reachable heap — milliseconds to
    seconds on big workloads; call it once after {!solve}, never inside
    a timed region. *)
