(** Portable shim over OCaml 5 [Domain], selected at build time.

    The solver's parallel drain is written against this tiny surface so
    the same code compiles on the whole CI matrix: on OCaml >= 5.0 the
    implementation is [par_backend_domains.mlp] (real domains); on 4.14
    it is [par_backend_fallback.mlp], where {!available} is [false] and
    the solver clamps [jobs] to 1 — [--jobs 4] degrades gracefully to
    the sequential drain instead of failing to build.  [Atomic] exists
    on both sides (stdlib since 4.12), so only domain spawning and
    [cpu_relax] need to live behind the shim. *)

val available : bool
(** [true] iff this build can actually run multiple domains. *)

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count ()] on OCaml 5; [1] on 4.14.
    An upper bound worth respecting, not a target. *)

type handle
(** A running domain (OCaml 5) or nothing (4.14). *)

val spawn : (unit -> unit) -> handle
(** Start a worker.  The fallback runs [f] inline — callers must not
    reach [spawn] when {!available} is [false] (the solver never does;
    it clamps the domain count first). *)

val join : handle -> unit

val cpu_relax : unit -> unit
(** Spin-wait hint ([Domain.cpu_relax] on OCaml 5, no-op on 4.14). *)
