(** Union-find over dense supergraph node ids, for online cycle
    elimination.

    When the solver discovers a strongly connected component of
    unfiltered copy edges, the member nodes provably reach the same
    points-to set at fixpoint, so it collapses them into one equivalence
    class and propagates through the class once.  This structure tracks
    the classes.

    Deterministic: the canonical id of a class is always its {e
    smallest} member id, independent of union order — so a fixed
    program yields a fixed canonicalization regardless of when cycles
    were detected.  Internally unions are by rank with path compression
    ([find] is effectively O(α)). *)

type t

val create : ?capacity:int -> unit -> t
(** Fresh structure with no live ids; [capacity] pre-sizes the arrays. *)

val ensure : t -> int -> unit
(** [ensure t n] makes ids [0 .. n-1] valid, each initially in its own
    singleton class.  Growing never disturbs existing classes. *)

val length : t -> int
(** Number of live ids. *)

val find : t -> int -> int
(** Canonical id of [i]'s class: the smallest member.  [find t i = i]
    for ids never merged.  Compresses paths as it walks. *)

val same : t -> int -> int -> bool
(** Whether two ids are in the same class. *)

val union : t -> int -> int -> int
(** Merge the two classes and return the canonical (smallest) id of the
    merged class.  A no-op returning the canonical id when the ids are
    already together. *)

val n_merged : t -> int
(** Total ids absorbed into another class so far — i.e.
    [length t - number of classes]. *)

val depth : t -> int -> int
(** Parent-chain length from [i] to its root {e without} compressing —
    a test hook for the path-compression invariant ([find] must shorten
    chains it walks). *)
