module Ir = Pta_ir.Ir
module Vec = Pta_ir.Vec
module Hierarchy = Pta_ir.Hierarchy
module Ctx = Pta_context.Ctx
module Strategy = Pta_context.Strategy
module Observer = Pta_obs.Observer
module Budget = Pta_obs.Budget
module Trace = Pta_obs.Trace
module Registry = Pta_metrics.Registry
open Ir

type hobj = int

(* What an edge lets through.  [Compat] is the cast filter; [Catches] and
   [Escapes] implement exception dispatch on the scope nodes: a handler
   edge passes objects compatible with its catch type but not already
   caught by an earlier handler, and the escape edge passes objects no
   handler catches. *)
type edge_filter =
  | Compat of Type_id.t
  | Catches of { ty : Type_id.t; skip : Type_id.t list }
  | Escapes of Type_id.t list

type edge = {
  dst : int;
  filter : edge_filter option;
}

(* A virtual-call site attached to its base variable's node; fires for
   every abstract object reaching the base. *)
type vcall_site = {
  vc_invo : Invo_id.t;
  vc_sig : Sig_id.t;
  vc_args : Var_id.t list;
  vc_ret : Var_id.t option;
  vc_ctx : Ctx.id;  (* caller context *)
  vc_exc : int;  (* scope node receiving the callee's escaping exceptions *)
}

type load_trigger = { ld_field : Field_id.t; ld_target : int }
type store_trigger = { st_field : Field_id.t; st_source : int }

type node_id = int

(* Metric handles resolved once at solver construction; the fixpoint
   loop touches them through a single [Registry.is_null] gate, so an
   unmetered run pays one physical-equality check per iteration. *)
type meters = {
  m_reg : Registry.t;
  prop_move : Registry.counter;
  prop_vcall : Registry.counter;
  prop_load : Registry.counter;
  prop_store : Registry.counter;
  worklist_depth : Registry.histogram;
}

let make_meters reg =
  let prop kind =
    Registry.counter reg
      ~help:"Objects propagated through supergraph edges, by edge kind"
      ~labels:[ ("kind", kind) ]
      "pta_solver_propagated_total"
  in
  {
    m_reg = reg;
    prop_move = prop "move";
    prop_vcall = prop "vcall";
    prop_load = prop "load";
    prop_store = prop "store";
    worklist_depth =
      Registry.histogram reg
        ~help:"Node-worklist depth sampled at each fixpoint iteration"
        ~buckets:(Registry.pow2_buckets 18) "pta_solver_worklist_depth";
  }

type node_kind =
  | Var_node of Var_id.t * Ctx.id
  | Fld_node of hobj * Field_id.t
  | Static_fld_node of Field_id.t
  | Throw_node of Meth_id.t * Ctx.id
  | Scope_node

type node = {
  mutable all : Intset.t;
  mutable pending : Intset.t;  (* invariant: disjoint from [all] *)
  mutable queued : bool;
  mutable succs : edge list;
  mutable vcalls : vcall_site list;
  mutable loads : load_trigger list;
  mutable stores : store_trigger list;
}

type t = {
  program : Program.t;
  strategy : Strategy.t;
  hierarchy : Hierarchy.t;
  field_based : bool;
  obs : Observer.t;
      (* every emission is guarded by a physical-equality check against
         [Observer.null]; an unobserved run pays nothing *)
  trace : Trace.t;
      (* span sink under the same null-guard discipline as [obs] *)
  meters : meters;
  mutable solved : bool;
      (* set once the worklists drain; false on a budget abort, so
         clients can refuse to walk a partially-populated supergraph *)
  ctx_store : Ctx.store;
  hctx_store : Ctx.store;
  (* hobj interning *)
  hobj_table : (int * int, hobj) Hashtbl.t;  (* (heap, hctx) -> hobj *)
  hobj_heaps : int Vec.t;
  hobj_hctxs : int Vec.t;
  hobj_types : Type_id.t Vec.t;
  (* supergraph nodes *)
  nodes : node Vec.t;
  var_nodes : (int * int, int) Hashtbl.t;  (* (var, ctx) -> node *)
  fld_nodes : (int * int, int) Hashtbl.t;  (* (hobj, field) -> node *)
  static_fld_nodes : (int, int) Hashtbl.t;  (* static field -> node *)
  throw_nodes : (int * int, int) Hashtbl.t;
      (* (meth, ctx) -> node holding the exceptions escaping the method:
         ThrowPointsTo(meth, ctx) *)
  edge_seen : (int * int * int, unit) Hashtbl.t;  (* (src, dst, filter) *)
  (* worklists *)
  node_queue : int Queue.t;
  meth_queue : (Meth_id.t * Ctx.id) Queue.t;
  (* facts *)
  reachable : (int * int, unit) Hashtbl.t;  (* (meth, ctx) *)
  call_edges : (int * int * int * int, unit) Hashtbl.t;
      (* (invo, caller ctx, meth, callee ctx) *)
  (* memoized context-insensitive projections *)
  mutable ci_vpt : Intset.t array option;
  mutable ci_targets : Meth_id.Set.t Invo_id.Tbl.t option;
  mutable node_kinds : node_kind array option;  (* introspection memo *)
}

(* ------------------------------------------------------------------ *)
(* Interning                                                           *)
(* ------------------------------------------------------------------ *)

(* Interning wrappers that report creation events.  [Ctx.intern] gives no
   created/found signal, so the observed path compares store sizes; the
   unobserved path is the bare intern. *)
let intern_ctx st v =
  if st.obs == Observer.null then Ctx.intern st.ctx_store v
  else begin
    let before = Ctx.size st.ctx_store in
    let id = Ctx.intern st.ctx_store v in
    if Ctx.size st.ctx_store > before then Observer.ctx st.obs;
    id
  end

let intern_hctx st v =
  if st.obs == Observer.null then Ctx.intern st.hctx_store v
  else begin
    let before = Ctx.size st.hctx_store in
    let id = Ctx.intern st.hctx_store v in
    if Ctx.size st.hctx_store > before then Observer.hctx st.obs;
    id
  end

let intern_hobj st heap hctx =
  let key = (Heap_id.to_int heap, hctx) in
  match Hashtbl.find_opt st.hobj_table key with
  | Some h -> h
  | None ->
    Observer.hobj st.obs;
    let h = Vec.push st.hobj_heaps (Heap_id.to_int heap) in
    let (_ : int) = Vec.push st.hobj_hctxs hctx in
    let (_ : int) =
      Vec.push st.hobj_types (Program.heap_info st.program heap).heap_type
    in
    Hashtbl.add st.hobj_table key h;
    h

let fresh_node st =
  Observer.node st.obs;
  Vec.push st.nodes
    {
      all = Intset.empty;
      pending = Intset.empty;
      queued = false;
      succs = [];
      vcalls = [];
      loads = [];
      stores = [];
    }

let var_node st var ctx =
  let key = (Var_id.to_int var, ctx) in
  match Hashtbl.find_opt st.var_nodes key with
  | Some n -> n
  | None ->
    let n = fresh_node st in
    Hashtbl.add st.var_nodes key n;
    n

(* Static fields are global cells: one node each, no context and no base
   object — exactly the treatment the paper calls "a mere engineering
   complexity" orthogonal to context choice. *)
let static_fld_node st field =
  let key = Field_id.to_int field in
  match Hashtbl.find_opt st.static_fld_nodes key with
  | Some n -> n
  | None ->
    let n = fresh_node st in
    Hashtbl.add st.static_fld_nodes key n;
    n

let fld_node st hobj field =
  (* Field-based mode conflates all base objects into one cell per
     field. *)
  let hobj = if st.field_based then -1 else hobj in
  let key = (hobj, Field_id.to_int field) in
  match Hashtbl.find_opt st.fld_nodes key with
  | Some n -> n
  | None ->
    let n = fresh_node st in
    Hashtbl.add st.fld_nodes key n;
    n

let throw_node st meth ctx =
  let key = (Meth_id.to_int meth, ctx) in
  match Hashtbl.find_opt st.throw_nodes key with
  | Some n -> n
  | None ->
    let n = fresh_node st in
    Hashtbl.add st.throw_nodes key n;
    n

(* ------------------------------------------------------------------ *)
(* Difference propagation                                              *)
(* ------------------------------------------------------------------ *)

let push st nid set =
  let n = Vec.get st.nodes nid in
  let fresh = Intset.diff (Intset.diff set n.all) n.pending in
  if not (Intset.is_empty fresh) then begin
    n.pending <- Intset.union n.pending fresh;
    if not n.queued then begin
      n.queued <- true;
      Queue.add nid st.node_queue
    end
  end

let filter_set st set = function
  | None -> set
  | Some f ->
    let compat hobj sup =
      Hierarchy.subtype st.hierarchy ~sub:(Vec.get st.hobj_types hobj) ~sup
    in
    (match f with
    | Compat cast_type -> Intset.filter (fun hobj -> compat hobj cast_type) set
    | Catches { ty; skip } ->
      Intset.filter
        (fun hobj ->
          compat hobj ty && not (List.exists (compat hobj) skip))
        set
    | Escapes tys ->
      Intset.filter (fun hobj -> not (List.exists (compat hobj) tys)) set)

let attach_edge st ~src ~dst ~filter =
  Observer.edge st.obs;
  let n = Vec.get st.nodes src in
  n.succs <- { dst; filter } :: n.succs;
  let existing = Intset.union n.all n.pending in
  if not (Intset.is_empty existing) then
    push st dst (filter_set st existing filter)

let add_edge st ~src ~dst ~filter =
  if src <> dst || filter <> None then begin
    let fkey =
      match filter with
      | None -> -1
      | Some (Compat t) -> Type_id.to_int t
      | Some (Catches _ | Escapes _) ->
        (* Scope edges are wired exactly once per (method, context)
           traversal, onto a node created by that same traversal, so
           they never need deduplication — and must not collide in the
           table. *)
        invalid_arg "add_edge: exception-scope edges use attach_edge"
    in
    let key = (src, dst, fkey) in
    if not (Hashtbl.mem st.edge_seen key) then begin
      Hashtbl.add st.edge_seen key ();
      attach_edge st ~src ~dst ~filter
    end
  end

(* ------------------------------------------------------------------ *)
(* Reachability and call wiring                                        *)
(* ------------------------------------------------------------------ *)

let mark_reachable st meth ctx =
  let key = (Meth_id.to_int meth, ctx) in
  if not (Hashtbl.mem st.reachable key) then begin
    Hashtbl.add st.reachable key ();
    Queue.add (meth, ctx) st.meth_queue
  end

(* Record a call-graph edge; on first discovery wire the parameter and
   return-value assignments (the two InterProcAssign rules) and make the
   callee reachable under the callee context. *)
let wire_call st ~invo ~caller_ctx ~callee ~callee_ctx ~args ~ret_target
    ~exc_target =
  let key = (Invo_id.to_int invo, caller_ctx, Meth_id.to_int callee, callee_ctx) in
  if not (Hashtbl.mem st.call_edges key) then begin
    Hashtbl.add st.call_edges key ();
    mark_reachable st callee callee_ctx;
    let mi = Program.meth_info st.program callee in
    let n_formals = Array.length mi.formals in
    List.iteri
      (fun i actual ->
        if i < n_formals then
          add_edge st
            ~src:(var_node st actual caller_ctx)
            ~dst:(var_node st mi.formals.(i) callee_ctx)
            ~filter:None)
      args;
    (* Exceptions escaping the callee unwind into the call site's
       enclosing scope. *)
    add_edge st ~src:(throw_node st callee callee_ctx) ~dst:exc_target
      ~filter:None;
    match (mi.ret_var, ret_target) with
    | Some from_var, Some to_var ->
      add_edge st
        ~src:(var_node st from_var callee_ctx)
        ~dst:(var_node st to_var caller_ctx)
        ~filter:None
    | _ -> ()
  end

(* The virtual-call rule: one abstract object [hobj] reached the call's
   base variable.  Resolve the target, build the callee context with
   [Merge], bind [this], and wire the edge. *)
let dispatch st (vc : vcall_site) hobj =
  Observer.trigger st.obs;
  let heap = Heap_id.of_int (Vec.get st.hobj_heaps hobj) in
  let receiver_type = Vec.get st.hobj_types hobj in
  match Hierarchy.lookup st.hierarchy receiver_type vc.vc_sig with
  | None -> ()  (* no matching method: dispatch failure, as in Doop *)
  | Some callee ->
    let mi = Program.meth_info st.program callee in
    if not mi.meth_static then begin
      let hctx = Ctx.value st.hctx_store (Vec.get st.hobj_hctxs hobj) in
      let ctx = Ctx.value st.ctx_store vc.vc_ctx in
      let callee_ctx =
        intern_ctx st
          (st.strategy.Strategy.merge ~heap ~hctx ~invo:vc.vc_invo ~ctx)
      in
      (match mi.this_var with
      | Some this -> push st (var_node st this callee_ctx) (Intset.singleton hobj)
      | None -> ());
      wire_call st ~invo:vc.vc_invo ~caller_ctx:vc.vc_ctx ~callee ~callee_ctx
        ~args:vc.vc_args ~ret_target:vc.vc_ret ~exc_target:vc.vc_exc
    end

(* ------------------------------------------------------------------ *)
(* Instruction processing: runs once per reachable (method, context)    *)
(* ------------------------------------------------------------------ *)

let fire_load st trigger hobj =
  Observer.trigger st.obs;
  add_edge st
    ~src:(fld_node st hobj trigger.ld_field)
    ~dst:trigger.ld_target ~filter:None

let fire_store st trigger hobj =
  Observer.trigger st.obs;
  add_edge st ~src:trigger.st_source
    ~dst:(fld_node st hobj trigger.st_field)
    ~filter:None

(* Trigger attachment replays the node's existing objects; when traced,
   each replay is one per-edge-kind complete span (same names as the
   delta-propagation spans in [process_node]). *)
let attach_load st base_node trigger =
  let n = Vec.get st.nodes base_node in
  n.loads <- trigger :: n.loads;
  if Trace.is_null st.trace || Intset.is_empty n.all then
    Intset.iter (fun hobj -> fire_load st trigger hobj) n.all
  else begin
    let t0 = Trace.now_us st.trace in
    Intset.iter (fun hobj -> fire_load st trigger hobj) n.all;
    Trace.complete st.trace
      ~delta:(Intset.cardinal n.all)
      ~cat:"solver" ~name:"load" ~t0_us:t0
      ~dur_us:(Trace.now_us st.trace -. t0)
  end

let attach_store st base_node trigger =
  let n = Vec.get st.nodes base_node in
  n.stores <- trigger :: n.stores;
  if Trace.is_null st.trace || Intset.is_empty n.all then
    Intset.iter (fun hobj -> fire_store st trigger hobj) n.all
  else begin
    let t0 = Trace.now_us st.trace in
    Intset.iter (fun hobj -> fire_store st trigger hobj) n.all;
    Trace.complete st.trace
      ~delta:(Intset.cardinal n.all)
      ~cat:"solver" ~name:"store" ~t0_us:t0
      ~dur_us:(Trace.now_us st.trace -. t0)
  end

let attach_vcall st base_node vc =
  let n = Vec.get st.nodes base_node in
  n.vcalls <- vc :: n.vcalls;
  if Trace.is_null st.trace || Intset.is_empty n.all then
    Intset.iter (fun hobj -> dispatch st vc hobj) n.all
  else begin
    let t0 = Trace.now_us st.trace in
    Intset.iter (fun hobj -> dispatch st vc hobj) n.all;
    Trace.complete st.trace
      ~delta:(Intset.cardinal n.all)
      ~cat:"solver" ~name:"vcall" ~t0_us:t0
      ~dur_us:(Trace.now_us st.trace -. t0)
  end

let rec process_code st ~ctx ~ctx_value ~exc_target code =
  match code with
  | Instr instr -> process_instr st ~ctx ~ctx_value ~exc_target instr
  | Seq cs -> List.iter (process_code st ~ctx ~ctx_value ~exc_target) cs
  | Branch (a, b) ->
    process_code st ~ctx ~ctx_value ~exc_target a;
    process_code st ~ctx ~ctx_value ~exc_target b
  | Loop c -> process_code st ~ctx ~ctx_value ~exc_target c
  | Try (body, handlers) ->
    (* One scope node per (method, context) traversal of this block.
       Objects thrown inside flow to the first compatible handler's
       variable; objects no handler catches escape outward. *)
    let scope = fresh_node st in
    let rec wire skip = function
      | [] ->
        attach_edge st ~src:scope ~dst:exc_target
          ~filter:(Some (Escapes (List.rev skip)))
      | h :: rest ->
        attach_edge st ~src:scope
          ~dst:(var_node st h.catch_var ctx)
          ~filter:(Some (Catches { ty = h.catch_type; skip = List.rev skip }));
        wire (h.catch_type :: skip) rest
    in
    wire [] handlers;
    process_code st ~ctx ~ctx_value ~exc_target:scope body;
    (* Handler bodies run outside the protected region. *)
    List.iter
      (fun h -> process_code st ~ctx ~ctx_value ~exc_target h.handler_body)
      handlers

and process_instr st ~ctx ~ctx_value ~exc_target instr =
  match instr with
  | Alloc { target; heap } ->
    (* The Record rule: allocation in a reachable method. *)
    let hctx =
      intern_hctx st (st.strategy.Strategy.record ~heap ~ctx:ctx_value)
    in
    push st (var_node st target ctx) (Intset.singleton (intern_hobj st heap hctx))
  | Move { target; source } ->
    add_edge st ~src:(var_node st source ctx) ~dst:(var_node st target ctx)
      ~filter:None
  | Cast { target; source; cast_type } ->
    add_edge st ~src:(var_node st source ctx) ~dst:(var_node st target ctx)
      ~filter:(Some (Compat cast_type))
  | Load { target; base; field } ->
    attach_load st (var_node st base ctx)
      { ld_field = field; ld_target = var_node st target ctx }
  | Store { base; field; source } ->
    attach_store st (var_node st base ctx)
      { st_field = field; st_source = var_node st source ctx }
  | Virtual_call { base; signature; invo; args; ret_target } ->
    attach_vcall st (var_node st base ctx)
      {
        vc_invo = invo;
        vc_sig = signature;
        vc_args = args;
        vc_ret = ret_target;
        vc_ctx = ctx;
        vc_exc = exc_target;
      }
  | Static_call { callee; invo; args; ret_target } ->
    (* The MergeStatic rule. *)
    if Trace.is_null st.trace then begin
      let callee_ctx =
        intern_ctx st (st.strategy.Strategy.merge_static ~invo ~ctx:ctx_value)
      in
      wire_call st ~invo ~caller_ctx:ctx ~callee ~callee_ctx ~args ~ret_target
        ~exc_target
    end
    else begin
      let t0 = Trace.now_us st.trace in
      let callee_ctx =
        intern_ctx st (st.strategy.Strategy.merge_static ~invo ~ctx:ctx_value)
      in
      wire_call st ~invo ~caller_ctx:ctx ~callee ~callee_ctx ~args ~ret_target
        ~exc_target;
      Trace.complete st.trace ~delta:1 ~cat:"solver" ~name:"scall" ~t0_us:t0
        ~dur_us:(Trace.now_us st.trace -. t0)
    end
  | Static_load { target; field } ->
    add_edge st ~src:(static_fld_node st field) ~dst:(var_node st target ctx)
      ~filter:None
  | Static_store { field; source } ->
    add_edge st ~src:(var_node st source ctx) ~dst:(static_fld_node st field)
      ~filter:None
  | Throw { source } ->
    add_edge st ~src:(var_node st source ctx) ~dst:exc_target ~filter:None

let process_method st meth ctx =
  let ctx_value = Ctx.value st.ctx_store ctx in
  let mi = Program.meth_info st.program meth in
  process_code st ~ctx ~ctx_value ~exc_target:(throw_node st meth ctx) mi.body

let process_node st nid =
  let n = Vec.get st.nodes nid in
  n.queued <- false;
  let delta = n.pending in
  n.pending <- Intset.empty;
  if not (Intset.is_empty delta) then begin
    if st.obs != Observer.null then
      Observer.delta st.obs (Intset.cardinal delta);
    if not (Registry.is_null st.meters.m_reg) then begin
      let card = Intset.cardinal delta in
      if n.succs <> [] then Registry.add st.meters.prop_move card;
      if n.vcalls <> [] then Registry.add st.meters.prop_vcall card;
      if n.loads <> [] then Registry.add st.meters.prop_load card;
      if n.stores <> [] then Registry.add st.meters.prop_store card
    end;
    n.all <- Intset.union n.all delta;
    if Trace.is_null st.trace then begin
      List.iter
        (fun e -> push st e.dst (filter_set st delta e.filter))
        n.succs;
      List.iter
        (fun vc -> Intset.iter (fun hobj -> dispatch st vc hobj) delta)
        n.vcalls;
      List.iter
        (fun ld -> Intset.iter (fun hobj -> fire_load st ld hobj) delta)
        n.loads;
      List.iter
        (fun stg -> Intset.iter (fun hobj -> fire_store st stg hobj) delta)
        n.stores
    end
    else begin
      (* Traced: one complete span per edge kind with work to do, its
         delta being the objects propagated through that kind. *)
      let card = Intset.cardinal delta in
      let tr = st.trace in
      if n.succs <> [] then begin
        let t0 = Trace.now_us tr in
        List.iter
          (fun e -> push st e.dst (filter_set st delta e.filter))
          n.succs;
        Trace.complete tr ~delta:card ~cat:"solver" ~name:"move" ~t0_us:t0
          ~dur_us:(Trace.now_us tr -. t0)
      end;
      if n.vcalls <> [] then begin
        let t0 = Trace.now_us tr in
        List.iter
          (fun vc -> Intset.iter (fun hobj -> dispatch st vc hobj) delta)
          n.vcalls;
        Trace.complete tr ~delta:card ~cat:"solver" ~name:"vcall" ~t0_us:t0
          ~dur_us:(Trace.now_us tr -. t0)
      end;
      if n.loads <> [] then begin
        let t0 = Trace.now_us tr in
        List.iter
          (fun ld -> Intset.iter (fun hobj -> fire_load st ld hobj) delta)
          n.loads;
        Trace.complete tr ~delta:card ~cat:"solver" ~name:"load" ~t0_us:t0
          ~dur_us:(Trace.now_us tr -. t0)
      end;
      if n.stores <> [] then begin
        let t0 = Trace.now_us tr in
        List.iter
          (fun stg -> Intset.iter (fun hobj -> fire_store st stg hobj) delta)
          n.stores;
        Trace.complete tr ~delta:card ~cat:"solver" ~name:"store" ~t0_us:t0
          ~dur_us:(Trace.now_us tr -. t0)
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

exception Timeout = Budget.Exhausted

module Config = struct
  type t = {
    budget : Budget.t;
    field_based : bool;
    observer : Observer.t;
    trace : Trace.t;
    metrics : Registry.t;
  }

  let default =
    {
      budget = Budget.unlimited ();
      field_based = false;
      observer = Observer.null;
      trace = Trace.null;
      metrics = Registry.null;
    }

  let make ?timeout_s ?(field_based = false) ?(observer = Observer.null)
      ?(trace = Trace.null) ?(metrics = Registry.null) () =
    {
      budget = Budget.of_seconds_opt timeout_s;
      field_based;
      observer;
      trace;
      metrics;
    }
end

type outcome =
  | Complete of t
  | Aborted of t * Budget.abort

(* Final sizes recorded once the worklists drain (or the budget trips):
   the points-to set size distribution over variable nodes, plus engine
   size gauges.  All deterministic for a deterministic program, so a
   metered run's exposition is byte-stable. *)
let record_final_metrics st =
  let reg = st.meters.m_reg in
  if not (Registry.is_null reg) then begin
    let pts =
      Registry.histogram reg
        ~help:"Points-to set sizes over variable nodes at fixpoint"
        ~buckets:(Registry.pow2_buckets 14) "pta_solver_pts_size"
    in
    let vpt = ref 0 in
    Hashtbl.iter
      (fun _ nid ->
        let c = Intset.cardinal (Vec.get st.nodes nid).all in
        vpt := !vpt + c;
        Registry.observe_int pts c)
      st.var_nodes;
    let g name help v =
      Registry.set (Registry.gauge reg ~help name) (float_of_int v)
    in
    g "pta_solver_contexts" "Method contexts interned" (Ctx.size st.ctx_store);
    g "pta_solver_heap_contexts" "Heap contexts interned"
      (Ctx.size st.hctx_store);
    g "pta_solver_hobjs" "Abstract heap objects interned"
      (Vec.length st.hobj_heaps);
    g "pta_solver_nodes" "Supergraph nodes" (Vec.length st.nodes);
    g "pta_solver_sensitive_vpt_size"
      "Paper metric: total context-sensitive var points-to size" !vpt
  end

let solve_outcome ?(config = Config.default) program strategy =
  let obs = config.Config.observer in
  let trace = config.Config.trace in
  let st =
    Observer.phase obs "setup" @@ fun () ->
    Trace.span trace ~cat:"phase" "setup" @@ fun () ->
    let st =
      {
        program;
        strategy;
        hierarchy = Hierarchy.create program;
        field_based = config.Config.field_based;
        obs;
        trace;
        meters = make_meters config.Config.metrics;
        solved = false;
        ctx_store = Ctx.create_store ();
        hctx_store = Ctx.create_store ();
        hobj_table = Hashtbl.create 4096;
        hobj_heaps = Vec.create ();
        hobj_hctxs = Vec.create ();
        hobj_types = Vec.create ();
        nodes = Vec.create ();
        var_nodes = Hashtbl.create 4096;
        fld_nodes = Hashtbl.create 4096;
        static_fld_nodes = Hashtbl.create 64;
        throw_nodes = Hashtbl.create 1024;
        edge_seen = Hashtbl.create 4096;
        node_queue = Queue.create ();
        meth_queue = Queue.create ();
        reachable = Hashtbl.create 1024;
        call_edges = Hashtbl.create 4096;
        ci_vpt = None;
        ci_targets = None;
        node_kinds = None;
      }
    in
    let initial_ctx = Ctx.intern st.ctx_store strategy.Strategy.initial_ctx in
    List.iter
      (fun m -> mark_reachable st m initial_ctx)
      (Program.entries program);
    st
  in
  let budget = config.Config.budget in
  Budget.start budget ~probe:(fun () -> Vec.length st.nodes);
  let fixpoint () =
    Observer.phase obs "fixpoint" @@ fun () ->
    Trace.span trace ~cat:"phase" "fixpoint" @@ fun () ->
    let rec loop () =
      if not (Queue.is_empty st.meth_queue) then begin
        Budget.tick budget;
        Observer.iteration obs;
        let meth, ctx = Queue.pop st.meth_queue in
        process_method st meth ctx;
        loop ()
      end
      else if not (Queue.is_empty st.node_queue) then begin
        Budget.tick budget;
        Observer.iteration obs;
        if not (Registry.is_null st.meters.m_reg) then
          Registry.observe_int st.meters.worklist_depth
            (Queue.length st.node_queue);
        process_node st (Queue.pop st.node_queue);
        loop ()
      end
    in
    loop ()
  in
  match fixpoint () with
  | () ->
    st.solved <- true;
    record_final_metrics st;
    Complete st
  | exception Budget.Exhausted abort ->
    record_final_metrics st;
    Aborted (st, abort)

let solve ?config program strategy =
  match solve_outcome ?config program strategy with
  | Complete st -> st
  | Aborted (_, abort) -> raise (Timeout abort)

let is_complete st = st.solved

let run ?timeout_s ?(field_based = false) program strategy =
  solve
    ~config:
      {
        Config.budget = Budget.of_seconds_opt timeout_s;
        field_based;
        observer = Observer.null;
        trace = Trace.null;
        metrics = Registry.null;
      }
    program strategy

(* ------------------------------------------------------------------ *)
(* Results                                                             *)
(* ------------------------------------------------------------------ *)

let program st = st.program
let strategy st = st.strategy
let hierarchy st = st.hierarchy
let hobj_heap st h = Heap_id.of_int (Vec.get st.hobj_heaps h)
let hobj_hctx st h = Vec.get st.hobj_hctxs h
let hobj_type st h = Vec.get st.hobj_types h
let n_hobjs st = Vec.length st.hobj_heaps
let ctx_value st id = Ctx.value st.ctx_store id
let hctx_value st id = Ctx.value st.hctx_store id
let n_ctxs st = Ctx.size st.ctx_store
let n_hctxs st = Ctx.size st.hctx_store

let iter_var_points_to st f =
  Hashtbl.iter
    (fun (var, ctx) nid -> f (Var_id.of_int var) ctx (Vec.get st.nodes nid).all)
    st.var_nodes

let iter_fld_points_to st f =
  Hashtbl.iter
    (fun (hobj, field) nid ->
      f hobj (Field_id.of_int field) (Vec.get st.nodes nid).all)
    st.fld_nodes

let static_fld_points_to st field =
  match Hashtbl.find_opt st.static_fld_nodes (Field_id.to_int field) with
  | Some n -> (Vec.get st.nodes n).all
  | None -> Intset.empty

let iter_throw_points_to st f =
  Hashtbl.iter
    (fun (meth, ctx) nid -> f (Meth_id.of_int meth) ctx (Vec.get st.nodes nid).all)
    st.throw_nodes

let iter_call_edges st f =
  Hashtbl.iter
    (fun (invo, caller_ctx, meth, callee_ctx) () ->
      f (Invo_id.of_int invo) caller_ctx (Meth_id.of_int meth) callee_ctx)
    st.call_edges

let iter_reachable st f =
  Hashtbl.iter (fun (meth, ctx) () -> f (Meth_id.of_int meth) ctx) st.reachable

let sensitive_vpt_size st =
  Hashtbl.fold
    (fun _ nid acc -> acc + Intset.cardinal (Vec.get st.nodes nid).all)
    st.var_nodes 0

let n_var_nodes st = Hashtbl.length st.var_nodes
let n_reachable_cs st = Hashtbl.length st.reachable
let n_call_edges_cs st = Hashtbl.length st.call_edges

(* ------------------------------------------------------------------ *)
(* Supergraph introspection                                             *)
(* ------------------------------------------------------------------ *)

let n_nodes st = Vec.length st.nodes

let node_kind_table st =
  let kinds = Array.make (Vec.length st.nodes) Scope_node in
  Hashtbl.iter
    (fun (var, ctx) nid -> kinds.(nid) <- Var_node (Var_id.of_int var, ctx))
    st.var_nodes;
  Hashtbl.iter
    (fun (hobj, field) nid -> kinds.(nid) <- Fld_node (hobj, Field_id.of_int field))
    st.fld_nodes;
  Hashtbl.iter
    (fun field nid -> kinds.(nid) <- Static_fld_node (Field_id.of_int field))
    st.static_fld_nodes;
  Hashtbl.iter
    (fun (meth, ctx) nid -> kinds.(nid) <- Throw_node (Meth_id.of_int meth, ctx))
    st.throw_nodes;
  kinds

let node_kind st nid =
  let kinds =
    match st.node_kinds with
    | Some k when Array.length k = Vec.length st.nodes -> k
    | Some _ | None ->
      let k = node_kind_table st in
      st.node_kinds <- Some k;
      k
  in
  kinds.(nid)

let node_points_to st nid = (Vec.get st.nodes nid).all

let node_succs_passing st nid hobj =
  List.filter_map
    (fun e ->
      if Intset.mem hobj (filter_set st (Intset.singleton hobj) e.filter) then
        Some e.dst
      else None)
    (Vec.get st.nodes nid).succs

let var_node_ids st var =
  Hashtbl.fold
    (fun (v, _) nid acc -> if v = Var_id.to_int var then nid :: acc else acc)
    st.var_nodes []

let ci_var_points_to st var =
  let table =
    match st.ci_vpt with
    | Some t -> t
    | None ->
      let t = Array.make (Program.n_vars st.program) Intset.empty in
      Hashtbl.iter
        (fun (v, _) nid ->
          let heaps =
            Intset.fold
              (fun hobj acc -> Intset.add (Vec.get st.hobj_heaps hobj) acc)
              (Vec.get st.nodes nid).all Intset.empty
          in
          t.(v) <- Intset.union t.(v) heaps)
        st.var_nodes;
      st.ci_vpt <- Some t;
      t
  in
  table.(Var_id.to_int var)

let reachable_meths st =
  Hashtbl.fold
    (fun (meth, _) () acc -> Meth_id.Set.add (Meth_id.of_int meth) acc)
    st.reachable Meth_id.Set.empty

let invo_targets_table st =
  match st.ci_targets with
  | Some t -> t
  | None ->
    let t = Invo_id.Tbl.create 1024 in
    Hashtbl.iter
      (fun (invo, _, meth, _) () ->
        let invo = Invo_id.of_int invo in
        let existing =
          Option.value ~default:Meth_id.Set.empty (Invo_id.Tbl.find_opt t invo)
        in
        Invo_id.Tbl.replace t invo
          (Meth_id.Set.add (Meth_id.of_int meth) existing))
      st.call_edges;
    st.ci_targets <- Some t;
    t

let invo_targets st invo =
  Option.value ~default:Meth_id.Set.empty
    (Invo_id.Tbl.find_opt (invo_targets_table st) invo)

let n_call_edges_ci st =
  Invo_id.Tbl.fold
    (fun _ targets acc -> acc + Meth_id.Set.cardinal targets)
    (invo_targets_table st) 0
