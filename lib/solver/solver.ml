module Ir = Pta_ir.Ir
module Vec = Pta_ir.Vec
module Hierarchy = Pta_ir.Hierarchy
module Ctx = Pta_context.Ctx
module Strategy = Pta_context.Strategy
module Shortcut = Pta_context.Shortcut
module Observer = Pta_obs.Observer
module Budget = Pta_obs.Budget
module Trace = Pta_obs.Trace
module Memstats = Pta_obs.Memstats
module Census = Pta_obs.Census
module Registry = Pta_metrics.Registry
open Ir

type hobj = int

(* What an edge lets through.  [Compat] is the cast filter; [Catches] and
   [Escapes] implement exception dispatch on the scope nodes: a handler
   edge passes objects compatible with its catch type but not already
   caught by an earlier handler, and the escape edge passes objects no
   handler catches. *)
type edge_filter =
  | Compat of Type_id.t
  | Catches of { ty : Type_id.t; skip : Type_id.t list }
  | Escapes of Type_id.t list

type edge = {
  dst : int;
  filter : edge_filter option;
}

(* A virtual-call site attached to its base variable's node; fires for
   every abstract object reaching the base. *)
type vcall_site = {
  vc_invo : Invo_id.t;
  vc_sig : Sig_id.t;
  vc_args : Var_id.t list;
  vc_ret : Var_id.t option;
  vc_ctx : Ctx.id;  (* caller context *)
  vc_exc : int;  (* scope node receiving the callee's escaping exceptions *)
  vc_cut : bool;  (* cut-shortcut site: no parameter/return wiring *)
}

type load_trigger = { ld_field : Field_id.t; ld_target : int }
type store_trigger = { st_field : Field_id.t; st_source : int }

type node_id = int

(* Metric handles resolved once at solver construction; the fixpoint
   loop gates every touch on the precomputed [m_live], so an unmetered
   run pays one boolean load per iteration. *)
type meters = {
  m_reg : Registry.t;
  m_live : bool;  (* [not (Registry.is_null m_reg)], hoisted *)
  prop_move : Registry.counter;
  prop_vcall : Registry.counter;
  prop_load : Registry.counter;
  prop_store : Registry.counter;
  worklist_depth : Registry.histogram;
  sccs_collapsed : Registry.counter;
  nodes_unified : Registry.counter;
  redundant_visits : Registry.counter;
  steals : Registry.counter;
  mailbox_deltas : Registry.counter;
  domain_iters0 : Registry.counter;
      (* domain="0" series of the per-domain iteration family; always
         registered so the family is present (at zero) on jobs=1 runs,
         keeping the --stats-json schema independent of the job count.
         Domains >= 1 register their series when the engine starts. *)
}

let make_live_meters reg =
  let prop kind =
    Registry.counter reg
      ~help:"Objects propagated through supergraph edges, by edge kind"
      ~labels:[ ("kind", kind) ]
      "pta_solver_propagated_total"
  in
  {
    m_reg = reg;
    m_live = not (Registry.is_null reg);
    prop_move = prop "move";
    prop_vcall = prop "vcall";
    prop_load = prop "load";
    prop_store = prop "store";
    worklist_depth =
      Registry.histogram reg
        ~help:"Node-worklist depth sampled at each fixpoint iteration"
        ~buckets:(Registry.pow2_buckets 18) "pta_solver_worklist_depth";
    sccs_collapsed =
      Registry.counter reg
        ~help:"Copy-edge strongly connected components collapsed online"
        "pta_solver_sccs_collapsed_total";
    nodes_unified =
      Registry.counter reg
        ~help:"Supergraph nodes absorbed into an SCC representative"
        "pta_solver_nodes_unified_total";
    redundant_visits =
      Registry.counter reg
        ~help:
          "Stale worklist entries skipped because their node was already \
           drained (or unified away) by an earlier visit"
        "pta_solver_redundant_visits_avoided_total";
    steals =
      Registry.counter reg
        ~help:
          "Work-stealing batch grabs between per-domain worklists \
           (parallel drain only; 0 at jobs=1)"
        "pta_solver_steals_total";
    mailbox_deltas =
      Registry.counter reg
        ~help:
          "Cross-partition delta notifications posted to another \
           domain's mailbox (parallel drain only; 0 at jobs=1)"
        "pta_solver_mailbox_deltas_total";
    domain_iters0 =
      Registry.counter reg
        ~help:"Worklist drains performed by each solver domain"
        ~labels:[ ("domain", "0") ]
        "pta_solver_domain_iterations_total";
  }

(* Shared by every unmetered solve: building it once at module init means
   the null path performs no registration calls (and so no bucket-ladder
   or handle allocation) per solver construction. *)
let null_meters = make_live_meters Registry.null

let make_meters reg =
  if Registry.is_null reg then null_meters else make_live_meters reg

type node_kind =
  | Var_node of Var_id.t * Ctx.id
  | Fld_node of hobj * Field_id.t
  | Static_fld_node of Field_id.t
  | Throw_node of Meth_id.t * Ctx.id
  | Scope_node

type node = {
  mutable all : Intset.t;
  mutable pending : Intset.t;  (* invariant: disjoint from [all] *)
  mutable queued : bool;
  mutable prio : int;
      (* pseudo-topological position in the copy subgraph (sources low);
         0 until the first reprioritization pass *)
  mutable succs : edge list;
  mutable vcalls : vcall_site list;
  mutable loads : load_trigger list;
  mutable stores : store_trigger list;
}

(* ------------------------------------------------------------------ *)
(* Parallel drain: per-domain state                                    *)
(* ------------------------------------------------------------------ *)

(* Each worker accumulates into its own cache-private record during a
   phase; the coordinator folds them into the budget / registry / memory
   tracker at the phase barrier, in domain order, so the merged totals
   are independent of interleaving. *)
type par_counters = {
  mutable pc_ticks : int;  (* budget ticks (pops attempted) this phase *)
  mutable pc_processed : int;  (* nodes drained this phase *)
  mutable pc_prop : int;  (* objects pushed through copy/filter edges *)
  mutable pc_steals : int;  (* successful steal batches *)
  mutable pc_sent : int;  (* mailbox notifications posted *)
  mutable pc_peak : int;  (* max sampled major-heap words this phase *)
  mutable pc_mem_countdown : int;
  mutable pc_exn : exn option;  (* worker failure, re-raised at barrier *)
}

type par_engine = {
  pe_ndom : int;
  mutable pe_canon : int array;
      (* node id -> canonical id, frozen at each phase start: workers
         must never call [Unify.find] (path compression is a write) *)
  mutable pe_claims : int Atomic.t array;
      (* per-node spinlocks, indexed by canonical id: every mutation of
         a node record during a phase happens under its claim *)
  pe_queues : Pqueue.t array;  (* per-domain worklists... *)
  pe_qlocks : int Atomic.t array;  (* ...guarded by these spinlocks *)
  pe_mail : int list Atomic.t array array;
      (* pe_mail.(consumer).(producer): single-producer mailboxes; a
         slot is a Treiber-style push list the consumer drains with one
         [Atomic.exchange] at bucket boundaries.  Entries are node ids —
         the delta itself travels through the node record under its
         claim; the mailbox is the wake-up. *)
  pe_outstanding : int Atomic.t;
      (* queued-but-undrained nodes across all domains; 0 = quiescent *)
  pe_abort : bool Atomic.t;
  pe_counters : par_counters array;
  mutable pe_trig : (int * Intset.t) list array;
      (* per-domain buffers of (canonical node, delta) whose trigger
         lists (vcalls/loads/stores) must fire: structure creation is
         coordinator-only, so workers defer triggers to the barrier *)
  pe_iter_meters : Registry.counter array;
}

type t = {
  program : Program.t;
  strategy : Strategy.t;
  hierarchy : Hierarchy.t;
  field_based : bool;
  obs : Observer.t;
      (* every emission is guarded by a physical-equality check against
         [Observer.null]; an unobserved run pays nothing *)
  trace : Trace.t;
      (* span sink under the same null-guard discipline as [obs] *)
  meters : meters;
  mutable solved : bool;
      (* set once the worklists drain; false on a budget abort, so
         clients can refuse to walk a partially-populated supergraph *)
  ctx_store : Ctx.store;
  hctx_store : Ctx.store;
  (* hobj interning *)
  hobj_table : (int * int, hobj) Hashtbl.t;  (* (heap, hctx) -> hobj *)
  hobj_heaps : int Vec.t;
  hobj_hctxs : int Vec.t;
  hobj_types : Type_id.t Vec.t;
  (* supergraph nodes *)
  nodes : node Vec.t;
  var_nodes : (int * int, int) Hashtbl.t;  (* (var, ctx) -> node *)
  fld_nodes : (int * int, int) Hashtbl.t;  (* (hobj, field) -> node *)
  static_fld_nodes : (int, int) Hashtbl.t;  (* static field -> node *)
  throw_nodes : (int * int, int) Hashtbl.t;
      (* (meth, ctx) -> node holding the exceptions escaping the method:
         ThrowPointsTo(meth, ctx) *)
  edge_seen : (int * int * int, unit) Hashtbl.t;
      (* (src, dst, filter), keyed by ids canonical at insertion time *)
  (* cycle elimination: copy-edge SCCs collapse onto one shared [node]
     record; [unify] maps any node id to its class's canonical id *)
  unify : Unify.t;
  mutable copy_edges_since_scc : int;
  mutable copy_edges_total : int;
  mutable scc_threshold : int;
  (* worklists *)
  pq : Pqueue.t;
  meth_queue : (Meth_id.t * Ctx.id) Queue.t;
  (* facts *)
  reachable : (int * int, unit) Hashtbl.t;  (* (meth, ctx) *)
  call_edges : (int * int * int * int, unit) Hashtbl.t;
      (* (invo, caller ctx, meth, callee ctx) *)
  (* memoized context-insensitive projections *)
  mutable ci_vpt : Intset.t array option;
  mutable ci_targets : Meth_id.Set.t Invo_id.Tbl.t option;
  mutable node_kinds : node_kind array option;  (* introspection memo *)
  (* parallel drain *)
  mutable par : par_engine option;  (* built on first multi-domain phase *)
  mutable used_domains : int;  (* domains actually used (1 = sequential) *)
}

(* ------------------------------------------------------------------ *)
(* Interning                                                           *)
(* ------------------------------------------------------------------ *)

(* Interning wrappers that report creation events.  [Ctx.intern] gives no
   created/found signal, so the observed path compares store sizes; the
   unobserved path is the bare intern. *)
let intern_ctx st v =
  if st.obs == Observer.null then Ctx.intern st.ctx_store v
  else begin
    let before = Ctx.size st.ctx_store in
    let id = Ctx.intern st.ctx_store v in
    if Ctx.size st.ctx_store > before then Observer.ctx st.obs;
    id
  end

let intern_hctx st v =
  if st.obs == Observer.null then Ctx.intern st.hctx_store v
  else begin
    let before = Ctx.size st.hctx_store in
    let id = Ctx.intern st.hctx_store v in
    if Ctx.size st.hctx_store > before then Observer.hctx st.obs;
    id
  end

let intern_hobj st heap hctx =
  let key = (Heap_id.to_int heap, hctx) in
  match Hashtbl.find_opt st.hobj_table key with
  | Some h -> h
  | None ->
    Observer.hobj st.obs;
    let h = Vec.push st.hobj_heaps (Heap_id.to_int heap) in
    let (_ : int) = Vec.push st.hobj_hctxs hctx in
    let (_ : int) =
      Vec.push st.hobj_types (Program.heap_info st.program heap).heap_type
    in
    Hashtbl.add st.hobj_table key h;
    h

let fresh_node st =
  Observer.node st.obs;
  let nid =
    Vec.push st.nodes
      {
        all = Intset.empty;
        pending = Intset.empty;
        queued = false;
        prio = 0;
        succs = [];
        vcalls = [];
        loads = [];
        stores = [];
      }
  in
  Unify.ensure st.unify (nid + 1);
  nid

let var_node st var ctx =
  let key = (Var_id.to_int var, ctx) in
  match Hashtbl.find_opt st.var_nodes key with
  | Some n -> n
  | None ->
    let n = fresh_node st in
    Hashtbl.add st.var_nodes key n;
    n

(* Static fields are global cells: one node each, no context and no base
   object — exactly the treatment the paper calls "a mere engineering
   complexity" orthogonal to context choice. *)
let static_fld_node st field =
  let key = Field_id.to_int field in
  match Hashtbl.find_opt st.static_fld_nodes key with
  | Some n -> n
  | None ->
    let n = fresh_node st in
    Hashtbl.add st.static_fld_nodes key n;
    n

let fld_node st hobj field =
  (* Field-based mode conflates all base objects into one cell per
     field. *)
  let hobj = if st.field_based then -1 else hobj in
  let key = (hobj, Field_id.to_int field) in
  match Hashtbl.find_opt st.fld_nodes key with
  | Some n -> n
  | None ->
    let n = fresh_node st in
    Hashtbl.add st.fld_nodes key n;
    n

let throw_node st meth ctx =
  let key = (Meth_id.to_int meth, ctx) in
  match Hashtbl.find_opt st.throw_nodes key with
  | Some n -> n
  | None ->
    let n = fresh_node st in
    Hashtbl.add st.throw_nodes key n;
    n

(* ------------------------------------------------------------------ *)
(* Difference propagation                                              *)
(* ------------------------------------------------------------------ *)

(* Unified nodes share one [node] record (every member's slot in
   [st.nodes] aliases it), so a stale id reaching here still lands on
   the merged state; [Unify.find] is only needed where the {e id} itself
   is semantic (edge keys, SCC traversal, introspection). *)
let push st nid set =
  let n = Vec.get st.nodes nid in
  let fresh = Intset.diff2 set n.all n.pending in
  if not (Intset.is_empty fresh) then begin
    n.pending <- Intset.union n.pending fresh;
    if not n.queued then begin
      n.queued <- true;
      Pqueue.push st.pq ~prio:n.prio nid
    end
  end

let filter_set st set = function
  | None -> set
  | Some f ->
    let compat hobj sup =
      Hierarchy.subtype st.hierarchy ~sub:(Vec.get st.hobj_types hobj) ~sup
    in
    (match f with
    | Compat cast_type -> Intset.filter (fun hobj -> compat hobj cast_type) set
    | Catches { ty; skip } ->
      Intset.filter
        (fun hobj ->
          compat hobj ty && not (List.exists (compat hobj) skip))
        set
    | Escapes tys ->
      Intset.filter (fun hobj -> not (List.exists (compat hobj) tys)) set)

let attach_edge st ~src ~dst ~filter =
  Observer.edge st.obs;
  let n = Vec.get st.nodes src in
  n.succs <- { dst; filter } :: n.succs;
  if filter == None then begin
    st.copy_edges_since_scc <- st.copy_edges_since_scc + 1;
    st.copy_edges_total <- st.copy_edges_total + 1
  end;
  let existing = Intset.union n.all n.pending in
  if not (Intset.is_empty existing) then
    push st dst (filter_set st existing filter)

let add_edge st ~src ~dst ~filter =
  (* Canonical ids make the self-loop check see through unification and
     keep the dedup table from growing one entry per alias.  Keys are
     canonical only as of insertion time — a later collapse can let a
     duplicate through — but propagation is idempotent, so a rare
     duplicate edge costs a little work, never correctness. *)
  let src = Unify.find st.unify src and dst = Unify.find st.unify dst in
  if src <> dst || filter <> None then begin
    let fkey =
      match filter with
      | None -> -1
      | Some (Compat t) -> Type_id.to_int t
      | Some (Catches _ | Escapes _) ->
        (* Scope edges are wired exactly once per (method, context)
           traversal, onto a node created by that same traversal, so
           they never need deduplication — and must not collide in the
           table. *)
        invalid_arg "add_edge: exception-scope edges use attach_edge"
    in
    let key = (src, dst, fkey) in
    if not (Hashtbl.mem st.edge_seen key) then begin
      Hashtbl.add st.edge_seen key ();
      attach_edge st ~src ~dst ~filter
    end
  end

(* ------------------------------------------------------------------ *)
(* Online cycle elimination and reprioritization                       *)
(* ------------------------------------------------------------------ *)

(* Lazy SCC detection in the Nuutila/Pearce tradition, amortized: rather
   than probing on every edge insertion (LCD-style), we run one iterative
   Tarjan pass over the copy (filter=None) subgraph whenever enough new
   copy edges have accumulated — the threshold doubles with the graph, so
   total detection work is O(E log E).  Each multi-node SCC collapses
   onto one shared record: members provably converge to the same set at
   fixpoint, so the class thereafter propagates once instead of churning
   the worklist around the cycle.

   The same pass recomputes a pseudo-topological order of the condensed
   copy DAG (Tarjan completion order reversed: sources first) and rebuilds
   the priority queue, so deltas flow source→sink. *)
let collapse_and_reprioritize st =
  let n = Vec.length st.nodes in
  let unify = st.unify in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp_of = Array.make n (-1) in
  let stack = ref [] in
  let next = ref 0 in
  let n_comps = ref 0 in
  let sccs = ref [] in
  (* Copy successors of a canonical node, canonicalized; self-loops are
     irrelevant to both SCCs and order. *)
  let copy_succs v =
    List.filter_map
      (fun e ->
        match e.filter with
        | None ->
          let w = Unify.find unify e.dst in
          if w = v then None else Some w
        | Some _ -> None)
      (Vec.get st.nodes v).succs
  in
  let strongconnect v =
    index.(v) <- !next;
    lowlink.(v) <- !next;
    incr next;
    stack := v :: !stack;
    on_stack.(v) <- true;
    (* Explicit work stack: (node, unexplored successors). *)
    let work = ref [ (v, copy_succs v) ] in
    while !work <> [] do
      match !work with
      | [] -> ()
      | (v, succs) :: rest -> (
        match succs with
        | w :: ws ->
          work := (v, ws) :: rest;
          if index.(w) = -1 then begin
            index.(w) <- !next;
            lowlink.(w) <- !next;
            incr next;
            stack := w :: !stack;
            on_stack.(w) <- true;
            work := (w, copy_succs w) :: !work
          end
          else if on_stack.(w) then
            lowlink.(v) <- min lowlink.(v) index.(w)
        | [] ->
          work := rest;
          if lowlink.(v) = index.(v) then begin
            (* v roots an SCC: pop members, stamp completion index. *)
            let members = ref [] in
            let continue_pop = ref true in
            while !continue_pop do
              match !stack with
              | w :: tl ->
                stack := tl;
                on_stack.(w) <- false;
                comp_of.(w) <- !n_comps;
                members := w :: !members;
                if w = v then continue_pop := false
              | [] -> assert false
            done;
            incr n_comps;
            (match !members with
            | _ :: _ :: _ -> sccs := !members :: !sccs
            | _ -> ())
          end;
          (match rest with
          | (u, _) :: _ -> lowlink.(u) <- min lowlink.(u) lowlink.(v)
          | [] -> ()))
    done
  in
  for v = 0 to n - 1 do
    if Unify.find unify v = v && index.(v) = -1 then strongconnect v
  done;
  (* Merge each multi-node SCC onto its smallest member. *)
  List.iter
    (fun members ->
      let rep = List.fold_left min max_int members in
      List.iter (fun o -> ignore (Unify.union unify rep o)) members;
      (* The merged set state: what every member already propagated stays
         in [all]; anything only some member had (or had pending) must
         flow through the merged successor list, so it lands in
         [pending].  Idempotent for downstream nodes (push diffs against
         their state). *)
      let inter_all =
        List.fold_left
          (fun acc o -> Intset.inter acc (Vec.get st.nodes o).all)
          (Vec.get st.nodes rep).all members
      in
      let union_reach =
        List.fold_left
          (fun acc o ->
            let r = Vec.get st.nodes o in
            Intset.union acc (Intset.union r.all r.pending))
          Intset.empty members
      in
      let pending = Intset.diff union_reach inter_all in
      let merge_lists f =
        List.fold_left (fun acc o -> List.rev_append (f (Vec.get st.nodes o)) acc)
          [] members
      in
      let succs =
        (* Drop intra-class copy edges — the collapse replaces them. *)
        List.filter
          (fun e -> not (e.filter == None && Unify.find unify e.dst = rep))
          (merge_lists (fun r -> r.succs))
      in
      let merged =
        {
          all = inter_all;
          pending;
          queued = not (Intset.is_empty pending);
          prio = 0;
          succs;
          vcalls = merge_lists (fun r -> r.vcalls);
          loads = merge_lists (fun r -> r.loads);
          stores = merge_lists (fun r -> r.stores);
        }
      in
      List.iter (fun o -> Vec.set st.nodes o merged) members;
      Registry.incr st.meters.sccs_collapsed;
      Registry.add st.meters.nodes_unified (List.length members - 1))
    !sccs;
  (* Canonicalize every alias slot (members of classes merged in earlier
     passes must alias the newest record too), assign pseudo-topological
     priorities, and rebuild the queue with exactly one entry per queued
     class. *)
  let entries_before = Pqueue.length st.pq in
  Pqueue.clear st.pq;
  let nc = !n_comps in
  for i = 0 to n - 1 do
    let r = Unify.find unify i in
    if r <> i then Vec.set st.nodes i (Vec.get st.nodes r)
    else begin
      let node = Vec.get st.nodes i in
      node.prio <- nc - 1 - comp_of.(i);
      if node.queued then Pqueue.push st.pq ~prio:node.prio i
    end
  done;
  (* Entries not re-created were duplicates of a now-unified class (or
     already drained): visits the collapse saved us. *)
  let dropped = entries_before - Pqueue.length st.pq in
  if dropped > 0 then Registry.add st.meters.redundant_visits dropped;
  st.copy_edges_since_scc <- 0;
  st.scc_threshold <- max 512 st.copy_edges_total

(* ------------------------------------------------------------------ *)
(* Reachability and call wiring                                        *)
(* ------------------------------------------------------------------ *)

let mark_reachable st meth ctx =
  let key = (Meth_id.to_int meth, ctx) in
  if not (Hashtbl.mem st.reachable key) then begin
    Hashtbl.add st.reachable key ();
    Queue.add (meth, ctx) st.meth_queue
  end

(* Record a call-graph edge; on first discovery wire the parameter and
   return-value assignments (the two InterProcAssign rules) and make the
   callee reachable under the callee context.  A [cut] site keeps the
   call-graph edge, reachability and exception wiring, but the
   parameter/return flow is replaced by the shortcut items the caller
   applied in its own context (see [apply_shortcut]). *)
let wire_call st ~invo ~caller_ctx ~callee ~callee_ctx ~args ~ret_target
    ~exc_target ~cut =
  let key = (Invo_id.to_int invo, caller_ctx, Meth_id.to_int callee, callee_ctx) in
  if not (Hashtbl.mem st.call_edges key) then begin
    Hashtbl.add st.call_edges key ();
    mark_reachable st callee callee_ctx;
    let mi = Program.meth_info st.program callee in
    let n_formals = Array.length mi.formals in
    if not cut then
      List.iteri
        (fun i actual ->
          if i < n_formals then
            add_edge st
              ~src:(var_node st actual caller_ctx)
              ~dst:(var_node st mi.formals.(i) callee_ctx)
              ~filter:None)
        args;
    (* Exceptions escaping the callee unwind into the call site's
       enclosing scope. *)
    add_edge st ~src:(throw_node st callee callee_ctx) ~dst:exc_target
      ~filter:None;
    if not cut then
      match (mi.ret_var, ret_target) with
      | Some from_var, Some to_var ->
        add_edge st
          ~src:(var_node st from_var callee_ctx)
          ~dst:(var_node st to_var caller_ctx)
          ~filter:None
      | _ -> ()
  end

(* The virtual-call rule: one abstract object [hobj] reached the call's
   base variable.  Resolve the target, build the callee context with
   [Merge], bind [this], and wire the edge. *)
let dispatch st (vc : vcall_site) hobj =
  Observer.trigger st.obs;
  let heap = Heap_id.of_int (Vec.get st.hobj_heaps hobj) in
  let receiver_type = Vec.get st.hobj_types hobj in
  match Hierarchy.lookup st.hierarchy receiver_type vc.vc_sig with
  | None -> ()  (* no matching method: dispatch failure, as in Doop *)
  | Some callee ->
    let mi = Program.meth_info st.program callee in
    if not mi.meth_static then begin
      let hctx = Ctx.value st.hctx_store (Vec.get st.hobj_hctxs hobj) in
      let ctx = Ctx.value st.ctx_store vc.vc_ctx in
      let callee_ctx =
        intern_ctx st
          (st.strategy.Strategy.merge ~heap ~hctx ~invo:vc.vc_invo ~callee ~ctx)
      in
      (match mi.this_var with
      | Some this -> push st (var_node st this callee_ctx) (Intset.singleton hobj)
      | None -> ());
      wire_call st ~invo:vc.vc_invo ~caller_ctx:vc.vc_ctx ~callee ~callee_ctx
        ~args:vc.vc_args ~ret_target:vc.vc_ret ~exc_target:vc.vc_exc
        ~cut:vc.vc_cut
    end

(* ------------------------------------------------------------------ *)
(* Instruction processing: runs once per reachable (method, context)    *)
(* ------------------------------------------------------------------ *)

let fire_load st trigger hobj =
  Observer.trigger st.obs;
  add_edge st
    ~src:(fld_node st hobj trigger.ld_field)
    ~dst:trigger.ld_target ~filter:None

let fire_store st trigger hobj =
  Observer.trigger st.obs;
  add_edge st ~src:trigger.st_source
    ~dst:(fld_node st hobj trigger.st_field)
    ~filter:None

(* Trigger attachment replays the node's existing objects; when traced,
   each replay is one per-edge-kind complete span (same names as the
   delta-propagation spans in [process_node]). *)
let attach_load st base_node trigger =
  let n = Vec.get st.nodes base_node in
  n.loads <- trigger :: n.loads;
  if Trace.is_null st.trace || Intset.is_empty n.all then
    Intset.iter (fun hobj -> fire_load st trigger hobj) n.all
  else begin
    let t0 = Trace.now_us st.trace in
    let a0 = Trace.alloc_mark st.trace in
    Intset.iter (fun hobj -> fire_load st trigger hobj) n.all;
    Trace.complete st.trace ~alloc:a0
      ~delta:(Intset.cardinal n.all)
      ~cat:"solver" ~name:"load" ~t0_us:t0
      ~dur_us:(Trace.now_us st.trace -. t0)
  end

let attach_store st base_node trigger =
  let n = Vec.get st.nodes base_node in
  n.stores <- trigger :: n.stores;
  if Trace.is_null st.trace || Intset.is_empty n.all then
    Intset.iter (fun hobj -> fire_store st trigger hobj) n.all
  else begin
    let t0 = Trace.now_us st.trace in
    let a0 = Trace.alloc_mark st.trace in
    Intset.iter (fun hobj -> fire_store st trigger hobj) n.all;
    Trace.complete st.trace ~alloc:a0
      ~delta:(Intset.cardinal n.all)
      ~cat:"solver" ~name:"store" ~t0_us:t0
      ~dur_us:(Trace.now_us st.trace -. t0)
  end

let attach_vcall st base_node vc =
  let n = Vec.get st.nodes base_node in
  n.vcalls <- vc :: n.vcalls;
  if Trace.is_null st.trace || Intset.is_empty n.all then
    Intset.iter (fun hobj -> dispatch st vc hobj) n.all
  else begin
    let t0 = Trace.now_us st.trace in
    let a0 = Trace.alloc_mark st.trace in
    Intset.iter (fun hobj -> dispatch st vc hobj) n.all;
    Trace.complete st.trace ~alloc:a0
      ~delta:(Intset.cardinal n.all)
      ~cat:"solver" ~name:"vcall" ~t0_us:t0
      ~dur_us:(Trace.now_us st.trace -. t0)
  end

(* Cut-shortcut: the caller-side flows replacing a cut call's
   parameter/return wiring, applied in the caller's own context.  The
   injected edges and triggers are exactly what the equivalent
   move/load/store instructions would produce, which is what keeps the
   two engines fact-identical under shortcut strategies. *)
let shortcut_action st invo =
  match st.strategy.Strategy.shortcut with
  | None -> None
  | Some plan -> Shortcut.action plan invo

let apply_shortcut st ~ctx ~base ~args ~ret_target items =
  let arg_var = function
    | Shortcut.This -> base
    | Shortcut.Param i -> List.nth_opt args i
  in
  List.iter
    (fun item ->
      match item with
      | Shortcut.Copy_ret arg -> (
        match (ret_target, arg_var arg) with
        | Some ret, Some src ->
          add_edge st ~src:(var_node st src ctx) ~dst:(var_node st ret ctx)
            ~filter:None
        | _ -> ())
      | Shortcut.Load_ret field -> (
        match (ret_target, base) with
        | Some ret, Some b ->
          attach_load st (var_node st b ctx)
            { ld_field = field; ld_target = var_node st ret ctx }
        | _ -> ())
      | Shortcut.Store_field (field, arg) -> (
        match (base, arg_var arg) with
        | Some b, Some src ->
          attach_store st (var_node st b ctx)
            { st_field = field; st_source = var_node st src ctx }
        | _ -> ()))
    items

let rec process_code st ~ctx ~ctx_value ~exc_target code =
  match code with
  | Instr instr -> process_instr st ~ctx ~ctx_value ~exc_target instr
  | Seq cs -> List.iter (process_code st ~ctx ~ctx_value ~exc_target) cs
  | Branch (a, b) ->
    process_code st ~ctx ~ctx_value ~exc_target a;
    process_code st ~ctx ~ctx_value ~exc_target b
  | Loop c -> process_code st ~ctx ~ctx_value ~exc_target c
  | Try (body, handlers) ->
    (* One scope node per (method, context) traversal of this block.
       Objects thrown inside flow to the first compatible handler's
       variable; objects no handler catches escape outward. *)
    let scope = fresh_node st in
    let rec wire skip = function
      | [] ->
        attach_edge st ~src:scope ~dst:exc_target
          ~filter:(Some (Escapes (List.rev skip)))
      | h :: rest ->
        attach_edge st ~src:scope
          ~dst:(var_node st h.catch_var ctx)
          ~filter:(Some (Catches { ty = h.catch_type; skip = List.rev skip }));
        wire (h.catch_type :: skip) rest
    in
    wire [] handlers;
    process_code st ~ctx ~ctx_value ~exc_target:scope body;
    (* Handler bodies run outside the protected region. *)
    List.iter
      (fun h -> process_code st ~ctx ~ctx_value ~exc_target h.handler_body)
      handlers

and process_instr st ~ctx ~ctx_value ~exc_target instr =
  match instr with
  | Alloc { target; heap } ->
    (* The Record rule: allocation in a reachable method. *)
    let hctx =
      intern_hctx st (st.strategy.Strategy.record ~heap ~ctx:ctx_value)
    in
    push st (var_node st target ctx) (Intset.singleton (intern_hobj st heap hctx))
  | Move { target; source } ->
    add_edge st ~src:(var_node st source ctx) ~dst:(var_node st target ctx)
      ~filter:None
  | Cast { target; source; cast_type } ->
    add_edge st ~src:(var_node st source ctx) ~dst:(var_node st target ctx)
      ~filter:(Some (Compat cast_type))
  | Load { target; base; field } ->
    attach_load st (var_node st base ctx)
      { ld_field = field; ld_target = var_node st target ctx }
  | Store { base; field; source } ->
    attach_store st (var_node st base ctx)
      { st_field = field; st_source = var_node st source ctx }
  | Virtual_call { base; signature; invo; args; ret_target } ->
    let cut =
      match shortcut_action st invo with
      | Some items ->
        apply_shortcut st ~ctx ~base:(Some base) ~args ~ret_target items;
        true
      | None -> false
    in
    attach_vcall st (var_node st base ctx)
      {
        vc_invo = invo;
        vc_sig = signature;
        vc_args = args;
        vc_ret = ret_target;
        vc_ctx = ctx;
        vc_exc = exc_target;
        vc_cut = cut;
      }
  | Static_call { callee; invo; args; ret_target } ->
    (* The MergeStatic rule. *)
    let cut =
      match shortcut_action st invo with
      | Some items ->
        apply_shortcut st ~ctx ~base:None ~args ~ret_target items;
        true
      | None -> false
    in
    if Trace.is_null st.trace then begin
      let callee_ctx =
        intern_ctx st
          (st.strategy.Strategy.merge_static ~invo ~callee ~ctx:ctx_value)
      in
      wire_call st ~invo ~caller_ctx:ctx ~callee ~callee_ctx ~args ~ret_target
        ~exc_target ~cut
    end
    else begin
      let t0 = Trace.now_us st.trace in
      let a0 = Trace.alloc_mark st.trace in
      let callee_ctx =
        intern_ctx st
          (st.strategy.Strategy.merge_static ~invo ~callee ~ctx:ctx_value)
      in
      wire_call st ~invo ~caller_ctx:ctx ~callee ~callee_ctx ~args ~ret_target
        ~exc_target ~cut;
      Trace.complete st.trace ~alloc:a0 ~delta:1 ~cat:"solver" ~name:"scall"
        ~t0_us:t0
        ~dur_us:(Trace.now_us st.trace -. t0)
    end
  | Static_load { target; field } ->
    add_edge st ~src:(static_fld_node st field) ~dst:(var_node st target ctx)
      ~filter:None
  | Static_store { field; source } ->
    add_edge st ~src:(var_node st source ctx) ~dst:(static_fld_node st field)
      ~filter:None
  | Throw { source } ->
    add_edge st ~src:(var_node st source ctx) ~dst:exc_target ~filter:None

let process_method st meth ctx =
  let ctx_value = Ctx.value st.ctx_store ctx in
  let mi = Program.meth_info st.program meth in
  process_code st ~ctx ~ctx_value ~exc_target:(throw_node st meth ctx) mi.body

let process_node st nid =
  let n = Vec.get st.nodes nid in
  n.queued <- false;
  let delta = n.pending in
  n.pending <- Intset.empty;
  if not (Intset.is_empty delta) then begin
    if st.obs != Observer.null then
      Observer.delta st.obs (Intset.cardinal delta);
    if not (Registry.is_null st.meters.m_reg) then begin
      let card = Intset.cardinal delta in
      if n.succs <> [] then Registry.add st.meters.prop_move card;
      if n.vcalls <> [] then Registry.add st.meters.prop_vcall card;
      if n.loads <> [] then Registry.add st.meters.prop_load card;
      if n.stores <> [] then Registry.add st.meters.prop_store card
    end;
    n.all <- Intset.union n.all delta;
    if Trace.is_null st.trace then begin
      List.iter
        (fun e -> push st e.dst (filter_set st delta e.filter))
        n.succs;
      List.iter
        (fun vc -> Intset.iter (fun hobj -> dispatch st vc hobj) delta)
        n.vcalls;
      List.iter
        (fun ld -> Intset.iter (fun hobj -> fire_load st ld hobj) delta)
        n.loads;
      List.iter
        (fun stg -> Intset.iter (fun hobj -> fire_store st stg hobj) delta)
        n.stores
    end
    else begin
      (* Traced: one complete span per edge kind with work to do, its
         delta being the objects propagated through that kind. *)
      let card = Intset.cardinal delta in
      let tr = st.trace in
      if n.succs <> [] then begin
        let t0 = Trace.now_us tr in
        let a0 = Trace.alloc_mark tr in
        List.iter
          (fun e -> push st e.dst (filter_set st delta e.filter))
          n.succs;
        Trace.complete tr ~alloc:a0 ~delta:card ~cat:"solver" ~name:"move"
          ~t0_us:t0 ~dur_us:(Trace.now_us tr -. t0)
      end;
      if n.vcalls <> [] then begin
        let t0 = Trace.now_us tr in
        let a0 = Trace.alloc_mark tr in
        List.iter
          (fun vc -> Intset.iter (fun hobj -> dispatch st vc hobj) delta)
          n.vcalls;
        Trace.complete tr ~alloc:a0 ~delta:card ~cat:"solver" ~name:"vcall"
          ~t0_us:t0 ~dur_us:(Trace.now_us tr -. t0)
      end;
      if n.loads <> [] then begin
        let t0 = Trace.now_us tr in
        let a0 = Trace.alloc_mark tr in
        List.iter
          (fun ld -> Intset.iter (fun hobj -> fire_load st ld hobj) delta)
          n.loads;
        Trace.complete tr ~alloc:a0 ~delta:card ~cat:"solver" ~name:"load"
          ~t0_us:t0 ~dur_us:(Trace.now_us tr -. t0)
      end;
      if n.stores <> [] then begin
        let t0 = Trace.now_us tr in
        let a0 = Trace.alloc_mark tr in
        List.iter
          (fun stg -> Intset.iter (fun hobj -> fire_store st stg hobj) delta)
          n.stores;
        Trace.complete tr ~alloc:a0 ~delta:card ~cat:"solver" ~name:"store"
          ~t0_us:t0 ~dur_us:(Trace.now_us tr -. t0)
      end
    end
  end

module Config = struct
  type t = {
    budget : Budget.t;
    field_based : bool;
    observer : Observer.t;
    trace : Trace.t;
    metrics : Registry.t;
    mem_tracker : Memstats.tracker option;
    mem_sample_every : int;
    jobs : int;
  }

  let default_mem_sample_every = 1024

  let default =
    {
      budget = Budget.unlimited ();
      field_based = false;
      observer = Observer.null;
      trace = Trace.null;
      metrics = Registry.null;
      mem_tracker = None;
      mem_sample_every = default_mem_sample_every;
      jobs = 1;
    }

  let make ?timeout_s ?(field_based = false) ?(observer = Observer.null)
      ?(trace = Trace.null) ?(metrics = Registry.null) ?mem_tracker
      ?(mem_sample_every = default_mem_sample_every) ?(jobs = 1) () =
    {
      budget = Budget.of_seconds_opt timeout_s;
      field_based;
      observer;
      trace;
      metrics;
      mem_tracker;
      mem_sample_every = max 1 mem_sample_every;
      jobs = max 1 jobs;
    }

  (* The domain count a solve will actually use: [jobs] clamped to 1
     when the build has no domain support (OCaml 4.x — the graceful
     sequential fallback) and to a sanity cap otherwise.  Oversubscribing
     physical cores is allowed: correctness never depends on core count,
     and the differential suite runs jobs=4 on 1-core hosts. *)
  let effective_jobs t =
    if t.jobs <= 1 || not Par.available then 1 else min t.jobs 256
end

(* ------------------------------------------------------------------ *)
(* Parallel drain                                                      *)
(* ------------------------------------------------------------------ *)

(* The multi-domain drain is bulk-synchronous: the coordinator performs
   every structure-creating step sequentially (method processing,
   dispatch, context/object interning, node creation, edge wiring, SCC
   collapse), and the domains drain only the copy/filter-edge closure
   over the frozen supergraph.  One phase:

     seed   — the coordinator distributes the staging worklist [st.pq]
              across per-domain bucketed queues by partition owner;
     drain  — each domain pops its queue lowest-bucket-first, takes the
              node's claim, swaps out its pending delta, merges it into
              [all], and pushes the (filtered) delta to successors:
              locally if it owns them, else into the owner's mailbox.
              Deltas that would fire triggers are buffered per domain.
              Mailboxes are drained at bucket boundaries; empty domains
              steal batches from the top of a victim's priority range;
     flush  — at quiescence the coordinator merges counters (domain
              order), aggregates the buffered trigger deltas per node,
              and fires them in ascending node order — a deterministic
              serialization, so interning is run-to-run reproducible at
              every domain count.

   Facts are identical to the sequential solver's at fixpoint (monotone
   set union is confluent: the closure is schedule-independent), but
   interning {e ids} may differ from the jobs=1 order — clients compare
   rendered facts, never raw ids, across engines.

   During a phase nothing structural moves: no unions (claims index a
   frozen canonicalization), no new nodes or edges, hierarchy memos
   pre-warmed.  The only shared mutable state a worker touches is node
   records under their claims, its own and victims' queues under their
   locks, and the atomics. *)

let spin_lock l =
  while not (Atomic.compare_and_set l 0 1) do
    Par.cpu_relax ()
  done

let spin_unlock l = Atomic.set l 0

let steal_batch_max = 32

let make_par_engine meters ndom =
  {
    pe_ndom = ndom;
    pe_canon = [||];
    pe_claims = [||];
    pe_queues = Array.init ndom (fun _ -> Pqueue.create ());
    pe_qlocks = Array.init ndom (fun _ -> Atomic.make 0);
    pe_mail = Array.init ndom (fun _ -> Array.init ndom (fun _ -> Atomic.make []));
    pe_outstanding = Atomic.make 0;
    pe_abort = Atomic.make false;
    pe_counters =
      Array.init ndom (fun _ ->
          {
            pc_ticks = 0;
            pc_processed = 0;
            pc_prop = 0;
            pc_steals = 0;
            pc_sent = 0;
            pc_peak = 0;
            pc_mem_countdown = 0;
            pc_exn = None;
          });
    pe_trig = Array.make ndom [];
    pe_iter_meters =
      Array.init ndom (fun d ->
          if d = 0 then meters.domain_iters0
          else
            Registry.counter meters.m_reg
              ~help:"Worklist drains performed by each solver domain"
              ~labels:[ ("domain", string_of_int d) ]
              "pta_solver_domain_iterations_total");
  }

(* Partition owner of a canonical node: its SCC-condensation position
   when one has been assigned (node priorities are exactly the condensed
   copy-DAG order from [collapse_and_reprioritize]), falling back to the
   node id for nodes born after the last collapse. *)
let par_owner eng prio cn = (if prio > 0 then prio else cn) mod eng.pe_ndom

(* Worker-side push: the delta lands in the target's record under its
   claim; if the node goes queued we notify its owner (directly into our
   own queue when we are the owner, else through the mailbox pair). *)
let par_push st eng d set nid =
  let cn = eng.pe_canon.(nid) in
  let n = Vec.get st.nodes cn in
  let claim = eng.pe_claims.(cn) in
  spin_lock claim;
  let newly =
    let fresh = Intset.diff2 set n.all n.pending in
    if Intset.is_empty fresh then false
    else begin
      n.pending <- Intset.union n.pending fresh;
      if n.queued then false
      else begin
        n.queued <- true;
        true
      end
    end
  in
  spin_unlock claim;
  if newly then begin
    Atomic.incr eng.pe_outstanding;
    let prio = n.prio in
    let owner = par_owner eng prio cn in
    if owner = d then begin
      spin_lock eng.pe_qlocks.(d);
      Pqueue.push eng.pe_queues.(d) ~prio cn;
      spin_unlock eng.pe_qlocks.(d)
    end
    else begin
      let slot = eng.pe_mail.(owner).(d) in
      let rec post () =
        let old = Atomic.get slot in
        if not (Atomic.compare_and_set slot old (cn :: old)) then post ()
      in
      post ();
      let c = eng.pe_counters.(d) in
      c.pc_sent <- c.pc_sent + 1
    end
  end

(* Drain every producer's mailbox slot into our queue.  Caller holds our
   queue lock; each slot is emptied with one [exchange] (we are its only
   consumer, so nothing is lost). *)
let drain_inbox_locked st eng d =
  let got = ref false in
  let slots = eng.pe_mail.(d) in
  let q = eng.pe_queues.(d) in
  for p = 0 to eng.pe_ndom - 1 do
    if p <> d && Atomic.get slots.(p) != [] then begin
      let l = Atomic.exchange slots.(p) [] in
      List.iter
        (fun cn ->
          got := true;
          Pqueue.push q ~prio:(Vec.get st.nodes cn).prio cn)
        l
    end
  done;
  !got

(* Batch-pop from the first victim with visible work, scanning round-
   robin from our right neighbour.  The unlocked [length] read is a
   hint — the lock is taken before actually stealing. *)
let try_steal eng d =
  let ndom = eng.pe_ndom in
  let got = ref [] in
  let v = ref ((d + 1) mod ndom) in
  while !got == [] && !v <> d do
    if Pqueue.length eng.pe_queues.(!v) > 0 then begin
      spin_lock eng.pe_qlocks.(!v);
      got := Pqueue.steal eng.pe_queues.(!v) ~max:steal_batch_max;
      spin_unlock eng.pe_qlocks.(!v)
    end;
    if !got == [] then v := (!v + 1) mod ndom
  done;
  match !got with
  | [] -> false
  | batch ->
    let c = eng.pe_counters.(d) in
    c.pc_steals <- c.pc_steals + 1;
    spin_lock eng.pe_qlocks.(d);
    List.iter (fun (prio, cn) -> Pqueue.push eng.pe_queues.(d) ~prio cn) batch;
    spin_unlock eng.pe_qlocks.(d);
    true

let par_process st eng d cn =
  let n = Vec.get st.nodes cn in
  let claim = eng.pe_claims.(cn) in
  spin_lock claim;
  let delta = n.pending in
  n.pending <- Intset.empty;
  n.queued <- false;
  n.all <- Intset.union n.all delta;
  spin_unlock claim;
  if not (Intset.is_empty delta) then begin
    if st.meters.m_live && n.succs <> [] then begin
      let c = eng.pe_counters.(d) in
      c.pc_prop <- c.pc_prop + Intset.cardinal delta
    end;
    List.iter
      (fun e -> par_push st eng d (filter_set st delta e.filter) e.dst)
      n.succs;
    if n.vcalls != [] || n.loads != [] || n.stores != [] then
      eng.pe_trig.(d) <- (cn, delta) :: eng.pe_trig.(d)
  end;
  Atomic.decr eng.pe_outstanding

let par_worker st eng config d =
  let c = eng.pe_counters.(d) in
  let q = eng.pe_queues.(d) in
  let qlock = eng.pe_qlocks.(d) in
  let budget = config.Config.budget in
  let mem_every = config.Config.mem_sample_every in
  c.pc_mem_countdown <- mem_every;
  let last_prio = ref (-1) in
  let idle = ref 0 in
  let running = ref true in
  while !running do
    if Atomic.get eng.pe_abort then running := false
    else begin
      spin_lock qlock;
      let task =
        if Pqueue.is_empty q then None
        else begin
          (* Bucket boundary: before moving up to a higher bucket, fold
             in mailbox deltas — they may refill a lower one, keeping
             the source→sink draining order. *)
          if Pqueue.front_prio q > !last_prio then
            ignore (drain_inbox_locked st eng d : bool);
          if Pqueue.is_empty q then None
          else begin
            last_prio := Pqueue.front_prio q;
            Some (Pqueue.pop q)
          end
        end
      in
      spin_unlock qlock;
      match task with
      | Some cn ->
        idle := 0;
        c.pc_ticks <- c.pc_ticks + 1;
        if c.pc_ticks land 0x3FF = 0 && Budget.expired budget then
          Atomic.set eng.pe_abort true
        else begin
          (match config.Config.mem_tracker with
          | None -> ()
          | Some _ ->
            c.pc_mem_countdown <- c.pc_mem_countdown - 1;
            if c.pc_mem_countdown <= 0 then begin
              let h = (Gc.quick_stat ()).Gc.heap_words in
              if h > c.pc_peak then c.pc_peak <- h;
              c.pc_mem_countdown <- mem_every
            end);
          par_process st eng d cn;
          c.pc_processed <- c.pc_processed + 1
        end
      | None ->
        let got =
          spin_lock qlock;
          let g = drain_inbox_locked st eng d in
          spin_unlock qlock;
          g
        in
        if got || try_steal eng d then begin
          last_prio := -1;
          idle := 0
        end
        else if Atomic.get eng.pe_outstanding = 0 then running := false
        else begin
          incr idle;
          (* In-flight work belongs to someone else: spin briefly, then
             yield the core (essential on machines with fewer cores than
             domains, where a spinning waiter starves the worker it is
             waiting for). *)
          if !idle > 64 then Unix.sleepf 5e-5 else Par.cpu_relax ()
        end
    end
  done

let par_worker_safe st eng config d =
  try par_worker st eng config d
  with e ->
    eng.pe_counters.(d).pc_exn <- Some e;
    Atomic.set eng.pe_abort true

(* One bulk-synchronous phase over the staging queue, ending with the
   deterministic trigger flush.  Raises [Budget.Exhausted] (or a worker
   failure) after merging the per-domain accounting. *)
let run_par_phase st eng config =
  let budget = config.Config.budget in
  let n = Vec.length st.nodes in
  (* Freeze the canonicalization: one full [find] sweep (compressing
     every path) here, so workers read a plain immutable-for-the-phase
     array instead of racing on the forest. *)
  if Array.length eng.pe_canon < n then eng.pe_canon <- Array.make n 0;
  for i = 0 to n - 1 do
    eng.pe_canon.(i) <- Unify.find st.unify i
  done;
  if Array.length eng.pe_claims < n then begin
    let old = eng.pe_claims in
    let n_old = Array.length old in
    eng.pe_claims <-
      Array.init
        (max n (2 * n_old))
        (fun i -> if i < n_old then old.(i) else Atomic.make 0)
  end;
  Array.iter
    (fun c ->
      c.pc_ticks <- 0;
      c.pc_processed <- 0;
      c.pc_prop <- 0;
      c.pc_steals <- 0;
      c.pc_sent <- 0;
      c.pc_peak <- 0;
      c.pc_exn <- None)
    eng.pe_counters;
  for d = 0 to eng.pe_ndom - 1 do
    eng.pe_trig.(d) <- []
  done;
  Atomic.set eng.pe_abort false;
  (* Seed the per-domain queues from the staging queue. *)
  let seeded = ref 0 in
  while not (Pqueue.is_empty st.pq) do
    let nid = Pqueue.pop st.pq in
    let cn = eng.pe_canon.(nid) in
    let node = Vec.get st.nodes cn in
    if node.queued then begin
      incr seeded;
      Pqueue.push eng.pe_queues.(par_owner eng node.prio cn) ~prio:node.prio cn
    end
    else Registry.incr st.meters.redundant_visits
  done;
  Atomic.set eng.pe_outstanding !seeded;
  let tr = st.trace in
  let t0 = if Trace.is_null tr then 0. else Trace.now_us tr in
  let a0 = Trace.alloc_mark tr in
  if !seeded > 0 then begin
    let handles =
      Array.init (eng.pe_ndom - 1) (fun i ->
          Par.spawn (fun () -> par_worker_safe st eng config (i + 1)))
    in
    par_worker_safe st eng config 0;
    Array.iter Par.join handles
  end;
  (* Barrier: merge per-domain accounting in domain order. *)
  let total_processed = ref 0 in
  Array.iteri
    (fun d c ->
      total_processed := !total_processed + c.pc_processed;
      Budget.add_ticks budget c.pc_ticks;
      Registry.add eng.pe_iter_meters.(d) c.pc_processed;
      Registry.add st.meters.steals c.pc_steals;
      Registry.add st.meters.mailbox_deltas c.pc_sent;
      Registry.add st.meters.prop_move c.pc_prop;
      match config.Config.mem_tracker with
      | Some t when c.pc_peak > 0 -> Memstats.record_peak t c.pc_peak
      | _ -> ())
    eng.pe_counters;
  if st.obs != Observer.null then
    for _ = 1 to !total_processed do
      Observer.iteration st.obs
    done;
  if not (Trace.is_null tr) then
    Trace.complete tr ~alloc:a0 ~delta:!total_processed ~cat:"solver"
      ~name:"parphase" ~t0_us:t0
      ~dur_us:(Trace.now_us tr -. t0);
  Array.iter
    (fun c -> match c.pc_exn with Some e -> raise e | None -> ())
    eng.pe_counters;
  if Atomic.get eng.pe_abort then Budget.exhaust budget;
  (* Deterministic trigger flush: aggregate each node's buffered deltas
     (their union is the node's total growth this phase — schedule-
     independent at quiescence) and fire in ascending node order, so
     interning order is a pure function of the phase's start state. *)
  let tbl = Hashtbl.create 64 in
  let keys = ref [] in
  Array.iter
    (List.iter (fun (cn, delta) ->
         match Hashtbl.find_opt tbl cn with
         | Some cur -> Hashtbl.replace tbl cn (Intset.union cur delta)
         | None ->
           Hashtbl.add tbl cn delta;
           keys := cn :: !keys))
    eng.pe_trig;
  List.iter
    (fun cn ->
      Budget.tick budget;
      let delta = Hashtbl.find tbl cn in
      let n = Vec.get st.nodes cn in
      if st.obs != Observer.null then
        Observer.delta st.obs (Intset.cardinal delta);
      if st.meters.m_live then begin
        let card = Intset.cardinal delta in
        if n.vcalls <> [] then Registry.add st.meters.prop_vcall card;
        if n.loads <> [] then Registry.add st.meters.prop_load card;
        if n.stores <> [] then Registry.add st.meters.prop_store card
      end;
      List.iter
        (fun vc -> Intset.iter (fun hobj -> dispatch st vc hobj) delta)
        n.vcalls;
      List.iter
        (fun ld -> Intset.iter (fun hobj -> fire_load st ld hobj) delta)
        n.loads;
      List.iter
        (fun stg -> Intset.iter (fun hobj -> fire_store st stg hobj) delta)
        n.stores)
    (List.sort compare !keys)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

exception Timeout = Budget.Exhausted


(* Multi-domain fixpoint: alternate coordinator-sequential structure
   building (method processing, SCC collapse, trigger flush) with
   parallel copy-closure phases until everything drains.  [st.pq] acts
   as the staging queue between phases. *)
let par_fixpoint st (config : Config.t) ndom =
  let budget = config.Config.budget in
  let obs = st.obs in
  (* Pre-fill the lazily-memoized subtype table: edge filters evaluate
     [Hierarchy.subtype] concurrently, which must not write memos. *)
  Hierarchy.warm st.hierarchy;
  let eng = make_par_engine st.meters ndom in
  st.par <- Some eng;
  st.used_domains <- ndom;
  let mem_every = config.Config.mem_sample_every in
  let mem_countdown = ref mem_every in
  let mem_tick () =
    match config.Config.mem_tracker with
    | None -> ()
    | Some t ->
      decr mem_countdown;
      if !mem_countdown <= 0 then begin
        Memstats.sample t;
        mem_countdown := mem_every
      end
  in
  let rec loop () =
    if not (Queue.is_empty st.meth_queue) then begin
      Budget.tick budget;
      Observer.iteration obs;
      mem_tick ();
      let meth, ctx = Queue.pop st.meth_queue in
      process_method st meth ctx;
      loop ()
    end
    else if not (Pqueue.is_empty st.pq) then begin
      Budget.tick budget;
      if st.copy_edges_since_scc >= st.scc_threshold then
        collapse_and_reprioritize st;
      if not (Pqueue.is_empty st.pq) then run_par_phase st eng config;
      loop ()
    end
  in
  loop ()

type outcome =
  | Complete of t
  | Aborted of t * Budget.abort

(* Final sizes recorded once the worklists drain (or the budget trips):
   the points-to set size distribution over variable nodes, plus engine
   size gauges.  All deterministic for a deterministic program, so a
   metered run's exposition is byte-stable. *)
let record_final_metrics st =
  let reg = st.meters.m_reg in
  if not (Registry.is_null reg) then begin
    let pts =
      Registry.histogram reg
        ~help:"Points-to set sizes over variable nodes at fixpoint"
        ~buckets:(Registry.pow2_buckets 14) "pta_solver_pts_size"
    in
    let vpt = ref 0 in
    Hashtbl.iter
      (fun _ nid ->
        let c = Intset.cardinal (Vec.get st.nodes nid).all in
        vpt := !vpt + c;
        Registry.observe_int pts c)
      st.var_nodes;
    let g name help v =
      Registry.set (Registry.gauge reg ~help name) (float_of_int v)
    in
    g "pta_solver_contexts" "Method contexts interned" (Ctx.size st.ctx_store);
    g "pta_solver_heap_contexts" "Heap contexts interned"
      (Ctx.size st.hctx_store);
    g "pta_solver_hobjs" "Abstract heap objects interned"
      (Vec.length st.hobj_heaps);
    g "pta_solver_nodes" "Supergraph nodes" (Vec.length st.nodes);
    g "pta_solver_domains" "Domains used by the worklist drain"
      st.used_domains;
    g "pta_solver_sensitive_vpt_size"
      "Paper metric: total context-sensitive var points-to size" !vpt
  end

(* ------------------------------------------------------------------ *)
(* Reachable-heap census                                               *)
(* ------------------------------------------------------------------ *)

(* Census component order is an ownership order: a block reachable from
   several components is retained by the earliest one listed, so the
   points-to sets come first (they are the cost the paper's Table 1 is
   about), then the supergraph structure, then bookkeeping.  Every root
   below is closure-free data (records, lists, arrays, hashtables), so
   no component accidentally retains captured environments.

   SCC collapse makes unified node ids alias one shared record; roots
   are taken once per canonical id so the unshared view does not count
   a merged class once per member. *)
let census st =
  let n = Vec.length st.nodes in
  let canonical = Array.make (max n 1) false in
  for nid = 0 to n - 1 do
    canonical.(Unify.find st.unify nid) <- true
  done;
  let fold_canonical f acc =
    let acc = ref acc in
    for nid = 0 to n - 1 do
      if canonical.(nid) then acc := f !acc (Vec.get st.nodes nid)
    done;
    !acc
  in
  let sets =
    fold_canonical
      (fun acc nd -> Obj.repr nd.all :: Obj.repr nd.pending :: acc)
      []
  in
  let edges =
    fold_canonical
      (fun acc nd ->
        Obj.repr nd.succs :: Obj.repr nd.vcalls :: Obj.repr nd.loads
        :: Obj.repr nd.stores :: acc)
      []
  in
  let cardinals =
    fold_canonical (fun acc nd -> Intset.cardinal nd.all :: acc) []
  in
  let set_hist =
    Census.hist_of_values ~bounds:(Census.pow2_bounds 14) cardinals
  in
  Census.survey ~set_hist
    [
      ("points-to-sets", sets);
      ("edge-lists", edges);
      ( "node-tables",
        [
          Obj.repr st.nodes;
          Obj.repr st.var_nodes;
          Obj.repr st.fld_nodes;
          Obj.repr st.static_fld_nodes;
          Obj.repr st.throw_nodes;
          Obj.repr st.edge_seen;
        ] );
      ("context-tables", [ Obj.repr st.ctx_store; Obj.repr st.hctx_store ]);
      ( "hobj-tables",
        [
          Obj.repr st.hobj_table;
          Obj.repr st.hobj_heaps;
          Obj.repr st.hobj_hctxs;
          Obj.repr st.hobj_types;
        ] );
      ("unification-forest", [ Obj.repr st.unify ]);
      ("call-graph-facts", [ Obj.repr st.reachable; Obj.repr st.call_edges ]);
      ("worklists", [ Obj.repr st.pq; Obj.repr st.meth_queue ]);
      ( "par-worklists",
        (match st.par with
        | None -> []
        | Some eng ->
          Array.to_list (Array.map Obj.repr eng.pe_queues)
          @ [ Obj.repr eng.pe_canon; Obj.repr eng.pe_claims ]) );
      ( "mailboxes",
        (match st.par with
        | None -> []
        | Some eng -> [ Obj.repr eng.pe_mail ]) );
      ( "memos",
        [
          Obj.repr st.ci_vpt; Obj.repr st.ci_targets; Obj.repr st.node_kinds;
        ] );
    ]

let solve_outcome ?(config = Config.default) program strategy =
  let obs = config.Config.observer in
  let trace = config.Config.trace in
  let st =
    Observer.phase obs "setup" @@ fun () ->
    Trace.span trace ~cat:"phase" "setup" @@ fun () ->
    let st =
      {
        program;
        strategy;
        hierarchy = Hierarchy.create program;
        field_based = config.Config.field_based;
        obs;
        trace;
        meters = make_meters config.Config.metrics;
        solved = false;
        ctx_store = Ctx.create_store ();
        hctx_store = Ctx.create_store ();
        hobj_table = Hashtbl.create 4096;
        hobj_heaps = Vec.create ();
        hobj_hctxs = Vec.create ();
        hobj_types = Vec.create ();
        nodes = Vec.create ();
        var_nodes = Hashtbl.create 4096;
        fld_nodes = Hashtbl.create 4096;
        static_fld_nodes = Hashtbl.create 64;
        throw_nodes = Hashtbl.create 1024;
        edge_seen = Hashtbl.create 4096;
        unify = Unify.create ~capacity:4096 ();
        copy_edges_since_scc = 0;
        copy_edges_total = 0;
        scc_threshold = 512;
        pq = Pqueue.create ();
        meth_queue = Queue.create ();
        reachable = Hashtbl.create 1024;
        call_edges = Hashtbl.create 4096;
        ci_vpt = None;
        ci_targets = None;
        node_kinds = None;
        par = None;
        used_domains = 1;
      }
    in
    let initial_ctx = Ctx.intern st.ctx_store strategy.Strategy.initial_ctx in
    List.iter
      (fun m -> mark_reachable st m initial_ctx)
      (Program.entries program);
    st
  in
  let budget = config.Config.budget in
  Budget.start budget ~probe:(fun () -> Vec.length st.nodes);
  let fixpoint () =
    Observer.phase obs "fixpoint" @@ fun () ->
    Trace.span trace ~cat:"phase" "fixpoint" @@ fun () ->
    let jobs = Config.effective_jobs config in
    if jobs > 1 then par_fixpoint st config jobs
    else begin
    let metered = st.meters.m_live in
    (* Periodic peak-heap sampling: the tracker's [Gc.alarm] only fires
       at major-cycle ends, so a long alarm-free stretch (e.g. one huge
       allocation that never triggers a cycle) would under-report the
       peak.  Gated on iteration count; [None] costs one match per
       iteration. *)
    let mem_every = config.Config.mem_sample_every in
    let mem_countdown = ref mem_every in
    let mem_tick () =
      match config.Config.mem_tracker with
      | None -> ()
      | Some t ->
        decr mem_countdown;
        if !mem_countdown <= 0 then begin
          Memstats.sample t;
          mem_countdown := mem_every
        end
    in
    let rec loop () =
      if not (Queue.is_empty st.meth_queue) then begin
        Budget.tick budget;
        Observer.iteration obs;
        mem_tick ();
        let meth, ctx = Queue.pop st.meth_queue in
        process_method st meth ctx;
        loop ()
      end
      else if not (Pqueue.is_empty st.pq) then begin
        Budget.tick budget;
        Observer.iteration obs;
        mem_tick ();
        if st.copy_edges_since_scc >= st.scc_threshold then
          collapse_and_reprioritize st;
        if not (Pqueue.is_empty st.pq) then begin
          if metered then
            Registry.observe_int st.meters.worklist_depth (Pqueue.length st.pq);
          let nid = Pqueue.pop st.pq in
          if (Vec.get st.nodes nid).queued then process_node st nid
          else if metered then Registry.incr st.meters.redundant_visits
        end;
        loop ()
      end
    in
    loop ()
    end
  in
  match fixpoint () with
  | () ->
    st.solved <- true;
    record_final_metrics st;
    Complete st
  | exception Budget.Exhausted abort ->
    record_final_metrics st;
    Aborted (st, abort)

let solve ?config program strategy =
  match solve_outcome ?config program strategy with
  | Complete st -> st
  | Aborted (_, abort) -> raise (Timeout abort)

let is_complete st = st.solved
let domains_used st = st.used_domains

(* ------------------------------------------------------------------ *)
(* Results                                                             *)
(* ------------------------------------------------------------------ *)

let program st = st.program
let strategy st = st.strategy
let hierarchy st = st.hierarchy
let hobj_heap st h = Heap_id.of_int (Vec.get st.hobj_heaps h)
let hobj_hctx st h = Vec.get st.hobj_hctxs h
let hobj_type st h = Vec.get st.hobj_types h
let n_hobjs st = Vec.length st.hobj_heaps
let ctx_value st id = Ctx.value st.ctx_store id
let hctx_value st id = Ctx.value st.hctx_store id
let n_ctxs st = Ctx.size st.ctx_store
let n_hctxs st = Ctx.size st.hctx_store

let iter_var_points_to st f =
  Hashtbl.iter
    (fun (var, ctx) nid -> f (Var_id.of_int var) ctx (Vec.get st.nodes nid).all)
    st.var_nodes

let iter_fld_points_to st f =
  Hashtbl.iter
    (fun (hobj, field) nid ->
      f hobj (Field_id.of_int field) (Vec.get st.nodes nid).all)
    st.fld_nodes

let static_fld_points_to st field =
  match Hashtbl.find_opt st.static_fld_nodes (Field_id.to_int field) with
  | Some n -> (Vec.get st.nodes n).all
  | None -> Intset.empty

let iter_throw_points_to st f =
  Hashtbl.iter
    (fun (meth, ctx) nid -> f (Meth_id.of_int meth) ctx (Vec.get st.nodes nid).all)
    st.throw_nodes

let iter_call_edges st f =
  Hashtbl.iter
    (fun (invo, caller_ctx, meth, callee_ctx) () ->
      f (Invo_id.of_int invo) caller_ctx (Meth_id.of_int meth) callee_ctx)
    st.call_edges

let iter_reachable st f =
  Hashtbl.iter (fun (meth, ctx) () -> f (Meth_id.of_int meth) ctx) st.reachable

let sensitive_vpt_size st =
  Hashtbl.fold
    (fun _ nid acc -> acc + Intset.cardinal (Vec.get st.nodes nid).all)
    st.var_nodes 0

let n_var_nodes st = Hashtbl.length st.var_nodes
let n_reachable_cs st = Hashtbl.length st.reachable
let n_call_edges_cs st = Hashtbl.length st.call_edges

(* ------------------------------------------------------------------ *)
(* Supergraph introspection                                             *)
(* ------------------------------------------------------------------ *)

let n_nodes st = Vec.length st.nodes
let canonical_node st nid = Unify.find st.unify nid

let node_kind_table st =
  let kinds = Array.make (Vec.length st.nodes) Scope_node in
  Hashtbl.iter
    (fun (var, ctx) nid -> kinds.(nid) <- Var_node (Var_id.of_int var, ctx))
    st.var_nodes;
  Hashtbl.iter
    (fun (hobj, field) nid -> kinds.(nid) <- Fld_node (hobj, Field_id.of_int field))
    st.fld_nodes;
  Hashtbl.iter
    (fun field nid -> kinds.(nid) <- Static_fld_node (Field_id.of_int field))
    st.static_fld_nodes;
  Hashtbl.iter
    (fun (meth, ctx) nid -> kinds.(nid) <- Throw_node (Meth_id.of_int meth, ctx))
    st.throw_nodes;
  kinds

let node_kind st nid =
  let kinds =
    match st.node_kinds with
    | Some k when Array.length k = Vec.length st.nodes -> k
    | Some _ | None ->
      let k = node_kind_table st in
      st.node_kinds <- Some k;
      k
  in
  kinds.(nid)

let node_points_to st nid = (Vec.get st.nodes nid).all

let node_succs_passing st nid hobj =
  List.filter_map
    (fun e ->
      if Intset.mem hobj (filter_set st (Intset.singleton hobj) e.filter) then
        Some e.dst
      else None)
    (Vec.get st.nodes nid).succs

let var_node_ids st var =
  Hashtbl.fold
    (fun (v, _) nid acc -> if v = Var_id.to_int var then nid :: acc else acc)
    st.var_nodes []

let ci_var_points_to st var =
  let table =
    match st.ci_vpt with
    | Some t -> t
    | None ->
      let t = Array.make (Program.n_vars st.program) Intset.empty in
      Hashtbl.iter
        (fun (v, _) nid ->
          let heaps =
            Intset.fold
              (fun hobj acc -> Intset.add (Vec.get st.hobj_heaps hobj) acc)
              (Vec.get st.nodes nid).all Intset.empty
          in
          t.(v) <- Intset.union t.(v) heaps)
        st.var_nodes;
      st.ci_vpt <- Some t;
      t
  in
  table.(Var_id.to_int var)

let reachable_meths st =
  Hashtbl.fold
    (fun (meth, _) () acc -> Meth_id.Set.add (Meth_id.of_int meth) acc)
    st.reachable Meth_id.Set.empty

let invo_targets_table st =
  match st.ci_targets with
  | Some t -> t
  | None ->
    let t = Invo_id.Tbl.create 1024 in
    Hashtbl.iter
      (fun (invo, _, meth, _) () ->
        let invo = Invo_id.of_int invo in
        let existing =
          Option.value ~default:Meth_id.Set.empty (Invo_id.Tbl.find_opt t invo)
        in
        Invo_id.Tbl.replace t invo
          (Meth_id.Set.add (Meth_id.of_int meth) existing))
      st.call_edges;
    st.ci_targets <- Some t;
    t

let invo_targets st invo =
  Option.value ~default:Meth_id.Set.empty
    (Invo_id.Tbl.find_opt (invo_targets_table st) invo)

let n_call_edges_ci st =
  Invo_id.Tbl.fold
    (fun _ targets acc -> acc + Meth_id.Set.cardinal targets)
    (invo_targets_table st) 0
