(* Big-endian Patricia trees for non-negative integers, after Okasaki &
   Gill, "Fast Mergeable Integer Maps".  The representation is canonical:
   equal sets have equal structure, so [equal] could even be [(=)]; we
   still implement it recursively to benefit from physical-equality
   cut-offs, which matter because [union] preserves sharing. *)

type t =
  | Empty
  | Leaf of int
  | Branch of int * int * t * t
      (* Branch (prefix, branching_bit, left, right): [left] holds
         elements whose branching bit is 0, [right] those where it is 1.
         All elements agree with [prefix] above the branching bit. *)

let empty = Empty
let is_empty t = t = Empty

let check_elt i = if i < 0 then invalid_arg "Intset: negative element"

let singleton i =
  check_elt i;
  Leaf i

(* Keep only the bits of [k] strictly above bit [m]. *)
let mask k m = k land lnot ((m lsl 1) - 1)
let match_prefix k p m = mask k m = p
let zero_bit k m = k land m = 0

(* Isolate the highest set bit of [x] by smearing it rightwards. *)
let highest_bit x =
  let x = x lor (x lsr 1) in
  let x = x lor (x lsr 2) in
  let x = x lor (x lsr 4) in
  let x = x lor (x lsr 8) in
  let x = x lor (x lsr 16) in
  let x = x lor (x lsr 32) in
  x - (x lsr 1)

(* Highest bit where [a] and [b] differ. *)
let branching_bit a b = highest_bit (a lxor b)

let join p0 t0 p1 t1 =
  let m = branching_bit p0 p1 in
  if zero_bit p0 m then Branch (mask p0 m, m, t0, t1)
  else Branch (mask p0 m, m, t1, t0)

let rec mem i = function
  | Empty -> false
  | Leaf j -> i = j
  | Branch (p, m, l, r) ->
    if not (match_prefix i p m) then false
    else if zero_bit i m then mem i l
    else mem i r

let rec add i t =
  match t with
  | Empty ->
    check_elt i;
    Leaf i
  | Leaf j ->
    if i = j then t
    else begin
      check_elt i;
      join i (Leaf i) j t
    end
  | Branch (p, m, l, r) ->
    if match_prefix i p m then
      if zero_bit i m then
        let l' = add i l in
        if l' == l then t else Branch (p, m, l', r)
      else
        let r' = add i r in
        if r' == r then t else Branch (p, m, l, r')
    else begin
      check_elt i;
      join i (Leaf i) p t
    end

let branch p m l r =
  match (l, r) with
  | Empty, t | t, Empty -> t
  | _ -> Branch (p, m, l, r)

let rec remove i t =
  match t with
  | Empty -> Empty
  | Leaf j -> if i = j then Empty else t
  | Branch (p, m, l, r) ->
    if not (match_prefix i p m) then t
    else if zero_bit i m then
      let l' = remove i l in
      if l' == l then t else branch p m l' r
    else
      let r' = remove i r in
      if r' == r then t else branch p m l r'

let rec union s t =
  if s == t then s
  else
    match (s, t) with
    | Empty, u | u, Empty -> u
    | Leaf i, u -> add i u
    | u, Leaf i -> add i u
    | Branch (p, m, sl, sr), Branch (q, n, tl, tr) ->
      if m = n && p = q then begin
        let l = union sl tl and r = union sr tr in
        if l == sl && r == sr then s else Branch (p, m, l, r)
      end
      else if m > n && match_prefix q p m then
        if zero_bit q m then
          let l = union sl t in
          if l == sl then s else Branch (p, m, l, sr)
        else
          let r = union sr t in
          if r == sr then s else Branch (p, m, sl, r)
      else if m < n && match_prefix p q n then
        if zero_bit p n then Branch (q, n, union s tl, tr)
        else Branch (q, n, tl, union s tr)
      else join p s q t

(* [union_stats s t] is [union s t] paired with whether the result is a
   strict superset of [s] — i.e. whether [t] contributed any element.
   The no-growth path always returns [s] itself (physically), so callers
   that would otherwise follow a [union] with [cardinal]/[equal] get the
   answer for free and keep maximal structural sharing. *)
let rec union_stats s t =
  if s == t then (s, false)
  else
    match (s, t) with
    | u, Empty -> (u, false)
    | Empty, u -> (u, true)  (* canonical: a non-Empty [u] is non-empty *)
    | u, Leaf i -> if mem i u then (u, false) else (add i u, true)
    | Leaf i, u -> (
      match u with
      | Leaf j when i = j -> (s, false)
      | _ -> (add i u, true))
    | Branch (p, m, sl, sr), Branch (q, n, tl, tr) ->
      if m = n && p = q then begin
        let l, gl = union_stats sl tl in
        let r, gr = union_stats sr tr in
        if l == sl && r == sr then (s, gl || gr)
        else (Branch (p, m, l, r), gl || gr)
      end
      else if m > n && match_prefix q p m then
        if zero_bit q m then
          let l, g = union_stats sl t in
          ((if l == sl then s else Branch (p, m, l, sr)), g)
        else
          let r, g = union_stats sr t in
          ((if r == sr then s else Branch (p, m, sl, r)), g)
      else if m < n && match_prefix p q n then
        (* [t] spans strictly more prefix bits than [s], so [t] holds
           elements outside [s]'s span: the union always grows. *)
        ( (if zero_bit p n then Branch (q, n, union s tl, tr)
           else Branch (q, n, tl, union s tr)),
          true )
      else (join p s q t, true)

let rec inter s t =
  if s == t then s
  else
    match (s, t) with
    | Empty, _ | _, Empty -> Empty
    | Leaf i, u -> if mem i u then s else Empty
    | u, Leaf i -> if mem i u then t else Empty
    | Branch (p, m, sl, sr), Branch (q, n, tl, tr) ->
      if m = n && p = q then branch p m (inter sl tl) (inter sr tr)
      else if m > n && match_prefix q p m then
        inter (if zero_bit q m then sl else sr) t
      else if m < n && match_prefix p q n then
        inter s (if zero_bit p n then tl else tr)
      else Empty

let rec diff s t =
  if s == t then Empty
  else
    match (s, t) with
    | Empty, _ -> Empty
    | u, Empty -> u
    | Leaf i, u -> if mem i u then Empty else s
    | u, Leaf i -> remove i u
    | Branch (p, m, sl, sr), Branch (q, n, tl, tr) ->
      if m = n && p = q then begin
        let l = diff sl tl and r = diff sr tr in
        if l == sl && r == sr then s else branch p m l r
      end
      else if m > n && match_prefix q p m then
        if zero_bit q m then
          let l = diff sl t in
          if l == sl then s else branch p m l sr
        else
          let r = diff sr t in
          if r == sr then s else branch p m sl r
      else if m < n && match_prefix p q n then
        diff s (if zero_bit p n then tl else tr)
      else s

(* The half of [t] relevant to each child of a Branch with prefix [p] and
   branching bit [m]: elements of [t] under (p, m) split by bit [m].
   Returns subtrees of [t] — no elements are copied. *)
let rec split_under p m t =
  match t with
  | Empty -> (Empty, Empty)
  | Leaf i ->
    if not (match_prefix i p m) then (Empty, Empty)
    else if zero_bit i m then (t, Empty)
    else (Empty, t)
  | Branch (q, n, tl, tr) ->
    if n > m then
      (* [t] spans wider: the whole (p, m) range lies inside one child of
         [t]; descend that child. *)
      if match_prefix p q n then
        split_under p m (if zero_bit p n then tl else tr)
      else (Empty, Empty)
    else if n = m && q = p then (tl, tr)
    else if
      (* [n <= m], prefixes disagreeing at or above [m] never overlap. *)
      match_prefix q p m
    then if zero_bit q m then (t, Empty) else (Empty, t)
    else (Empty, Empty)

(* [diff2 s a b] = [diff (diff s a) b] in one pass over [s], without
   materializing the intermediate tree — the solver's delta path
   ([fresh = incoming \ all \ pending]) runs through here. *)
let rec diff2 s a b =
  if s == a || s == b then Empty
  else
    match s with
    | Empty -> Empty
    | Leaf i -> if mem i a || mem i b then Empty else s
    | Branch (p, m, sl, sr) -> (
      match (a, b) with
      | Empty, Empty -> s
      | Empty, t | t, Empty -> diff s t
      | _ ->
        let al, ar = split_under p m a in
        let bl, br = split_under p m b in
        let l = diff2 sl al bl in
        let r = diff2 sr ar br in
        if l == sl && r == sr then s else branch p m l r)

let rec cardinal = function
  | Empty -> 0
  | Leaf _ -> 1
  | Branch (_, _, l, r) -> cardinal l + cardinal r

let rec subset s t =
  s == t
  ||
  match (s, t) with
  | Empty, _ -> true
  | _, Empty -> false
  | Leaf i, u -> mem i u
  | Branch _, Leaf _ -> false
  | Branch (p, m, sl, sr), Branch (q, n, tl, tr) ->
    if m = n && p = q then subset sl tl && subset sr tr
    else if m < n && match_prefix p q n then
      subset s (if zero_bit p n then tl else tr)
    else false

let rec equal s t =
  s == t
  ||
  match (s, t) with
  | Empty, Empty -> true
  | Leaf i, Leaf j -> i = j
  | Branch (p, m, sl, sr), Branch (q, n, tl, tr) ->
    p = q && m = n && equal sl tl && equal sr tr
  | (Empty | Leaf _ | Branch _), _ -> false

let rec iter f = function
  | Empty -> ()
  | Leaf i -> f i
  | Branch (_, _, l, r) ->
    iter f l;
    iter f r

let rec fold f t acc =
  match t with
  | Empty -> acc
  | Leaf i -> f i acc
  | Branch (_, _, l, r) -> fold f r (fold f l acc)

let rec exists p = function
  | Empty -> false
  | Leaf i -> p i
  | Branch (_, _, l, r) -> exists p l || exists p r

let rec for_all p = function
  | Empty -> true
  | Leaf i -> p i
  | Branch (_, _, l, r) -> for_all p l && for_all p r

let filter p t = fold (fun i acc -> if p i then add i acc else acc) t Empty
let elements t = List.rev (fold (fun i acc -> i :: acc) t [])
let of_list l = List.fold_left (fun acc i -> add i acc) Empty l

let rec choose_opt = function
  | Empty -> None
  | Leaf i -> Some i
  | Branch (_, _, l, _) -> choose_opt l
