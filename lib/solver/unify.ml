(* Union-find with union-by-rank and path halving.  The canonical id of
   a class is its smallest member — kept in [min_id] at the root — so
   canonicalization is deterministic under any union order, which the
   solver needs for reproducible node numbering (results and metrics
   must not depend on when a cycle happened to be detected). *)

type t = {
  mutable parent : int array;  (* parent.(i) = i at roots *)
  mutable rank : int array;  (* valid at roots *)
  mutable min_id : int array;  (* smallest class member; valid at roots *)
  mutable n : int;  (* ids [0, n) are live *)
  mutable merged : int;
}

let create ?(capacity = 1024) () =
  let capacity = max capacity 1 in
  {
    parent = Array.make capacity 0;
    rank = Array.make capacity 0;
    min_id = Array.make capacity 0;
    n = 0;
    merged = 0;
  }

let length t = t.n

let ensure t n =
  if n > t.n then begin
    let cap = Array.length t.parent in
    if n > cap then begin
      let cap' = max n (2 * cap) in
      let grow a = Array.append a (Array.make (cap' - cap) 0) in
      t.parent <- grow t.parent;
      t.rank <- grow t.rank;
      t.min_id <- grow t.min_id
    end;
    for i = t.n to n - 1 do
      t.parent.(i) <- i;
      t.rank.(i) <- 0;
      t.min_id.(i) <- i
    done;
    t.n <- n
  end

(* Path halving: point each visited node at its grandparent. *)
let rec root t i =
  let p = t.parent.(i) in
  if p = i then i
  else begin
    let g = t.parent.(p) in
    t.parent.(i) <- g;
    root t g
  end

let find t i = t.min_id.(root t i)
let same t a b = root t a = root t b

let union t a b =
  let ra = root t a and rb = root t b in
  if ra = rb then t.min_id.(ra)
  else begin
    t.merged <- t.merged + 1;
    let m = min t.min_id.(ra) t.min_id.(rb) in
    if t.rank.(ra) < t.rank.(rb) then begin
      t.parent.(ra) <- rb;
      t.min_id.(rb) <- m
    end
    else begin
      t.parent.(rb) <- ra;
      t.min_id.(ra) <- m;
      if t.rank.(ra) = t.rank.(rb) then t.rank.(ra) <- t.rank.(ra) + 1
    end;
    m
  end

let n_merged t = t.merged

let depth t i =
  let rec go i acc = if t.parent.(i) = i then acc else go t.parent.(i) (acc + 1) in
  go i 0
