(** Span-based tracing and profiling for the analysis engines.

    A trace sink collects begin/end spans, complete (pre-timed) spans,
    instant events and counter samples into a growable ring buffer, and
    exports them as Chrome trace-event JSON — the format Perfetto
    ([ui.perfetto.dev]) and [chrome://tracing] load directly.

    The sink follows the same zero-cost discipline as
    {!Observer}: every emitter is guarded by a physical-equality check
    against {!null}, so an untraced run reads no clocks and allocates
    nothing.  Timestamps come from a per-sink epoch and are clamped to
    be monotone non-decreasing, so spans never appear to end before
    they begin even if the wall clock steps backwards.

    Alongside the event timeline the sink keeps {e exact} per-name
    aggregates (event count, cumulative time, cumulative delta) updated
    on every span completion.  The ring buffer may drop its oldest
    events once full ({!dropped} tells how many); the aggregates never
    lose anything, so {!profile} stays accurate on arbitrarily long
    runs — this is what the hot-rule tables are built from.

    Category conventions used by the engines:
    - ["phase"]  — coarse structure: solver/datalog [setup], [fixpoint],
      per-round spans;
    - ["rule"]   — one Datalog rule evaluation (complete span; [delta] =
      facts it derived);
    - ["solver"] — one native-solver propagation batch, named by edge
      kind ([move], [load], [store], [vcall], [scall]; [delta] = objects
      propagated);
    - ["gauge"]  — precision counters sampled at fixpoint (Table-1
      metric names). *)

type t

val null : t
(** The no-op sink; compared against {e physically}. *)

val is_null : t -> bool

val create : ?limit:int -> ?alloc:bool -> unit -> t
(** A fresh sink whose ring buffer retains at most [limit] events
    (default [262144]); beyond that the oldest events are overwritten
    and counted by {!dropped}.  Aggregates are unaffected by drops.

    [alloc] (default [false]) turns on span-scoped allocation
    accounting: every [begin_span]/[end_span] pair additionally captures
    a GC-counter delta (minor/promoted/major allocated words) into the
    span's aggregate and into the Chrome-trace args of its closing
    event.  The minor component reads [Gc.minor_words] — the allocation
    pointer, exact even when no minor collection ran inside the span.
    Caller-timed {!complete} spans participate by passing an
    {!alloc_mark}.  Reading GC counters itself perturbs nothing, but an
    alloc-enabled sink is for profiling runs: it reads the counters
    twice per span. *)

val alloc_enabled : t -> bool

type alloc_mark
(** A GC-counter reading taken at span begin.  On a sink without
    allocation accounting (and on {!null}) {!alloc_mark} returns a
    shared static mark that makes every later accounting step a no-op,
    so guarded hot paths stay allocation-free. *)

val alloc_mark : t -> alloc_mark

val now_us : t -> float
(** Microseconds since the sink's epoch, clamped monotone.  Only for
    call sites that time a region themselves before calling
    {!complete}; guarded call sites must not read it on {!null}. *)

(** {1 Emitters}

    All no-ops (a single pointer comparison) on {!null}. *)

val begin_span : t -> cat:string -> string -> unit
val end_span : ?delta:int -> t -> unit
(** Close the innermost open span.  [delta] accumulates into the span
    name's aggregate (e.g. facts derived).  Ignored if no span is
    open. *)

val span : t -> cat:string -> string -> (unit -> 'a) -> 'a
(** [span t ~cat name f] runs [f ()] inside a [begin_span]/[end_span]
    pair; the span is closed even if [f] raises.  On {!null} this is
    exactly [f ()]. *)

val complete :
  ?delta:int -> ?alloc:alloc_mark -> t -> cat:string -> name:string ->
  t0_us:float -> dur_us:float -> unit
(** A span timed by the caller (one ["X"] trace event).  For hot paths
    that avoid closure allocation: guard on {!is_null}, read {!now_us}
    twice, then report.  Pass the {!alloc_mark} taken before the region
    to attach its allocation delta; the mark from an accounting-off sink
    degrades to a no-op. *)

val instant : t -> cat:string -> string -> unit
val counter : t -> cat:string -> string -> float -> unit
(** A sampled value; rendered by trace viewers as a counter track. *)

(** {1 Aggregates} *)

type stat = {
  stat_cat : string;
  stat_name : string;
  events : int;  (** completed spans with this (cat, name) *)
  delta : int;  (** cumulative [delta] across them *)
  seconds : float;  (** cumulative time across them *)
  minor_words : float;  (** cumulative minor-heap allocation, if captured *)
  promoted_words : float;  (** cumulative minor-to-major promotion *)
  major_words : float;  (** cumulative major-heap allocation *)
}

val stat_alloc_words : stat -> float
(** Fresh words allocated: [minor + major - promoted] (promotions would
    otherwise be counted on both sides). *)

val profile : t -> stat list
(** Per-(category, name) aggregates over {e all} spans ever completed
    (drops included), sorted by cumulative time, largest first. *)

val n_events : t -> int
(** Events currently retained in the ring. *)

val dropped : t -> int
(** Events evicted by the ring since creation. *)

(** {1 Export} *)

val to_chrome_json : t -> Json.t
(** The retained events as a Chrome trace-event JSON array (oldest
    first): objects with ["name"], ["cat"], ["ph"] (["B"]/["E"]/["X"]/
    ["i"]/["C"]), ["ts"]/["dur"] in microseconds, ["pid"]/["tid"], and
    ["args"] carrying [delta] or counter values.  Load the serialized
    form in Perfetto or [chrome://tracing]. *)
