type t = {
  epoch : float;
  mutable last_us : float;  (* monotone clamp *)
}

let create () = { epoch = Unix.gettimeofday (); last_us = 0. }

let now_us t =
  let us = (Unix.gettimeofday () -. t.epoch) *. 1e6 in
  if us > t.last_us then begin
    t.last_us <- us;
    us
  end
  else t.last_us

let elapsed_s t = now_us t /. 1e6

let timed f =
  let c = create () in
  let v = f () in
  (v, elapsed_s c)
