(** GC / memory profiling for the analysis engines.

    Snapshots of the OCaml GC counters ([Gc.quick_stat] — no heap
    traversal, cheap enough to take around every phase), deltas between
    two snapshots, and a [Gc.alarm]-based tracker that records the
    major-heap peak {e during} a run.  The peak matters because
    [top_heap_words] is a process-global high-water mark: it never
    resets, so in a harness running many cells in one process only an
    alarm sampled per cell attributes the peak to the right cell.

    Word counts are per-process and deterministic for a deterministic
    program, so they diff cleanly across runs of the same binary; only
    wall-clock readings (which live elsewhere) are not. *)

type snapshot = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  heap_words : int;
  top_heap_words : int;
}

val snapshot : unit -> snapshot

type delta = {
  minor_allocated_words : float;  (** words allocated in the minor heap *)
  promoted_delta_words : float;  (** words promoted minor -> major *)
  major_allocated_words : float;
      (** words allocated in the major heap, including promotions *)
  minor_collections_delta : int;
  major_collections_delta : int;
  compactions_delta : int;
  heap_words_after : int;  (** major heap size at the end snapshot *)
  peak_heap_words : int;
      (** major-heap peak over the interval when tracked; otherwise
          [heap_words_after] *)
}

val diff : ?peak:int -> before:snapshot -> after:snapshot -> unit -> delta
(** [peak] is clamped up to at least the heap size at both endpoints —
    a sampled peak can lag (no alarm fired in the interval) but never
    legitimately undercut what the endpoints saw. *)

(** {1 Peak tracking} *)

type tracker

val start_tracking : unit -> tracker
(** Take the "before" snapshot and install a [Gc.alarm] that samples
    the major heap size at the end of every major collection. *)

val sample : tracker -> unit
(** Fold the current heap size into the peak (for long alarm-free
    stretches). *)

val record_peak : tracker -> int -> unit
(** Fold an externally-sampled heap size (in words) into the peak.  The
    parallel solver has each domain sample [Gc.quick_stat] into a local
    maximum and folds the max across domains in here at the phase
    barrier — the tracker itself is not safe to [sample] concurrently. *)

val finish : tracker -> delta
(** Remove the alarm and return the interval's delta, peak included. *)

val tracked : (unit -> 'a) -> 'a * delta
(** [tracked f] runs [f] under a tracker.  If [f] raises, the alarm is
    removed and the exception re-raised. *)

(** {1 Serialisation} *)

val to_json : delta -> Json.t
val of_json : Json.t -> (delta, string) result
val pp : Format.formatter -> delta -> unit
