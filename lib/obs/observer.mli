(** Event hooks on the analysis engines.

    An observer is a record of callbacks the engines invoke as they run:
    worklist iteration ticks, supergraph node / edge creation, context
    and abstract-object interning, trigger firings, processed delta
    sizes, and phase timings.

    Instrumentation is {e zero-cost when no observer is installed}: the
    emit helpers below (and the engines' own hot paths) guard every
    callback behind a physical-equality check against {!null}, so an
    unobserved run executes the exact instruction sequence it did before
    this layer existed — no clock reads, no closure calls. *)

type t = {
  on_iteration : unit -> unit;  (** one worklist / fixpoint-round tick *)
  on_node : unit -> unit;  (** a supergraph node was created *)
  on_edge : unit -> unit;  (** a flow edge was added *)
  on_ctx : unit -> unit;  (** a new method context was interned *)
  on_hctx : unit -> unit;  (** a new heap context was interned *)
  on_hobj : unit -> unit;  (** a new abstract object was interned *)
  on_trigger : unit -> unit;
      (** a vcall / load / store trigger fired for one object *)
  on_delta : int -> unit;  (** size of a processed propagation delta *)
  on_phase : string -> float -> unit;  (** a named phase took [s] seconds *)
}

val null : t
(** The no-op observer; compared against {e physically}. *)

val is_null : t -> bool

val make :
  ?on_iteration:(unit -> unit) ->
  ?on_node:(unit -> unit) ->
  ?on_edge:(unit -> unit) ->
  ?on_ctx:(unit -> unit) ->
  ?on_hctx:(unit -> unit) ->
  ?on_hobj:(unit -> unit) ->
  ?on_trigger:(unit -> unit) ->
  ?on_delta:(int -> unit) ->
  ?on_phase:(string -> float -> unit) ->
  unit ->
  t
(** An observer with the given hooks; omitted hooks do nothing. *)

val tee : t -> t -> t
(** Both observers receive every event ([null] operands collapse). *)

(** {1 Guarded emitters}

    One-liners for engine call sites; each is a no-op (a single pointer
    comparison) on {!null}. *)

val iteration : t -> unit
val node : t -> unit
val edge : t -> unit
val ctx : t -> unit
val hctx : t -> unit
val hobj : t -> unit
val trigger : t -> unit
val delta : t -> int -> unit

val phase : t -> string -> (unit -> 'a) -> 'a
(** [phase obs name f] runs [f ()]; with an observer installed it also
    times the call and reports it via [on_phase].  No clock is read on
    {!null}. *)
