type abort = {
  elapsed_s : float;
  iterations : int;
  nodes : int;
}

exception Exhausted of abort

type t = {
  timeout_s : float option;
  mutable deadline : float;  (* vs the clock's elapsed_s; infinity = none *)
  mutable clock : Clock.t;
  mutable ticks : int;
  mutable cancelled : bool;
  mutable probe : unit -> int;
}

(* Poll the clock every [mask + 1] ticks; cancellation is checked on
   every tick regardless. *)
let mask = 0xFFF

let make timeout_s =
  {
    timeout_s;
    deadline = infinity;
    clock = Clock.create ();
    ticks = 0;
    cancelled = false;
    probe = (fun () -> 0);
  }

let unlimited () = make None
let of_seconds s = make (Some s)
let of_seconds_opt = make

let start b ~probe =
  b.clock <- Clock.create ();
  b.deadline <- (match b.timeout_s with Some s -> s | None -> infinity);
  b.ticks <- 0;
  b.cancelled <- false;
  b.probe <- probe

let elapsed_s b = Clock.elapsed_s b.clock
let iterations b = b.ticks

let abort_info b =
  { elapsed_s = elapsed_s b; iterations = b.ticks; nodes = b.probe () }

let exhaust b = raise (Exhausted (abort_info b))

let tick b =
  if b.cancelled then exhaust b;
  let n = b.ticks + 1 in
  b.ticks <- n;
  if
    b.deadline < infinity && n land mask = 0
    && Clock.elapsed_s b.clock > b.deadline
  then exhaust b

let check b =
  if b.cancelled then exhaust b;
  b.ticks <- b.ticks + 1;
  if b.deadline < infinity && Clock.elapsed_s b.clock > b.deadline then
    exhaust b

let add_ticks b n = if n > 0 then b.ticks <- b.ticks + n

let expired b =
  b.cancelled
  || (b.deadline < infinity && Clock.elapsed_s b.clock > b.deadline)

let cancel b = b.cancelled <- true
let is_limited b = b.timeout_s <> None
