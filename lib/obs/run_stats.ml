type t = {
  analysis : string;
  wall_time_s : float;
  iterations : int;
  n_nodes : int;
  n_edges : int;
  n_ctxs : int;
  n_hctxs : int;
  n_hobjs : int;
  sensitive_vpt_size : int;
  triggers : int;
  delta_total : int;
  max_delta : int;
  phases : (string * float) list;
  memory : Memstats.delta option;
  metrics : Json.t option;
}

let make ~analysis ~wall_time_s ~sensitive_vpt_size ~n_ctxs ~n_hctxs ~n_hobjs
    ?memory ?metrics rec_ =
  {
    analysis;
    wall_time_s;
    iterations = Recorder.iterations rec_;
    n_nodes = Recorder.nodes rec_;
    n_edges = Recorder.edges rec_;
    n_ctxs;
    n_hctxs;
    n_hobjs;
    sensitive_vpt_size;
    triggers = Recorder.triggers rec_;
    delta_total = Recorder.delta_total rec_;
    max_delta = Recorder.max_delta rec_;
    phases = Recorder.phases rec_;
    memory;
    metrics;
  }

let to_json t =
  let opt name f = function None -> [] | Some v -> [ (name, f v) ] in
  Json.Obj
    ([
      ("analysis", Json.String t.analysis);
      ("wall_time_s", Json.Float t.wall_time_s);
      ("iterations", Json.Int t.iterations);
      ("n_nodes", Json.Int t.n_nodes);
      ("n_edges", Json.Int t.n_edges);
      ("n_ctxs", Json.Int t.n_ctxs);
      ("n_hctxs", Json.Int t.n_hctxs);
      ("n_hobjs", Json.Int t.n_hobjs);
      ("sensitive_vpt_size", Json.Int t.sensitive_vpt_size);
      ("triggers", Json.Int t.triggers);
      ("delta_total", Json.Int t.delta_total);
      ("max_delta", Json.Int t.max_delta);
      ("phases", Json.Obj (List.map (fun (n, s) -> (n, Json.Float s)) t.phases));
    ]
    @ opt "memory" Memstats.to_json t.memory
    @ opt "metrics" Fun.id t.metrics)

let of_json json =
  let ( let* ) r f = Result.bind r f in
  let field name conv =
    match Option.bind (Json.member name json) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "stats JSON: missing or mistyped %S" name)
  in
  let* analysis = field "analysis" Json.to_str in
  let* wall_time_s = field "wall_time_s" Json.to_float in
  let* iterations = field "iterations" Json.to_int in
  let* n_nodes = field "n_nodes" Json.to_int in
  let* n_edges = field "n_edges" Json.to_int in
  let* n_ctxs = field "n_ctxs" Json.to_int in
  let* n_hctxs = field "n_hctxs" Json.to_int in
  let* n_hobjs = field "n_hobjs" Json.to_int in
  let* sensitive_vpt_size = field "sensitive_vpt_size" Json.to_int in
  let* triggers = field "triggers" Json.to_int in
  let* delta_total = field "delta_total" Json.to_int in
  let* max_delta = field "max_delta" Json.to_int in
  let* members = field "phases" Json.to_obj in
  let* phases =
    List.fold_left
      (fun acc (name, v) ->
        let* acc = acc in
        match Json.to_float v with
        | Some s -> Ok ((name, s) :: acc)
        | None -> Error (Printf.sprintf "stats JSON: phase %S not a number" name))
      (Ok []) members
  in
  (* [memory] and [metrics] are optional: stats documents written before
     they existed must keep parsing. *)
  let* memory =
    match Json.member "memory" json with
    | None -> Ok None
    | Some j -> Result.map Option.some (Memstats.of_json j)
  in
  let metrics = Json.member "metrics" json in
  Ok
    {
      analysis;
      wall_time_s;
      iterations;
      n_nodes;
      n_edges;
      n_ctxs;
      n_hctxs;
      n_hobjs;
      sensitive_vpt_size;
      triggers;
      delta_total;
      max_delta;
      phases = List.rev phases;
      memory;
      metrics;
    }

let pp ppf t =
  let line fmt = Format.fprintf ppf fmt in
  line "@[<v>run stats (%s):@," t.analysis;
  line "  %-22s %12.3f@," "wall time (s)" t.wall_time_s;
  line "  %-22s %12d@," "iterations" t.iterations;
  line "  %-22s %12d@," "nodes created" t.n_nodes;
  line "  %-22s %12d@," "edges added" t.n_edges;
  line "  %-22s %12d@," "contexts" t.n_ctxs;
  line "  %-22s %12d@," "heap contexts" t.n_hctxs;
  line "  %-22s %12d@," "abstract objects" t.n_hobjs;
  line "  %-22s %12d@," "sensitive vpt size" t.sensitive_vpt_size;
  line "  %-22s %12d@," "trigger firings" t.triggers;
  line "  %-22s %12d@," "delta volume" t.delta_total;
  line "  %-22s %12d@," "max delta" t.max_delta;
  List.iter
    (fun (name, s) -> line "  %-22s %12.3f@," (Printf.sprintf "[%s] (s)" name) s)
    t.phases;
  (match t.memory with
  | None -> ()
  | Some m ->
    line "  %-22s %12.0f@," "minor alloc (words)"
      m.Memstats.minor_allocated_words;
    line "  %-22s %12.0f@," "major alloc (words)"
      m.Memstats.major_allocated_words;
    line "  %-22s %12d@," "peak heap (words)" m.Memstats.peak_heap_words;
    line "  %-22s %12d@," "major collections" m.Memstats.major_collections_delta);
  line "@]"
