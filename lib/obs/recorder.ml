type t = {
  mutable iterations : int;
  mutable nodes : int;
  mutable edges : int;
  mutable ctxs : int;
  mutable hctxs : int;
  mutable hobjs : int;
  mutable triggers : int;
  mutable delta_total : int;
  mutable max_delta : int;
  mutable phases : (string * float) list;  (* reversed first-seen order *)
  mutable obs : Observer.t;
}

let record_phase t name s =
  let rec bump acc = function
    | [] -> (name, s) :: t.phases
    | (n, total) :: rest when String.equal n name ->
      List.rev_append acc ((n, total +. s) :: rest)
    | entry :: rest -> bump (entry :: acc) rest
  in
  t.phases <- bump [] t.phases

let create () =
  let t =
    {
      iterations = 0;
      nodes = 0;
      edges = 0;
      ctxs = 0;
      hctxs = 0;
      hobjs = 0;
      triggers = 0;
      delta_total = 0;
      max_delta = 0;
      phases = [];
      obs = Observer.null;
    }
  in
  t.obs <-
    Observer.make
      ~on_iteration:(fun () -> t.iterations <- t.iterations + 1)
      ~on_node:(fun () -> t.nodes <- t.nodes + 1)
      ~on_edge:(fun () -> t.edges <- t.edges + 1)
      ~on_ctx:(fun () -> t.ctxs <- t.ctxs + 1)
      ~on_hctx:(fun () -> t.hctxs <- t.hctxs + 1)
      ~on_hobj:(fun () -> t.hobjs <- t.hobjs + 1)
      ~on_trigger:(fun () -> t.triggers <- t.triggers + 1)
      ~on_delta:(fun d ->
        t.delta_total <- t.delta_total + d;
        if d > t.max_delta then t.max_delta <- d)
      ~on_phase:(fun name s -> record_phase t name s)
      ();
  t

let observer t = t.obs
let iterations t = t.iterations
let nodes t = t.nodes
let edges t = t.edges
let ctxs t = t.ctxs
let hctxs t = t.hctxs
let hobjs t = t.hobjs
let triggers t = t.triggers
let delta_total t = t.delta_total
let max_delta t = t.max_delta
let phases t = List.rev t.phases

let reset t =
  t.iterations <- 0;
  t.nodes <- 0;
  t.edges <- 0;
  t.ctxs <- 0;
  t.hctxs <- 0;
  t.hobjs <- 0;
  t.triggers <- 0;
  t.delta_total <- 0;
  t.max_delta <- 0;
  t.phases <- []
