(** A minimal JSON value type with a stable printer and a parser.

    Kept dependency-free on purpose: the observability surface must not
    pull a JSON library into the core.  The printer is {e stable} —
    object members are emitted in the order given, floats with enough
    digits to round-trip exactly — so two identical runs produce
    byte-identical documents and golden tests can diff them. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** members, in emission order *)

val to_string : ?indent:bool -> t -> string
(** Serialize.  [indent] (default [true]) pretty-prints with two-space
    indentation; either form parses back with {!of_string}. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document; [Error msg] carries a byte offset. *)

(** {1 Accessors} ([None] on shape mismatch) *)

val member : string -> t -> t option
val to_int : t -> int option
val to_float : t -> float option
(** Accepts both [Int] and [Float] facts, as JSON does not distinguish. *)

val to_str : t -> string option
val to_obj : t -> (string * t) list option
val to_list : t -> t list option
