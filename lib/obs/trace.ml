(* Allocation marks: a [Gc.quick_stat] reading taken at span begin when
   the sink was created with [~alloc:true].  The distinguished
   [null_mark] (compared physically) means "not captured" — sinks with
   allocation accounting off, and the null sink, hand it out so the
   close path can skip the second reading without a flag argument. *)
type alloc_mark = {
  am_minor : float;
  am_promoted : float;
  am_major : float;
}

let null_mark = { am_minor = 0.; am_promoted = 0.; am_major = 0. }

type ev =
  | Begin of { cat : string; name : string; ts : float }
  | End of { name : string; ts : float; alloc : (float * float) option }
  | Complete of {
      cat : string;
      name : string;
      ts : float;
      dur : float;
      delta : int option;
      alloc : (float * float) option;  (* minor, major allocated words *)
    }
  | Instant of { cat : string; name : string; ts : float }
  | Counter of { cat : string; name : string; ts : float; value : float }

type agg = {
  mutable a_events : int;
  mutable a_us : float;
  mutable a_delta : int;
  mutable a_minor_w : float;
  mutable a_promoted_w : float;
  mutable a_major_w : float;
}

type t = {
  mutable buf : ev array;
  mutable head : int;  (* index of the oldest retained event *)
  mutable len : int;
  limit : int;  (* ring capacity ceiling; [buf] grows up to it *)
  mutable dropped : int;
  clock : Clock.t;  (* per-sink epoch, monotone-clamped *)
  alloc : bool;  (* capture GC allocation deltas per span *)
  open_spans : (string * string * float * alloc_mark) Stack.t;
      (* cat, name, t0, allocation mark at begin *)
  aggs : (string * string, agg) Hashtbl.t;
}

let dummy = Instant { cat = ""; name = ""; ts = 0. }

let null =
  {
    buf = [||];
    head = 0;
    len = 0;
    limit = 0;
    dropped = 0;
    clock = Clock.create ();
    alloc = false;
    open_spans = Stack.create ();
    aggs = Hashtbl.create 1;
  }

let is_null t = t == null

let default_limit = 1 lsl 18

let create ?(limit = default_limit) ?(alloc = false) () =
  let limit = max 16 limit in
  {
    buf = Array.make (min 1024 limit) dummy;
    head = 0;
    len = 0;
    limit;
    dropped = 0;
    clock = Clock.create ();
    alloc;
    open_spans = Stack.create ();
    aggs = Hashtbl.create 64;
  }

let now_us t = Clock.now_us t.clock

let alloc_enabled t = t.alloc

(* [Gc.quick_stat]'s [minor_words] is only flushed at minor collections;
   [Gc.minor_words ()] reads the allocation pointer, so short spans that
   never cross a minor GC still get an exact figure. *)
let alloc_mark t =
  if t.alloc then begin
    let s = Gc.quick_stat () in
    {
      am_minor = Gc.minor_words ();
      am_promoted = s.Gc.promoted_words;
      am_major = s.Gc.major_words;
    }
  end
  else null_mark

(* Allocation since [mark]: [None] when the mark is the shared null
   (accounting off at begin time). *)
let alloc_since mark =
  if mark == null_mark then None
  else
    let s = Gc.quick_stat () in
    Some
      ( Gc.minor_words () -. mark.am_minor,
        s.Gc.promoted_words -. mark.am_promoted,
        s.Gc.major_words -. mark.am_major )

let push t ev =
  let cap = Array.length t.buf in
  if t.len = cap && cap < t.limit then begin
    (* Grow: unroll the ring into a larger flat array. *)
    let ncap = min t.limit (cap * 2) in
    let nbuf = Array.make ncap dummy in
    for i = 0 to t.len - 1 do
      nbuf.(i) <- t.buf.((t.head + i) mod cap)
    done;
    t.buf <- nbuf;
    t.head <- 0
  end;
  let cap = Array.length t.buf in
  if t.len = cap then begin
    (* At the ceiling: overwrite the oldest event. *)
    t.buf.(t.head) <- ev;
    t.head <- (t.head + 1) mod cap;
    t.dropped <- t.dropped + 1
  end
  else begin
    t.buf.((t.head + t.len) mod cap) <- ev;
    t.len <- t.len + 1
  end

let agg t cat name =
  match Hashtbl.find_opt t.aggs (cat, name) with
  | Some a -> a
  | None ->
    let a =
      {
        a_events = 0;
        a_us = 0.;
        a_delta = 0;
        a_minor_w = 0.;
        a_promoted_w = 0.;
        a_major_w = 0.;
      }
    in
    Hashtbl.add t.aggs (cat, name) a;
    a

let bump t cat name ~us ~delta alloc =
  let a = agg t cat name in
  a.a_events <- a.a_events + 1;
  a.a_us <- a.a_us +. us;
  a.a_delta <- a.a_delta + delta;
  match alloc with
  | None -> ()
  | Some (minor, promoted, major) ->
    a.a_minor_w <- a.a_minor_w +. minor;
    a.a_promoted_w <- a.a_promoted_w +. promoted;
    a.a_major_w <- a.a_major_w +. major

let begin_span t ~cat name =
  if t != null then begin
    let ts = now_us t in
    Stack.push (cat, name, ts, alloc_mark t) t.open_spans;
    push t (Begin { cat; name; ts })
  end

let end_span ?(delta = 0) t =
  if t != null then
    match Stack.pop_opt t.open_spans with
    | None -> ()
    | Some (cat, name, t0, mark) ->
      let ts = now_us t in
      let alloc = alloc_since mark in
      push t
        (End
           {
             name;
             ts;
             alloc = Option.map (fun (mi, _, ma) -> (mi, ma)) alloc;
           });
      bump t cat name ~us:(ts -. t0) ~delta alloc

let span t ~cat name f =
  if t == null then f ()
  else begin
    begin_span t ~cat name;
    Fun.protect ~finally:(fun () -> end_span t) f
  end

let complete ?delta ?(alloc = null_mark) t ~cat ~name ~t0_us ~dur_us =
  if t != null then begin
    let alloc = alloc_since alloc in
    push t
      (Complete
         {
           cat;
           name;
           ts = t0_us;
           dur = dur_us;
           delta;
           alloc = Option.map (fun (mi, _, ma) -> (mi, ma)) alloc;
         });
    bump t cat name ~us:dur_us ~delta:(Option.value ~default:0 delta) alloc
  end

let instant t ~cat name =
  if t != null then push t (Instant { cat; name; ts = now_us t })

let counter t ~cat name value =
  if t != null then push t (Counter { cat; name; ts = now_us t; value })

type stat = {
  stat_cat : string;
  stat_name : string;
  events : int;
  delta : int;
  seconds : float;
  minor_words : float;
  promoted_words : float;
  major_words : float;
}

let stat_alloc_words s = s.minor_words +. s.major_words -. s.promoted_words

let profile t =
  Hashtbl.fold
    (fun (cat, name) a acc ->
      {
        stat_cat = cat;
        stat_name = name;
        events = a.a_events;
        delta = a.a_delta;
        seconds = a.a_us /. 1e6;
        minor_words = a.a_minor_w;
        promoted_words = a.a_promoted_w;
        major_words = a.a_major_w;
      }
      :: acc)
    t.aggs []
  |> List.sort (fun a b ->
         match compare b.seconds a.seconds with
         | 0 -> compare (a.stat_cat, a.stat_name) (b.stat_cat, b.stat_name)
         | c -> c)

let n_events t = t.len
let dropped t = t.dropped

let iter t f =
  let cap = Array.length t.buf in
  for i = 0 to t.len - 1 do
    f t.buf.((t.head + i) mod cap)
  done

let to_chrome_json t =
  let common ~name ~ph ~ts rest =
    Json.Obj
      (("name", Json.String name)
      :: ("ph", Json.String ph)
      :: ("ts", Json.Float ts)
      :: ("pid", Json.Int 1)
      :: ("tid", Json.Int 1)
      :: rest)
  in
  let cat c = ("cat", Json.String c) in
  let alloc_args = function
    | None -> []
    | Some (minor, major) ->
      [
        ("alloc_minor_w", Json.Float minor); ("alloc_major_w", Json.Float major);
      ]
  in
  let args = function
    | [] -> []
    | fields -> [ ("args", Json.Obj fields) ]
  in
  let events = ref [] in
  iter t (fun ev ->
      let j =
        match ev with
        | Begin { cat = c; name; ts } -> common ~name ~ph:"B" ~ts [ cat c ]
        | End { name; ts; alloc } ->
          common ~name ~ph:"E" ~ts (args (alloc_args alloc))
        | Complete { cat = c; name; ts; dur; delta; alloc } ->
          let fields =
            (match delta with
            | None -> []
            | Some d -> [ ("delta", Json.Int d) ])
            @ alloc_args alloc
          in
          common ~name ~ph:"X" ~ts
            (cat c :: ("dur", Json.Float dur) :: args fields)
        | Instant { cat = c; name; ts } ->
          common ~name ~ph:"i" ~ts [ cat c; ("s", Json.String "t") ]
        | Counter { cat = c; name; ts; value } ->
          common ~name ~ph:"C" ~ts
            [ cat c; ("args", Json.Obj [ ("value", Json.Float value) ]) ]
      in
      events := j :: !events);
  Json.List (List.rev !events)
