(** The monotone-clamped wall clock shared by every timing site in the
    observability stack.

    A clock owns an epoch (its creation instant) and clamps readings to
    be monotone non-decreasing, so durations never come out negative
    even if the wall clock steps backwards mid-run.  {!Trace},
    {!Observer.phase}, {!Budget} and the driver all read through this
    module instead of carrying their own [Unix.gettimeofday] + clamp
    logic; the metrics layer's timing helpers do too. *)

type t

val create : unit -> t
(** A fresh clock whose epoch is now. *)

val now_us : t -> float
(** Microseconds since the clock's epoch, clamped monotone. *)

val elapsed_s : t -> float
(** Seconds since the clock's epoch, clamped monotone (never
    negative). *)

val timed : (unit -> 'a) -> 'a * float
(** [timed f] runs [f] under a fresh clock and returns its result with
    the elapsed seconds. *)
