type snapshot = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  heap_words : int;
  top_heap_words : int;
}

let snapshot () =
  let s = Gc.quick_stat () in
  {
    minor_words = s.Gc.minor_words;
    promoted_words = s.Gc.promoted_words;
    major_words = s.Gc.major_words;
    minor_collections = s.Gc.minor_collections;
    major_collections = s.Gc.major_collections;
    compactions = s.Gc.compactions;
    heap_words = s.Gc.heap_words;
    top_heap_words = s.Gc.top_heap_words;
  }

type delta = {
  minor_allocated_words : float;
  promoted_delta_words : float;
  major_allocated_words : float;
  minor_collections_delta : int;
  major_collections_delta : int;
  compactions_delta : int;
  heap_words_after : int;
  peak_heap_words : int;
}

let diff ?peak ~before ~after () =
  {
    minor_allocated_words = after.minor_words -. before.minor_words;
    promoted_delta_words = after.promoted_words -. before.promoted_words;
    major_allocated_words = after.major_words -. before.major_words;
    minor_collections_delta = after.minor_collections - before.minor_collections;
    major_collections_delta = after.major_collections - before.major_collections;
    compactions_delta = after.compactions - before.compactions;
    heap_words_after = after.heap_words;
    (* An interval's peak can never be below the heap at either of its
       endpoints: a stale sampled peak (e.g. an alarm that never fired)
       is clamped up rather than reported as an impossible value. *)
    peak_heap_words =
      max
        (Option.value ~default:after.heap_words peak)
        (max before.heap_words after.heap_words);
  }

(* ------------------------------------------------------------------ *)
(* Peak tracking                                                       *)
(* ------------------------------------------------------------------ *)

type tracker = {
  t_before : snapshot;
  t_peak : int ref;
  alarm : Gc.alarm;
}

(* The alarm fires at the end of every major collection cycle — exactly
   the instants where the live major heap peaks before being trimmed —
   so sampling [heap_words] there catches the per-run major-heap peak
   that a before/after diff misses.  [top_heap_words] cannot serve: it
   is a process-global high-water mark that never resets between
   benchmark cells. *)
let start_tracking () =
  let before = snapshot () in
  let peak = ref before.heap_words in
  let alarm =
    Gc.create_alarm (fun () ->
        let h = (Gc.quick_stat ()).Gc.heap_words in
        if h > !peak then peak := h)
  in
  { t_before = before; t_peak = peak; alarm }

let sample t =
  let h = (Gc.quick_stat ()).Gc.heap_words in
  if h > !(t.t_peak) then t.t_peak := h

let record_peak t h = if h > !(t.t_peak) then t.t_peak := h

let finish t =
  Gc.delete_alarm t.alarm;
  sample t;
  diff ~peak:!(t.t_peak) ~before:t.t_before ~after:(snapshot ()) ()

let tracked f =
  let t = start_tracking () in
  match f () with
  | v -> (v, finish t)
  | exception exn ->
    let (_ : delta) = finish t in
    raise exn

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let to_json d =
  Json.Obj
    [
      ("minor_allocated_words", Json.Float d.minor_allocated_words);
      ("promoted_words", Json.Float d.promoted_delta_words);
      ("major_allocated_words", Json.Float d.major_allocated_words);
      ("minor_collections", Json.Int d.minor_collections_delta);
      ("major_collections", Json.Int d.major_collections_delta);
      ("compactions", Json.Int d.compactions_delta);
      ("heap_words", Json.Int d.heap_words_after);
      ("peak_heap_words", Json.Int d.peak_heap_words);
    ]

let of_json json =
  let ( let* ) r f = Result.bind r f in
  let field name conv =
    match Option.bind (Json.member name json) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "memory JSON: missing or mistyped %S" name)
  in
  let* minor_allocated_words = field "minor_allocated_words" Json.to_float in
  let* promoted_delta_words = field "promoted_words" Json.to_float in
  let* major_allocated_words = field "major_allocated_words" Json.to_float in
  let* minor_collections_delta = field "minor_collections" Json.to_int in
  let* major_collections_delta = field "major_collections" Json.to_int in
  let* compactions_delta = field "compactions" Json.to_int in
  let* heap_words_after = field "heap_words" Json.to_int in
  let* peak_heap_words = field "peak_heap_words" Json.to_int in
  Ok
    {
      minor_allocated_words;
      promoted_delta_words;
      major_allocated_words;
      minor_collections_delta;
      major_collections_delta;
      compactions_delta;
      heap_words_after;
      peak_heap_words;
    }

let pp ppf d =
  let line fmt = Format.fprintf ppf fmt in
  line "@[<v>memory:@,";
  line "  %-22s %12.0f@," "minor alloc (words)" d.minor_allocated_words;
  line "  %-22s %12.0f@," "major alloc (words)" d.major_allocated_words;
  line "  %-22s %12.0f@," "promoted (words)" d.promoted_delta_words;
  line "  %-22s %12d@," "minor collections" d.minor_collections_delta;
  line "  %-22s %12d@," "major collections" d.major_collections_delta;
  line "  %-22s %12d@," "compactions" d.compactions_delta;
  line "  %-22s %12d@," "peak heap (words)" d.peak_heap_words;
  line "@]"
