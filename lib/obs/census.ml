(* Reachable-heap census: attribute live heap words to named components.

   The walk itself is delegated to [Obj.reachable_words], the runtime's
   physical-identity-aware traversal (shared blocks counted once per
   call).  Two aggregations on top of it give the two cost views:

   - retained: one cumulative-prefix walk per component boundary; the
     difference between consecutive prefixes is the words first reached
     through that component, so a block shared between components is
     charged exactly once, to the earliest owner in declaration order.
   - unshared: the per-root walks summed, so a block referenced from k
     roots is charged k times — the cost the same state would have if
     nothing were shared.

   [retained <= unshared] holds per component (every retained block is
   reachable from at least one of the component's roots), and the
   retained total equals one walk over all roots, which is at most the
   live major heap at walk time. *)

type component = {
  comp_name : string;
  retained_words : int;
  unshared_words : int;
}

type hist = {
  h_bounds : int list;
  h_counts : int list;  (* one more than bounds; last = overflow *)
}

type t = {
  word_bytes : int;
  live_heap_words : int;
  components : component list;
  set_hist : hist option;
}

let current_schema_version = 1

let sharing_factor c =
  if c.retained_words <= 0 then 1.
  else float_of_int c.unshared_words /. float_of_int c.retained_words

let total_retained_words t =
  List.fold_left (fun acc c -> acc + c.retained_words) 0 t.components

let find t name =
  List.find_opt (fun c -> String.equal c.comp_name name) t.components

let bytes_of_words t w = w * t.word_bytes

(* ------------------------------------------------------------------ *)
(* Survey                                                              *)
(* ------------------------------------------------------------------ *)

(* Words of a root array of [n] live roots: [Obj.reachable_words]
   includes the array block itself (header + [n] fields); the empty
   array is the static atom and counts zero. *)
let prefix_words arr =
  let n = Array.length arr in
  if n = 0 then 0 else Obj.reachable_words (Obj.repr arr) - (n + 1)

let survey ?set_hist comps =
  (* Promote everything live out of the minor heap so the retained total
     is comparable to [heap_words] (major-heap words) at walk time. *)
  Gc.full_major ();
  let live_heap_words = (Gc.quick_stat ()).Gc.heap_words in
  let rec go prefix prev rev = function
    | [] -> List.rev rev
    | (comp_name, roots) :: rest ->
      let unshared_words =
        List.fold_left (fun acc r -> acc + Obj.reachable_words r) 0 roots
      in
      let prefix = List.rev_append roots prefix in
      (* Prefix order inside the array is irrelevant: only membership
         decides what a cumulative walk reaches. *)
      let acc = prefix_words (Array.of_list prefix) in
      let c = { comp_name; retained_words = acc - prev; unshared_words } in
      go prefix acc (c :: rev) rest
  in
  {
    word_bytes = Sys.word_size / 8;
    live_heap_words;
    components = go [] 0 [] comps;
    set_hist;
  }

(* ------------------------------------------------------------------ *)
(* Histogram helper                                                    *)
(* ------------------------------------------------------------------ *)

let pow2_bounds n = List.init n (fun i -> 1 lsl i)

let hist_of_values ~bounds values =
  let counts = Array.make (List.length bounds + 1) 0 in
  let barr = Array.of_list bounds in
  List.iter
    (fun v ->
      let rec slot i =
        if i >= Array.length barr then Array.length barr
        else if v <= barr.(i) then i
        else slot (i + 1)
      in
      let i = slot 0 in
      counts.(i) <- counts.(i) + 1)
    values;
  { h_bounds = bounds; h_counts = Array.to_list counts }

let hist_total h = List.fold_left ( + ) 0 h.h_counts

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let component_to_json c =
  Json.Obj
    [
      ("name", Json.String c.comp_name);
      ("retained_words", Json.Int c.retained_words);
      ("unshared_words", Json.Int c.unshared_words);
    ]

let hist_to_json h =
  Json.Obj
    [
      ("bounds", Json.List (List.map (fun b -> Json.Int b) h.h_bounds));
      ("counts", Json.List (List.map (fun n -> Json.Int n) h.h_counts));
    ]

let to_json t =
  Json.Obj
    ([
       ("schema_version", Json.Int current_schema_version);
       ("word_bytes", Json.Int t.word_bytes);
       ("live_heap_words", Json.Int t.live_heap_words);
       ("components", Json.List (List.map component_to_json t.components));
     ]
    @
    match t.set_hist with
    | None -> []
    | Some h -> [ ("intset_hist", hist_to_json h) ])

let ( let* ) r f = Result.bind r f

let field json name conv =
  match Option.bind (Json.member name json) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "census: missing or mistyped %S" name)

let component_of_json json =
  let* comp_name = field json "name" Json.to_str in
  let* retained_words = field json "retained_words" Json.to_int in
  let* unshared_words = field json "unshared_words" Json.to_int in
  if retained_words < 0 || unshared_words < 0 then
    Error (Printf.sprintf "census: negative words in component %S" comp_name)
  else Ok { comp_name; retained_words; unshared_words }

let hist_of_json json =
  let* h_bounds =
    field json "bounds" (fun j ->
        Option.map (List.filter_map Json.to_int) (Json.to_list j))
  in
  let* h_counts =
    field json "counts" (fun j ->
        Option.map (List.filter_map Json.to_int) (Json.to_list j))
  in
  if List.length h_counts <> List.length h_bounds + 1 then
    Error "census: intset_hist counts must have one more entry than bounds"
  else Ok { h_bounds; h_counts }

let components_of_json json =
  let* l = field json "components" Json.to_list in
  List.fold_left
    (fun acc j ->
      let* acc = acc in
      let* c = component_of_json j in
      Ok (c :: acc))
    (Ok []) l
  |> Result.map List.rev

let of_json json =
  let* v = field json "schema_version" Json.to_int in
  if v < 1 || v > current_schema_version then
    Error
      (Printf.sprintf "census: unsupported schema_version %d (max %d)" v
         current_schema_version)
  else
    let* word_bytes = field json "word_bytes" Json.to_int in
    let* live_heap_words = field json "live_heap_words" Json.to_int in
    let* components = components_of_json json in
    let* set_hist =
      match Json.member "intset_hist" json with
      | None -> Ok None
      | Some j -> Result.map Option.some (hist_of_json j)
    in
    Ok { word_bytes; live_heap_words; components; set_hist }

(* The snapshot/ledger embedding carries only the component list (the
   process-global context of a walk does not belong in a per-cell
   record). *)
let components_to_json cs = Json.List (List.map component_to_json cs)

let components_of_json_list json =
  match Json.to_list json with
  | None -> Error "census: components must be a list"
  | Some l ->
    List.fold_left
      (fun acc j ->
        let* acc = acc in
        let* c = component_of_json j in
        Ok (c :: acc))
      (Ok []) l
    |> Result.map List.rev

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let pp ppf t =
  let line fmt = Format.fprintf ppf fmt in
  let total = total_retained_words t in
  line "@[<v>heap census (words; %d-byte words):@," t.word_bytes;
  line "  %-20s %12s %12s %8s %7s@," "component" "retained" "unshared"
    "sharing" "share";
  List.iter
    (fun c ->
      line "  %-20s %12d %12d %7.2fx %6.1f%%@," c.comp_name c.retained_words
        c.unshared_words (sharing_factor c)
        (if total = 0 then 0.
         else 100. *. float_of_int c.retained_words /. float_of_int total))
    t.components;
  line "  %-20s %12d@," "total" total;
  line "  %-20s %12d@," "live major heap" t.live_heap_words;
  (match t.set_hist with
  | None -> ()
  | Some h ->
    line "  points-to set populations (%d sets):@," (hist_total h);
    let rec rows lo bounds counts =
      match (bounds, counts) with
      | b :: bs, n :: ns ->
        if n > 0 then line "    %7d..%-7d %9d@," lo b n;
        rows (b + 1) bs ns
      | [], [ n ] -> if n > 0 then line "    %7d..%-7s %9d@," lo "inf" n
      | _ -> ()
    in
    rows 0 h.h_bounds h.h_counts);
  line "@]"

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)
(* ------------------------------------------------------------------ *)

type breach = {
  b_name : string;
  b_base_words : int;
  b_cur_words : int;
  b_pct : float;
}

let compare_components ~tol_pct ~baseline ~current =
  List.filter_map
    (fun (b : component) ->
      match
        List.find_opt
          (fun c -> String.equal c.comp_name b.comp_name)
          current
      with
      | None -> None
      | Some c ->
        if b.retained_words <= 0 then None
        else
          let pct =
            (float_of_int c.retained_words -. float_of_int b.retained_words)
            /. float_of_int b.retained_words *. 100.
          in
          if pct > tol_pct then
            Some
              {
                b_name = b.comp_name;
                b_base_words = b.retained_words;
                b_cur_words = c.retained_words;
                b_pct = pct;
              }
          else None)
    baseline
