(** The per-run statistics bundle the observability layer reports.

    Combines the engine's final sizes (nodes, contexts, abstract
    objects, the paper's platform-independent [sensitive_vpt_size]
    metric) with the {!Recorder}'s dynamic counters and phase timings.
    Every field except [wall_time_s] and [phases] is deterministic.

    Renders to a human-readable table ({!pp}) and to stable JSON
    ({!to_json}); {!of_json} parses the JSON back, so harnesses can
    round-trip stats files. *)

type t = {
  analysis : string;
  wall_time_s : float;
  iterations : int;
  n_nodes : int;
  n_edges : int;
  n_ctxs : int;
  n_hctxs : int;
  n_hobjs : int;
  sensitive_vpt_size : int;
  triggers : int;
  delta_total : int;
  max_delta : int;
  phases : (string * float) list;  (** seconds per phase, stable order *)
  memory : Memstats.delta option;
      (** GC/memory profile for the run, when tracking was enabled *)
  metrics : Json.t option;
      (** metric-registry export ({!Pta_metrics.Registry.to_json} shape);
          held opaquely to keep [pta_obs] at the bottom of the stack *)
}

val make :
  analysis:string ->
  wall_time_s:float ->
  sensitive_vpt_size:int ->
  n_ctxs:int ->
  n_hctxs:int ->
  n_hobjs:int ->
  ?memory:Memstats.delta ->
  ?metrics:Json.t ->
  Recorder.t ->
  t
(** Assemble from a recorder plus the engine's final readings.
    [memory] and [metrics] are omitted from the JSON when absent, so
    pre-existing stats documents keep their shape. *)

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result
val pp : Format.formatter -> t -> unit
