type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr x =
  if Float.is_integer x && Float.abs x < 1e15 then
    (* Keep a decimal point so the value parses back as a float. *)
    Printf.sprintf "%.1f" x
  else
    (* %.17g round-trips every finite double exactly. *)
    Printf.sprintf "%.17g" x

let to_string ?(indent = true) v =
  let buf = Buffer.create 256 in
  let pad depth = if indent then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  let rec go depth v =
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float x ->
      if Float.is_nan x || Float.is_integer (x /. 0.) then
        Buffer.add_string buf "null"
      else Buffer.add_string buf (float_repr x)
    | String s -> escape buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          go (depth + 1) item)
        items;
      nl ();
      pad depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj members ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun i (k, item) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          escape buf k;
          Buffer.add_string buf (if indent then ": " else ":");
          go (depth + 1) item)
        members;
      nl ();
      pad depth;
      Buffer.add_char buf '}'
  in
  go 0 v;
  if indent then Buffer.add_char buf '\n';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let len = String.length word in
    if !pos + len <= n && String.sub s !pos len = word then begin
      pos := !pos + len;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char buf '"'; advance ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance ()
        | Some '/' -> Buffer.add_char buf '/'; advance ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance ()
        | Some 't' -> Buffer.add_char buf '\t'; advance ()
        | Some 'b' -> Buffer.add_char buf '\b'; advance ()
        | Some 'f' -> Buffer.add_char buf '\012'; advance ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then fail "truncated \\u escape";
          let code = int_of_string ("0x" ^ String.sub s !pos 4) in
          pos := !pos + 4;
          (* Escaped controls only ever come from our own printer, which
             emits \u for ASCII controls; decode those directly. *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else fail "unsupported \\u escape"
        | _ -> fail "bad escape");
        go ()
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let rec go () =
      match peek () with
      | Some ('0' .. '9' | '-' | '+') ->
        advance ();
        go ()
      | Some ('.' | 'e' | 'E') ->
        is_float := true;
        advance ();
        go ()
      | _ -> ()
    in
    go ();
    let text = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let members = ref [] in
        let rec members_loop () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          members := (k, v) :: !members;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members_loop ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        members_loop ();
        Obj (List.rev !members)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [] in
        let rec items_loop () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items_loop ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        items_loop ();
        List (List.rev !items)
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
    Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)
  | exception Failure msg -> Error (Printf.sprintf "JSON parse error: %s" msg)

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Obj members -> List.assoc_opt key members
  | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float x -> Some x
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str = function String s -> Some s | _ -> None
let to_obj = function Obj members -> Some members | _ -> None
let to_list = function List items -> Some items | _ -> None
