(** Reachable-heap census: exact live-word attribution to named
    components of an engine's state.

    A census walks the heap from a list of named {e component} root sets
    (declaration order matters) and reports, per component:

    - {e retained} words — every reachable block charged exactly once,
      to the {e first} component that reaches it.  The per-component
      retained figures therefore sum to one deduplicated walk over all
      roots, which is bounded by the live major heap at walk time.
    - {e unshared} words — the per-root walks summed, i.e. what the same
      state would cost if every cross-root reference were a private
      copy.  [unshared >= retained] always; their ratio is the
      component's {!sharing_factor}, the baseline any hash-consing or
      set-sharing optimisation must beat.

    The walk is [Obj.reachable_words] underneath: physical-identity
    aware, cycle safe, and identical across runs of a deterministic
    program — census output is byte-stable JSON.  {!survey} runs
    [Gc.full_major] first so minor-heap blocks are promoted and the
    retained-vs-[heap_words] invariant is meaningful.

    Ownership rules for root sets: put the structures whose cost you
    want attributed {e first} (e.g. points-to sets before the node
    tables that also reach them); a later component is charged only for
    blocks no earlier component reached.  Do not put closures in root
    sets — a closure's environment can reach arbitrary engine state and
    would steal ownership from every later component. *)

type component = {
  comp_name : string;
  retained_words : int;
  unshared_words : int;
}

type hist = {
  h_bounds : int list;  (** strictly increasing upper bounds *)
  h_counts : int list;  (** one more than bounds; last = overflow *)
}

type t = {
  word_bytes : int;  (** [Sys.word_size / 8] of the measuring process *)
  live_heap_words : int;  (** major heap at walk time, post-[full_major] *)
  components : component list;  (** in declaration order *)
  set_hist : hist option;  (** points-to set population histogram *)
}

val current_schema_version : int

val survey : ?set_hist:hist -> (string * Obj.t list) list -> t
(** [survey comps] walks the heap from each [(name, roots)] component.
    Triggers a full major collection before walking. *)

val sharing_factor : component -> float
(** [unshared / retained]; [1.] for an empty component. *)

val total_retained_words : t -> int
val find : t -> string -> component option
val bytes_of_words : t -> int -> int

(** {1 Histograms} *)

val pow2_bounds : int -> int list
(** [pow2_bounds n] = [[1; 2; 4; ...; 2^(n-1)]]. *)

val hist_of_values : bounds:int list -> int list -> hist
(** Bucket by first upper bound [>= v]; larger values overflow into the
    trailing bucket. *)

val hist_total : hist -> int

(** {1 Serialisation}

    [to_json] output is byte-deterministic for a deterministic state
    (fixed key order, integer words, no wall-clock values). *)

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result

val components_to_json : component list -> Json.t
(** Just the component list — the per-cell embedding used by bench
    snapshots and ledger records. *)

val components_of_json_list : Json.t -> (component list, string) result

val pp : Format.formatter -> t -> unit
(** Text table: per-component retained/unshared/sharing/share plus the
    set-population histogram. *)

(** {1 Comparison} *)

type breach = {
  b_name : string;
  b_base_words : int;
  b_cur_words : int;
  b_pct : float;
}

val compare_components :
  tol_pct:float -> baseline:component list -> current:component list ->
  breach list
(** Components of [baseline] whose retained words grew by more than
    [tol_pct] percent in [current].  Components absent from [current]
    or empty in [baseline] are skipped. *)
