(** Deadline / cancellation tokens for the analysis engines.

    A budget replaces ad-hoc [Unix.gettimeofday] polling: the engine
    calls {!tick} once per worklist (or semi-naive) iteration, and the
    token raises {!Exhausted} — carrying a populated {!abort} payload —
    when the wall-clock deadline passes or {!cancel} was called.

    The cancellation flag is checked on {e every} tick, so an external
    [cancel] aborts within one iteration; the clock is only polled every
    few thousand ticks, keeping the per-iteration cost of an unlimited
    budget to a couple of branches. *)

type abort = {
  elapsed_s : float;  (** wall-clock seconds since the engine started *)
  iterations : int;  (** worklist iterations completed at abort *)
  nodes : int;
      (** the engine's monotone work measure at abort: supergraph nodes
          created (native solver) or total facts derived (Datalog) *)
}

exception Exhausted of abort
(** The analogue of the paper's 90-minute cutoff (Table 1's "-"
    entries), now carrying where the budget ran out. *)

type t

val unlimited : unit -> t
(** No deadline; still cancellable. *)

val of_seconds : float -> t
(** Deadline [s] seconds after the engine calls {!start}. *)

val of_seconds_opt : float option -> t
(** [None] is {!unlimited} — the shape of the old [?timeout_s]. *)

val start : t -> probe:(unit -> int) -> unit
(** Called by the engine when its run begins: stamps the start time,
    arms the deadline, resets the iteration count, and installs [probe]
    as the work-measure reading for {!abort} payloads.  A token may be
    reused by sequential runs; each [start] rearms it and clears any
    pending cancellation. *)

val tick : t -> unit
(** One engine iteration.  @raise Exhausted when out of budget. *)

val check : t -> unit
(** Like {!tick}, but polls the clock unconditionally.  For engines
    whose iterations are few and heavy (the semi-naive Datalog rounds),
    where the every-[0xFFF]-ticks cadence of {!tick} would never reach a
    clock poll.  @raise Exhausted when out of budget. *)

val cancel : t -> unit
(** Abort the run from outside (e.g. a signal handler or an observer):
    the next {!tick} raises {!Exhausted}. *)

val expired : t -> bool
(** Whether the budget is out — cancelled, or past its deadline (the
    clock is polled unconditionally).  Never raises and mutates nothing,
    so parallel workers can poll it from any domain and report back
    through their own abort flag; only the coordinating thread should
    let {!tick}/{!check}/{!exhaust} raise.  A cancellation from another
    domain may be observed a few polls late (the flag is a plain field);
    it is never observed spuriously. *)

val exhaust : t -> 'a
(** Raise {!Exhausted} with the current abort payload — for an engine
    coordinator that detected exhaustion out-of-band (via {!expired} in
    a worker) and needs to surface it after the workers have parked. *)

val add_ticks : t -> int -> unit
(** Fold [n] externally-counted iterations into the budget's tick count
    (so {!iterations} and abort payloads include work done by parallel
    workers, which tick local counters instead of this token).  Performs
    no deadline check.  Negative [n] is ignored. *)

val iterations : t -> int
(** Ticks since the last {!start}. *)

val elapsed_s : t -> float
(** Wall-clock seconds since the last {!start}. *)

val is_limited : t -> bool
(** Whether a deadline is armed (not whether it has expired). *)
