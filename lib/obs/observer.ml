type t = {
  on_iteration : unit -> unit;
  on_node : unit -> unit;
  on_edge : unit -> unit;
  on_ctx : unit -> unit;
  on_hctx : unit -> unit;
  on_hobj : unit -> unit;
  on_trigger : unit -> unit;
  on_delta : int -> unit;
  on_phase : string -> float -> unit;
}

let nothing () = ()

let null =
  {
    on_iteration = nothing;
    on_node = nothing;
    on_edge = nothing;
    on_ctx = nothing;
    on_hctx = nothing;
    on_hobj = nothing;
    on_trigger = nothing;
    on_delta = ignore;
    on_phase = (fun _ _ -> ());
  }

let is_null t = t == null

let make ?(on_iteration = nothing) ?(on_node = nothing) ?(on_edge = nothing)
    ?(on_ctx = nothing) ?(on_hctx = nothing) ?(on_hobj = nothing)
    ?(on_trigger = nothing) ?(on_delta = ignore) ?(on_phase = fun _ _ -> ())
    () =
  {
    on_iteration;
    on_node;
    on_edge;
    on_ctx;
    on_hctx;
    on_hobj;
    on_trigger;
    on_delta;
    on_phase;
  }

let tee a b =
  if is_null a then b
  else if is_null b then a
  else
    {
      on_iteration = (fun () -> a.on_iteration (); b.on_iteration ());
      on_node = (fun () -> a.on_node (); b.on_node ());
      on_edge = (fun () -> a.on_edge (); b.on_edge ());
      on_ctx = (fun () -> a.on_ctx (); b.on_ctx ());
      on_hctx = (fun () -> a.on_hctx (); b.on_hctx ());
      on_hobj = (fun () -> a.on_hobj (); b.on_hobj ());
      on_trigger = (fun () -> a.on_trigger (); b.on_trigger ());
      on_delta = (fun d -> a.on_delta d; b.on_delta d);
      on_phase = (fun name s -> a.on_phase name s; b.on_phase name s);
    }

let iteration t = if t != null then t.on_iteration ()
let node t = if t != null then t.on_node ()
let edge t = if t != null then t.on_edge ()
let ctx t = if t != null then t.on_ctx ()
let hctx t = if t != null then t.on_hctx ()
let hobj t = if t != null then t.on_hobj ()
let trigger t = if t != null then t.on_trigger ()
let delta t d = if t != null then t.on_delta d

let phase t name f =
  if t == null then f ()
  else begin
    let clock = Clock.create () in
    let finally () = t.on_phase name (Clock.elapsed_s clock) in
    Fun.protect ~finally f
  end
