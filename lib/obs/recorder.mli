(** The standard counting observer.

    A recorder accumulates every {!Observer} event into monotonic
    counters and per-phase elapsed-time sums.  All counters are exact
    and deterministic — two identical runs produce identical counts;
    only the phase timings carry wall-clock noise. *)

type t

val create : unit -> t
val observer : t -> Observer.t
(** The hook record to install; each recorder has one (stable) observer. *)

(** {1 Readings} *)

val iterations : t -> int
val nodes : t -> int
val edges : t -> int
val ctxs : t -> int
val hctxs : t -> int
val hobjs : t -> int
val triggers : t -> int

val delta_total : t -> int
(** Sum of all processed delta sizes — the engine's total propagation
    volume. *)

val max_delta : t -> int

val phases : t -> (string * float) list
(** Accumulated seconds per phase name, in first-seen order. *)

val reset : t -> unit
