(** Source positions, spans and frontend errors.

    Lives in [pta_ir] (not the frontend) so the IR's side tables can map
    entities back to source spans without a dependency cycle; the
    frontend re-exports this module unchanged as
    [Pta_frontend.Srcloc]. *)

type pos = {
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 1-based *)
}

let dummy = { file = "<none>"; line = 0; col = 0 }
let pp_pos ppf p = Format.fprintf ppf "%s:%d:%d" p.file p.line p.col

(** A half-open source region: [left] is the first character, [right]
    the position just past the last one (so a one-character token at
    line 1 col 5 spans 1:5..1:6). *)
type span = {
  left : pos;
  right : pos;
}

let dummy_span = { left = dummy; right = dummy }
let is_dummy_span s = s.left.line = 0
let span left right = { left; right }
let span_of_pos p = { left = p; right = p }

let pp_span ppf s =
  if s.left.line = s.right.line then
    Format.fprintf ppf "%s:%d:%d-%d" s.left.file s.left.line s.left.col
      s.right.col
  else
    Format.fprintf ppf "%s:%d:%d-%d:%d" s.left.file s.left.line s.left.col
      s.right.line s.right.col

exception Error of pos * string

let error pos fmt = Format.kasprintf (fun msg -> raise (Error (pos, msg))) fmt

let pp_error ppf (pos, msg) =
  Format.fprintf ppf "%a: error: %s" pp_pos pos msg
