module Type_id = Id.Make ()
module Field_id = Id.Make ()
module Sig_id = Id.Make ()
module Meth_id = Id.Make ()
module Var_id = Id.Make ()
module Heap_id = Id.Make ()
module Invo_id = Id.Make ()

type type_kind =
  | Class
  | Interface

type instr =
  | Alloc of { target : Var_id.t; heap : Heap_id.t }
  | Move of { target : Var_id.t; source : Var_id.t }
  | Load of { target : Var_id.t; base : Var_id.t; field : Field_id.t }
  | Store of { base : Var_id.t; field : Field_id.t; source : Var_id.t }
  | Cast of { target : Var_id.t; source : Var_id.t; cast_type : Type_id.t }
  | Virtual_call of {
      base : Var_id.t;
      signature : Sig_id.t;
      invo : Invo_id.t;
      args : Var_id.t list;
      ret_target : Var_id.t option;
    }
  | Static_call of {
      callee : Meth_id.t;
      invo : Invo_id.t;
      args : Var_id.t list;
      ret_target : Var_id.t option;
    }
  | Static_load of { target : Var_id.t; field : Field_id.t }
  | Static_store of { field : Field_id.t; source : Var_id.t }
  | Throw of { source : Var_id.t }

type handler = {
  catch_type : Type_id.t;
  catch_var : Var_id.t;
  handler_body : code;
}

and code =
  | Instr of instr
  | Seq of code list
  | Branch of code * code
  | Loop of code
  | Try of code * handler list

let rec iter_instrs f = function
  | Instr i -> f i
  | Seq cs -> List.iter (iter_instrs f) cs
  | Branch (a, b) ->
    iter_instrs f a;
    iter_instrs f b
  | Loop c -> iter_instrs f c
  | Try (body, handlers) ->
    iter_instrs f body;
    List.iter (fun h -> iter_instrs f h.handler_body) handlers

let rec fold_instrs f acc = function
  | Instr i -> f acc i
  | Seq cs -> List.fold_left (fold_instrs f) acc cs
  | Branch (a, b) -> fold_instrs f (fold_instrs f acc a) b
  | Loop c -> fold_instrs f acc c
  | Try (body, handlers) ->
    List.fold_left
      (fun acc h -> fold_instrs f acc h.handler_body)
      (fold_instrs f acc body) handlers

let instr_list code = List.rev (fold_instrs (fun acc i -> i :: acc) [] code)

type type_info = {
  type_name : string;
  type_kind : type_kind;
  superclass : Type_id.t option;
  interfaces : Type_id.t list;
  declared : (Sig_id.t * Meth_id.t) list;
}

type field_info = {
  field_name : string;
  field_owner : Type_id.t;
  field_static : bool;
}
type sig_info = { sig_name : string; sig_arity : int }

type meth_info = {
  meth_name : string;
  meth_sig : Sig_id.t;
  meth_owner : Type_id.t;
  meth_static : bool;
  this_var : Var_id.t option;
  formals : Var_id.t array;
  ret_var : Var_id.t option;
  body : code;
}

type var_info = { var_name : string; var_owner : Meth_id.t }

type heap_info = {
  heap_label : string;
  heap_type : Type_id.t;
  heap_owner : Meth_id.t;
}

type invo_info = { invo_label : string; invo_owner : Meth_id.t }

module Program = struct
  type t = {
    types : type_info array;
    fields : field_info array;
    sigs : sig_info array;
    meths : meth_info array;
    vars : var_info array;
    heaps : heap_info array;
    invos : invo_info array;
    entries : Meth_id.t list;
    object_type : Type_id.t;
    type_by_name : (string, Type_id.t) Hashtbl.t;
    (* Source-span side tables, populated by the frontend's lowering
       pass and absent ([None] / [[||]]) for programs built directly
       through the Builder (workload generators, tests). *)
    meth_spans : Srcloc.span option array;
    heap_spans : Srcloc.span option array;
    invo_spans : Srcloc.span option array;
    instr_span_tab : Srcloc.span array array;
        (* per method, aligned with [instr_list body]; [[||]] when the
           method has no recorded spans *)
  }

  let type_info p id = p.types.(Type_id.to_int id)
  let field_info p id = p.fields.(Field_id.to_int id)
  let sig_info p id = p.sigs.(Sig_id.to_int id)
  let meth_info p id = p.meths.(Meth_id.to_int id)
  let var_info p id = p.vars.(Var_id.to_int id)
  let heap_info p id = p.heaps.(Heap_id.to_int id)
  let invo_info p id = p.invos.(Invo_id.to_int id)
  let n_types p = Array.length p.types
  let n_fields p = Array.length p.fields
  let n_sigs p = Array.length p.sigs
  let n_meths p = Array.length p.meths
  let n_vars p = Array.length p.vars
  let n_heaps p = Array.length p.heaps
  let n_invos p = Array.length p.invos
  let entries p = p.entries
  let object_type p = p.object_type

  let iter_types p f = Array.iteri (fun i info -> f (Type_id.of_int i) info) p.types
  let iter_meths p f = Array.iteri (fun i info -> f (Meth_id.of_int i) info) p.meths
  let iter_vars p f = Array.iteri (fun i info -> f (Var_id.of_int i) info) p.vars
  let iter_heaps p f = Array.iteri (fun i info -> f (Heap_id.of_int i) info) p.heaps
  let iter_invos p f = Array.iteri (fun i info -> f (Invo_id.of_int i) info) p.invos

  let find_type p name = Hashtbl.find_opt p.type_by_name name

  let find_meth p class_name meth_name arity =
    match find_type p class_name with
    | None -> None
    | Some ty ->
      let info = type_info p ty in
      List.find_map
        (fun (_, m) ->
          let mi = meth_info p m in
          if String.equal mi.meth_name meth_name
             && Array.length mi.formals = arity
          then Some m
          else None)
        info.declared

  let type_name p id = (type_info p id).type_name

  let meth_qualified_name p id =
    let mi = meth_info p id in
    Printf.sprintf "%s.%s/%d" (type_name p mi.meth_owner) mi.meth_name
      (Array.length mi.formals)

  let var_qualified_name p id =
    let vi = var_info p id in
    Printf.sprintf "%s:%s" (meth_qualified_name p vi.var_owner) vi.var_name

  let heap_name p id =
    let hi = heap_info p id in
    Printf.sprintf "%s[new %s@%s]"
      (meth_qualified_name p hi.heap_owner)
      (type_name p hi.heap_type) hi.heap_label

  let invo_name p id =
    let ii = invo_info p id in
    Printf.sprintf "%s[call@%s]" (meth_qualified_name p ii.invo_owner) ii.invo_label

  let meth_span p id = p.meth_spans.(Meth_id.to_int id)
  let heap_span p id = p.heap_spans.(Heap_id.to_int id)
  let invo_span p id = p.invo_spans.(Invo_id.to_int id)
  let instr_spans p id = p.instr_span_tab.(Meth_id.to_int id)

  let instr_span p id i =
    let spans = instr_spans p id in
    if i >= 0 && i < Array.length spans then Some spans.(i) else None
end

module Builder = struct
  type pending_meth = {
    pm_name : string;
    pm_sig : Sig_id.t;
    pm_owner : Type_id.t;
    pm_static : bool;
    pm_this : Var_id.t option;
    mutable pm_formals : Var_id.t array;
    mutable pm_ret : Var_id.t option;
    mutable pm_body : code;
    pm_span : Srcloc.span option;
    mutable pm_instr_spans : Srcloc.span array;
  }

  type pending_type = {
    pt_name : string;
    pt_kind : type_kind;
    pt_super : Type_id.t option;
    pt_ifaces : Type_id.t list;
    mutable pt_declared : (Sig_id.t * Meth_id.t) list;
  }

  type t = {
    types : pending_type Vec.t;
    fields : field_info Vec.t;
    sigs : sig_info Vec.t;
    meths : pending_meth Vec.t;
    vars : var_info Vec.t;
    heaps : heap_info Vec.t;
    invos : invo_info Vec.t;
    mutable entry_list : Meth_id.t list;
    sig_table : (string * int, Sig_id.t) Hashtbl.t;
    name_table : (string, Type_id.t) Hashtbl.t;
    heap_spans : Srcloc.span option Vec.t;
    invo_spans : Srcloc.span option Vec.t;
  }

  let create () =
    {
      types = Vec.create ();
      fields = Vec.create ();
      sigs = Vec.create ();
      meths = Vec.create ();
      vars = Vec.create ();
      heaps = Vec.create ();
      invos = Vec.create ();
      entry_list = [];
      sig_table = Hashtbl.create 64;
      name_table = Hashtbl.create 64;
      heap_spans = Vec.create ();
      invo_spans = Vec.create ();
    }

  let add_type b ~name ~kind ~superclass ~interfaces =
    if Hashtbl.mem b.name_table name then
      invalid_arg (Printf.sprintf "Builder.add_type: duplicate type %s" name);
    let id =
      Type_id.of_int
        (Vec.push b.types
           {
             pt_name = name;
             pt_kind = kind;
             pt_super = superclass;
             pt_ifaces = interfaces;
             pt_declared = [];
           })
    in
    Hashtbl.add b.name_table name id;
    id

  let add_field b ~owner ~name ~static =
    Field_id.of_int
      (Vec.push b.fields
         { field_name = name; field_owner = owner; field_static = static })

  let intern_sig b ~name ~arity =
    match Hashtbl.find_opt b.sig_table (name, arity) with
    | Some s -> s
    | None ->
      let s = Sig_id.of_int (Vec.push b.sigs { sig_name = name; sig_arity = arity }) in
      Hashtbl.add b.sig_table (name, arity) s;
      s

  let add_var b ~owner ~name =
    Var_id.of_int (Vec.push b.vars { var_name = name; var_owner = owner })

  let add_meth ?span b ~owner ~name ~arity ~static =
    let s = intern_sig b ~name ~arity in
    let id = Meth_id.of_int (Vec.length b.meths) in
    let this = if static then None else Some (add_var b ~owner:id ~name:"this") in
    let (_ : int) =
      Vec.push b.meths
        {
          pm_name = name;
          pm_sig = s;
          pm_owner = owner;
          pm_static = static;
          pm_this = this;
          pm_formals = [||];
          pm_ret = None;
          pm_body = Seq [];
          pm_span = span;
          pm_instr_spans = [||];
        }
    in
    let ti = Vec.get b.types (Type_id.to_int owner) in
    if List.mem_assoc s ti.pt_declared then
      invalid_arg
        (Printf.sprintf "Builder.add_meth: duplicate method %s/%d in %s" name arity
           ti.pt_name);
    ti.pt_declared <- (s, id) :: ti.pt_declared;
    id

  let pending b m = Vec.get b.meths (Meth_id.to_int m)
  let set_formals b m vars = (pending b m).pm_formals <- Array.of_list vars

  let ensure_ret_var b m =
    let pm = pending b m in
    match pm.pm_ret with
    | Some v -> v
    | None ->
      let v = add_var b ~owner:m ~name:"$ret" in
      pm.pm_ret <- Some v;
      v

  let add_heap ?span b ~owner ~label ~ty =
    let (_ : int) = Vec.push b.heap_spans span in
    Heap_id.of_int
      (Vec.push b.heaps { heap_label = label; heap_type = ty; heap_owner = owner })

  let add_invo ?span b ~owner ~label =
    let (_ : int) = Vec.push b.invo_spans span in
    Invo_id.of_int (Vec.push b.invos { invo_label = label; invo_owner = owner })

  let set_body b m code = (pending b m).pm_body <- code

  let set_instr_spans b m spans =
    let pm = pending b m in
    let n = fold_instrs (fun acc _ -> acc + 1) 0 pm.pm_body in
    if Array.length spans <> n then
      invalid_arg
        (Printf.sprintf
           "Builder.set_instr_spans: %d spans for %d instructions in %s"
           (Array.length spans) n pm.pm_name);
    pm.pm_instr_spans <- spans
  let add_entry b m = b.entry_list <- m :: b.entry_list
  let this_var b m = (pending b m).pm_this
  let ret_var b m = (pending b m).pm_ret
  let meth_sig b m = (pending b m).pm_sig

  let validate_body b m (body : code) =
    let var_ok v = Meth_id.equal (Vec.get b.vars (Var_id.to_int v)).var_owner m in
    let rec check_handlers = function
      | Instr _ -> ()
      | Seq cs -> List.iter check_handlers cs
      | Branch (a, bb) ->
        check_handlers a;
        check_handlers bb
      | Loop c -> check_handlers c
      | Try (c, handlers) ->
        check_handlers c;
        List.iter
          (fun h ->
            if not (var_ok h.catch_var) then
              invalid_arg "Builder.freeze: foreign catch variable";
            check_handlers h.handler_body)
          handlers
    in
    check_handlers body;
    let check v =
      if not (var_ok v) then
        invalid_arg
          (Printf.sprintf "Builder.freeze: method %s uses foreign variable %s"
             (pending b m).pm_name
             (Vec.get b.vars (Var_id.to_int v)).var_name)
    in
    iter_instrs
      (fun instr ->
        match instr with
        | Alloc { target; _ } -> check target
        | Move { target; source } ->
          check target;
          check source
        | Load { target; base; _ } ->
          check target;
          check base
        | Store { base; source; _ } ->
          check base;
          check source
        | Cast { target; source; _ } ->
          check target;
          check source
        | Virtual_call { base; args; ret_target; _ } ->
          check base;
          List.iter check args;
          Option.iter check ret_target
        | Static_call { args; ret_target; _ } ->
          List.iter check args;
          Option.iter check ret_target
        | Static_load { target; _ } -> check target
        | Static_store { source; _ } -> check source
        | Throw { source } -> check source)
      body

  let freeze b =
    if Vec.is_empty b.types then invalid_arg "Builder.freeze: no types";
    let object_type =
      match Hashtbl.find_opt b.name_table "Object" with
      | Some t -> t
      | None -> Type_id.of_int 0
    in
    let types =
      Array.map
        (fun pt ->
          {
            type_name = pt.pt_name;
            type_kind = pt.pt_kind;
            superclass = pt.pt_super;
            interfaces = pt.pt_ifaces;
            declared = List.rev pt.pt_declared;
          })
        (Vec.to_array b.types)
    in
    let meths =
      Array.map
        (fun pm ->
          {
            meth_name = pm.pm_name;
            meth_sig = pm.pm_sig;
            meth_owner = pm.pm_owner;
            meth_static = pm.pm_static;
            this_var = pm.pm_this;
            formals = pm.pm_formals;
            ret_var = pm.pm_ret;
            body = pm.pm_body;
          })
        (Vec.to_array b.meths)
    in
    Array.iteri (fun i mi -> validate_body b (Meth_id.of_int i) mi.body) meths;
    {
      Program.types;
      fields = Vec.to_array b.fields;
      sigs = Vec.to_array b.sigs;
      meths;
      vars = Vec.to_array b.vars;
      heaps = Vec.to_array b.heaps;
      invos = Vec.to_array b.invos;
      entries = List.rev b.entry_list;
      object_type;
      type_by_name = Hashtbl.copy b.name_table;
      meth_spans = Array.map (fun pm -> pm.pm_span) (Vec.to_array b.meths);
      heap_spans = Vec.to_array b.heap_spans;
      invo_spans = Vec.to_array b.invo_spans;
      instr_span_tab =
        Array.map (fun pm -> pm.pm_instr_spans) (Vec.to_array b.meths);
    }
end
