(** The intermediate representation analyzed by the points-to engine.

    This is the input language of the paper (Figure 1): objects are
    allocated by [Alloc], copied by [Move], flow through the heap via
    [Load]/[Store], and methods are invoked by [Virtual_call] (dynamic
    dispatch on the receiver's class) or [Static_call] (statically known
    target).  [Cast] is the one addition over the paper's core model; it
    feeds the may-fail-casts client and filters propagation by the cast
    type, as in Doop.

    A {!Program.t} is an immutable, fully-interned representation:
    every entity (class type, field, method signature, method, local
    variable, allocation site, invocation site) is a dense integer id
    with its metadata stored in flat arrays. *)

module Type_id : Id.S
module Field_id : Id.S
module Sig_id : Id.S
module Meth_id : Id.S
module Var_id : Id.S
module Heap_id : Id.S
module Invo_id : Id.S

type type_kind =
  | Class
  | Interface

type instr =
  | Alloc of { target : Var_id.t; heap : Heap_id.t }
      (** [target = new T]; [heap] is the allocation site. *)
  | Move of { target : Var_id.t; source : Var_id.t }  (** [target = source] *)
  | Load of { target : Var_id.t; base : Var_id.t; field : Field_id.t }
      (** [target = base.field] *)
  | Store of { base : Var_id.t; field : Field_id.t; source : Var_id.t }
      (** [base.field = source] *)
  | Cast of { target : Var_id.t; source : Var_id.t; cast_type : Type_id.t }
      (** [target = (cast_type) source]; propagation is filtered by
          [cast_type], and the cast client reports it as may-fail when the
          source may point to an incompatible object. *)
  | Virtual_call of {
      base : Var_id.t;
      signature : Sig_id.t;
      invo : Invo_id.t;
      args : Var_id.t list;
      ret_target : Var_id.t option;
    }  (** [ret_target = base.sig(args)] with dynamic dispatch. *)
  | Static_call of {
      callee : Meth_id.t;
      invo : Invo_id.t;
      args : Var_id.t list;
      ret_target : Var_id.t option;
    }  (** [ret_target = Class::meth(args)]. *)
  | Static_load of { target : Var_id.t; field : Field_id.t }
      (** [target = Class::field]; static fields are global cells, so the
          analysis treats them context-insensitively (the paper omits
          them as "a mere engineering complexity"). *)
  | Static_store of { field : Field_id.t; source : Var_id.t }
      (** [Class::field = source] *)
  | Throw of { source : Var_id.t }
      (** [throw source]; the thrown object unwinds to the innermost
          enclosing [Try] with a compatible handler, or escapes the
          method (building the analysis's [ThrowPointsTo]). *)

type type_info = {
  type_name : string;
  type_kind : type_kind;
  superclass : Type_id.t option;
      (** [None] for the root class and for interfaces. *)
  interfaces : Type_id.t list;
  declared : (Sig_id.t * Meth_id.t) list;  (** methods declared here *)
}

type field_info = {
  field_name : string;
  field_owner : Type_id.t;
  field_static : bool;
}
type sig_info = { sig_name : string; sig_arity : int }

(** Method bodies keep the (nondeterministic) control structure of the
    source: the analysis is flow-insensitive and just folds over every
    instruction, but the concrete interpreter ({!module:Pta_interp})
    executes [Branch] and [Loop] with real control flow. *)
type handler = {
  catch_type : Type_id.t;
  catch_var : Var_id.t;
  handler_body : code;
}

and code =
  | Instr of instr
  | Seq of code list
  | Branch of code * code  (** [if(@)] / [else] with a nondeterministic star condition *)
  | Loop of code  (** [while(@)] with a nondeterministic star condition *)
  | Try of code * handler list
      (** [try { ... } catch (T1 v1) { ... } catch (T2 v2) { ... }];
          handlers are tried in order. *)

val iter_instrs : (instr -> unit) -> code -> unit
val fold_instrs : ('acc -> instr -> 'acc) -> 'acc -> code -> 'acc
val instr_list : code -> instr list

type meth_info = {
  meth_name : string;
  meth_sig : Sig_id.t;
  meth_owner : Type_id.t;
  meth_static : bool;
  this_var : Var_id.t option;  (** [None] iff static *)
  formals : Var_id.t array;
  ret_var : Var_id.t option;  (** [None] for void methods *)
  body : code;
}

type var_info = { var_name : string; var_owner : Meth_id.t }

type heap_info = {
  heap_label : string;
  heap_type : Type_id.t;
  heap_owner : Meth_id.t;
}

type invo_info = { invo_label : string; invo_owner : Meth_id.t }

module Program : sig
  type t

  val type_info : t -> Type_id.t -> type_info
  val field_info : t -> Field_id.t -> field_info
  val sig_info : t -> Sig_id.t -> sig_info
  val meth_info : t -> Meth_id.t -> meth_info
  val var_info : t -> Var_id.t -> var_info
  val heap_info : t -> Heap_id.t -> heap_info
  val invo_info : t -> Invo_id.t -> invo_info
  val n_types : t -> int
  val n_fields : t -> int
  val n_sigs : t -> int
  val n_meths : t -> int
  val n_vars : t -> int
  val n_heaps : t -> int
  val n_invos : t -> int

  val entries : t -> Meth_id.t list
  (** Entry-point methods ([static main]) seeded as reachable. *)

  val object_type : t -> Type_id.t
  (** The root of the class hierarchy. *)

  val iter_types : t -> (Type_id.t -> type_info -> unit) -> unit
  val iter_meths : t -> (Meth_id.t -> meth_info -> unit) -> unit
  val iter_vars : t -> (Var_id.t -> var_info -> unit) -> unit
  val iter_heaps : t -> (Heap_id.t -> heap_info -> unit) -> unit
  val iter_invos : t -> (Invo_id.t -> invo_info -> unit) -> unit

  val find_type : t -> string -> Type_id.t option
  val find_meth : t -> string -> string -> int -> Meth_id.t option
  (** [find_meth p class_name meth_name arity] *)

  val type_name : t -> Type_id.t -> string
  val meth_qualified_name : t -> Meth_id.t -> string
  (** e.g. ["A.foo/2"]. *)

  val var_qualified_name : t -> Var_id.t -> string
  val heap_name : t -> Heap_id.t -> string
  val invo_name : t -> Invo_id.t -> string

  (** {2 Source locations}

      Optional side tables mapping IR entities back to source spans.
      Programs built by the frontend carry them; synthetic programs
      (workload generators, hand-built tests) simply report [None]. *)

  val meth_span : t -> Meth_id.t -> Srcloc.span option
  (** Span of the method's declaration header. *)

  val heap_span : t -> Heap_id.t -> Srcloc.span option
  (** Span of the [new] expression for this allocation site. *)

  val invo_span : t -> Invo_id.t -> Srcloc.span option
  (** Span of the call expression for this invocation site. *)

  val instr_spans : t -> Meth_id.t -> Srcloc.span array
  (** Per-instruction spans for a method body, aligned positionally with
      {!instr_list} / {!fold_instrs} order.  Empty when the method body
      carries no span information. *)

  val instr_span : t -> Meth_id.t -> int -> Srcloc.span option
  (** [instr_span p m i] is the span of the [i]-th instruction of [m]
      (in {!instr_list} order), if recorded. *)
end

(** Mutable program-construction API used by the frontend's lowering pass,
    the workload generators and the tests. *)
module Builder : sig
  type t

  val create : unit -> t

  val add_type :
    t ->
    name:string ->
    kind:type_kind ->
    superclass:Type_id.t option ->
    interfaces:Type_id.t list ->
    Type_id.t

  val add_field : t -> owner:Type_id.t -> name:string -> static:bool -> Field_id.t
  val intern_sig : t -> name:string -> arity:int -> Sig_id.t

  val add_meth :
    ?span:Srcloc.span ->
    t ->
    owner:Type_id.t ->
    name:string ->
    arity:int ->
    static:bool ->
    Meth_id.t
  (** Declares the method on [owner] and creates its [this] variable
      (unless static).  Formals, return variable and body are attached
      afterwards.  [span] is the declaration header's source extent. *)

  val add_var : t -> owner:Meth_id.t -> name:string -> Var_id.t
  val set_formals : t -> Meth_id.t -> Var_id.t list -> unit
  val ensure_ret_var : t -> Meth_id.t -> Var_id.t

  val add_heap :
    ?span:Srcloc.span ->
    t ->
    owner:Meth_id.t ->
    label:string ->
    ty:Type_id.t ->
    Heap_id.t

  val add_invo :
    ?span:Srcloc.span -> t -> owner:Meth_id.t -> label:string -> Invo_id.t

  val set_body : t -> Meth_id.t -> code -> unit

  val set_instr_spans : t -> Meth_id.t -> Srcloc.span array -> unit
  (** Records per-instruction spans for a method, aligned with
      {!instr_list} order of the body set by {!set_body} — call it after
      {!set_body}.  @raise Invalid_argument if the array length does not
      match the body's instruction count. *)

  val add_entry : t -> Meth_id.t -> unit
  val this_var : t -> Meth_id.t -> Var_id.t option
  val ret_var : t -> Meth_id.t -> Var_id.t option
  val meth_sig : t -> Meth_id.t -> Sig_id.t

  val freeze : t -> Program.t
  (** Validates and seals the program.  @raise Invalid_argument on a
      malformed program (e.g. no root type, body referencing another
      method's variables). *)
end
