(** Class-hierarchy queries: subtyping and virtual-method lookup
    (the paper's [LOOKUP] and the cast client's compatibility check).
    All queries are memoized; a handle is cheap to create and valid for
    the lifetime of the program it wraps. *)

type t

val create : Ir.Program.t -> t

val subtype : t -> sub:Ir.Type_id.t -> sup:Ir.Type_id.t -> bool
(** Reflexive-transitive subtyping over the superclass chain and
    (transitively inherited) interfaces. *)

val warm : t -> unit
(** Force the supertype memo for every type in the program.  The
    parallel solver calls this once before its first multi-domain phase:
    with the memo fully populated, {!subtype} (reached concurrently via
    cast/catch edge filters) is a pure array-and-set read with no
    cross-domain writes. *)

val lookup : t -> Ir.Type_id.t -> Ir.Sig_id.t -> Ir.Meth_id.t option
(** [lookup h ty sig] resolves a virtual call with receiver class [ty]:
    the matching declaration on [ty] or the nearest superclass. *)

val supertypes : t -> Ir.Type_id.t -> Ir.Type_id.Set.t
(** All supertypes of a type, including itself. *)

val direct_subclasses : t -> Ir.Type_id.t -> Ir.Type_id.t list
