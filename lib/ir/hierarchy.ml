open Ir

type t = {
  program : Program.t;
  supers : Type_id.Set.t option array;  (* memo: reflexive-transitive supertypes *)
  dispatch : (int * int, Meth_id.t option) Hashtbl.t;
  mutable subclasses : Type_id.t list Type_id.Map.t option;
}

let create program =
  {
    program;
    supers = Array.make (Program.n_types program) None;
    dispatch = Hashtbl.create 256;
    subclasses = None;
  }

let rec supertypes h ty =
  let idx = Type_id.to_int ty in
  match h.supers.(idx) with
  | Some s -> s
  | None ->
    let info = Program.type_info h.program ty in
    let from_ifaces =
      List.fold_left
        (fun acc i -> Type_id.Set.union acc (supertypes h i))
        Type_id.Set.empty info.interfaces
    in
    let from_super =
      match info.superclass with
      | None -> Type_id.Set.empty
      | Some s -> supertypes h s
    in
    let s = Type_id.Set.add ty (Type_id.Set.union from_ifaces from_super) in
    h.supers.(idx) <- Some s;
    s

let subtype h ~sub ~sup = Type_id.Set.mem sup (supertypes h sub)

let warm h =
  for i = 0 to Array.length h.supers - 1 do
    ignore (supertypes h (Type_id.of_int i))
  done

let lookup h ty signature =
  let key = (Type_id.to_int ty, Sig_id.to_int signature) in
  match Hashtbl.find_opt h.dispatch key with
  | Some r -> r
  | None ->
    let rec walk ty =
      let info = Program.type_info h.program ty in
      match List.assoc_opt signature info.declared with
      | Some m -> Some m
      | None -> Option.bind info.superclass walk
    in
    let r = walk ty in
    Hashtbl.add h.dispatch key r;
    r

let direct_subclasses h ty =
  let map =
    match h.subclasses with
    | Some m -> m
    | None ->
      let m = ref Type_id.Map.empty in
      Program.iter_types h.program (fun id info ->
          match info.superclass with
          | None -> ()
          | Some s ->
            let existing = Option.value ~default:[] (Type_id.Map.find_opt s !m) in
            m := Type_id.Map.add s (id :: existing) !m);
      h.subclasses <- Some !m;
      !m
  in
  Option.value ~default:[] (Type_id.Map.find_opt ty map)
