(** The synthetic-benchmark generator: deterministically expands a
    {!Profile.t} into MJ source built from the idioms that drive
    points-to analysis precision and cost in real Java programs —
    class hierarchies with overriding, static factories, pass-through
    utility chains, container churn with downcasts, iterator loops,
    delegating wrappers, visitors and listener registries. *)

val generate : Profile.t -> string
(** The benchmark's own code (link {!Pta_mjdk.Mjdk.source} alongside). *)

val taint_ground_truth : Profile.t -> int
(** True source-to-sink flows in the generated program under the
    built-in taint spec ({!Pta_taint.Spec.default} conventions): one per
    taint unit.  Anything beyond this that an analysis reports is a
    spurious flow. *)
