(** Shape parameters for a synthetic benchmark.

    Each preset mirrors one DaCapo 2006 program's *feature mix* — the mix
    of virtual-dispatch density, static utility chains, container churn,
    allocation-in-virtual-method density, visitors/listeners/wrappers —
    which is what drives the relative precision and cost of the analyses
    (the absolute program sizes are necessarily smaller than DaCapo). *)

type t = {
  name : string;
  seed : int64;
  hierarchies : int;  (** independent class families *)
  subclasses : int;  (** direct subclasses per family *)
  depth2_fraction : float;  (** fraction of subclasses with a sub-subclass *)
  methods_per_class : int;  (** virtual methods on each base class *)
  stmts_per_method : int;
  factories_per_hierarchy : int;  (** static factory methods *)
  util_classes : int;
  util_chain_depth : int;  (** static pass-through chain length *)
  driver_units : int;  (** driver classes, each with one [run] *)
  unit_ops : int;  (** operations per driver unit *)
  helper_meths : int;  (** static helpers per driver class *)
  alloc_in_virtual : float;
      (** probability that a virtual-method statement allocates — the
          knob that makes deep object-sensitive analyses expensive *)
  risky_cast : float;  (** probability a generated cast targets a subclass *)
  throw_density : float;
      (** probability that a virtual method gets a conditional throw *)
  wrappers : bool;  (** delegating wrapper subclass per family *)
  visitors : bool;
  listeners : bool;
  copy_chain_depth : int;
      (** length of straight local copy chains ([var b = a; var c = b;
          ...]) the drivers emit; 0 disables them *)
  copy_cycles : int;
      (** static mutual-recursion rings (and matching local copy
          cycles) — the workload knob that exercises the solver's
          online cycle elimination; 0 disables *)
  copy_cycle_len : int;  (** nodes per copy cycle / ring *)
  taint_units : int;
      (** source/sink annotation blocks for the taint client: each unit
          wires one tainted and one clean value through its own static
          pass-through into a sink, plus a sanitized path — exactly one
          true flow per unit; 0 disables (and keeps generated programs
          byte-identical to before the knob existed) *)
}

let make ~name ~seed ?(hierarchies = 5) ?(subclasses = 4)
    ?(depth2_fraction = 0.3) ?(methods_per_class = 4) ?(stmts_per_method = 3)
    ?(factories_per_hierarchy = 3) ?(util_classes = 2) ?(util_chain_depth = 2)
    ?(driver_units = 8) ?(unit_ops = 14) ?(helper_meths = 3)
    ?(alloc_in_virtual = 0.25) ?(risky_cast = 0.3) ?(throw_density = 0.12)
    ?(wrappers = false) ?(visitors = false) ?(listeners = false)
    ?(copy_chain_depth = 0) ?(copy_cycles = 0) ?(copy_cycle_len = 0)
    ?(taint_units = 0) () =
  {
    name;
    seed;
    hierarchies;
    subclasses;
    depth2_fraction;
    methods_per_class;
    stmts_per_method;
    factories_per_hierarchy;
    util_classes;
    util_chain_depth;
    driver_units;
    unit_ops;
    helper_meths;
    alloc_in_virtual;
    risky_cast;
    throw_density;
    wrappers;
    visitors;
    listeners;
    copy_chain_depth;
    copy_cycles;
    copy_cycle_len;
    taint_units;
  }

(* The DaCapo 2006 profiles analyzed in the paper's Table 1. *)

let antlr =
  (* Parser generator: long static helper chains (grammar analysis
     passes), many casts on tree nodes, moderate dispatch. *)
  make ~name:"antlr" ~seed:0xDA0C0DE_001L ~hierarchies:14 ~subclasses:7 ~methods_per_class:6 ~util_classes:5 ~util_chain_depth:4 ~driver_units:40 ~unit_ops:40 ~helper_meths:6 ~factories_per_hierarchy:4 ~risky_cast:0.45 ~alloc_in_virtual:0.2 ~taint_units:4 ()

let bloat =
  (* Bytecode optimizer: the largest and most dispatch-heavy benchmark;
     visitor-based passes over a deep class-file IR, lots of allocation
     inside virtual methods. *)
  make ~name:"bloat" ~seed:0xDA0C0DE_002L ~hierarchies:20 ~subclasses:10 ~depth2_fraction:0.5 ~methods_per_class:7 ~stmts_per_method:4 ~factories_per_hierarchy:5 ~util_classes:5 ~driver_units:56 ~unit_ops:44 ~helper_meths:6 ~alloc_in_virtual:0.45 ~visitors:true ~wrappers:true ~risky_cast:0.35 ~taint_units:6 ()

let chart =
  (* Plotting: many renderer/axis/dataset families, listeners, large
     drivers. *)
  make ~name:"chart" ~seed:0xDA0C0DE_003L ~hierarchies:20 ~subclasses:8 ~methods_per_class:6 ~factories_per_hierarchy:4 ~util_classes:4 ~driver_units:50 ~unit_ops:40 ~helper_meths:5 ~listeners:true ~alloc_in_virtual:0.3 ~wrappers:true ~taint_units:5 ()

let eclipse =
  (* IDE core: plugin-ish listeners + visitors, moderate size. *)
  make ~name:"eclipse" ~seed:0xDA0C0DE_004L ~hierarchies:14 ~subclasses:7 ~methods_per_class:5 ~driver_units:36 ~unit_ops:36 ~helper_meths:5 ~listeners:true ~visitors:true ~alloc_in_virtual:0.25 ~taint_units:4 ()

let hsqldb =
  (* Database engine: session/statement/result factories, very high
     allocation-in-virtual density — the profile that makes deep
     object-sensitive analyses blow up in the paper. *)
  make ~name:"hsqldb" ~seed:0xDA0C0DE_005L ~hierarchies:14 ~subclasses:9 ~methods_per_class:7 ~stmts_per_method:4 ~driver_units:38 ~unit_ops:38 ~helper_meths:5 ~alloc_in_virtual:0.6 ~wrappers:true ~util_chain_depth:3 ~taint_units:4 ()

let jython =
  (* Python interpreter: interpreter-style dispatch where nearly every
     virtual method allocates (frames, boxed values), plus deep static
     helper chains. Pathological for 2obj+H, as in the paper. *)
  make ~name:"jython" ~seed:0xDA0C0DE_006L ~hierarchies:14 ~subclasses:9 ~methods_per_class:7 ~stmts_per_method:5 ~util_classes:5 ~util_chain_depth:5 ~driver_units:34 ~unit_ops:36 ~helper_meths:6 ~alloc_in_virtual:0.65 ~wrappers:true ~taint_units:4 ()

let luindex =
  (* Text indexing: the smallest benchmark; token/document containers. *)
  make ~name:"luindex" ~seed:0xDA0C0DE_007L ~hierarchies:10 ~subclasses:6 ~methods_per_class:5 ~driver_units:26 ~unit_ops:32 ~helper_meths:4 ~alloc_in_virtual:0.2 ~taint_units:3 ()

let lusearch =
  (* Text search: small; query/scorer families, a few static utils. *)
  make ~name:"lusearch" ~seed:0xDA0C0DE_008L ~hierarchies:10 ~subclasses:7 ~methods_per_class:5 ~driver_units:26 ~unit_ops:32 ~helper_meths:4 ~util_chain_depth:3 ~alloc_in_virtual:0.2 ~taint_units:3 ()

let pmd =
  (* Source analyzer: AST visitors with downcasts everywhere. *)
  make ~name:"pmd" ~seed:0xDA0C0DE_009L ~hierarchies:14 ~subclasses:8 ~methods_per_class:6 ~driver_units:36 ~unit_ops:36 ~helper_meths:5 ~visitors:true ~risky_cast:0.5 ~alloc_in_virtual:0.25 ~taint_units:4 ()

let xalan =
  (* XSLT processor: DOM adapter/wrapper chains, high churn. *)
  make ~name:"xalan" ~seed:0xDA0C0DE_010L ~hierarchies:17 ~subclasses:8 ~methods_per_class:6 ~stmts_per_method:4 ~driver_units:44 ~unit_ops:38 ~helper_meths:5 ~wrappers:true ~alloc_in_virtual:0.4 ~util_chain_depth:3 ~taint_units:5 ()

let dacapo = [ antlr; bloat; chart; eclipse; hsqldb; jython; luindex; lusearch; pmd; xalan ]

(* A small profile for tests and micro-benchmarks. *)
let tiny =
  make ~name:"tiny" ~seed:0xDA0C0DE_0FFL ~hierarchies:2 ~subclasses:2
    ~methods_per_class:3 ~driver_units:2 ~unit_ops:8 ~util_classes:1
    ~util_chain_depth:3 ()

(* Deep copy chains, local copy cycles, and static mutual-recursion
   rings: a stress profile for the solver's propagation core (cycle
   elimination + topological worklist ordering).  Not part of the
   paper's Table 1 set; used by the propagation micro-benchmark and the
   cyclic differential test. *)
let cyclic =
  make ~name:"cyclic" ~seed:0xDA0C0DE_0C1L ~hierarchies:12 ~subclasses:6
    ~methods_per_class:5 ~util_classes:3 ~util_chain_depth:5 ~driver_units:48
    ~unit_ops:44 ~helper_meths:5 ~alloc_in_virtual:0.35 ~risky_cast:0.25
    ~copy_chain_depth:20 ~copy_cycles:10 ~copy_cycle_len:12 ()

let by_name name =
  List.find_opt (fun p -> String.equal p.name name) (tiny :: cyclic :: dacapo)

(* Uniform scaling of a profile's size knobs, for scalability studies. *)
let scale factor p =
  let s x = max 1 (int_of_float (float_of_int x *. factor)) in
  {
    p with
    hierarchies = s p.hierarchies;
    subclasses = s p.subclasses;
    driver_units = s p.driver_units;
    unit_ops = s p.unit_ops;
  }
