type state = {
  p : Profile.t;
  rng : Rng.t;
  e : Emit.t;
  concrete : string list array;  (* concrete class names per hierarchy *)
  mutable fresh : int;
}

let fresh st prefix =
  st.fresh <- st.fresh + 1;
  Printf.sprintf "%s%d" prefix st.fresh

let base h = Printf.sprintf "B%d" h
let wrapper h = Printf.sprintf "W%d" h
let factory h = Printf.sprintf "F%d" h
let util u = Printf.sprintf "U%d" u
let visitor_iface h = Printf.sprintf "V%d" h
let meth h j = Printf.sprintf "m%d_%d" h j
let payload_field h = Printf.sprintf "pl%d" h
let state_field h = Printf.sprintf "st%d" h
let misc_field h = Printf.sprintf "mx%d" h
let inner_field h = Printf.sprintf "inner%d" h

let any_util st = util (Rng.int st.rng st.p.Profile.util_classes)
let any_meth st h = meth h (Rng.int st.rng st.p.Profile.methods_per_class)
let any_concrete st h = Rng.pick st.rng st.concrete.(h)
let any_hierarchy st = Rng.int st.rng st.p.Profile.hierarchies


(* Entry point into a utility: usually an independent pass-through,
   sometimes the chained family. *)
let util_entry st =
  if Rng.bool st.rng 0.1 then Printf.sprintf "%s::chain0" (any_util st)
  else Printf.sprintf "%s::p%d" (any_util st) (Rng.int st.rng 4)

(* A small shared exception hierarchy, like a project's checked
   exception types. *)
let n_error_kinds = 3
let error_base = "Failure0"
let error_kind k = if k = 0 then error_base else Printf.sprintf "Failure%d" k

let emit_errors st =
  let e = st.e in
  Emit.block e "class %s" error_base (fun () ->
      Emit.line e "field failPayload;";
      Emit.line e "method describe() { return String::valueOf(this); }");
  for k = 1 to n_error_kinds - 1 do
    Emit.block e "class %s extends %s" (error_kind k) error_base (fun () ->
        Emit.line e "method describe() { return String::valueOf(this); }")
  done;
  Emit.blank e

let any_error st = error_kind (Rng.int st.rng n_error_kinds)

(* Cast target for an expression expected to hold hierarchy [h] objects:
   usually the base class (safe when tracking is right), sometimes a
   specific subclass — the risky downcast every AST/DOM-style codebase is
   full of. *)
let cast_target st h =
  if Rng.bool st.rng st.p.Profile.risky_cast then any_concrete st h else base h

(* ------------------------------------------------------------------ *)
(* Virtual method bodies                                               *)
(* ------------------------------------------------------------------ *)

(* One statement of a virtual method of hierarchy [h]; [x] is the formal. *)
let method_stmt st h =
  let e = st.e in
  let pool =
    [
      (2, `Store_payload);
      (4, `Touch_state);
      (4, `Self_call);
      (1, `Util_pass);
      (2, `Factory_state);
      (2, `Stringify);
    ]
  in
  let pool =
    if Rng.bool st.rng st.p.Profile.alloc_in_virtual then
      (4, `Alloc_state) :: pool
    else pool
  in
  match Rng.pick_weighted st.rng pool with
  | `Store_payload -> Emit.line e "this.%s = x;" (misc_field h)
  | `Touch_state ->
    let t = fresh st "t" in
    Emit.line e "var %s = this.%s;" t (state_field h);
    Emit.line e "%s.%s(x);" t (any_meth st h)
  | `Alloc_state -> Emit.line e "this.%s = new %s;" (state_field h) (any_concrete st h)
  | `Self_call ->
    Emit.line e "var %s = this.%s(x);" (fresh st "t") (any_meth st h)
  | `Util_pass -> Emit.line e "var %s = %s(x);" (fresh st "t") (util_entry st)
  | `Factory_state ->
    let t = fresh st "t" in
    Emit.line e "var %s = %s::make0();" t (factory h);
    Emit.line e "this.%s = %s;" (state_field h) t
  | `Stringify -> Emit.line e "var %s = String::valueOf(x);" (fresh st "s")

let method_return st h =
  let e = st.e in
  let pool =
    [
      (3, `Arg);
      (2, `This);
      (2, `Payload);
      (2, `State);
      ((if Rng.bool st.rng st.p.Profile.alloc_in_virtual then 4 else 0), `Alloc);
    ]
    |> List.filter (fun (w, _) -> w > 0)
  in
  match Rng.pick_weighted st.rng pool with
  | `Arg -> Emit.line e "return x;"
  | `This -> Emit.line e "return this;"
  | `Payload -> Emit.line e "return this.%s;" (misc_field h)
  | `State -> Emit.line e "return this.%s;" (state_field h)
  | `Alloc -> Emit.line e "return new %s;" (any_concrete st h)

let emit_virtual_method st h j =
  Emit.block st.e "method %s(x)" (meth h j) (fun () ->
      if Rng.bool st.rng st.p.Profile.throw_density then begin
        let e = st.e in
        Emit.block e "if (*)" (fun () ->
            let err = any_error st in
            if Rng.bool st.rng 0.4 then begin
              Emit.line e "var err = new %s;" err;
              Emit.line e "err.failPayload = x;";
              Emit.line e "throw err;"
            end
            else Emit.line e "throw new %s;" err)
      end;
      let n = 1 + Rng.int st.rng st.p.Profile.stmts_per_method in
      for _ = 1 to n do
        method_stmt st h
      done;
      method_return st h)

(* ------------------------------------------------------------------ *)
(* Hierarchies                                                         *)
(* ------------------------------------------------------------------ *)

let emit_class_body st h ~n_meths =
  List.iter (fun j -> emit_virtual_method st h j) (List.init n_meths Fun.id)

let emit_hierarchy st h =
  let p = st.p in
  let e = st.e in
  (* The base class declares the hierarchy's fields and all its virtual
     methods; subclasses override random subsets. *)
  Emit.block e "class %s" (base h) (fun () ->
      Emit.line e "field %s;" (payload_field h);
      Emit.line e "field %s;" (state_field h);
      Emit.line e "field %s;" (misc_field h);
      Emit.line e "method init(x) { this.%s = x; }" (misc_field h);
      (* Accessor protocol with a self-call chain: the pattern where
         object-sensitivity decisively beats call-site-sensitivity — a
         1-call analysis merges every receiver of [accUpd] inside the
         single [this.accSet]/[this.accGet] call sites. *)
      Emit.line e "method accSet(x) { this.%s = x; return this; }"
        (payload_field h);
      Emit.line e "method accGet() { return this.%s; }" (payload_field h);
      Emit.block e "method accUpd(x)" (fun () ->
          Emit.line e "var t = this.accSet(x);";
          Emit.line e "return this.accGet();");
      (* toString fabric: every abstract object that reaches a
         [String::valueOf]/[append] site spawns its own (object, heap
         context) analysis context here -- the redundant-splitting load
         that makes deep-context analyses expensive on real programs. *)
      Emit.block e "method toString()" (fun () ->
          Emit.line e "var sb = new StringBuilder();";
          Emit.line e "sb.append(this.%s);" (misc_field h);
          Emit.line e "sb.append(this.%s);" (state_field h);
          Emit.line e "var s = sb.toString();";
          Emit.line e "return s;");
      if p.Profile.visitors then
        Emit.block e "method accept(v)" (fun () ->
            Emit.line e "var vv = (%s) v;" (visitor_iface h);
            Emit.line e "var r = vv.visit(this);";
            Emit.line e "return r;");
      emit_class_body st h ~n_meths:p.Profile.methods_per_class);
  Emit.blank e;
  for k = 0 to p.Profile.subclasses - 1 do
    let name = Printf.sprintf "S%d_%d" h k in
    Emit.block e "class %s extends %s" name (base h) (fun () ->
        let n_override = 1 + Rng.int st.rng p.Profile.methods_per_class in
        let js =
          Rng.shuffle st.rng (List.init p.Profile.methods_per_class Fun.id)
        in
        List.iteri (fun i j -> if i < n_override then emit_virtual_method st h j) js);
    if Rng.bool st.rng p.Profile.depth2_fraction then begin
      let deep = Printf.sprintf "T%d_%d" h k in
      Emit.block e "class %s extends %s" deep name (fun () ->
          emit_virtual_method st h (Rng.int st.rng p.Profile.methods_per_class))
    end;
    Emit.blank e
  done;
  if p.Profile.wrappers then begin
    (* Delegating wrapper: every call forwards to the wrapped object —
       the DOM-adapter / stream-decorator idiom. *)
    Emit.block e "class %s extends %s" (wrapper h) (base h) (fun () ->
        Emit.line e "field %s;" (inner_field h);
        Emit.line e "method setInner%d(v) { this.%s = v; return this; }" h
          (inner_field h);
        for j = 0 to p.Profile.methods_per_class - 1 do
          Emit.block e "method %s(x)" (meth h j) (fun () ->
              Emit.line e "var inner = (%s) this.%s;" (base h) (inner_field h);
              Emit.line e "var r = inner.%s(x);" (meth h j);
              Emit.line e "return r;")
        done);
    Emit.blank e
  end

let concrete_names p h =
  let subs = List.init p.Profile.subclasses (fun k -> Printf.sprintf "S%d_%d" h k) in
  base h :: subs

(* Names of the depth-2 classes actually emitted depend on RNG draws made
   during emission; we record them from a dedicated pre-pass RNG so the
   driver can also instantiate them.  Simpler: drivers instantiate only
   the always-present classes. *)

(* ------------------------------------------------------------------ *)
(* Factories and utilities                                             *)
(* ------------------------------------------------------------------ *)

let emit_factory st h =
  let e = st.e in
  Emit.block e "class %s" (factory h) (fun () ->
      for i = 0 to st.p.Profile.factories_per_hierarchy - 1 do
        Emit.block e "static method make%d()" i (fun () ->
            Emit.line e "var o = new %s;" (any_concrete st h);
            if Rng.bool st.rng 0.3 then
              Emit.line e "var oo = %s(o);" (util_entry st);
            Emit.line e "return o;")
      done;
      Emit.block e "static method build(x)" (fun () ->
          Emit.block e "if (*)" (fun () ->
              Emit.line e "return new %s;" (any_concrete st h));
          Emit.line e "var o = new %s;" (any_concrete st h);
          Emit.line e "o.%s(x);" (any_meth st h);
          Emit.line e "return o;"));
  Emit.blank e

let emit_util st u =
  let e = st.e in
  let d = st.p.Profile.util_chain_depth in
  Emit.block e "class %s" (util u) (fun () ->
      (* Independent single-level pass-throughs: requireNonNull-style
         helpers.  These are where call-site elements in the context pay
         off — and, being depth 1, they don't collapse single-element
         call-site contexts the way deep chains would. *)
      for j = 0 to 3 do
        Emit.block e "static method p%d(x)" j (fun () ->
            (match Rng.int st.rng 3 with
            | 0 -> ()
            | 1 -> Emit.block e "if (*)" (fun () -> Emit.line e "return x;")
            | _ -> Emit.line e "var s = String::valueOf(x);");
            Emit.line e "return x;")
      done;
      (* An explicitly chained family, depth [util_chain_depth]: the
         interpreter/parser-style static helper stacks of jython/antlr. *)
      for j = 0 to d - 1 do
        Emit.block e "static method chain%d(x)" j (fun () ->
            if j = d - 1 then Emit.line e "return x;"
            else begin
              if Rng.bool st.rng 0.25 then
                Emit.block e "if (*)" (fun () -> Emit.line e "return x;");
              Emit.line e "return %s::chain%d(x);" (util u) (j + 1)
            end)
      done;
      Emit.line e "static method choose(a, b) { if (*) { return a; } return b; }";
      Emit.block e "static method lift(x)" (fun () ->
          Emit.line e "var l = new ArrayList();";
          Emit.line e "l.add(x);";
          Emit.line e "return l;");
      Emit.block e "static method firstOf(l)" (fun () ->
          Emit.line e "var ll = (List) l;";
          Emit.line e "return ll.get(null);");
      Emit.line e "static method logit(x) { var s = String::valueOf(x); return x; }");
  Emit.blank e


(* ------------------------------------------------------------------ *)
(* Copy-cycle farm                                                     *)
(* ------------------------------------------------------------------ *)

let ring g i = Printf.sprintf "R%d_%d" g i

(* Static mutual-recursion rings: [R<g>_0::step -> R<g>_1::step -> ... ->
   R<g>_0::step], each forwarding its argument and returning it.  At the
   supergraph level this closes two copy cycles per ring — one through
   the parameters, one through the returns — which is exactly the
   structure the solver's online cycle elimination collapses.  Emission
   draws nothing from the RNG, so profiles with [copy_cycles = 0]
   generate byte-identical programs to before this knob existed. *)
let emit_rings st =
  let e = st.e in
  let p = st.p in
  let len = max 2 p.Profile.copy_cycle_len in
  for g = 0 to p.Profile.copy_cycles - 1 do
    for i = 0 to len - 1 do
      Emit.block e "class %s" (ring g i) (fun () ->
          Emit.block e "static method step(x)" (fun () ->
              Emit.block e "if (*)" (fun () ->
                  Emit.line e "return %s::step(x);" (ring g ((i + 1) mod len)));
              Emit.line e "return x;"))
    done;
    Emit.blank e
  done

(* ------------------------------------------------------------------ *)
(* Taint annotation units                                              *)
(* ------------------------------------------------------------------ *)

(* Source/sink blocks for the taint client, following the built-in spec
   convention ([*.fetch/* ret] / [*.leak/* arg *] / [*.sanitizer
   *.scrub/*]).  Each unit routes one tainted and one clean value
   through its {e own} static pass-through into the sink — exactly one
   true flow per unit, but analyses whose contexts conflate the two
   pass-through call sites (the unhybrid object/type-sensitive ones,
   via MergeStatic) also report the clean path: the spurious-flow gap
   Table 1's taint column measures.  A sanitized path and a
   discarded-sanitizer call exercise the cut and the bypass checker.
   Emission draws nothing from the RNG and the tainted locals never
   enter the driver environment, so [taint_units = 0] profiles generate
   byte-identical programs to before this knob existed. *)
let taint_unit j = Printf.sprintf "TaintUnit%d" j
let taint_pass j = Printf.sprintf "TaintPass%d" j

let emit_taint st =
  let e = st.e in
  Emit.block e "class TaintData" (fun () -> ());
  Emit.block e "class TaintKit" (fun () ->
      Emit.line e "static field cell;";
      Emit.block e "static method fetch()" (fun () ->
          Emit.line e "var t = new TaintData;";
          Emit.line e "return t;");
      Emit.block e "static method leak(x)" (fun () ->
          Emit.line e "TaintKit::cell = x;");
      Emit.block e "static method scrub(x)" (fun () ->
          Emit.line e "TaintKit::cell = x;";
          Emit.line e "return x;"));
  Emit.blank e;
  for j = 0 to st.p.Profile.taint_units - 1 do
    Emit.block e "class %s" (taint_pass j) (fun () ->
        Emit.block e "static method pass(x)" (fun () ->
            Emit.line e "return x;"));
    Emit.block e "class %s" (taint_unit j) (fun () ->
        Emit.block e "static method run()" (fun () ->
            Emit.line e "var raw = TaintKit::fetch();";
            Emit.line e "var clean = new TaintData;";
            Emit.line e "var a = %s::pass(raw);" (taint_pass j);
            Emit.line e "var b = %s::pass(clean);" (taint_pass j);
            Emit.line e "TaintKit::leak(a);";
            Emit.line e "TaintKit::leak(b);";
            Emit.line e "var s = TaintKit::scrub(raw);";
            Emit.line e "TaintKit::leak(s);";
            Emit.line e "TaintKit::scrub(raw);"));
    Emit.blank e
  done

let taint_ground_truth (p : Profile.t) = p.Profile.taint_units

let catalog h = Printf.sprintf "Cat%d" h
let globals h = Printf.sprintf "G%d" h

(* Singleton holder: the lazily-initialized static instance idiom.  A
   static field is a global cell, so every analysis conflates its
   contents program-wide — included to keep that (realistic) pressure on
   all analyses equally. *)
let emit_globals st h =
  let e = st.e in
  Emit.block e "class %s" (globals h) (fun () ->
      Emit.line e "static field inst%d;" h;
      Emit.block e "static method instance()" (fun () ->
          Emit.block e "if (*)" (fun () ->
              Emit.line e "%s::inst%d = new %s;" (globals h) h (any_concrete st h));
          Emit.line e "return (%s) %s::inst%d;" (base h) (globals h) h));
  Emit.blank e

let emit_catalog st h =
  let e = st.e in
  Emit.block e "class %s" (catalog h) (fun () ->
      Emit.line e "field items%d;" h;
      Emit.line e "method init() { this.items%d = new ArrayList(); }" h;
      Emit.block e "method put(x)" (fun () ->
          Emit.line e "var l = (ArrayList) this.items%d;" h;
          Emit.line e "l.add(x);";
          Emit.line e "return x;");
      (* Heavy read path: several locals all holding the (irreducibly
         heterogeneous) catalog contents, plus dispatch on them. *)
      Emit.block e "method scan(x)" (fun () ->
          Emit.line e "var l = (ArrayList) this.items%d;" h;
          for i = 0 to 8 do
            Emit.line e "var g%d = l.get(null);" i
          done;
          Emit.line e "var go = (%s) g0;" (base h);
          Emit.line e "var r = go.%s(x);" (any_meth st h);
          Emit.line e "var s = g1;";
          Emit.line e "s = g2;";
          Emit.line e "s = g3;";
          Emit.line e "return r;"));
  Emit.blank e

(* ------------------------------------------------------------------ *)
(* Visitors and listeners                                              *)
(* ------------------------------------------------------------------ *)

let emit_visitors st h =
  let e = st.e in
  Emit.line e "interface %s { method visit(n); }" (visitor_iface h);
  for i = 0 to 2 do
    Emit.block e "class CV%d_%d implements %s" h i (visitor_iface h) (fun () ->
        Emit.line e "field vst%d_%d;" h i;
        Emit.block e "method visit(n)" (fun () ->
            Emit.line e "var c = (%s) n;" (cast_target st h);
            Emit.line e "var r = c.%s(n);" (any_meth st h);
            Emit.line e "this.vst%d_%d = r;" h i;
            Emit.line e "return r;"))
  done;
  Emit.blank e

let emit_listeners st =
  let e = st.e in
  Emit.line e "interface Handler { method handle(ev); }";
  for i = 0 to 3 do
    Emit.block e "class H%d implements Handler" i (fun () ->
        Emit.line e "field hst%d;" i;
        Emit.block e "method handle(ev)" (fun () ->
            Emit.line e "this.hst%d = ev;" i;
            if Rng.bool st.rng 0.5 then begin
              let h = any_hierarchy st in
              Emit.line e "var r = new %s;" (any_concrete st h);
              Emit.line e "return r;"
            end
            else Emit.line e "return ev;"))
  done;
  Emit.block e "class Registry" (fun () ->
      Emit.line e "field handlers;";
      Emit.line e "method init() { this.handlers = new ArrayList(); }";
      Emit.block e "method register(h)" (fun () ->
          Emit.line e "var l = (ArrayList) this.handlers;";
          Emit.line e "l.add(h);";
          Emit.line e "return h;");
      Emit.block e "method fire(ev)" (fun () ->
          Emit.line e "var l = (ArrayList) this.handlers;";
          Emit.line e "var it = l.iterator();";
          Emit.line e "var last = ev;";
          Emit.block e "while (*)" (fun () ->
              Emit.line e "var h = (Handler) it.next();";
              Emit.line e "last = h.handle(ev);");
          Emit.line e "return last;"));
  Emit.blank e

(* ------------------------------------------------------------------ *)
(* Drivers                                                             *)
(* ------------------------------------------------------------------ *)

type unit_env = {
  mutable objs : (string * int) list;  (* local var -> hierarchy *)
  mutable conts : (string * int) list;  (* container var -> element hierarchy *)
}

let any_obj st env = Rng.pick st.rng env.objs

let obj_of_hierarchy st env h =
  match List.filter (fun (_, h') -> h' = h) env.objs with
  | [] -> any_obj st env
  | same -> Rng.pick st.rng same

let driver_name du = Printf.sprintf "D%d" du

let seed_object st env =
  let e = st.e in
  let h = any_hierarchy st in
  let v = fresh st "o" in
  (match Rng.int st.rng 3 with
  | 0 ->
    Emit.line e "var %s = %s::make%d();" v (factory h)
      (Rng.int st.rng st.p.Profile.factories_per_hierarchy)
  | 1 -> Emit.line e "var %s = new %s;" v (any_concrete st h)
  | _ ->
    let arg =
      match env.objs with [] -> "null" | _ -> fst (any_obj st env)
    in
    Emit.line e "var %s = %s::build(%s);" v (factory h) arg);
  env.objs <- (v, h) :: env.objs

let unit_op st env _du =
  let e = st.e in
  let p = st.p in
  let pool =
    [
      (3, `Seed);
      (1, `Util_pass);
      (1, `Choose);
      (1, `Helper);
      (5, `Vcall);
      (3, `New_container);
      ((if env.conts = [] then 0 else 3), `Add);
      ((if env.conts = [] then 0 else 3), `Get_cast);
      ((if env.conts = [] then 0 else 2), `Iterate);
      (2, `Map_churn);
      (1, `Stringbuild);
      ((if p.Profile.visitors then 2 else 0), `Visit);
      ((if p.Profile.wrappers then 2 else 0), `Wrap);
      ((if p.Profile.listeners then 2 else 0), `Fire);
      (1, `Require);
      (4, `Protocol);
      (2, `Catalog);
      (1, `Singleton);
      (2, `Guarded);
      ((if p.Profile.copy_chain_depth > 0 then 4 else 0), `Copy_chain);
      ((if p.Profile.copy_cycles > 0 then 5 else 0), `Copy_cycle);
      ((if p.Profile.copy_cycles > 0 then 4 else 0), `Ring_pass);
    ]
    |> List.filter (fun (w, _) -> w > 0)
  in
  match Rng.pick_weighted st.rng pool with
  | `Seed -> seed_object st env
  | `Util_pass ->
    let src, h = any_obj st env in
    let v = fresh st "o" in
    Emit.line e "var %s = %s(%s);" v (util_entry st) src;
    env.objs <- (v, h) :: env.objs
  | `Choose ->
    let a, h = any_obj st env in
    let b, _ = obj_of_hierarchy st env h in
    let v = fresh st "o" in
    Emit.line e "var %s = %s::choose(%s, %s);" v (any_util st) a b;
    env.objs <- (v, h) :: env.objs
  | `Helper ->
    let src, h = any_obj st env in
    let v = fresh st "o" in
    let target = Rng.int st.rng st.p.Profile.driver_units in
    Emit.line e "var %s = %s::helper%d(%s);" v (driver_name target)
      (Rng.int st.rng st.p.Profile.helper_meths)
      src;
    env.objs <- (v, h) :: env.objs
  | `Vcall ->
    let recv, h = any_obj st env in
    let arg, _ = any_obj st env in
    if Rng.bool st.rng 0.5 then begin
      let v = fresh st "o" in
      Emit.line e "var %s = %s.%s(%s);" v recv (any_meth st h) arg;
      env.objs <- (v, h) :: env.objs
    end
    else Emit.line e "%s.%s(%s);" recv (any_meth st h) arg
  | `New_container ->
    let c = fresh st "c" in
    let src, h = any_obj st env in
    (match Rng.int st.rng 8 with
    | 0 | 1 | 2 | 3 -> Emit.line e "var %s = new ArrayList();" c
    | 4 | 5 -> Emit.line e "var %s = new LinkedList();" c
    | 6 -> Emit.line e "var %s = %s::lift(%s);" c (any_util st) src
    | _ -> Emit.line e "var %s = Collections::singletonList(%s);" c src);
    env.conts <- (c, h) :: env.conts
  | `Add ->
    let c, h = Rng.pick st.rng env.conts in
    let src, _ = obj_of_hierarchy st env h in
    Emit.line e "%s.add(%s);" c src
  | `Get_cast ->
    let c, h = Rng.pick st.rng env.conts in
    let v = fresh st "o" in
    Emit.line e "var %s = (%s) %s.get(null);" v (cast_target st h) c;
    env.objs <- (v, h) :: env.objs
  | `Iterate ->
    let c, h = Rng.pick st.rng env.conts in
    let it = fresh st "it" in
    let elem = fresh st "e" in
    let arg, _ = any_obj st env in
    Emit.line e "var %s = %s.iterator();" it c;
    let dispatch = Rng.bool st.rng 0.5 in
    Emit.block e "while (*)" (fun () ->
        Emit.line e "var %s = (%s) %s.next();" elem (cast_target st h) it;
        if dispatch then Emit.line e "%s.%s(%s);" elem (any_meth st h) arg)
  | `Map_churn ->
    let m = fresh st "mp" in
    let k, _ = any_obj st env in
    let v, h = any_obj st env in
    let out = fresh st "o" in
    Emit.line e "var %s = new HashMap();" m;
    Emit.line e "%s.put(%s, %s);" m k v;
    Emit.line e "var %s = (%s) %s.get(%s);" out (cast_target st h) m k;
    env.objs <- (out, h) :: env.objs
  | `Stringbuild ->
    let sb = fresh st "sb" in
    let src, _ = any_obj st env in
    Emit.line e "var %s = new StringBuilder();" sb;
    Emit.line e "%s.append(%s);" sb src;
    Emit.line e "var %s = %s.toString();" (fresh st "s") sb
  | `Visit ->
    let recv, h = any_obj st env in
    let v = fresh st "v" in
    Emit.line e "var %s = new CV%d_%d;" v h (Rng.int st.rng 3);
    Emit.line e "%s.accept(%s);" recv v
  | `Wrap ->
    let src, h = any_obj st env in
    let w = fresh st "w" in
    let arg, _ = any_obj st env in
    let v = fresh st "o" in
    Emit.line e "var %s = new %s;" w (wrapper h);
    Emit.line e "%s.setInner%d(%s);" w h src;
    Emit.line e "var %s = %s.%s(%s);" v w (any_meth st h) arg;
    env.objs <- (v, h) :: env.objs
  | `Fire ->
    let r = fresh st "reg" in
    let ev, _ = any_obj st env in
    Emit.line e "var %s = new Registry();" r;
    Emit.line e "%s.register(new H%d);" r (Rng.int st.rng 4);
    Emit.line e "%s.register(new H%d);" r (Rng.int st.rng 4);
    Emit.line e "%s.fire(%s);" r ev
  | `Require ->
    let src, h = any_obj st env in
    let v = fresh st "o" in
    Emit.line e "var %s = Objects::requireNonNull(%s);" v src;
    env.objs <- (v, h) :: env.objs
  | `Catalog ->
    let h = any_hierarchy st in
    let c = fresh st "cat" in
    Emit.line e "var %s = new %s();" c (catalog h);
    let n_put = 2 + Rng.int st.rng 2 in
    for _ = 1 to n_put do
      if Rng.bool st.rng 0.35 then
        Emit.line e "%s.put(%s::make%d());" c (factory h)
          (Rng.int st.rng st.p.Profile.factories_per_hierarchy)
      else begin
        let src, _ = any_obj st env in
        Emit.line e "%s.put(%s);" c src
      end
    done;
    let n_scan = 4 + Rng.int st.rng 3 in
    for _ = 1 to n_scan do
      let arg, _ = any_obj st env in
      Emit.line e "var %s = %s.scan(%s);" (fresh st "o") c arg
    done
  | `Singleton ->
    let h = any_hierarchy st in
    let v = fresh st "o" in
    Emit.line e "var %s = %s::instance();" v (globals h);
    env.objs <- (v, h) :: env.objs
  | `Guarded ->
    (* try/catch around dispatch-heavy work: the error-handling idiom. *)
    let recv, h = any_obj st env in
    let arg, _ = any_obj st env in
    let ex = fresh st "ex" in
    let caught = Rng.int st.rng n_error_kinds in
    Emit.block e "try" (fun () ->
        Emit.line e "var %s = %s.%s(%s);" (fresh st "o") recv (any_meth st h) arg;
        if Rng.bool st.rng 0.4 then
          Emit.line e "var %s = %s.%s(%s);" (fresh st "o") recv (any_meth st h)
            arg);
    Emit.block e "catch (%s %s)" (error_kind caught) ex (fun () ->
        match Rng.int st.rng 3 with
        | 0 -> Emit.line e "var %s = %s.describe();" (fresh st "s") ex
        | 1 -> Emit.line e "var %s = %s.failPayload;" (fresh st "o") ex
        | _ -> Emit.line e "throw %s;" ex);
    if caught <> 0 && Rng.bool st.rng 0.5 then
      Emit.block e "catch (%s %s)" error_base (fresh st "ex") (fun () ->
          Emit.line e "var %s = new %s;" (fresh st "o") (any_concrete st h))
  | `Protocol ->
    (* Store a payload through the receiver's accessor chain and read it
       back with a downcast to the payload's type. *)
    let recv, _ = any_obj st env in
    let payload, ph = any_obj st env in
    let v = fresh st "o" in
    Emit.line e "var %s = (%s) %s.accUpd(%s);" v (cast_target st ph) recv payload;
    env.objs <- (v, ph) :: env.objs
  | `Copy_chain ->
    (* A straight local move chain: many nodes, one source — the shape
       where propagation order (source before sink) pays. *)
    let src, h = any_obj st env in
    let prev = ref src in
    for _ = 1 to p.Profile.copy_chain_depth do
      let v = fresh st "q" in
      Emit.line e "var %s = %s;" v !prev;
      prev := v
    done;
    env.objs <- (!prev, h) :: env.objs
  | `Copy_cycle ->
    (* A local move cycle: a chain whose tail is copied back to its head
       inside a loop.  Flow-insensitively that is a copy SCC over the
       whole chain. *)
    let src, h = any_obj st env in
    let len = max 2 p.Profile.copy_cycle_len in
    let names = List.init len (fun _ -> fresh st "z") in
    let first = List.hd names in
    Emit.line e "var %s = %s;" first src;
    ignore
      (List.fold_left
         (fun prev v ->
           Emit.line e "var %s = %s;" v prev;
           v)
         first (List.tl names));
    let last = List.nth names (len - 1) in
    Emit.block e "while (*)" (fun () -> Emit.line e "%s = %s;" first last);
    env.objs <- (last, h) :: env.objs
  | `Ring_pass ->
    (* Send an object around a static recursion ring. *)
    let src, h = any_obj st env in
    let g = Rng.int st.rng p.Profile.copy_cycles in
    let v = fresh st "o" in
    Emit.line e "var %s = %s::step(%s);" v (ring g 0) src;
    env.objs <- (v, h) :: env.objs

let emit_helper st du j =
  let e = st.e in
  Emit.block e "static method helper%d(x)" j (fun () ->
      match Rng.int st.rng 4 with
      | 0 ->
        Emit.block e "if (*)" (fun () -> Emit.line e "return null;");
        Emit.line e "return x;"
      | 1 ->
        let h = any_hierarchy st in
        Emit.line e "var o = %s::make%d();" (factory h)
          (Rng.int st.rng st.p.Profile.factories_per_hierarchy);
        Emit.line e "o.%s(x);" (any_meth st h);
        Emit.line e "return o;"
      | 2 ->
        let next = (du + 1) mod st.p.Profile.driver_units in
        if next = du then Emit.line e "return x;"
        else begin
          Emit.block e "if (*)" (fun () ->
              Emit.line e "return %s::helper%d(x);" (driver_name next)
                (Rng.int st.rng st.p.Profile.helper_meths));
          Emit.line e "return x;"
        end
      | _ ->
        Emit.line e "var l = %s::lift(x);" (any_util st);
        Emit.line e "return %s::firstOf(l);" (any_util st))

(* Drivers are instance classes whose work happens in instance "phase"
   methods chained through [run] — as in real harnesses, where the bulk
   of the program executes under an object context.  A fully static
   driver layer would starve object-sensitive analyses of context at the
   top of the call graph and distort every comparison. *)
let emit_driver st du =
  let e = st.e in
  let p = st.p in
  let ops_per_phase = 20 in
  let n_phases = max 1 ((p.Profile.unit_ops + ops_per_phase - 1) / ops_per_phase) in
  (* Generate phase bodies first so each phase knows the hierarchy of the
     object the previous phase returns. *)
  let incoming = ref None in
  let phase_bodies =
    List.init n_phases (fun _ ->
        let sub = Emit.create () in
        let saved = st.e in
        let st = { st with e = sub } in
        let env = { objs = []; conts = [] } in
        (match !incoming with
        | Some h -> env.objs <- [ ("x", h) ]
        | None -> ());
        for _ = 1 to 2 do
          seed_object st env
        done;
        for _ = 1 to ops_per_phase do
          unit_op st env du
        done;
        let ret, ret_h = any_obj st env in
        Emit.line sub "return %s;" ret;
        incoming := Some ret_h;
        ignore saved;
        Emit.contents sub)
  in
  Emit.block e "class %s" (driver_name du) (fun () ->
      for j = 0 to p.Profile.helper_meths - 1 do
        emit_helper st du j
      done;
      List.iteri
        (fun k body ->
          Emit.block e "method phase%d(x)" k (fun () ->
              String.split_on_char '\n' body
              |> List.iter (fun l -> if l <> "" then Emit.line e "%s" (String.trim l))))
        phase_bodies;
      Emit.block e "method run()" (fun () ->
          Emit.line e "var r0 = this.phase0(null);";
          for k = 1 to n_phases - 1 do
            Emit.line e "var r%d = this.phase%d(r%d);" k k (k - 1)
          done);
      (* Per-module entry point: the driver object is allocated inside its
         own class, so type-sensitive analyses (whose contexts are the
         classes containing allocation sites) keep drivers apart. *)
      Emit.block e "static method boot()" (fun () ->
          Emit.line e "var d = new %s;" (driver_name du);
          Emit.line e "d.run();"));
  Emit.blank e

(* ------------------------------------------------------------------ *)

let generate (p : Profile.t) =
  let st =
    {
      p;
      rng = Rng.create p.Profile.seed;
      e = Emit.create ();
      concrete = Array.init p.Profile.hierarchies (concrete_names p);
      fresh = 0;
    }
  in
  let e = st.e in
  Emit.line e "// Synthetic benchmark %S (seed %Ld)" p.Profile.name p.Profile.seed;
  Emit.line e "// Generated by pta_workloads; deterministic.";
  Emit.blank e;
  emit_errors st;
  for h = 0 to p.Profile.hierarchies - 1 do
    if p.Profile.visitors then emit_visitors st h;
    emit_hierarchy st h;
    emit_factory st h;
    emit_catalog st h;
    emit_globals st h
  done;
  for u = 0 to p.Profile.util_classes - 1 do
    emit_util st u
  done;
  if p.Profile.copy_cycles > 0 then emit_rings st;
  if p.Profile.taint_units > 0 then emit_taint st;
  if p.Profile.listeners then emit_listeners st;
  for du = 0 to p.Profile.driver_units - 1 do
    emit_driver st du
  done;
  Emit.block e "class Main" (fun () ->
      Emit.block e "static method main()" (fun () ->
          for du = 0 to p.Profile.driver_units - 1 do
            Emit.line e "%s::boot();" (driver_name du)
          done;
          for j = 0 to p.Profile.taint_units - 1 do
            Emit.line e "%s::run();" (taint_unit j)
          done));
  Emit.contents e
