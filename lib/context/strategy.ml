type t = {
  name : string;
  description : string;
  initial_ctx : Ctx.value;
  record : heap:Pta_ir.Ir.Heap_id.t -> ctx:Ctx.value -> Ctx.value;
  merge :
    heap:Pta_ir.Ir.Heap_id.t ->
    hctx:Ctx.value ->
    invo:Pta_ir.Ir.Invo_id.t ->
    callee:Pta_ir.Ir.Meth_id.t ->
    ctx:Ctx.value ->
    Ctx.value;
  merge_static :
    invo:Pta_ir.Ir.Invo_id.t ->
    callee:Pta_ir.Ir.Meth_id.t ->
    ctx:Ctx.value ->
    Ctx.value;
  shortcut : Shortcut.t option;
}
