(** The named analyses: every preset is an {!Algebra} term.

    This module is a registry, not a zoo of hand-written closures — each
    analysis of the paper's Table 1 (plus the extensions, adaptive
    hybrids, cut-shortcut analyses and ablations used by the
    experiments) is a [(name, term, description)] triple compiled
    through {!Algebra.to_strategy}.  Fact-identity of the terms against
    the paper's hand-written constructor definitions is pinned by the
    differential test suite.

    {!resolve} is the CLI entry point: it accepts either a preset name
    (["S-2obj+H"]) or an algebra expression (["selective(obj 2 1)"]). *)

type factory = Pta_ir.Ir.Program.t -> Strategy.t

type preset = { name : string; term : Algebra.t; description : string }

val presets : preset list
(** All presets, in listing order: standard analyses, uniform hybrids,
    selective hybrids, deeper-context extensions, adaptive hybrids,
    cut-shortcut analyses, ablations. *)

val find_preset : string -> preset option
val names : string list

val all : (string * factory) list
(** [presets] compiled to factories, same order. *)

val table1 : (string * factory) list
(** The paper's Table 1 analyses, in the paper's column order. *)

val by_name : string -> factory option
(** Exact preset-name lookup (no expression parsing; see {!resolve}). *)

val get : string -> factory
(** @raise Invalid_argument on an unknown preset name.  For tests and
    benchmarks where the name is a literal. *)

val suggest : string -> string list
(** Up to three preset names within edit distance 3 of the (case-folded)
    input, closest first — for "unknown analysis" error messages. *)

type resolve_error =
  | Unknown_name of { name : string; suggestions : string list }
      (** the input looks like a name, but no preset matches *)
  | Bad_expression of { expr : string; msg : string }
      (** the input looks like an algebra expression, but does not parse
          or validate *)

val resolve : string -> (factory, resolve_error) result
(** Preset name first, then {!Algebra.of_string}.  A resolved expression
    is named by its canonical form. *)

val class_of_alloc :
  Pta_ir.Ir.Program.t -> Pta_ir.Ir.Heap_id.t -> Pta_ir.Ir.Type_id.t
(** The paper's [CA : H -> T] — the class containing the allocation
    site, used by type-sensitive analyses (exposed for custom strategies
    written directly against {!Strategy.t}). *)
