module Ir = Pta_ir.Ir
module A = Algebra

type factory = Ir.Program.t -> Strategy.t
type preset = { name : string; term : Algebra.t; description : string }

(* CA : H -> T, the class containing the allocation site. *)
let class_of_alloc program heap =
  let owner = (Ir.Program.heap_info program heap).Ir.heap_owner in
  (Ir.Program.meth_info program owner).Ir.meth_owner

let p name term description = { name; term; description }

(* ------------------------------------------------------------------ *)
(* The preset registry: every named analysis is an algebra term.       *)
(* Fact-identity of each term against the paper's hand-written          *)
(* constructor definitions is pinned by test/test_differential.ml.     *)
(* ------------------------------------------------------------------ *)

let standard =
  [
    p "insens" A.insens "context-insensitive";
    p "1call" (A.call 1) "1-call-site-sensitive";
    p "1call+H" (A.call ~h:1 1)
      "1-call-site-sensitive with a context-sensitive heap";
    p "1obj" (A.obj 1) "1-object-sensitive";
    p "2obj+H" (A.obj ~h:1 2) "2-object-sensitive with a 1-context-sensitive heap";
    p "2type+H" (A.typ ~h:1 2) "2-type-sensitive with a 1-context-sensitive heap";
  ]

(* Uniform hybrids (Section 3.1). *)
let uniform =
  [
    p "U-1obj" (A.uniform (A.obj 1)) "uniform 1-object-sensitive hybrid";
    p "U-2obj+H"
      (A.uniform (A.obj ~h:1 2))
      "uniform 2-object-sensitive hybrid with context-sensitive heap";
    p "U-2type+H"
      (A.uniform (A.typ ~h:1 2))
      "uniform 2-type-sensitive hybrid with context-sensitive heap";
  ]

(* Selective hybrids (Section 3.2). *)
let selective =
  [
    p "SA-1obj"
      (A.selective_a (A.obj 1))
      "selective 1-object-sensitive hybrid A: one element, allocation site at \
       virtual calls, invocation site at static calls";
    p "SB-1obj"
      (A.selective_b (A.obj 1))
      "selective 1-object-sensitive hybrid B: allocation site always kept, \
       invocation site added at static calls";
    p "S-2obj+H"
      (A.selective_b (A.obj ~h:1 2))
      "selective 2-object-sensitive hybrid with context-sensitive heap: \
       object-sensitive at virtual calls, call-site elements at static calls";
    p "S-2type+H"
      (A.selective_b (A.typ ~h:1 2))
      "selective 2-type-sensitive hybrid with context-sensitive heap";
  ]

(* Deeper-context extensions and ablations kept for the experiments. *)
let extensions =
  [
    p "2call+H" (A.call ~h:1 2)
      "2-call-site-sensitive with a context-sensitive heap";
    p "1obj+H" (A.obj ~h:1 1)
      "1-object-sensitive with a context-sensitive heap (ablation)";
    p "3obj+2H" (A.obj ~h:2 3)
      "3-object-sensitive with a 2-context-sensitive heap";
  ]

(* Adaptive hybrids (Section 6, future work): constructors that inspect
   the incoming context's *form* (form_adaptive) or the callee's
   expected context load (adaptive). *)
let adaptive =
  [
    p "A-2obj+H"
      (A.form_adaptive (A.obj ~h:1 2))
      "adaptive 2-object-sensitive hybrid: static-in-static calls keep a \
       2-deep call string; allocations under static chains get an \
       invocation-site heap context";
    p "A-2type+H"
      (A.form_adaptive (A.typ ~h:1 2))
      "adaptive 2-type-sensitive hybrid: static-in-static calls keep a \
       2-deep call string; allocations under static chains get an \
       invocation-site heap context";
    p "AD-2obj+H"
      (A.adaptive ~deep:(A.obj ~h:1 2) ~shallow:(A.obj 1) ~hot:3)
      "adaptive depth: the 2obj+H shape for methods with at least 3 \
       potential call sites, plain 1obj elsewhere";
  ]

(* Cut-shortcut analyses (Ma et al., "Context Sensitivity without
   Contexts"): trivial calls are cut and threaded through the caller. *)
let shortcut =
  [
    p "CS" (A.cut_shortcut A.insens)
      "cut-shortcut context-insensitive: calls to trivial methods \
       (getters, setters, forwarders) are cut and their effect threaded \
       through the caller";
    p "CS-2obj+H"
      (A.cut_shortcut (A.obj ~h:1 2))
      "cut-shortcut over 2obj+H: trivial calls are cut instead of being \
       analyzed under cloned contexts";
  ]

(* The "decisively less sense" combinations of Section 3, kept to
   reproduce the paper's claim that they yield bad analyses. *)
let ablations =
  [
    p "X-2obj+IH"
      (A.raw ~depth:3
         ~record:[ A.Caller 2 ]
         ~merge:[ A.Recv; A.Hctx 0; A.Site ]
         ~merge_static:[ A.Caller 0; A.Caller 1; A.Site ])
      "ablation: 2obj-style analysis with an invocation-site heap context \
       (the paper: call-site heap contexts rarely pay off)";
    p "X-2obj+Hrev"
      (A.raw ~depth:2
         ~record:[ A.Caller 0 ]
         ~merge:[ A.Hctx 0; A.Recv ]
         ~merge_static:[ A.Caller 0; A.Caller 1 ])
      "ablation: 2obj+H with hctx in the most significant context position \
       (the paper: not reasonable to invert heap vs hctx)";
    p "X-freemix"
      (A.raw ~depth:2
         ~record:[ A.Caller 0 ]
         ~merge:[ A.Site; A.Recv ]
         ~merge_static:[ A.Site; A.Caller 0 ])
      "ablation: freely mixed call-site/object context that may skip the \
       receiver object entirely";
  ]

let presets =
  standard @ uniform @ selective @ extensions @ adaptive @ shortcut @ ablations

let () =
  List.iter
    (fun { name; term; _ } ->
      match A.validate term with
      | Ok () -> ()
      | Error msg ->
        invalid_arg (Printf.sprintf "invalid preset %s: %s" name msg))
    presets

let find_preset name = List.find_opt (fun pr -> pr.name = name) presets
let names = List.map (fun pr -> pr.name) presets

let factory_of_preset { name; term; description } program =
  A.to_strategy_exn ~name ~description program term

let all = List.map (fun pr -> (pr.name, factory_of_preset pr)) presets

let table1_names =
  [
    "1call"; "1call+H"; "1obj"; "U-1obj"; "SA-1obj"; "SB-1obj"; "2obj+H";
    "U-2obj+H"; "S-2obj+H"; "2type+H"; "U-2type+H"; "S-2type+H";
  ]

let table1 =
  List.map (fun name -> (name, List.assoc name all)) table1_names

let by_name name = List.assoc_opt name all

let get name =
  match by_name name with
  | Some f -> f
  | None -> invalid_arg ("Strategies.get: unknown analysis " ^ name)

(* ------------------------------------------------------------------ *)
(* Name resolution for the CLI: preset name or algebra expression.     *)
(* ------------------------------------------------------------------ *)

let levenshtein a b =
  let la = String.length a and lb = String.length b in
  let prev = Array.init (lb + 1) (fun j -> j) in
  let cur = Array.make (lb + 1) 0 in
  for i = 1 to la do
    cur.(0) <- i;
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      cur.(j) <- min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
    done;
    Array.blit cur 0 prev 0 (lb + 1)
  done;
  prev.(lb)

let suggest name =
  let target = String.lowercase_ascii name in
  let scored =
    List.filter_map
      (fun candidate ->
        let d = levenshtein target (String.lowercase_ascii candidate) in
        if d <= 3 then Some (d, candidate) else None)
      names
  in
  let sorted = List.sort compare scored in
  List.filteri (fun i _ -> i < 3) (List.map snd sorted)

type resolve_error =
  | Unknown_name of { name : string; suggestions : string list }
  | Bad_expression of { expr : string; msg : string }

let resolve input =
  match by_name input with
  | Some f -> Ok f
  | None -> (
    let looks_like_expression =
      String.exists (fun c -> c = '(' || c = ' ' || c = '[') input
    in
    match A.of_string input with
    | Ok term ->
      Ok
        (fun program ->
          A.to_strategy_exn ~name:(A.to_string term) program term)
    | Error msg ->
      if looks_like_expression then Error (Bad_expression { expr = input; msg })
      else Error (Unknown_name { name = input; suggestions = suggest input }))
