(** A combinator algebra over the paper's three context constructors.

    Instead of hand-writing a closed list of [Record]/[Merge]/
    [MergeStatic] triples, strategies are {e terms}: a base analysis
    picks an element source (call sites, receiver objects, receiver
    types) and a k-limited tuple shape with an h-deep context-sensitive
    heap; hybrid composers mirror the paper's Sections 3.1–3.2
    ([uniform], [selective_a], [selective_b]); [adaptive] and
    [per_method] dispatch the shape per callee; [cut_shortcut] threads
    trivial calls around the context machinery entirely; and [raw]
    spells out an arbitrary constructor table element by element.

    Every term compiles to a {!Strategy.t} ({!to_strategy}); terms
    print to a small expression language ({!to_string}) whose parser
    ({!of_string}) round-trips the canonical form — the same language
    the CLI accepts as [--strategy 'selective_a(obj 1)'].  All named
    presets in {!Strategies} are terms of this algebra. *)

(** {1 Terms} *)

(** Element source of a base analysis: what [Merge] stamps onto the
    most significant context position at a virtual call. *)
type kind =
  | Kcall  (** the invocation site (call-site sensitivity) *)
  | Kobj  (** the receiver object (object sensitivity) *)
  | Ktype  (** the receiver's allocating class (type sensitivity) *)

(** One element position of a constructor-table row: how to fill one
    slot of the produced context tuple. *)
type elem =
  | Star  (** the distinguished [*] element *)
  | Site  (** the invocation site ([Merge]/[MergeStatic] only) *)
  | Recv  (** the receiver object ([Merge] only) *)
  | Recv_type  (** [CA(heap)], the receiver's class ([Merge] only) *)
  | Alloc  (** the allocation site itself ([Record] only) *)
  | Caller of int  (** the caller context's [i]-th element (0-based) *)
  | Hctx of int  (** the receiver's heap context's [i]-th element *)
  | If_site of int * elem * elem
      (** [a] when the incoming context's [i]-th element is an
          invocation site, else [b] — the paper's §6 "constructors that
          examine the context passed to them" *)

(** A compiled constructor table: tuple depth plus one element row per
    constructor.  [merge]/[merge_static] rows have exactly [depth]
    elements; [record] at most 2 (the heap-context bound). *)
type spec = {
  depth : int;
  record : elem array;
  merge : elem array;
  merge_static : elem array;
}

type t =
  | Insens
  | Base of { kind : kind; k : int; h : int }
      (** [k]-deep context (1–3) with an [h]-deep heap context (0–2) *)
  | Uniform of t  (** §3.1: every call also pushes the invocation site *)
  | Selective of t
      (** §3.2 hybrid B: allocation-site elements kept, the invocation
          site added at static calls only *)
  | Selective_a of t
      (** §3.2 hybrid A: same depth as the base; static calls replace
          the leading element with the invocation site *)
  | Form_adaptive of t
      (** §6: like {!Selective}, but [Record] stamps the freshest
          invocation site for objects allocated under static chains *)
  | Adaptive of { deep : t; shallow : t; hot : int }
      (** per-callee dispatch on a hotness oracle: methods with at
          least [hot] potential call sites get [deep], others
          [shallow] *)
  | Per_method of { cases : (string * t) list; default : t }
      (** first glob pattern (["*"] wildcard) matching the callee's
          qualified name (["A.foo/2"]) picks the shape *)
  | Cut_shortcut of t
      (** cut-shortcut over the inner strategy: calls covered by the
          program's {!Shortcut} plan are cut (no callee context, flows
          threaded through the caller); all other calls behave as the
          inner strategy *)
  | Raw of spec  (** an explicit constructor table *)

(** {1 Constructors} *)

val insens : t
val call : ?h:int -> int -> t  (** [call ~h k]; [h] defaults to [0] *)

val obj : ?h:int -> int -> t
val typ : ?h:int -> int -> t
val uniform : t -> t
val selective_a : t -> t
val selective_b : t -> t  (** alias of {!Selective} *)

val form_adaptive : t -> t
val adaptive : deep:t -> shallow:t -> hot:int -> t
val per_method : (string * t) list -> default:t -> t
val cut_shortcut : t -> t

val raw :
  depth:int -> record:elem list -> merge:elem list -> merge_static:elem list -> t

(** Element sources, under their paper-facing names. *)

val callsite : elem  (** = {!Site} *)

val receiver_obj : elem  (** = {!Recv} *)

val receiver_type : elem  (** = {!Recv_type} *)

val alloc_site : elem  (** = {!Alloc} *)

(** {1 Validation and compilation} *)

val validate : t -> (unit, string) result
(** Structural well-formedness: depth limits (tuples of at most 3
    elements, heap contexts of at most 2 — the paper's boundedness
    argument), element/position compatibility in {!Raw} rows, composer
    restrictions (hybrid composers need an object- or type-sensitive
    base; {!Form_adaptive} needs [obj 2 1]/[type 2 1]; {!Cut_shortcut}
    does not nest). *)

val spec_of : t -> (spec, string) result
(** The constructor table a term denotes.  Defined for every term whose
    rows do not depend on the callee (everything except {!Adaptive},
    {!Per_method} and {!Cut_shortcut}). *)

type oracle = Pta_ir.Ir.Meth_id.t -> int
(** Hotness measure for {!Adaptive}: an upper bound proxy for how many
    contexts a method may be analyzed under. *)

val static_call_count_oracle : Pta_ir.Ir.Program.t -> oracle
(** The default (deterministic, pre-analysis) oracle: the number of
    invocation sites that may target the method — static calls naming
    it plus virtual sites whose signature can dispatch to it under
    CHA. *)

val to_strategy :
  ?name:string ->
  ?description:string ->
  ?oracle:oracle ->
  Pta_ir.Ir.Program.t ->
  t ->
  (Strategy.t, string) result
(** Compile a term against a program.  [name] defaults to the canonical
    {!to_string} form, [description] to {!describe}.  [oracle] replaces
    the {!static_call_count_oracle} for {!Adaptive} terms (e.g. with
    context counts measured by a previous run). *)

val to_strategy_exn :
  ?name:string ->
  ?description:string ->
  ?oracle:oracle ->
  Pta_ir.Ir.Program.t ->
  t ->
  Strategy.t
(** @raise Invalid_argument on a term {!validate} rejects. *)

(** {1 The expression language} *)

val to_string : t -> string
(** Canonical form, e.g. ["selective(obj 2 1)"] or
    ["raw(2, [caller 0], [site, recv], [site, caller 0])"].
    [parse (to_string t)] reconstructs [t] exactly. *)

val parse : string -> (t, string) result
(** Syntax only; accepts the canonical forms plus the
    [selective_b(...)] spelling of {!Selective}. *)

val of_string : string -> (t, string) result
(** [parse] followed by {!validate}. *)

val describe : t -> string
(** One-line human description, used as the default strategy
    description and by [pointsto strategies]. *)

val glob_match : string -> string -> bool
(** [glob_match pat s]: does [s] match [pat], where ['*'] in [pat]
    stands for any (possibly empty) substring?  The matching used by
    {!Per_method} dispatch over qualified method names (["A.foo/2"]);
    exposed for other pattern languages over method names (the taint
    spec reuses it). *)

val equal : t -> t -> bool
