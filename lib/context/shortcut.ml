module Ir = Pta_ir.Ir
module Hierarchy = Pta_ir.Hierarchy
open Ir

type arg = This | Param of int

type item =
  | Copy_ret of arg
  | Load_ret of Field_id.t
  | Store_field of Field_id.t * arg

type t = {
  actions : (int, item list) Hashtbl.t;  (* Invo_id -> caller-side flows *)
  summarized : Meth_id.Set.t;
  n_cut_sites : int;
}

(* Where a local's value can come from, within a call/alloc/static-free
   method body: the receiver, a formal, or a field of the receiver. *)
type origin = OThis | OParam of int | OLoad of Field_id.t

let arg_rank = function This -> (0, 0) | Param i -> (1, i)

let item_rank = function
  | Copy_ret a -> (0, arg_rank a, 0)
  | Load_ret f -> (1, (0, 0), Field_id.to_int f)
  | Store_field (f, a) -> (2, arg_rank a, Field_id.to_int f)

let compare_item a b = compare (item_rank a) (item_rank b)

(* Summarize one method: [Some items] iff every caller-visible effect of
   calling it is exactly [items].  The analysis is flow-insensitive, like
   the points-to analysis itself: origins are a fixpoint over the body's
   move/load graph, then every load/store/return is checked against
   them. *)
let summarize (mi : meth_info) =
  let exception Bail in
  try
    (* Only move/load/store/return shapes qualify; anything that can
       allocate, call, touch globals or throw disqualifies the method,
       as does [Try] structure (summaries have no exceptional flow). *)
    let rec scan_code = function
      | Instr i -> scan_instr i
      | Seq cs -> List.iter scan_code cs
      | Branch (a, b) ->
        scan_code a;
        scan_code b
      | Loop c -> scan_code c
      | Try (_, _) -> raise Bail
    and scan_instr = function
      | Move _ | Load _ | Store _ -> ()
      | Alloc _ | Cast _ | Virtual_call _ | Static_call _ | Static_load _
      | Static_store _ | Throw _ ->
        raise Bail
    in
    scan_code mi.body;
    let instrs = instr_list mi.body in
    let origins : (int, origin list) Hashtbl.t = Hashtbl.create 16 in
    let get v = Option.value ~default:[] (Hashtbl.find_opt origins (Var_id.to_int v)) in
    let add v o =
      let cur = get v in
      if not (List.mem o cur) then begin
        Hashtbl.replace origins (Var_id.to_int v) (o :: cur);
        true
      end
      else false
    in
    (match mi.this_var with
    | Some this -> ignore (add this OThis)
    | None -> ());
    Array.iteri (fun i formal -> ignore (add formal (OParam i))) mi.formals;
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun instr ->
          match instr with
          | Move { target; source } ->
            List.iter (fun o -> if add target o then changed := true) (get source)
          | Load { target; base = _; field } ->
            if add target (OLoad field) then changed := true
          | Store _ -> ()
          | Alloc _ | Cast _ | Virtual_call _ | Static_call _ | Static_load _
          | Static_store _ | Throw _ ->
            assert false)
        instrs
    done;
    let only_this v = List.for_all (fun o -> o = OThis) (get v) in
    let direct_arg = function
      | OThis -> This
      | OParam i -> Param i
      | OLoad _ -> raise Bail
    in
    let items = ref [] in
    List.iter
      (fun instr ->
        match instr with
        | Load { base; _ } -> if not (only_this base) then raise Bail
        | Store { base; field; source } ->
          if not (only_this base) then raise Bail;
          List.iter
            (fun o -> items := Store_field (field, direct_arg o) :: !items)
            (get source)
        | Move _ -> ()
        | Alloc _ | Cast _ | Virtual_call _ | Static_call _ | Static_load _
        | Static_store _ | Throw _ ->
          assert false)
      instrs;
    (match mi.ret_var with
    | Some r ->
      List.iter
        (fun o ->
          items :=
            (match o with
            | OThis -> Copy_ret This
            | OParam i -> Copy_ret (Param i)
            | OLoad f -> Load_ret f)
            :: !items)
        (get r)
    | None -> ());
    Some (List.sort_uniq compare_item !items)
  with Bail -> None

let compute program =
  let hierarchy = Hierarchy.create program in
  let summaries = Hashtbl.create 64 in
  Program.iter_meths program (fun meth mi ->
      match summarize mi with
      | Some items -> Hashtbl.add summaries (Meth_id.to_int meth) items
      | None -> ());
  let summary m = Hashtbl.find_opt summaries (Meth_id.to_int m) in
  (* A virtual call site can be cut only when every method its signature
     may dispatch to — over all classes — carries the same summary, so
     the caller-side flows are valid whatever the receiver turns out to
     be. *)
  let sig_verdicts = Hashtbl.create 16 in
  let sig_verdict s =
    match Hashtbl.find_opt sig_verdicts (Sig_id.to_int s) with
    | Some v -> v
    | None ->
      let targets = ref Meth_id.Set.empty in
      for ty = 0 to Program.n_types program - 1 do
        match Hierarchy.lookup hierarchy (Type_id.of_int ty) s with
        | Some m when not (Program.meth_info program m).meth_static ->
          targets := Meth_id.Set.add m !targets
        | Some _ | None -> ()
      done;
      let v =
        if Meth_id.Set.is_empty !targets then None
        else
          match Meth_id.Set.choose_opt !targets with
          | None -> None
          | Some first -> (
            match summary first with
            | None -> None
            | Some items ->
              if
                Meth_id.Set.for_all
                  (fun m -> summary m = Some items)
                  !targets
              then Some (items, !targets)
              else None)
      in
      Hashtbl.add sig_verdicts (Sig_id.to_int s) v;
      v
  in
  let actions = Hashtbl.create 64 in
  let summarized = ref Meth_id.Set.empty in
  Program.iter_meths program (fun _ mi ->
      iter_instrs
        (fun instr ->
          match instr with
          | Virtual_call { signature; invo; _ } -> (
            match sig_verdict signature with
            | Some (items, targets) ->
              Hashtbl.replace actions (Invo_id.to_int invo) items;
              summarized := Meth_id.Set.union targets !summarized
            | None -> ())
          | Static_call { callee; invo; _ } -> (
            match summary callee with
            | Some items ->
              Hashtbl.replace actions (Invo_id.to_int invo) items;
              summarized := Meth_id.Set.add callee !summarized
            | None -> ())
          | Alloc _ | Move _ | Cast _ | Load _ | Store _ | Static_load _
          | Static_store _ | Throw _ ->
            ())
        mi.body);
  {
    actions;
    summarized = !summarized;
    n_cut_sites = Hashtbl.length actions;
  }

let action t invo = Hashtbl.find_opt t.actions (Invo_id.to_int invo)
let summarized t = t.summarized
let n_cut_sites t = t.n_cut_sites
