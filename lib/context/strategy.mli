(** The context-strategy interface: the paper's three constructor
    functions, plus an optional cut-shortcut plan.

    The analysis core (both the native solver and the Datalog reference
    implementation) is written once against this interface; instantiating
    it with different [record]/[merge]/[merge_static] definitions yields
    every analysis in the paper — context-insensitive, call-site-,
    object- and type-sensitive, and all uniform/selective hybrids.
    Strategies are normally built from {!Algebra} terms; see
    {!module:Strategies} for the named presets.

    Beyond the paper's signature, [merge]/[merge_static] also receive
    the resolved callee method — presets ignore it, but it is what lets
    adaptive and per-method strategies choose a context shape per
    callee without any engine changes. *)

type t = {
  name : string;  (** the paper's abbreviation, e.g. ["S-2obj+H"] *)
  description : string;
  initial_ctx : Ctx.value;
      (** context under which entry points are analyzed; [Star]-padded to
          the analysis's context shape *)
  record : heap:Pta_ir.Ir.Heap_id.t -> ctx:Ctx.value -> Ctx.value;
      (** new heap context at an allocation (paper: [Record(heap, ctx)]) *)
  merge :
    heap:Pta_ir.Ir.Heap_id.t ->
    hctx:Ctx.value ->
    invo:Pta_ir.Ir.Invo_id.t ->
    callee:Pta_ir.Ir.Meth_id.t ->
    ctx:Ctx.value ->
    Ctx.value;
      (** new callee context at a virtual call
          (paper: [Merge(heap, hctx, invo, ctx)]; [callee] is the
          dispatch-resolved method) *)
  merge_static :
    invo:Pta_ir.Ir.Invo_id.t ->
    callee:Pta_ir.Ir.Meth_id.t ->
    ctx:Ctx.value ->
    Ctx.value;
      (** new callee context at a static call
          (paper: [MergeStatic(invo, ctx)]) *)
  shortcut : Shortcut.t option;
      (** when set, both engines cut the parameter/return wiring at every
          invocation site the plan covers and thread the callee's effect
          through the caller's own context instead (see {!Shortcut}) *)
}
