(** Cut-shortcut plans: threading data flow {e around} calls to trivial
    methods instead of cloning contexts for them (Ma et al., "Context
    Sensitivity without Contexts").

    A method is {e summarizable} when its entire effect on caller-visible
    state is a finite list of direct flows between the call's receiver,
    arguments and return target: getters ([return this.f]), setters
    ([this.f = x]), identities/forwarders ([return x]), [return this]
    fluent chains, and straight-line combinations of these.  For a call
    site whose every possible callee has the same summary, the engines
    can {e cut} the parameter/return flow through the callee and
    {e shortcut} it with equivalent move/load/store flows in the caller's
    own context — the precision of inlining, without manufacturing any
    callee contexts.

    The plan is computed once per program, from the IR alone; both
    engines consume the same plan, which is what keeps the native solver
    and the Datalog reference fact-identical under shortcut strategies.

    Soundness caveat (as in the source paper): facts {e inside} a
    summarized method (its formals, locals and return variable) are
    deliberately under-approximated — every caller-visible effect is
    replicated at the call site, but the callee's own variables no
    longer receive the cut flows.  {!summarized} exposes the affected
    methods so clients (e.g. the interpreter-soundness test) can scope
    their claims to caller-visible facts. *)

(** Where a shortcut flow reads from, relative to the call site. *)
type arg =
  | This  (** the receiver ([base] of a virtual call) *)
  | Param of int  (** the [i]-th actual argument *)

(** One caller-side flow replacing the callee's effect. *)
type item =
  | Copy_ret of arg  (** [ret = this] / [ret = arg_i] *)
  | Load_ret of Pta_ir.Ir.Field_id.t  (** [ret = this.f] *)
  | Store_field of Pta_ir.Ir.Field_id.t * arg  (** [this.f = this|arg_i] *)

type t

val compute : Pta_ir.Ir.Program.t -> t
(** Summarize every summarizable method and resolve, per invocation
    site, whether the call can be cut: a static call iff its callee has
    a summary; a virtual call iff {e every} method its signature can
    dispatch to (over all classes) has the same summary. *)

val action : t -> Pta_ir.Ir.Invo_id.t -> item list option
(** [Some items] when the call site is cut: the engines suppress the
    parameter and return wiring for this invocation and apply [items] in
    the caller's context instead (items mentioning a missing return
    target are dropped at application).  [None]: wire the call
    normally. *)

val summarized : t -> Pta_ir.Ir.Meth_id.Set.t
(** The methods whose calls may be cut somewhere — the scope of the
    under-approximation described above. *)

val n_cut_sites : t -> int
(** Invocation sites with an action, for reporting. *)
