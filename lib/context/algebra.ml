module Ir = Pta_ir.Ir
module Hierarchy = Pta_ir.Hierarchy

type kind = Kcall | Kobj | Ktype

type elem =
  | Star
  | Site
  | Recv
  | Recv_type
  | Alloc
  | Caller of int
  | Hctx of int
  | If_site of int * elem * elem

type spec = {
  depth : int;
  record : elem array;
  merge : elem array;
  merge_static : elem array;
}

type t =
  | Insens
  | Base of { kind : kind; k : int; h : int }
  | Uniform of t
  | Selective of t
  | Selective_a of t
  | Form_adaptive of t
  | Adaptive of { deep : t; shallow : t; hot : int }
  | Per_method of { cases : (string * t) list; default : t }
  | Cut_shortcut of t
  | Raw of spec

let insens = Insens
let call ?(h = 0) k = Base { kind = Kcall; k; h }
let obj ?(h = 0) k = Base { kind = Kobj; k; h }
let typ ?(h = 0) k = Base { kind = Ktype; k; h }
let uniform t = Uniform t
let selective_a t = Selective_a t
let selective_b t = Selective t
let form_adaptive t = Form_adaptive t
let adaptive ~deep ~shallow ~hot = Adaptive { deep; shallow; hot }
let per_method cases ~default = Per_method { cases; default }
let cut_shortcut t = Cut_shortcut t

let raw ~depth ~record ~merge ~merge_static =
  Raw
    {
      depth;
      record = Array.of_list record;
      merge = Array.of_list merge;
      merge_static = Array.of_list merge_static;
    }

let callsite = Site
let receiver_obj = Recv
let receiver_type = Recv_type
let alloc_site = Alloc
let equal (a : t) (b : t) = a = b

(* ------------------------------------------------------------------ *)
(* Printing (needed early: validation errors quote canonical forms)    *)
(* ------------------------------------------------------------------ *)

let kind_name = function Kcall -> "call" | Kobj -> "obj" | Ktype -> "type"

let rec elem_to_string = function
  | Star -> "*"
  | Site -> "site"
  | Recv -> "recv"
  | Recv_type -> "recv_type"
  | Alloc -> "alloc"
  | Caller i -> Printf.sprintf "caller %d" i
  | Hctx i -> Printf.sprintf "hctx %d" i
  | If_site (i, a, b) ->
    Printf.sprintf "if_site(%d, %s, %s)" i (elem_to_string a) (elem_to_string b)

let row_to_string row =
  "[" ^ String.concat ", " (List.map elem_to_string (Array.to_list row)) ^ "]"

let rec to_string = function
  | Insens -> "insens"
  | Base { kind; k; h } ->
    if h = 0 then Printf.sprintf "%s %d" (kind_name kind) k
    else Printf.sprintf "%s %d %d" (kind_name kind) k h
  | Uniform t -> "uniform(" ^ to_string t ^ ")"
  | Selective t -> "selective(" ^ to_string t ^ ")"
  | Selective_a t -> "selective_a(" ^ to_string t ^ ")"
  | Form_adaptive t -> "form_adaptive(" ^ to_string t ^ ")"
  | Adaptive { deep; shallow; hot } ->
    Printf.sprintf "adaptive(%s, %s, %d)" (to_string deep) (to_string shallow)
      hot
  | Per_method { cases; default } ->
    let case (g, t) = Printf.sprintf "\"%s\": %s" g (to_string t) in
    "per_method("
    ^ String.concat ", " (List.map case cases @ [ to_string default ])
    ^ ")"
  | Cut_shortcut t -> "cs(" ^ to_string t ^ ")"
  | Raw { depth; record; merge; merge_static } ->
    Printf.sprintf "raw(%d, %s, %s, %s)" depth (row_to_string record)
      (row_to_string merge) (row_to_string merge_static)

let heap_suffix = function
  | 0 -> ""
  | 1 -> " with a context-sensitive heap"
  | h -> Printf.sprintf " with a %d-deep context-sensitive heap" h

let rec describe = function
  | Insens -> "context-insensitive"
  | Base { kind; k; h } ->
    let source =
      match kind with
      | Kcall -> "call-site"
      | Kobj -> "object"
      | Ktype -> "type"
    in
    Printf.sprintf "%d-%s-sensitive%s" k source (heap_suffix h)
  | Uniform t -> "uniform hybrid over " ^ describe t
  | Selective t -> "selective hybrid (variant B) over " ^ describe t
  | Selective_a t -> "selective hybrid (variant A) over " ^ describe t
  | Form_adaptive t -> "form-adaptive selective hybrid over " ^ describe t
  | Adaptive { deep; shallow; hot } ->
    Printf.sprintf "adaptive: %s for methods with >= %d potential call sites, else %s"
      (describe deep) hot (describe shallow)
  | Per_method _ -> "per-method context selection"
  | Cut_shortcut t ->
    "cut-shortcut (trivial calls threaded through the caller) over "
    ^ describe t
  | Raw _ -> "custom constructor table"

(* ------------------------------------------------------------------ *)
(* Validation and spec compilation                                     *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind
let max_depth = 3
let max_heap_depth = 2

type row_pos = Precord | Pmerge | Pstatic

let pos_name = function
  | Precord -> "record"
  | Pmerge -> "merge"
  | Pstatic -> "merge_static"

let rec check_elem ~pos ~depth e =
  match e with
  | Star -> Ok ()
  | Alloc ->
    if pos = Precord then Ok ()
    else
      Error
        (Printf.sprintf "raw: alloc is only valid in the record row, not %s"
           (pos_name pos))
  | Site ->
    if pos = Precord then
      Error "raw: site is not valid in the record row (no invocation there)"
    else Ok ()
  | Recv | Recv_type ->
    if pos = Pmerge then Ok ()
    else
      Error
        (Printf.sprintf
           "raw: %s is only valid in the merge row (no receiver in %s)"
           (elem_to_string e) (pos_name pos))
  | Caller i ->
    if i >= 0 && i < depth then Ok ()
    else
      Error
        (Printf.sprintf "raw: caller index %d out of range for depth %d" i
           depth)
  | Hctx i ->
    if pos <> Pmerge then
      Error
        (Printf.sprintf "raw: hctx is only valid in the merge row, not %s"
           (pos_name pos))
    else if i >= 0 && i < max_heap_depth then Ok ()
    else
      Error
        (Printf.sprintf
           "raw: hctx index %d out of range (heap contexts have at most %d elements)"
           i max_heap_depth)
  | If_site (i, a, b) ->
    if i < 0 || i >= depth then
      Error
        (Printf.sprintf "raw: if_site index %d out of range for depth %d" i
           depth)
    else
      let* () = check_elem ~pos ~depth a in
      check_elem ~pos ~depth b

let check_row ~pos ~depth row =
  Array.fold_left
    (fun acc e ->
      let* () = acc in
      check_elem ~pos ~depth e)
    (Ok ()) row

let check_raw ({ depth; record; merge; merge_static } as s) =
  if depth < 0 || depth > max_depth then
    Error
      (Printf.sprintf "raw: depth must be between 0 and %d (got %d)" max_depth
         depth)
  else if Array.length merge <> depth then
    Error
      (Printf.sprintf "raw: merge row has %d elements, expected %d"
         (Array.length merge) depth)
  else if Array.length merge_static <> depth then
    Error
      (Printf.sprintf "raw: merge_static row has %d elements, expected %d"
         (Array.length merge_static) depth)
  else if Array.length record > max_heap_depth then
    Error
      (Printf.sprintf "raw: record row has %d elements, maximum is %d"
         (Array.length record) max_heap_depth)
  else
    let* () = check_row ~pos:Precord ~depth record in
    let* () = check_row ~pos:Pmerge ~depth merge in
    let* () = check_row ~pos:Pstatic ~depth merge_static in
    Ok s

(* Hybrid composers are defined over object-/type-sensitive bases: a
   call-site base would stamp the same invocation-site element the
   composer itself manages, collapsing the hybrid into plain call-site
   sensitivity. *)
let base_of ~who t =
  match t with
  | Base { kind = (Kobj | Ktype) as kind; k; h } -> Ok (kind, k, h)
  | Base { kind = Kcall; _ } ->
    Error
      (who
     ^ ": base must be object- or type-sensitive (obj K [H] or type K [H]), \
        not call-site-sensitive")
  | Insens | Uniform _ | Selective _ | Selective_a _ | Form_adaptive _
  | Adaptive _ | Per_method _ | Cut_shortcut _ | Raw _ ->
    Error
      (Printf.sprintf
         "%s: base must be a base analysis (obj K [H] or type K [H]), got %s"
         who (to_string t))

let callers n = Array.init n (fun i -> Caller i)

let rec spec_of t =
  match t with
  | Insens -> Ok { depth = 0; record = [||]; merge = [||]; merge_static = [||] }
  | Base { kind; k; h } ->
    if k < 1 || k > max_depth then
      Error
        (Printf.sprintf "context depth must be between 1 and %d (got %d)"
           max_depth k)
    else if h < 0 || h > max_heap_depth then
      Error
        (Printf.sprintf "heap depth must be between 0 and %d (got %d)"
           max_heap_depth h)
    else if h > k then
      Error
        (Printf.sprintf "heap depth (%d) cannot exceed context depth (%d)" h k)
    else
      let source = match kind with Kcall -> Site | Kobj -> Recv | Ktype -> Recv_type in
      let merge =
        Array.init k (fun i ->
            if i = 0 then source
            else match kind with Kcall -> Caller (i - 1) | Kobj | Ktype -> Hctx (i - 1))
      in
      let merge_static =
        match kind with
        | Kcall -> Array.init k (fun i -> if i = 0 then Site else Caller (i - 1))
        | Kobj | Ktype -> callers k
      in
      Ok { depth = k; record = callers h; merge; merge_static }
  | Uniform base ->
    let* kind, k, h = base_of ~who:"uniform" base in
    let* s = spec_of (Base { kind; k; h }) in
    if s.depth + 1 > max_depth then
      Error
        (Printf.sprintf "uniform: resulting tuple depth %d exceeds the maximum of %d"
           (s.depth + 1) max_depth)
    else
      Ok
        {
          depth = s.depth + 1;
          record = s.record;
          merge = Array.append s.merge [| Site |];
          merge_static = Array.append (callers s.depth) [| Site |];
        }
  | Selective base ->
    let* kind, k, h = base_of ~who:"selective" base in
    let* s = spec_of (Base { kind; k; h }) in
    if s.depth + 1 > max_depth then
      Error
        (Printf.sprintf
           "selective: resulting tuple depth %d exceeds the maximum of %d"
           (s.depth + 1) max_depth)
    else
      Ok
        {
          depth = s.depth + 1;
          record = s.record;
          merge = Array.append s.merge [| Star |];
          merge_static =
            Array.append [| Caller 0; Site |]
              (Array.init (s.depth - 1) (fun i -> Caller (i + 1)));
        }
  | Selective_a base ->
    let* kind, k, h = base_of ~who:"selective_a" base in
    let* s = spec_of (Base { kind; k; h }) in
    Ok
      {
        s with
        merge_static =
          Array.init s.depth (fun i -> if i = 0 then Site else Caller (i - 1));
      }
  | Form_adaptive base -> (
    let* kind, k, h = base_of ~who:"form_adaptive" base in
    match (k, h) with
    | 2, 1 ->
      let* s = spec_of (Selective (Base { kind; k; h })) in
      Ok { s with record = [| If_site (1, Caller 1, Caller 0) |] }
    | _, _ ->
      Error
        (Printf.sprintf "form_adaptive: base must be obj 2 1 or type 2 1, got %s"
           (to_string (Base { kind; k; h }))))
  | Adaptive _ ->
    Error "adaptive terms have no fixed constructor table (shape is per-callee)"
  | Per_method _ ->
    Error
      "per_method terms have no fixed constructor table (shape is per-callee)"
  | Cut_shortcut _ ->
    Error "cs terms have no fixed constructor table (cut set is per-program)"
  | Raw s -> check_raw s

let rec validate t =
  match t with
  | Adaptive { deep; shallow; hot } ->
    if hot < 1 then Error "adaptive: hot threshold must be at least 1"
    else
      let* deep_s = spec_of deep in
      let* shallow_s = spec_of shallow in
      if deep_s.depth < shallow_s.depth then
        Error
          (Printf.sprintf
             "adaptive: deep shape %s is shallower than the shallow shape %s"
             (to_string deep) (to_string shallow))
      else Ok ()
  | Per_method { cases; default } ->
    let* () =
      List.fold_left
        (fun acc (glob, sub) ->
          let* () = acc in
          if glob = "" then Error "per_method: empty glob pattern"
          else
            let* _ = spec_of sub in
            Ok ())
        (Ok ()) cases
    in
    let* _ = spec_of default in
    Ok ()
  | Cut_shortcut (Cut_shortcut _) -> Error "cs: cut-shortcut terms do not nest"
  | Cut_shortcut inner -> validate inner
  | Insens | Base _ | Uniform _ | Selective _ | Selective_a _ | Form_adaptive _
  | Raw _ ->
    let* _ = spec_of t in
    Ok ()

(* ------------------------------------------------------------------ *)
(* Compilation to a Strategy.t                                         *)
(* ------------------------------------------------------------------ *)

type oracle = Ir.Meth_id.t -> int

let static_call_count_oracle program =
  let counts = Array.make (Ir.Program.n_meths program) 0 in
  let hierarchy = Hierarchy.create program in
  let sig_targets = Hashtbl.create 16 in
  let targets_of s =
    match Hashtbl.find_opt sig_targets (Ir.Sig_id.to_int s) with
    | Some ts -> ts
    | None ->
      let ts = ref Ir.Meth_id.Set.empty in
      for ty = 0 to Ir.Program.n_types program - 1 do
        match Hierarchy.lookup hierarchy (Ir.Type_id.of_int ty) s with
        | Some m when not (Ir.Program.meth_info program m).Ir.meth_static ->
          ts := Ir.Meth_id.Set.add m !ts
        | Some _ | None -> ()
      done;
      Hashtbl.add sig_targets (Ir.Sig_id.to_int s) !ts;
      !ts
  in
  Ir.Program.iter_meths program (fun _ mi ->
      Ir.iter_instrs
        (fun instr ->
          match instr with
          | Ir.Virtual_call { signature; _ } ->
            Ir.Meth_id.Set.iter
              (fun m ->
                let i = Ir.Meth_id.to_int m in
                counts.(i) <- counts.(i) + 1)
              (targets_of signature)
          | Ir.Static_call { callee; _ } ->
            let i = Ir.Meth_id.to_int callee in
            counts.(i) <- counts.(i) + 1
          | Ir.Alloc _ | Ir.Move _ | Ir.Cast _ | Ir.Load _ | Ir.Store _
          | Ir.Static_load _ | Ir.Static_store _ | Ir.Throw _ ->
            ())
        mi.Ir.body);
  fun m -> counts.(Ir.Meth_id.to_int m)

(* CA : H -> T, the class containing the allocation site. *)
let class_of_alloc program heap =
  let owner = (Ir.Program.heap_info program heap).Ir.heap_owner in
  (Ir.Program.meth_info program owner).Ir.meth_owner

let nth_ctx (v : Ctx.value) i =
  if i >= 0 && i < Array.length v then v.(i) else Ctx.Star

let is_invo = function Ctx.Invo _ -> true | Ctx.Star | Ctx.Heap _ | Ctx.Type _ -> false

(* Validation guarantees the [Option.get]s: [Site]/[Recv]/[Recv_type]/
   [Hctx]/[Alloc] only appear in rows whose evaluation site supplies the
   corresponding input. *)
let rec eval_elem program ~heap ~hctx ~invo ~(ctx : Ctx.value) e : Ctx.elem =
  match e with
  | Star -> Ctx.Star
  | Site -> Ctx.Invo (Option.get invo)
  | Recv -> Ctx.Heap (Option.get heap)
  | Recv_type -> Ctx.Type (class_of_alloc program (Option.get heap))
  | Alloc -> Ctx.Heap (Option.get heap)
  | Caller i -> nth_ctx ctx i
  | Hctx i -> nth_ctx (Option.get hctx) i
  | If_site (i, a, b) ->
    if is_invo (nth_ctx ctx i) then eval_elem program ~heap ~hctx ~invo ~ctx a
    else eval_elem program ~heap ~hctx ~invo ~ctx b

let eval_row program ~heap ~hctx ~invo ~ctx row =
  Array.map (eval_elem program ~heap ~hctx ~invo ~ctx) row

(* The engine-facing shape: every strategy is a per-method spec choice
   plus row evaluation.  Fixed-shape terms use a constant [spec_for]. *)
let dispatching program ~depth ~spec_for : Strategy.t =
  {
    Strategy.name = "";
    description = "";
    initial_ctx = Array.make depth Ctx.Star;
    record =
      (fun ~heap ~ctx ->
        let owner = (Ir.Program.heap_info program heap).Ir.heap_owner in
        eval_row program ~heap:(Some heap) ~hctx:None ~invo:None ~ctx
          (spec_for owner).record);
    merge =
      (fun ~heap ~hctx ~invo ~callee ~ctx ->
        eval_row program ~heap:(Some heap) ~hctx:(Some hctx) ~invo:(Some invo)
          ~ctx (spec_for callee).merge);
    merge_static =
      (fun ~invo ~callee ~ctx ->
        eval_row program ~heap:None ~hctx:None ~invo:(Some invo) ~ctx
          (spec_for callee).merge_static);
    shortcut = None;
  }

let of_spec program spec =
  dispatching program ~depth:spec.depth ~spec_for:(fun _ -> spec)

(* Glob matching with ['*'] as "any substring". *)
let glob_match pat s =
  let np = String.length pat and ns = String.length s in
  let rec go pi si =
    if pi = np then si = ns
    else
      match pat.[pi] with
      | '*' -> go (pi + 1) si || (si < ns && go pi (si + 1))
      | c -> si < ns && s.[si] = c && go (pi + 1) (si + 1)
  in
  go 0 0

let memo_spec_for f =
  let cache = Hashtbl.create 64 in
  fun m ->
    let key = Ir.Meth_id.to_int m in
    match Hashtbl.find_opt cache key with
    | Some s -> s
    | None ->
      let s = f m in
      Hashtbl.add cache key s;
      s

let spec_of_exn t =
  match spec_of t with Ok s -> s | Error msg -> invalid_arg msg

let rec build program ~oracle t : Strategy.t =
  match t with
  | Insens | Base _ | Uniform _ | Selective _ | Selective_a _ | Form_adaptive _
  | Raw _ ->
    of_spec program (spec_of_exn t)
  | Adaptive { deep; shallow; hot } ->
    let deep_s = spec_of_exn deep and shallow_s = spec_of_exn shallow in
    let hotness = Lazy.force oracle in
    let spec_for =
      memo_spec_for (fun m -> if hotness m >= hot then deep_s else shallow_s)
    in
    dispatching program ~depth:(max deep_s.depth shallow_s.depth) ~spec_for
  | Per_method { cases; default } ->
    let compiled =
      List.map (fun (glob, sub) -> (glob, spec_of_exn sub)) cases
    in
    let default_s = spec_of_exn default in
    let depth =
      List.fold_left
        (fun d (_, s) -> max d s.depth)
        default_s.depth compiled
    in
    let spec_for =
      memo_spec_for (fun m ->
          let qname = Ir.Program.meth_qualified_name program m in
          match
            List.find_opt (fun (glob, _) -> glob_match glob qname) compiled
          with
          | Some (_, s) -> s
          | None -> default_s)
    in
    dispatching program ~depth ~spec_for
  | Cut_shortcut inner ->
    let inner_s = build program ~oracle inner in
    let plan = Shortcut.compute program in
    let cut invo = Shortcut.action plan invo <> None in
    {
      inner_s with
      merge =
        (fun ~heap ~hctx ~invo ~callee ~ctx ->
          if cut invo then inner_s.Strategy.initial_ctx
          else inner_s.Strategy.merge ~heap ~hctx ~invo ~callee ~ctx);
      merge_static =
        (fun ~invo ~callee ~ctx ->
          if cut invo then inner_s.Strategy.initial_ctx
          else inner_s.Strategy.merge_static ~invo ~callee ~ctx);
      shortcut = Some plan;
    }

let to_strategy ?name ?description ?oracle program t =
  let* () = validate t in
  let oracle =
    lazy
      (match oracle with
      | Some f -> f
      | None -> static_call_count_oracle program)
  in
  let s = build program ~oracle t in
  Ok
    {
      s with
      Strategy.name = Option.value name ~default:(to_string t);
      description = Option.value description ~default:(describe t);
    }

let to_strategy_exn ?name ?description ?oracle program t =
  match to_strategy ?name ?description ?oracle program t with
  | Ok s -> s
  | Error msg -> invalid_arg ("Algebra.to_strategy: " ^ msg)

(* ------------------------------------------------------------------ *)
(* The expression language                                             *)
(* ------------------------------------------------------------------ *)

type token =
  | Tid of string
  | Tint of int
  | Tstr of string
  | Tlpar
  | Trpar
  | Tlbrk
  | Trbrk
  | Tcomma
  | Tcolon
  | Tstar

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Parse_error msg)) fmt

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let is_ident c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_'
  in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' then incr i
    else if c = '(' then (toks := Tlpar :: !toks; incr i)
    else if c = ')' then (toks := Trpar :: !toks; incr i)
    else if c = '[' then (toks := Tlbrk :: !toks; incr i)
    else if c = ']' then (toks := Trbrk :: !toks; incr i)
    else if c = ',' then (toks := Tcomma :: !toks; incr i)
    else if c = ':' then (toks := Tcolon :: !toks; incr i)
    else if c = '*' then (toks := Tstar :: !toks; incr i)
    else if c = '"' then begin
      let j = ref (!i + 1) in
      while !j < n && s.[!j] <> '"' do
        incr j
      done;
      if !j >= n then fail "unterminated string literal";
      toks := Tstr (String.sub s (!i + 1) (!j - !i - 1)) :: !toks;
      i := !j + 1
    end
    else if c >= '0' && c <= '9' then begin
      let j = ref !i in
      while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do
        incr j
      done;
      toks := Tint (int_of_string (String.sub s !i (!j - !i))) :: !toks;
      i := !j
    end
    else if is_ident c then begin
      let j = ref !i in
      while !j < n && is_ident s.[!j] do
        incr j
      done;
      toks := Tid (String.sub s !i (!j - !i)) :: !toks;
      i := !j
    end
    else fail "unexpected character '%c'" c
  done;
  Array.of_list (List.rev !toks)

let token_to_string = function
  | Tid s -> "'" ^ s ^ "'"
  | Tint n -> string_of_int n
  | Tstr s -> "\"" ^ s ^ "\""
  | Tlpar -> "'('"
  | Trpar -> "')'"
  | Tlbrk -> "'['"
  | Trbrk -> "']'"
  | Tcomma -> "','"
  | Tcolon -> "':'"
  | Tstar -> "'*'"

let parse input =
  try
    let toks = tokenize input in
    let pos = ref 0 in
    let peek () = if !pos < Array.length toks then Some toks.(!pos) else None in
    let next what =
      match peek () with
      | Some t ->
        incr pos;
        t
      | None -> fail "expected %s, got end of input" what
    in
    let expect tok what =
      let t = next what in
      if t <> tok then fail "expected %s, got %s" what (token_to_string t)
    in
    let expect_int what =
      match next what with
      | Tint n -> n
      | t -> fail "expected %s, got %s" what (token_to_string t)
    in
    let rec parse_elem () =
      match next "a context element" with
      | Tstar -> Star
      | Tid "site" -> Site
      | Tid "recv" -> Recv
      | Tid "recv_type" -> Recv_type
      | Tid "alloc" -> Alloc
      | Tid "caller" -> Caller (expect_int "a caller index")
      | Tid "hctx" -> Hctx (expect_int "an hctx index")
      | Tid "if_site" ->
        expect Tlpar "'(' after if_site";
        let i = expect_int "an if_site index" in
        expect Tcomma "',' in if_site";
        let a = parse_elem () in
        expect Tcomma "',' in if_site";
        let b = parse_elem () in
        expect Trpar "')' closing if_site";
        If_site (i, a, b)
      | t -> fail "expected a context element, got %s" (token_to_string t)
    in
    let parse_row () =
      expect Tlbrk "'[' opening an element row";
      if peek () = Some Trbrk then begin
        incr pos;
        [||]
      end
      else begin
        let elems = ref [ parse_elem () ] in
        let rec more () =
          match next "',' or ']' in an element row" with
          | Tcomma ->
            elems := parse_elem () :: !elems;
            more ()
          | Trbrk -> ()
          | t ->
            fail "expected ',' or ']' in an element row, got %s"
              (token_to_string t)
        in
        more ();
        Array.of_list (List.rev !elems)
      end
    in
    let rec parse_term () =
      match next "a strategy term" with
      | Tid "insens" -> Insens
      | Tid (("call" | "obj" | "type") as name) ->
        let kind =
          match name with
          | "call" -> Kcall
          | "obj" -> Kobj
          | _ -> Ktype
        in
        let k = expect_int ("a context depth after '" ^ name ^ "'") in
        let h = match peek () with
          | Some (Tint h) ->
            incr pos;
            h
          | Some _ | None -> 0
        in
        Base { kind; k; h }
      | Tid
          (("uniform" | "selective" | "selective_a" | "selective_b"
           | "form_adaptive" | "cs") as name) ->
        expect Tlpar ("'(' after " ^ name);
        let sub = parse_term () in
        expect Trpar ("')' closing " ^ name);
        (match name with
        | "uniform" -> Uniform sub
        | "selective" | "selective_b" -> Selective sub
        | "selective_a" -> Selective_a sub
        | "form_adaptive" -> Form_adaptive sub
        | _ -> Cut_shortcut sub)
      | Tid "adaptive" ->
        expect Tlpar "'(' after adaptive";
        let deep = parse_term () in
        expect Tcomma "',' after the deep shape";
        let shallow = parse_term () in
        expect Tcomma "',' after the shallow shape";
        let hot = expect_int "a hotness threshold" in
        expect Trpar "')' closing adaptive";
        Adaptive { deep; shallow; hot }
      | Tid "per_method" ->
        expect Tlpar "'(' after per_method";
        let cases = ref [] in
        let rec entries () =
          match peek () with
          | Some (Tstr glob) ->
            incr pos;
            expect Tcolon "':' after a per_method glob";
            let sub = parse_term () in
            cases := (glob, sub) :: !cases;
            (match next "',' continuing per_method" with
            | Tcomma -> entries ()
            | t ->
              fail
                "expected ',' and a default term closing per_method, got %s"
                (token_to_string t))
          | Some _ ->
            let default = parse_term () in
            expect Trpar "')' closing per_method";
            default
          | None -> fail "per_method: missing default term"
        in
        let default = entries () in
        Per_method { cases = List.rev !cases; default }
      | Tid "raw" ->
        expect Tlpar "'(' after raw";
        let depth = expect_int "a tuple depth" in
        expect Tcomma "',' after the raw depth";
        let record = parse_row () in
        expect Tcomma "',' after the record row";
        let merge = parse_row () in
        expect Tcomma "',' after the merge row";
        let merge_static = parse_row () in
        expect Trpar "')' closing raw";
        Raw { depth; record; merge; merge_static }
      | Tid name -> fail "unknown combinator '%s'" name
      | t -> fail "expected a strategy term, got %s" (token_to_string t)
    in
    if Array.length toks = 0 then Error "empty strategy expression"
    else begin
      let t = parse_term () in
      match peek () with
      | None -> Ok t
      | Some tok -> fail "trailing input after term: %s" (token_to_string tok)
    end
  with Parse_error msg -> Error msg

let of_string s =
  let* t = parse s in
  let* () = validate t in
  Ok t
