(** Reference implementation of the analysis: the paper's Figure-2 rules
    encoded literally on the generic Datalog engine, with context
    construction as engine constructor hooks.

    Orders of magnitude slower than {!Pta_solver.Solver}, but a direct
    transcription of the declarative specification — used as the
    differential-testing oracle that the native solver must agree with on
    every program. *)

type t

val run :
  ?observer:Pta_obs.Observer.t ->
  ?budget:Pta_obs.Budget.t ->
  ?trace:Pta_obs.Trace.t ->
  ?metrics:Pta_metrics.Registry.t ->
  Pta_ir.Ir.Program.t ->
  Pta_context.Strategy.t ->
  t
(** Evaluate the reference rules, optionally under the same observer /
    budget / trace instruments as the native solver — so the
    differential oracle is measured with the same tools.  A live [trace]
    receives per-rule complete spans from the engine (see
    {!Pta_datalog.Engine.run}).

    @raise Pta_obs.Budget.Exhausted when the budget runs out. *)

val fold_var_points_to :
  t ->
  (Pta_ir.Ir.Var_id.t ->
  Pta_context.Ctx.value ->
  Pta_ir.Ir.Heap_id.t ->
  Pta_context.Ctx.value ->
  'a ->
  'a) ->
  'a ->
  'a
(** Every [VarPointsTo(var, ctx, heap, hctx)] fact, contexts decoded. *)

val fold_call_edges :
  t ->
  (Pta_ir.Ir.Invo_id.t ->
  Pta_context.Ctx.value ->
  Pta_ir.Ir.Meth_id.t ->
  Pta_context.Ctx.value ->
  'a ->
  'a) ->
  'a ->
  'a

val fold_throw_points_to :
  t ->
  (Pta_ir.Ir.Meth_id.t ->
  Pta_context.Ctx.value ->
  Pta_ir.Ir.Heap_id.t ->
  Pta_context.Ctx.value ->
  'a ->
  'a) ->
  'a ->
  'a
(** Every [ThrowPointsTo(meth, ctx, heap, hctx)] fact. *)

val fold_reachable :
  t -> (Pta_ir.Ir.Meth_id.t -> Pta_context.Ctx.value -> 'a -> 'a) -> 'a -> 'a

val n_var_points_to : t -> int
val n_call_edges : t -> int
val n_reachable : t -> int

val census : t -> Pta_obs.Census.t
(** A reachable-heap census of the solved EDB/IDB state: one component
    per result relation (["var-points-to"], ["call-graph"],
    ["reachable"], ["throw-points-to"]) plus ["context-tables"].  Runs
    [Gc.full_major] and walks the reachable heap — call it once after
    {!run}, never inside a timed region. *)
