module Ir = Pta_ir.Ir
module Hierarchy = Pta_ir.Hierarchy
module Ctx = Pta_context.Ctx
module Strategy = Pta_context.Strategy
module Shortcut = Pta_context.Shortcut
module Relation = Pta_datalog.Relation
module Engine = Pta_datalog.Engine
open Ir
open Engine

type t = {
  vpt : Relation.t;
  cg : Relation.t;
  reach : Relation.t;
  throwpt : Relation.t;
  ctx_store : Ctx.store;
  hctx_store : Ctx.store;
}

(* Populate the extensional database from the program: the input
   relations of the paper's Figure 1 (plus CAST/SUBTYPE for the cast
   rule, and LOOKUP/SUBTYPE precomputed from the class hierarchy).

   Under a cut-shortcut [plan], calls at cut sites keep their VCall/SCall
   facts (call-graph edge, reachability, [this] binding) but lose their
   ActualArg/ActualRet facts; instead the plan's caller-side items are
   injected as ordinary Move/Load/Store facts on the call's own
   variables — literally the relations the equivalent instructions would
   populate, which keeps this engine fact-identical to the native
   solver's cut handling. *)
let build_edb ~plan program =
  let rel name arity = Relation.create ~name ~arity in
  let alloc = rel "Alloc" 3 in
  let move = rel "Move" 2 in
  let cast = rel "Cast" 3 in
  let load = rel "Load" 3 in
  let store = rel "Store" 3 in
  let vcall = rel "VCall" 4 in
  let scall = rel "SCall" 3 in
  let formal_arg = rel "FormalArg" 3 in
  let actual_arg = rel "ActualArg" 3 in
  let formal_ret = rel "FormalRet" 2 in
  let actual_ret = rel "ActualRet" 2 in
  let this_var = rel "ThisVar" 2 in
  let sload = rel "StaticLoad" 3 in
  let sstore = rel "StaticStore" 2 in
  let heap_type = rel "HeapType" 2 in
  let lookup = rel "Lookup" 3 in
  let subtype = rel "Subtype" 2 in
  (* Exception scopes: every method has a root scope; every [Try] block a
     scope whose parent is its enclosing scope.  Handler dispatch is
     precomputed per concrete type, so the rules stay positive. *)
  let throw_in = rel "ThrowIn" 2 in  (* (scope, var) *)
  let call_scope = rel "CallScope" 2 in  (* (invo, scope) *)
  let catches = rel "Catches" 3 in  (* (scope, heap type, catch var) *)
  let escapes_scope = rel "EscapesScope" 2 in  (* (scope, heap type) *)
  let scope_parent = rel "ScopeParent" 2 in
  let root_scope = rel "RootScope" 2 in  (* (scope, meth) *)
  let add r fact = ignore (Relation.add r fact) in
  let hierarchy = Hierarchy.create program in
  let next_scope = ref 0 in
  let fresh_scope () =
    let s = !next_scope in
    incr next_scope;
    s
  in
  let all_class_types =
    List.init (Program.n_types program) Type_id.of_int
  in
  let cut_action invo =
    match plan with
    | None -> None
    | Some plan -> Shortcut.action plan invo
  in
  (* Inject one cut item as the equivalent caller-side instruction
     facts.  [base] is the receiver variable ([None] at static call
     sites, whose summaries cannot mention [this]). *)
  let add_cut_item ~base ~args ~ret_target item =
    let arg_var = function
      | Shortcut.This -> base
      | Shortcut.Param i -> List.nth_opt args i
    in
    match item with
    | Shortcut.Copy_ret arg -> (
      match (ret_target, arg_var arg) with
      | Some ret, Some src ->
        add move [| Var_id.to_int ret; Var_id.to_int src |]
      | _ -> ())
    | Shortcut.Load_ret field -> (
      match (ret_target, base) with
      | Some ret, Some b ->
        add load
          [| Var_id.to_int ret; Var_id.to_int b; Field_id.to_int field |]
      | _ -> ())
    | Shortcut.Store_field (field, arg) -> (
      match (base, arg_var arg) with
      | Some b, Some src ->
        add store
          [| Var_id.to_int b; Field_id.to_int field; Var_id.to_int src |]
      | _ -> ())
  in
  Program.iter_meths program (fun meth mi ->
      let m = Meth_id.to_int meth in
      Array.iteri
        (fun i formal -> add formal_arg [| m; i; Var_id.to_int formal |])
        mi.formals;
      (match mi.ret_var with
      | Some v -> add formal_ret [| m; Var_id.to_int v |]
      | None -> ());
      (match mi.this_var with
      | Some v -> add this_var [| m; Var_id.to_int v |]
      | None -> ());
      let root = fresh_scope () in
      add root_scope [| root; m |];
      let rec walk scope code =
        match code with
        | Instr instr -> walk_instr scope instr
        | Seq cs -> List.iter (walk scope) cs
        | Branch (a, b) ->
          walk scope a;
          walk scope b
        | Loop c -> walk scope c
        | Try (body, handlers) ->
          let inner = fresh_scope () in
          add scope_parent [| inner; scope |];
          (* Precompute, per concrete type, the first matching handler
             (or that none matches). *)
          List.iter
            (fun ty ->
              let rec dispatch = function
                | [] -> add escapes_scope [| inner; Type_id.to_int ty |]
                | h :: rest ->
                  if Hierarchy.subtype hierarchy ~sub:ty ~sup:h.catch_type then
                    add catches
                      [| inner; Type_id.to_int ty; Var_id.to_int h.catch_var |]
                  else dispatch rest
              in
              dispatch handlers)
            all_class_types;
          walk inner body;
          List.iter (fun h -> walk scope h.handler_body) handlers
      and walk_instr scope instr =
        (match instr with
        | Throw { source } -> add throw_in [| scope; Var_id.to_int source |]
        | Virtual_call { invo; _ } | Static_call { invo; _ } ->
          add call_scope [| Invo_id.to_int invo; scope |]
        | Alloc _ | Move _ | Cast _ | Load _ | Store _ | Static_load _
        | Static_store _ -> ());
        match instr with
          | Alloc { target; heap } ->
            add alloc [| Var_id.to_int target; Heap_id.to_int heap; m |]
          | Move { target; source } ->
            add move [| Var_id.to_int target; Var_id.to_int source |]
          | Cast { target; source; cast_type } ->
            add cast
              [| Var_id.to_int target; Var_id.to_int source; Type_id.to_int cast_type |]
          | Load { target; base; field } ->
            add load
              [| Var_id.to_int target; Var_id.to_int base; Field_id.to_int field |]
          | Store { base; field; source } ->
            add store
              [| Var_id.to_int base; Field_id.to_int field; Var_id.to_int source |]
          | Virtual_call { base; signature; invo; args; ret_target } -> (
            add vcall
              [|
                Var_id.to_int base;
                Sig_id.to_int signature;
                Invo_id.to_int invo;
                m;
              |];
            match cut_action invo with
            | Some items ->
              List.iter
                (add_cut_item ~base:(Some base) ~args ~ret_target)
                items
            | None ->
              List.iteri
                (fun i arg ->
                  add actual_arg [| Invo_id.to_int invo; i; Var_id.to_int arg |])
                args;
              Option.iter
                (fun v ->
                  add actual_ret [| Invo_id.to_int invo; Var_id.to_int v |])
                ret_target)
          | Static_call { callee; invo; args; ret_target } -> (
            add scall [| Meth_id.to_int callee; Invo_id.to_int invo; m |];
            match cut_action invo with
            | Some items ->
              List.iter (add_cut_item ~base:None ~args ~ret_target) items
            | None ->
              List.iteri
                (fun i arg ->
                  add actual_arg [| Invo_id.to_int invo; i; Var_id.to_int arg |])
                args;
              Option.iter
                (fun v ->
                  add actual_ret [| Invo_id.to_int invo; Var_id.to_int v |])
                ret_target)
          | Static_load { target; field } ->
            add sload [| Var_id.to_int target; Field_id.to_int field; m |]
          | Static_store { field; source } ->
            add sstore [| Field_id.to_int field; Var_id.to_int source |]
          | Throw _ -> ()
      in
      walk root mi.body);
  Program.iter_heaps program (fun heap hi ->
      add heap_type [| Heap_id.to_int heap; Type_id.to_int hi.heap_type |]);
  Program.iter_types program (fun ty _ ->
      (* Subtype: reflexive-transitive. *)
      Type_id.Set.iter
        (fun sup -> add subtype [| Type_id.to_int ty; Type_id.to_int sup |])
        (Hierarchy.supertypes hierarchy ty);
      (* Lookup, for every signature; static targets are excluded, as a
         virtual call never dispatches to them. *)
      for s = 0 to Program.n_sigs program - 1 do
        match Hierarchy.lookup hierarchy ty (Sig_id.of_int s) with
        | Some m when not (Program.meth_info program m).meth_static ->
          add lookup [| Type_id.to_int ty; s; Meth_id.to_int m |]
        | Some _ | None -> ()
      done);
  ( alloc,
    move,
    cast,
    load,
    store,
    sload,
    sstore,
    vcall,
    scall,
    formal_arg,
    actual_arg,
    formal_ret,
    actual_ret,
    this_var,
    heap_type,
    lookup,
    subtype,
    (throw_in, call_scope, catches, escapes_scope, scope_parent, root_scope) )

let run ?observer ?budget ?trace ?metrics program (strategy : Strategy.t) =
  let ( alloc,
        move,
        cast,
        load,
        store,
        sload,
        sstore,
        vcall,
        scall,
        formal_arg,
        actual_arg,
        formal_ret,
        actual_ret,
        this_var,
        heap_type,
        lookup,
        subtype,
        (throw_in, call_scope, catches, escapes_scope, scope_parent, root_scope) ) =
    build_edb ~plan:strategy.Strategy.shortcut program
  in
  let vpt = Relation.create ~name:"VarPointsTo" ~arity:4 in
  let sfpt = Relation.create ~name:"StaticFldPointsTo" ~arity:3 in
  let thrown = Relation.create ~name:"ThrownInScope" ~arity:4 in
  let throwpt = Relation.create ~name:"ThrowPointsTo" ~arity:4 in
  let fpt = Relation.create ~name:"FldPointsTo" ~arity:5 in
  let cg = Relation.create ~name:"CallGraph" ~arity:4 in
  let interproc = Relation.create ~name:"InterProcAssign" ~arity:4 in
  let reach = Relation.create ~name:"Reachable" ~arity:2 in
  let ctx_store = Ctx.create_store () in
  let hctx_store = Ctx.create_store () in
  let record_hook ~heap_v ~ctx_v env =
    Ctx.intern hctx_store
      (strategy.Strategy.record
         ~heap:(Heap_id.of_int env.(heap_v))
         ~ctx:(Ctx.value ctx_store env.(ctx_v)))
  in
  let merge_hook ~heap_v ~hctx_v ~invo_v ~callee_v ~ctx_v env =
    Ctx.intern ctx_store
      (strategy.Strategy.merge
         ~heap:(Heap_id.of_int env.(heap_v))
         ~hctx:(Ctx.value hctx_store env.(hctx_v))
         ~invo:(Invo_id.of_int env.(invo_v))
         ~callee:(Meth_id.of_int env.(callee_v))
         ~ctx:(Ctx.value ctx_store env.(ctx_v)))
  in
  let merge_static_hook ~invo_v ~callee_v ~ctx_v env =
    Ctx.intern ctx_store
      (strategy.Strategy.merge_static
         ~invo:(Invo_id.of_int env.(invo_v))
         ~callee:(Meth_id.of_int env.(callee_v))
         ~ctx:(Ctx.value ctx_store env.(ctx_v)))
  in
  let rules =
    [
      (* InterProcAssign from parameter passing. *)
      rule "interproc-arg" ~n_vars:7
        [ { hrel = interproc; hargs = [| Hv 5; Hv 3; Hv 6; Hv 1 |] } ]
        [
          { rel = cg; args = [| V 0; V 1; V 2; V 3 |] };
          { rel = formal_arg; args = [| V 2; V 4; V 5 |] };
          { rel = actual_arg; args = [| V 0; V 4; V 6 |] };
        ];
      (* InterProcAssign from return values. *)
      rule "interproc-ret" ~n_vars:6
        [ { hrel = interproc; hargs = [| Hv 5; Hv 1; Hv 4; Hv 3 |] } ]
        [
          { rel = cg; args = [| V 0; V 1; V 2; V 3 |] };
          { rel = formal_ret; args = [| V 2; V 4 |] };
          { rel = actual_ret; args = [| V 0; V 5 |] };
        ];
      (* Allocation: the Record rule. *)
      rule "alloc" ~n_vars:4
        [
          {
            hrel = vpt;
            hargs = [| Hv 2; Hv 1; Hv 3; Hf (record_hook ~heap_v:3 ~ctx_v:1) |];
          };
        ]
        [
          { rel = reach; args = [| V 0; V 1 |] };
          { rel = alloc; args = [| V 2; V 3; V 0 |] };
        ];
      (* Move. *)
      rule "move" ~n_vars:5
        [ { hrel = vpt; hargs = [| Hv 0; Hv 2; Hv 3; Hv 4 |] } ]
        [
          { rel = move; args = [| V 0; V 1 |] };
          { rel = vpt; args = [| V 1; V 2; V 3; V 4 |] };
        ];
      (* Cast: a move filtered by compatibility with the cast type. *)
      rule "cast" ~n_vars:7
        [ { hrel = vpt; hargs = [| Hv 0; Hv 3; Hv 4; Hv 5 |] } ]
        [
          { rel = cast; args = [| V 0; V 1; V 2 |] };
          { rel = vpt; args = [| V 1; V 3; V 4; V 5 |] };
          { rel = heap_type; args = [| V 4; V 6 |] };
          { rel = subtype; args = [| V 6; V 2 |] };
        ];
      (* Inter-procedural assignment. *)
      rule "interproc-assign" ~n_vars:6
        [ { hrel = vpt; hargs = [| Hv 0; Hv 1; Hv 4; Hv 5 |] } ]
        [
          { rel = interproc; args = [| V 0; V 1; V 2; V 3 |] };
          { rel = vpt; args = [| V 2; V 3; V 4; V 5 |] };
        ];
      (* Field load. *)
      rule "load" ~n_vars:8
        [ { hrel = vpt; hargs = [| Hv 0; Hv 3; Hv 6; Hv 7 |] } ]
        [
          { rel = load; args = [| V 0; V 1; V 2 |] };
          { rel = vpt; args = [| V 1; V 3; V 4; V 5 |] };
          { rel = fpt; args = [| V 4; V 5; V 2; V 6; V 7 |] };
        ];
      (* Field store. *)
      rule "store" ~n_vars:8
        [ { hrel = fpt; hargs = [| Hv 6; Hv 7; Hv 1; Hv 4; Hv 5 |] } ]
        [
          { rel = store; args = [| V 0; V 1; V 2 |] };
          { rel = vpt; args = [| V 2; V 3; V 4; V 5 |] };
          { rel = vpt; args = [| V 0; V 3; V 6; V 7 |] };
        ];
      (* Static field store: the global cell absorbs all stored objects,
         dropping the storing context. *)
      rule "static-store" ~n_vars:6
        [ { hrel = sfpt; hargs = [| Hv 0; Hv 4; Hv 5 |] } ]
        [
          { rel = sstore; args = [| V 0; V 1 |] };
          { rel = vpt; args = [| V 1; V 3; V 4; V 5 |] };
        ];
      (* Static field load: the cell's contents appear under every
         context in which the loading method is analyzed. *)
      rule "static-load" ~n_vars:6
        [ { hrel = vpt; hargs = [| Hv 0; Hv 3; Hv 4; Hv 5 |] } ]
        [
          { rel = sload; args = [| V 0; V 1; V 2 |] };
          { rel = reach; args = [| V 2; V 3 |] };
          { rel = sfpt; args = [| V 1; V 4; V 5 |] };
        ];
      (* Exceptions: a thrown object lands in its enclosing scope... *)
      rule "throw" ~n_vars:5
        [ { hrel = thrown; hargs = [| Hv 0; Hv 2; Hv 3; Hv 4 |] } ]
        [
          { rel = throw_in; args = [| V 0; V 1 |] };
          { rel = vpt; args = [| V 1; V 2; V 3; V 4 |] };
        ];
      (* ...as do the exceptions escaping any method called there... *)
      rule "throw-call" ~n_vars:7
        [ { hrel = thrown; hargs = [| Hv 1; Hv 2; Hv 5; Hv 6 |] } ]
        [
          { rel = call_scope; args = [| V 0; V 1 |] };
          { rel = cg; args = [| V 0; V 2; V 3; V 4 |] };
          { rel = throwpt; args = [| V 3; V 4; V 5; V 6 |] };
        ];
      (* ...a matching handler binds its catch variable... *)
      rule "catch" ~n_vars:6
        [ { hrel = vpt; hargs = [| Hv 5; Hv 1; Hv 2; Hv 3 |] } ]
        [
          { rel = thrown; args = [| V 0; V 1; V 2; V 3 |] };
          { rel = heap_type; args = [| V 2; V 4 |] };
          { rel = catches; args = [| V 0; V 4; V 5 |] };
        ];
      (* ...unmatched objects escape to the parent scope... *)
      rule "escape" ~n_vars:6
        [ { hrel = thrown; hargs = [| Hv 5; Hv 1; Hv 2; Hv 3 |] } ]
        [
          { rel = thrown; args = [| V 0; V 1; V 2; V 3 |] };
          { rel = heap_type; args = [| V 2; V 4 |] };
          { rel = escapes_scope; args = [| V 0; V 4 |] };
          { rel = scope_parent; args = [| V 0; V 5 |] };
        ];
      (* ...and objects reaching the method's root scope escape it. *)
      rule "throwpt" ~n_vars:6
        [ { hrel = throwpt; hargs = [| Hv 5; Hv 1; Hv 2; Hv 3 |] } ]
        [
          { rel = thrown; args = [| V 0; V 1; V 2; V 3 |] };
          { rel = root_scope; args = [| V 0; V 5 |] };
        ];
      (* Virtual call: the Merge rule, with its three heads. *)
      (let callee_ctx =
         Hf (merge_hook ~heap_v:4 ~hctx_v:5 ~invo_v:2 ~callee_v:7 ~ctx_v:8)
       in
       rule "vcall" ~n_vars:10
         [
           { hrel = reach; hargs = [| Hv 7; callee_ctx |] };
           { hrel = vpt; hargs = [| Hv 9; callee_ctx; Hv 4; Hv 5 |] };
           { hrel = cg; hargs = [| Hv 2; Hv 8; Hv 7; callee_ctx |] };
         ]
         [
           { rel = vcall; args = [| V 0; V 1; V 2; V 3 |] };
           { rel = reach; args = [| V 3; V 8 |] };
           { rel = vpt; args = [| V 0; V 8; V 4; V 5 |] };
           { rel = heap_type; args = [| V 4; V 6 |] };
           { rel = lookup; args = [| V 6; V 1; V 7 |] };
           { rel = this_var; args = [| V 7; V 9 |] };
         ]);
      (* Static call: the MergeStatic rule. *)
      (let callee_ctx = Hf (merge_static_hook ~invo_v:1 ~callee_v:0 ~ctx_v:3) in
       rule "scall" ~n_vars:4
         [
           { hrel = reach; hargs = [| Hv 0; callee_ctx |] };
           { hrel = cg; hargs = [| Hv 1; Hv 3; Hv 0; callee_ctx |] };
         ]
         [
           { rel = scall; args = [| V 0; V 1; V 2 |] };
           { rel = reach; args = [| V 2; V 3 |] };
         ]);
    ]
  in
  (* Seed: entry points are reachable under the initial context. *)
  let initial = Ctx.intern ctx_store strategy.Strategy.initial_ctx in
  List.iter
    (fun m -> ignore (Relation.add reach [| Meth_id.to_int m; initial |]))
    (Program.entries program);
  (* Lint before evaluating: a rule set with a hard error (range
     violation, arity mismatch) would fail mid-fixpoint with a much less
     helpful message.  [Never_fires] findings are legitimate here — a
     program without casts or throws leaves those EDB relations empty. *)
  (match
     List.filter
       (fun e -> Engine.lint_is_hard e.Engine.lint_kind)
       (Engine.lint rules)
   with
  | [] -> ()
  | hard ->
    invalid_arg
      ("Refimpl: rule program fails lint:\n"
      ^ String.concat "\n"
          (List.map (fun e -> "  " ^ e.Engine.lint_message) hard)));
  Engine.run ?observer ?budget ?trace ?metrics rules;
  { vpt; cg; reach; throwpt; ctx_store; hctx_store }

let fold_var_points_to t f acc =
  Relation.fold
    (fun fact acc ->
      f (Var_id.of_int fact.(0))
        (Ctx.value t.ctx_store fact.(1))
        (Heap_id.of_int fact.(2))
        (Ctx.value t.hctx_store fact.(3))
        acc)
    t.vpt acc

let fold_call_edges t f acc =
  Relation.fold
    (fun fact acc ->
      f (Invo_id.of_int fact.(0))
        (Ctx.value t.ctx_store fact.(1))
        (Meth_id.of_int fact.(2))
        (Ctx.value t.ctx_store fact.(3))
        acc)
    t.cg acc

let fold_reachable t f acc =
  Relation.fold
    (fun fact acc ->
      f (Meth_id.of_int fact.(0)) (Ctx.value t.ctx_store fact.(1)) acc)
    t.reach acc

let fold_throw_points_to t f acc =
  Relation.fold
    (fun fact acc ->
      f (Meth_id.of_int fact.(0))
        (Ctx.value t.ctx_store fact.(1))
        (Heap_id.of_int fact.(2))
        (Ctx.value t.hctx_store fact.(3))
        acc)
    t.throwpt acc

let n_var_points_to t = Relation.cardinal t.vpt
let n_call_edges t = Relation.cardinal t.cg
let n_reachable t = Relation.cardinal t.reach

(* ------------------------------------------------------------------ *)
(* Reachable-heap census                                               *)
(* ------------------------------------------------------------------ *)

(* Relations own their fact arrays and indexes outright (no structural
   sharing between relations), so the interesting figure here is the
   absolute footprint per relation — the sharing factors stay near 1x,
   which is itself the comparison point against the native solver's
   shared Patricia-tree sets. *)
let census t =
  Pta_obs.Census.survey
    [
      ("var-points-to", [ Obj.repr t.vpt ]);
      ("call-graph", [ Obj.repr t.cg ]);
      ("reachable", [ Obj.repr t.reach ]);
      ("throw-points-to", [ Obj.repr t.throwpt ]);
      ("context-tables", [ Obj.repr t.ctx_store; Obj.repr t.hctx_store ]);
    ]
