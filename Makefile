# Convenience targets; everything here is a thin wrapper over dune.

.PHONY: all build test bench bench-compare bench-accept bench-prop \
	bench-prop-compare bench-prop-accept bench-history-append \
	bench-trend bench-trend-check

all: build

build:
	dune build

test:
	dune runtest

# ---------------------------------------------------------------------
# Snapshot gates
#
# Both gates are the same comparator invocation (lib/report/comparator,
# one tolerance config: +15% time, +10% peak heap, 0.5s noise floor),
# parameterized by baseline snapshot, cell subset and delta file.
# Override tolerances per call with TIME_TOL= / HEAP_TOL= /
# HEAP_COMPONENT_TOL= (percent), e.g. `make bench-compare TIME_TOL=75
# HEAP_TOL=25` on a noisy host.  HEAP_COMPONENT_TOL gates the per-
# component census bytes (points-to sets, edge lists, ...) recorded in
# schema-v4 snapshots; it only bites when both snapshots carry a census.
# ---------------------------------------------------------------------

TOLERANCE_FLAGS = $(if $(TIME_TOL),--time-tol $(TIME_TOL)) \
	$(if $(HEAP_TOL),--heap-tol $(HEAP_TOL)) \
	$(if $(HEAP_COMPONENT_TOL),--heap-component-tol $(HEAP_COMPONENT_TOL))

# $(call bench_gate,baseline.json,subset flags,delta.md)
define bench_gate
dune exec bench/main.exe -- --baseline $(1) --compare $(2) \
  --delta-md $(3) $(TOLERANCE_FLAGS)
endef

# The propagation grid carries both sequential and jobs=4 cells from
# schema v5 on, so every regeneration and comparison must select the
# same jobs spread — otherwise the parallel baseline cells read as
# missing and the gate fails spuriously.
PROP_JOBS = --jobs 1,4
PROP_SUBSET = --benchmarks cyclic --analyses insens,1call,1obj,S-2obj+H \
	$(PROP_JOBS)

# Parallel-scaling gate for bench-prop-compare: set MIN_SCALING=2.0 to
# require each jobs=4 cell to run at least that many times faster than
# its jobs=1 sibling.  The check is self-skipping on hosts with fewer
# than 4 cores (and on OCaml 4.x builds, where jobs degrade to 1), so
# it is safe to leave on everywhere and let CI's 4-vCPU runners enforce
# it.
SCALING_FLAGS = $(if $(MIN_SCALING),--min-scaling $(MIN_SCALING))

# Full benchmark grid.  Writes table1.csv, table1_stats.json, and a
# fresh BENCH_table1.json snapshot into the repository root.
bench:
	dune exec bench/main.exe -- table1

# Gate the current tree against the committed baseline snapshot.
# Exits non-zero on a regression; the per-cell delta table lands in
# BENCH_delta.md.
bench-compare:
	$(call bench_gate,BENCH_table1.json,,BENCH_delta.md)

# Re-bless the committed baseline after an intentional performance
# change: rerun the grid, then review and commit BENCH_table1.json.
bench-accept: bench
	@echo "BENCH_table1.json regenerated; review the diff and commit it."

# Propagation micro-benchmark: the cycle-heavy `cyclic` profile across a
# small analysis spread, isolating the solver's propagation core.  Runs
# the grid at jobs 1 and 4 (the parallel drain's scaling cells) and
# writes a fresh BENCH_prop.json snapshot into the repository root.
bench-prop:
	dune exec bench/main.exe -- propbench $(PROP_JOBS)

# Gate the propagation core against its committed baseline — the same
# recipe as bench-compare, restricted to the propagation cells (both
# jobs spreads).  Add MIN_SCALING=2.0 to also gate parallel speedup.
bench-prop-compare:
	$(call bench_gate,BENCH_prop.json,$(PROP_SUBSET) $(SCALING_FLAGS),BENCH_prop_delta.md)

# Re-bless the propagation baseline after an intentional change.
bench-prop-accept: bench-prop
	@echo "BENCH_prop.json regenerated; review the diff and commit it."

# ---------------------------------------------------------------------
# Perf trajectory: the bench-history ledger and trend report
# ---------------------------------------------------------------------

# Archive the current BENCH_table1.json as one ledger record.
bench-history-append:
	dune exec bin/pointsto.exe -- bench history append \
	  --ledger bench/history.jsonl --snapshot BENCH_table1.json --now

# Render the static trend report (HTML + SVG sparklines) into _trend/.
bench-trend:
	dune exec bin/pointsto.exe -- bench trend \
	  --ledger bench/history.jsonl -o _trend

# Gate the latest ledger record against its own history (exit 4 on a
# flagged cell).
bench-trend-check:
	dune exec bin/pointsto.exe -- bench trend \
	  --ledger bench/history.jsonl --check
