# Convenience targets; everything here is a thin wrapper over dune.

.PHONY: all build test bench bench-compare bench-accept bench-prop \
	bench-prop-compare bench-prop-accept

all: build

build:
	dune build

test:
	dune runtest

# Full benchmark grid.  Writes table1.csv, table1_stats.json, and a
# fresh schema-v2 BENCH_table1.json snapshot into the repository root.
bench:
	dune exec bench/main.exe -- table1

# Gate the current tree against the committed baseline snapshot.
# Exits non-zero on a regression (time beyond +15%, peak heap beyond
# +10%, a new timeout, or a missing cell); the per-cell delta table
# lands in BENCH_delta.md.
bench-compare:
	dune exec bench/main.exe -- --baseline BENCH_table1.json --compare \
	  --delta-md BENCH_delta.md

# Re-bless the committed baseline after an intentional performance
# change: rerun the grid, then review and commit BENCH_table1.json.
bench-accept: bench
	@echo "BENCH_table1.json regenerated; review the diff and commit it."

# Propagation micro-benchmark: the cycle-heavy `cyclic` profile across a
# small analysis spread, isolating the solver's propagation core.
# Writes a fresh BENCH_prop.json snapshot into the repository root.
bench-prop:
	dune exec bench/main.exe -- propbench

# Gate the propagation core against its committed baseline.
bench-prop-compare:
	dune exec bench/main.exe -- --baseline BENCH_prop.json --compare \
	  --benchmarks cyclic --analyses insens,1call,1obj,S-2obj+H \
	  --delta-md BENCH_prop_delta.md

# Re-bless the propagation baseline after an intentional change.
bench-prop-accept: bench-prop
	@echo "BENCH_prop.json regenerated; review the diff and commit it."
