(* Defining a new analysis with the strategy algebra.

   The entire analysis framework is parameterized by the paper's three
   constructor functions, and the algebra in [Pta_context.Algebra] lets
   you spell out new constructor tables as terms instead of hand-written
   closures.  Here we build a strategy the paper doesn't evaluate: a
   selective hybrid of 2type+H that keeps an *invocation site* in the
   heap context of objects allocated under static calls — then compare
   it against its neighbours.

     dune exec examples/custom_strategy.exe *)

module A = Pta_context.Algebra
module Solver = Pta_solver.Solver

(* C  = T x (T u I) x (T u I u {*})     (as in S-2type+H)
   HC = (T u I): a type, or — for allocations under static calls — the
   static call's invocation site.

   As a constructor table: [record] keeps the context's second element
   when it is an invocation site (the method was entered through a
   static call), else the leading type element; [merge] stamps the
   receiver's class over its heap context; [merge_static] slides the
   invocation site into second place, exactly as S-2type+H does. *)
let si_2type_heap : A.t =
  A.raw ~depth:3
    ~record:[ A.If_site (1, A.Caller 1, A.Caller 0) ]
    ~merge:[ A.receiver_type; A.Hctx 0; A.Star ]
    ~merge_static:[ A.Caller 0; A.callsite; A.Caller 1 ]

(* A second invention, free with the algebra: spend the deep hybrid
   only on collection-ish classes and run everything else at 1obj. *)
let targeted : A.t =
  A.per_method
    [ ("List*", A.selective_b (A.typ ~h:1 2)); ("Map*", A.selective_b (A.typ ~h:1 2)) ]
    ~default:(A.obj 1)

let () =
  let profile = Option.get (Pta_workloads.Profile.by_name "eclipse") in
  let program = Pta_workloads.Workloads.program profile in
  let table =
    Pta_report.Table.create
      ~headers:[ "analysis"; "avg objs"; "cg edges"; "may-fail casts"; "sensitive vpt" ]
  in
  let run name term =
    let strategy = A.to_strategy_exn ~name program term in
    let solver = Solver.solve program strategy in
    let m = Pta_clients.Metrics.compute solver in
    Pta_report.Table.add_row table
      [
        name;
        Printf.sprintf "%.2f" m.Pta_clients.Metrics.avg_objs_per_var;
        string_of_int m.Pta_clients.Metrics.call_graph_edges;
        string_of_int m.Pta_clients.Metrics.may_fail_casts;
        string_of_int m.Pta_clients.Metrics.sensitive_vpt;
      ]
  in
  (* The registry presets are algebra terms too — the same expressions
     the CLI accepts as [--strategy '...'].  [Result.get_ok] is safe on
     canonical forms. *)
  run "2type+H" (Result.get_ok (A.of_string "type 2 1"));
  run "S-2type+H" (Result.get_ok (A.of_string "selective(type 2 1)"));
  run "SI-2type+H" si_2type_heap;
  run "PM-targeted" targeted;
  run "U-2type+H" (Result.get_ok (A.of_string "uniform(type 2 1)"));
  print_string (Pta_report.Table.render table);
  Printf.printf "\nSI-2type+H prints as:  %s\n" (A.to_string si_2type_heap);
  print_endline
    "Both inventions are ordinary algebra terms: exploring new points in\n\
     the hybrid design space is a five-line expression, not a new module."
