(* Defining a new analysis in ~15 lines.

   The entire analysis framework is parameterized by the paper's three
   constructor functions.  Here we build a strategy the paper doesn't
   evaluate: a selective hybrid of 2type+H that keeps an *invocation
   site* in the heap context of objects allocated under static calls —
   then compare it against its neighbours.

     dune exec examples/custom_strategy.exe *)

module Ctx = Pta_context.Ctx
module Solver = Pta_solver.Solver

(* C  = T x (T u I) x (T u I u {*})     (as in S-2type+H)
   HC = (T u I): a type, or — for allocations under static calls — the
   static call's invocation site. *)
let my_strategy program : Pta_context.Strategy.t =
  let ca heap = Ctx.Type (Pta_context.Strategies.class_of_alloc program heap) in
  {
    name = "SI-2type+H";
    description = "S-2type+H with invocation-site heap context under statics";
    initial_ctx = [| Ctx.Star; Ctx.Star; Ctx.Star |];
    record =
      (fun ~heap:_ ~ctx ->
        (* If the allocating method was entered through a static call,
           its second context element is the invocation site — keep it. *)
        match Ctx.second ctx with
        | Ctx.Invo _ as invo -> [| invo |]
        | Ctx.Star | Ctx.Heap _ | Ctx.Type _ -> [| Ctx.first ctx |]);
    merge =
      (fun ~heap ~hctx ~invo:_ ~ctx:_ -> [| ca heap; Ctx.first hctx; Ctx.Star |]);
    merge_static =
      (fun ~invo ~ctx -> [| Ctx.first ctx; Ctx.Invo invo; Ctx.second ctx |]);
  }

let () =
  let profile = Option.get (Pta_workloads.Profile.by_name "eclipse") in
  let program = Pta_workloads.Workloads.program profile in
  let table =
    Pta_report.Table.create
      ~headers:[ "analysis"; "avg objs"; "cg edges"; "may-fail casts"; "sensitive vpt" ]
  in
  (* Custom strategies bypass the name registry, so this drives the
     solver directly rather than through [Pta_driver.Driver.run]. *)
  let run name strategy =
    let solver = Solver.solve program strategy in
    let m = Pta_clients.Metrics.compute solver in
    Pta_report.Table.add_row table
      [
        name;
        Printf.sprintf "%.2f" m.Pta_clients.Metrics.avg_objs_per_var;
        string_of_int m.Pta_clients.Metrics.call_graph_edges;
        string_of_int m.Pta_clients.Metrics.may_fail_casts;
        string_of_int m.Pta_clients.Metrics.sensitive_vpt;
      ]
  in
  run "2type+H" (Pta_context.Strategies.type2_heap program);
  run "S-2type+H" (Pta_context.Strategies.selective_type2_heap program);
  run "SI-2type+H" (my_strategy program);
  run "U-2type+H" (Pta_context.Strategies.uniform_type2_heap program);
  print_string (Pta_report.Table.render table);
  print_endline "\nSI-2type+H is this example's own invention: the framework makes";
  print_endline "exploring new points in the hybrid design space a 15-line exercise."
