(* Exception audit: which exceptions can escape which methods, and can
   anything crash the program?

   Runs the exception-flow client over the hsqldb-profile workload (a
   database engine's error paths) and reports, per analysis, how many
   methods may leak exceptions and which allocation sites can reach main
   uncaught.

     dune exec examples/exception_audit.exe *)

module Ir = Pta_ir.Ir
module Solver = Pta_solver.Solver
module Exceptions = Pta_clients.Exceptions
module Driver = Pta_driver.Driver

let () =
  let profile = Option.get (Pta_workloads.Profile.by_name "hsqldb") in
  let program = Pta_workloads.Workloads.program profile in
  Printf.printf "workload: %s (%d methods)\n\n" profile.Pta_workloads.Profile.name
    (Ir.Program.n_meths program);
  let table =
    Pta_report.Table.create
      ~headers:[ "analysis"; "throwing methods"; "uncaught sites" ]
  in
  let last = ref None in
  List.iter
    (fun name ->
      let solver =
        match Driver.run program ~analysis:name with
        | Ok r -> r.Driver.solver
        | Error e -> Driver.report_and_exit e
      in
      let escapes = Exceptions.escapes solver in
      let uncaught = Exceptions.uncaught_at_entries solver in
      Pta_report.Table.add_row table
        [ name; string_of_int (List.length escapes);
          string_of_int (List.length uncaught) ];
      last := Some (solver, uncaught))
    [ "insens"; "1obj"; "2obj+H"; "S-2obj+H" ];
  print_string (Pta_report.Table.render table);
  match !last with
  | None -> ()
  | Some (solver, uncaught) ->
    let program = Solver.program solver in
    Printf.printf "\nexceptions that may crash the program (S-2obj+H):\n";
    List.iteri
      (fun i h ->
        if i < 8 then Printf.printf "    %s\n" (Ir.Program.heap_name program h))
      uncaught;
    if List.length uncaught > 8 then
      Printf.printf "    ... and %d more\n" (List.length uncaught - 8)
