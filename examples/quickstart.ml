(* Quickstart: parse an MJ program, run a hybrid context-sensitive
   points-to analysis, and inspect the results.

     dune exec examples/quickstart.exe *)

module Ir = Pta_ir.Ir
module Solver = Pta_solver.Solver
module Intset = Pta_solver.Intset
module Driver = Pta_driver.Driver

let source =
  {|
  class Event {}
  class ClickEvent extends Event {}
  class KeyEvent extends Event {}

  class Dispatcher {
    field lastEvent;
    method dispatch(e) {
      this.lastEvent = e;
      return this.lastEvent;
    }
  }

  class Main {
    static method main() {
      var clicks = new Dispatcher;
      var keys = new Dispatcher;
      var c = clicks.dispatch(new ClickEvent);
      var k = keys.dispatch(new KeyEvent);
      var asClick = (ClickEvent) c;
    }
  }
  |}

let () =
  (* 1. Front end: parse and lower to the IR (the driver reports MJ
     errors and exits with code 1, like the CLI). *)
  let program =
    match Driver.load_string ~stdlib:false ~name:"quickstart" source with
    | Ok program -> program
    | Error e -> Driver.report_and_exit e
  in
  Printf.printf "program: %d classes, %d methods, %d allocation sites\n\n"
    (Ir.Program.n_types program)
    (Ir.Program.n_meths program)
    (Ir.Program.n_heaps program);

  (* 2. Pick a context-sensitivity strategy — here the paper's selective
     hybrid S-2obj+H — and run the solver. *)
  let strategy = Pta_context.Strategies.get "S-2obj+H" program in
  let solver = Solver.solve program strategy in

  (* 3. Query points-to sets: the two dispatchers are distinguished by
     their receiver contexts, so [c] gets only the click event. *)
  Ir.Program.iter_vars program (fun var info ->
      let owner = Ir.Program.meth_info program info.Ir.var_owner in
      if String.equal owner.Ir.meth_name "main" && String.length info.Ir.var_name > 0
         && info.Ir.var_name.[0] <> '$'
      then begin
        let heaps = Solver.ci_var_points_to solver var in
        Printf.printf "%s points to:\n" (Ir.Program.var_qualified_name program var);
        Intset.iter
          (fun h ->
            Printf.printf "    %s\n"
              (Ir.Program.heap_name program (Ir.Heap_id.of_int h)))
          heaps;
        if Intset.is_empty heaps then Printf.printf "    (nothing)\n"
      end);

  (* 4. Client analyses and metrics. *)
  let metrics = Pta_clients.Metrics.compute solver in
  Format.printf "@.metrics under %s:@.%a@." strategy.Pta_context.Strategy.name
    Pta_clients.Metrics.pp metrics
