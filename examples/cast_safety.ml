(* Cast safety: the paper's headline precision client.

   A container-heavy program in which every downcast is actually safe —
   but only a sufficiently context-sensitive analysis can prove it.
   Shows, per analysis, which casts remain "may fail" and the witness
   allocation sites the analysis cannot exclude.

     dune exec examples/cast_safety.exe *)

module Ir = Pta_ir.Ir
module Casts = Pta_clients.Casts
module Driver = Pta_driver.Driver

let source =
  {|
  class Token {}
  class WordToken extends Token {}
  class NumberToken extends Token {}

  class Lexer {
    method wordStream() : List {
      var list = new ArrayList();
      list.add(new WordToken);
      list.add(new WordToken);
      return list;
    }
    method numberStream() : List {
      var list = new ArrayList();
      list.add(new NumberToken);
      return list;
    }
  }

  class Main {
    static method main() {
      var lexer = new Lexer;
      var words = lexer.wordStream();
      var numbers = lexer.numberStream();
      // Both casts are safe: each list holds only one token kind.
      var w = (WordToken) words.get(null);
      var n = (NumberToken) numbers.get(null);
    }
  }
  |}

let () =
  let program =
    match Driver.load_string ~name:"cast_safety" source with
    | Ok program -> program
    | Error e -> Driver.report_and_exit e
  in
  List.iter
    (fun name ->
      let solver =
        match Driver.run program ~analysis:name with
        | Ok r -> r.Driver.solver
        | Error e -> Driver.report_and_exit e
      in
      let sites = Casts.analyze solver in
      (* Only report the casts written in Main (the mini-JDK has its own). *)
      let in_main (s : Casts.site) =
        String.equal
          (Ir.Program.type_name program
             (Ir.Program.meth_info program s.in_meth).Ir.meth_owner)
          "Main"
      in
      let mine = List.filter in_main sites in
      let failing =
        List.filter
          (fun (s : Casts.site) -> match s.verdict with Casts.May_fail _ -> true | Casts.Safe -> false)
          mine
      in
      Printf.printf "%-10s %d of %d casts in Main may fail\n" name
        (List.length failing) (List.length mine);
      List.iter
        (fun (s : Casts.site) ->
          match s.verdict with
          | Casts.Safe -> ()
          | Casts.May_fail witnesses ->
            Printf.printf "    (%s) %s — spurious witnesses:\n"
              (Ir.Program.type_name program s.cast_type)
              (Ir.Program.var_info program s.source).Ir.var_name;
            List.iter
              (fun h ->
                Printf.printf "        %s\n" (Ir.Program.heap_name program h))
              witnesses)
        failing)
    [ "insens"; "1call"; "1obj"; "2type+H"; "2obj+H"; "S-2obj+H" ];
  print_newline ();
  print_endline
    "insens/1call conflate the two lists' contents inside ArrayList.add;";
  print_endline
    "1obj and 2obj+H separate the adds by receiver allocation site.  Note";
  print_endline
    "2type+H fails: both lists are allocated in class Lexer, so its";
  print_endline
    "class-level contexts merge them — exactly the moderate precision loss";
  print_endline "the paper reports for type-sensitivity."
