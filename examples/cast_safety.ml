(* Cast safety: the paper's headline precision client.

   A container-heavy program in which every downcast is actually safe —
   but only a sufficiently context-sensitive analysis can prove it.
   Shows, per analysis, which casts remain "may fail", first through the
   diagnostics subsystem (pta_checkers — the API behind `pointsto
   check`) and then through the lower-level casts client, whose verdicts
   the checker is defined to agree with.

     dune exec examples/cast_safety.exe *)

module Ir = Pta_ir.Ir
module Casts = Pta_clients.Casts
module Driver = Pta_driver.Driver
module Diagnostic = Pta_checkers.Diagnostic
module Results = Pta_checkers.Results
module Checkers = Pta_checkers.Checkers

let source =
  {|
  class Token {}
  class WordToken extends Token {}
  class NumberToken extends Token {}

  class Lexer {
    method wordStream() : List {
      var list = new ArrayList();
      list.add(new WordToken);
      list.add(new WordToken);
      return list;
    }
    method numberStream() : List {
      var list = new ArrayList();
      list.add(new NumberToken);
      return list;
    }
  }

  class Main {
    static method main() {
      var lexer = new Lexer;
      var words = lexer.wordStream();
      var numbers = lexer.numberStream();
      // Both casts are safe: each list holds only one token kind.
      var w = (WordToken) words.get(null);
      var n = (NumberToken) numbers.get(null);
    }
  }
  |}

(* Only report findings in the user program — the mini-JDK has casts and
   unreachable methods of its own.  The CLI does the same filtering via
   --include-stdlib. *)
let in_user_code (d : Diagnostic.t) =
  match d.span with
  | Some sp -> String.equal sp.left.file "cast_safety"
  | None -> false

let () =
  let program =
    match Driver.load_string ~name:"cast_safety" source with
    | Ok program -> program
    | Error e -> Driver.report_and_exit e
  in
  List.iter
    (fun name ->
      let solver =
        match Driver.run program ~analysis:name with
        | Ok r -> r.Driver.solver
        | Error e -> Driver.report_and_exit e
      in
      let results = Results.of_solver solver in
      let diags =
        List.filter in_user_code (Checkers.run ~only:[ "may-fail-cast" ] results)
      in
      Printf.printf "== %s: %d cast(s) in the user program may fail\n" name
        (List.length diags);
      List.iter (fun d -> Format.printf "%a@." Diagnostic.pp d) diags;
      (* Compat: the lower-level casts client is still available, and the
         checker's verdicts are defined to match it site for site. *)
      let legacy =
        List.filter
          (fun (s : Casts.site) ->
            (match s.verdict with Casts.May_fail _ -> true | Casts.Safe -> false)
            && String.equal
                 (Ir.Program.type_name program
                    (Ir.Program.meth_info program s.in_meth).Ir.meth_owner)
                 "Main")
          (Casts.analyze solver)
      in
      assert (List.length legacy = List.length diags))
    [ "insens"; "1call"; "1obj"; "2type+H"; "2obj+H"; "S-2obj+H" ];
  print_newline ();
  print_endline
    "insens/1call conflate the two lists' contents inside ArrayList.add;";
  print_endline
    "1obj and 2obj+H separate the adds by receiver allocation site.  Note";
  print_endline
    "2type+H fails: both lists are allocated in class Lexer, so its";
  print_endline
    "class-level contexts merge them — exactly the moderate precision loss";
  print_endline "the paper reports for type-sensitivity."
