(* Devirtualization: how much context-sensitivity buys a compiler.

   Runs the devirtualization client over the pmd-profile synthetic
   benchmark (an AST-visitor-style workload) under increasingly precise
   analyses and reports how many virtual call sites become direct calls.

     dune exec examples/devirtualization.exe *)

module Devirt = Pta_clients.Devirt
module Driver = Pta_driver.Driver

let solve_named program name =
  match Driver.run program ~analysis:name with
  | Ok r -> r.Driver.solver
  | Error e -> Driver.report_and_exit e

let () =
  let profile = Option.get (Pta_workloads.Profile.by_name "pmd") in
  let program = Pta_workloads.Workloads.program profile in
  Printf.printf
    "workload: %s (%d methods)\n\n" profile.Pta_workloads.Profile.name
    (Pta_ir.Ir.Program.n_meths program);
  let table =
    Pta_report.Table.create
      ~headers:[ "analysis"; "sites"; "monomorphic"; "polymorphic"; "unresolved"; "devirt %" ]
  in
  List.iter
    (fun name ->
      let solver = solve_named program name in
      let sites = Devirt.analyze solver in
      let mono = Devirt.mono_count sites in
      let poly = Devirt.poly_count sites in
      let total = List.length sites in
      Pta_report.Table.add_row table
        [
          name;
          string_of_int total;
          string_of_int mono;
          string_of_int poly;
          string_of_int (total - mono - poly);
          Printf.sprintf "%.1f%%" (100. *. float_of_int mono /. float_of_int total);
        ])
    [ "insens"; "1call"; "1obj"; "SB-1obj"; "2type+H"; "S-2type+H"; "2obj+H"; "S-2obj+H" ];
  print_string (Pta_report.Table.render table);
  print_newline ();
  (* Show a few calls that only the hybrid can devirtualize. *)
  let run name = Devirt.analyze (solve_named program name) in
  let base = run "2obj+H" and hybrid = run "S-2obj+H" in
  let program_invo_mono sites =
    List.filter_map
      (fun (s : Devirt.site) ->
        match s.classification with
        | Devirt.Monomorphic _ -> Some s.invo
        | Devirt.Polymorphic _ | Devirt.Unresolved -> None)
      sites
  in
  let base_mono = program_invo_mono base in
  let newly =
    List.filter (fun i -> not (List.mem i base_mono)) (program_invo_mono hybrid)
  in
  Printf.printf "%d call sites devirtualized by S-2obj+H but not by 2obj+H" (List.length newly);
  List.iteri
    (fun i invo ->
      if i < 5 then
        Printf.printf "\n    %s" (Pta_ir.Ir.Program.invo_name program invo))
    newly;
  print_newline ()
