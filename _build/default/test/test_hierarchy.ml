(** Class-hierarchy queries: subtyping (classes + interfaces) and
    virtual-method lookup with overriding. *)

module Ir = Pta_ir.Ir
module Hierarchy = Pta_ir.Hierarchy

let source =
  {|
  interface Walks { method walk(); }
  interface Swims { method swim(); }
  interface Amphibious extends Walks, Swims { }

  class Animal { method speak() { return this; } method walk() { return this; } }
  class Frog extends Animal implements Amphibious {
    method swim() { return this; }
    method speak() { return new Frog; }
  }
  class TreeFrog extends Frog { }
  class Fish extends Animal implements Swims { method swim() { return this; } }
  |}

let with_hierarchy f =
  let p = Pta_frontend.Frontend.program_of_string ~file:"<t>" source in
  f p (Hierarchy.create p)

let ty p name = Option.get (Ir.Program.find_type p name)

let subtype_tests =
  [
    Alcotest.test_case "reflexive" `Quick (fun () ->
        with_hierarchy (fun p h ->
            Alcotest.(check bool) "Frog <= Frog" true
              (Hierarchy.subtype h ~sub:(ty p "Frog") ~sup:(ty p "Frog"))));
    Alcotest.test_case "superclass chain" `Quick (fun () ->
        with_hierarchy (fun p h ->
            Alcotest.(check bool) "TreeFrog <= Animal" true
              (Hierarchy.subtype h ~sub:(ty p "TreeFrog") ~sup:(ty p "Animal"));
            Alcotest.(check bool) "TreeFrog <= Object" true
              (Hierarchy.subtype h ~sub:(ty p "TreeFrog") ~sup:(ty p "Object"));
            Alcotest.(check bool) "Animal not <= Frog" false
              (Hierarchy.subtype h ~sub:(ty p "Animal") ~sup:(ty p "Frog"))));
    Alcotest.test_case "interfaces, transitively" `Quick (fun () ->
        with_hierarchy (fun p h ->
            Alcotest.(check bool) "Frog <= Amphibious" true
              (Hierarchy.subtype h ~sub:(ty p "Frog") ~sup:(ty p "Amphibious"));
            Alcotest.(check bool) "Frog <= Walks (via Amphibious)" true
              (Hierarchy.subtype h ~sub:(ty p "Frog") ~sup:(ty p "Walks"));
            Alcotest.(check bool) "TreeFrog <= Swims (inherited)" true
              (Hierarchy.subtype h ~sub:(ty p "TreeFrog") ~sup:(ty p "Swims"));
            Alcotest.(check bool) "Fish not <= Walks iface" false
              (Hierarchy.subtype h ~sub:(ty p "Fish") ~sup:(ty p "Amphibious"))));
    Alcotest.test_case "siblings unrelated" `Quick (fun () ->
        with_hierarchy (fun p h ->
            Alcotest.(check bool) "Fish not <= Frog" false
              (Hierarchy.subtype h ~sub:(ty p "Fish") ~sup:(ty p "Frog"))));
  ]

let lookup_tests =
  [
    Alcotest.test_case "override found on subclass" `Quick (fun () ->
        with_hierarchy (fun p h ->
            let speak =
              (Ir.Program.meth_info p
                 (Option.get (Ir.Program.find_meth p "Frog" "speak" 0)))
                .Ir.meth_sig
            in
            let target = Hierarchy.lookup h (ty p "Frog") speak in
            Alcotest.(check (option string))
              "Frog.speak" (Some "Frog.speak/0")
              (Option.map (Ir.Program.meth_qualified_name p) target)));
    Alcotest.test_case "inherited through two levels" `Quick (fun () ->
        with_hierarchy (fun p h ->
            let speak =
              (Ir.Program.meth_info p
                 (Option.get (Ir.Program.find_meth p "Frog" "speak" 0)))
                .Ir.meth_sig
            in
            Alcotest.(check (option string))
              "TreeFrog inherits Frog.speak" (Some "Frog.speak/0")
              (Option.map
                 (Ir.Program.meth_qualified_name p)
                 (Hierarchy.lookup h (ty p "TreeFrog") speak));
            let walk =
              (Ir.Program.meth_info p
                 (Option.get (Ir.Program.find_meth p "Animal" "walk" 0)))
                .Ir.meth_sig
            in
            Alcotest.(check (option string))
              "TreeFrog inherits Animal.walk" (Some "Animal.walk/0")
              (Option.map
                 (Ir.Program.meth_qualified_name p)
                 (Hierarchy.lookup h (ty p "TreeFrog") walk))));
    Alcotest.test_case "missing method yields None" `Quick (fun () ->
        with_hierarchy (fun p h ->
            let swim =
              (Ir.Program.meth_info p
                 (Option.get (Ir.Program.find_meth p "Fish" "swim" 0)))
                .Ir.meth_sig
            in
            Alcotest.(check (option string))
              "Animal has no swim" None
              (Option.map
                 (Ir.Program.meth_qualified_name p)
                 (Hierarchy.lookup h (ty p "Animal") swim))));
    Alcotest.test_case "direct subclasses" `Quick (fun () ->
        with_hierarchy (fun p h ->
            let subs =
              Hierarchy.direct_subclasses h (ty p "Animal")
              |> List.map (Ir.Program.type_name p)
              |> List.sort compare
            in
            Alcotest.(check (list string)) "subs" [ "Fish"; "Frog" ] subs));
  ]

let tests = subtype_tests @ lookup_tests
