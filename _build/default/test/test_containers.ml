(** Unit and property tests for the small container/PRNG substrates:
    [Vec], [Rng], and the context-interning store. *)

module Vec = Pta_ir.Vec
module Rng = Pta_workloads.Rng
module Ctx = Pta_context.Ctx
module Ir = Pta_ir.Ir

(* ------------------------------------------------------------------ *)
(* Vec                                                                 *)
(* ------------------------------------------------------------------ *)

let vec_tests =
  [
    Alcotest.test_case "push/get round trip" `Quick (fun () ->
        let v = Vec.create () in
        for i = 0 to 999 do
          Alcotest.(check int) "index" i (Vec.push v (i * 3))
        done;
        Alcotest.(check int) "length" 1000 (Vec.length v);
        for i = 0 to 999 do
          Alcotest.(check int) "value" (i * 3) (Vec.get v i)
        done);
    Alcotest.test_case "set" `Quick (fun () ->
        let v = Vec.of_list [ 1; 2; 3 ] in
        Vec.set v 1 42;
        Alcotest.(check (list int)) "to_list" [ 1; 42; 3 ] (Vec.to_list v));
    Alcotest.test_case "bounds checked" `Quick (fun () ->
        let v = Vec.of_list [ 1 ] in
        Alcotest.check_raises "get" (Invalid_argument "Vec.get") (fun () ->
            ignore (Vec.get v 1));
        Alcotest.check_raises "set" (Invalid_argument "Vec.set") (fun () ->
            Vec.set v (-1) 0));
    Alcotest.test_case "fold/iter/exists" `Quick (fun () ->
        let v = Vec.of_list [ 1; 2; 3; 4 ] in
        Alcotest.(check int) "sum" 10 (Vec.fold_left ( + ) 0 v);
        Alcotest.(check bool) "exists" true (Vec.exists (fun x -> x = 3) v);
        Alcotest.(check bool) "not exists" false (Vec.exists (fun x -> x = 9) v));
  ]

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let rng_tests =
  [
    Alcotest.test_case "deterministic across instances" `Quick (fun () ->
        let a = Rng.create 42L and b = Rng.create 42L in
        for _ = 1 to 100 do
          Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
        done);
    Alcotest.test_case "copy forks the stream" `Quick (fun () ->
        let a = Rng.create 7L in
        ignore (Rng.int a 10);
        let b = Rng.copy a in
        Alcotest.(check int) "fork" (Rng.int a 1_000_000) (Rng.int b 1_000_000));
    Alcotest.test_case "int stays in range" `Quick (fun () ->
        let rng = Rng.create 99L in
        for _ = 1 to 10_000 do
          let v = Rng.int rng 7 in
          if v < 0 || v >= 7 then Alcotest.failf "out of range: %d" v
        done);
    Alcotest.test_case "pick_weighted respects zero-free weights" `Quick
      (fun () ->
        let rng = Rng.create 3L in
        for _ = 1 to 1000 do
          match Rng.pick_weighted rng [ (1, `A); (0 + 2, `B) ] with
          | `A | `B -> ()
        done);
    Alcotest.test_case "shuffle is a permutation" `Quick (fun () ->
        let rng = Rng.create 5L in
        let l = List.init 50 Fun.id in
        let s = Rng.shuffle rng l in
        Alcotest.(check (list int)) "sorted back" l (List.sort compare s));
    Alcotest.test_case "bool probability sanity" `Quick (fun () ->
        let rng = Rng.create 11L in
        let hits = ref 0 in
        for _ = 1 to 10_000 do
          if Rng.bool rng 0.25 then incr hits
        done;
        if !hits < 2_000 || !hits > 3_000 then
          Alcotest.failf "0.25 bool hit %d/10000 times" !hits);
  ]

(* ------------------------------------------------------------------ *)
(* Context interning                                                   *)
(* ------------------------------------------------------------------ *)

let heap i = Ctx.Heap (Ir.Heap_id.of_int i)
let invo i = Ctx.Invo (Ir.Invo_id.of_int i)
let ty i = Ctx.Type (Ir.Type_id.of_int i)

let ctx_tests =
  [
    Alcotest.test_case "interning is injective on values" `Quick (fun () ->
        let store = Ctx.create_store () in
        let a = Ctx.intern store [| heap 1; Ctx.Star |] in
        let b = Ctx.intern store [| heap 1; Ctx.Star |] in
        let c = Ctx.intern store [| heap 2; Ctx.Star |] in
        let d = Ctx.intern store [| heap 1 |] in
        Alcotest.(check int) "same value same id" a b;
        Alcotest.(check bool) "different elem" true (a <> c);
        Alcotest.(check bool) "different arity" true (a <> d);
        Alcotest.(check int) "store size" 3 (Ctx.size store));
    Alcotest.test_case "value round trip" `Quick (fun () ->
        let store = Ctx.create_store () in
        let v = [| invo 3; ty 4; Ctx.Star |] in
        let id = Ctx.intern store v in
        Alcotest.(check bool) "round trip" true (Ctx.value_equal v (Ctx.value store id)));
    Alcotest.test_case "element kinds never collide" `Quick (fun () ->
        (* Heap 5 vs Invo 5 vs Type 5 are distinct context elements. *)
        let store = Ctx.create_store () in
        let ids =
          List.map (fun e -> Ctx.intern store [| e |]) [ heap 5; invo 5; ty 5; Ctx.Star ]
        in
        Alcotest.(check int) "four distinct" 4
          (List.length (List.sort_uniq compare ids)));
    Alcotest.test_case "accessors pad with Star" `Quick (fun () ->
        Alcotest.(check bool) "first of empty" true
          (Ctx.elem_equal (Ctx.first [||]) Ctx.Star);
        Alcotest.(check bool) "third of pair" true
          (Ctx.elem_equal (Ctx.third [| heap 1; heap 2 |]) Ctx.Star);
        Alcotest.(check bool) "second of pair" true
          (Ctx.elem_equal (Ctx.second [| heap 1; heap 2 |]) (heap 2)));
  ]

let ctx_qcheck =
  let elem_gen =
    QCheck.Gen.(
      oneof
        [
          return Ctx.Star;
          map (fun i -> heap i) (int_bound 100);
          map (fun i -> invo i) (int_bound 100);
          map (fun i -> ty i) (int_bound 100);
        ])
  in
  let value_gen = QCheck.Gen.(array_size (int_bound 3) elem_gen) in
  let value_arb = QCheck.make value_gen in
  [
    QCheck.Test.make ~count:300 ~name:"equal values have equal hashes"
      (QCheck.pair value_arb value_arb) (fun (a, b) ->
        (not (Ctx.value_equal a b)) || Ctx.value_hash a = Ctx.value_hash b);
    QCheck.Test.make ~count:300 ~name:"interning respects value equality"
      (QCheck.pair value_arb value_arb) (fun (a, b) ->
        let store = Ctx.create_store () in
        let ia = Ctx.intern store a and ib = Ctx.intern store b in
        Ctx.value_equal a b = (ia = ib));
  ]

let tests =
  vec_tests @ rng_tests @ ctx_tests @ List.map QCheck_alcotest.to_alcotest ctx_qcheck
