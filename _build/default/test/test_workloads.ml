(** Workload generator tests: determinism, well-formedness of every
    preset, and basic shape expectations. *)

module Ir = Pta_ir.Ir
module Profile = Pta_workloads.Profile
module Gen = Pta_workloads.Gen
module Workloads = Pta_workloads.Workloads

let tests =
  [
    Alcotest.test_case "generation is deterministic" `Quick (fun () ->
        let p = Option.get (Profile.by_name "tiny") in
        Alcotest.(check string) "same source" (Gen.generate p) (Gen.generate p));
    Alcotest.test_case "different seeds differ" `Quick (fun () ->
        let p = Option.get (Profile.by_name "tiny") in
        let p' = { p with Profile.seed = 999L } in
        Alcotest.(check bool) "sources differ" true (Gen.generate p <> Gen.generate p'));
    Alcotest.test_case "every preset parses and lowers" `Slow (fun () ->
        List.iter
          (fun profile ->
            let program = Workloads.program profile in
            Alcotest.(check bool)
              (profile.Profile.name ^ " has one entry")
              true
              (List.length (Ir.Program.entries program) = 1))
          Profile.dacapo);
    Alcotest.test_case "presets ordered by rough size" `Slow (fun () ->
        let size name =
          Ir.Program.n_meths
            (Workloads.program (Option.get (Profile.by_name name)))
        in
        Alcotest.(check bool) "bloat is the largest" true
          (size "bloat" > size "luindex");
        Alcotest.(check bool) "luindex is small" true (size "luindex" < size "chart"));
    Alcotest.test_case "feature toggles show up in the source" `Quick (fun () ->
        let has_sub s sub =
          let n = String.length sub and h = String.length s in
          let rec at i = i + n <= h && (String.sub s i n = sub || at (i + 1)) in
          at 0
        in
        let src name = Gen.generate (Option.get (Profile.by_name name)) in
        Alcotest.(check bool) "pmd has visitors" true (has_sub (src "pmd") "interface V0");
        Alcotest.(check bool) "luindex has no visitors" false
          (has_sub (src "luindex") "interface V0");
        Alcotest.(check bool) "chart has listeners" true
          (has_sub (src "chart") "class Registry");
        Alcotest.(check bool) "xalan has wrappers" true (has_sub (src "xalan") "class W0"));
    Alcotest.test_case "scale grows the program" `Slow (fun () ->
        let tiny = Option.get (Profile.by_name "tiny") in
        let bigger = Profile.scale 2.0 tiny in
        let n p =
          Ir.Program.n_meths
            (Pta_frontend.Frontend.program_of_sources
               [
                 (Pta_mjdk.Mjdk.file_name, Pta_mjdk.Mjdk.source);
                 ("<gen>", Gen.generate p);
               ])
        in
        Alcotest.(check bool) "more methods" true (n bigger > n tiny));
    Alcotest.test_case "mjdk parses standalone" `Quick (fun () ->
        let program =
          Pta_frontend.Frontend.program_of_string ~file:Pta_mjdk.Mjdk.file_name
            Pta_mjdk.Mjdk.source
        in
        Alcotest.(check bool) "has ArrayList" true
          (Ir.Program.find_type program "ArrayList" <> None);
        Alcotest.(check bool) "has HashMap" true
          (Ir.Program.find_type program "HashMap" <> None);
        Alcotest.(check bool) "no entry points" true
          (Ir.Program.entries program = []));
  ]
