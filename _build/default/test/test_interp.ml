(** Concrete interpreter tests: determinism, semantics of each
    instruction kind, fault skipping, and budget enforcement. *)

module Ir = Pta_ir.Ir
module Interp = Pta_interp.Interp

let program src = Pta_frontend.Frontend.program_of_string ~file:"<t>" src

let observed_pairs trace p =
  Interp.observed_var_points trace
  |> List.map (fun (v, h) ->
         (Ir.Program.var_qualified_name p v, Ir.Program.heap_name p h))
  |> List.sort compare

let determinism_test () =
  let p =
    Pta_workloads.Workloads.program
      (Option.get (Pta_workloads.Profile.by_name "tiny"))
  in
  let t1 = Interp.run ~seed:5L p and t2 = Interp.run ~seed:5L p in
  Alcotest.(check (list (pair string string)))
    "same trace" (observed_pairs t1 p) (observed_pairs t2 p);
  let t3 = Interp.run ~seed:6L p in
  Alcotest.(check bool) "both executed something" true
    (t1.Interp.steps > 0 && t3.Interp.steps > 0)

let dispatch_test () =
  let p =
    program
      {|
      class A { method who() { return new A; } }
      class B extends A { method who() { return new B; } }
      class Main {
        static method main() {
          var b = new B;
          var w = b.who();
        }
      }
      |}
  in
  let trace = Interp.run ~seed:1L p in
  let edges =
    Interp.observed_call_edges trace
    |> List.map (fun (_, m) -> Ir.Program.meth_qualified_name p m)
  in
  Alcotest.(check (list string)) "dispatches to override" [ "B.who/0" ] edges;
  (* w holds a B allocated inside B.who *)
  let pairs = observed_pairs trace p in
  Alcotest.(check bool) "w bound to B.who's allocation" true
    (List.exists
       (fun (v, h) ->
         v = "Main.main/0:w"
         && String.length h >= 8
         && String.sub h 0 8 = "B.who/0["
         && (let n = String.length h in
             let sub = "new B" in
             let rec at i = i + 5 <= n && (String.sub h i 5 = sub || at (i + 1)) in
             at 0))
       pairs)

let failed_cast_skips_test () =
  let p =
    program
      {|
      class A {} class B {}
      class Main {
        static method main() {
          var a = new A;
          var bad = (B) a;
          var after = new B;
        }
      }
      |}
  in
  let trace = Interp.run ~seed:1L p in
  let pairs = observed_pairs trace p in
  Alcotest.(check bool) "bad never bound" true
    (not (List.exists (fun (v, _) -> v = "Main.main/0:bad") pairs));
  Alcotest.(check bool) "execution continued" true
    (List.exists (fun (v, _) -> v = "Main.main/0:after") pairs)

let null_faults_skip_test () =
  let p =
    program
      {|
      class P { field f; }
      class Main {
        static method main() {
          var x = null;
          var load = x.f;
          x.f = x;
          x.m();
          var after = new P;
        }
      }
      |}
  in
  let trace = Interp.run ~seed:1L p in
  Alcotest.(check bool) "after reached" true
    (List.exists
       (fun (v, _) -> v = "Main.main/0:after")
       (observed_pairs trace p));
  Alcotest.(check int) "no calls happened" 0
    (List.length (Interp.observed_call_edges trace))

let budget_test () =
  let p =
    program
      {|
      class Main {
        static method spin() { while (*) { var x = new Main; } return null; }
        static method main() {
          while (*) { Main::spin(); var y = new Main; }
        }
      }
      |}
  in
  let trace = Interp.run ~max_steps:50 ~seed:3L p in
  Alcotest.(check bool) "stopped promptly" true (trace.Interp.steps <= 51)

let depth_bound_test () =
  let p =
    program
      {|
      class Main {
        static method rec(x) { return Main::rec(x); }
        static method main() { var r = Main::rec(null); }
      }
      |}
  in
  (* Infinite recursion: the depth bound cuts it; must terminate. *)
  let trace = Interp.run ~max_depth:20 ~seed:1L p in
  Alcotest.(check bool) "terminated" true (trace.Interp.steps > 0)

let field_store_load_test () =
  let p =
    program
      {|
      class Box { field content; }
      class A {}
      class Main {
        static method main() {
          var box = new Box;
          var a = new A;
          box.content = a;
          var out = box.content;
        }
      }
      |}
  in
  let trace = Interp.run ~seed:1L p in
  Alcotest.(check bool) "out holds the A allocation" true
    (List.exists
       (fun (v, h) ->
         v = "Main.main/0:out"
         &&
         let sub = "new A" in
         let n = String.length h in
         let rec at i = i + 5 <= n && (String.sub h i 5 = sub || at (i + 1)) in
         at 0)
       (observed_pairs trace p))

let exception_unwind_test () =
  let p =
    program
      {|
      class Err {}
      class Main {
        static method boom() {
          throw new Err;
        }
        static method main() {
          var before = new Main;
          try {
            Main::boom();
            var unreachable = new Err;
          } catch (Err e) {
            var caught = e;
          }
          var after = new Main;
        }
      }
      |}
  in
  let trace = Interp.run ~seed:1L p in
  let names =
    Interp.observed_var_points trace
    |> List.map (fun (v, _) -> Ir.Program.var_qualified_name p v)
  in
  Alcotest.(check bool) "caught bound" true
    (List.mem "Main.main/0:caught" names);
  Alcotest.(check bool) "code after throw in try skipped" true
    (not (List.mem "Main.main/0:unreachable" names));
  Alcotest.(check bool) "execution resumed after handler" true
    (List.mem "Main.main/0:after" names)

let exception_in_loop_test () =
  (* A throw inside a loop unwinds out of the loop, not just the
     iteration. *)
  let p =
    program
      {|
      class Err {}
      class Main {
        static method main() {
          try {
            while (*) {
              throw new Err;
            }
            var afterLoop = new Main;
          } catch (Err e) {
            var handled = e;
          }
        }
      }
      |}
  in
  (* With seed exploration, some run takes the loop body and throws. *)
  let saw_handled = ref false in
  List.iter
    (fun seed ->
      let trace = Interp.run ~seed p in
      let names =
        Interp.observed_var_points trace
        |> List.map (fun (v, _) -> Ir.Program.var_qualified_name p v)
      in
      if List.mem "Main.main/0:handled" names then saw_handled := true)
    [ 1L; 2L; 3L; 4L; 5L ];
  Alcotest.(check bool) "some run throws out of the loop" true !saw_handled

let tests =
  [
    Alcotest.test_case "determinism by seed" `Quick determinism_test;
    Alcotest.test_case "dynamic dispatch" `Quick dispatch_test;
    Alcotest.test_case "failed casts are skipped" `Quick failed_cast_skips_test;
    Alcotest.test_case "null faults are skipped" `Quick null_faults_skip_test;
    Alcotest.test_case "step budget enforced" `Quick budget_test;
    Alcotest.test_case "depth bound enforced" `Quick depth_bound_test;
    Alcotest.test_case "field store/load" `Quick field_store_load_test;
    Alcotest.test_case "exception unwinding" `Quick exception_unwind_test;
    Alcotest.test_case "exception exits loops" `Quick exception_in_loop_test;
  ]
