(** Patricia-tree integer sets: unit tests plus qcheck properties
    against the model implementation [Stdlib.Set.Make(Int)]. *)

module Intset = Pta_solver.Intset
module M = Set.Make (Int)

let of_model m = M.fold Intset.add m Intset.empty
let to_model s = Intset.fold (fun i acc -> M.add i acc) s M.empty

let ints_arb = QCheck.(list_of_size Gen.(int_bound 200) (int_bound 10_000))

let model_of_list l = M.of_list l
let set_of_list l = Intset.of_list l

let prop name gen f = QCheck.Test.make ~count:500 ~name gen f

let qcheck_tests =
  [
    prop "mem agrees with model" QCheck.(pair ints_arb (int_bound 10_000))
      (fun (l, x) -> Intset.mem x (set_of_list l) = M.mem x (model_of_list l));
    prop "union agrees with model" QCheck.(pair ints_arb ints_arb)
      (fun (a, b) ->
        M.equal
          (to_model (Intset.union (set_of_list a) (set_of_list b)))
          (M.union (model_of_list a) (model_of_list b)));
    prop "inter agrees with model" QCheck.(pair ints_arb ints_arb)
      (fun (a, b) ->
        M.equal
          (to_model (Intset.inter (set_of_list a) (set_of_list b)))
          (M.inter (model_of_list a) (model_of_list b)));
    prop "diff agrees with model" QCheck.(pair ints_arb ints_arb)
      (fun (a, b) ->
        M.equal
          (to_model (Intset.diff (set_of_list a) (set_of_list b)))
          (M.diff (model_of_list a) (model_of_list b)));
    prop "remove agrees with model" QCheck.(pair ints_arb (int_bound 10_000))
      (fun (l, x) ->
        M.equal
          (to_model (Intset.remove x (set_of_list l)))
          (M.remove x (model_of_list l)));
    prop "cardinal agrees with model" ints_arb (fun l ->
        Intset.cardinal (set_of_list l) = M.cardinal (model_of_list l));
    prop "subset agrees with model" QCheck.(pair ints_arb ints_arb)
      (fun (a, b) ->
        Intset.subset (set_of_list a) (set_of_list b)
        = M.subset (model_of_list a) (model_of_list b));
    prop "elements sorted and deduplicated" ints_arb (fun l ->
        Intset.elements (set_of_list l) = M.elements (model_of_list l));
    prop "equal is extensional" QCheck.(pair ints_arb ints_arb)
      (fun (a, b) ->
        Intset.equal (set_of_list a) (set_of_list b)
        = M.equal (model_of_list a) (model_of_list b));
    prop "canonical structure: permutation-insensitive build" ints_arb
      (fun l ->
        Intset.equal (set_of_list l) (set_of_list (List.rev l)));
    prop "union idempotent" ints_arb (fun l ->
        let s = set_of_list l in
        Intset.equal (Intset.union s s) s);
    prop "filter even" ints_arb (fun l ->
        M.equal
          (to_model (Intset.filter (fun x -> x mod 2 = 0) (set_of_list l)))
          (M.filter (fun x -> x mod 2 = 0) (model_of_list l)));
    prop "for_all/exists" ints_arb (fun l ->
        let s = set_of_list l and m = model_of_list l in
        Intset.for_all (fun x -> x >= 0) s = M.for_all (fun x -> x >= 0) m
        && Intset.exists (fun x -> x > 5_000) s = M.exists (fun x -> x > 5_000) m);
  ]

let unit_tests =
  [
    Alcotest.test_case "empty basics" `Quick (fun () ->
        Alcotest.(check bool) "is_empty" true (Intset.is_empty Intset.empty);
        Alcotest.(check int) "cardinal" 0 (Intset.cardinal Intset.empty);
        Alcotest.(check (option int)) "choose" None (Intset.choose_opt Intset.empty));
    Alcotest.test_case "negative elements rejected" `Quick (fun () ->
        Alcotest.check_raises "add" (Invalid_argument "Intset: negative element")
          (fun () -> ignore (Intset.add (-1) Intset.empty));
        Alcotest.check_raises "singleton"
          (Invalid_argument "Intset: negative element") (fun () ->
            ignore (Intset.singleton (-5))));
    Alcotest.test_case "sharing-friendly union returns same set" `Quick (fun () ->
        let s = Intset.of_list [ 1; 2; 3; 1000; 65536 ] in
        Alcotest.(check bool) "s union s == s" true (Intset.union s s == s);
        Alcotest.(check bool)
          "s union empty == s" true
          (Intset.union s Intset.empty == s));
    Alcotest.test_case "large and boundary values" `Quick (fun () ->
        let big = max_int / 2 in
        let s = Intset.of_list [ 0; 1; big; big - 1 ] in
        Alcotest.(check bool) "mem big" true (Intset.mem big s);
        Alcotest.(check int) "cardinal" 4 (Intset.cardinal s));
  ]

let tests = unit_tests @ List.map QCheck_alcotest.to_alcotest qcheck_tests
