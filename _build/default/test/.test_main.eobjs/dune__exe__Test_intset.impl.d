test/test_intset.ml: Alcotest Gen Int List Pta_solver QCheck QCheck_alcotest Set
