test/test_hierarchy.ml: Alcotest List Option Pta_frontend Pta_ir
