test/test_precision.ml: Alcotest List Option Printf Pta_clients Pta_context Pta_ir Pta_solver Pta_workloads
