test/test_field_modes.ml: Alcotest List Option Pta_context Pta_frontend Pta_ir Pta_solver
