test/test_frontend.ml: Alcotest Ast Format Frontend Lexer List Option Parser Pta_frontend Pta_ir Srcloc String Token
