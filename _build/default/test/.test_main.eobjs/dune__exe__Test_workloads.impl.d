test/test_workloads.ml: Alcotest List Option Pta_frontend Pta_ir Pta_mjdk Pta_workloads String
