test/test_fuzz.ml: Alcotest Array Builder Int64 List Meth_id Option Printf Program Pta_context Pta_interp Pta_ir Pta_refimpl Pta_solver Pta_workloads Test_differential
