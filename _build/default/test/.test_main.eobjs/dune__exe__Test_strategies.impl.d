test/test_strategies.ml: Alcotest List Option Pta_context Pta_frontend Pta_ir String
