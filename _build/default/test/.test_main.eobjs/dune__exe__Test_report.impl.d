test/test_report.ml: Alcotest List Pta_report String
