test/test_interp.ml: Alcotest List Option Pta_frontend Pta_interp Pta_ir Pta_workloads String
