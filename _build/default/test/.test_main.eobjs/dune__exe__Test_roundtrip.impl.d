test/test_roundtrip.ml: Alcotest Int64 List Option Printf Pta_clients Pta_context Pta_frontend Pta_ir Pta_solver Pta_workloads Test_differential Test_fuzz
