test/test_exceptions.ml: Alcotest List Option Pta_clients Pta_context Pta_frontend Pta_ir Pta_solver
