test/test_soundness.ml: Alcotest List Option Pta_context Pta_frontend Pta_interp Pta_ir Pta_solver Pta_workloads Test_differential
