test/helpers.ml: Alcotest List Printf Pta_context Pta_frontend Pta_ir Pta_solver String
