test/test_stats.ml: Alcotest Format Lazy List Pta_clients Pta_context Pta_frontend Pta_ir Pta_solver String
