test/test_datalog.ml: Alcotest Array Hashtbl List Pta_datalog
