test/test_solver_more.ml: Alcotest Array List Option Pta_clients Pta_context Pta_frontend Pta_ir Pta_solver Pta_workloads String
