test/test_containers.ml: Alcotest Fun List Pta_context Pta_ir Pta_workloads QCheck QCheck_alcotest
