test/test_clients.ml: Alcotest Lazy List Pta_clients Pta_context Pta_frontend Pta_ir Pta_solver
