test/test_engine_edge.ml: Alcotest List Printf Pta_datalog
