test/test_regression_pin.ml: Alcotest List Option Printf Pta_clients Pta_context Pta_solver Pta_workloads
