test/test_smoke.ml: Alcotest Helpers List Pta_context Pta_solver
