test/test_differential.ml: Alcotest Array List Option Printf Pta_context Pta_frontend Pta_ir Pta_refimpl Pta_solver Pta_workloads Set String
