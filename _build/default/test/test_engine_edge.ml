(** Edge-case tests for the Datalog engine's semi-naive evaluation:
    facts derived mid-round, constants in bodies, self-joins, heads with
    constants, and mutual recursion across rules. *)

module Relation = Pta_datalog.Relation
module Engine = Pta_datalog.Engine
open Engine

(* Mutual recursion: even/odd successor chains. *)
let mutual_recursion_test () =
  let succ = Relation.create ~name:"succ" ~arity:2 in
  let even = Relation.create ~name:"even" ~arity:1 in
  let odd = Relation.create ~name:"odd" ~arity:1 in
  for i = 0 to 9 do
    ignore (Relation.add succ [| i; i + 1 |])
  done;
  ignore (Relation.add even [| 0 |]);
  Engine.run
    [
      rule "odd" ~n_vars:2
        [ { hrel = odd; hargs = [| Hv 1 |] } ]
        [
          { rel = even; args = [| V 0 |] };
          { rel = succ; args = [| V 0; V 1 |] };
        ];
      rule "even" ~n_vars:2
        [ { hrel = even; hargs = [| Hv 1 |] } ]
        [
          { rel = odd; args = [| V 0 |] };
          { rel = succ; args = [| V 0; V 1 |] };
        ];
    ];
  for i = 0 to 10 do
    Alcotest.(check bool)
      (Printf.sprintf "even %d" i)
      (i mod 2 = 0)
      (Relation.mem even [| i |]);
    Alcotest.(check bool)
      (Printf.sprintf "odd %d" i)
      (i mod 2 = 1)
      (Relation.mem odd [| i |])
  done

(* Constants in body atoms restrict matching. *)
let body_constant_test () =
  let e = Relation.create ~name:"e" ~arity:2 in
  let out = Relation.create ~name:"out" ~arity:1 in
  List.iter (fun f -> ignore (Relation.add e f)) [ [| 1; 5 |]; [| 2; 5 |]; [| 1; 6 |] ];
  Engine.run
    [
      rule "pick" ~n_vars:1
        [ { hrel = out; hargs = [| Hv 0 |] } ]
        [ { rel = e; args = [| V 0; C 5 |] } ];
    ];
  Alcotest.(check int) "two matches" 2 (Relation.cardinal out);
  Alcotest.(check bool) "1" true (Relation.mem out [| 1 |]);
  Alcotest.(check bool) "2" true (Relation.mem out [| 2 |])

(* Head constants. *)
let head_constant_test () =
  let src = Relation.create ~name:"src2" ~arity:1 in
  let out = Relation.create ~name:"out2" ~arity:2 in
  ignore (Relation.add src [| 4 |]);
  Engine.run
    [
      rule "tag" ~n_vars:1
        [ { hrel = out; hargs = [| Hc 7; Hv 0 |] } ]
        [ { rel = src; args = [| V 0 |] } ];
    ];
  Alcotest.(check bool) "tagged" true (Relation.mem out [| 7; 4 |])

(* Self-join: grandparent through one relation used twice. *)
let self_join_test () =
  let parent = Relation.create ~name:"parent2" ~arity:2 in
  let gp = Relation.create ~name:"grandparent" ~arity:2 in
  List.iter
    (fun f -> ignore (Relation.add parent f))
    [ [| 1; 2 |]; [| 2; 3 |]; [| 3; 4 |] ];
  Engine.run
    [
      rule "gp" ~n_vars:3
        [ { hrel = gp; hargs = [| Hv 0; Hv 2 |] } ]
        [
          { rel = parent; args = [| V 0; V 1 |] };
          { rel = parent; args = [| V 1; V 2 |] };
        ];
    ];
  Alcotest.(check int) "two grandparents" 2 (Relation.cardinal gp);
  Alcotest.(check bool) "1-3" true (Relation.mem gp [| 1; 3 |]);
  Alcotest.(check bool) "2-4" true (Relation.mem gp [| 2; 4 |])

(* Long chains exercise many delta rounds. *)
let long_chain_test () =
  let edge = Relation.create ~name:"edge3" ~arity:2 in
  let path = Relation.create ~name:"path3" ~arity:2 in
  let n = 200 in
  for i = 0 to n - 1 do
    ignore (Relation.add edge [| i; i + 1 |])
  done;
  Engine.run
    [
      rule "base" ~n_vars:2
        [ { hrel = path; hargs = [| Hv 0; Hv 1 |] } ]
        [ { rel = edge; args = [| V 0; V 1 |] } ];
      (* Linear recursion with delta on the recursive atom. *)
      rule "step" ~n_vars:3
        [ { hrel = path; hargs = [| Hv 0; Hv 2 |] } ]
        [
          { rel = path; args = [| V 0; V 1 |] };
          { rel = edge; args = [| V 1; V 2 |] };
        ];
    ];
  Alcotest.(check int) "full closure" (n * (n + 1) / 2) (Relation.cardinal path);
  Alcotest.(check bool) "ends" true (Relation.mem path [| 0; n |])

let tests =
  [
    Alcotest.test_case "mutual recursion" `Quick mutual_recursion_test;
    Alcotest.test_case "body constants" `Quick body_constant_test;
    Alcotest.test_case "head constants" `Quick head_constant_test;
    Alcotest.test_case "self-join" `Quick self_join_test;
    Alcotest.test_case "long chain (many rounds)" `Quick long_chain_test;
  ]
