(** Rendering tests for the report library (tables, CSV, scatter). *)

module Table = Pta_report.Table
module Scatter = Pta_report.Scatter

let lines s = String.split_on_char '\n' (String.trim s)

let table_tests =
  [
    Alcotest.test_case "columns align" `Quick (fun () ->
        let t = Table.create ~headers:[ "name"; "value" ] in
        Table.add_row t [ "a"; "1" ];
        Table.add_row t [ "long-name"; "12345" ];
        match lines (Table.render t) with
        | header :: _sep :: rows ->
          List.iter
            (fun row ->
              Alcotest.(check int) "equal width" (String.length header)
                (String.length row))
            rows
        | _ -> Alcotest.fail "missing rows");
    Alcotest.test_case "first column left, rest right aligned" `Quick (fun () ->
        let t = Table.create ~headers:[ "n"; "v" ] in
        Table.add_row t [ "abc"; "1" ];
        Table.add_row t [ "x"; "100" ];
        let all = lines (Table.render t) in
        let row = List.nth all 3 in
        Alcotest.(check char) "left col starts at 0" 'x' row.[0];
        Alcotest.(check char) "right col padded" '1' row.[String.length row - 3]);
    Alcotest.test_case "separators render" `Quick (fun () ->
        let t = Table.create ~headers:[ "a" ] in
        Table.add_row t [ "1" ];
        Table.add_separator t;
        Table.add_row t [ "2" ];
        Alcotest.(check int) "five lines" 5 (List.length (lines (Table.render t))));
    Alcotest.test_case "csv escaping" `Quick (fun () ->
        let out =
          Table.csv ~headers:[ "x"; "y" ] [ [ "a,b"; "he said \"hi\"" ]; [ "plain"; "2" ] ]
        in
        Alcotest.(check string) "escaped"
          "x,y\n\"a,b\",\"he said \"\"hi\"\"\"\nplain,2\n" out);
  ]

let scatter_tests =
  [
    Alcotest.test_case "all points plotted with legend" `Quick (fun () ->
        let out =
          Scatter.render ~title:"t" ~x_label:"x" ~y_label:"y"
            [
              { Scatter.key = 'a'; label = "first"; x = 0.; y = 0. };
              { Scatter.key = 'b'; label = "second"; x = 10.; y = 5. };
            ]
        in
        Alcotest.(check bool) "contains a" true (String.contains out 'a');
        Alcotest.(check bool) "contains b" true (String.contains out 'b');
        let has_sub sub =
          let n = String.length sub and h = String.length out in
          let rec at i = i + n <= h && (String.sub out i n = sub || at (i + 1)) in
          at 0
        in
        Alcotest.(check bool) "legend first" true (has_sub "first");
        Alcotest.(check bool) "legend second" true (has_sub "second"));
    Alcotest.test_case "empty data" `Quick (fun () ->
        let out = Scatter.render ~title:"t" ~x_label:"x" ~y_label:"y" [] in
        Alcotest.(check bool) "mentions no data" true
          (String.length out > 0));
    Alcotest.test_case "degenerate single point" `Quick (fun () ->
        let out =
          Scatter.render ~title:"t" ~x_label:"x" ~y_label:"y"
            [ { Scatter.key = 'z'; label = "only"; x = 3.; y = 7. } ]
        in
        Alcotest.(check bool) "plots" true (String.contains out 'z'));
  ]

let tests = table_tests @ scatter_tests
