(* The pointsto command-line driver.

   Subcommands:
     analyze    — run one analysis on MJ sources, print metrics
     compare    — run several analyses, print a metric table
     query      — points-to set of one variable
     casts      — may-fail casts with witness allocation sites
     callgraph  — context-insensitive call graph
     dump-ir    — parse, lower and pretty-print the IR
     gen        — emit a synthetic benchmark's MJ source
     strategies — list available analyses *)

module Ir = Pta_ir.Ir
module Solver = Pta_solver.Solver
module Intset = Pta_solver.Intset
module Metrics = Pta_clients.Metrics
module Strategies = Pta_context.Strategies
open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared argument definitions                                         *)
(* ------------------------------------------------------------------ *)

let files_arg =
  Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE" ~doc:"MJ source files.")

let analysis_arg =
  let doc = "Context-sensitivity strategy (see $(b,pointsto strategies))." in
  Arg.(value & opt string "S-2obj+H" & info [ "a"; "analysis" ] ~docv:"NAME" ~doc)

let no_stdlib_arg =
  let doc = "Do not link the bundled mini-JDK." in
  Arg.(value & flag & info [ "no-stdlib" ] ~doc)

let timeout_arg =
  let doc = "Abort the analysis after $(docv) seconds." in
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS" ~doc)

let load_program ~no_stdlib files =
  let sources =
    (if no_stdlib then []
     else [ (Pta_mjdk.Mjdk.file_name, Pta_mjdk.Mjdk.source) ])
    @ List.map
        (fun path ->
          let ic = open_in_bin path in
          let contents =
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          in
          (path, contents))
        files
  in
  Pta_frontend.Frontend.program_of_sources sources

let strategy_of_name program name =
  match Strategies.by_name name with
  | Some factory -> factory program
  | None ->
    Printf.eprintf "unknown analysis %S; see `pointsto strategies'\n" name;
    exit 2

let with_frontend_errors f =
  try f () with
  | exn ->
    if Pta_frontend.Frontend.report Format.err_formatter exn then exit 1
    else raise exn

let run_analysis ?timeout_s program name =
  let strategy = strategy_of_name program name in
  try Solver.run ?timeout_s program strategy with
  | Solver.Timeout ->
    Printf.eprintf "analysis %s timed out\n" name;
    exit 3

(* ------------------------------------------------------------------ *)
(* Subcommands                                                         *)
(* ------------------------------------------------------------------ *)

let resolve_meth_var program meth_name var_name =
  let cls, rest =
    match String.index_opt meth_name '.' with
    | Some i ->
      ( String.sub meth_name 0 i,
        String.sub meth_name (i + 1) (String.length meth_name - i - 1) )
    | None ->
      Printf.eprintf "--method expects Class.meth/arity\n";
      exit 2
  in
  let mname, arity =
    match String.index_opt rest '/' with
    | Some i ->
      ( String.sub rest 0 i,
        int_of_string (String.sub rest (i + 1) (String.length rest - i - 1)) )
    | None -> (rest, 0)
  in
  let meth =
    match Ir.Program.find_meth program cls mname arity with
    | Some m -> m
    | None ->
      Printf.eprintf "no method %s.%s/%d\n" cls mname arity;
      exit 2
  in
  let var =
    let found = ref None in
    Ir.Program.iter_vars program (fun v info ->
        if Ir.Meth_id.equal info.Ir.var_owner meth
           && String.equal info.Ir.var_name var_name
        then found := Some v);
    match !found with
    | Some v -> v
    | None ->
      Printf.eprintf "no variable %s in %s\n" var_name meth_name;
      exit 2
  in
  (meth, var)



let analyze_cmd =
  let run files analysis no_stdlib timeout_s =
    with_frontend_errors @@ fun () ->
    let program = load_program ~no_stdlib files in
    let t0 = Unix.gettimeofday () in
    let solver = run_analysis ?timeout_s program analysis in
    let elapsed = Unix.gettimeofday () -. t0 in
    let metrics = Metrics.compute solver in
    Format.printf "analysis: %s (%s)@." analysis
      (strategy_of_name program analysis).Pta_context.Strategy.description;
    Format.printf "%a@." Metrics.pp metrics;
    Format.printf "elapsed: %.3fs@." elapsed
  in
  let doc = "Run one points-to analysis and print its metrics." in
  Cmd.v
    (Cmd.info "analyze" ~doc)
    Term.(const run $ files_arg $ analysis_arg $ no_stdlib_arg $ timeout_arg)

let compare_cmd =
  let analyses_arg =
    let doc = "Comma-separated analyses to compare." in
    Arg.(
      value
      & opt (list string) [ "1call"; "1obj"; "SB-1obj"; "2obj+H"; "S-2obj+H"; "2type+H" ]
      & info [ "analyses" ] ~docv:"NAMES" ~doc)
  in
  let run files analyses no_stdlib timeout_s =
    with_frontend_errors @@ fun () ->
    let program = load_program ~no_stdlib files in
    let table =
      Pta_report.Table.create
        ~headers:
          [ "analysis"; "avg objs"; "cg edges"; "poly v-calls"; "may-fail casts";
            "time (s)"; "sensitive vpt" ]
    in
    List.iter
      (fun name ->
        let strategy = strategy_of_name program name in
        match
          let t0 = Unix.gettimeofday () in
          let solver = Solver.run ?timeout_s program strategy in
          (Metrics.compute solver, Unix.gettimeofday () -. t0)
        with
        | m, s ->
          Pta_report.Table.add_row table
            [
              name;
              Printf.sprintf "%.2f" m.Metrics.avg_objs_per_var;
              string_of_int m.Metrics.call_graph_edges;
              Printf.sprintf "%d/%d" m.Metrics.poly_vcalls m.Metrics.total_vcalls;
              Printf.sprintf "%d/%d" m.Metrics.may_fail_casts m.Metrics.total_casts;
              Printf.sprintf "%.3f" s;
              string_of_int m.Metrics.sensitive_vpt;
            ]
        | exception Solver.Timeout ->
          Pta_report.Table.add_row table [ name; "-"; "-"; "-"; "-"; "-"; "-" ])
      analyses;
    print_string (Pta_report.Table.render table)
  in
  let doc = "Compare several analyses on the same program." in
  Cmd.v
    (Cmd.info "compare" ~doc)
    Term.(const run $ files_arg $ analyses_arg $ no_stdlib_arg $ timeout_arg)

let query_cmd =
  let meth_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "method" ] ~docv:"Class.meth/arity" ~doc:"Qualified method name.")
  in
  let var_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "var" ] ~docv:"NAME" ~doc:"Local variable name.")
  in
  let run files analysis no_stdlib meth_name var_name =
    with_frontend_errors @@ fun () ->
    let program = load_program ~no_stdlib files in
    let _, var = resolve_meth_var program meth_name var_name in
    let solver = run_analysis program analysis in
    let heaps = Solver.ci_var_points_to solver var in
    Format.printf "%s may point to %d allocation site(s):@."
      (Ir.Program.var_qualified_name program var)
      (Intset.cardinal heaps);
    Intset.iter
      (fun h ->
        Format.printf "  %s@." (Ir.Program.heap_name program (Ir.Heap_id.of_int h)))
      heaps
  in
  let doc = "Print the points-to set of one variable." in
  Cmd.v
    (Cmd.info "query" ~doc)
    Term.(const run $ files_arg $ analysis_arg $ no_stdlib_arg $ meth_arg $ var_arg)

let casts_cmd =
  let run files analysis no_stdlib =
    with_frontend_errors @@ fun () ->
    let program = load_program ~no_stdlib files in
    let solver = run_analysis program analysis in
    let sites = Pta_clients.Casts.analyze solver in
    List.iter
      (fun (site : Pta_clients.Casts.site) ->
        match site.verdict with
        | Pta_clients.Casts.Safe -> ()
        | Pta_clients.Casts.May_fail witnesses ->
          Format.printf "MAY FAIL: (%s) cast of %s in %s@."
            (Ir.Program.type_name program site.cast_type)
            (Ir.Program.var_info program site.source).Ir.var_name
            (Ir.Program.meth_qualified_name program site.in_meth);
          List.iteri
            (fun i h ->
              if i < 3 then
                Format.printf "    witness: %s@." (Ir.Program.heap_name program h))
            witnesses)
      sites;
    Format.printf "%d of %d casts may fail under %s@."
      (Pta_clients.Casts.may_fail_count sites)
      (List.length sites) analysis
  in
  let doc = "List casts the analysis cannot prove safe." in
  Cmd.v
    (Cmd.info "casts" ~doc)
    Term.(const run $ files_arg $ analysis_arg $ no_stdlib_arg)

let callgraph_cmd =
  let dot_arg =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz dot on stdout.")
  in
  let run files analysis no_stdlib dot =
    with_frontend_errors @@ fun () ->
    let program = load_program ~no_stdlib files in
    let solver = run_analysis program analysis in
    (* Method-level edges: caller method -> callee method. *)
    let edges = Hashtbl.create 256 in
    Ir.Program.iter_invos program (fun invo info ->
        Ir.Meth_id.Set.iter
          (fun target ->
            Hashtbl.replace edges
              ( Ir.Program.meth_qualified_name program info.Ir.invo_owner,
                Ir.Program.meth_qualified_name program target )
              ())
          (Solver.invo_targets solver invo));
    let sorted =
      Hashtbl.fold (fun e () acc -> e :: acc) edges [] |> List.sort compare
    in
    if dot then begin
      Format.printf "digraph callgraph {@.";
      List.iter
        (fun (src, dst) -> Format.printf "  %S -> %S;@." src dst)
        sorted;
      Format.printf "}@."
    end
    else begin
      List.iter (fun (src, dst) -> Format.printf "%s -> %s@." src dst) sorted;
      Format.printf "%d method-level call edges@." (List.length sorted)
    end
  in
  let doc = "Print the computed (context-insensitive) call graph." in
  Cmd.v
    (Cmd.info "callgraph" ~doc)
    Term.(const run $ files_arg $ analysis_arg $ no_stdlib_arg $ dot_arg)

let why_cmd =
  let meth_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "method" ] ~docv:"Class.meth/arity" ~doc:"Qualified method name.")
  in
  let var_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "var" ] ~docv:"NAME" ~doc:"Local variable name.")
  in
  let run files analysis no_stdlib meth_name var_name =
    with_frontend_errors @@ fun () ->
    let program = load_program ~no_stdlib files in
    let meth, var = resolve_meth_var program meth_name var_name in
    ignore meth;
    let solver = run_analysis program analysis in
    let heaps = Solver.ci_var_points_to solver var in
    if Intset.is_empty heaps then
      Format.printf "%s points to nothing under %s@."
        (Ir.Program.var_qualified_name program var)
        analysis
    else
      Intset.iter
        (fun h ->
          let heap = Ir.Heap_id.of_int h in
          Format.printf "@[<v>%s may point to %s because:@,"
            (Ir.Program.var_qualified_name program var)
            (Ir.Program.heap_name program heap);
          (match Pta_clients.Provenance.explain solver ~var ~heap with
          | Some chain -> Pta_clients.Provenance.pp_chain Format.std_formatter chain
          | None -> Format.printf "  (no witness chain found)@,");
          Format.printf "@]@.")
        heaps
  in
  let doc = "Explain why a variable may point to each of its allocation sites." in
  Cmd.v
    (Cmd.info "why" ~doc)
    Term.(const run $ files_arg $ analysis_arg $ no_stdlib_arg $ meth_arg $ var_arg)

let stats_cmd =
  let run files analysis no_stdlib =
    with_frontend_errors @@ fun () ->
    let program = load_program ~no_stdlib files in
    let solver = run_analysis program analysis in
    Format.printf "%a@."
      (Pta_clients.Stats.pp program)
      (Pta_clients.Stats.compute solver)
  in
  let doc =
    "Show where the context-sensitive facts come from (heaviest methods,      fattest variables, context histogram)."
  in
  Cmd.v
    (Cmd.info "stats" ~doc)
    Term.(const run $ files_arg $ analysis_arg $ no_stdlib_arg)

let decompile_cmd =
  let run files no_stdlib =
    with_frontend_errors @@ fun () ->
    let program = load_program ~no_stdlib files in
    print_string (Pta_frontend.To_mj.program_to_source program)
  in
  let doc = "Parse, lower, and print back equivalent MJ source." in
  Cmd.v (Cmd.info "decompile" ~doc) Term.(const run $ files_arg $ no_stdlib_arg)

let exceptions_cmd =
  let run files analysis no_stdlib =
    with_frontend_errors @@ fun () ->
    let program = load_program ~no_stdlib files in
    let solver = run_analysis program analysis in
    let escapes = Pta_clients.Exceptions.escapes solver in
    List.iter
      (fun (e : Pta_clients.Exceptions.escape) ->
        Format.printf "%s may leak:@."
          (Ir.Program.meth_qualified_name program e.meth);
        List.iter
          (fun h -> Format.printf "    %s@." (Ir.Program.heap_name program h))
          e.exceptions)
      escapes;
    let uncaught = Pta_clients.Exceptions.uncaught_at_entries solver in
    Format.printf "%d method(s) may leak exceptions; %d site(s) may escape main@."
      (List.length escapes) (List.length uncaught)
  in
  let doc = "Report which exceptions may escape which methods." in
  Cmd.v
    (Cmd.info "exceptions" ~doc)
    Term.(const run $ files_arg $ analysis_arg $ no_stdlib_arg)

let dump_ir_cmd =
  let run files no_stdlib =
    with_frontend_errors @@ fun () ->
    let program = load_program ~no_stdlib files in
    Format.printf "@[<v>%a@]@." Pta_ir.Ir_pp.pp_program program
  in
  let doc = "Parse, lower and pretty-print the IR." in
  Cmd.v (Cmd.info "dump-ir" ~doc) Term.(const run $ files_arg $ no_stdlib_arg)

let gen_cmd =
  let bench_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BENCHMARK" ~doc:"Benchmark name (or 'tiny').")
  in
  let run name =
    match Pta_workloads.Profile.by_name name with
    | None ->
      Printf.eprintf "unknown benchmark %S; available: tiny %s\n" name
        (String.concat " " Pta_workloads.Workloads.names);
      exit 2
    | Some profile -> print_string (Pta_workloads.Gen.generate profile)
  in
  let doc = "Emit a synthetic benchmark's MJ source on stdout." in
  Cmd.v (Cmd.info "gen" ~doc) Term.(const run $ bench_arg)

let strategies_cmd =
  let run () =
    List.iter
      (fun (name, factory) ->
        (* A strategy's description does not depend on the program; use a
           trivial one to materialize it. *)
        let program =
          Pta_frontend.Frontend.program_of_string "class Main { static method main() { } }"
        in
        let s = factory program in
        Printf.printf "%-10s %s\n" name s.Pta_context.Strategy.description)
      Strategies.all
  in
  let doc = "List available context-sensitivity strategies." in
  Cmd.v (Cmd.info "strategies" ~doc) Term.(const run $ const ())

let main_cmd =
  let doc = "Hybrid context-sensitive points-to analysis for MJ programs" in
  let info = Cmd.info "pointsto" ~version:"1.0.0" ~doc in
  Cmd.group info
    [
      analyze_cmd; compare_cmd; query_cmd; why_cmd; casts_cmd; exceptions_cmd;
      callgraph_cmd; stats_cmd; dump_ir_cmd; decompile_cmd; gen_cmd;
      strategies_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
