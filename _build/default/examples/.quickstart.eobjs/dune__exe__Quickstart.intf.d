examples/quickstart.mli:
