examples/cast_safety.ml: List Option Printf Pta_clients Pta_context Pta_frontend Pta_ir Pta_mjdk Pta_solver String
