examples/exception_audit.ml: List Option Printf Pta_clients Pta_context Pta_ir Pta_report Pta_solver Pta_workloads
