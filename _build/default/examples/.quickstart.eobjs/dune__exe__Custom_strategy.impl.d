examples/custom_strategy.ml: Option Printf Pta_clients Pta_context Pta_report Pta_solver Pta_workloads
