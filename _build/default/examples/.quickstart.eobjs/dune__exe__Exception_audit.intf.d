examples/exception_audit.mli:
