examples/cast_safety.mli:
