examples/quickstart.ml: Format Printf Pta_clients Pta_context Pta_frontend Pta_ir Pta_solver String
