examples/custom_strategy.mli:
