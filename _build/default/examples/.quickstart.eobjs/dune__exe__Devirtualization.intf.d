examples/devirtualization.mli:
