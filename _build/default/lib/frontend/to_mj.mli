(** Decompile an IR program back to MJ source.

    The output reparses to an analysis-equivalent program: lowering the
    printed source yields the same metrics under every strategy (the
    round-trip property tested in the suite).  Useful for dumping
    programs built programmatically (e.g. by the fuzzer) into a form the
    CLI and a human can work with. *)

val program_to_source : Pta_ir.Ir.Program.t -> string
