(** Source positions and frontend errors. *)

type pos = {
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 1-based *)
}

let dummy = { file = "<none>"; line = 0; col = 0 }
let pp_pos ppf p = Format.fprintf ppf "%s:%d:%d" p.file p.line p.col

exception Error of pos * string

let error pos fmt = Format.kasprintf (fun msg -> raise (Error (pos, msg))) fmt

let pp_error ppf (pos, msg) =
  Format.fprintf ppf "%a: error: %s" pp_pos pos msg
