module Ir = Pta_ir.Ir
open Ir

let buf_add = Buffer.add_string

type ctx = {
  program : Program.t;
  buf : Buffer.t;
  mutable depth : int;
  (* IR variable names need not be unique within a method (and the
     builder may create several "$ret"/"exc"); MJ requires uniqueness,
     so printed names are uniquified per method. *)
  names : (int, string) Hashtbl.t;
}

let line c fmt =
  Printf.ksprintf
    (fun s ->
      for _ = 1 to c.depth do
        buf_add c.buf "  "
      done;
      buf_add c.buf s;
      buf_add c.buf "\n")
    fmt

let block c header body =
  line c "%s {" header;
  c.depth <- c.depth + 1;
  body ();
  c.depth <- c.depth - 1;
  line c "}"

let var c v =
  match Hashtbl.find_opt c.names (Var_id.to_int v) with
  | Some n -> n
  | None -> (Program.var_info c.program v).var_name

let assign_names c meth =
  Hashtbl.reset c.names;
  let used = Hashtbl.create 16 in
  Program.iter_vars c.program (fun v info ->
      if Meth_id.equal info.var_owner meth then begin
        let base = info.var_name in
        let name =
          if Hashtbl.mem used base then
            Printf.sprintf "%s_u%d" base (Var_id.to_int v)
          else base
        in
        Hashtbl.add used name ();
        Hashtbl.add c.names (Var_id.to_int v) name
      end)
let ty c t = Program.type_name c.program t
let fld c f = (Program.field_info c.program f).field_name

let static_fld c f =
  let fi = Program.field_info c.program f in
  Printf.sprintf "%s::%s" (ty c fi.field_owner) fi.field_name

let args_str c args = String.concat ", " (List.map (var c) args)

let call_lhs c = function
  | None -> ""
  | Some v -> var c v ^ " = "

let emit_instr c = function
  | Alloc { target; heap } ->
    line c "%s = new %s;" (var c target) (ty c (Program.heap_info c.program heap).heap_type)
  | Move { target; source } -> line c "%s = %s;" (var c target) (var c source)
  | Load { target; base; field } ->
    line c "%s = %s.%s;" (var c target) (var c base) (fld c field)
  | Store { base; field; source } ->
    line c "%s.%s = %s;" (var c base) (fld c field) (var c source)
  | Cast { target; source; cast_type } ->
    line c "%s = (%s) %s;" (var c target) (ty c cast_type) (var c source)
  | Virtual_call { base; signature; invo = _; args; ret_target } ->
    line c "%s%s.%s(%s);" (call_lhs c ret_target) (var c base)
      (Program.sig_info c.program signature).sig_name (args_str c args)
  | Static_call { callee; invo = _; args; ret_target } ->
    let mi = Program.meth_info c.program callee in
    line c "%s%s::%s(%s);" (call_lhs c ret_target) (ty c mi.meth_owner)
      mi.meth_name (args_str c args)
  | Static_load { target; field } ->
    line c "%s = %s;" (var c target) (static_fld c field)
  | Static_store { field; source } ->
    line c "%s = %s;" (static_fld c field) (var c source)
  | Throw { source } -> line c "throw %s;" (var c source)

let rec emit_code c = function
  | Instr i -> emit_instr c i
  | Seq cs -> List.iter (emit_code c) cs
  | Branch (a, b) ->
    line c "if (*) {";
    c.depth <- c.depth + 1;
    emit_code c a;
    c.depth <- c.depth - 1;
    line c "} else {";
    c.depth <- c.depth + 1;
    emit_code c b;
    c.depth <- c.depth - 1;
    line c "}"
  | Loop body ->
    block c "while (*)" (fun () -> emit_code c body)
  | Try (body, handlers) ->
    line c "try {";
    c.depth <- c.depth + 1;
    emit_code c body;
    c.depth <- c.depth - 1;
    List.iter
      (fun h ->
        line c "} catch (%s %s) {" (ty c h.catch_type) (var c h.catch_var);
        c.depth <- c.depth + 1;
        emit_code c h.handler_body;
        c.depth <- c.depth - 1)
      handlers;
    line c "}"

(* Catch variables are declared by their catch clause, so they must not
   be pre-declared at method entry. *)
let catch_vars body =
  let acc = ref Var_id.Set.empty in
  let rec walk = function
    | Instr _ -> ()
    | Seq cs -> List.iter walk cs
    | Branch (a, b) ->
      walk a;
      walk b
    | Loop c -> walk c
    | Try (c, handlers) ->
      walk c;
      List.iter
        (fun h ->
          acc := Var_id.Set.add h.catch_var !acc;
          walk h.handler_body)
        handlers
  in
  walk body;
  !acc

let emit_meth c meth (mi : meth_info) =
  assign_names c meth;
  let formals = Array.to_list mi.formals in
  let header =
    Printf.sprintf "%smethod %s(%s)"
      (if mi.meth_static then "static " else "")
      mi.meth_name
      (String.concat ", " (List.map (var c) formals))
  in
  block c header (fun () ->
      (* Pre-declare every local (null-initialized, adding no facts) so
         reads before writes stay legal after reparsing. *)
      let skip =
        Var_id.Set.union (catch_vars mi.body)
          (Var_id.Set.of_list
             (formals
             @ Option.to_list mi.this_var))
      in
      Program.iter_vars c.program (fun v info ->
          if
            Meth_id.equal info.var_owner meth
            && (not (Var_id.Set.mem v skip))
            && not (String.equal info.var_name "this")
          then line c "var %s = null;" info.var_name);
      emit_code c mi.body;
      match mi.ret_var with
      | Some v -> line c "return %s;" (var c v)
      | None -> ())

let program_to_source program =
  let c =
    { program; buf = Buffer.create 65536; depth = 0; names = Hashtbl.create 64 }
  in
  Program.iter_types program (fun type_id info ->
      let kind =
        match info.type_kind with Class -> "class" | Interface -> "interface"
      in
      let super =
        match info.superclass with
        | Some s when not (String.equal (ty c s) "Object") ->
          " extends " ^ ty c s
        | Some _ | None -> ""
      in
      let ifaces =
        match info.interfaces with
        | [] -> ""
        | l ->
          (match info.type_kind with Class -> " implements " | Interface -> " extends ")
          ^ String.concat ", " (List.map (ty c) l)
      in
      block c (Printf.sprintf "%s %s%s%s" kind info.type_name super ifaces)
        (fun () ->
          (* Fields declared in this class. *)
          let n_fields = Program.n_fields program in
          for i = 0 to n_fields - 1 do
            let f = Field_id.of_int i in
            let fi = Program.field_info program f in
            if Type_id.equal fi.field_owner type_id then
              line c "%sfield %s;" (if fi.field_static then "static " else "")
                fi.field_name
          done;
          List.iter
            (fun (_, m) -> emit_meth c m (Program.meth_info program m))
            info.declared);
      buf_add c.buf "\n");
  Buffer.contents c.buf
