(** Facade over the MJ frontend: parse and lower sources to an IR program.

    All functions raise {!Srcloc.Error} on lexical, syntactic or semantic
    errors; {!report} formats such an error for users. *)

val parse : file:string -> string -> Ast.program
(** Parse one source without lowering. *)

val program_of_sources : (string * string) list -> Pta_ir.Ir.Program.t
(** [(filename, contents)] pairs; all classes are linked into one
    program. *)

val program_of_string : ?file:string -> string -> Pta_ir.Ir.Program.t
val program_of_files : string list -> Pta_ir.Ir.Program.t
val report : Format.formatter -> exn -> bool
(** Pretty-print a frontend error; returns [false] if the exception is
    not a frontend error (caller should re-raise). *)
