let parse ~file src = Parser.parse_string ~file src

let program_of_sources sources =
  let decls =
    List.concat_map (fun (file, contents) -> parse ~file contents) sources
  in
  Lower.program decls

let program_of_string ?(file = "<string>") src =
  program_of_sources [ (file, src) ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let program_of_files paths =
  program_of_sources (List.map (fun p -> (p, read_file p)) paths)

let report ppf = function
  | Srcloc.Error (pos, msg) ->
    Format.fprintf ppf "%a@." Srcloc.pp_error (pos, msg);
    true
  | _ -> false
