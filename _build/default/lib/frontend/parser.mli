(** Recursive-descent parser for MJ.

    @raise Srcloc.Error on syntax errors, with position information. *)

val parse_string : file:string -> string -> Ast.program
