(** Lowering from the MJ AST to the analyzed IR: name resolution,
    hierarchy construction (with a synthesized [Object] root when absent),
    flattening of expressions to three-address instructions with
    compiler-introduced temporaries, and entry-point discovery
    (every [static method main()]).

    @raise Srcloc.Error on semantic errors (unknown names, inheritance
    cycles, duplicate declarations, invalid static-call targets, ...). *)

val program : Ast.program -> Pta_ir.Ir.Program.t
