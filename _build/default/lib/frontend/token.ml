(** Tokens of the MJ language. *)

type t =
  | Ident of string
  | Kw_class
  | Kw_interface
  | Kw_extends
  | Kw_implements
  | Kw_field
  | Kw_method
  | Kw_static
  | Kw_var
  | Kw_new
  | Kw_return
  | Kw_if
  | Kw_else
  | Kw_while
  | Kw_this
  | Kw_null
  | Kw_throw
  | Kw_try
  | Kw_catch
  | Lbrace
  | Rbrace
  | Lparen
  | Rparen
  | Comma
  | Semi
  | Eq
  | Dot
  | Coloncolon
  | Colon
  | Star
  | Eof

let keyword_of_string = function
  | "class" -> Some Kw_class
  | "interface" -> Some Kw_interface
  | "extends" -> Some Kw_extends
  | "implements" -> Some Kw_implements
  | "field" -> Some Kw_field
  | "method" -> Some Kw_method
  | "static" -> Some Kw_static
  | "var" -> Some Kw_var
  | "new" -> Some Kw_new
  | "return" -> Some Kw_return
  | "if" -> Some Kw_if
  | "else" -> Some Kw_else
  | "while" -> Some Kw_while
  | "this" -> Some Kw_this
  | "null" -> Some Kw_null
  | "throw" -> Some Kw_throw
  | "try" -> Some Kw_try
  | "catch" -> Some Kw_catch
  | _ -> None

let to_string = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Kw_class -> "'class'"
  | Kw_interface -> "'interface'"
  | Kw_extends -> "'extends'"
  | Kw_implements -> "'implements'"
  | Kw_field -> "'field'"
  | Kw_method -> "'method'"
  | Kw_static -> "'static'"
  | Kw_var -> "'var'"
  | Kw_new -> "'new'"
  | Kw_return -> "'return'"
  | Kw_if -> "'if'"
  | Kw_else -> "'else'"
  | Kw_while -> "'while'"
  | Kw_this -> "'this'"
  | Kw_null -> "'null'"
  | Kw_throw -> "'throw'"
  | Kw_try -> "'try'"
  | Kw_catch -> "'catch'"
  | Lbrace -> "'{'"
  | Rbrace -> "'}'"
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Comma -> "','"
  | Semi -> "';'"
  | Eq -> "'='"
  | Dot -> "'.'"
  | Coloncolon -> "'::'"
  | Colon -> "':'"
  | Star -> "'*'"
  | Eof -> "end of input"
