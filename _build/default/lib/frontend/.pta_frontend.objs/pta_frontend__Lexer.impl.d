lib/frontend/lexer.ml: List Srcloc String Token
