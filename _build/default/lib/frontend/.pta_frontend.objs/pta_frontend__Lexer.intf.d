lib/frontend/lexer.mli: Srcloc Token
