lib/frontend/to_mj.ml: Array Buffer Field_id Hashtbl List Meth_id Option Printf Program Pta_ir String Type_id Var_id
