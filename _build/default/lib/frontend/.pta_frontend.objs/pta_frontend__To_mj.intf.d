lib/frontend/to_mj.mli: Pta_ir
