lib/frontend/ast.ml: Srcloc
