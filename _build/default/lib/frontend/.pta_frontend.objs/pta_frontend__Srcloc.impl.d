lib/frontend/srcloc.ml: Format
