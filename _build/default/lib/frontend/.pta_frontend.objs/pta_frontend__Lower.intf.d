lib/frontend/lower.mli: Ast Pta_ir
