lib/frontend/lower.ml: Ast Builder Field_id Hashtbl List Meth_id Option Printf Program Pta_ir Srcloc String Type_id Var_id
