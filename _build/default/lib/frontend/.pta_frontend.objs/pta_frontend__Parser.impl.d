lib/frontend/parser.ml: Array Ast Lexer List Srcloc Token
