lib/frontend/frontend.ml: Format Fun List Lower Parser Srcloc
