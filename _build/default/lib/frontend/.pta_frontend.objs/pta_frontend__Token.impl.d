lib/frontend/token.ml: Printf
