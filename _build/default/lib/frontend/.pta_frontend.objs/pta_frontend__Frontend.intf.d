lib/frontend/frontend.mli: Ast Format Pta_ir
