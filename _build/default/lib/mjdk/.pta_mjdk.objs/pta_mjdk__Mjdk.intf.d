lib/mjdk/mjdk.mli:
