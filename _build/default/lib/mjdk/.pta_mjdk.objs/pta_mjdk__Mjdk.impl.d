lib/mjdk/mjdk.ml:
