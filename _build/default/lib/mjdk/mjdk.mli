(** The mini-JDK: MJ source for the core library classes every workload
    links against — the stand-in for the JDK the paper analyzes alongside
    each DaCapo benchmark.

    It models the allocation/points-to behaviour of the classes that
    dominate real Java points-to analysis: strings and string builders,
    the collections framework (lists, maps, sets, iterators), boxed
    values, and the static utility classes whose pass-through methods
    are precisely the feature hybrid context-sensitivity targets. *)

val source : string
(** One MJ compilation unit containing the whole library. *)

val file_name : string
(** Pseudo file name used in error positions. *)
