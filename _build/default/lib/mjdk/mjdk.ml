let file_name = "<mjdk>"

let source =
  {|
// ===================================================================
// The MJ mini-JDK: the core library linked into every workload.
// Modeled on the allocation behaviour of the real JDK classes that
// dominate Java points-to analysis.
// ===================================================================

class Object {
  method toString() : String { return new String; }
  method clone() : Object { return this; }
}

class String {
  method toString() : String { return this; }
  method concat(other : String) : String { return new String; }
  method substring(from) : String { return new String; }
  method intern() : String { return this; }
  static method valueOf(o) : String {
    var s = o.toString();
    return (String) s;
  }
}

class StringBuilder {
  field sb_chars : String;
  method init() { this.sb_chars = new String; }
  method append(o) : StringBuilder {
    var s = String::valueOf(o);
    this.sb_chars = s;
    return this;
  }
  method toString() : String { return new String; }
}

// Boxed values: scalar payloads are irrelevant to points-to, but the
// box allocations and the static factory methods are not.
class Integer {
  // The small-value cache: a shared, statically-held instance, as in
  // java.lang.Integer.IntegerCache.
  static field integerCache;
  static method valueOf(o) : Integer {
    if (*) {
      return new Integer;
    }
    if (*) { Integer::integerCache = new Integer; }
    return (Integer) Integer::integerCache;
  }
  method intValue() : Integer { return this; }
}

class Boolean {
  static method valueOf(o) : Boolean { return new Boolean; }
}

// ===================================================================
// Collections
// ===================================================================

interface Iterator {
  method hasNext() : Object;
  method next() : Object;
}

interface Collection {
  method add(e) : Object;
  method iterator() : Iterator;
  method size() : Integer;
}

interface List {
  method add(e) : Object;
  method get(index) : Object;
  method set(index, e) : Object;
  method iterator() : Iterator;
  method size() : Integer;
}

interface Map {
  method put(k, v) : Object;
  method get(k) : Object;
  method keyIterator() : Iterator;
  method valueIterator() : Iterator;
}

// Array-backed list: contents conflated into one summary field, the
// standard Doop-level model of ArrayList's elementData.
class ArrayList implements List, Collection {
  field elem;
  method init() { }
  // Internal helpers mirror the real ArrayList's ensureCapacity /
  // rangeCheck / elementData plumbing: self-calls with several locals,
  // so each (collection, context) pair carries real analysis weight.
  method ensureCapacity(e) : Object {
    var cur = this.elem;
    var probe = cur;
    if (*) { probe = e; }
    return probe;
  }
  method elementData(index) : Object {
    var cur = this.elem;
    return cur;
  }
  method rangeCheck(index) : Object {
    var witness = this.elementData(index);
    return witness;
  }
  method add(e) : Object {
    var room = this.ensureCapacity(e);
    this.elem = e;
    return e;
  }
  method get(index) : Object {
    var checked = this.rangeCheck(index);
    var data = this.elementData(index);
    return data;
  }
  method set(index, e) : Object {
    var old = this.elementData(index);
    var room = this.ensureCapacity(e);
    this.elem = e;
    return old;
  }
  method iterator() : Iterator { return new ArrayListIterator(this); }
  method size() : Integer { return new Integer; }
}

class ArrayListIterator implements Iterator {
  field owner;
  method init(list) { this.owner = list; }
  method hasNext() : Object { return null; }
  method next() : Object {
    var list = (ArrayList) this.owner;
    return list.get(null);
  }
}

// Linked list with a real node chain, so deeper heap paths exist.
class LinkedNode {
  field item;
  field nextNode;
}

class LinkedList implements List, Collection {
  field head;
  method init() { }
  method add(e) : Object {
    var node = new LinkedNode;
    node.item = e;
    node.nextNode = this.head;
    this.head = node;
    return e;
  }
  method get(index) : Object {
    var node = (LinkedNode) this.head;
    while (*) { node = (LinkedNode) node.nextNode; }
    return node.item;
  }
  method set(index, e) : Object {
    var old = this.get(index);
    this.add(e);
    return old;
  }
  method iterator() : Iterator { return new LinkedListIterator(this); }
  method size() : Integer { return new Integer; }
}

class LinkedListIterator implements Iterator {
  field cursor;
  method init(list) {
    var ll = (LinkedList) list;
    this.cursor = ll.head;
  }
  method hasNext() : Object { return null; }
  method next() : Object {
    var node = (LinkedNode) this.cursor;
    this.cursor = node.nextNode;
    return node.item;
  }
}

class MapEntry {
  field key;
  field value;
}

class HashMap implements Map {
  field entry;
  method init() { }
  // Bucket-probe plumbing, as in the real HashMap.getNode/putVal.
  method findEntry(k) : Object {
    var e = this.entry;
    var probe = e;
    if (*) { probe = this.entry; }
    return probe;
  }
  method put(k, v) : Object {
    var prior = this.findEntry(k);
    var e = new MapEntry;
    e.key = k;
    e.value = v;
    this.entry = e;
    return v;
  }
  method get(k) : Object {
    var found = this.findEntry(k);
    var e = (MapEntry) found;
    return e.value;
  }
  method keyIterator() : Iterator { return new KeyIterator(this); }
  method valueIterator() : Iterator { return new ValueIterator(this); }
}

class KeyIterator implements Iterator {
  field map;
  method init(m) { this.map = m; }
  method hasNext() : Object { return null; }
  method next() : Object {
    var m = (HashMap) this.map;
    var e = (MapEntry) m.entry;
    return e.key;
  }
}

class ValueIterator implements Iterator {
  field map;
  method init(m) { this.map = m; }
  method hasNext() : Object { return null; }
  method next() : Object {
    var m = (HashMap) this.map;
    var e = (MapEntry) m.entry;
    return e.value;
  }
}

class HashSet implements Collection {
  field backing;
  method init() { this.backing = new HashMap; }
  method add(e) : Object {
    var m = (HashMap) this.backing;
    m.put(e, e);
    return e;
  }
  method iterator() : Iterator {
    var m = (HashMap) this.backing;
    return m.keyIterator();
  }
  method size() : Integer { return new Integer; }
}

// ===================================================================
// Static utility classes: the pass-through methods whose context the
// selective hybrids track with invocation sites.
// ===================================================================

class Objects {
  static method requireNonNull(o) : Object { return o; }
  static method requireNonNullElse(o, fallback) : Object {
    if (*) { return o; }
    return fallback;
  }
  static method toStringOf(o) : String { return String::valueOf(o); }
}

class Collections {
  static method singletonList(e) : List {
    var list = new ArrayList();
    list.add(e);
    return list;
  }
  static method unmodifiableList(inner) : List {
    return new UnmodifiableList(inner);
  }
  // Shared immutable empty list, as in java.util.Collections.EMPTY_LIST.
  static field sharedEmptyList;
  static method emptyList() : List {
    if (*) { Collections::sharedEmptyList = new UnmodifiableList(new ArrayList()); }
    return (List) Collections::sharedEmptyList;
  }
}

class UnmodifiableList implements List {
  field inner;
  method init(list) { this.inner = list; }
  method add(e) : Object { return null; }
  method get(index) : Object {
    var list = (List) this.inner;
    return list.get(index);
  }
  method set(index, e) : Object { return null; }
  method iterator() : Iterator {
    var list = (List) this.inner;
    return list.iterator();
  }
  method size() : Integer { return new Integer; }
}

class Arrays {
  static method asList(a, b) : List {
    var list = new ArrayList();
    list.add(a);
    list.add(b);
    return list;
  }
}
|}
