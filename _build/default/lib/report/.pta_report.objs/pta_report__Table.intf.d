lib/report/table.mli:
