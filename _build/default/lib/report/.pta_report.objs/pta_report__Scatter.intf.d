lib/report/scatter.mli:
