lib/report/scatter.ml: Array Buffer List Printf String
