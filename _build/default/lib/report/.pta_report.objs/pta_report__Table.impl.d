lib/report/table.ml: Array Buffer List Printf String
