type point = {
  key : char;
  label : string;
  x : float;
  y : float;
}

let render ?(width = 64) ?(height = 18) ~title ~x_label ~y_label points =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  (match points with
  | [] -> Buffer.add_string buf "  (no data)\n"
  | _ ->
    let xs = List.map (fun p -> p.x) points in
    let ys = List.map (fun p -> p.y) points in
    let x_min = List.fold_left min (List.hd xs) xs in
    let x_max = List.fold_left max (List.hd xs) xs in
    let y_max = List.fold_left max (List.hd ys) ys in
    let x_span = if x_max > x_min then x_max -. x_min else 1. in
    let y_span = if y_max > 0. then y_max else 1. in
    let grid = Array.make_matrix height width ' ' in
    List.iter
      (fun p ->
        let col =
          int_of_float ((p.x -. x_min) /. x_span *. float_of_int (width - 1))
        in
        let row = int_of_float (p.y /. y_span *. float_of_int (height - 1)) in
        let col = max 0 (min (width - 1) col) in
        let row = max 0 (min (height - 1) row) in
        grid.(height - 1 - row).(col) <- p.key)
      points;
    Array.iteri
      (fun i line ->
        let y_val = y_span *. float_of_int (height - 1 - i) /. float_of_int (height - 1) in
        Buffer.add_string buf (Printf.sprintf "%8.1f |" y_val);
        Buffer.add_string buf (String.init width (fun j -> line.(j)));
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf (String.make 9 ' ');
    Buffer.add_char buf '+';
    Buffer.add_string buf (String.make width '-');
    Buffer.add_char buf '\n';
    Buffer.add_string buf
      (Printf.sprintf "%9s %-10.0f%*s%.0f\n" "" x_min (width - 12) "" x_max);
    Buffer.add_string buf
      (Printf.sprintf "          x: %s, y: %s\n" x_label y_label);
    List.iter
      (fun p ->
        Buffer.add_string buf
          (Printf.sprintf "    %c = %-12s (%.0f, %.2f)\n" p.key p.label p.x p.y))
      points);
  Buffer.contents buf
