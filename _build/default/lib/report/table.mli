(** Fixed-width text tables and CSV emission for the benchmark harness. *)

type t

val create : headers:string list -> t
val add_row : t -> string list -> unit
val add_separator : t -> unit
val render : t -> string
(** Column-aligned rendering; the first column is left-aligned, the rest
    right-aligned. *)

val csv : headers:string list -> string list list -> string
