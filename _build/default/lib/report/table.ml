type row =
  | Cells of string list
  | Separator

type t = {
  headers : string list;
  mutable rows : row list;  (* reversed *)
}

let create ~headers = { headers; rows = [] }
let add_row t cells = t.rows <- Cells cells :: t.rows
let add_separator t = t.rows <- Separator :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all_cell_rows =
    t.headers :: List.filter_map (function Cells c -> Some c | Separator -> None) rows
  in
  let n_cols =
    List.fold_left (fun acc r -> max acc (List.length r)) 0 all_cell_rows
  in
  let widths = Array.make n_cols 0 in
  List.iter
    (fun r ->
      List.iteri
        (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
        r)
    all_cell_rows;
  let buf = Buffer.create 4096 in
  let pad i cell =
    let w = widths.(i) in
    if i = 0 then Printf.sprintf "%-*s" w cell else Printf.sprintf "%*s" w cell
  in
  let emit_cells cells =
    let padded = List.mapi pad cells in
    Buffer.add_string buf (String.concat "  " padded);
    (* right-pad missing trailing columns with nothing *)
    Buffer.add_char buf '\n'
  in
  let total_width =
    Array.fold_left ( + ) 0 widths + (2 * max 0 (n_cols - 1))
  in
  emit_cells t.headers;
  Buffer.add_string buf (String.make total_width '-');
  Buffer.add_char buf '\n';
  List.iter
    (function
      | Cells c -> emit_cells c
      | Separator ->
        Buffer.add_string buf (String.make total_width '-');
        Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let csv ~headers rows =
  let line cells = String.concat "," (List.map csv_escape cells) in
  String.concat "\n" (line headers :: List.map line rows) ^ "\n"
