(** ASCII scatter plots — the harness's rendering of the paper's
    Figure 3 (performance vs. precision, one plot per benchmark). *)

type point = {
  key : char;  (** glyph plotted for this series *)
  label : string;
  x : float;
  y : float;
}

val render :
  ?width:int ->
  ?height:int ->
  title:string ->
  x_label:string ->
  y_label:string ->
  point list ->
  string
(** Lower-left origin; the Y axis starts at zero (as in the paper), the
    X axis at the data minimum.  Coinciding points show the glyph of the
    later point in the list; a legend maps glyphs to labels and exact
    coordinates. *)
