(** Facade: named synthetic benchmarks ready for analysis. *)

val names : string list
(** The ten DaCapo-profile benchmark names, in Table-1 order. *)

val source : Profile.t -> string
(** Benchmark source including the mini-JDK. *)

val program : Profile.t -> Pta_ir.Ir.Program.t
(** Parse and lower ({!source}); memoized per profile name. *)

val program_by_name : string -> Pta_ir.Ir.Program.t option
