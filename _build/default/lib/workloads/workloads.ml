let names = List.map (fun p -> p.Profile.name) Profile.dacapo

let source profile =
  Pta_mjdk.Mjdk.source ^ "\n" ^ Gen.generate profile

let cache : (string, Pta_ir.Ir.Program.t) Hashtbl.t = Hashtbl.create 16

let program profile =
  match Hashtbl.find_opt cache profile.Profile.name with
  | Some p -> p
  | None ->
    let program =
      Pta_frontend.Frontend.program_of_sources
        [
          (Pta_mjdk.Mjdk.file_name, Pta_mjdk.Mjdk.source);
          ("<" ^ profile.Profile.name ^ ">", Gen.generate profile);
        ]
    in
    Hashtbl.add cache profile.Profile.name program;
    program

let program_by_name name = Option.map program (Profile.by_name name)
