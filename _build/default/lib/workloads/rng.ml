type t = { mutable state : int64 }

let create seed = { state = seed }
let copy t = { state = t.state }

(* splitmix64 (Steele, Lea, Flood): one 64-bit multiply-shift-xor chain
   per output; passes BigCrush, trivially portable. *)
let next64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits: OCaml's native int is 63-bit, so a 63-bit value would
     wrap negative. *)
  let v = Int64.to_int (Int64.shift_right_logical (next64 t) 2) in
  v mod n

let bool t p = float_of_int (int t 1_000_000) < p *. 1_000_000.

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let pick_weighted t weighted =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 weighted in
  if total <= 0 then invalid_arg "Rng.pick_weighted: weights must be positive";
  let target = int t total in
  let rec go acc = function
    | [] -> invalid_arg "Rng.pick_weighted: empty list"
    | (w, x) :: rest -> if acc + w > target then x else go (acc + w) rest
  in
  go 0 weighted

let shuffle t xs =
  let arr = Array.of_list xs in
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr
