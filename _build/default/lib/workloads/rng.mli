(** Deterministic splitmix64 PRNG.

    The workload generators must produce byte-identical programs across
    runs and platforms, so they use this self-contained generator rather
    than [Random]. *)

type t

val create : int64 -> t
val copy : t -> t
val next64 : t -> int64
val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)].  [n] must be positive. *)

val bool : t -> float -> bool
(** [bool t p] is [true] with probability [p]. *)

val pick : t -> 'a list -> 'a
(** Uniform choice; the list must be non-empty. *)

val pick_weighted : t -> (int * 'a) list -> 'a
(** Choice by positive integer weights; the list must be non-empty. *)

val shuffle : t -> 'a list -> 'a list
