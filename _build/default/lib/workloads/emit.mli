(** Tiny indentation-aware MJ source emitter used by the generators. *)

type t

val create : unit -> t
val line : t -> ('a, unit, string, unit) format4 -> 'a
val blank : t -> unit

val block : t -> ('a, unit, string, (unit -> unit) -> unit) format4 -> 'a
(** [block t "class %s" name body] emits ["class <name> {"], runs [body]
    one indent level deeper, then emits ["}"]. *)

val contents : t -> string
