type t = {
  buf : Buffer.t;
  mutable depth : int;
}

let create () = { buf = Buffer.create 65536; depth = 0 }

let emit_line t s =
  for _ = 1 to t.depth do
    Buffer.add_string t.buf "  "
  done;
  Buffer.add_string t.buf s;
  Buffer.add_char t.buf '\n'

let line t fmt = Printf.ksprintf (emit_line t) fmt
let blank t = Buffer.add_char t.buf '\n'

let block t fmt =
  Printf.ksprintf
    (fun header body ->
      emit_line t (header ^ " {");
      t.depth <- t.depth + 1;
      body ();
      t.depth <- t.depth - 1;
      emit_line t "}")
    fmt

let contents t = Buffer.contents t.buf
