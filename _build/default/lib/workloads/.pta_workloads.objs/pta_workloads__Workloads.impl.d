lib/workloads/workloads.ml: Gen Hashtbl List Option Profile Pta_frontend Pta_ir Pta_mjdk
