lib/workloads/gen.ml: Array Emit Fun List Printf Profile Rng String
