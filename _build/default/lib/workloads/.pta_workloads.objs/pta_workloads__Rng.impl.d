lib/workloads/rng.ml: Array Int64 List
