lib/workloads/gen.mli: Profile
