lib/workloads/workloads.mli: Profile Pta_ir
