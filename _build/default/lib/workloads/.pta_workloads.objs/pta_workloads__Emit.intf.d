lib/workloads/emit.mli:
