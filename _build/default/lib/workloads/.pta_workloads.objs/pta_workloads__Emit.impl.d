lib/workloads/emit.ml: Buffer Printf
