lib/workloads/rng.mli:
