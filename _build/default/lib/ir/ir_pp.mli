(** Human-readable printing of IR programs and instructions. *)

val pp_instr : Ir.Program.t -> Format.formatter -> Ir.instr -> unit
val pp_code : Ir.Program.t -> Format.formatter -> Ir.code -> unit
val pp_meth : Ir.Program.t -> Format.formatter -> Ir.Meth_id.t -> unit
val pp_program : Format.formatter -> Ir.Program.t -> unit
