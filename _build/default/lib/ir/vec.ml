type 'a t = {
  mutable data : 'a array;
  mutable size : int;
}

let create () = { data = [||]; size = 0 }

let grow v needed =
  let cap = max 8 (max needed (2 * Array.length v.data)) in
  (* The dummy slots beyond [size] hold copies of existing elements, so no
     [Obj.magic] is needed. *)
  let data = Array.make cap v.data.(0) in
  Array.blit v.data 0 data 0 v.size;
  v.data <- data

let push v x =
  let i = v.size in
  if i >= Array.length v.data then
    if i = 0 then v.data <- Array.make 8 x else grow v (i + 1);
  v.data.(i) <- x;
  v.size <- i + 1;
  i

let get v i =
  if i < 0 || i >= v.size then invalid_arg "Vec.get";
  v.data.(i)

let set v i x =
  if i < 0 || i >= v.size then invalid_arg "Vec.set";
  v.data.(i) <- x

let length v = v.size
let is_empty v = v.size = 0

let iter f v =
  for i = 0 to v.size - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.size - 1 do
    f i v.data.(i)
  done

let fold_left f acc v =
  let acc = ref acc in
  for i = 0 to v.size - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let exists p v =
  let rec loop i = i < v.size && (p v.data.(i) || loop (i + 1)) in
  loop 0

let to_array v = Array.sub v.data 0 v.size
let to_list v = Array.to_list (to_array v)

let of_list xs =
  let v = create () in
  List.iter (fun x -> ignore (push v x)) xs;
  v

let clear v =
  v.data <- [||];
  v.size <- 0
