lib/ir/hierarchy.mli: Ir
