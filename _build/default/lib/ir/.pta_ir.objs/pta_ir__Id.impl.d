lib/ir/id.ml: Format Hashtbl Map Set
