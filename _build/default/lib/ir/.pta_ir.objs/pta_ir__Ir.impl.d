lib/ir/ir.ml: Array Hashtbl Id List Option Printf String Vec
