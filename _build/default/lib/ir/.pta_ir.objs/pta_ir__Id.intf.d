lib/ir/id.mli: Format Hashtbl Map Set
