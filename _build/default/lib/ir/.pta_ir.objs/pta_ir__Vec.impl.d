lib/ir/vec.ml: Array List
