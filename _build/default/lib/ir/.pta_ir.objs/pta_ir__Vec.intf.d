lib/ir/vec.mli:
