lib/ir/ir.mli: Id
