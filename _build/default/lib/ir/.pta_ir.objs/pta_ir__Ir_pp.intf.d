lib/ir/ir_pp.mli: Format Ir
