lib/ir/ir_pp.ml: Array Format Ir List Printf Program String
