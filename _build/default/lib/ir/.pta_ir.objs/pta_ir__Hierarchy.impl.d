lib/ir/hierarchy.ml: Array Hashtbl Ir List Meth_id Option Program Sig_id Type_id
