open Ir

let var p v = (Program.var_info p v).var_name
let fld p f = (Program.field_info p f).field_name

let pp_static_field p f =
  let fi = Program.field_info p f in
  Printf.sprintf "%s::%s" (Program.type_name p fi.field_owner) fi.field_name

let pp_instr p ppf = function
  | Alloc { target; heap } ->
    let hi = Program.heap_info p heap in
    Format.fprintf ppf "%s = new %s  /* %s */" (var p target)
      (Program.type_name p hi.heap_type)
      hi.heap_label
  | Move { target; source } ->
    Format.fprintf ppf "%s = %s" (var p target) (var p source)
  | Load { target; base; field } ->
    Format.fprintf ppf "%s = %s.%s" (var p target) (var p base) (fld p field)
  | Store { base; field; source } ->
    Format.fprintf ppf "%s.%s = %s" (var p base) (fld p field) (var p source)
  | Cast { target; source; cast_type } ->
    Format.fprintf ppf "%s = (%s) %s" (var p target)
      (Program.type_name p cast_type)
      (var p source)
  | Virtual_call { base; signature; invo; args; ret_target } ->
    let si = Program.sig_info p signature in
    let args = String.concat ", " (List.map (var p) args) in
    let lhs =
      match ret_target with
      | None -> ""
      | Some v -> var p v ^ " = "
    in
    Format.fprintf ppf "%s%s.%s(%s)  /* %s */" lhs (var p base) si.sig_name args
      (Program.invo_info p invo).invo_label
  | Throw { source } -> Format.fprintf ppf "throw %s" (var p source)
  | Static_load { target; field } ->
    Format.fprintf ppf "%s = %s" (var p target) (pp_static_field p field)
  | Static_store { field; source } ->
    Format.fprintf ppf "%s = %s" (pp_static_field p field) (var p source)
  | Static_call { callee; invo; args; ret_target } ->
    let args = String.concat ", " (List.map (var p) args) in
    let lhs =
      match ret_target with
      | None -> ""
      | Some v -> var p v ^ " = "
    in
    Format.fprintf ppf "%s%s(%s)  /* %s */" lhs
      (Program.meth_qualified_name p callee)
      args
      (Program.invo_info p invo).invo_label

let rec pp_code p ppf = function
  | Instr i -> Format.fprintf ppf "@,%a;" (pp_instr p) i
  | Seq cs -> List.iter (pp_code p ppf) cs
  | Branch (a, b) ->
    Format.fprintf ppf "@,@[<v 2>if (*) {%a@]@,@[<v 2>} else {%a@]@,}" (pp_code p) a
      (pp_code p) b
  | Loop c -> Format.fprintf ppf "@,@[<v 2>while (*) {%a@]@,}" (pp_code p) c
  | Try (body, handlers) ->
    Format.fprintf ppf "@,@[<v 2>try {%a@]@,}" (pp_code p) body;
    List.iter
      (fun h ->
        Format.fprintf ppf "@,@[<v 2>catch (%s %s) {%a@]@,}"
          (Program.type_name p h.catch_type)
          (var p h.catch_var) (pp_code p) h.handler_body)
      handlers

let pp_meth p ppf m =
  let mi = Program.meth_info p m in
  let formals =
    mi.formals |> Array.to_list |> List.map (var p) |> String.concat ", "
  in
  Format.fprintf ppf "@[<v 2>%s%s(%s) {"
    (if mi.meth_static then "static " else "")
    (Program.meth_qualified_name p m)
    formals;
  pp_code p ppf mi.body;
  (match mi.ret_var with
  | None -> ()
  | Some v -> Format.fprintf ppf "@,return %s;" (var p v));
  Format.fprintf ppf "@]@,}"

let pp_program ppf p =
  Program.iter_types p (fun ty info ->
      let kind = match info.type_kind with Class -> "class" | Interface -> "interface" in
      let super =
        match info.superclass with
        | None -> ""
        | Some s -> " extends " ^ Program.type_name p s
      in
      let ifaces =
        match info.interfaces with
        | [] -> ""
        | l -> " implements " ^ String.concat ", " (List.map (Program.type_name p) l)
      in
      Format.fprintf ppf "@[<v 2>%s %s%s%s {" kind info.type_name super ifaces;
      List.iter (fun (_, m) -> Format.fprintf ppf "@,%a" (pp_meth p) m) info.declared;
      Format.fprintf ppf "@]@,}@,";
      ignore ty)
