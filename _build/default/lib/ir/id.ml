module type S = sig
  type t

  val of_int : int -> t
  val to_int : t -> int
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int
  val pp : Format.formatter -> t -> unit

  module Tbl : Hashtbl.S with type key = t
  module Set : Set.S with type elt = t
  module Map : Map.S with type key = t
end

module Make () : S = struct
  type t = int

  let of_int i = i
  let to_int i = i
  let equal (a : int) b = a = b
  let compare (a : int) b = compare a b
  let hash (i : int) = i land max_int
  let pp ppf i = Format.fprintf ppf "#%d" i

  module Key = struct
    type nonrec t = t

    let equal = equal
    let compare = compare
    let hash = hash
  end

  module Tbl = Hashtbl.Make (Key)
  module Set = Set.Make (Key)
  module Map = Map.Make (Key)
end
