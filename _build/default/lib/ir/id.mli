(** Type-distinct integer identifiers.

    Every IR entity kind (type, field, method, variable, allocation site,
    invocation site, ...) gets its own id type by applying {!Make}, so the
    compiler rejects accidental cross-kind mixups while the runtime
    representation stays an unboxed [int]. *)

module type S = sig
  type t

  val of_int : int -> t
  val to_int : t -> int
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int
  val pp : Format.formatter -> t -> unit

  module Tbl : Hashtbl.S with type key = t
  module Set : Set.S with type elt = t
  module Map : Map.S with type key = t
end

module Make () : S
