(** Growable vectors, used by the interning tables and the program
    builder.  A thin, allocation-conscious wrapper over [array]. *)

type 'a t

val create : unit -> 'a t

(** [push v x] appends [x] and returns its index. *)
val push : 'a t -> 'a -> int

val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val length : 'a t -> int
val is_empty : 'a t -> bool
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val exists : ('a -> bool) -> 'a t -> bool
val to_array : 'a t -> 'a array
val to_list : 'a t -> 'a list
val of_list : 'a list -> 'a t
val clear : 'a t -> unit
