(** All analyses from the paper (Sections 2.2, 3.1, 3.2) plus the
    deeper-context extensions it points to, each as a
    {!Strategy.t} built from a program.

    The paper's equations map one-to-one onto these definitions; see the
    implementation, which is written to read like Section 2.2/3. *)

type factory = Pta_ir.Ir.Program.t -> Strategy.t

val insens : factory  (** context-insensitive *)

val call1 : factory  (** 1call *)

val call1_heap : factory  (** 1call+H *)

val call2_heap : factory  (** 2call+H (deeper-context extension) *)

val obj1 : factory  (** 1obj *)

val obj1_heap : factory
(** 1obj+H — included for the paper's "strictly inferior choice" ablation *)

val obj2_heap : factory  (** 2obj+H *)

val type2_heap : factory  (** 2type+H *)

val uniform_obj1 : factory  (** U-1obj (Section 3.1) *)

val uniform_obj2_heap : factory  (** U-2obj+H *)

val uniform_type2_heap : factory  (** U-2type+H *)

val selective_a_obj1 : factory  (** SA-1obj (Section 3.2) *)

val selective_b_obj1 : factory  (** SB-1obj *)

val selective_obj2_heap : factory  (** S-2obj+H *)

val selective_type2_heap : factory  (** S-2type+H *)

val obj3_heap2 : factory  (** 3obj+2H (future-work extension) *)

val adaptive : (string * factory) list
(** Section 6's future-work direction, implemented: hybrids whose
    constructor functions inspect the incoming context's form —
    deepening static call strings and stamping invocation-site heap
    contexts onto objects allocated under static chains. *)

val ablations : (string * factory) list
(** The deliberately bad context combinations Section 3 dismisses —
    call-site heap contexts, inverted heap/hctx significance, free
    mixing that can drop the receiver element — kept to reproduce the
    paper's "we verified experimentally that such combinations yield bad
    analyses". *)

val all : (string * factory) list
(** Every strategy, keyed by its paper abbreviation, in the paper's
    presentation order (Table 1 column order, then extensions). *)

val table1 : (string * factory) list
(** Exactly the 12 analyses of Table 1, in column order. *)

val by_name : string -> factory option

val class_of_alloc : Pta_ir.Ir.Program.t -> Pta_ir.Ir.Heap_id.t -> Pta_ir.Ir.Type_id.t
(** The paper's [CA : H -> T] — the class containing the allocation
    site, used by type-sensitive analyses. *)
