module Ir = Pta_ir.Ir
module Vec = Pta_ir.Vec

type elem =
  | Star
  | Heap of Ir.Heap_id.t
  | Invo of Ir.Invo_id.t
  | Type of Ir.Type_id.t

let elem_equal a b =
  match (a, b) with
  | Star, Star -> true
  | Heap x, Heap y -> Ir.Heap_id.equal x y
  | Invo x, Invo y -> Ir.Invo_id.equal x y
  | Type x, Type y -> Ir.Type_id.equal x y
  | (Star | Heap _ | Invo _ | Type _), _ -> false

let elem_hash = function
  | Star -> 0x5a5a5a
  | Heap h -> (Ir.Heap_id.to_int h * 4) + 1
  | Invo i -> (Ir.Invo_id.to_int i * 4) + 2
  | Type t -> (Ir.Type_id.to_int t * 4) + 3

type value = elem array

let value_equal a b =
  Array.length a = Array.length b
  &&
  let rec loop i = i >= Array.length a || (elem_equal a.(i) b.(i) && loop (i + 1)) in
  loop 0

let value_hash v =
  Array.fold_left (fun acc e -> (acc * 31) + elem_hash e) (Array.length v) v
  land max_int

type id = int

module Value_tbl = Hashtbl.Make (struct
  type t = value

  let equal = value_equal
  let hash = value_hash
end)

type store = {
  table : id Value_tbl.t;
  rev : value Vec.t;
}

let create_store () = { table = Value_tbl.create 1024; rev = Vec.create () }

let intern store v =
  match Value_tbl.find_opt store.table v with
  | Some id -> id
  | None ->
    let id = Vec.push store.rev v in
    Value_tbl.add store.table v id;
    id

let value store id = Vec.get store.rev id
let size store = Vec.length store.rev

let pp_elem program ppf = function
  | Star -> Format.pp_print_string ppf "*"
  | Heap h -> Format.pp_print_string ppf (Ir.Program.heap_name program h)
  | Invo i -> Format.pp_print_string ppf (Ir.Program.invo_name program i)
  | Type t -> Format.pp_print_string ppf (Ir.Program.type_name program t)

let pp_value program ppf v =
  Format.fprintf ppf "[@[<h>%a@]]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (pp_elem program))
    (Array.to_list v)

let nth v i = if i < Array.length v then v.(i) else Star
let first v = nth v 0
let second v = nth v 1
let third v = nth v 2
