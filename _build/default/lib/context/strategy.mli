(** The context-strategy interface: the paper's three constructor
    functions.

    The analysis core (both the native solver and the Datalog reference
    implementation) is written once against this interface; instantiating
    it with different [record]/[merge]/[merge_static] definitions yields
    every analysis in the paper — context-insensitive, call-site-,
    object- and type-sensitive, and all uniform/selective hybrids
    (see {!module:Strategies}). *)

type t = {
  name : string;  (** the paper's abbreviation, e.g. ["S-2obj+H"] *)
  description : string;
  initial_ctx : Ctx.value;
      (** context under which entry points are analyzed; [Star]-padded to
          the analysis's context shape *)
  record : heap:Pta_ir.Ir.Heap_id.t -> ctx:Ctx.value -> Ctx.value;
      (** new heap context at an allocation (paper: [Record(heap, ctx)]) *)
  merge :
    heap:Pta_ir.Ir.Heap_id.t ->
    hctx:Ctx.value ->
    invo:Pta_ir.Ir.Invo_id.t ->
    ctx:Ctx.value ->
    Ctx.value;
      (** new callee context at a virtual call
          (paper: [Merge(heap, hctx, invo, ctx)]) *)
  merge_static : invo:Pta_ir.Ir.Invo_id.t -> ctx:Ctx.value -> Ctx.value;
      (** new callee context at a static call
          (paper: [MergeStatic(invo, ctx)]) *)
}
