module Ir = Pta_ir.Ir
open Ctx

type factory = Ir.Program.t -> Strategy.t

(* CA : H -> T, the class containing the allocation site. *)
let class_of_alloc program heap =
  let owner = (Ir.Program.heap_info program heap).Ir.heap_owner in
  (Ir.Program.meth_info program owner).Ir.meth_owner

let empty : value = [||]
let star1 : value = [| Star |]
let star2 : value = [| Star; Star |]
let star3 : value = [| Star; Star; Star |]

let make ~name ~description ~initial_ctx ~record ~merge ~merge_static =
  { Strategy.name; description; initial_ctx; record; merge; merge_static }

(* ------------------------------------------------------------------ *)
(* Standard analyses (Section 2.2)                                     *)
(* ------------------------------------------------------------------ *)

let insens _program =
  make ~name:"insens" ~description:"context-insensitive" ~initial_ctx:empty
    ~record:(fun ~heap:_ ~ctx:_ -> empty)
    ~merge:(fun ~heap:_ ~hctx:_ ~invo:_ ~ctx:_ -> empty)
    ~merge_static:(fun ~invo:_ ~ctx:_ -> empty)

let call1 _program =
  make ~name:"1call" ~description:"1-call-site-sensitive" ~initial_ctx:star1
    ~record:(fun ~heap:_ ~ctx:_ -> empty)
    ~merge:(fun ~heap:_ ~hctx:_ ~invo ~ctx:_ -> [| Invo invo |])
    ~merge_static:(fun ~invo ~ctx:_ -> [| Invo invo |])

let call1_heap _program =
  make ~name:"1call+H"
    ~description:"1-call-site-sensitive with a context-sensitive heap"
    ~initial_ctx:star1
    ~record:(fun ~heap:_ ~ctx -> ctx)
    ~merge:(fun ~heap:_ ~hctx:_ ~invo ~ctx:_ -> [| Invo invo |])
    ~merge_static:(fun ~invo ~ctx:_ -> [| Invo invo |])

let call2_heap _program =
  make ~name:"2call+H"
    ~description:"2-call-site-sensitive with a context-sensitive heap"
    ~initial_ctx:star2
    ~record:(fun ~heap:_ ~ctx -> [| first ctx |])
    ~merge:(fun ~heap:_ ~hctx:_ ~invo ~ctx -> [| Invo invo; first ctx |])
    ~merge_static:(fun ~invo ~ctx -> [| Invo invo; first ctx |])

let obj1 _program =
  make ~name:"1obj" ~description:"1-object-sensitive" ~initial_ctx:star1
    ~record:(fun ~heap:_ ~ctx:_ -> empty)
    ~merge:(fun ~heap ~hctx:_ ~invo:_ ~ctx:_ -> [| Heap heap |])
    ~merge_static:(fun ~invo:_ ~ctx -> ctx)

let obj1_heap _program =
  make ~name:"1obj+H"
    ~description:"1-object-sensitive with a context-sensitive heap (ablation)"
    ~initial_ctx:star1
    ~record:(fun ~heap:_ ~ctx -> [| first ctx |])
    ~merge:(fun ~heap ~hctx:_ ~invo:_ ~ctx:_ -> [| Heap heap |])
    ~merge_static:(fun ~invo:_ ~ctx -> ctx)

let obj2_heap _program =
  make ~name:"2obj+H"
    ~description:"2-object-sensitive with a 1-context-sensitive heap"
    ~initial_ctx:star2
    ~record:(fun ~heap:_ ~ctx -> [| first ctx |])
    ~merge:(fun ~heap ~hctx ~invo:_ ~ctx:_ -> [| Heap heap; first hctx |])
    ~merge_static:(fun ~invo:_ ~ctx -> ctx)

let type2_heap program =
  let ca heap = Type (class_of_alloc program heap) in
  make ~name:"2type+H"
    ~description:"2-type-sensitive with a 1-context-sensitive heap"
    ~initial_ctx:star2
    ~record:(fun ~heap:_ ~ctx -> [| first ctx |])
    ~merge:(fun ~heap ~hctx ~invo:_ ~ctx:_ -> [| ca heap; first hctx |])
    ~merge_static:(fun ~invo:_ ~ctx -> ctx)

(* ------------------------------------------------------------------ *)
(* Uniform hybrids (Section 3.1)                                       *)
(* ------------------------------------------------------------------ *)

let uniform_obj1 _program =
  make ~name:"U-1obj" ~description:"uniform 1-object-sensitive hybrid"
    ~initial_ctx:star2
    ~record:(fun ~heap:_ ~ctx:_ -> empty)
    ~merge:(fun ~heap ~hctx:_ ~invo ~ctx:_ -> [| Heap heap; Invo invo |])
    ~merge_static:(fun ~invo ~ctx -> [| first ctx; Invo invo |])

let uniform_obj2_heap _program =
  make ~name:"U-2obj+H"
    ~description:"uniform 2-object-sensitive hybrid with context-sensitive heap"
    ~initial_ctx:star3
    ~record:(fun ~heap:_ ~ctx -> [| first ctx |])
    ~merge:(fun ~heap ~hctx ~invo ~ctx:_ -> [| Heap heap; first hctx; Invo invo |])
    ~merge_static:(fun ~invo ~ctx -> [| first ctx; second ctx; Invo invo |])

let uniform_type2_heap program =
  let ca heap = Type (class_of_alloc program heap) in
  make ~name:"U-2type+H"
    ~description:"uniform 2-type-sensitive hybrid with context-sensitive heap"
    ~initial_ctx:star3
    ~record:(fun ~heap:_ ~ctx -> [| first ctx |])
    ~merge:(fun ~heap ~hctx ~invo ~ctx:_ -> [| ca heap; first hctx; Invo invo |])
    ~merge_static:(fun ~invo ~ctx -> [| first ctx; second ctx; Invo invo |])

(* ------------------------------------------------------------------ *)
(* Selective hybrids (Section 3.2)                                     *)
(* ------------------------------------------------------------------ *)

let selective_a_obj1 _program =
  make ~name:"SA-1obj"
    ~description:
      "selective 1-object-sensitive hybrid A: one element, allocation site at \
       virtual calls, invocation site at static calls"
    ~initial_ctx:star1
    ~record:(fun ~heap:_ ~ctx:_ -> empty)
    ~merge:(fun ~heap ~hctx:_ ~invo:_ ~ctx:_ -> [| Heap heap |])
    ~merge_static:(fun ~invo ~ctx:_ -> [| Invo invo |])

let selective_b_obj1 _program =
  make ~name:"SB-1obj"
    ~description:
      "selective 1-object-sensitive hybrid B: allocation site always kept, \
       invocation site added at static calls"
    ~initial_ctx:star2
    ~record:(fun ~heap:_ ~ctx:_ -> empty)
    ~merge:(fun ~heap ~hctx:_ ~invo:_ ~ctx:_ -> [| Heap heap; Star |])
    ~merge_static:(fun ~invo ~ctx -> [| first ctx; Invo invo |])

let selective_obj2_heap _program =
  make ~name:"S-2obj+H"
    ~description:
      "selective 2-object-sensitive hybrid with context-sensitive heap: \
       object-sensitive at virtual calls, call-site elements at static calls"
    ~initial_ctx:star3
    ~record:(fun ~heap:_ ~ctx -> [| first ctx |])
    ~merge:(fun ~heap ~hctx ~invo:_ ~ctx:_ -> [| Heap heap; first hctx; Star |])
    ~merge_static:(fun ~invo ~ctx -> [| first ctx; Invo invo; second ctx |])

let selective_type2_heap program =
  let ca heap = Type (class_of_alloc program heap) in
  make ~name:"S-2type+H"
    ~description:
      "selective 2-type-sensitive hybrid with context-sensitive heap"
    ~initial_ctx:star3
    ~record:(fun ~heap:_ ~ctx -> [| first ctx |])
    ~merge:(fun ~heap ~hctx ~invo:_ ~ctx:_ -> [| ca heap; first hctx; Star |])
    ~merge_static:(fun ~invo ~ctx -> [| first ctx; Invo invo; second ctx |])

(* ------------------------------------------------------------------ *)
(* Deeper-context extensions (Section 6, "future work")                *)
(* ------------------------------------------------------------------ *)

let obj3_heap2 _program =
  make ~name:"3obj+2H"
    ~description:"3-object-sensitive with a 2-context-sensitive heap"
    ~initial_ctx:star3
    ~record:(fun ~heap:_ ~ctx -> [| first ctx; second ctx |])
    ~merge:(fun ~heap ~hctx ~invo:_ ~ctx:_ ->
      [| Heap heap; first hctx; second hctx |])
    ~merge_static:(fun ~invo:_ ~ctx -> ctx)

(* ------------------------------------------------------------------ *)
(* Adaptive hybrids (Section 6, future work): constructors that inspect *)
(* the incoming context's *form* and change shape in response — "the    *)
(* context of a statically called method could have a different form    *)
(* for a call made inside another statically called method vs. a call   *)
(* made in a virtual method", and "objects could have different         *)
(* context, via Record, depending on the context form of their          *)
(* allocating method".                                                  *)
(* ------------------------------------------------------------------ *)

let is_invo = function Invo _ -> true | Star | Heap _ | Type _ -> false

(* A-2obj+H: like S-2obj+H at virtual calls; at static calls the context
   keeps a *two-deep call string* when the caller was itself statically
   called, and Record uses the freshest invocation site as heap context
   for objects allocated under static chains. *)
let adaptive_obj2_heap _program =
  make ~name:"A-2obj+H"
    ~description:
      "adaptive 2-object-sensitive hybrid: static-in-static calls keep a        2-deep call string; allocations under static chains get an        invocation-site heap context"
    ~initial_ctx:star3
    ~record:(fun ~heap:_ ~ctx ->
      (* Allocating method reached through a static call: its second
         element is an invocation site — a finer discriminator here than
         the (inherited) receiver element. *)
      if is_invo (second ctx) then [| second ctx |] else [| first ctx |])
    ~merge:(fun ~heap ~hctx ~invo:_ ~ctx:_ -> [| Heap heap; first hctx; Star |])
      (* S-2obj+H's MergeStatic already adapts its shape as the paper
         notes ("for further static calls, the analysis favors call-site
         sensitivity"); the addition here is the adaptive Record above. *)
    ~merge_static:(fun ~invo ~ctx -> [| first ctx; Invo invo; second ctx |])

(* A-2type+H: the same adaptation over type-sensitive contexts. *)
let adaptive_type2_heap program =
  let ca heap = Type (class_of_alloc program heap) in
  make ~name:"A-2type+H"
    ~description:
      "adaptive 2-type-sensitive hybrid: static-in-static calls keep a        2-deep call string; allocations under static chains get an        invocation-site heap context"
    ~initial_ctx:star3
    ~record:(fun ~heap:_ ~ctx ->
      if is_invo (second ctx) then [| second ctx |] else [| first ctx |])
    ~merge:(fun ~heap ~hctx ~invo:_ ~ctx:_ -> [| ca heap; first hctx; Star |])
    ~merge_static:(fun ~invo ~ctx -> [| first ctx; Invo invo; second ctx |])

let adaptive =
  [ ("A-2obj+H", adaptive_obj2_heap); ("A-2type+H", adaptive_type2_heap) ]

(* ------------------------------------------------------------------ *)
(* Ablations: the "decisively less sense" combinations of Section 3,     *)
(* kept to reproduce the paper's claim that they yield bad analyses.     *)
(* ------------------------------------------------------------------ *)

(* Call-site heap context: HC = I.  Objects are distinguished by the
   invocation site in the allocating method's context instead of by an
   allocator object. *)
let ablation_invo_heap _program =
  make ~name:"X-2obj+IH"
    ~description:
      "ablation: 2obj-style analysis with an invocation-site heap context        (the paper: call-site heap contexts rarely pay off)"
    ~initial_ctx:star3
    ~record:(fun ~heap:_ ~ctx -> [| third ctx |])
    ~merge:(fun ~heap ~hctx ~invo ~ctx:_ -> [| Heap heap; first hctx; Invo invo |])
    ~merge_static:(fun ~invo ~ctx -> [| first ctx; second ctx; Invo invo |])

(* Inverted significance order: the receiver's allocator context comes
   before the receiver itself. *)
let ablation_inverted _program =
  make ~name:"X-2obj+Hrev"
    ~description:
      "ablation: 2obj+H with hctx in the most significant context position        (the paper: not reasonable to invert heap vs hctx)"
    ~initial_ctx:star2
    ~record:(fun ~heap:_ ~ctx -> [| first ctx |])
    ~merge:(fun ~heap ~hctx ~invo:_ ~ctx:_ -> [| first hctx; Heap heap |])
    ~merge_static:(fun ~invo:_ ~ctx -> ctx)

(* Free mixing: C = (H u I) x (H u I), preferring invocation sites even
   at virtual calls — skipping the most-significant object-sensitive
   element that Section 3 calls well documented to matter. *)
let ablation_freemix _program =
  make ~name:"X-freemix"
    ~description:
      "ablation: freely mixed call-site/object context that may skip the        receiver object entirely"
    ~initial_ctx:star2
    ~record:(fun ~heap:_ ~ctx -> [| first ctx |])
    ~merge:(fun ~heap ~hctx:_ ~invo ~ctx:_ -> [| Invo invo; Heap heap |])
    ~merge_static:(fun ~invo ~ctx -> [| Invo invo; first ctx |])

let ablations =
  [
    ("X-2obj+IH", ablation_invo_heap);
    ("X-2obj+Hrev", ablation_inverted);
    ("X-freemix", ablation_freemix);
  ]

let table1 =
  [
    ("1call", call1);
    ("1call+H", call1_heap);
    ("1obj", obj1);
    ("U-1obj", uniform_obj1);
    ("SA-1obj", selective_a_obj1);
    ("SB-1obj", selective_b_obj1);
    ("2obj+H", obj2_heap);
    ("U-2obj+H", uniform_obj2_heap);
    ("S-2obj+H", selective_obj2_heap);
    ("2type+H", type2_heap);
    ("U-2type+H", uniform_type2_heap);
    ("S-2type+H", selective_type2_heap);
  ]

let all =
  [ ("insens", insens) ] @ table1
  @ [ ("2call+H", call2_heap); ("1obj+H", obj1_heap); ("3obj+2H", obj3_heap2) ]
  @ adaptive @ ablations

let by_name name = List.assoc_opt name all
