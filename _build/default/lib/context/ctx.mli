(** Context values and their interning.

    A context (or heap context) is a bounded tuple of {!elem}s — the
    paper's [C] and [HC] sets are products/unions over allocation sites
    ([Heap]), invocation sites ([Invo]), class types ([Type]) and the
    distinguished [Star] element.  The paper's [pair]/[triple]
    constructors correspond to 2- and 3-element tuples here; hybrid
    analyses freely mix element kinds within one tuple.

    Tuples are interned per {!store}, so the analysis manipulates dense
    integer {!id}s. *)

type elem =
  | Star
  | Heap of Pta_ir.Ir.Heap_id.t
  | Invo of Pta_ir.Ir.Invo_id.t
  | Type of Pta_ir.Ir.Type_id.t

val elem_equal : elem -> elem -> bool
val elem_hash : elem -> int

type value = elem array

val value_equal : value -> value -> bool
val value_hash : value -> int

(** Interned context identifier (dense, per-store). *)
type id = int

type store

val create_store : unit -> store
val intern : store -> value -> id
val value : store -> id -> value
val size : store -> int

val pp_elem : Pta_ir.Ir.Program.t -> Format.formatter -> elem -> unit
val pp_value : Pta_ir.Ir.Program.t -> Format.formatter -> value -> unit

(** Accessors mirroring the paper's [first]/[second]/[third]; total
    functions returning [Star] past the end of the tuple, so strategies
    stay robust for the [Star]-padded initial contexts. *)

val first : value -> elem
val second : value -> elem
val third : value -> elem
