lib/context/strategy.ml: Ctx Pta_ir
