lib/context/strategy.mli: Ctx Pta_ir
