lib/context/ctx.ml: Array Format Hashtbl Pta_ir
