lib/context/ctx.mli: Format Pta_ir
