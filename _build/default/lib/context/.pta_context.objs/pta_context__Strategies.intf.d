lib/context/strategies.mli: Pta_ir Strategy
