lib/context/strategies.ml: Ctx List Pta_ir Strategy
