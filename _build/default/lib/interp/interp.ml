module Ir = Pta_ir.Ir
module Hierarchy = Pta_ir.Hierarchy
module Rng = Pta_workloads.Rng
open Ir

type value =
  | Null
  | Obj of obj

and obj = {
  tag : Heap_id.t;
  obj_type : Type_id.t;
  fields : (int, value) Hashtbl.t;
}

type trace = {
  var_points : (int * int, unit) Hashtbl.t;
  call_edges : (int * int, unit) Hashtbl.t;
  reached : (int, unit) Hashtbl.t;
  mutable steps : int;
}

(* Outcome of executing a piece of code: fall-through, or an in-flight
   exception unwinding towards a matching handler. *)
type outcome =
  | Normal
  | Raised of obj

exception Out_of_budget

type state = {
  program : Program.t;
  hierarchy : Hierarchy.t;
  rng : Rng.t;
  trace : trace;
  statics : (int, value) Hashtbl.t;  (* static field cells *)
  max_steps : int;
  max_depth : int;
}

let record_var st var value =
  match value with
  | Null -> ()
  | Obj o ->
    Hashtbl.replace st.trace.var_points
      (Var_id.to_int var, Heap_id.to_int o.tag)
      ()

(* A frame maps the method's locals to values; all locals start null. *)
let assign st frame var value =
  Hashtbl.replace frame (Var_id.to_int var) value;
  record_var st var value

let lookup_var frame var =
  Option.value ~default:Null (Hashtbl.find_opt frame (Var_id.to_int var))

let tick st =
  st.trace.steps <- st.trace.steps + 1;
  if st.trace.steps > st.max_steps then raise Out_of_budget

(* [call] returns the callee's return value, or the exception escaping
   it.  Depth exhaustion silently returns null (the run is truncated). *)
let rec call st ~depth meth ~this ~args : (value, obj) result =
  if depth > st.max_depth then Ok Null
  else begin
    let mi = Program.meth_info st.program meth in
    Hashtbl.replace st.trace.reached (Meth_id.to_int meth) ();
    let frame = Hashtbl.create 16 in
    (match (mi.this_var, this) with
    | Some v, Some value -> assign st frame v value
    | Some _, None | None, _ -> ());
    Array.iteri
      (fun i formal ->
        match List.nth_opt args i with
        | Some value -> assign st frame formal value
        | None -> ())
      mi.formals;
    match exec_code st ~depth frame mi.body with
    | Raised exc -> Error exc
    | Normal -> (
      match mi.ret_var with
      | Some v -> Ok (lookup_var frame v)
      | None -> Ok Null)
  end

and exec_code st ~depth frame code : outcome =
  match code with
  | Instr i -> exec_instr st ~depth frame i
  | Seq cs ->
    let rec go = function
      | [] -> Normal
      | c :: rest -> (
        match exec_code st ~depth frame c with
        | Normal -> go rest
        | Raised _ as r -> r)
    in
    go cs
  | Branch (a, b) ->
    if Rng.bool st.rng 0.5 then exec_code st ~depth frame a
    else exec_code st ~depth frame b
  | Loop body ->
    (* Geometric number of iterations, capped. *)
    let rec go n =
      if n < 4 && Rng.bool st.rng 0.6 then
        match exec_code st ~depth frame body with
        | Normal -> go (n + 1)
        | Raised _ as r -> r
      else Normal
    in
    go 0
  | Try (body, handlers) -> (
    match exec_code st ~depth frame body with
    | Normal -> Normal
    | Raised exc ->
      let rec dispatch = function
        | [] -> Raised exc
        | h :: rest ->
          if Hierarchy.subtype st.hierarchy ~sub:exc.obj_type ~sup:h.catch_type
          then begin
            assign st frame h.catch_var (Obj exc);
            exec_code st ~depth frame h.handler_body
          end
          else dispatch rest
      in
      dispatch handlers)

and exec_instr st ~depth frame instr : outcome =
  tick st;
  match instr with
  | Alloc { target; heap } ->
    let hi = Program.heap_info st.program heap in
    assign st frame target
      (Obj { tag = heap; obj_type = hi.heap_type; fields = Hashtbl.create 4 });
    Normal
  | Move { target; source } ->
    assign st frame target (lookup_var frame source);
    Normal
  | Cast { target; source; cast_type } ->
    (match lookup_var frame source with
    | Null -> ()
    | Obj o ->
      (* A failing cast would throw ClassCastException; as with other
         runtime faults, the faulting instruction is skipped. *)
      if Hierarchy.subtype st.hierarchy ~sub:o.obj_type ~sup:cast_type then
        assign st frame target (Obj o));
    Normal
  | Load { target; base; field } ->
    (match lookup_var frame base with
    | Null -> ()
    | Obj o -> (
      match Hashtbl.find_opt o.fields (Field_id.to_int field) with
      | Some v -> assign st frame target v
      | None -> ()));
    Normal
  | Store { base; field; source } ->
    (match lookup_var frame base with
    | Null -> ()
    | Obj o ->
      Hashtbl.replace o.fields (Field_id.to_int field) (lookup_var frame source));
    Normal
  | Throw { source } -> (
    match lookup_var frame source with
    | Null -> Normal  (* throwing null faults; skipped like other faults *)
    | Obj o -> Raised o)
  | Virtual_call { base; signature; invo; args; ret_target } -> (
    match lookup_var frame base with
    | Null -> Normal
    | Obj o -> (
      match Hierarchy.lookup st.hierarchy o.obj_type signature with
      | None -> Normal
      | Some callee ->
        if (Program.meth_info st.program callee).meth_static then Normal
        else begin
          Hashtbl.replace st.trace.call_edges
            (Invo_id.to_int invo, Meth_id.to_int callee)
            ();
          let arg_values = List.map (lookup_var frame) args in
          match
            call st ~depth:(depth + 1) callee ~this:(Some (Obj o))
              ~args:arg_values
          with
          | Error exc -> Raised exc
          | Ok result ->
            (match ret_target with
            | Some v -> assign st frame v result
            | None -> ());
            Normal
        end))
  | Static_call { callee; invo; args; ret_target } -> (
    Hashtbl.replace st.trace.call_edges
      (Invo_id.to_int invo, Meth_id.to_int callee)
      ();
    let arg_values = List.map (lookup_var frame) args in
    match call st ~depth:(depth + 1) callee ~this:None ~args:arg_values with
    | Error exc -> Raised exc
    | Ok result ->
      (match ret_target with
      | Some v -> assign st frame v result
      | None -> ());
      Normal)
  | Static_load { target; field } ->
    (match Hashtbl.find_opt st.statics (Field_id.to_int field) with
    | Some v -> assign st frame target v
    | None -> ());
    Normal
  | Static_store { field; source } ->
    Hashtbl.replace st.statics (Field_id.to_int field) (lookup_var frame source);
    Normal

let run ?(max_steps = 200_000) ?(max_depth = 300) ~seed program =
  let st =
    {
      program;
      hierarchy = Hierarchy.create program;
      rng = Rng.create seed;
      trace =
        {
          var_points = Hashtbl.create 1024;
          call_edges = Hashtbl.create 1024;
          reached = Hashtbl.create 256;
          steps = 0;
        };
      statics = Hashtbl.create 64;
      max_steps;
      max_depth;
    }
  in
  List.iter
    (fun entry ->
      (* An exception escaping main terminates the program normally. *)
      try ignore (call st ~depth:0 entry ~this:None ~args:[]) with
      | Out_of_budget -> ())
    (Program.entries program);
  st.trace

let observed_var_points trace =
  Hashtbl.fold
    (fun (v, h) () acc -> (Var_id.of_int v, Heap_id.of_int h) :: acc)
    trace.var_points []

let observed_call_edges trace =
  Hashtbl.fold
    (fun (i, m) () acc -> (Invo_id.of_int i, Meth_id.of_int m) :: acc)
    trace.call_edges []

let observed_reached trace =
  Hashtbl.fold (fun m () acc -> Meth_id.of_int m :: acc) trace.reached []
