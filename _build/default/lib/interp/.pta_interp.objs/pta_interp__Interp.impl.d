lib/interp/interp.ml: Array Field_id Hashtbl Heap_id Invo_id List Meth_id Option Program Pta_ir Pta_workloads Type_id Var_id
