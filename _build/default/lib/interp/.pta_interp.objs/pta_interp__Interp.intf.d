lib/interp/interp.mli: Hashtbl Pta_ir
