(** Immutable sets of non-negative integers as big-endian Patricia trees
    (Okasaki & Gill).  The solver's points-to sets: persistent, with
    cheap unions of mostly-shared sets and canonical structure (two equal
    sets are structurally equal).

    All elements must be non-negative; operations raise
    [Invalid_argument] otherwise. *)

type t

val empty : t
val is_empty : t -> bool
val singleton : int -> t
val mem : int -> t -> bool
val add : int -> t -> t
val remove : int -> t -> t
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val cardinal : t -> int
val subset : t -> t -> bool
val equal : t -> t -> bool
val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val exists : (int -> bool) -> t -> bool
val for_all : (int -> bool) -> t -> bool
val filter : (int -> bool) -> t -> t
val elements : t -> int list
(** In increasing order. *)

val of_list : int list -> t
val choose_opt : t -> int option
