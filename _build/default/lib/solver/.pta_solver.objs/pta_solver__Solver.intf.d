lib/solver/solver.mli: Intset Pta_context Pta_ir
