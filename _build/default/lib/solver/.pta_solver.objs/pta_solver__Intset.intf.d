lib/solver/intset.mli:
