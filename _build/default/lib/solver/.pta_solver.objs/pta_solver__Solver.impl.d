lib/solver/solver.ml: Array Field_id Hashtbl Heap_id Intset Invo_id List Meth_id Option Program Pta_context Pta_ir Queue Sig_id Type_id Unix Var_id
