lib/solver/intset.ml: List
