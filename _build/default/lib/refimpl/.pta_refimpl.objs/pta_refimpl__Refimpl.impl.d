lib/refimpl/refimpl.ml: Array Field_id Heap_id Invo_id List Meth_id Option Program Pta_context Pta_datalog Pta_ir Sig_id Type_id Var_id
