lib/refimpl/refimpl.mli: Pta_context Pta_ir
