module Vec = Pta_ir.Vec

module Fact_tbl = Hashtbl.Make (struct
  type t = int array

  let equal (a : int array) b =
    Array.length a = Array.length b
    &&
    let rec loop i = i >= Array.length a || (a.(i) = b.(i) && loop (i + 1)) in
    loop 0

  let hash (a : int array) =
    Array.fold_left (fun acc x -> (acc * 31) + x + 1) (Array.length a) a
    land max_int
end)

(* An index maps the projection of a fact onto a set of bound positions
   to the list of matching fact ids. *)
type index = {
  positions : int list;  (* ascending *)
  buckets : int list ref Fact_tbl.t;
}

type t = {
  rel_name : string;
  rel_arity : int;
  facts : int array Vec.t;
  seen : unit Fact_tbl.t;
  mutable indexes : index list;
}

let create ~name ~arity =
  {
    rel_name = name;
    rel_arity = arity;
    facts = Vec.create ();
    seen = Fact_tbl.create 64;
    indexes = [];
  }

let name r = r.rel_name
let arity r = r.rel_arity

let project positions fact = Array.of_list (List.map (fun i -> fact.(i)) positions)

let index_insert idx fact_id fact =
  let key = project idx.positions fact in
  match Fact_tbl.find_opt idx.buckets key with
  | Some ids -> ids := fact_id :: !ids
  | None -> Fact_tbl.add idx.buckets key (ref [ fact_id ])

let add r fact =
  if Array.length fact <> r.rel_arity then
    invalid_arg
      (Printf.sprintf "Relation.add: %s expects arity %d, got %d" r.rel_name
         r.rel_arity (Array.length fact));
  if Fact_tbl.mem r.seen fact then false
  else begin
    Fact_tbl.add r.seen fact ();
    let id = Vec.push r.facts fact in
    List.iter (fun idx -> index_insert idx id fact) r.indexes;
    true
  end

let mem r fact = Fact_tbl.mem r.seen fact
let cardinal r = Vec.length r.facts
let iter f r = Vec.iter f r.facts
let fold f r acc = Vec.fold_left (fun acc fact -> f fact acc) acc r.facts
let nth r i = Vec.get r.facts i
let to_list r = Vec.to_list r.facts

let bound_positions pattern =
  let rec loop i acc =
    if i < 0 then acc
    else loop (i - 1) (if pattern.(i) >= 0 then i :: acc else acc)
  in
  loop (Array.length pattern - 1) []

let find_or_build_index r positions =
  match List.find_opt (fun idx -> idx.positions = positions) r.indexes with
  | Some idx -> idx
  | None ->
    let idx = { positions; buckets = Fact_tbl.create 256 } in
    Vec.iteri (fun id fact -> index_insert idx id fact) r.facts;
    r.indexes <- idx :: r.indexes;
    idx

let select r ~pattern f =
  if Array.length pattern <> r.rel_arity then
    invalid_arg "Relation.select: pattern arity mismatch";
  match bound_positions pattern with
  | [] -> iter f r
  | positions ->
    let idx = find_or_build_index r positions in
    let key = project positions pattern in
    (match Fact_tbl.find_opt idx.buckets key with
    | None -> ()
    | Some ids -> List.iter (fun id -> f (Vec.get r.facts id)) !ids)
