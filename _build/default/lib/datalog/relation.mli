(** Extensional/intensional relations over integer tuples, with
    on-demand hash indexes.

    A relation has a fixed arity; facts are [int array]s of that length.
    Indexes are built lazily per bound-position pattern and maintained
    incrementally, so join evaluation never scans a whole relation when a
    selective binding is available. *)

type t

val create : name:string -> arity:int -> t
val name : t -> string
val arity : t -> int

val add : t -> int array -> bool
(** [add r fact] returns [true] iff the fact was new.  The array is not
    copied; callers must not mutate it afterwards. *)

val mem : t -> int array -> bool
val cardinal : t -> int
val iter : (int array -> unit) -> t -> unit
val fold : (int array -> 'a -> 'a) -> t -> 'a -> 'a

val select : t -> pattern:int array -> (int array -> unit) -> unit
(** [select r ~pattern f] calls [f] on every fact matching [pattern],
    where [-1] marks a wildcard position.  Uses (and builds, on first
    use) an index on the bound positions. *)

val nth : t -> int -> int array
(** Facts are numbered densely in insertion order; used by the engine's
    delta windows. *)

val to_list : t -> int array list
