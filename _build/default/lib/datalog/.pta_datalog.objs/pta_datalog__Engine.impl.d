lib/datalog/engine.ml: Array Hashtbl List Relation
