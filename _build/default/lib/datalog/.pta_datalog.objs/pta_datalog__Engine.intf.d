lib/datalog/engine.mli: Relation
