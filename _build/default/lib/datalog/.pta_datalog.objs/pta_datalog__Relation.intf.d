lib/datalog/relation.mli:
