lib/datalog/relation.ml: Array Hashtbl List Printf Pta_ir
