(** Cast-safety client: a cast [(T) x] in a reachable method {e may fail}
    when the analysis cannot prove every object [x] points to is
    compatible with [T] — the paper's headline precision metric. *)

type verdict =
  | Safe
  | May_fail of Pta_ir.Ir.Heap_id.t list
      (** witnesses: incompatible allocation sites that may reach the
          operand *)

type site = {
  in_meth : Pta_ir.Ir.Meth_id.t;
  cast_type : Pta_ir.Ir.Type_id.t;
  source : Pta_ir.Ir.Var_id.t;
  verdict : verdict;
}

val analyze : Pta_solver.Solver.t -> site list
(** All casts in context-insensitively reachable methods, deterministic
    order. *)

val may_fail_count : site list -> int
