module Ir = Pta_ir.Ir
module Hierarchy = Pta_ir.Hierarchy
module Solver = Pta_solver.Solver
module Intset = Pta_solver.Intset
open Ir

type verdict =
  | Safe
  | May_fail of Heap_id.t list

type site = {
  in_meth : Meth_id.t;
  cast_type : Type_id.t;
  source : Var_id.t;
  verdict : verdict;
}

let analyze solver =
  let program = Solver.program solver in
  let hierarchy = Solver.hierarchy solver in
  let reachable = Solver.reachable_meths solver in
  let sites = ref [] in
  Meth_id.Set.iter
    (fun meth ->
      let mi = Program.meth_info program meth in
      iter_instrs
        (fun instr ->
          match instr with
          | Cast { source; cast_type; _ } ->
            let witnesses =
              Intset.fold
                (fun heap acc ->
                  let heap = Heap_id.of_int heap in
                  let heap_type = (Program.heap_info program heap).heap_type in
                  if Hierarchy.subtype hierarchy ~sub:heap_type ~sup:cast_type
                  then acc
                  else heap :: acc)
                (Solver.ci_var_points_to solver source)
                []
            in
            let verdict =
              match witnesses with [] -> Safe | ws -> May_fail (List.rev ws)
            in
            sites := { in_meth = meth; cast_type; source; verdict } :: !sites
          | Alloc _ | Move _ | Load _ | Store _ | Virtual_call _ | Static_call _
          | Static_load _ | Static_store _ | Throw _ -> ())
        mi.body)
    reachable;
  List.sort
    (fun a b ->
      match Meth_id.compare a.in_meth b.in_meth with
      | 0 -> Var_id.compare a.source b.source
      | c -> c)
    !sites

let may_fail_count sites =
  List.length
    (List.filter (fun s -> match s.verdict with May_fail _ -> true | _ -> false) sites)
