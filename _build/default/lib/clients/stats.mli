(** Introspection over an analysis run: where the context-sensitive
    facts come from.  This is the tooling behind the paper's discussion
    of the context-sensitive var-points-to size as "the foremost internal
    complexity metric" — it shows which methods get many contexts and
    which variables carry fat points-to sets. *)

type meth_contexts = {
  meth : Pta_ir.Ir.Meth_id.t;
  n_contexts : int;
  facts : int;  (** sum of points-to sizes over the method's var nodes *)
}

type fat_var = {
  var : Pta_ir.Ir.Var_id.t;
  ci_size : int;  (** context-insensitive points-to size *)
  cs_facts : int;  (** total facts over all the variable's contexts *)
}

type t = {
  by_method : meth_contexts list;  (** descending by [facts] *)
  fattest : fat_var list;  (** descending by [ci_size] *)
  context_histogram : (int * int) list;
      (** (number of contexts, how many methods have that many) *)
}

val compute : ?top:int -> Pta_solver.Solver.t -> t
val pp : Pta_ir.Ir.Program.t -> Format.formatter -> t -> unit
