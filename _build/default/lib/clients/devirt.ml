module Ir = Pta_ir.Ir
module Solver = Pta_solver.Solver
open Ir

type classification =
  | Unresolved
  | Monomorphic of Meth_id.t
  | Polymorphic of Meth_id.Set.t

type site = {
  invo : Invo_id.t;
  in_meth : Meth_id.t;
  classification : classification;
}

let analyze solver =
  let program = Solver.program solver in
  let reachable = Solver.reachable_meths solver in
  let sites = ref [] in
  Meth_id.Set.iter
    (fun meth ->
      let mi = Program.meth_info program meth in
      iter_instrs
        (fun instr ->
          match instr with
          | Virtual_call { invo; _ } ->
            let targets = Solver.invo_targets solver invo in
            let classification =
              match Meth_id.Set.cardinal targets with
              | 0 -> Unresolved
              | 1 -> Monomorphic (Meth_id.Set.choose targets)
              | _ -> Polymorphic targets
            in
            sites := { invo; in_meth = meth; classification } :: !sites
          | Alloc _ | Move _ | Load _ | Store _ | Cast _ | Static_call _
          | Static_load _ | Static_store _ | Throw _ -> ())
        mi.body)
    reachable;
  List.sort (fun a b -> Invo_id.compare a.invo b.invo) !sites

let poly_count sites =
  List.length
    (List.filter (fun s -> match s.classification with Polymorphic _ -> true | _ -> false) sites)

let mono_count sites =
  List.length
    (List.filter
       (fun s -> match s.classification with Monomorphic _ -> true | _ -> false)
       sites)
