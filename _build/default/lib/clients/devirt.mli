(** Devirtualization client: classify every virtual call site in a
    reachable method by the number of targets the analysis resolves.
    A site with exactly one target can be devirtualized (inlined or
    compiled to a direct call); the paper's "poly v-calls" metric counts
    the sites that cannot. *)

type classification =
  | Unresolved  (** no target: dead or dispatch always fails *)
  | Monomorphic of Pta_ir.Ir.Meth_id.t
  | Polymorphic of Pta_ir.Ir.Meth_id.Set.t  (** two or more targets *)

type site = {
  invo : Pta_ir.Ir.Invo_id.t;
  in_meth : Pta_ir.Ir.Meth_id.t;
  classification : classification;
}

val analyze : Pta_solver.Solver.t -> site list
(** All virtual call sites in context-insensitively reachable methods, in
    deterministic (invocation-id) order. *)

val poly_count : site list -> int
val mono_count : site list -> int
