(** Exception-flow client: which exception objects may escape each
    method, and which may escape the program entirely (reach an entry
    point uncaught) — the information an IDE uses for "undeclared
    thrown exception" warnings. *)

type escape = {
  meth : Pta_ir.Ir.Meth_id.t;
  exceptions : Pta_ir.Ir.Heap_id.t list;
      (** allocation sites of exceptions escaping [meth] in some
          context, deduplicated, in id order *)
}

val escapes : Pta_solver.Solver.t -> escape list
(** Per-method escaping exceptions, methods with none omitted. *)

val uncaught_at_entries : Pta_solver.Solver.t -> Pta_ir.Ir.Heap_id.t list
(** Exception allocation sites that may propagate out of an entry point
    (crash the program). *)
