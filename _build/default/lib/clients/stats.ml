module Ir = Pta_ir.Ir
module Solver = Pta_solver.Solver
module Intset = Pta_solver.Intset
open Ir

type meth_contexts = {
  meth : Meth_id.t;
  n_contexts : int;
  facts : int;
}

type fat_var = {
  var : Var_id.t;
  ci_size : int;
  cs_facts : int;
}

type t = {
  by_method : meth_contexts list;
  fattest : fat_var list;
  context_histogram : (int * int) list;
}

let compute ?(top = 15) solver =
  let program = Solver.program solver in
  (* Per-method context counts and fact volume. *)
  let n_ctxs : int Meth_id.Tbl.t = Meth_id.Tbl.create 256 in
  Solver.iter_reachable solver (fun meth _ ->
      Meth_id.Tbl.replace n_ctxs meth
        (1 + Option.value ~default:0 (Meth_id.Tbl.find_opt n_ctxs meth)));
  let facts : int Meth_id.Tbl.t = Meth_id.Tbl.create 256 in
  let var_facts : int Var_id.Tbl.t = Var_id.Tbl.create 1024 in
  Solver.iter_var_points_to solver (fun var _ hobjs ->
      let n = Intset.cardinal hobjs in
      let owner = (Program.var_info program var).var_owner in
      Meth_id.Tbl.replace facts owner
        (n + Option.value ~default:0 (Meth_id.Tbl.find_opt facts owner));
      Var_id.Tbl.replace var_facts var
        (n + Option.value ~default:0 (Var_id.Tbl.find_opt var_facts var)));
  let by_method =
    Meth_id.Tbl.fold
      (fun meth n_contexts acc ->
        {
          meth;
          n_contexts;
          facts = Option.value ~default:0 (Meth_id.Tbl.find_opt facts meth);
        }
        :: acc)
      n_ctxs []
    |> List.sort (fun a b ->
           match compare b.facts a.facts with
           | 0 -> Meth_id.compare a.meth b.meth
           | c -> c)
    |> List.filteri (fun i _ -> i < top)
  in
  let fattest =
    Var_id.Tbl.fold
      (fun var cs_facts acc ->
        let ci_size = Intset.cardinal (Solver.ci_var_points_to solver var) in
        { var; ci_size; cs_facts } :: acc)
      var_facts []
    |> List.sort (fun a b ->
           match compare b.ci_size a.ci_size with
           | 0 -> Var_id.compare a.var b.var
           | c -> c)
    |> List.filteri (fun i _ -> i < top)
  in
  let histogram = Hashtbl.create 16 in
  Meth_id.Tbl.iter
    (fun _ n ->
      Hashtbl.replace histogram n
        (1 + Option.value ~default:0 (Hashtbl.find_opt histogram n)))
    n_ctxs;
  let context_histogram =
    Hashtbl.fold (fun n count acc -> (n, count) :: acc) histogram []
    |> List.sort compare
  in
  { by_method; fattest; context_histogram }

let pp program ppf t =
  Format.fprintf ppf "@[<v>contexts-per-method histogram (contexts: methods):@,";
  List.iter
    (fun (n, count) -> Format.fprintf ppf "  %6d: %d@," n count)
    t.context_histogram;
  Format.fprintf ppf "@,heaviest methods (cs facts / contexts):@,";
  List.iter
    (fun m ->
      Format.fprintf ppf "  %8d / %-6d %s@," m.facts m.n_contexts
        (Program.meth_qualified_name program m.meth))
    t.by_method;
  Format.fprintf ppf "@,fattest variables (ci points-to size, cs facts):@,";
  List.iter
    (fun v ->
      Format.fprintf ppf "  %6d %8d  %s@," v.ci_size v.cs_facts
        (Program.var_qualified_name program v.var))
    t.fattest;
  Format.fprintf ppf "@]"
