lib/clients/stats.ml: Format Hashtbl List Meth_id Option Program Pta_ir Pta_solver Var_id
