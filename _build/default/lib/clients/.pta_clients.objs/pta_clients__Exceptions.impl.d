lib/clients/exceptions.ml: Heap_id List Meth_id Option Program Pta_ir Pta_solver
