lib/clients/stats.mli: Format Pta_ir Pta_solver
