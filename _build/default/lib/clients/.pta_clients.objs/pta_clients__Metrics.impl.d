lib/clients/metrics.ml: Casts Devirt Exceptions Format List Pta_ir Pta_solver
