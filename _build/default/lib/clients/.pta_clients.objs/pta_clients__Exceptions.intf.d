lib/clients/exceptions.mli: Pta_ir Pta_solver
