lib/clients/casts.ml: Heap_id List Meth_id Program Pta_ir Pta_solver Type_id Var_id
