lib/clients/devirt.mli: Pta_ir Pta_solver
