lib/clients/metrics.mli: Format Pta_solver
