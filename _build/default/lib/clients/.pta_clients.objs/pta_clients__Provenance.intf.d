lib/clients/provenance.mli: Format Pta_ir Pta_solver
