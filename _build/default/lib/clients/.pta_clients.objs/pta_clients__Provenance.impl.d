lib/clients/provenance.ml: Array Format Heap_id List Printf Program Pta_context Pta_ir Pta_solver Queue
