lib/clients/devirt.ml: Invo_id List Meth_id Program Pta_ir Pta_solver
