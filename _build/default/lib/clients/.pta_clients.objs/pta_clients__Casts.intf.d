lib/clients/casts.mli: Pta_ir Pta_solver
