(* Benchmark harness: regenerates the paper's evaluation.

   - table1:  Table 1 — 10 DaCapo-profile benchmarks x 15 analyses
              (the paper's 12 plus cut-shortcut and adaptive columns),
              4 precision metrics + time + context-sensitive
              var-points-to size, grouped as in the paper.
   - figure3: Figure 3 — per-benchmark ASCII scatter of running time (y)
              against may-fail casts (x) over all analyses.
   - summary: the headline aggregate ratios quoted in the paper's
              abstract/intro/Section 4.
   - micro:   Bechamel micro-benchmarks of the solver's building blocks.

   With no argument, runs table1 + figure3 + summary (sharing analysis
   runs).  PTA_BENCH_TIMEOUT (seconds, default 90) is the per-analysis
   cutoff; timeouts print as "-" like the paper's dashes.

   Regression-harness mode: `--baseline FILE --compare` re-runs the
   grid (optionally restricted with `--benchmarks a,b,c`), diffs it
   against the committed snapshot, prints a per-cell delta report, and
   exits non-zero if any cell breaches the noise thresholds
   (`--time-tol` / `--heap-tol`, percent).  `--delta-md FILE` writes
   the same report as a Markdown table.  PTA_BENCH_HANDICAP multiplies
   every recorded time — a test hook for exercising the gate. *)

module Ir = Pta_ir.Ir
module Metrics = Pta_clients.Metrics
module Profile = Pta_workloads.Profile
module Workloads = Pta_workloads.Workloads
module Strategies = Pta_context.Strategies
module Solver = Pta_solver.Solver
module Table = Pta_report.Table
module Scatter = Pta_report.Scatter
module Driver = Pta_driver.Driver
module Json = Pta_obs.Json
module Run_stats = Pta_obs.Run_stats
module Trace = Pta_obs.Trace
module Snapshot = Pta_report.Bench_snapshot
module Comparator = Pta_report.Comparator
module Census = Pta_obs.Census
module Registry = Pta_metrics.Registry

let timeout_s =
  match Sys.getenv_opt "PTA_BENCH_TIMEOUT" with
  | Some s -> float_of_string s
  | None -> 90.

(* Test hook: multiplies every recorded cell time so the regression gate
   can be exercised without actually slowing the solver down. *)
let handicap =
  match Sys.getenv_opt "PTA_BENCH_HANDICAP" with
  | Some s -> float_of_string s
  | None -> 1.

(* The benchmark subset under test; `--benchmarks` narrows it. *)
let selected_profiles = ref Profile.dacapo
let profiles () = !selected_profiles

(* Table-1 column order and the per-group partition used for marking the
   best time (the paper's bold entries; we use a trailing '*'). *)
let analysis_groups =
  [
    [ "1call"; "1call+H" ];
    [ "1obj"; "U-1obj"; "SA-1obj"; "SB-1obj" ];
    [ "2obj+H"; "U-2obj+H"; "S-2obj+H" ];
    [ "2type+H"; "U-2type+H"; "S-2type+H" ];
    [ "CS"; "CS-2obj+H"; "AD-2obj+H" ];
  ]

let analyses = List.concat analysis_groups

(* The analysis subset snapshotted by [current_snapshot] and gated by
   `--compare`; `--analyses` (or the `propbench` command) narrows it.
   Defaults to the Table-1 twelve. *)
let selected_analyses = ref analyses

(* Worklist domain counts measured per cell; `--jobs 1,4` adds parallel
   legs.  Every value beyond 1 re-measures the grid with the parallel
   drain and lands in the snapshot as a (benchmark, analysis, jobs)
   cell of its own, paired with its jobs=1 sibling by the scaling
   check. *)
let selected_jobs = ref [ 1 ]

type outcome =
  | Done of Metrics.t * float * Run_stats.t * Trace.stat list
      (* metrics, best (min-of-3) elapsed seconds, counters and trace profile of
         the first run *)
  | Timed_out of Pta_obs.Budget.abort

let runs : (string * string * int, outcome) Hashtbl.t = Hashtbl.create 256

(* Per-cell solve-time distributions: every timed run of a finished cell
   observed into one exponential-bucket registry histogram (the shared
   [Registry.time_buckets] ladder), serialised into the snapshot and from
   there into bench-history ledger records.  Kept out of [outcome] so the
   many pattern matches over it stay untouched. *)
let cell_hists : (string * string * int, Snapshot.hist) Hashtbl.t =
  Hashtbl.create 256

(* Per-cell reachable-heap census of the instrumented run's solved
   state, taken after the timed re-runs so its [Gc.full_major] cannot
   perturb them.  Snapshot cells carry it as the schema-v4
   [heap_components] block. *)
let cell_census : (string * string * int, Census.component list) Hashtbl.t =
  Hashtbl.create 256

(* Domains the drain actually used per cell ([Solver.domains_used]) —
   on a 1-core host or an OCaml 4.x runtime a jobs=4 request degrades,
   and the snapshot must record what really ran. *)
let cell_domains : (string * string * int, int) Hashtbl.t = Hashtbl.create 256

let record_cell_hist key times =
  let reg = Registry.create () in
  let h =
    Registry.histogram reg ~buckets:Registry.time_buckets
      ~help:"Per-run wall time of one benchmark cell"
      "pta_bench_cell_time_seconds"
  in
  List.iter (fun t -> if Float.is_finite t then Registry.observe h t) times;
  Hashtbl.replace cell_hists key
    (Snapshot.hist_of_buckets ~sum:(Registry.histogram_sum h)
       (Registry.histogram_buckets h))

let run_one ?(jobs = 1) profile analysis_name =
  let key = (profile.Profile.name, analysis_name, jobs) in
  match Hashtbl.find_opt runs key with
  | Some o -> o
  | None ->
    let program = Workloads.program profile in
    (* Minimum of three timed runs.  The analysis is deterministic, so
       scheduler/VM interference can only ADD time — the minimum is the
       least-noisy estimate of the true cost, and it is what the
       regression gate compares against a committed baseline.  (Metrics
       and counters are collected once, on the first run — the
       recorder's non-time fields are identical across runs.) *)
    (* The first (instrumented) run also carries a small trace sink —
       aggregates are exact regardless of the tiny ring, and they feed
       the per-cell hot-spot summary in table1_stats.json.  Timed runs
       stay untraced. *)
    let run_once ~collect ?trace () =
      Driver.run
        ~config:(Solver.Config.make ~timeout_s ~jobs ?trace ())
        ~collect_stats:collect program ~analysis:analysis_name
    in
    (* Compact before the instrumented run: the peak-heap figure must
       reflect this cell's live set, not heap grown (and never returned)
       by whichever cells happened to run earlier in the process —
       without this, per-cell memory numbers depend on grid order and
       drift 30%+ between a `table1` process and a `--compare` one. *)
    Gc.compact ();
    let trace = Trace.create ~limit:4096 () in
    let outcome =
      match run_once ~collect:true ~trace () with
      | Error (Driver.Timed_out { abort; _ }) -> Timed_out abort
      | Error e -> Driver.report_and_exit e
      | Ok r1 ->
        let time = function
          | Ok (r : Driver.run) -> r.Driver.wall_time_s
          | Error _ -> infinity
        in
        let t2 = time (run_once ~collect:false ()) in
        let t3 = time (run_once ~collect:false ()) in
        Hashtbl.replace cell_census key
          (Solver.census r1.Driver.solver).Census.components;
        Hashtbl.replace cell_domains key (Solver.domains_used r1.Driver.solver);
        let best =
          min r1.Driver.wall_time_s (min t2 t3) *. handicap
        in
        record_cell_hist key
          (List.map
             (fun t -> t *. handicap)
             [ r1.Driver.wall_time_s; t2; t3 ]);
        Done
          ( Metrics.compute r1.Driver.solver,
            best,
            Option.get r1.Driver.stats,
            Trace.profile trace )
    in
    Hashtbl.replace runs key outcome;
    let shown =
      if jobs = 1 then analysis_name
      else Printf.sprintf "%s@j%d" analysis_name jobs
    in
    (match outcome with
    | Done (_, s, _, _) ->
      Printf.eprintf "  [bench] %-10s %-10s %6.2fs\n%!" profile.Profile.name
        shown s
    | Timed_out abort ->
      Printf.eprintf
        "  [bench] %-10s %-10s TIMEOUT (>%.0fs; %.1fs elapsed, %d iterations, \
         %d nodes)\n\
         %!"
        profile.Profile.name shown timeout_s
        abort.Pta_obs.Budget.elapsed_s abort.Pta_obs.Budget.iterations
        abort.Pta_obs.Budget.nodes);
    outcome

(* A per-cell stats record for table1_stats.json: the Run_stats bundle of
   finished cells, the abort payload of timed-out ones. *)
let trace_summary_json stats =
  Json.List
    (List.filter_map
       (fun (s : Trace.stat) ->
         (* Per-edge-kind solver spans only; phase spans just restate the
            run's overall timings. *)
         if String.equal s.Trace.stat_cat "solver" then
           Some
             (Json.Obj
                [
                  ("name", Json.String s.Trace.stat_name);
                  ("events", Json.Int s.Trace.events);
                  ("delta", Json.Int s.Trace.delta);
                  ("seconds", Json.Float s.Trace.seconds);
                ])
         else None)
       stats)

let cell_stats_json profile_name analysis_name = function
  | Done (_, _, stats, tprofile) -> (
    match Run_stats.to_json stats with
    | Json.Obj fields ->
      Json.Obj
        (("benchmark", Json.String profile_name)
        :: (fields @ [ ("trace", trace_summary_json tprofile) ]))
    | _ -> assert false)
  | Timed_out abort ->
    Json.Obj
      [
        ("benchmark", Json.String profile_name);
        ("analysis", Json.String analysis_name);
        ("timed_out", Json.Bool true);
        ("elapsed_s", Json.Float abort.Pta_obs.Budget.elapsed_s);
        ("iterations", Json.Int abort.Pta_obs.Budget.iterations);
        ("nodes", Json.Int abort.Pta_obs.Budget.nodes);
      ]

(* The schema-v2 snapshot of the current grid: per-cell best (min-of-3) time,
   iterations, supergraph nodes and the instrumented run's GC profile —
   timeout cells carry the solver's abort payload (elapsed, iterations,
   nodes at abort) instead of just a dash. *)
let current_snapshot () =
  let cells =
    List.concat_map
      (fun profile ->
        List.concat_map
          (fun a ->
            List.map
              (fun jobs ->
                let key = (profile.Profile.name, a, jobs) in
                let outcome = run_one ~jobs profile a in
                let domains =
                  Option.value ~default:1 (Hashtbl.find_opt cell_domains key)
                in
                match outcome with
                | Done (_, s, stats, _) ->
                  {
                    Snapshot.benchmark = profile.Profile.name;
                    analysis = a;
                    timed_out = false;
                    time_s = s;
                    iterations = stats.Run_stats.iterations;
                    nodes = Some stats.Run_stats.n_nodes;
                    memory = stats.Run_stats.memory;
                    time_hist = Hashtbl.find_opt cell_hists key;
                    heap_components =
                      Option.value ~default:[]
                        (Hashtbl.find_opt cell_census key);
                    jobs;
                    domains;
                  }
                | Timed_out abort ->
                  {
                    Snapshot.benchmark = profile.Profile.name;
                    analysis = a;
                    timed_out = true;
                    time_s = abort.Pta_obs.Budget.elapsed_s;
                    iterations = abort.Pta_obs.Budget.iterations;
                    nodes = Some abort.Pta_obs.Budget.nodes;
                    memory = None;
                    time_hist = None;
                    heap_components = [];
                    jobs;
                    domains;
                  })
              !selected_jobs)
          !selected_analyses)
      (profiles ())
  in
  {
    Snapshot.schema_version = Snapshot.current_schema_version;
    timeout_s;
    host_cores = Some (Pta_solver.Par.recommended_domains ());
    pointsto = Some (Pta_version.Version.to_json ());
    cells;
  }

let write_snapshot_file path snapshot =
  let oc = open_out path in
  output_string oc (Json.to_string (Snapshot.to_json snapshot));
  output_char oc '\n';
  close_out oc

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)
(* ------------------------------------------------------------------ *)

let fmt_float x = Printf.sprintf "%.2f" x
let fmt_int = string_of_int
let fmt_k n = Printf.sprintf "%.1fK" (float_of_int n /. 1000.)

let table1_block profile =
  let outcomes = List.map (fun a -> (a, run_one profile a)) analyses in
  let program = Workloads.program profile in
  let some_metrics =
    List.find_map (function _, Done (m, _, _, _) -> Some m | _ -> None) outcomes
  in
  let headline =
    match some_metrics with
    | Some m ->
      Printf.sprintf
        "%s  (%d methods, ~%d reachable; v-calls of ~%d, casts of ~%d)"
        profile.Profile.name
        (Ir.Program.n_meths program)
        m.Metrics.reachable_methods m.Metrics.total_vcalls m.Metrics.total_casts
    | None -> profile.Profile.name
  in
  let t = Table.create ~headers:("metric" :: analyses) in
  let metric_row label f =
    Table.add_row t
      (label
      :: List.map
           (fun (_, o) -> match o with Done (m, _, _, _) -> f m | Timed_out _ -> "-")
           outcomes)
  in
  metric_row "avg objs per var" (fun m -> fmt_float m.Metrics.avg_objs_per_var);
  metric_row "call-graph edges" (fun m -> fmt_int m.Metrics.call_graph_edges);
  metric_row "poly v-calls" (fun m -> fmt_int m.Metrics.poly_vcalls);
  metric_row "may-fail casts" (fun m -> fmt_int m.Metrics.may_fail_casts);
  (* The taint client's precision column: flows beyond the generator's
     ground truth are spurious — hybrids keep the tainted and clean
     pass-through call sites apart where their unhybrid counterparts
     conflate them. *)
  let taint_truth = Pta_workloads.Gen.taint_ground_truth profile in
  metric_row "spurious taint flows" (fun m ->
      fmt_int (m.Metrics.taint_flows - taint_truth));
  Table.add_separator t;
  (* Best (lowest) time within each analysis group is starred, like the
     paper's bold entries. *)
  let best_in_group =
    List.concat_map
      (fun group ->
        let times =
          List.filter_map
            (fun a ->
              match run_one profile a with
              | Done (_, s, _, _) -> Some (a, s)
              | Timed_out _ -> None)
            group
        in
        match times with
        | [] -> []
        | (a0, s0) :: rest ->
          [
            fst
              (List.fold_left
                 (fun (ba, bs) (a, s) -> if s < bs then (a, s) else (ba, bs))
                 (a0, s0) rest);
          ])
      analysis_groups
  in
  Table.add_row t
    ("elapsed time (s)"
    :: List.map
         (fun (a, o) ->
           match o with
           | Done (_, s, _, _) ->
             Printf.sprintf "%.2f%s" s
               (if List.mem a best_in_group then "*" else "")
           | Timed_out _ -> "-")
         outcomes);
  metric_row "sensitive var-points-to" (fun m -> fmt_k m.Metrics.sensitive_vpt);
  (headline, Table.render t)

let cmd_table1 () =
  print_endline
    "=== Table 1: precision and performance, all benchmarks x all analyses ===";
  Printf.printf
    "(per-analysis timeout: %.0fs; '-' = timeout, '*' = best time in its \
     analysis group)\n\n"
    timeout_s;
  List.iter
    (fun profile ->
      let headline, rendered = table1_block profile in
      print_endline headline;
      print_endline rendered)
    (profiles ());
  (* Also emit machine-readable CSV next to the textual table. *)
  let rows = ref [] in
  List.iter
    (fun profile ->
      List.iter
        (fun a ->
          match run_one profile a with
          | Done (m, s, _, _) ->
            rows :=
              [
                profile.Profile.name;
                a;
                fmt_float m.Metrics.avg_objs_per_var;
                fmt_int m.Metrics.call_graph_edges;
                fmt_int m.Metrics.poly_vcalls;
                fmt_int m.Metrics.may_fail_casts;
                fmt_int m.Metrics.total_casts;
                fmt_int
                  (m.Metrics.taint_flows
                  - Pta_workloads.Gen.taint_ground_truth profile);
                Printf.sprintf "%.3f" s;
                fmt_int m.Metrics.sensitive_vpt;
                fmt_int m.Metrics.n_ctxs;
              ]
              :: !rows
          | Timed_out _ ->
            rows :=
              [
                profile.Profile.name; a; "-"; "-"; "-"; "-"; "-"; "-"; "-";
                "-"; "-";
              ]
              :: !rows)
        analyses)
    (profiles ());
  let csv =
    Table.csv
      ~headers:
        [
          "benchmark";
          "analysis";
          "avg_objs_per_var";
          "call_graph_edges";
          "poly_vcalls";
          "may_fail_casts";
          "total_casts";
          "spurious_taint_flows";
          "time_s";
          "sensitive_vpt";
          "contexts";
        ]
      (List.rev !rows)
  in
  let oc = open_out "table1.csv" in
  output_string oc csv;
  close_out oc;
  print_endline "[table1.csv written]";
  (* Per-cell counter bundles (or abort payloads) for the same grid. *)
  let stats =
    List.concat_map
      (fun profile ->
        List.map
          (fun a ->
            cell_stats_json profile.Profile.name a (run_one profile a))
          analyses)
      (profiles ())
  in
  let oc = open_out "table1_stats.json" in
  output_string oc (Json.to_string (Json.List stats));
  output_char oc '\n';
  close_out oc;
  print_endline "[table1_stats.json written]";
  (* The committed perf snapshot: just enough per cell to diff run-time,
     iteration and memory regressions across revisions (schema v2,
     documented in EXPERIMENTS.md). *)
  write_snapshot_file "BENCH_table1.json" (current_snapshot ());
  print_endline "[BENCH_table1.json written]\n"

(* ------------------------------------------------------------------ *)
(* Propagation micro-benchmark                                         *)
(* ------------------------------------------------------------------ *)

(* The `cyclic` stress profile — deep copy chains, local copy cycles and
   static mutual-recursion rings — isolates the solver's propagation
   core (online cycle elimination + topological worklist ordering) from
   context-machinery cost.  Snapshotted to BENCH_prop.json so the CI
   perf gate catches regressions in exactly that code path, which the
   DaCapo-profile grid exercises only weakly. *)
let prop_analyses = [ "insens"; "1call"; "1obj"; "S-2obj+H" ]

let select_prop_grid () =
  selected_profiles := [ Option.get (Profile.by_name "cyclic") ];
  selected_analyses := prop_analyses

let print_scaling_section snapshot =
  match Snapshot.scaling_points snapshot with
  | [] -> ()
  | points ->
    let t =
      Table.create
        ~headers:
          [ "benchmark"; "analysis"; "jobs"; "domains"; "seq (s)"; "par (s)";
            "speedup" ]
    in
    List.iter
      (fun (p : Snapshot.scaling_point) ->
        Table.add_row t
          [
            p.Snapshot.s_benchmark;
            p.Snapshot.s_analysis;
            string_of_int p.Snapshot.s_jobs;
            string_of_int p.Snapshot.s_domains;
            Printf.sprintf "%.2f" p.Snapshot.s_seq_time_s;
            Printf.sprintf "%.2f" p.Snapshot.s_time_s;
            Printf.sprintf "%.2fx" p.Snapshot.s_speedup;
          ])
      points;
    print_endline "--- parallel scaling (vs the jobs=1 sibling cells) ---";
    print_string (Table.render t);
    print_newline ()

let cmd_propbench () =
  select_prop_grid ();
  print_endline "=== Propagation micro-benchmark (cyclic profile) ===\n";
  let t =
    Table.create ~headers:[ "analysis"; "jobs"; "time (s)"; "iterations"; "nodes" ]
  in
  List.iter
    (fun profile ->
      List.iter
        (fun a ->
          List.iter
            (fun jobs ->
              match run_one ~jobs profile a with
              | Done (_, s, stats, _) ->
                Table.add_row t
                  [
                    a;
                    string_of_int jobs;
                    Printf.sprintf "%.2f" s;
                    fmt_int stats.Run_stats.iterations;
                    fmt_int stats.Run_stats.n_nodes;
                  ]
              | Timed_out _ ->
                Table.add_row t [ a; string_of_int jobs; "-"; "-"; "-" ])
            !selected_jobs)
        !selected_analyses)
    (profiles ());
  print_string (Table.render t);
  print_newline ();
  let snapshot = current_snapshot () in
  print_scaling_section snapshot;
  write_snapshot_file "BENCH_prop.json" snapshot;
  print_endline "[BENCH_prop.json written]\n"

(* ------------------------------------------------------------------ *)
(* Figure 3                                                            *)
(* ------------------------------------------------------------------ *)

let figure3_keys =
  [
    ("1call", 'c');
    ("1call+H", 'C');
    ("1obj", 'o');
    ("U-1obj", 'O');
    ("SA-1obj", 'a');
    ("SB-1obj", 'b');
    ("2obj+H", '2');
    ("U-2obj+H", 'U');
    ("S-2obj+H", 'S');
    ("2type+H", 't');
    ("U-2type+H", 'Y');
    ("S-2type+H", 's');
    ("CS", 'x');
    ("CS-2obj+H", 'X');
    ("AD-2obj+H", 'd');
  ]

let cmd_figure3 () =
  print_endline
    "=== Figure 3: performance (time, y) vs precision (may-fail casts, x) ===";
  print_endline "(lower is better on both axes; timeouts omitted)\n";
  List.iter
    (fun profile ->
      let points =
        List.filter_map
          (fun (a, key) ->
            match run_one profile a with
            | Done (m, s, _, _) ->
              Some
                {
                  Scatter.key;
                  label = a;
                  x = float_of_int m.Metrics.may_fail_casts;
                  y = s;
                }
            | Timed_out _ -> None)
          figure3_keys
      in
      print_endline
        (Scatter.render
           ~title:(Printf.sprintf "--- %s ---" profile.Profile.name)
           ~x_label:"may-fail casts" ~y_label:"time (s)" points))
    (profiles ())

(* ------------------------------------------------------------------ *)
(* Summary: the paper's headline ratios                                *)
(* ------------------------------------------------------------------ *)

let geomean = function
  | [] -> nan
  | xs ->
    exp
      (List.fold_left (fun acc x -> acc +. log x) 0. xs
      /. float_of_int (List.length xs))

(* Per-benchmark ratios of two analyses' outcomes, over benchmarks where
   both finished. *)
let ratio_over_benchmarks f num den =
  List.filter_map
    (fun profile ->
      match (run_one profile num, run_one profile den) with
      | Done (m1, s1, _, _), Done (m2, s2, _, _) -> (
        match f (m1, s1) (m2, s2) with
        | r when r > 0. && Float.is_finite r -> Some r
        | _ -> None)
      | _ -> None)
    (profiles ())

let time_ratio num den =
  geomean (ratio_over_benchmarks (fun (_, s1) (_, s2) -> s1 /. s2) num den)

let svpt_ratio num den =
  geomean
    (ratio_over_benchmarks
       (fun (m1, _) (m2, _) ->
         float_of_int m1.Metrics.sensitive_vpt
         /. float_of_int m2.Metrics.sensitive_vpt)
       num den)

let casts_delta better worse =
  geomean
    (ratio_over_benchmarks
       (fun (m1, _) (m2, _) ->
         float_of_int m2.Metrics.may_fail_casts
         /. float_of_int (max 1 m1.Metrics.may_fail_casts))
       better worse)

let cmd_summary () =
  print_endline "=== Summary: headline ratios (geometric means over benchmarks) ===\n";
  let line fmt = Printf.printf (fmt ^^ "\n") in
  line "S-2obj+H vs 2obj+H:";
  line "  speedup (time)        : %.2fx   (paper: 1.53x average speedup)"
    (time_ratio "2obj+H" "S-2obj+H");
  line "  sensitive-vpt ratio   : %.2fx smaller" (svpt_ratio "2obj+H" "S-2obj+H");
  line "  may-fail-casts margin : %.2fx fewer  (paper: more precise)"
    (casts_delta "S-2obj+H" "2obj+H");
  line "";
  line "SB-1obj vs 1obj:";
  line "  speedup (time)        : %.2fx   (paper: ~1.12x with higher precision)"
    (time_ratio "1obj" "SB-1obj");
  line "  may-fail-casts margin : %.2fx fewer" (casts_delta "SB-1obj" "1obj");
  line "";
  line "SA-1obj vs 1obj:";
  line
    "  speedup (time)        : %.2fx   (paper: consistently faster, similar \
     precision)"
    (time_ratio "1obj" "SA-1obj");
  line "";
  line "Uniform hybrids (the cost of keeping both contexts everywhere):";
  line
    "  U-1obj    slowdown vs 1obj    : %.2fx   (paper: ~3.9x avg for the naive \
     hybrid)"
    (time_ratio "U-1obj" "1obj");
  line "  U-2obj+H  slowdown vs S-2obj+H: %.2fx   (paper: typically well over 3x)"
    (time_ratio "U-2obj+H" "S-2obj+H");
  line
    "  U-2type+H slowdown vs 2type+H : %.2fx   (paper: often under 2x; the \
     reasonable uniform)"
    (time_ratio "U-2type+H" "2type+H");
  line "";
  line "Call-site sensitivity (reference points):";
  line "  1call+H slowdown vs 1call     : %.2fx   (paper: large cost, little gain)"
    (time_ratio "1call+H" "1call");
  line "  1call+H casts margin vs 1call : %.2fx fewer" (casts_delta "1call+H" "1call");
  line "";
  line "Precision ordering (total may-fail casts across finished benchmarks):";
  List.iter
    (fun a ->
      let total =
        List.fold_left
          (fun acc profile ->
            match run_one profile a with
            | Done (m, _, _, _) -> acc + m.Metrics.may_fail_casts
            | Timed_out _ -> acc)
          0 (profiles ())
      in
      line "  %-10s %6d" a total)
    analyses

(* ------------------------------------------------------------------ *)
(* Ablation study: the bad context combinations of Section 3            *)
(* ------------------------------------------------------------------ *)

let cmd_ablation () =
  print_endline "=== Ablation: the context combinations the paper dismisses ===";
  print_endline
    "(X-2obj+IH: call-site heap context; X-2obj+Hrev: inverted heap/hctx
    \ significance; X-freemix: free mixing that can drop the receiver;
    \ 2obj+H/fb: field-based instead of field-sensitive heap)
";
  let subjects = [ "2obj+H"; "S-2obj+H"; "X-2obj+IH"; "X-2obj+Hrev"; "X-freemix" ] in
  List.iter
    (fun bench_name ->
      let profile = Option.get (Profile.by_name bench_name) in
      let t =
        Table.create
          ~headers:
            [ "analysis"; "avg objs"; "cg edges"; "may-fail casts"; "time (s)";
              "sensitive vpt" ]
      in
      List.iter
        (fun a ->
          match run_one profile a with
          | Done (m, secs, _, _) ->
            Table.add_row t
              [
                a;
                fmt_float m.Metrics.avg_objs_per_var;
                fmt_int m.Metrics.call_graph_edges;
                fmt_int m.Metrics.may_fail_casts;
                Printf.sprintf "%.2f" secs;
                fmt_int m.Metrics.sensitive_vpt;
              ]
          | Timed_out _ -> Table.add_row t [ a; "-"; "-"; "-"; "-"; "-" ])
        subjects;
      (* Field-based heap abstraction as a further ablation row. *)
      (let program = Workloads.program profile in
       let factory = Option.get (Strategies.by_name "2obj+H") in
       match
         let t0 = Unix.gettimeofday () in
         let solver =
           Solver.solve
             ~config:(Solver.Config.make ~timeout_s ~field_based:true ())
             program (factory program)
         in
         (Unix.gettimeofday () -. t0, Metrics.compute solver)
       with
       | secs, m ->
         Table.add_row t
           [
             "2obj+H/fb";
             fmt_float m.Metrics.avg_objs_per_var;
             fmt_int m.Metrics.call_graph_edges;
             fmt_int m.Metrics.may_fail_casts;
             Printf.sprintf "%.2f" secs;
             fmt_int m.Metrics.sensitive_vpt;
           ]
       | exception Solver.Timeout _ ->
         Table.add_row t [ "2obj+H/fb"; "-"; "-"; "-"; "-"; "-" ]);
      Printf.printf "--- %s ---\n%s\n" bench_name (Table.render t))
    [ "antlr"; "luindex"; "pmd" ]

(* ------------------------------------------------------------------ *)
(* Future work (paper Section 6): adaptive context constructors         *)
(* ------------------------------------------------------------------ *)

let cmd_futurework () =
  print_endline "=== Future work: adaptive constructors (paper Section 6) ===";
  print_endline
    "(A-*: MergeStatic/Record inspect the incoming context's form;\n\
    \ AD-*: per-callee depth dispatch on a hotness oracle;\n\
    \ CS-*: cut-shortcut — trivial calls threaded through the caller)\n";
  let subjects =
    [ "2obj+H"; "S-2obj+H"; "A-2obj+H"; "AD-2obj+H"; "CS-2obj+H"; "2type+H";
      "S-2type+H"; "A-2type+H" ]
  in
  List.iter
    (fun bench_name ->
      let profile = Option.get (Profile.by_name bench_name) in
      let t =
        Table.create
          ~headers:
            [ "analysis"; "avg objs"; "cg edges"; "may-fail casts"; "time (s)";
              "sensitive vpt" ]
      in
      List.iter
        (fun a ->
          match run_one profile a with
          | Done (m, secs, _, _) ->
            Table.add_row t
              [
                a;
                fmt_float m.Metrics.avg_objs_per_var;
                fmt_int m.Metrics.call_graph_edges;
                fmt_int m.Metrics.may_fail_casts;
                Printf.sprintf "%.2f" secs;
                fmt_int m.Metrics.sensitive_vpt;
              ]
          | Timed_out _ -> Table.add_row t [ a; "-"; "-"; "-"; "-"; "-" ])
        subjects;
      Printf.printf "--- %s ---\n%s\n" bench_name (Table.render t))
    [ "antlr"; "jython"; "lusearch" ]

(* ------------------------------------------------------------------ *)
(* Scaling study (extension): how cost grows with program size          *)
(* ------------------------------------------------------------------ *)

let cmd_scaling () =
  print_endline "=== Scaling: analysis cost vs program size (luindex profile) ===\n";
  let base = Option.get (Profile.by_name "luindex") in
  let t =
    Table.create
      ~headers:
        [ "scale"; "methods"; "1obj time"; "1obj svpt"; "2obj+H time";
          "2obj+H svpt"; "S-2obj+H time"; "S-2obj+H svpt" ]
  in
  List.iter
    (fun factor ->
      let profile =
        { (Profile.scale factor base) with Profile.name = Printf.sprintf "luindex-x%.1f" factor }
      in
      let program = Workloads.program profile in
      let cell name =
        let factory = Option.get (Strategies.by_name name) in
        match
          let t0 = Unix.gettimeofday () in
          let solver =
            Solver.solve
              ~config:(Solver.Config.make ~timeout_s ())
              program (factory program)
          in
          (Unix.gettimeofday () -. t0, Metrics.compute solver)
        with
        | secs, m ->
          (Printf.sprintf "%.2f" secs, fmt_int m.Metrics.sensitive_vpt)
        | exception Solver.Timeout _ -> ("-", "-")
      in
      let t1, s1 = cell "1obj" in
      let t2, s2 = cell "2obj+H" in
      let t3, s3 = cell "S-2obj+H" in
      Table.add_row t
        [
          Printf.sprintf "%.1fx" factor;
          string_of_int (Ir.Program.n_meths program);
          t1; s1; t2; s2; t3; s3;
        ])
    [ 0.5; 1.0; 1.5; 2.0 ];
  print_string (Table.render t);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks (Bechamel)                                         *)
(* ------------------------------------------------------------------ *)

let cmd_micro () =
  let open Bechamel in
  let open Toolkit in
  let module Intset = Pta_solver.Intset in
  let random_set seed n =
    let rng = Pta_workloads.Rng.create seed in
    let rec go acc k =
      if k = 0 then acc
      else go (Intset.add (Pta_workloads.Rng.int rng 100_000) acc) (k - 1)
    in
    go Intset.empty n
  in
  let s1 = random_set 1L 10_000 and s2 = random_set 2L 10_000 in
  let s3 = random_set 4L 10_000 in
  let tiny = Option.get (Profile.by_name "tiny") in
  let tiny_program = Workloads.program tiny in
  let mjdk_src = Pta_mjdk.Mjdk.source in
  let tests =
    Test.make_grouped ~name:"hybridpta"
      [
        Test.make ~name:"intset-union-10k"
          (Staged.stage (fun () -> ignore (Intset.union s1 s2)));
        Test.make ~name:"intset-add-1k"
          (Staged.stage (fun () -> ignore (random_set 3L 1_000)));
        (* The solver's delta computation: one fused traversal vs the
           two diffs it replaced. *)
        Test.make ~name:"intset-diff2-10k"
          (Staged.stage (fun () -> ignore (Intset.diff2 s1 s2 s3)));
        Test.make ~name:"parse-mjdk"
          (Staged.stage (fun () ->
               ignore (Pta_frontend.Frontend.parse ~file:"<mjdk>" mjdk_src)));
        (* The default config's observer is null — this measures the
           solver with instrumentation compiled in but switched off. *)
        Test.make ~name:"solver-1obj-tiny"
          (Staged.stage (fun () ->
               ignore (Solver.solve tiny_program (Strategies.get "1obj" tiny_program))));
        (* Same run with a live recorder, to expose the observer tax. *)
        Test.make ~name:"solver-1obj-tiny-recorded"
          (Staged.stage (fun () ->
               let recorder = Pta_obs.Recorder.create () in
               let config =
                 Solver.Config.make
                   ~observer:(Pta_obs.Recorder.observer recorder)
                   ()
               in
               ignore
                 (Solver.solve ~config tiny_program
                    (Strategies.get "1obj" tiny_program))));
        (* Same run with a live trace sink, to expose the tracer tax
           (compare against solver-1obj-tiny: the untraced run must not
           be measurably slower than before the tracer existed). *)
        Test.make ~name:"solver-1obj-tiny-traced"
          (Staged.stage (fun () ->
               let trace = Trace.create ~limit:4096 () in
               let config = Solver.Config.make ~trace () in
               ignore
                 (Solver.solve ~config tiny_program
                    (Strategies.get "1obj" tiny_program))));
        Test.make ~name:"solver-S-2obj+H-tiny"
          (Staged.stage (fun () ->
               ignore
                 (Solver.solve tiny_program
                    (Strategies.get "S-2obj+H" tiny_program))));
        Test.make ~name:"solver-U-2obj+H-tiny"
          (Staged.stage (fun () ->
               ignore
                 (Solver.solve tiny_program
                    (Strategies.get "U-2obj+H" tiny_program))));
      ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) ~stabilize:true () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols (List.hd instances) raw in
  print_endline "=== Micro-benchmarks (Bechamel, monotonic clock) ===\n";
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] -> Printf.printf "  %-32s %12.1f ns/run\n" name est
      | Some _ | None -> Printf.printf "  %-32s (no estimate)\n" name)
    results

(* ------------------------------------------------------------------ *)
(* Regression gate: --baseline FILE --compare                          *)
(* ------------------------------------------------------------------ *)

let cmd_compare ~baseline_file ~time_tol ~heap_tol ~heap_component_tol
    ~min_scaling ~delta_md ~snapshot_out () =
  (* Fail early on an unreadable/unparseable baseline, but do NOT
     retain the parsed document across the measured grid: the cells'
     GC profile is a deterministic function of the process's allocation
     history, and holding a parsed JSON tree live while they run shifts
     their heap figures measurably relative to the `table1` process
     that blessed the baseline.  Parse, drop, measure, re-parse. *)
  (match Comparator.load_file baseline_file with
  | Ok (_ : Snapshot.t) -> ()
  | Error e ->
    Printf.eprintf "%s\n" e;
    exit 2);
  let current = current_snapshot () in
  Option.iter
    (fun path ->
      write_snapshot_file path current;
      Printf.printf "[%s written]\n%!" path)
    snapshot_out;
  let baseline =
    match Comparator.load_file baseline_file with
    | Ok b -> b
    | Error e ->
      Printf.eprintf "%s\n" e;
      exit 2
  in
  (* Gate only over the selected benchmark x analysis subset. *)
  let subset =
    Comparator.subset_of
      ~benchmarks:(Some (List.map (fun p -> p.Profile.name) (profiles ())))
      ~analyses:(Some !selected_analyses)
  in
  let thresholds =
    {
      Snapshot.default_thresholds with
      Snapshot.time_tol_pct = time_tol;
      heap_tol_pct = heap_tol;
      heap_component_tol_pct = heap_component_tol;
    }
  in
  Printf.printf "=== Regression report (vs %s) ===\n%!" baseline_file;
  let outcome =
    Comparator.gate ~thresholds ~subset ?delta_md ~baseline ~current ()
  in
  (* The scaling gate is self-contained within the current snapshot: it
     pairs each jobs>1 cell with its jobs=1 sibling from the same run,
     so it never compares timings across hosts or commits. *)
  let scaling_failed =
    match min_scaling with
    | None -> false
    | Some min_speedup -> (
      print_scaling_section current;
      match Snapshot.check_scaling ~min_speedup current with
      | Snapshot.Scaling_ok points ->
        List.iter
          (fun pt ->
            Format.printf "scaling OK: %a@." Snapshot.pp_scaling_point pt)
          points;
        false
      | Snapshot.Scaling_skipped reason ->
        Printf.printf "scaling gate skipped: %s\n%!" reason;
        false
      | Snapshot.Scaling_regression points ->
        List.iter
          (fun pt ->
            Format.printf "SCALING REGRESSION (need >= %.2fx): %a@."
              min_speedup Snapshot.pp_scaling_point pt)
          points;
        true)
  in
  if outcome.Comparator.failed || scaling_failed then exit 1

(* ------------------------------------------------------------------ *)

let usage () =
  Printf.eprintf
    "usage: bench \
     [table1|propbench|figure3|summary|ablation|scaling|futurework|micro|all]*\n\
    \       bench --baseline FILE --compare [--time-tol PCT] [--heap-tol PCT]\n\
    \             [--heap-component-tol PCT] [--benchmarks a,b,c]\n\
    \             [--analyses x,y,z] [--jobs 1,4] [--min-scaling X]\n\
    \             [--delta-md FILE] [--snapshot-out FILE]\n";
  exit 2

let () =
  let baseline = ref None in
  let compare_mode = ref false in
  let time_tol = ref Snapshot.default_thresholds.Snapshot.time_tol_pct in
  let heap_tol = ref Snapshot.default_thresholds.Snapshot.heap_tol_pct in
  let heap_component_tol =
    ref Snapshot.default_thresholds.Snapshot.heap_component_tol_pct
  in
  let min_scaling = ref None in
  let delta_md = ref None in
  let snapshot_out = ref None in
  let cmds = ref [] in
  let float_arg v =
    match float_of_string_opt v with Some f -> f | None -> usage ()
  in
  let rec parse = function
    | [] -> ()
    | "--baseline" :: v :: rest ->
      baseline := Some v;
      parse rest
    | "--compare" :: rest ->
      compare_mode := true;
      parse rest
    | "--time-tol" :: v :: rest ->
      time_tol := float_arg v;
      parse rest
    | "--heap-tol" :: v :: rest ->
      heap_tol := float_arg v;
      parse rest
    | "--heap-component-tol" :: v :: rest ->
      heap_component_tol := float_arg v;
      parse rest
    | "--min-scaling" :: v :: rest ->
      min_scaling := Some (float_arg v);
      parse rest
    | "--jobs" :: v :: rest ->
      selected_jobs :=
        List.map
          (fun n ->
            match int_of_string_opt n with
            | Some j when j >= 1 -> j
            | _ ->
              Printf.eprintf "bad --jobs value %S (want positive ints)\n" n;
              exit 2)
          (String.split_on_char ',' v);
      parse rest
    | "--delta-md" :: v :: rest ->
      delta_md := Some v;
      parse rest
    | "--snapshot-out" :: v :: rest ->
      snapshot_out := Some v;
      parse rest
    | "--benchmarks" :: v :: rest ->
      selected_profiles :=
        List.map
          (fun name ->
            match Profile.by_name name with
            | Some p -> p
            | None ->
              Printf.eprintf "unknown benchmark %S\n" name;
              exit 2)
          (String.split_on_char ',' v);
      parse rest
    | "--analyses" :: v :: rest ->
      selected_analyses :=
        List.map
          (fun name ->
            match Strategies.by_name name with
            | Some _ -> name
            | None ->
              Printf.eprintf "unknown analysis %S\n" name;
              exit 2)
          (String.split_on_char ',' v);
      parse rest
    | flag :: _ when String.length flag > 0 && flag.[0] = '-' ->
      Printf.eprintf "unknown flag %S\n" flag;
      usage ()
    | cmd :: rest ->
      cmds := cmd :: !cmds;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !compare_mode then begin
    match !baseline with
    | None ->
      Printf.eprintf "--compare requires --baseline FILE\n";
      usage ()
    | Some baseline_file ->
      if !cmds <> [] then usage ();
      cmd_compare ~baseline_file ~time_tol:!time_tol ~heap_tol:!heap_tol
        ~heap_component_tol:!heap_component_tol ~min_scaling:!min_scaling
        ~delta_md:!delta_md ~snapshot_out:!snapshot_out ()
  end
  else begin
    let cmds = if !cmds = [] then [ "all" ] else List.rev !cmds in
    List.iter
      (fun cmd ->
        match cmd with
        | "table1" -> cmd_table1 ()
        | "propbench" -> cmd_propbench ()
        | "figure3" -> cmd_figure3 ()
        | "summary" -> cmd_summary ()
        | "micro" -> cmd_micro ()
        | "ablation" -> cmd_ablation ()
        | "scaling" -> cmd_scaling ()
        | "futurework" -> cmd_futurework ()
        | "all" ->
          cmd_table1 ();
          cmd_figure3 ();
          cmd_summary ();
          cmd_ablation ();
          cmd_futurework ();
          cmd_scaling ();
          cmd_micro ()
        | other ->
          Printf.eprintf
            "unknown command %S (expected table1 | propbench | figure3 | \
             summary | ablation | scaling | futurework | micro | all)\n"
            other;
          exit 2)
      cmds
  end
