(** Client analyses on a hand-computed program: devirtualization
    classifications, cast verdicts with witnesses, and the metric
    bundle. *)

module Ir = Pta_ir.Ir
module Solver = Pta_solver.Solver
module Devirt = Pta_clients.Devirt
module Casts = Pta_clients.Casts
module Metrics = Pta_clients.Metrics

let source =
  {|
  class Shape { method area() { return this; } }
  class Circle extends Shape { method area() { return this; } }
  class Square extends Shape { method area() { return this; } }

  class Main {
    static method main() {
      var s = new Circle;
      if (*) { s = new Square; }
      var poly = s.area();        // two targets
      var c = new Circle;
      var mono = c.area();        // one target
      var bad = (Square) s;       // may fail: s can be a Circle
      var ok = (Circle) c;        // safe
      var dead = new Shape;
      var unreached = Main::helper(dead);
    }
    static method helper(x) { return x; }
  }
  |}

let solver =
  lazy
    (let program = Pta_frontend.Frontend.program_of_string ~file:"<t>" source in
     Solver.solve program (Pta_context.Strategies.get "1obj" program))

let devirt_test () =
  let solver = Lazy.force solver in
  let sites = Devirt.analyze solver in
  let program = Solver.program solver in
  Alcotest.(check int) "two virtual call sites" 2 (List.length sites);
  Alcotest.(check int) "one polymorphic" 1 (Devirt.poly_count sites);
  Alcotest.(check int) "one monomorphic" 1 (Devirt.mono_count sites);
  List.iter
    (fun (s : Devirt.site) ->
      match s.classification with
      | Devirt.Monomorphic m ->
        Alcotest.(check string) "mono target" "Circle.area/0"
          (Ir.Program.meth_qualified_name program m)
      | Devirt.Polymorphic targets ->
        Alcotest.(check (list string))
          "poly targets"
          [ "Circle.area/0"; "Square.area/0" ]
          (Ir.Meth_id.Set.elements targets
          |> List.map (Ir.Program.meth_qualified_name program)
          |> List.sort compare)
      | Devirt.Unresolved -> Alcotest.fail "unexpected unresolved site")
    sites

let casts_test () =
  let solver = Lazy.force solver in
  let program = Solver.program solver in
  let sites = Casts.analyze solver in
  Alcotest.(check int) "two casts" 2 (List.length sites);
  Alcotest.(check int) "one may fail" 1 (Casts.may_fail_count sites);
  List.iter
    (fun (s : Casts.site) ->
      let target = Ir.Program.type_name program s.cast_type in
      match (target, s.verdict) with
      | "Square", Casts.May_fail [ witness ] ->
        let wt = (Ir.Program.heap_info program witness).Ir.heap_type in
        Alcotest.(check string) "witness is the Circle" "Circle"
          (Ir.Program.type_name program wt)
      | "Circle", Casts.Safe -> ()
      | t, Casts.Safe -> Alcotest.failf "unexpected safe cast to %s" t
      | t, Casts.May_fail ws ->
        Alcotest.failf "unexpected may-fail cast to %s (%d witnesses)" t
          (List.length ws))
    sites

let metrics_test () =
  let solver = Lazy.force solver in
  let m = Metrics.compute solver in
  Alcotest.(check int) "poly v-calls" 1 m.Metrics.poly_vcalls;
  Alcotest.(check int) "total v-calls" 2 m.Metrics.total_vcalls;
  Alcotest.(check int) "may-fail casts" 1 m.Metrics.may_fail_casts;
  Alcotest.(check int) "total casts" 2 m.Metrics.total_casts;
  (* main + helper + Circle.area + Square.area are reachable; Shape.area
     is not (no Shape receiver ever flows to a call). *)
  Alcotest.(check int) "reachable methods" 4 m.Metrics.reachable_methods;
  (* call edges: poly(2) + mono(1) + static helper(1) *)
  Alcotest.(check int) "call graph edges" 4 m.Metrics.call_graph_edges;
  Alcotest.(check bool) "avg at least 1" true (m.Metrics.avg_objs_per_var >= 1.)

let unreachable_code_test () =
  (* Methods never called must contribute no metrics. *)
  let program =
    Pta_frontend.Frontend.program_of_string ~file:"<t>"
      {|
      class A {
        method never() { var x = (A) this; return x.never(); }
      }
      class Main { static method main() { var a = new A; } }
      |}
  in
  let solver = Solver.solve program (Pta_context.Strategies.get "1obj" program) in
  let m = Metrics.compute solver in
  Alcotest.(check int) "no casts counted" 0 m.Metrics.total_casts;
  Alcotest.(check int) "no vcalls counted" 0 m.Metrics.total_vcalls;
  Alcotest.(check int) "only main reachable" 1 m.Metrics.reachable_methods

let tests =
  [
    Alcotest.test_case "devirtualization classification" `Quick devirt_test;
    Alcotest.test_case "cast verdicts and witnesses" `Quick casts_test;
    Alcotest.test_case "metric bundle" `Quick metrics_test;
    Alcotest.test_case "unreachable code excluded" `Quick unreachable_code_test;
  ]
