(** Tests for the introspection module. *)

module Ir = Pta_ir.Ir
module Solver = Pta_solver.Solver
module Stats = Pta_clients.Stats

let solver =
  lazy
    (let program =
       Pta_frontend.Frontend.program_of_string ~file:"<t>"
         {|
         class Worker {
           field job;
           method take(x) { this.job = x; return this.job; }
         }
         class JobA {} class JobB {}
         class Main {
           static method main() {
             var w1 = new Worker;
             var w2 = new Worker;
             var r1 = w1.take(new JobA);
             var r2 = w2.take(new JobB);
           }
         }
         |}
     in
     Solver.solve program (Pta_context.Strategies.get "1obj" program))

let histogram_test () =
  let stats = Stats.compute (Lazy.force solver) in
  (* main: 1 context; Worker.take: 2 contexts (two receiver sites). *)
  let program = Solver.program (Lazy.force solver) in
  let take_entry =
    List.find
      (fun (m : Stats.meth_contexts) ->
        String.equal (Ir.Program.meth_qualified_name program m.meth) "Worker.take/1")
      stats.Stats.by_method
  in
  Alcotest.(check int) "take has two contexts" 2 take_entry.Stats.n_contexts;
  let total_meths =
    List.fold_left (fun acc (_, count) -> acc + count) 0 stats.Stats.context_histogram
  in
  Alcotest.(check int) "histogram covers reachable methods" 2 total_meths

let fattest_test () =
  let stats = Stats.compute ~top:3 (Lazy.force solver) in
  Alcotest.(check bool) "top list bounded" true
    (List.length stats.Stats.fattest <= 3);
  List.iter
    (fun (v : Stats.fat_var) ->
      Alcotest.(check bool) "cs facts >= ci size" true (v.cs_facts >= v.ci_size))
    stats.Stats.fattest

let facts_consistency_test () =
  let solver = Lazy.force solver in
  let stats = Stats.compute ~top:1000 solver in
  let sum =
    List.fold_left (fun acc (m : Stats.meth_contexts) -> acc + m.facts) 0
      stats.Stats.by_method
  in
  Alcotest.(check int) "per-method facts sum to sensitive vpt"
    (Solver.sensitive_vpt_size solver)
    sum

let pp_smoke_test () =
  let solver = Lazy.force solver in
  let out =
    Format.asprintf "%a" (Stats.pp (Solver.program solver)) (Stats.compute solver)
  in
  Alcotest.(check bool) "prints something" true (String.length out > 100)

let tests =
  [
    Alcotest.test_case "context histogram" `Quick histogram_test;
    Alcotest.test_case "fattest variables" `Quick fattest_test;
    Alcotest.test_case "facts consistency" `Quick facts_consistency_test;
    Alcotest.test_case "pretty printer" `Quick pp_smoke_test;
  ]
