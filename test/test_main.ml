let () =
  Alcotest.run "hybridpta"
    [
      ("intset", Test_intset.tests);
      ("unify", Test_unify.tests);
      ("containers", Test_containers.tests);
      ("frontend", Test_frontend.tests);
      ("hierarchy", Test_hierarchy.tests);
      ("strategies", Test_strategies.tests);
      ("algebra", Test_algebra.tests);
      ("datalog", Test_datalog.tests);
      ("datalog-edge", Test_engine_edge.tests);
      ("smoke", Test_smoke.tests);
      ("solver", Test_solver_more.tests);
      ("clients", Test_clients.tests);
      ("checkers", Test_checkers.tests);
      ("differential", Test_differential.tests);
      ("taint", Test_taint.tests);
      ("soundness", Test_soundness.tests);
      ("precision", Test_precision.tests);
      ("exceptions", Test_exceptions.tests);
      ("interp", Test_interp.tests);
      ("workloads", Test_workloads.tests);
      ("report", Test_report.tests);
      ("obs", Test_obs.tests);
      ("metrics", Test_metrics.tests);
      ("history", Test_history.tests);
      ("trace", Test_trace.tests);
      ("stats", Test_stats.tests);
      ("provenance", Test_provenance.tests);
      ("roundtrip", Test_roundtrip.tests);
      ("field-modes", Test_field_modes.tests);
      ("regression-pin", Test_regression_pin.tests);
      ("fuzz", Test_fuzz.tests);
    ]
