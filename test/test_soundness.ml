(** Soundness testing: every fact observed by concretely executing a
    program (real heap, real dispatch, random control flow) must be
    included in every analysis's result — for all context strategies. *)

module Ir = Pta_ir.Ir
module Solver = Pta_solver.Solver
module Intset = Pta_solver.Intset
module Interp = Pta_interp.Interp

let check_sound ~name program strategies ~seeds =
  let traces =
    List.map (fun seed -> Interp.run ~seed program) seeds
  in
  List.iter
    (fun strat_name ->
      let factory = Option.get (Pta_context.Strategies.by_name strat_name) in
      let strategy = factory program in
      let solver = Solver.solve program strategy in
      let reachable = Solver.reachable_meths solver in
      (* Cut-shortcut strategies deliberately skip the arg/ret wiring of
         summarized methods: their flows are threaded caller-side, so
         variables *inside* those methods carry no points-to facts.  The
         soundness obligation there is the caller-side result, which the
         remaining vars cover. *)
      let summarized =
        match strategy.Pta_context.Strategy.shortcut with
        | None -> Ir.Meth_id.Set.empty
        | Some plan -> Pta_context.Shortcut.summarized plan
      in
      let var_skipped var =
        Ir.Meth_id.Set.mem
          (Ir.Program.var_info program var).Ir.var_owner summarized
      in
      List.iter
        (fun trace ->
          List.iter
            (fun (var, heap) ->
              if
                (not (var_skipped var))
                && not
                     (Intset.mem (Ir.Heap_id.to_int heap)
                        (Solver.ci_var_points_to solver var))
              then
                Alcotest.failf "%s/%s: UNSOUND: %s may point to %s at runtime"
                  name strat_name
                  (Ir.Program.var_qualified_name program var)
                  (Ir.Program.heap_name program heap))
            (Interp.observed_var_points trace);
          List.iter
            (fun (invo, meth) ->
              if not (Ir.Meth_id.Set.mem meth (Solver.invo_targets solver invo))
              then
                Alcotest.failf "%s/%s: UNSOUND: missing call edge %s -> %s" name
                  strat_name
                  (Ir.Program.invo_name program invo)
                  (Ir.Program.meth_qualified_name program meth))
            (Interp.observed_call_edges trace);
          List.iter
            (fun meth ->
              if not (Ir.Meth_id.Set.mem meth reachable) then
                Alcotest.failf "%s/%s: UNSOUND: method %s reached at runtime"
                  name strat_name
                  (Ir.Program.meth_qualified_name program meth))
            (Interp.observed_reached trace))
        traces)
    strategies

let seeds = [ 1L; 2L; 3L; 42L; 0xBEEFL ]
let all_strategies = List.map fst Pta_context.Strategies.all

let source_tests =
  [
    ("inheritance", Test_differential.program_inheritance);
    ("containers", Test_differential.program_containers);
    ("statics", Test_differential.program_statics);
    ("recursion", Test_differential.program_recursion);
    ("static-fields", Test_differential.program_static_fields);
    ("exceptions", Test_differential.program_exceptions);
  ]

let tests =
  List.map
    (fun (name, src) ->
      Alcotest.test_case (name ^ " sound for all strategies") `Quick (fun () ->
          let program =
            Pta_frontend.Frontend.program_of_string ~file:name src
          in
          check_sound ~name program all_strategies ~seeds))
    source_tests
  @ [
      Alcotest.test_case "tiny workload sound" `Quick (fun () ->
          let program =
            Pta_workloads.Workloads.program
              (Option.get (Pta_workloads.Profile.by_name "tiny"))
          in
          check_sound ~name:"tiny" program
            [ "insens"; "1call"; "1call+H"; "1obj"; "SA-1obj"; "SB-1obj";
              "2obj+H"; "U-2obj+H"; "S-2obj+H"; "2type+H"; "3obj+2H" ]
            ~seeds);
      Alcotest.test_case "luindex workload sound (spot check)" `Slow (fun () ->
          let program =
            Pta_workloads.Workloads.program
              (Option.get (Pta_workloads.Profile.by_name "luindex"))
          in
          check_sound ~name:"luindex" program
            [ "insens"; "1obj"; "S-2obj+H" ]
            ~seeds:[ 7L; 8L ])
    ]
