(** Differential testing: the native worklist solver must compute exactly
    the same VarPointsTo / CallGraph / Reachable facts as the Datalog
    reference implementation (the literal Figure-2 rules), for every
    strategy, on a battery of programs. *)

module Ir = Pta_ir.Ir
module Ctx = Pta_context.Ctx
module Solver = Pta_solver.Solver
module Intset = Pta_solver.Intset

let elem_str = function
  | Ctx.Star -> "*"
  | Ctx.Heap h -> "H" ^ string_of_int (Ir.Heap_id.to_int h)
  | Ctx.Invo i -> "I" ^ string_of_int (Ir.Invo_id.to_int i)
  | Ctx.Type t -> "T" ^ string_of_int (Ir.Type_id.to_int t)

let ctx_str v = String.concat "," (List.map elem_str (Array.to_list v))

module S = Set.Make (String)

let solver_facts solver =
  let vpt = ref S.empty in
  Solver.iter_var_points_to solver (fun var ctx hobjs ->
      let ctx = ctx_str (Solver.ctx_value solver ctx) in
      Intset.iter
        (fun hobj ->
          let heap = Solver.hobj_heap solver hobj in
          let hctx = ctx_str (Solver.hctx_value solver (Solver.hobj_hctx solver hobj)) in
          vpt :=
            S.add
              (Printf.sprintf "%d|%s|%d|%s" (Ir.Var_id.to_int var) ctx
                 (Ir.Heap_id.to_int heap) hctx)
              !vpt)
        hobjs);
  let cg = ref S.empty in
  Solver.iter_call_edges solver (fun invo cctx meth eectx ->
      cg :=
        S.add
          (Printf.sprintf "%d|%s|%d|%s" (Ir.Invo_id.to_int invo)
             (ctx_str (Solver.ctx_value solver cctx))
             (Ir.Meth_id.to_int meth)
             (ctx_str (Solver.ctx_value solver eectx)))
          !cg);
  let reach = ref S.empty in
  Solver.iter_reachable solver (fun meth ctx ->
      reach :=
        S.add
          (Printf.sprintf "%d|%s" (Ir.Meth_id.to_int meth)
             (ctx_str (Solver.ctx_value solver ctx)))
          !reach);
  let throws = ref S.empty in
  Solver.iter_throw_points_to solver (fun meth ctx hobjs ->
      let ctx = ctx_str (Solver.ctx_value solver ctx) in
      Intset.iter
        (fun hobj ->
          let heap = Solver.hobj_heap solver hobj in
          let hctx =
            ctx_str (Solver.hctx_value solver (Solver.hobj_hctx solver hobj))
          in
          throws :=
            S.add
              (Printf.sprintf "%d|%s|%d|%s" (Ir.Meth_id.to_int meth) ctx
                 (Ir.Heap_id.to_int heap) hctx)
              !throws)
        hobjs);
  (!vpt, !cg, !reach, !throws)

let ref_facts r =
  let vpt =
    Pta_refimpl.Refimpl.fold_var_points_to r
      (fun var ctx heap hctx acc ->
        S.add
          (Printf.sprintf "%d|%s|%d|%s" (Ir.Var_id.to_int var) (ctx_str ctx)
             (Ir.Heap_id.to_int heap) (ctx_str hctx))
          acc)
      S.empty
  in
  let cg =
    Pta_refimpl.Refimpl.fold_call_edges r
      (fun invo cctx meth eectx acc ->
        S.add
          (Printf.sprintf "%d|%s|%d|%s" (Ir.Invo_id.to_int invo) (ctx_str cctx)
             (Ir.Meth_id.to_int meth) (ctx_str eectx))
          acc)
      S.empty
  in
  let reach =
    Pta_refimpl.Refimpl.fold_reachable r
      (fun meth ctx acc ->
        S.add (Printf.sprintf "%d|%s" (Ir.Meth_id.to_int meth) (ctx_str ctx)) acc)
      S.empty
  in
  let throws =
    Pta_refimpl.Refimpl.fold_throw_points_to r
      (fun meth ctx heap hctx acc ->
        S.add
          (Printf.sprintf "%d|%s|%d|%s" (Ir.Meth_id.to_int meth) (ctx_str ctx)
             (Ir.Heap_id.to_int heap) (ctx_str hctx))
          acc)
      S.empty
  in
  (vpt, cg, reach, throws)

(* Checker verdicts must agree across engines too.  Witness [w_detail]
   (provenance chains) is deliberately excluded: it is a solver-only
   enrichment. *)
let diag_key (d : Pta_checkers.Diagnostic.t) =
  let span_str = function
    | None -> "-"
    | Some sp -> Format.asprintf "%a" Pta_ir.Srcloc.pp_span sp
  in
  Printf.sprintf "%s|%s|%s|%s|%s" d.code
    (Pta_checkers.Diagnostic.severity_to_string d.severity)
    (span_str d.span) d.message
    (String.concat ";"
       (List.map
          (fun (w : Pta_checkers.Diagnostic.witness) ->
            w.w_message ^ "@" ^ span_str w.w_span)
          d.witnesses))

let diff_msg label a b =
  let missing = S.diff b a and extra = S.diff a b in
  Printf.sprintf "%s: solver-only=[%s] ref-only=[%s]" label
    (String.concat "; " (List.filteri (fun i _ -> i < 5) (S.elements extra)))
    (String.concat "; " (List.filteri (fun i _ -> i < 5) (S.elements missing)))

let check_program ~name src strategies =
  let program = Pta_frontend.Frontend.program_of_string ~file:name src in
  List.iter
    (fun strat_name ->
      let factory = Option.get (Pta_context.Strategies.by_name strat_name) in
      let strategy = factory program in
      let solver = Solver.solve program strategy in
      let reference = Pta_refimpl.Refimpl.run program strategy in
      let s_vpt, s_cg, s_reach, s_throws = solver_facts solver in
      let r_vpt, r_cg, r_reach, r_throws = ref_facts reference in
      let ok_label what = Printf.sprintf "%s/%s %s" name strat_name what in
      Alcotest.(check bool)
        (diff_msg (ok_label "vpt") s_vpt r_vpt)
        true (S.equal s_vpt r_vpt);
      Alcotest.(check bool)
        (diff_msg (ok_label "cg") s_cg r_cg)
        true (S.equal s_cg r_cg);
      Alcotest.(check bool)
        (diff_msg (ok_label "reach") s_reach r_reach)
        true (S.equal s_reach r_reach);
      Alcotest.(check bool)
        (diff_msg (ok_label "throws") s_throws r_throws)
        true (S.equal s_throws r_throws);
      let s_diags =
        List.map diag_key
          (Pta_checkers.Checkers.run (Pta_checkers.Results.of_solver solver))
      in
      let r_diags =
        List.map diag_key
          (Pta_checkers.Checkers.run
             (Pta_checkers.Results.of_refimpl program reference))
      in
      Alcotest.(check (list string)) (ok_label "checker diagnostics") s_diags
        r_diags)
    strategies

let all_strategies = List.map fst Pta_context.Strategies.all

let program_inheritance =
  {|
  class Animal {
    field young;
    method mate(other) { this.young = new Animal; return this.young; }
    method partner(other) { return other; }
  }
  class Dog extends Animal {
    method mate(other) { this.young = new Dog; return this.young; }
  }
  class Cat extends Animal {}
  class Main {
    static method main() {
      var d = new Dog;
      var c = new Cat;
      var y1 = d.mate(c);
      var y2 = c.mate(d);
      var p = d.partner(c);
      var casted = (Dog) y1;
    }
  }
  |}

let program_containers =
  {|
  class Item {}
  class Pair { field left; field rightp; }
  class BoxV { field contentv;
    method fill(x) { this.contentv = x; return this; }
    method take() { return this.contentv; }
  }
  class Main {
    static method main() {
      var b1 = new BoxV;
      var b2 = new BoxV;
      var i = new Item;
      var p = new Pair;
      b1.fill(i);
      b2.fill(p);
      var out1 = b1.take();
      var out2 = b2.take();
      p.left = i;
      var l = p.left;
      while (*) { p.rightp = l; l = p.rightp; }
    }
  }
  |}

let program_statics =
  {|
  class A {}
  class B {}
  class Util {
    static method id(x) { return x; }
    static method twice(x) { var y = Util::id(x); return Util::id(y); }
    static method pick(a, b) { if (*) { return a; } return b; }
  }
  class Main {
    static method main() {
      var a = new A;
      var b = new B;
      var ra = Util::twice(a);
      var rb = Util::twice(b);
      var m = Util::pick(a, b);
      var ca = (A) ra;
    }
  }
  |}

let program_recursion =
  {|
  class Node {
    field nxt;
    method grow(n) {
      var fresh = new Node;
      fresh.nxt = this;
      if (*) { return fresh.grow(n); }
      return fresh;
    }
  }
  class Main {
    static method main() {
      var root = new Node;
      var deep = root.grow(root);
      var step = deep.nxt;
    }
  }
  |}

let program_static_fields =
  {|
  class Config {
    static field current;
    static method set(c) { Config::current = c; return c; }
    static method get() { return Config::current; }
  }
  class Prod {} class Dev {}
  class Main {
    static method main() {
      Config::set(new Prod);
      if (*) { Config::current = new Dev; }
      var active = Config::get();
      var direct = Config::current;
      var asProd = (Prod) active;
    }
  }
  |}

let program_exceptions =
  {|
  class Err {}
  class IoErr extends Err {}
  class ParseErr extends Err { field cause; }
  class Reader {
    method read(x) {
      if (*) { throw new IoErr; }
      if (*) {
        var pe = new ParseErr;
        pe.cause = x;
        throw pe;
      }
      return x;
    }
  }
  class Main {
    static method risky(r, x) {
      var out = r.read(x);
      return out;
    }
    static method main() {
      var r = new Reader;
      var payload = new Err;
      try {
        var ok = Main::risky(r, payload);
        try {
          var again = r.read(ok);
        } catch (ParseErr inner) {
          var c = inner.cause;
        }
      } catch (IoErr io) {
        var i = io;
      } catch (Err any) {
        var a = any;
      }
      var survivor = new Reader;
    }
  }
  |}

(* ------------------------------------------------------------------ *)
(* Legacy fact-identity: the hand-written closure definitions that the
   strategy algebra replaced, kept verbatim (modulo the [callee]
   parameter and [shortcut] field the interface has since grown).  Every
   preset the registry now compiles from an algebra term must produce
   exactly the same facts as its original closure — this is the
   refactoring's no-behavior-change guarantee. *)
(* ------------------------------------------------------------------ *)

module Legacy = struct
  let make ~name ~initial_ctx ~record ~merge ~merge_static =
    {
      Pta_context.Strategy.name;
      description = name;
      initial_ctx;
      record;
      merge;
      merge_static;
      shortcut = None;
    }

  let empty : Ctx.value = [||]
  let star1 : Ctx.value = [| Ctx.Star |]
  let star2 : Ctx.value = [| Ctx.Star; Ctx.Star |]
  let star3 : Ctx.value = [| Ctx.Star; Ctx.Star; Ctx.Star |]

  let ca program heap =
    Ctx.Type (Pta_context.Strategies.class_of_alloc program heap)

  let is_invo = function
    | Ctx.Invo _ -> true
    | Ctx.Star | Ctx.Heap _ | Ctx.Type _ -> false

  let insens _program =
    make ~name:"insens" ~initial_ctx:empty
      ~record:(fun ~heap:_ ~ctx:_ -> empty)
      ~merge:(fun ~heap:_ ~hctx:_ ~invo:_ ~callee:_ ~ctx:_ -> empty)
      ~merge_static:(fun ~invo:_ ~callee:_ ~ctx:_ -> empty)

  let call1 _program =
    make ~name:"1call" ~initial_ctx:star1
      ~record:(fun ~heap:_ ~ctx:_ -> empty)
      ~merge:(fun ~heap:_ ~hctx:_ ~invo ~callee:_ ~ctx:_ -> [| Ctx.Invo invo |])
      ~merge_static:(fun ~invo ~callee:_ ~ctx:_ -> [| Ctx.Invo invo |])

  let call1_heap _program =
    make ~name:"1call+H" ~initial_ctx:star1
      ~record:(fun ~heap:_ ~ctx -> ctx)
      ~merge:(fun ~heap:_ ~hctx:_ ~invo ~callee:_ ~ctx:_ -> [| Ctx.Invo invo |])
      ~merge_static:(fun ~invo ~callee:_ ~ctx:_ -> [| Ctx.Invo invo |])

  let call2_heap _program =
    make ~name:"2call+H" ~initial_ctx:star2
      ~record:(fun ~heap:_ ~ctx -> [| Ctx.first ctx |])
      ~merge:(fun ~heap:_ ~hctx:_ ~invo ~callee:_ ~ctx ->
        [| Ctx.Invo invo; Ctx.first ctx |])
      ~merge_static:(fun ~invo ~callee:_ ~ctx ->
        [| Ctx.Invo invo; Ctx.first ctx |])

  let obj1 _program =
    make ~name:"1obj" ~initial_ctx:star1
      ~record:(fun ~heap:_ ~ctx:_ -> empty)
      ~merge:(fun ~heap ~hctx:_ ~invo:_ ~callee:_ ~ctx:_ -> [| Ctx.Heap heap |])
      ~merge_static:(fun ~invo:_ ~callee:_ ~ctx -> ctx)

  let obj1_heap _program =
    make ~name:"1obj+H" ~initial_ctx:star1
      ~record:(fun ~heap:_ ~ctx -> [| Ctx.first ctx |])
      ~merge:(fun ~heap ~hctx:_ ~invo:_ ~callee:_ ~ctx:_ -> [| Ctx.Heap heap |])
      ~merge_static:(fun ~invo:_ ~callee:_ ~ctx -> ctx)

  let obj2_heap _program =
    make ~name:"2obj+H" ~initial_ctx:star2
      ~record:(fun ~heap:_ ~ctx -> [| Ctx.first ctx |])
      ~merge:(fun ~heap ~hctx ~invo:_ ~callee:_ ~ctx:_ ->
        [| Ctx.Heap heap; Ctx.first hctx |])
      ~merge_static:(fun ~invo:_ ~callee:_ ~ctx -> ctx)

  let type2_heap program =
    make ~name:"2type+H" ~initial_ctx:star2
      ~record:(fun ~heap:_ ~ctx -> [| Ctx.first ctx |])
      ~merge:(fun ~heap ~hctx ~invo:_ ~callee:_ ~ctx:_ ->
        [| ca program heap; Ctx.first hctx |])
      ~merge_static:(fun ~invo:_ ~callee:_ ~ctx -> ctx)

  let uniform_obj1 _program =
    make ~name:"U-1obj" ~initial_ctx:star2
      ~record:(fun ~heap:_ ~ctx:_ -> empty)
      ~merge:(fun ~heap ~hctx:_ ~invo ~callee:_ ~ctx:_ ->
        [| Ctx.Heap heap; Ctx.Invo invo |])
      ~merge_static:(fun ~invo ~callee:_ ~ctx ->
        [| Ctx.first ctx; Ctx.Invo invo |])

  let uniform_obj2_heap _program =
    make ~name:"U-2obj+H" ~initial_ctx:star3
      ~record:(fun ~heap:_ ~ctx -> [| Ctx.first ctx |])
      ~merge:(fun ~heap ~hctx ~invo ~callee:_ ~ctx:_ ->
        [| Ctx.Heap heap; Ctx.first hctx; Ctx.Invo invo |])
      ~merge_static:(fun ~invo ~callee:_ ~ctx ->
        [| Ctx.first ctx; Ctx.second ctx; Ctx.Invo invo |])

  let uniform_type2_heap program =
    make ~name:"U-2type+H" ~initial_ctx:star3
      ~record:(fun ~heap:_ ~ctx -> [| Ctx.first ctx |])
      ~merge:(fun ~heap ~hctx ~invo ~callee:_ ~ctx:_ ->
        [| ca program heap; Ctx.first hctx; Ctx.Invo invo |])
      ~merge_static:(fun ~invo ~callee:_ ~ctx ->
        [| Ctx.first ctx; Ctx.second ctx; Ctx.Invo invo |])

  let selective_a_obj1 _program =
    make ~name:"SA-1obj" ~initial_ctx:star1
      ~record:(fun ~heap:_ ~ctx:_ -> empty)
      ~merge:(fun ~heap ~hctx:_ ~invo:_ ~callee:_ ~ctx:_ -> [| Ctx.Heap heap |])
      ~merge_static:(fun ~invo ~callee:_ ~ctx:_ -> [| Ctx.Invo invo |])

  let selective_b_obj1 _program =
    make ~name:"SB-1obj" ~initial_ctx:star2
      ~record:(fun ~heap:_ ~ctx:_ -> empty)
      ~merge:(fun ~heap ~hctx:_ ~invo:_ ~callee:_ ~ctx:_ ->
        [| Ctx.Heap heap; Ctx.Star |])
      ~merge_static:(fun ~invo ~callee:_ ~ctx ->
        [| Ctx.first ctx; Ctx.Invo invo |])

  let selective_obj2_heap _program =
    make ~name:"S-2obj+H" ~initial_ctx:star3
      ~record:(fun ~heap:_ ~ctx -> [| Ctx.first ctx |])
      ~merge:(fun ~heap ~hctx ~invo:_ ~callee:_ ~ctx:_ ->
        [| Ctx.Heap heap; Ctx.first hctx; Ctx.Star |])
      ~merge_static:(fun ~invo ~callee:_ ~ctx ->
        [| Ctx.first ctx; Ctx.Invo invo; Ctx.second ctx |])

  let selective_type2_heap program =
    make ~name:"S-2type+H" ~initial_ctx:star3
      ~record:(fun ~heap:_ ~ctx -> [| Ctx.first ctx |])
      ~merge:(fun ~heap ~hctx ~invo:_ ~callee:_ ~ctx:_ ->
        [| ca program heap; Ctx.first hctx; Ctx.Star |])
      ~merge_static:(fun ~invo ~callee:_ ~ctx ->
        [| Ctx.first ctx; Ctx.Invo invo; Ctx.second ctx |])

  let obj3_heap2 _program =
    make ~name:"3obj+2H" ~initial_ctx:star3
      ~record:(fun ~heap:_ ~ctx -> [| Ctx.first ctx; Ctx.second ctx |])
      ~merge:(fun ~heap ~hctx ~invo:_ ~callee:_ ~ctx:_ ->
        [| Ctx.Heap heap; Ctx.first hctx; Ctx.second hctx |])
      ~merge_static:(fun ~invo:_ ~callee:_ ~ctx -> ctx)

  let adaptive_obj2_heap _program =
    make ~name:"A-2obj+H" ~initial_ctx:star3
      ~record:(fun ~heap:_ ~ctx ->
        if is_invo (Ctx.second ctx) then [| Ctx.second ctx |]
        else [| Ctx.first ctx |])
      ~merge:(fun ~heap ~hctx ~invo:_ ~callee:_ ~ctx:_ ->
        [| Ctx.Heap heap; Ctx.first hctx; Ctx.Star |])
      ~merge_static:(fun ~invo ~callee:_ ~ctx ->
        [| Ctx.first ctx; Ctx.Invo invo; Ctx.second ctx |])

  let adaptive_type2_heap program =
    make ~name:"A-2type+H" ~initial_ctx:star3
      ~record:(fun ~heap:_ ~ctx ->
        if is_invo (Ctx.second ctx) then [| Ctx.second ctx |]
        else [| Ctx.first ctx |])
      ~merge:(fun ~heap ~hctx ~invo:_ ~callee:_ ~ctx:_ ->
        [| ca program heap; Ctx.first hctx; Ctx.Star |])
      ~merge_static:(fun ~invo ~callee:_ ~ctx ->
        [| Ctx.first ctx; Ctx.Invo invo; Ctx.second ctx |])

  let ablation_invo_heap _program =
    make ~name:"X-2obj+IH" ~initial_ctx:star3
      ~record:(fun ~heap:_ ~ctx -> [| Ctx.third ctx |])
      ~merge:(fun ~heap ~hctx ~invo ~callee:_ ~ctx:_ ->
        [| Ctx.Heap heap; Ctx.first hctx; Ctx.Invo invo |])
      ~merge_static:(fun ~invo ~callee:_ ~ctx ->
        [| Ctx.first ctx; Ctx.second ctx; Ctx.Invo invo |])

  let ablation_inverted _program =
    make ~name:"X-2obj+Hrev" ~initial_ctx:star2
      ~record:(fun ~heap:_ ~ctx -> [| Ctx.first ctx |])
      ~merge:(fun ~heap ~hctx ~invo:_ ~callee:_ ~ctx:_ ->
        [| Ctx.first hctx; Ctx.Heap heap |])
      ~merge_static:(fun ~invo:_ ~callee:_ ~ctx -> ctx)

  let ablation_freemix _program =
    make ~name:"X-freemix" ~initial_ctx:star2
      ~record:(fun ~heap:_ ~ctx -> [| Ctx.first ctx |])
      ~merge:(fun ~heap ~hctx:_ ~invo ~callee:_ ~ctx:_ ->
        [| Ctx.Invo invo; Ctx.Heap heap |])
      ~merge_static:(fun ~invo ~callee:_ ~ctx ->
        [| Ctx.Invo invo; Ctx.first ctx |])

  let all =
    [
      insens; call1; call1_heap; call2_heap; obj1; obj1_heap; obj2_heap;
      type2_heap; uniform_obj1; uniform_obj2_heap; uniform_type2_heap;
      selective_a_obj1; selective_b_obj1; selective_obj2_heap;
      selective_type2_heap; obj3_heap2; adaptive_obj2_heap;
      adaptive_type2_heap; ablation_invo_heap; ablation_inverted;
      ablation_freemix;
    ]
end

let check_legacy_identity ~name src =
  let program = Pta_frontend.Frontend.program_of_string ~file:name src in
  List.iter
    (fun legacy_factory ->
      let legacy = legacy_factory program in
      let strat_name = legacy.Pta_context.Strategy.name in
      let preset =
        match Pta_context.Strategies.by_name strat_name with
        | Some f -> f program
        | None -> Alcotest.failf "preset %s vanished from the registry" strat_name
      in
      let n_vpt, n_cg, n_reach, n_throws =
        solver_facts (Solver.solve program preset)
      in
      let l_vpt, l_cg, l_reach, l_throws =
        solver_facts (Solver.solve program legacy)
      in
      let label what = Printf.sprintf "%s/%s algebra=legacy %s" name strat_name what in
      Alcotest.(check bool)
        (diff_msg (label "vpt") n_vpt l_vpt)
        true (S.equal n_vpt l_vpt);
      Alcotest.(check bool)
        (diff_msg (label "cg") n_cg l_cg)
        true (S.equal n_cg l_cg);
      Alcotest.(check bool)
        (diff_msg (label "reach") n_reach l_reach)
        true (S.equal n_reach l_reach);
      Alcotest.(check bool)
        (diff_msg (label "throws") n_throws l_throws)
        true (S.equal n_throws l_throws))
    Legacy.all

(* Jobs-identity: the multi-domain drain must compute exactly the same
   rendered facts — and the same checker verdicts — as the sequential
   fixpoint, at every domain count.  Interning ids may differ between
   jobs=1 and jobs>1, so everything here compares [ctx_str]-rendered
   values, never raw ids.  On OCaml 4.x [effective_jobs] clamps every
   leg to 1 and the comparison degenerates to sequential-vs-sequential,
   which keeps the test green (if vacuous) there. *)
let check_jobs_identity ~name src strategies =
  let program = Pta_frontend.Frontend.program_of_string ~file:name src in
  List.iter
    (fun strat_name ->
      let factory = Option.get (Pta_context.Strategies.by_name strat_name) in
      let solve_at jobs =
        let config = Solver.Config.make ~jobs () in
        let solver = Solver.solve ~config program (factory program) in
        let facts = solver_facts solver in
        let diags =
          List.map diag_key
            (Pta_checkers.Checkers.run (Pta_checkers.Results.of_solver solver))
        in
        (facts, diags, Solver.domains_used solver)
      in
      let (b_vpt, b_cg, b_reach, b_throws), b_diags, _ = solve_at 1 in
      List.iter
        (fun jobs ->
          let (vpt, cg, reach, throws), diags, used = solve_at jobs in
          let label what =
            Printf.sprintf "%s/%s jobs=%d (used %d) %s" name strat_name jobs
              used what
          in
          Alcotest.(check bool)
            (diff_msg (label "vpt") vpt b_vpt)
            true (S.equal vpt b_vpt);
          Alcotest.(check bool)
            (diff_msg (label "cg") cg b_cg)
            true (S.equal cg b_cg);
          Alcotest.(check bool)
            (diff_msg (label "reach") reach b_reach)
            true (S.equal reach b_reach);
          Alcotest.(check bool)
            (diff_msg (label "throws") throws b_throws)
            true (S.equal throws b_throws);
          Alcotest.(check (list string))
            (label "checker diagnostics")
            b_diags diags)
        [ 2; 4 ])
    strategies

let program_workload () =
  let profile = Option.get (Pta_workloads.Profile.by_name "tiny") in
  Pta_workloads.Workloads.source profile

(* A shrunken [cyclic] profile: small enough for the Datalog reference,
   but keeping the copy chains, local copy cycles and static
   mutual-recursion rings that exercise the solver's online cycle
   elimination — the path differential testing most needs to cover. *)
let program_cyclic () =
  let profile =
    Pta_workloads.Profile.scale 0.2
      (Option.get (Pta_workloads.Profile.by_name "cyclic"))
  in
  Pta_workloads.Workloads.source profile

let tests =
  [
    Alcotest.test_case "inheritance program, all strategies" `Quick (fun () ->
        check_program ~name:"inheritance" program_inheritance all_strategies);
    Alcotest.test_case "containers program, all strategies" `Quick (fun () ->
        check_program ~name:"containers" program_containers all_strategies);
    Alcotest.test_case "statics program, all strategies" `Quick (fun () ->
        check_program ~name:"statics" program_statics all_strategies);
    Alcotest.test_case "recursion program, all strategies" `Quick (fun () ->
        check_program ~name:"recursion" program_recursion all_strategies);
    Alcotest.test_case "static fields program, all strategies" `Quick (fun () ->
        check_program ~name:"static-fields" program_static_fields all_strategies);
    Alcotest.test_case "exceptions program, all strategies" `Quick (fun () ->
        check_program ~name:"exceptions" program_exceptions all_strategies);
    Alcotest.test_case "algebra presets = legacy closures (battery)" `Quick
      (fun () ->
        check_legacy_identity ~name:"inheritance" program_inheritance;
        check_legacy_identity ~name:"containers" program_containers;
        check_legacy_identity ~name:"statics" program_statics;
        check_legacy_identity ~name:"recursion" program_recursion;
        check_legacy_identity ~name:"static-fields" program_static_fields;
        check_legacy_identity ~name:"exceptions" program_exceptions);
    Alcotest.test_case "algebra presets = legacy closures (tiny workload)" `Slow
      (fun () -> check_legacy_identity ~name:"tiny-workload" (program_workload ()));
    Alcotest.test_case "tiny workload, key strategies" `Slow (fun () ->
        check_program ~name:"tiny-workload" (program_workload ())
          [ "insens"; "1call"; "1obj"; "SB-1obj"; "2obj+H"; "S-2obj+H"; "2type+H" ]);
    Alcotest.test_case "cyclic workload, all strategies" `Slow (fun () ->
        check_program ~name:"cyclic-workload" (program_cyclic ()) all_strategies);
    Alcotest.test_case "jobs=1/2/4 identity (battery)" `Quick (fun () ->
        let key = [ "insens"; "1call"; "1obj"; "2obj+H"; "S-2obj+H" ] in
        check_jobs_identity ~name:"inheritance" program_inheritance key;
        check_jobs_identity ~name:"statics" program_statics key;
        check_jobs_identity ~name:"exceptions" program_exceptions key);
    Alcotest.test_case "jobs=1/2/4 identity, all strategies (battery)" `Slow
      (fun () ->
        check_jobs_identity ~name:"containers" program_containers all_strategies;
        check_jobs_identity ~name:"recursion" program_recursion all_strategies;
        check_jobs_identity ~name:"static-fields" program_static_fields
          all_strategies);
    Alcotest.test_case "jobs=1/2/4 identity (cyclic workload)" `Slow (fun () ->
        check_jobs_identity ~name:"cyclic-workload" (program_cyclic ())
          [ "insens"; "1call"; "1obj"; "2obj+H"; "S-2obj+H"; "2type+H" ]);
  ]
