(** Tests for the generic Datalog engine: relations/indexes, recursive
    rules (transitive closure, same-generation), multi-head rules and
    constructor hooks. *)

module Relation = Pta_datalog.Relation
module Engine = Pta_datalog.Engine
open Engine

let relation_tests =
  [
    Alcotest.test_case "add deduplicates" `Quick (fun () ->
        let r = Relation.create ~name:"r" ~arity:2 in
        Alcotest.(check bool) "new" true (Relation.add r [| 1; 2 |]);
        Alcotest.(check bool) "dup" false (Relation.add r [| 1; 2 |]);
        Alcotest.(check int) "cardinal" 1 (Relation.cardinal r));
    Alcotest.test_case "arity checked" `Quick (fun () ->
        let r = Relation.create ~name:"r" ~arity:2 in
        Alcotest.check_raises "bad arity"
          (Invalid_argument "Relation.add: r expects arity 2, got 3") (fun () ->
            ignore (Relation.add r [| 1; 2; 3 |])));
    Alcotest.test_case "select with index" `Quick (fun () ->
        let r = Relation.create ~name:"r" ~arity:2 in
        List.iter
          (fun f -> ignore (Relation.add r f))
          [ [| 1; 10 |]; [| 1; 11 |]; [| 2; 20 |] ];
        let hits = ref [] in
        Relation.select r ~pattern:[| 1; -1 |] (fun f -> hits := f.(1) :: !hits);
        Alcotest.(check (list int)) "matches" [ 10; 11 ] (List.sort compare !hits);
        (* Index maintained across later additions. *)
        ignore (Relation.add r [| 1; 12 |]);
        let hits = ref [] in
        Relation.select r ~pattern:[| 1; -1 |] (fun f -> hits := f.(1) :: !hits);
        Alcotest.(check int) "after add" 3 (List.length !hits));
    Alcotest.test_case "select full scan on all-wildcard" `Quick (fun () ->
        let r = Relation.create ~name:"r" ~arity:1 in
        ignore (Relation.add r [| 7 |]);
        let n = ref 0 in
        Relation.select r ~pattern:[| -1 |] (fun _ -> incr n);
        Alcotest.(check int) "scan" 1 !n);
  ]

(* Transitive closure of a chain plus a cycle. *)
let tc_test () =
  let edge = Relation.create ~name:"edge" ~arity:2 in
  let path = Relation.create ~name:"path" ~arity:2 in
  List.iter
    (fun (a, b) -> ignore (Relation.add edge [| a; b |]))
    [ (1, 2); (2, 3); (3, 4); (5, 6); (6, 5) ];
  let rules =
    [
      rule "base" ~n_vars:2
        [ { hrel = path; hargs = [| Hv 0; Hv 1 |] } ]
        [ { rel = edge; args = [| V 0; V 1 |] } ];
      rule "step" ~n_vars:3
        [ { hrel = path; hargs = [| Hv 0; Hv 2 |] } ]
        [
          { rel = path; args = [| V 0; V 1 |] };
          { rel = edge; args = [| V 1; V 2 |] };
        ];
    ]
  in
  Engine.run rules;
  let expected =
    [ (1, 2); (1, 3); (1, 4); (2, 3); (2, 4); (3, 4);
      (5, 6); (6, 5); (5, 5); (6, 6) ]
    |> List.sort compare
  in
  let actual =
    Relation.fold (fun f acc -> (f.(0), f.(1)) :: acc) path [] |> List.sort compare
  in
  Alcotest.(check (list (pair int int))) "closure" expected actual

(* Same-generation: the classic non-linear recursive program. *)
let same_gen_test () =
  let parent = Relation.create ~name:"parent" ~arity:2 in
  let sg = Relation.create ~name:"sg" ~arity:2 in
  (*      1
         / \
        2   3
       / \   \
      4   5   6  *)
  List.iter
    (fun (c, p) -> ignore (Relation.add parent [| c; p |]))
    [ (2, 1); (3, 1); (4, 2); (5, 2); (6, 3) ];
  let rules =
    [
      rule "siblings" ~n_vars:3
        [ { hrel = sg; hargs = [| Hv 0; Hv 2 |] } ]
        [
          { rel = parent; args = [| V 0; V 1 |] };
          { rel = parent; args = [| V 2; V 1 |] };
        ];
      rule "up-down" ~n_vars:4
        [ { hrel = sg; hargs = [| Hv 0; Hv 3 |] } ]
        [
          { rel = parent; args = [| V 0; V 1 |] };
          { rel = sg; args = [| V 1; V 2 |] };
          { rel = parent; args = [| V 3; V 2 |] };
        ];
    ]
  in
  Engine.run rules;
  Alcotest.(check bool) "4 sg 6" true (Relation.mem sg [| 4; 6 |]);
  Alcotest.(check bool) "4 sg 5" true (Relation.mem sg [| 4; 5 |]);
  Alcotest.(check bool) "2 sg 3" true (Relation.mem sg [| 2; 3 |]);
  Alcotest.(check bool) "not 2 sg 6" false (Relation.mem sg [| 2; 6 |]);
  Alcotest.(check bool) "not 1 sg 4" false (Relation.mem sg [| 1; 4 |])

(* Constructor hooks: interning pairs through an OCaml function, as the
   analysis does for contexts. *)
let hook_test () =
  let item = Relation.create ~name:"item" ~arity:1 in
  let paired = Relation.create ~name:"paired" ~arity:2 in
  let table = Hashtbl.create 16 in
  let intern_pair env =
    let key = (env.(0), env.(0) * 2) in
    match Hashtbl.find_opt table key with
    | Some id -> id
    | None ->
      let id = Hashtbl.length table in
      Hashtbl.add table key id;
      id
  in
  for i = 0 to 4 do
    ignore (Relation.add item [| i |])
  done;
  Engine.run
    [
      rule "pair" ~n_vars:1
        [ { hrel = paired; hargs = [| Hv 0; Hf intern_pair |] } ]
        [ { rel = item; args = [| V 0 |] } ];
    ];
  Alcotest.(check int) "five pairs" 5 (Relation.cardinal paired);
  Alcotest.(check int) "five interned" 5 (Hashtbl.length table)

(* Multi-head rules fire all heads per binding. *)
let multi_head_test () =
  let src = Relation.create ~name:"src" ~arity:1 in
  let out1 = Relation.create ~name:"out1" ~arity:1 in
  let out2 = Relation.create ~name:"out2" ~arity:2 in
  ignore (Relation.add src [| 3 |]);
  Engine.run
    [
      rule "both" ~n_vars:1
        [
          { hrel = out1; hargs = [| Hv 0 |] };
          { hrel = out2; hargs = [| Hv 0; Hc 99 |] };
        ]
        [ { rel = src; args = [| V 0 |] } ];
    ];
  Alcotest.(check bool) "out1" true (Relation.mem out1 [| 3 |]);
  Alcotest.(check bool) "out2" true (Relation.mem out2 [| 3; 99 |])

(* Repeated variables in an atom must unify. *)
let repeated_var_test () =
  let e = Relation.create ~name:"e" ~arity:2 in
  let diag = Relation.create ~name:"diag" ~arity:1 in
  List.iter
    (fun f -> ignore (Relation.add e f))
    [ [| 1; 1 |]; [| 1; 2 |]; [| 3; 3 |] ];
  Engine.run
    [
      rule "diag" ~n_vars:1
        [ { hrel = diag; hargs = [| Hv 0 |] } ]
        [ { rel = e; args = [| V 0; V 0 |] } ];
    ];
  Alcotest.(check int) "two diagonal" 2 (Relation.cardinal diag);
  Alcotest.(check bool) "1" true (Relation.mem diag [| 1 |]);
  Alcotest.(check bool) "3" true (Relation.mem diag [| 3 |])

(* ------------------------------------------------------------------ *)
(* Linter                                                              *)
(* ------------------------------------------------------------------ *)

let lint_kinds rules = List.map (fun e -> e.Engine.lint_kind) (Engine.lint rules)

let lint_tests =
  [
    Alcotest.test_case "well-formed rules lint clean" `Quick (fun () ->
        let edge = Relation.create ~name:"edge" ~arity:2 in
        let path = Relation.create ~name:"path" ~arity:2 in
        ignore (Relation.add edge [| 1; 2 |]);
        let rules =
          [
            rule "base" ~n_vars:2
              [ { hrel = path; hargs = [| Hv 0; Hv 1 |] } ]
              [ { rel = edge; args = [| V 0; V 1 |] } ];
            rule "step" ~n_vars:3
              [ { hrel = path; hargs = [| Hv 0; Hv 2 |] } ]
              [
                { rel = path; args = [| V 0; V 1 |] };
                { rel = edge; args = [| V 1; V 2 |] };
              ];
          ]
        in
        Alcotest.(check int) "no findings" 0 (List.length (Engine.lint rules)));
    Alcotest.test_case "unbound head variable rejected" `Quick (fun () ->
        let edge = Relation.create ~name:"edge" ~arity:2 in
        let out = Relation.create ~name:"out" ~arity:2 in
        ignore (Relation.add edge [| 1; 2 |]);
        let rules =
          [
            (* head uses V 2 but the body binds only V 0 and V 1 *)
            rule "broken" ~n_vars:3
              [ { hrel = out; hargs = [| Hv 0; Hv 2 |] } ]
              [ { rel = edge; args = [| V 0; V 1 |] } ];
          ]
        in
        match Engine.lint rules with
        | e :: _ ->
          (* (a trailing [Unused_relation] finding on [out] is
             expected too — nothing reads it) *)
          Alcotest.(check bool)
            "kind" true
            (e.Engine.lint_kind = Engine.Unbound_head_var);
          Alcotest.(check bool) "hard" true (Engine.lint_is_hard e.Engine.lint_kind);
          Alcotest.(check string) "rule named" "broken" e.Engine.lint_rule;
          (* The message pinpoints the variable and the relation. *)
          let contains s sub =
            let n = String.length sub and h = String.length s in
            let rec at i = i + n <= h && (String.sub s i n = sub || at (i + 1)) in
            n = 0 || at 0
          in
          Alcotest.(check bool)
            "names the variable" true
            (contains e.Engine.lint_message "variable 2");
          Alcotest.(check bool)
            "names the relation" true
            (contains e.Engine.lint_message "out")
        | [] -> Alcotest.fail "expected at least one error");
    Alcotest.test_case "arity mismatch rejected on both sides" `Quick (fun () ->
        let bin = Relation.create ~name:"bin" ~arity:2 in
        let un = Relation.create ~name:"un" ~arity:1 in
        ignore (Relation.add bin [| 1; 2 |]);
        let rules =
          [
            rule "bad-body" ~n_vars:1
              [ { hrel = un; hargs = [| Hv 0 |] } ]
              [ { rel = bin; args = [| V 0 |] } ];
            rule "bad-head" ~n_vars:2
              [ { hrel = un; hargs = [| Hv 0; Hv 1 |] } ]
              [ { rel = bin; args = [| V 0; V 1 |] } ];
          ]
        in
        Alcotest.(check bool)
          "both flagged as Bad_arity (plus unused-relation info on un)" true
          (lint_kinds rules
          = [ Engine.Bad_arity; Engine.Bad_arity; Engine.Unused_relation ]));
    Alcotest.test_case "variable out of range rejected" `Quick (fun () ->
        let un = Relation.create ~name:"unr" ~arity:1 in
        ignore (Relation.add un [| 1 |]);
        let rules =
          [
            rule "oob" ~n_vars:1
              [ { hrel = un; hargs = [| Hv 0 |] } ]
              [ { rel = un; args = [| V 5 |] } ];
          ]
        in
        Alcotest.(check bool)
          "flagged" true
          (List.mem Engine.Var_out_of_range (lint_kinds rules)));
    Alcotest.test_case "never-fires is informational" `Quick (fun () ->
        let empty_edb = Relation.create ~name:"empty_edb" ~arity:1 in
        let out = Relation.create ~name:"outn" ~arity:1 in
        let rules =
          [
            rule "dead" ~n_vars:1
              [ { hrel = out; hargs = [| Hv 0 |] } ]
              [ { rel = empty_edb; args = [| V 0 |] } ];
          ]
        in
        (match lint_kinds rules with
        | [ Engine.Never_fires; Engine.Unused_relation ] -> ()
        | ks ->
          Alcotest.failf "expected [Never_fires; Unused_relation], got %d finding(s)"
            (List.length ks));
        Alcotest.(check bool)
          "soft" false
          (Engine.lint_is_hard Engine.Never_fires);
        (* Feeding the EDB clears the never-fires finding (the
           unused-relation one on [outn] legitimately stays). *)
        ignore (Relation.add empty_edb [| 1 |]);
        Alcotest.(check bool)
          "never-fires cleared once fed" true
          (lint_kinds rules = [ Engine.Unused_relation ]));
    Alcotest.test_case "derived-but-empty body is not never-fires" `Quick
      (fun () ->
        let a = Relation.create ~name:"a_rel" ~arity:1 in
        let b = Relation.create ~name:"b_rel" ~arity:1 in
        ignore (Relation.add a [| 1 |]);
        let rules =
          [
            rule "derive-b" ~n_vars:1
              [ { hrel = b; hargs = [| Hv 0 |] } ]
              [ { rel = a; args = [| V 0 |] } ];
            (* b is empty now but derivable, so reading it is fine *)
            rule "use-b" ~n_vars:1
              [ { hrel = a; hargs = [| Hv 0 |] } ]
              [ { rel = b; args = [| V 0 |] } ];
          ]
        in
        Alcotest.(check int) "no findings" 0 (List.length (Engine.lint rules)));
    Alcotest.test_case "unused relation is informational" `Quick (fun () ->
        let src = Relation.create ~name:"src_u" ~arity:1 in
        let sinka = Relation.create ~name:"sink_a" ~arity:1 in
        let sinkb = Relation.create ~name:"sink_b" ~arity:1 in
        ignore (Relation.add src [| 1 |]);
        let derive name rel body =
          rule name ~n_vars:1 [ { hrel = rel; hargs = [| Hv 0 |] } ] body
        in
        let once = [ { rel = src; args = [| V 0 |] } ] in
        let twice = [ { rel = src; args = [| V 0 |] }; { rel = src; args = [| V 0 |] } ] in
        (* Two (distinct) rules derive sink_a; it is still reported
           once, on the first deriver. *)
        let rules =
          [ derive "da1" sinka once; derive "da2" sinka twice; derive "db" sinkb once ]
        in
        (match Engine.lint rules with
        | [ ea; eb ] ->
          Alcotest.(check bool)
            "both unused" true
            (ea.Engine.lint_kind = Engine.Unused_relation
            && eb.Engine.lint_kind = Engine.Unused_relation);
          Alcotest.(check bool) "soft" false
            (Engine.lint_is_hard Engine.Unused_relation);
          Alcotest.(check string) "first deriver blamed" "da1" ea.Engine.lint_rule;
          Alcotest.(check string) "second relation's deriver" "db" eb.Engine.lint_rule
        | es -> Alcotest.failf "expected two findings, got %d" (List.length es));
        (* Reading the relation somewhere clears the finding. *)
        let reader =
          rule "reader" ~n_vars:1
            [ { hrel = sinkb; hargs = [| Hv 0 |] } ]
            [ { rel = sinka; args = [| V 0 |] } ]
        in
        Alcotest.(check bool)
          "only sink_b left once sink_a is read" true
          (lint_kinds (rules @ [ reader ]) = [ Engine.Unused_relation ]));
    Alcotest.test_case "duplicate rule is informational" `Quick (fun () ->
        let edge = Relation.create ~name:"edge_d" ~arity:2 in
        let out = Relation.create ~name:"out_d" ~arity:2 in
        ignore (Relation.add edge [| 1; 2 |]);
        let mk name c =
          rule name ~n_vars:2
            [ { hrel = out; hargs = [| Hv 0; Hc c |] } ]
            [
              { rel = edge; args = [| V 0; V 1 |] };
              { rel = out; args = [| V 1; V 0 |] };
            ]
        in
        let rules = [ mk "orig" 7; mk "dup" 7; mk "not-dup" 8 ] in
        (match
           List.filter
             (fun e -> e.Engine.lint_kind = Engine.Duplicate_rule)
             (Engine.lint rules)
         with
        | [ e ] ->
          Alcotest.(check bool) "soft" false
            (Engine.lint_is_hard Engine.Duplicate_rule);
          Alcotest.(check string) "later rule blamed" "dup" e.Engine.lint_rule;
          let contains s sub =
            let n = String.length sub and h = String.length s in
            let rec at i = i + n <= h && (String.sub s i n = sub || at (i + 1)) in
            n = 0 || at 0
          in
          Alcotest.(check bool)
            "names the original" true
            (contains e.Engine.lint_message "orig")
        | es -> Alcotest.failf "expected one duplicate, got %d" (List.length es));
        (* Rules with computed (Hf) head terms are never compared. *)
        let hf name =
          rule name ~n_vars:2
            [ { hrel = out; hargs = [| Hv 0; Hf (fun env -> env.(1)) |] } ]
            [ { rel = edge; args = [| V 0; V 1 |] } ]
        in
        Alcotest.(check bool)
          "hf rules not flagged as duplicates" true
          (List.for_all
             (fun e -> e.Engine.lint_kind <> Engine.Duplicate_rule)
             (Engine.lint [ hf "hf1"; hf "hf2" ])));
  ]

let tests =
  relation_tests
  @ [
      Alcotest.test_case "transitive closure" `Quick tc_test;
      Alcotest.test_case "same generation" `Quick same_gen_test;
      Alcotest.test_case "constructor hooks" `Quick hook_test;
      Alcotest.test_case "multi-head rules" `Quick multi_head_test;
      Alcotest.test_case "repeated variables unify" `Quick repeated_var_test;
    ]
  @ lint_tests
