(** Union-find ([Pta_solver.Unify]) and the bucketed priority queue
    ([Pta_solver.Pqueue]): the invariants the solver's online cycle
    elimination leans on — deterministic min-id representatives, path
    compression, and lowest-priority-first popping. *)

module Unify = Pta_solver.Unify
module Pqueue = Pta_solver.Pqueue

(* Naive model: a class is the sorted list of its members; the canonical
   representative is the head (smallest member). *)
module Model = struct
  type t = int list list ref

  let create n : t = ref (List.init n (fun i -> [ i ]))

  let find (m : t) i =
    List.hd (List.find (fun cls -> List.mem i cls) !m)

  let union (m : t) a b =
    let ca = List.find (fun cls -> List.mem a cls) !m in
    let cb = List.find (fun cls -> List.mem b cls) !m in
    if ca != cb then
      m := List.sort_uniq compare (ca @ cb)
           :: List.filter (fun cls -> cls != ca && cls != cb) !m;
    find m a
end

let pairs_arb n ops =
  QCheck.(list_of_size Gen.(int_bound ops)
            (pair (int_bound (n - 1)) (int_bound (n - 1))))

let prop name gen f = QCheck.Test.make ~count:300 ~name gen f

let qcheck_tests =
  [
    prop "find agrees with min-member model" (pairs_arb 64 80) (fun ops ->
        let u = Unify.create () in
        Unify.ensure u 64;
        let m = Model.create 64 in
        List.iter
          (fun (a, b) ->
            let cu = Unify.union u a b in
            let cm = Model.union m a b in
            if cu <> cm then QCheck.Test.fail_reportf
                "union (%d,%d): unify says %d, model says %d" a b cu cm)
          ops;
        List.for_all (fun i -> Unify.find u i = Model.find m i)
          (List.init 64 Fun.id));
    prop "canonical id independent of union order" (pairs_arb 48 60)
      (fun ops ->
        let build ops =
          let u = Unify.create ~capacity:8 () in
          Unify.ensure u 48;
          List.iter (fun (a, b) -> ignore (Unify.union u a b)) ops;
          List.init 48 (Unify.find u)
        in
        build ops = build (List.rev ops));
    prop "find idempotent and same consistent" (pairs_arb 32 40) (fun ops ->
        let u = Unify.create () in
        Unify.ensure u 32;
        List.iter (fun (a, b) -> ignore (Unify.union u a b)) ops;
        List.for_all
          (fun i ->
            let r = Unify.find u i in
            Unify.find u r = r
            && Unify.same u i r
            && List.for_all
                 (fun j -> Unify.same u i j = (Unify.find u i = Unify.find u j))
                 (List.init 32 Fun.id))
          (List.init 32 Fun.id));
    prop "n_merged = length - number of classes" (pairs_arb 40 50) (fun ops ->
        let u = Unify.create () in
        Unify.ensure u 40;
        List.iter (fun (a, b) -> ignore (Unify.union u a b)) ops;
        let classes =
          List.sort_uniq compare (List.init 40 (Unify.find u))
        in
        Unify.n_merged u = Unify.length u - List.length classes);
  ]

let unit_tests =
  [
    Alcotest.test_case "singletons are their own representative" `Quick
      (fun () ->
        let u = Unify.create ~capacity:2 () in
        Unify.ensure u 10;
        Alcotest.(check int) "length" 10 (Unify.length u);
        for i = 0 to 9 do
          Alcotest.(check int) "find i = i" i (Unify.find u i)
        done;
        Alcotest.(check int) "nothing merged" 0 (Unify.n_merged u));
    Alcotest.test_case "representative is the smallest member" `Quick
      (fun () ->
        let u = Unify.create () in
        Unify.ensure u 8;
        Alcotest.(check int) "union 5 7 -> 5" 5 (Unify.union u 5 7);
        Alcotest.(check int) "union 7 3 -> 3" 3 (Unify.union u 7 3);
        Alcotest.(check int) "find 5" 3 (Unify.find u 5);
        Alcotest.(check int) "find 7" 3 (Unify.find u 7);
        (* An unrelated union must not disturb the class. *)
        ignore (Unify.union u 0 1);
        Alcotest.(check int) "find 7 after unrelated union" 3 (Unify.find u 7);
        Alcotest.(check int) "re-union is a no-op" 3 (Unify.union u 5 3);
        Alcotest.(check int) "n_merged" 3 (Unify.n_merged u));
    Alcotest.test_case "find compresses paths" `Quick (fun () ->
        let u = Unify.create () in
        Unify.ensure u 64;
        (* Tournament-merge equal-rank roots: union-by-rank then grows a
           genuinely deep tree (a chain would just build a star).  Some
           node ends up at depth >= 2, and find must shorten its chain. *)
        let stride = ref 1 in
        while !stride < 64 do
          let i = ref 0 in
          while !i + !stride < 64 do
            ignore (Unify.union u !i (!i + !stride));
            i := !i + (2 * !stride)
          done;
          stride := 2 * !stride
        done;
        let deep =
          List.fold_left
            (fun best i -> if Unify.depth u i > Unify.depth u best then i else best)
            0
            (List.init 64 Fun.id)
        in
        let before = Unify.depth u deep in
        Alcotest.(check bool) "some chain has depth >= 2" true (before >= 2);
        ignore (Unify.find u deep);
        let after = Unify.depth u deep in
        Alcotest.(check bool)
          (Printf.sprintf "find shortened the chain (%d -> %d)" before after)
          true
          (after < before);
        Alcotest.(check int) "representative still 0" 0 (Unify.find u deep));
    Alcotest.test_case "ensure growth preserves classes" `Quick (fun () ->
        let u = Unify.create ~capacity:1 () in
        Unify.ensure u 4;
        ignore (Unify.union u 1 3);
        Unify.ensure u 100;
        Alcotest.(check int) "length" 100 (Unify.length u);
        Alcotest.(check int) "old class intact" 1 (Unify.find u 3);
        Alcotest.(check int) "new id is a singleton" 99 (Unify.find u 99);
        (* ensure with a smaller bound is a no-op *)
        Unify.ensure u 10;
        Alcotest.(check int) "length unchanged" 100 (Unify.length u));
  ]

(* ------------------------------------------------------------------ *)
(* Priority queue                                                      *)
(* ------------------------------------------------------------------ *)

let drain q =
  let rec go acc = if Pqueue.is_empty q then List.rev acc else go (Pqueue.pop q :: acc) in
  go []

let pqueue_tests =
  [
    Alcotest.test_case "pq: pops lowest priority first, LIFO within" `Quick
      (fun () ->
        let q = Pqueue.create () in
        Pqueue.push q ~prio:2 20;
        Pqueue.push q ~prio:0 1;
        Pqueue.push q ~prio:1 10;
        Pqueue.push q ~prio:0 2;
        Pqueue.push q ~prio:1 11;
        Alcotest.(check int) "length" 5 (Pqueue.length q);
        Alcotest.(check (list int)) "drain order" [ 2; 1; 11; 10; 20 ] (drain q);
        Alcotest.(check bool) "empty" true (Pqueue.is_empty q));
    Alcotest.test_case "pq: cursor backs up for late low-priority pushes"
      `Quick (fun () ->
        let q = Pqueue.create () in
        Pqueue.push q ~prio:5 50;
        Alcotest.(check int) "pop high" 50 (Pqueue.pop q);
        (* The cursor sits at bucket 5; a lower-priority push must still
           come out first. *)
        Pqueue.push q ~prio:5 51;
        Pqueue.push q ~prio:1 10;
        Alcotest.(check (list int)) "low first" [ 10; 51 ] (drain q));
    Alcotest.test_case "pq: negative priorities clamp to 0" `Quick (fun () ->
        let q = Pqueue.create () in
        Pqueue.push q ~prio:3 30;
        Pqueue.push q ~prio:(-7) 1;
        Alcotest.(check int) "clamped entry pops first" 1 (Pqueue.pop q);
        Alcotest.(check int) "then the real one" 30 (Pqueue.pop q));
    Alcotest.test_case "pq: pop on empty raises, clear resets" `Quick
      (fun () ->
        let q = Pqueue.create () in
        Alcotest.check_raises "empty pop" (Invalid_argument "Pqueue.pop: empty")
          (fun () -> ignore (Pqueue.pop q));
        Pqueue.push q ~prio:0 1;
        Pqueue.push q ~prio:9 2;
        Pqueue.clear q;
        Alcotest.(check bool) "cleared" true (Pqueue.is_empty q);
        Alcotest.(check int) "length 0" 0 (Pqueue.length q);
        Pqueue.push q ~prio:4 7;
        Alcotest.(check int) "usable after clear" 7 (Pqueue.pop q));
    QCheck_alcotest.to_alcotest
      (prop "pq: drain is sorted by priority, respects multiset"
         QCheck.(list_of_size Gen.(int_bound 120)
                   (pair (int_bound 12) (int_bound 1000)))
         (fun entries ->
           let q = Pqueue.create () in
           List.iter (fun (p, v) -> Pqueue.push q ~prio:p (p * 10_000 + v))
             entries;
           let out = drain q in
           let prios = List.map (fun v -> v / 10_000) out in
           List.sort compare prios = prios
           && List.sort compare out
              = List.sort compare
                  (List.map (fun (p, v) -> (p * 10_000) + v) entries)));
  ]

(* ------------------------------------------------------------------ *)
(* Work stealing                                                       *)
(* ------------------------------------------------------------------ *)

(* Model: the queue as a multiset of (prio, entry) pairs.  [pop] must
   return an entry of the minimum priority present, [steal] must take
   only from the maximum-priority bucket, and [front_prio] must always
   name the minimum — the lower-bound invariant the parallel drain's
   bucket boundaries rest on. *)
let steal_tests =
  let min_prio model = List.fold_left (fun m (p, _) -> min m p) max_int model in
  let max_prio model = List.fold_left (fun m (p, _) -> max m p) (-1) model in
  let remove_one model pair =
    let rec go acc = function
      | [] -> None
      | x :: rest when x = pair -> Some (List.rev_append acc rest)
      | x :: rest -> go (x :: acc) rest
    in
    go [] model
  in
  [
    Alcotest.test_case "pq: steal takes the highest bucket only" `Quick
      (fun () ->
        let q = Pqueue.create () in
        Alcotest.(check (list (pair int int))) "steal on empty" []
          (Pqueue.steal q ~max:4);
        List.iter
          (fun (p, v) -> Pqueue.push q ~prio:p v)
          [ (0, 1); (0, 2); (3, 30); (3, 31); (3, 32); (1, 10) ];
        Alcotest.(check (list (pair int int))) "max <= 0 steals nothing" []
          (Pqueue.steal q ~max:0);
        let batch = Pqueue.steal q ~max:2 in
        Alcotest.(check int) "batch size" 2 (List.length batch);
        List.iter
          (fun (p, v) ->
            Alcotest.(check int) "stolen from prio 3" 3 p;
            Alcotest.(check bool) "stolen entry real" true
              (List.mem v [ 30; 31; 32 ]))
          batch;
        Alcotest.(check int) "owner keeps the rest" 4 (Pqueue.length q);
        Alcotest.(check int) "front_prio untouched" 0 (Pqueue.front_prio q);
        (* Draining the highest bucket entirely moves the steal target
           down to the next nonempty bucket. *)
        let rest = Pqueue.steal q ~max:8 in
        Alcotest.(check int) "over-asking empties the bucket" 1
          (List.length rest);
        let next = Pqueue.steal q ~max:8 in
        List.iter
          (fun (p, _) ->
            Alcotest.(check int) "next-highest bucket" 1 p)
          next);
    Alcotest.test_case "pq: steal backs the hi watermark down past a \
                        cleared cursor" `Quick (fun () ->
        let q = Pqueue.create () in
        Pqueue.push q ~prio:7 70;
        Pqueue.push q ~prio:2 20;
        (* Steal the only prio-7 entry, then push to 7 again: the
           watermark must recover rather than scan a stale range. *)
        (match Pqueue.steal q ~max:4 with
        | [ (7, 70) ] -> ()
        | other ->
          Alcotest.failf "unexpected batch size %d" (List.length other));
        Pqueue.push q ~prio:7 71;
        Alcotest.(check (list (pair int int))) "re-grown bucket stolen"
          [ (7, 71) ]
          (Pqueue.steal q ~max:1);
        Alcotest.(check int) "pop drains the low bucket" 20 (Pqueue.pop q);
        Alcotest.(check bool) "empty at the end" true (Pqueue.is_empty q));
    QCheck_alcotest.to_alcotest
      (prop "pq: push/pop/steal interleavings keep the priority bounds"
         QCheck.(
           list_of_size
             Gen.(int_bound 160)
             (oneof
                [
                  map
                    (fun (p, v) -> `Push (p, v))
                    (pair (int_bound 12) (int_bound 1000));
                  always `Pop;
                  map (fun n -> `Steal (n + 1)) (int_bound 6);
                ]))
         (fun ops ->
           let q = Pqueue.create () in
           let model = ref [] in
           let uid = ref 0 in
           List.for_all
             (fun op ->
               let consistent =
                 Pqueue.length q = List.length !model
                 && (!model = []
                    || Pqueue.front_prio q = min_prio !model)
               in
               consistent
               &&
               match op with
               | `Push (p, _) ->
                 incr uid;
                 Pqueue.push q ~prio:p !uid;
                 model := (p, !uid) :: !model;
                 true
               | `Pop ->
                 if !model = [] then true
                 else
                   let v = Pqueue.pop q in
                   let p = min_prio !model in
                   (match remove_one !model (p, v) with
                   | Some m ->
                     model := m;
                     true
                   | None -> false)
               | `Steal n -> (
                 let batch = Pqueue.steal q ~max:n in
                 if !model = [] then batch = []
                 else
                   let hi = max_prio !model in
                   List.length batch <= n
                   && batch <> []
                   && List.for_all
                        (fun (p, v) ->
                          p = hi
                          &&
                          match remove_one !model (p, v) with
                          | Some m ->
                            model := m;
                            true
                          | None -> false)
                        batch))
             ops
           && Pqueue.length q = List.length !model));
  ]

let tests =
  unit_tests
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests
  @ pqueue_tests @ steal_tests
