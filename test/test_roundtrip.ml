(** Round-trip property: decompiling a program to MJ and re-lowering it
    preserves the analysis results (decompiled code gains one extra
    return-copy per non-void method, so set-size metrics may differ by
    copies; the client metrics must be identical). *)

module Ir = Pta_ir.Ir
module Metrics = Pta_clients.Metrics
module Solver = Pta_solver.Solver

let key_metrics program strategy_name =
  let factory = Option.get (Pta_context.Strategies.by_name strategy_name) in
  let m = Metrics.compute (Solver.solve program (factory program)) in
  ( m.Metrics.call_graph_edges,
    m.Metrics.reachable_methods,
    m.Metrics.poly_vcalls,
    m.Metrics.may_fail_casts,
    m.Metrics.total_casts,
    m.Metrics.uncaught_exceptions )

let check_roundtrip ~name src =
  let original = Pta_frontend.Frontend.program_of_string ~file:name src in
  let printed = Pta_frontend.To_mj.program_to_source original in
  let reparsed =
    try Pta_frontend.Frontend.program_of_string ~file:(name ^ "-roundtrip") printed
    with Pta_frontend.Srcloc.Error (pos, msg) ->
      Alcotest.failf "%s: reparse failed: %s at %s:%d:%d\n--- printed ---\n%s" name
        msg pos.Pta_frontend.Srcloc.file pos.Pta_frontend.Srcloc.line
        pos.Pta_frontend.Srcloc.col printed
  in
  List.iter
    (fun strategy ->
      let a = key_metrics original strategy in
      let b = key_metrics reparsed strategy in
      if a <> b then
        let p (e, r, v, c, t, u) =
          Printf.sprintf "edges=%d reach=%d poly=%d casts=%d/%d uncaught=%d" e r v
            c t u
        in
        Alcotest.failf "%s/%s: original %s vs reparsed %s" name strategy (p a) (p b))
    [ "insens"; "1obj"; "SB-1obj"; "2obj+H"; "S-2obj+H" ]

let battery =
  [
    ("inheritance", Test_differential.program_inheritance);
    ("containers", Test_differential.program_containers);
    ("statics", Test_differential.program_statics);
    ("recursion", Test_differential.program_recursion);
    ("static-fields", Test_differential.program_static_fields);
    ("exceptions", Test_differential.program_exceptions);
  ]

let tests =
  List.map
    (fun (name, src) ->
      Alcotest.test_case ("roundtrip " ^ name) `Quick (fun () ->
          check_roundtrip ~name src))
    battery
  @ [
      Alcotest.test_case "roundtrip tiny workload" `Quick (fun () ->
          check_roundtrip ~name:"tiny"
            (Pta_workloads.Workloads.source
               (Option.get (Pta_workloads.Profile.by_name "tiny"))));
      Alcotest.test_case "roundtrip fuzzed programs" `Quick (fun () ->
          for seed = 100 to 110 do
            let rng = Pta_workloads.Rng.create (Int64.of_int seed) in
            let program = Test_fuzz.random_program rng in
            let printed = Pta_frontend.To_mj.program_to_source program in
            let reparsed =
              Pta_frontend.Frontend.program_of_string
                ~file:(Printf.sprintf "fuzz-%d" seed) printed
            in
            let a = key_metrics program "1obj" in
            let b = key_metrics reparsed "1obj" in
            if a <> b then Alcotest.failf "fuzz roundtrip %d diverged" seed
          done);
    ]
