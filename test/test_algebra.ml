(** The strategy algebra's expression language: the canonical printer
    and the parser must round-trip every valid term, the validator must
    reject malformed terms with actionable messages, and the compiled
    constructor tables must match the paper's equations. *)

module A = Pta_context.Algebra
module Strategies = Pta_context.Strategies

(* ------------------------------------------------------------------ *)
(* A generator of valid terms                                          *)
(* ------------------------------------------------------------------ *)

let gen_base =
  QCheck.Gen.(
    oneofl [ `Call; `Obj; `Type ] >>= fun kind ->
    int_range 1 3 >>= fun k ->
    int_range 0 (min k 2) >>= fun h ->
    return
      (match kind with
      | `Call -> A.call ~h k
      | `Obj -> A.obj ~h k
      | `Type -> A.typ ~h k))

(* Hybrid composers need an object-/type-sensitive base; [uniform] and
   [selective] also add an element, so their base is capped at k = 2. *)
let gen_hybrid_base ~max_k =
  QCheck.Gen.(
    oneofl [ `Obj; `Type ] >>= fun kind ->
    int_range 1 max_k >>= fun k ->
    int_range 0 (min k 2) >>= fun h ->
    return (match kind with `Obj -> A.obj ~h k | _ -> A.typ ~h k))

let gen_elem ~pos ~depth =
  let leaves =
    (if depth > 0 then
       List.init depth (fun i -> A.Caller i)
     else [])
    @ [ A.Star ]
    @ (match pos with
      | `Record -> [ A.alloc_site ]
      | `Merge -> [ A.callsite; A.receiver_obj; A.receiver_type; A.Hctx 0 ]
      | `Static -> [ A.callsite ])
  in
  QCheck.Gen.(
    let leaf = oneofl leaves in
    if depth > 0 then
      frequency
        [
          (4, leaf);
          ( 1,
            int_range 0 (depth - 1) >>= fun i ->
            leaf >>= fun a ->
            leaf >>= fun b -> return (A.If_site (i, a, b)) );
        ]
    else leaf)

let gen_raw =
  QCheck.Gen.(
    int_range 1 3 >>= fun depth ->
    int_range 0 2 >>= fun n_record ->
    list_repeat n_record (gen_elem ~pos:`Record ~depth) >>= fun record ->
    list_repeat depth (gen_elem ~pos:`Merge ~depth) >>= fun merge ->
    list_repeat depth (gen_elem ~pos:`Static ~depth) >>= fun merge_static ->
    return (A.raw ~depth ~record ~merge ~merge_static))

let gen_fixed =
  QCheck.Gen.(
    frequency
      [
        (1, return A.insens);
        (4, gen_base);
        (2, map A.uniform (gen_hybrid_base ~max_k:2));
        (2, map A.selective_b (gen_hybrid_base ~max_k:2));
        (2, map A.selective_a (gen_hybrid_base ~max_k:3));
        (1, map A.form_adaptive (oneofl [ A.obj ~h:1 2; A.typ ~h:1 2 ]));
        (2, gen_raw);
      ])

let gen_adaptive =
  QCheck.Gen.(
    oneofl
      [
        (A.obj ~h:1 2, A.obj 1);
        (A.selective_b (A.obj ~h:1 2), A.obj ~h:1 2);
        (A.typ ~h:1 2, A.insens);
      ]
    >>= fun (deep, shallow) ->
    int_range 1 10 >>= fun hot -> return (A.adaptive ~deep ~shallow ~hot))

let gen_per_method =
  QCheck.Gen.(
    let glob = oneofl [ "List*"; "Map.get*"; "*init*"; "Main.main/0" ] in
    int_range 1 2 >>= fun n ->
    list_repeat n (pair glob gen_fixed) >>= fun cases ->
    gen_fixed >>= fun default -> return (A.per_method cases ~default))

let gen_term =
  QCheck.Gen.(
    frequency
      [
        (6, gen_fixed);
        (1, gen_adaptive);
        (1, gen_per_method);
        (1, map A.cut_shortcut (oneof [ gen_fixed; gen_adaptive; gen_per_method ]));
      ])

let term_arb =
  QCheck.make ~print:A.to_string gen_term

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let qcheck_tests =
  [
    QCheck.Test.make ~count:500 ~name:"of_string (to_string t) = t" term_arb
      (fun t ->
        match A.of_string (A.to_string t) with
        | Ok t' -> A.equal t t'
        | Error msg -> QCheck.Test.fail_reportf "rejected own print: %s" msg);
    QCheck.Test.make ~count:500 ~name:"printing is round-trip stable" term_arb
      (fun t ->
        match A.parse (A.to_string t) with
        | Ok t' -> String.equal (A.to_string t) (A.to_string t')
        | Error msg -> QCheck.Test.fail_reportf "parse failed: %s" msg);
    QCheck.Test.make ~count:500 ~name:"generated terms validate" term_arb
      (fun t ->
        match A.validate t with
        | Ok () -> true
        | Error msg -> QCheck.Test.fail_reportf "invalid: %s" msg);
  ]

(* ------------------------------------------------------------------ *)
(* Goldens                                                             *)
(* ------------------------------------------------------------------ *)

let check_prints term expected () =
  Alcotest.(check string) expected expected (A.to_string term);
  match A.of_string expected with
  | Ok t -> Alcotest.(check bool) "parses back" true (A.equal term t)
  | Error msg -> Alcotest.failf "canonical form rejected: %s" msg

let printing_tests =
  [
    Alcotest.test_case "base forms" `Quick (fun () ->
        check_prints A.insens "insens" ();
        check_prints (A.call 1) "call 1" ();
        check_prints (A.obj ~h:1 2) "obj 2 1" ();
        check_prints (A.typ ~h:2 3) "type 3 2" ());
    Alcotest.test_case "composer forms" `Quick (fun () ->
        check_prints (A.uniform (A.obj ~h:1 2)) "uniform(obj 2 1)" ();
        check_prints (A.selective_b (A.obj 1)) "selective(obj 1)" ();
        check_prints (A.selective_a (A.obj 1)) "selective_a(obj 1)" ();
        check_prints (A.form_adaptive (A.obj ~h:1 2)) "form_adaptive(obj 2 1)" ();
        check_prints (A.cut_shortcut A.insens) "cs(insens)" ();
        check_prints
          (A.adaptive ~deep:(A.obj ~h:1 2) ~shallow:(A.obj 1) ~hot:3)
          "adaptive(obj 2 1, obj 1, 3)" ());
    Alcotest.test_case "per_method and raw forms" `Quick (fun () ->
        check_prints
          (A.per_method [ ("List*", A.obj ~h:1 2) ] ~default:A.insens)
          "per_method(\"List*\": obj 2 1, insens)" ();
        check_prints
          (A.raw ~depth:2 ~record:[ A.Caller 0 ]
             ~merge:[ A.receiver_obj; A.Hctx 0 ]
             ~merge_static:[ A.callsite; A.Caller 0 ])
          "raw(2, [caller 0], [recv, hctx 0], [site, caller 0])" ());
    Alcotest.test_case "selective_b is an accepted alias" `Quick (fun () ->
        match A.of_string "selective_b(obj 1)" with
        | Ok t ->
          Alcotest.(check bool) "= selective" true
            (A.equal t (A.selective_b (A.obj 1)));
          Alcotest.(check string) "prints canonically" "selective(obj 1)"
            (A.to_string t)
        | Error msg -> Alcotest.failf "alias rejected: %s" msg);
    Alcotest.test_case "whitespace is insignificant" `Quick (fun () ->
        match A.of_string "  selective( obj  2   1 ) " with
        | Ok t ->
          Alcotest.(check string) "canonical" "selective(obj 2 1)" (A.to_string t)
        | Error msg -> Alcotest.failf "rejected: %s" msg);
    Alcotest.test_case "every registry preset round-trips" `Quick (fun () ->
        List.iter
          (fun (p : Strategies.preset) ->
            match A.of_string (A.to_string p.Strategies.term) with
            | Ok t ->
              if not (A.equal t p.Strategies.term) then
                Alcotest.failf "%s: reparse differs" p.Strategies.name
            | Error msg ->
              Alcotest.failf "%s: canonical form rejected: %s"
                p.Strategies.name msg)
          Strategies.presets);
  ]

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let rejections =
  [
    ("uniform(call 1)", "object- or type-sensitive");
    ("uniform(insens)", "base must be a base analysis");
    ("form_adaptive(obj 1)", "obj 2 1 or type 2 1");
    ("obj 4", "between 1 and 3");
    ("obj 2 3", "between 0 and 2");
    ("call 1 2", "cannot exceed context depth");
    ("uniform(obj 3)", "exceeds the maximum");
    ("raw(1, [site], [site], [site])", "site is not valid in the record row");
    ("raw(2, [caller 0], [recv], [site, caller 0])", "merge row has 1 elements");
    ("raw(2, [], [site, recv], [site, recv])", "recv is only valid in the merge row");
    ("raw(2, [caller 0], [hctx 2, recv], [site, caller 0])", "hctx index 2 out of range");
    ("raw(2, [caller 3], [site, recv], [site, caller 0])", "caller index 3 out of range");
    ("cs(cs(insens))", "do not nest");
    ("adaptive(obj 1, obj 2 1, 3)", "shallower than");
    ("adaptive(obj 2 1, obj 1, 0)", "hot threshold");
    ("per_method(\"\": obj 1, insens)", "empty glob");
    ("frobnicate(obj 1)", "unknown combinator");
    ("obj 1 1 1", "trailing input");
    ("selective(obj 1", "end of input");
    ("obj 2 @", "unexpected character");
    ("", "empty strategy expression");
  ]

let rejection_tests =
  [
    Alcotest.test_case "malformed expressions are rejected" `Quick (fun () ->
        List.iter
          (fun (expr, fragment) ->
            match A.of_string expr with
            | Ok t ->
              Alcotest.failf "%S was accepted (as %s)" expr (A.to_string t)
            | Error msg ->
              if not (contains ~needle:fragment msg) then
                Alcotest.failf "%S: error %S does not mention %S" expr msg
                  fragment)
          rejections);
  ]

(* ------------------------------------------------------------------ *)
(* Compiled constructor tables                                         *)
(* ------------------------------------------------------------------ *)

let spec_eq (a : A.spec) (b : A.spec) =
  a.A.depth = b.A.depth && a.A.record = b.A.record && a.A.merge = b.A.merge
  && a.A.merge_static = b.A.merge_static

let check_spec name term expected =
  match A.spec_of term with
  | Ok s ->
    if not (spec_eq s expected) then
      Alcotest.failf "%s: table is raw(%d, ...) not the expected shape" name
        s.A.depth
  | Error msg -> Alcotest.failf "%s: no table: %s" name msg

let mk ~depth ~record ~merge ~merge_static =
  {
    A.depth;
    record = Array.of_list record;
    merge = Array.of_list merge;
    merge_static = Array.of_list merge_static;
  }

let spec_tests =
  [
    Alcotest.test_case "tables match the paper's equations" `Quick (fun () ->
        check_spec "2obj+H" (A.obj ~h:1 2)
          (mk ~depth:2 ~record:[ A.Caller 0 ]
             ~merge:[ A.receiver_obj; A.Hctx 0 ]
             ~merge_static:[ A.Caller 0; A.Caller 1 ]);
        check_spec "2call+H" (A.call ~h:1 2)
          (mk ~depth:2 ~record:[ A.Caller 0 ]
             ~merge:[ A.callsite; A.Caller 0 ]
             ~merge_static:[ A.callsite; A.Caller 0 ]);
        check_spec "U-2obj+H" (A.uniform (A.obj ~h:1 2))
          (mk ~depth:3 ~record:[ A.Caller 0 ]
             ~merge:[ A.receiver_obj; A.Hctx 0; A.callsite ]
             ~merge_static:[ A.Caller 0; A.Caller 1; A.callsite ]);
        check_spec "S-2obj+H" (A.selective_b (A.obj ~h:1 2))
          (mk ~depth:3 ~record:[ A.Caller 0 ]
             ~merge:[ A.receiver_obj; A.Hctx 0; A.Star ]
             ~merge_static:[ A.Caller 0; A.callsite; A.Caller 1 ]);
        check_spec "SA-1obj" (A.selective_a (A.obj 1))
          (mk ~depth:1 ~record:[] ~merge:[ A.receiver_obj ]
             ~merge_static:[ A.callsite ]);
        check_spec "A-2obj+H" (A.form_adaptive (A.obj ~h:1 2))
          (mk ~depth:3
             ~record:[ A.If_site (1, A.Caller 1, A.Caller 0) ]
             ~merge:[ A.receiver_obj; A.Hctx 0; A.Star ]
             ~merge_static:[ A.Caller 0; A.callsite; A.Caller 1 ]));
    Alcotest.test_case "callee-dispatched terms have no fixed table" `Quick
      (fun () ->
        List.iter
          (fun term ->
            match A.spec_of term with
            | Ok _ -> Alcotest.failf "%s: unexpected table" (A.to_string term)
            | Error _ -> ())
          [
            A.adaptive ~deep:(A.obj ~h:1 2) ~shallow:(A.obj 1) ~hot:3;
            A.per_method [ ("*", A.obj 1) ] ~default:A.insens;
            A.cut_shortcut A.insens;
          ]);
  ]

let tests =
  printing_tests @ rejection_tests @ spec_tests
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests
