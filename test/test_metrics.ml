(** Tests for the pta_metrics registry and the bench snapshot codec:
    exposition determinism, null-registry transparency of the solver,
    histogram bucket semantics, v1/v2 snapshot round-tripping, and the
    regression comparator's verdicts. *)

module Registry = Pta_metrics.Registry
module Snapshot = Pta_report.Bench_snapshot
module Solver = Pta_solver.Solver
module Intset = Pta_solver.Intset
module Memstats = Pta_obs.Memstats
module Census = Pta_obs.Census
module Json = Pta_obs.Json
module Metrics = Pta_clients.Metrics

let tiny_program () =
  Pta_workloads.Workloads.program
    (Option.get (Pta_workloads.Profile.by_name "tiny"))

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

(* The same sequence of updates must expose byte-identically, whatever
   order families and label sets were registered in. *)
let exposition_deterministic_test () =
  let build order_flipped =
    let r = Registry.create ~labels:[ ("benchmark", "tiny") ] () in
    let reg_counter k =
      Registry.counter r ~help:"Edges walked" ~labels:[ ("kind", k) ]
        "pta_test_edges_total"
    in
    let kinds = [ "move"; "load"; "store" ] in
    let kinds = if order_flipped then List.rev kinds else kinds in
    List.iter (fun k -> Registry.add (reg_counter k) 7) kinds;
    let g = Registry.gauge r ~help:"Nodes" "pta_test_nodes" in
    Registry.set g 42.;
    let h =
      Registry.histogram r ~buckets:(Registry.pow2_buckets 4) "pta_test_sizes"
    in
    List.iter (Registry.observe_int h) [ 1; 2; 3; 9; 100 ];
    Registry.to_openmetrics r
  in
  let a = build false and b = build true in
  Alcotest.(check string) "byte-identical" a b;
  Alcotest.(check bool)
    "terminated by EOF" true
    (String.length a > 6
    && String.equal (String.sub a (String.length a - 6) 6) "# EOF\n")

(* JSON exposition must be deterministic too (it lands in --stats-json
   and bench snapshots). *)
let json_deterministic_test () =
  let build () =
    let r = Registry.create () in
    Registry.incr (Registry.counter r "pta_test_total");
    Registry.set (Registry.gauge r "pta_test_gauge") 3.5;
    Json.to_string (Registry.to_json r)
  in
  Alcotest.(check string) "same JSON" (build ()) (build ())

(* The null registry hands out dummy handles: updates are dead stores,
   exposition is empty, and no family is ever created. *)
let null_registry_test () =
  let r = Registry.null in
  Alcotest.(check bool) "is_null" true (Registry.is_null r);
  let c = Registry.counter r "pta_test_total" in
  Registry.incr c;
  Registry.add c 10;
  let g = Registry.gauge r "pta_test_gauge" in
  Registry.set g 1.;
  let h = Registry.histogram r ~buckets:[ 1.; 2. ] "pta_test_h" in
  Registry.observe h 1.5;
  Alcotest.(check string) "empty exposition" "# EOF\n" (Registry.to_openmetrics r);
  Alcotest.(check bool)
    "live registry is not null" false
    (Registry.is_null (Registry.create ()))

(* Running the solver with a live registry must not change what it
   computes, and the instrumented gauges must agree with the solver's
   own numbers. *)
let solver_transparent_test () =
  let program = tiny_program () in
  let factory = Option.get (Pta_context.Strategies.by_name "S-2obj+H") in
  let bare = Solver.solve program (factory program) in
  let r = Registry.create () in
  let config = Solver.Config.make ~metrics:r () in
  let metered = Solver.solve ~config program (factory program) in
  Alcotest.(check bool)
    "identical metric bundles" true
    (Metrics.compute bare = Metrics.compute metered);
  let gauge name =
    int_of_float (Registry.gauge_value (Registry.gauge r name))
  in
  Alcotest.(check int)
    "nodes gauge matches" (Solver.n_nodes metered) (gauge "pta_solver_nodes");
  Alcotest.(check bool)
    "propagation counters populated" true
    (Registry.counter_value
       (Registry.counter r ~labels:[ ("kind", "move") ]
          "pta_solver_propagated_total")
     > 0)

(* The fixpoint loop must not touch meters when metrics are off: the
   meter bundle is the module-level shared dummy and the worklist-depth
   sampling is skipped, so a null-metered solve allocates exactly as
   much as any other null-metered solve — and strictly less than a
   live-metered one, which registers families and boxes histogram
   samples.  (Regression test for the null path allocating per-solve
   meter records / sampling the depth histogram unconditionally.) *)
let null_metrics_allocation_test () =
  let program = tiny_program () in
  let factory = Option.get (Pta_context.Strategies.by_name "1obj") in
  let strategy = factory program in
  let measure config =
    (* Warm-up run: populates program-side memo tables so the measured
       run's allocation is purely the solver's. *)
    ignore (Solver.solve ~config program strategy);
    let before = Gc.allocated_bytes () in
    ignore (Solver.solve ~config program strategy);
    Gc.allocated_bytes () -. before
  in
  let null_explicit = measure (Solver.Config.make ~metrics:Registry.null ()) in
  let null_default = measure Solver.Config.default in
  let live = measure (Solver.Config.make ~metrics:(Registry.create ()) ()) in
  Alcotest.(check (float 0.))
    "null-metered solves allocate identically" null_explicit null_default;
  Alcotest.(check bool)
    (Printf.sprintf "null (%.0fB) allocates less than live (%.0fB)"
       null_explicit live)
    true
    (null_explicit < live)

(* On a cycle-heavy workload the online cycle elimination must actually
   fire: SCCs collapsed, nodes unified, and stale queue entries dropped
   — and the worklist-depth histogram is fed from the priority queue. *)
let cycle_counters_test () =
  let profile =
    Pta_workloads.Profile.scale 0.2
      (Option.get (Pta_workloads.Profile.by_name "cyclic"))
  in
  let src = Pta_workloads.Workloads.source profile in
  let program = Pta_frontend.Frontend.program_of_string ~file:"cyclic" src in
  let factory = Option.get (Pta_context.Strategies.by_name "insens") in
  let r = Registry.create () in
  let config = Solver.Config.make ~metrics:r () in
  let solver = Solver.solve ~config program (factory program) in
  let c name = Registry.counter_value (Registry.counter r name) in
  Alcotest.(check bool)
    "sccs collapsed" true (c "pta_solver_sccs_collapsed_total" > 0);
  Alcotest.(check bool)
    "nodes unified" true (c "pta_solver_nodes_unified_total" > 0);
  Alcotest.(check bool)
    "redundant visits avoided" true
    (c "pta_solver_redundant_visits_avoided_total" > 0);
  Alcotest.(check bool)
    "more nodes than classes" true
    (c "pta_solver_nodes_unified_total" > c "pta_solver_sccs_collapsed_total");
  let depth =
    Registry.histogram r ~buckets:(Registry.pow2_buckets 18)
      "pta_solver_worklist_depth"
  in
  Alcotest.(check bool)
    "worklist depth sampled" true
    (Registry.histogram_count depth > 0);
  (* Unified members answer queries through their canonical node. *)
  let unified_pair = ref None in
  (try
     for i = 0 to Solver.n_nodes solver - 1 do
       let r = Solver.canonical_node solver i in
       if r <> i then begin
         unified_pair := Some (i, r);
         raise Exit
       end
     done
   with Exit -> ());
  match !unified_pair with
  | None -> Alcotest.fail "no unified node found despite nonzero counters"
  | Some (i, r) ->
    Alcotest.(check bool)
      "unified member shares its representative's points-to set" true
      (Intset.equal
         (Solver.node_points_to solver i)
         (Solver.node_points_to solver r))

(* The Datalog engine's counters: rounds tick, every rule has a fact
   counter, and the per-relation gauges agree with the engine's final
   fact counts — all deterministic across two runs. *)
let datalog_metrics_test () =
  let program = tiny_program () in
  let factory = Option.get (Pta_context.Strategies.by_name "1obj") in
  let run () =
    let r = Registry.create () in
    let (_ : Pta_refimpl.Refimpl.t) =
      Pta_refimpl.Refimpl.run ~metrics:r program (factory program)
    in
    r
  in
  let r = run () in
  Alcotest.(check bool)
    "rounds ticked" true
    (Registry.counter_value (Registry.counter r "pta_datalog_rounds_total") > 0);
  Alcotest.(check bool)
    "vcall rule derived facts" true
    (Registry.counter_value
       (Registry.counter r ~labels:[ ("rule", "vcall") ]
          "pta_datalog_facts_total")
     > 0);
  Alcotest.(check bool)
    "relation gauge populated" true
    (Registry.gauge_value
       (Registry.gauge r ~labels:[ ("relation", "VarPointsTo") ]
          "pta_datalog_relation_facts")
     > 0.);
  Alcotest.(check string)
    "deterministic" (Registry.to_openmetrics r)
    (Registry.to_openmetrics (run ()))

(* le semantics: a value equal to a bucket's upper bound lands in that
   bucket, one past it lands in the next, and values beyond the last
   bound land in the implicit +Inf bucket. *)
let histogram_buckets_test () =
  let r = Registry.create () in
  let h = Registry.histogram r ~buckets:[ 1.; 2.; 4. ] "pta_test_h" in
  List.iter (Registry.observe_int h) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "count" 5 (Registry.histogram_count h);
  Alcotest.(check (float 1e-9)) "sum" 15. (Registry.histogram_sum h);
  let text = Registry.to_openmetrics r in
  let expect line =
    Alcotest.(check bool)
      (Printf.sprintf "exposition has %S" line)
      true
      (List.mem line (String.split_on_char '\n' text))
  in
  (* Cumulative: le=1 -> 1, le=2 -> 2, le=4 -> 4, le=+Inf -> 5. *)
  expect "pta_test_h_bucket{le=\"1.0\"} 1";
  expect "pta_test_h_bucket{le=\"2.0\"} 2";
  expect "pta_test_h_bucket{le=\"4.0\"} 4";
  expect "pta_test_h_bucket{le=\"+Inf\"} 5";
  expect "pta_test_h_count 5"

let pow2_buckets_test () =
  Alcotest.(check (list (float 1e-9)))
    "ladder" [ 1.; 2.; 4.; 8. ] (Registry.pow2_buckets 4)

let exp_buckets_test () =
  Alcotest.(check (list (float 1e-9)))
    "geometric ladder"
    [ 0.5; 1.5; 4.5 ]
    (Registry.exp_buckets ~start:0.5 ~factor:3. 3);
  (* the shared time ladder: 1ms doubling, 24 buckets, ~2.3h ceiling *)
  let tb = Registry.time_buckets in
  Alcotest.(check int) "time ladder length" 24 (List.length tb);
  Alcotest.(check (float 1e-12)) "time ladder start" 0.001 (List.hd tb);
  Alcotest.(check bool)
    "strictly increasing" true
    (List.for_all2 (fun a b -> a < b)
       (List.filteri (fun i _ -> i < 23) tb)
       (List.tl tb));
  List.iter
    (fun f ->
      Alcotest.check_raises "invalid args rejected"
        (Invalid_argument
           (Printf.sprintf "Registry.exp_buckets: %s"
              (match f with
              | `Start -> "start must be positive and finite"
              | `Factor -> "factor must be > 1 and finite"
              | `Count -> "count must be >= 1")))
        (fun () ->
          ignore
            (match f with
            | `Start -> Registry.exp_buckets ~start:0. ~factor:2. 3
            | `Factor -> Registry.exp_buckets ~start:1. ~factor:1. 3
            | `Count -> Registry.exp_buckets ~start:1. ~factor:2. 0)))
    [ `Start; `Factor; `Count ]

(* histogram_buckets hands back per-bucket (non-cumulative) counts with
   the +Inf overflow last — the shape the snapshot hist codec stores. *)
let histogram_to_hist_test () =
  let r = Registry.create () in
  let h = Registry.histogram r ~buckets:[ 1.; 2.; 4. ] "pta_test_h" in
  List.iter (Registry.observe_int h) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check (list (pair (float 1e-9) int)))
    "per-bucket counts"
    [ (1., 1); (2., 1); (4., 2); (infinity, 1) ]
    (Registry.histogram_buckets h);
  let hist =
    Snapshot.hist_of_buckets ~sum:(Registry.histogram_sum h)
      (Registry.histogram_buckets h)
  in
  Alcotest.(check (list (float 1e-9))) "bounds" [ 1.; 2.; 4. ] hist.Snapshot.bounds;
  Alcotest.(check (list int)) "counts" [ 1; 1; 2; 1 ] hist.Snapshot.counts;
  Alcotest.(check int) "total" 5 (Snapshot.hist_count hist);
  (* codec round-trip, and the codec's shape rejections *)
  (match Snapshot.hist_of_json (Snapshot.hist_to_json hist) with
  | Ok hist' -> Alcotest.(check bool) "round-trip" true (hist = hist')
  | Error e -> Alcotest.failf "hist round-trip: %s" e);
  let reject what h =
    match Snapshot.hist_of_json (Snapshot.hist_to_json h) with
    | Ok _ -> Alcotest.failf "%s: unexpectedly accepted" what
    | Error _ -> ()
  in
  reject "length mismatch" { hist with Snapshot.counts = [ 1; 2 ] };
  reject "negative count" { hist with Snapshot.counts = [ 1; -1; 2; 1 ] };
  reject "non-increasing bounds" { hist with Snapshot.bounds = [ 1.; 1.; 4. ] }

(* Misuse must fail loudly at registration/update time. *)
let registry_validation_test () =
  let r = Registry.create () in
  let (_ : Registry.counter) = Registry.counter r "pta_test_total" in
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument
       "Registry: pta_test_total registered as counter, requested as gauge")
    (fun () -> ignore (Registry.gauge r "pta_test_total"));
  Alcotest.check_raises "bad name"
    (Invalid_argument "Registry: invalid metric name \"9bad\"") (fun () ->
      ignore (Registry.counter r "9bad"));
  Alcotest.check_raises "empty buckets"
    (Invalid_argument "Registry: histogram needs at least one bucket")
    (fun () -> ignore (Registry.histogram r ~buckets:[] "pta_test_h"));
  let c = Registry.counter r "pta_test_mono_total" in
  Alcotest.check_raises "negative add"
    (Invalid_argument "Registry.add: counters are monotone") (fun () ->
      Registry.add c (-1))

(* ------------------------------------------------------------------ *)
(* Bench snapshot codec                                                *)
(* ------------------------------------------------------------------ *)

let mem : Memstats.delta =
  {
    Memstats.minor_allocated_words = 1000.;
    promoted_delta_words = 100.;
    major_allocated_words = 500.;
    minor_collections_delta = 2;
    major_collections_delta = 1;
    compactions_delta = 0;
    heap_words_after = 4096;
    peak_heap_words = 8192;
  }

let cell ?(timed_out = false) ?(time_s = 1.0) ?(iterations = 100) ?nodes
    ?memory ?time_hist ?(heap_components = []) ?(jobs = 1) ?domains benchmark
    analysis =
  {
    Snapshot.benchmark; analysis; timed_out; time_s; iterations; nodes; memory;
    time_hist; heap_components; jobs;
    domains = Option.value ~default:jobs domains;
  }

let snap ?pointsto ?host_cores cells =
  {
    Snapshot.schema_version = Snapshot.current_schema_version;
    timeout_s = 60.;
    host_cores;
    pointsto;
    cells;
  }

let comps =
  [
    { Census.comp_name = "points-to-sets"; retained_words = 100_000;
      unshared_words = 320_000 };
    { Census.comp_name = "edge-lists"; retained_words = 50_000;
      unshared_words = 50_000 };
  ]

let v2_roundtrip_test () =
  let hist =
    { Snapshot.bounds = [ 0.5; 1.0 ]; counts = [ 2; 1; 0 ]; sum = 1.9 }
  in
  let t =
    snap
      ~pointsto:(Json.Obj [ ("commit", Json.String "abc123") ])
      [
        cell ~nodes:1234 ~memory:mem ~time_hist:hist ~heap_components:comps
          "antlr" "2obj+H";
        cell ~timed_out:true ~time_s:60.2 ~iterations:999 "bloat" "2obj+H";
      ]
  in
  match Snapshot.of_string (Json.to_string (Snapshot.to_json t)) with
  | Error e -> Alcotest.fail e
  | Ok t' ->
    Alcotest.(check int) "current schema" Snapshot.current_schema_version
      t'.Snapshot.schema_version;
    Alcotest.(check bool) "stamp survives" true (t'.Snapshot.pointsto <> None);
    (match t'.Snapshot.cells with
    | [ c1; c2 ] ->
      Alcotest.(check (option int)) "nodes" (Some 1234) c1.Snapshot.nodes;
      Alcotest.(check bool) "memory survives" true (c1.Snapshot.memory = Some mem);
      Alcotest.(check bool) "hist survives" true
        (c1.Snapshot.time_hist = Some hist);
      Alcotest.(check bool) "components survive" true
        (c1.Snapshot.heap_components = comps);
      Alcotest.(check bool) "absent components read back empty" true
        (c2.Snapshot.heap_components = []);
      Alcotest.(check bool) "timeout cell" true c2.Snapshot.timed_out;
      Alcotest.(check bool) "timeout cell has no hist" true
        (c2.Snapshot.time_hist = None);
      Alcotest.(check int) "abort iterations" 999 c2.Snapshot.iterations
    | _ -> Alcotest.fail "wrong cell count")

(* A v1 document (no nodes/memory/pointsto) must still load, with the
   v2-only fields absent — an old baseline keeps gating on time. *)
let v1_compat_test () =
  let v1 =
    {|{"schema_version": 1, "timeout_s": 60.0, "cells": [
        {"benchmark": "antlr", "analysis": "insens", "timed_out": false,
         "time_s": 0.5, "iterations": 42}]}|}
  in
  match Snapshot.of_string v1 with
  | Error e -> Alcotest.fail e
  | Ok t ->
    Alcotest.(check int) "schema v1" 1 t.Snapshot.schema_version;
    Alcotest.(check bool) "no stamp" true (t.Snapshot.pointsto = None);
    let c = List.hd t.Snapshot.cells in
    Alcotest.(check (option int)) "no nodes" None c.Snapshot.nodes;
    Alcotest.(check bool) "no memory" true (c.Snapshot.memory = None)

(* v2 (memory, no hist) and v3 (hist, no heap_components) snapshots
   predate the census block; both must still load. *)
let v2_v3_compat_test () =
  let v2 =
    {|{"schema_version": 2, "timeout_s": 60.0, "cells": [
        {"benchmark": "antlr", "analysis": "insens", "timed_out": false,
         "time_s": 0.5, "iterations": 42, "nodes": 10,
         "memory": {"minor_allocated_words": 1.0, "promoted_words": 0.0,
                    "major_allocated_words": 0.0, "minor_collections": 0,
                    "major_collections": 0, "compactions": 0,
                    "heap_words": 100, "peak_heap_words": 200}}]}|}
  in
  let v3 =
    {|{"schema_version": 3, "timeout_s": 60.0, "cells": [
        {"benchmark": "antlr", "analysis": "insens", "timed_out": false,
         "time_s": 0.5, "iterations": 42,
         "time_hist": {"bounds": [1.0], "counts": [1, 0], "sum": 0.5}}]}|}
  in
  List.iter
    (fun (label, src) ->
      match Snapshot.of_string src with
      | Error e -> Alcotest.failf "%s rejected: %s" label e
      | Ok t ->
        let c = List.hd t.Snapshot.cells in
        Alcotest.(check bool)
          (label ^ ": no components") true
          (c.Snapshot.heap_components = []))
    [ ("v2", v2); ("v3", v3) ]

let unsupported_schema_test () =
  match Snapshot.of_string {|{"schema_version": 99, "timeout_s": 1, "cells": []}|} with
  | Ok _ -> Alcotest.fail "expected an error"
  | Error e ->
    Alcotest.(check bool)
      "names the version" true
      (Helpers.contains_substring e "99")

(* ------------------------------------------------------------------ *)
(* Regression comparator                                               *)
(* ------------------------------------------------------------------ *)

let compare_cells base cur =
  Snapshot.compare ~baseline:(snap base) ~current:(snap cur) ()

let regression_verdicts_test () =
  (* +30% time with a 15% tolerance: flagged. *)
  let r =
    compare_cells [ cell ~time_s:1.0 "a" "x" ] [ cell ~time_s:1.3 "a" "x" ]
  in
  Alcotest.(check bool) "time regression" true (Snapshot.has_regression r);
  (* +10% is inside the default 15% tolerance. *)
  let r =
    compare_cells [ cell ~time_s:1.0 "a" "x" ] [ cell ~time_s:1.1 "a" "x" ]
  in
  Alcotest.(check bool) "within tolerance" false (Snapshot.has_regression r);
  (* Getting faster is never a regression. *)
  let r =
    compare_cells [ cell ~time_s:1.0 "a" "x" ] [ cell ~time_s:0.4 "a" "x" ]
  in
  Alcotest.(check bool) "speedup ok" false (Snapshot.has_regression r);
  (* Sub-floor baseline cells skip the relative-time check entirely. *)
  let r =
    compare_cells
      [ cell ~time_s:0.01 "a" "x" ]
      [ cell ~time_s:0.04 "a" "x" ]
  in
  Alcotest.(check bool) "noise floor" false (Snapshot.has_regression r)

let heap_verdict_test () =
  let base = cell ~memory:mem "a" "x" in
  let fat =
    cell ~memory:{ mem with Memstats.peak_heap_words = 16384 } "a" "x"
  in
  let r = compare_cells [ base ] [ fat ] in
  Alcotest.(check bool) "heap regression" true (Snapshot.has_regression r);
  (* Against a v1 baseline (no memory) there is nothing to gate on. *)
  let r = compare_cells [ cell "a" "x" ] [ fat ] in
  Alcotest.(check bool) "v1 baseline skips heap" false (Snapshot.has_regression r)

let timeout_verdicts_test () =
  let fine = cell "a" "x" and dead = cell ~timed_out:true "a" "x" in
  let r = compare_cells [ fine ] [ dead ] in
  Alcotest.(check bool) "new timeout fails" true (Snapshot.has_regression r);
  let r = compare_cells [ dead ] [ fine ] in
  Alcotest.(check bool) "fixed timeout passes" false (Snapshot.has_regression r);
  let r = compare_cells [ dead ] [ dead ] in
  Alcotest.(check bool) "both timed out" false (Snapshot.has_regression r)

let cell_presence_test () =
  let r = compare_cells [ cell "a" "x" ] [] in
  Alcotest.(check bool) "missing cell fails" true (Snapshot.has_regression r);
  let r = compare_cells [] [ cell "a" "x" ] in
  Alcotest.(check bool) "new cell passes" false (Snapshot.has_regression r);
  Alcotest.(check int) "new cell reported" 1 (List.length r.Snapshot.deltas)

(* Per-component gating: a census component growing past the tolerance
   must fail the comparison even when time and peak heap are flat. *)
let component_verdict_test () =
  let base = cell ~heap_components:comps "a" "x" in
  let grown =
    cell
      ~heap_components:
        (List.map
           (fun (c : Census.component) ->
             if c.Census.comp_name = "points-to-sets" then
               { c with Census.retained_words = 150_000 }
             else c)
           comps)
      "a" "x"
  in
  let r = compare_cells [ base ] [ grown ] in
  Alcotest.(check bool) "component regression" true (Snapshot.has_regression r);
  let verdicts = (List.hd r.Snapshot.deltas).Snapshot.verdicts in
  Alcotest.(check bool)
    "names the component" true
    (List.exists
       (function
         | Snapshot.Component_regression b ->
           b.Census.b_name = "points-to-sets"
         | _ -> false)
       verdicts);
  (* A loosened component tolerance lets the same growth through. *)
  let thresholds =
    { Snapshot.default_thresholds with Snapshot.heap_component_tol_pct = 100. }
  in
  let r =
    Snapshot.compare ~thresholds ~baseline:(snap [ base ])
      ~current:(snap [ grown ]) ()
  in
  Alcotest.(check bool) "loosened gate passes" false (Snapshot.has_regression r);
  (* Baselines without census blocks (v1-v3) have nothing to gate on. *)
  let r = compare_cells [ cell "a" "x" ] [ grown ] in
  Alcotest.(check bool) "component-less baseline passes" false
    (Snapshot.has_regression r)

let custom_thresholds_test () =
  let thresholds =
    { Snapshot.default_thresholds with Snapshot.time_tol_pct = 50. }
  in
  let r =
    Snapshot.compare ~thresholds
      ~baseline:(snap [ cell ~time_s:1.0 "a" "x" ])
      ~current:(snap [ cell ~time_s:1.3 "a" "x" ])
      ()
  in
  Alcotest.(check bool) "loosened gate passes" false (Snapshot.has_regression r)

let markdown_report_test () =
  let r =
    compare_cells [ cell ~time_s:1.0 "a" "x" ] [ cell ~time_s:2.0 "a" "x" ]
  in
  let md = Snapshot.to_markdown r in
  Alcotest.(check bool)
    "names the cell" true
    (Helpers.contains_substring md "| a | x |");
  Alcotest.(check bool)
    "counts regressions" true
    (Helpers.contains_substring md "1 regression(s)")

(* ------------------------------------------------------------------ *)
(* Schema v5: jobs cells, host cores, the scaling gate                 *)
(* ------------------------------------------------------------------ *)

let v5_jobs_roundtrip_test () =
  let t =
    snap ~host_cores:4
      [
        cell ~time_s:4.0 "cyclic" "insens";
        cell ~time_s:1.1 ~jobs:4 ~domains:4 "cyclic" "insens";
      ]
  in
  (match Snapshot.of_string (Json.to_string (Snapshot.to_json t)) with
  | Error e -> Alcotest.fail e
  | Ok t' ->
    Alcotest.(check (option int)) "host_cores survives" (Some 4)
      t'.Snapshot.host_cores;
    (match t'.Snapshot.cells with
    | [ c1; c4 ] ->
      Alcotest.(check int) "sequential cell jobs" 1 c1.Snapshot.jobs;
      Alcotest.(check int) "parallel cell jobs" 4 c4.Snapshot.jobs;
      Alcotest.(check int) "parallel cell domains" 4 c4.Snapshot.domains
    | _ -> Alcotest.fail "wrong cell count"));
  (* A sequential-only snapshot writes no jobs/domains/host_cores keys:
     the v5 codec is byte-compatible with v4 output for old grids. *)
  let seq_json =
    Json.to_string (Snapshot.to_json (snap [ cell "a" "x" ]))
  in
  Alcotest.(check bool) "no jobs key on sequential cells" false
    (Helpers.contains_substring seq_json "jobs");
  Alcotest.(check bool) "no host_cores without a stamp" false
    (Helpers.contains_substring seq_json "host_cores")

let compare_jobs_keyed_test () =
  (* A jobs=4 cell never matches a jobs=1 baseline cell: each parallel
     leg gates against its own history. *)
  let baseline = snap ~host_cores:4 [ cell ~time_s:1.0 "a" "x" ] in
  let current =
    snap ~host_cores:4 [ cell ~time_s:5.0 ~jobs:4 ~domains:4 "a" "x" ]
  in
  let r = Snapshot.compare ~baseline ~current () in
  Alcotest.(check bool) "distinct keys: missing + new, no time verdict" true
    (List.for_all
       (fun d ->
         List.for_all
           (function
             | Snapshot.Missing_cell | Snapshot.New_cell -> true | _ -> false)
           d.Snapshot.verdicts)
       r.Snapshot.deltas);
  (* Same core count on both sides: a parallel cell's slowdown gates. *)
  let baseline =
    snap ~host_cores:4 [ cell ~time_s:1.0 ~jobs:4 ~domains:4 "a" "x" ]
  in
  let current =
    snap ~host_cores:4 [ cell ~time_s:2.0 ~jobs:4 ~domains:4 "a" "x" ]
  in
  let r = Snapshot.compare ~baseline ~current () in
  Alcotest.(check bool) "comparable cores: flagged" true
    (Snapshot.has_regression r);
  (* Different (or unknown) core counts: the parallel time check is
     meaningless and must be skipped, not flagged. *)
  let baseline' = { baseline with Snapshot.host_cores = Some 8 } in
  let r = Snapshot.compare ~baseline:baseline' ~current () in
  Alcotest.(check bool) "cores differ: skipped" false
    (Snapshot.has_regression r);
  let baseline'' = { baseline with Snapshot.host_cores = None } in
  let r = Snapshot.compare ~baseline:baseline'' ~current () in
  Alcotest.(check bool) "cores unknown: skipped" false
    (Snapshot.has_regression r)

let scaling_gate_test () =
  let grid ~host_cores ~par_time =
    snap ?host_cores
      [
        cell ~time_s:4.0 "cyclic" "insens";
        cell ~time_s:par_time ~jobs:4 ~domains:4 "cyclic" "insens";
      ]
  in
  (* 4.0s -> 1.25s at 4 domains = 3.2x. *)
  (match Snapshot.scaling_points (grid ~host_cores:(Some 4) ~par_time:1.25) with
  | [ p ] ->
    Alcotest.(check int) "jobs" 4 p.Snapshot.s_jobs;
    Alcotest.(check bool) "speedup computed" true
      (Float.abs (p.Snapshot.s_speedup -. 3.2) < 1e-9)
  | ps -> Alcotest.failf "expected 1 scaling point, got %d" (List.length ps));
  (match
     Snapshot.check_scaling ~min_speedup:2.0
       (grid ~host_cores:(Some 4) ~par_time:1.25)
   with
  | Snapshot.Scaling_ok [ _ ] -> ()
  | _ -> Alcotest.fail "expected Scaling_ok");
  (match
     Snapshot.check_scaling ~min_speedup:2.0
       (grid ~host_cores:(Some 4) ~par_time:3.5)
   with
  | Snapshot.Scaling_regression [ _ ] -> ()
  | _ -> Alcotest.fail "expected Scaling_regression");
  (* A 1-core host cannot exhibit speedup: skip, never fail. *)
  (match
     Snapshot.check_scaling ~min_speedup:2.0
       (grid ~host_cores:(Some 1) ~par_time:4.5)
   with
  | Snapshot.Scaling_skipped _ -> ()
  | _ -> Alcotest.fail "expected skip on a small host");
  (* No core stamp: also a skip (old snapshot, unknown hardware). *)
  (match
     Snapshot.check_scaling ~min_speedup:2.0 (grid ~host_cores:None ~par_time:1.0)
   with
  | Snapshot.Scaling_skipped _ -> ()
  | _ -> Alcotest.fail "expected skip without a core stamp");
  (* No parallel cells at all: nothing to gate. *)
  match
    Snapshot.check_scaling ~min_speedup:2.0
      (snap ~host_cores:4 [ cell ~time_s:4.0 "cyclic" "insens" ])
  with
  | Snapshot.Scaling_skipped _ -> ()
  | _ -> Alcotest.fail "expected skip without parallel cells"

let tests =
  [
    Alcotest.test_case "exposition deterministic" `Quick
      exposition_deterministic_test;
    Alcotest.test_case "json deterministic" `Quick json_deterministic_test;
    Alcotest.test_case "null registry" `Quick null_registry_test;
    Alcotest.test_case "solver transparent under metrics" `Quick
      solver_transparent_test;
    Alcotest.test_case "null metrics allocate nothing extra" `Quick
      null_metrics_allocation_test;
    Alcotest.test_case "cycle-elimination counters fire" `Quick
      cycle_counters_test;
    Alcotest.test_case "datalog engine counters" `Quick datalog_metrics_test;
    Alcotest.test_case "histogram buckets (le)" `Quick histogram_buckets_test;
    Alcotest.test_case "pow2 buckets" `Quick pow2_buckets_test;
    Alcotest.test_case "exp buckets" `Quick exp_buckets_test;
    Alcotest.test_case "histogram to snapshot hist" `Quick
      histogram_to_hist_test;
    Alcotest.test_case "registry validation" `Quick registry_validation_test;
    Alcotest.test_case "snapshot v2 round-trip" `Quick v2_roundtrip_test;
    Alcotest.test_case "snapshot v1 compat" `Quick v1_compat_test;
    Alcotest.test_case "snapshot v2/v3 compat" `Quick v2_v3_compat_test;
    Alcotest.test_case "unsupported schema" `Quick unsupported_schema_test;
    Alcotest.test_case "time regression verdicts" `Quick
      regression_verdicts_test;
    Alcotest.test_case "heap regression verdict" `Quick heap_verdict_test;
    Alcotest.test_case "component regression verdict" `Quick
      component_verdict_test;
    Alcotest.test_case "timeout verdicts" `Quick timeout_verdicts_test;
    Alcotest.test_case "missing / new cells" `Quick cell_presence_test;
    Alcotest.test_case "custom thresholds" `Quick custom_thresholds_test;
    Alcotest.test_case "markdown report" `Quick markdown_report_test;
    Alcotest.test_case "snapshot v5 jobs round-trip" `Quick
      v5_jobs_roundtrip_test;
    Alcotest.test_case "compare is jobs-keyed and cores-guarded" `Quick
      compare_jobs_keyed_test;
    Alcotest.test_case "scaling gate" `Quick scaling_gate_test;
  ]
